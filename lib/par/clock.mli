(** Wall-clock timing for runtime reporting.

    [Sys.time] measures processor time summed over all domains: it
    over-counts multicore work and under-counts blocking, so every
    reported runtime in the repository uses this wall-clock source
    instead. *)

val now : unit -> float
(** Seconds since the epoch ([Unix.gettimeofday]); differences of two
    [now] readings measure elapsed wall-clock time. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)

val time_only : (unit -> 'a) -> float
(** [timed] discarding the result. *)
