(* A reusable domain pool.

   Worker domains persist across jobs and park on a condition variable
   between submissions, so per-job dispatch costs one broadcast — cheap
   enough to fan out the per-iteration chain solves of the MMSIM inner
   loop, not just whole benchmarks.

   Concurrency protocol: a job is published by bumping [generation] under
   the lock and broadcasting; each worker keeps the last generation it ran
   and picks up exactly one unit of the new one. The submitting domain
   participates as worker 0, then blocks until [active] drains to zero.

   Nesting: the pool is deliberately non-reentrant. A [busy] flag is
   taken for the duration of a job; any parallel entry point that finds
   the pool busy (a nested call from inside a running job, e.g. a
   per-territory Flow.run that reaches the solver's chunked chain solves
   while Fence already fans territories out) silently degrades to the
   sequential path. Work partitioning is index-deterministic and all
   parallel writes target disjoint slices, so sequential and parallel
   execution produce bit-identical results — the property test_par.ml
   pins down. *)

type job = int -> unit (* worker index -> work (pulls its own share) *)

type t = {
  size : int; (* parallelism degree including the caller; >= 1 *)
  lock : Mutex.t;
  work_cond : Condition.t;
  done_cond : Condition.t;
  mutable generation : int;
  mutable job : job option;
  mutable active : int; (* spawned workers still inside the current job *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
  busy : bool Atomic.t;
}

let size t = t.size

(* More pool members than hardware threads: fanning a job out would only
   timeslice domains on shared cores — and every minor collection then
   pays a stop-the-world rendezvous across runnable domains that cannot
   actually run, which is far slower than doing the work on the caller.
   (Results are unaffected either way; this is purely a scheduling
   signal.) *)
let oversubscribed t = t.size > Domain.recommended_domain_count ()

let default_num_domains () =
  match Sys.getenv_opt "MCLH_DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* worker loop: [wid] is this worker's stable index in 1..size-1 *)
let worker t wid =
  let gen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stopped) && t.generation = !gen do
      Condition.wait t.work_cond t.lock
    done;
    if t.stopped then Mutex.unlock t.lock
    else begin
      gen := t.generation;
      let job = Option.get t.job in
      Mutex.unlock t.lock;
      (try job wid
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock t.lock;
         if t.failed = None then t.failed <- Some (e, bt);
         Mutex.unlock t.lock);
      Mutex.lock t.lock;
      t.active <- t.active - 1;
      if t.active = 0 then Condition.broadcast t.done_cond;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~num_domains =
  if num_domains < 1 then invalid_arg "Pool.create: num_domains must be >= 1";
  let t =
    { size = num_domains;
      lock = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      job = None;
      active = 0;
      failed = None;
      stopped = false;
      domains = [];
      busy = Atomic.make false }
  in
  t.domains <-
    List.init (num_domains - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

(* Run [job] on every pool member (caller included) and wait for all of
   them; re-raises the first exception any member threw. Callers must
   hold the [busy] flag. *)
let run_job t job =
  Mutex.lock t.lock;
  t.job <- Some job;
  t.failed <- None;
  t.active <- t.size - 1;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  let caller_failure =
    try
      job 0;
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.lock;
  while t.active > 0 do
    Condition.wait t.done_cond t.lock
  done;
  t.job <- None;
  let worker_failure = t.failed in
  t.failed <- None;
  Mutex.unlock t.lock;
  match (caller_failure, worker_failure) with
  | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None, None -> ()

(* Try to take the pool for one job; false means the caller must run the
   sequential path itself (degenerate pool, stopped pool, or nested
   entry). *)
let try_with_pool t par =
  if t.size <= 1 || t.stopped then false
  else if not (Atomic.compare_and_set t.busy false true) then false
  else begin
    Fun.protect ~finally:(fun () -> Atomic.set t.busy false) par;
    true
  end

let parallel_map t f arr =
  let n = Array.length arr in
  if n <= 1 then Array.map f arr
  else begin
    let results = Array.make n None in
    let ran_par =
      try_with_pool t (fun () ->
          let next = Atomic.make 0 in
          run_job t (fun _wid ->
              let rec pull () =
                let i = Atomic.fetch_and_add next 1 in
                if i < n then begin
                  results.(i) <- Some (f arr.(i));
                  pull ()
                end
              in
              pull ()))
    in
    if ran_par then
      Array.map
        (function
          | Some v -> v
          | None -> failwith "Pool.parallel_map: missing result")
        results
    else Array.map f arr
  end

(* Chunked weighted fan-out: [order] is a caller-chosen processing order
   (typically heaviest first); consecutive elements are grouped into
   chunks of at least [min_chunk_weight] total weight and each chunk
   becomes one dynamically-scheduled pool job. With tens of thousands of
   tiny items (scale-1.0 shard counts) this keeps the per-job dispatch
   and closure cost proportional to the number of chunks, not items,
   while heavy items still get a job of their own. The chunking depends
   only on [order] and the weights — never on the pool size — so any
   degree (including the sequential fallback) processes every element
   exactly once with bit-identical effects. *)
let parallel_iter_weighted ?(min_chunk_weight = 1) t ~weight ~f order =
  if min_chunk_weight < 1 then
    invalid_arg "Pool.parallel_iter_weighted: min_chunk_weight < 1";
  let n = Array.length order in
  if n > 0 then begin
    (* chunk starts: positions in [order] where the running weight resets *)
    let count_chunks () =
      let count = ref 0 and acc = ref 0 in
      for idx = 0 to n - 1 do
        if !acc = 0 then incr count;
        acc := !acc + max 1 (weight order.(idx));
        if !acc >= min_chunk_weight then acc := 0
      done;
      !count
    in
    let num_chunks = count_chunks () in
    let starts = Array.make (num_chunks + 1) n in
    let k = ref 0 and acc = ref 0 in
    for idx = 0 to n - 1 do
      if !acc = 0 then begin
        starts.(!k) <- idx;
        incr k
      end;
      acc := !acc + max 1 (weight order.(idx));
      if !acc >= min_chunk_weight then acc := 0
    done;
    let run_chunk c =
      for idx = starts.(c) to starts.(c + 1) - 1 do
        f order.(idx)
      done
    in
    let ran_par =
      num_chunks > 1
      && try_with_pool t (fun () ->
             let next = Atomic.make 0 in
             run_job t (fun _wid ->
                 let rec pull () =
                   let c = Atomic.fetch_and_add next 1 in
                   if c < num_chunks then begin
                     run_chunk c;
                     pull ()
                   end
                 in
                 pull ()))
    in
    if not ran_par then
      for c = 0 to num_chunks - 1 do
        run_chunk c
      done
  end

let parallel_iter_chunks ?(min_chunk = 1) t n ~f =
  if min_chunk < 1 then invalid_arg "Pool.parallel_iter_chunks: min_chunk < 1";
  if n > 0 then begin
    let max_workers = (n + min_chunk - 1) / min_chunk in
    let ran_par =
      max_workers > 1
      && try_with_pool t (fun () ->
             let workers = min t.size max_workers in
             let per = n / workers and rem = n mod workers in
             run_job t (fun wid ->
                 if wid < workers then begin
                   let lo = (wid * per) + min wid rem in
                   let hi = lo + per + if wid < rem then 1 else 0 in
                   if hi > lo then f lo hi
                 end))
    in
    if not ran_par then f 0 n
  end

(* ---------- shared pools ---------- *)

(* Pools are process-lifetime: parked workers cost nothing, and sharing
   one pool per size keeps nested layers (bench fan-out -> Fence
   territories -> solver chunks) on the same pool, where the busy flag
   serializes them instead of oversubscribing the machine. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let get ~num_domains =
  let num_domains = max 1 num_domains in
  Mutex.lock registry_lock;
  let pool =
    match Hashtbl.find_opt registry num_domains with
    | Some p -> p
    | None ->
      let p = create ~num_domains in
      Hashtbl.replace registry num_domains p;
      p
  in
  Mutex.unlock registry_lock;
  pool

let default () = get ~num_domains:(default_num_domains ())
