(** A reusable domain pool for the repository's embarrassingly parallel
    stages (fence territories, benchmark fan-out, per-chain arrowhead
    solves).

    Worker domains persist across jobs and park between submissions, so
    dispatch is cheap enough for per-iteration use inside the MMSIM
    solver loop. The pool is non-reentrant by design: a nested parallel
    call from inside a running job degrades to the sequential path
    instead of oversubscribing the machine. Work partitioning is
    index-deterministic and parallel writes target disjoint slices, so
    parallel and sequential execution produce bit-identical results.

    The busy claim is a single atomic compare-and-set, so concurrent
    submissions from several {e system threads} (the [Mclh_serve] daemon's
    per-connection workers, each re-solving a different session) are safe:
    exactly one claims the pool, every other falls back to its sequential
    path — and since parallel and sequential execution are bit-identical,
    contention affects only scheduling, never results. *)

type t

val create : num_domains:int -> t
(** A pool of parallelism degree [num_domains] (the submitting domain
    participates; [num_domains - 1] worker domains are spawned).
    [num_domains = 1] spawns nothing and runs everything sequentially.
    @raise Invalid_argument if [num_domains < 1]. *)

val size : t -> int
(** The pool's parallelism degree. *)

val oversubscribed : t -> bool
(** True when the pool's degree exceeds the hardware parallelism
    ([Domain.recommended_domain_count ()]). Fan-out on an oversubscribed
    pool still produces identical results but merely timeslices domains
    on shared cores while paying cross-domain minor-GC rendezvous; cost-
    sensitive callers should prefer their sequential path. *)

val shutdown : t -> unit
(** Joins the worker domains. Idempotent; subsequent parallel calls on
    the pool fall back to sequential execution. Pools obtained from
    {!get} / {!default} are process-lifetime and need no shutdown. *)

val parallel_map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] applies [f] to every element, dynamically
    load-balanced over the pool, and collects results in index order.
    If any application raises, the first exception is re-raised in the
    caller after all workers finish. Runs sequentially when the pool is
    degenerate, busy (nested call), or [arr] has fewer than two
    elements. *)

val parallel_iter_weighted :
  ?min_chunk_weight:int -> t -> weight:(int -> int) -> f:(int -> unit) -> int array -> unit
(** [parallel_iter_weighted pool ~weight ~f order] applies [f] to every
    element of [order] (a caller-chosen processing order, typically
    heaviest first), grouping consecutive elements into chunks of at
    least [min_chunk_weight] total weight; each chunk is one dynamically
    load-balanced pool job. This keeps per-job dispatch and closure
    overhead proportional to the chunk count when [order] holds tens of
    thousands of tiny items, while heavy items still occupy a job of
    their own. Chunk boundaries depend only on [order] and [weight] —
    never the pool size — and [f] runs exactly once per element, so
    disjoint-write workloads get bit-identical results on any degree
    (including the sequential fallback, taken in the same situations as
    {!parallel_map}). *)

val parallel_iter_chunks : ?min_chunk:int -> t -> int -> f:(int -> int -> unit) -> unit
(** [parallel_iter_chunks pool n ~f] covers the index range [0, n) with
    disjoint contiguous chunks, calling [f lo hi] for each (the chunk is
    [lo, hi)). Chunks are statically partitioned over the pool members;
    [min_chunk] bounds how finely the range is split (a range of at most
    [min_chunk] indices is processed by the caller alone). Falls back to
    a single [f 0 n] call in the same situations as {!parallel_map}. *)

val default_num_domains : unit -> int
(** The [MCLH_DOMAINS] environment override when set (clamped to >= 1),
    otherwise [min 8 (Domain.recommended_domain_count ())]. *)

val get : num_domains:int -> t
(** The shared process-lifetime pool of the given degree (created on
    first use). Layers that are handed the same degree — the bench
    fan-out, {!Mclh_core.Fence} territories, the solver's chain chunks —
    therefore share one pool, whose busy flag serializes nested use. *)

val default : unit -> t
(** [get ~num_domains:(default_num_domains ())]. *)
