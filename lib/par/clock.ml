(* Wall-clock timing. [Sys.time] returns *processor* time, which counts
   every domain's CPU seconds — under multicore execution it over-reports
   elapsed time roughly by the parallelism degree, and it under-reports
   anything that blocks. All runtime reporting goes through this module. *)

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)

let time_only f = snd (timed f)
