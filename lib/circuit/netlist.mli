(** Netlists: hyperedges over cells with pin offsets.

    Each pin names a cell and an offset from the cell's bottom-left corner
    (in site/row units), so wirelength reacts to cell positions exactly as
    in the half-perimeter model used by the paper's dHPWL column. *)

type pin = { cell : int; dx : float; dy : float }

type net = pin array

type t

val make : num_cells:int -> net list -> t
(** Validates that every pin references a cell in range and every net has
    at least one pin (single-pin nets are allowed; their HPWL is zero). *)

val num_cells : t -> int

val num_nets : t -> int

val num_pins : t -> int

val net : t -> int -> net

val iter : t -> (int -> net -> unit) -> unit

val nets_of_cell : t -> int array array
(** [nets_of_cell t] maps each cell to the ids of the nets it pins;
    computed once, O(pins). *)

val empty : num_cells:int -> t

(** Streaming construction with a known (or estimated) net count: the
    nets array is preallocated up front and appended in place, so
    building a full-scale netlist allocates no per-net list cells and
    never holds two copies of the net array. Produces netlists identical
    to {!make} given the same nets in the same order (tested). *)
module Builder : sig
  type builder

  val create : num_cells:int -> expected_nets:int -> builder
  (** [expected_nets] sizes the initial array; it is a hint, not a cap —
      the builder doubles when exceeded, and {!build} trims. *)

  val add_net : builder -> net -> unit
  (** Appends one net, validating exactly as {!make} does (non-empty,
      pins in range) with the net's final index in error messages. *)

  val length : builder -> int
  (** Nets appended so far. *)

  val build : builder -> t
  (** The finished netlist; when [expected_nets] was exact the builder's
      array is handed over without a copy. The builder is reset to empty
      and must not be reused. *)
end
