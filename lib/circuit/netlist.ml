type pin = { cell : int; dx : float; dy : float }
type net = pin array
type t = { num_cells : int; nets : net array }

let make ~num_cells net_list =
  let nets = Array.of_list net_list in
  Array.iteri
    (fun n pins ->
      if Array.length pins = 0 then
        invalid_arg (Printf.sprintf "Netlist.make: net %d has no pin" n);
      Array.iter
        (fun p ->
          if p.cell < 0 || p.cell >= num_cells then
            invalid_arg
              (Printf.sprintf "Netlist.make: net %d pins missing cell %d" n
                 p.cell))
        pins)
    nets;
  { num_cells; nets }

let num_cells t = t.num_cells
let num_nets t = Array.length t.nets

let num_pins t =
  Array.fold_left (fun acc net -> acc + Array.length net) 0 t.nets

let net t i = t.nets.(i)
let iter t f = Array.iteri f t.nets

let nets_of_cell t =
  let buckets = Array.make t.num_cells [] in
  Array.iteri
    (fun n pins ->
      Array.iter (fun p -> buckets.(p.cell) <- n :: buckets.(p.cell)) pins)
    t.nets;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let empty ~num_cells = { num_cells; nets = [||] }

(* Counted construction: callers that know (or can bound) the net count
   up front append into a preallocated array instead of accumulating a
   list Array.of_list then copies — at full scale (millions of nets) the
   list path churns the minor heap with a cons cell per net and doubles
   peak memory at the copy. *)
module Builder = struct
  type builder = {
    b_num_cells : int;
    mutable b_nets : net array;
    mutable b_len : int;
  }

  let create ~num_cells ~expected_nets =
    if num_cells < 0 then invalid_arg "Netlist.Builder.create: num_cells < 0";
    if expected_nets < 0 then
      invalid_arg "Netlist.Builder.create: expected_nets < 0";
    { b_num_cells = num_cells;
      b_nets = Array.make (max 1 expected_nets) [||];
      b_len = 0 }

  let length b = b.b_len

  let add_net b pins =
    let n = b.b_len in
    if Array.length pins = 0 then
      invalid_arg (Printf.sprintf "Netlist.Builder.add_net: net %d has no pin" n);
    Array.iter
      (fun p ->
        if p.cell < 0 || p.cell >= b.b_num_cells then
          invalid_arg
            (Printf.sprintf "Netlist.Builder.add_net: net %d pins missing cell %d"
               n p.cell))
      pins;
    if n = Array.length b.b_nets then begin
      let bigger = Array.make (2 * max 1 n) [||] in
      Array.blit b.b_nets 0 bigger 0 n;
      b.b_nets <- bigger
    end;
    b.b_nets.(n) <- pins;
    b.b_len <- n + 1

  let build b =
    (* exact-count builders hand their array over without a copy *)
    let nets =
      if b.b_len = Array.length b.b_nets then b.b_nets
      else Array.sub b.b_nets 0 b.b_len
    in
    b.b_nets <- [||];
    b.b_len <- 0;
    { num_cells = b.b_num_cells; nets }
end
