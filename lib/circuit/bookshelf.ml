(* Bookshelf reader/writer. Node naming convention: movable cells are "o<id>"
   (their array index), terminals (blockages) are "b<k>". *)

let node_name i = Printf.sprintf "o%d" i
let blockage_name k = Printf.sprintf "b%d" k

(* ---------- writing ---------- *)

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write ~basename (d : Design.t) =
  let chip = d.Design.chip in
  let rh = chip.Chip.row_height in
  let base = Filename.basename basename in
  with_out (basename ^ ".aux") (fun oc ->
      Printf.fprintf oc
        "RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n" base base
        base base base);
  (* .wts is part of the bundle convention; all weights 1 *)
  with_out (basename ^ ".wts") (fun oc -> Printf.fprintf oc "UCLA wts 1.0\n");
  let n = Design.num_cells d in
  let nb = Array.length d.Design.blockages in
  with_out (basename ^ ".nodes") (fun oc ->
      Printf.fprintf oc "UCLA nodes 1.0\n\n";
      Printf.fprintf oc "NumNodes : %d\n" (n + nb);
      Printf.fprintf oc "NumTerminals : %d\n" nb;
      Array.iter
        (fun (c : Cell.t) ->
          Printf.fprintf oc "  %s %d %.9g\n" (node_name c.Cell.id) c.Cell.width
            (float_of_int c.Cell.height *. rh))
        d.Design.cells;
      Array.iteri
        (fun k (b : Blockage.t) ->
          Printf.fprintf oc "  %s %d %g terminal\n" (blockage_name k)
            b.Blockage.width
            (float_of_int b.Blockage.height *. rh))
        d.Design.blockages);
  with_out (basename ^ ".nets") (fun oc ->
      Printf.fprintf oc "UCLA nets 1.0\n\n";
      Printf.fprintf oc "NumNets : %d\n" (Netlist.num_nets d.Design.nets);
      Printf.fprintf oc "NumPins : %d\n" (Netlist.num_pins d.Design.nets);
      Netlist.iter d.Design.nets (fun net_id pins ->
          Printf.fprintf oc "NetDegree : %d  n%d\n" (Array.length pins) net_id;
          Array.iter
            (fun (p : Netlist.pin) ->
              let c = d.Design.cells.(p.Netlist.cell) in
              (* bookshelf offsets are from the node center *)
              let dx = p.dx -. (float_of_int c.Cell.width /. 2.0) in
              let dy = (p.dy -. (float_of_int c.Cell.height /. 2.0)) *. rh in
              Printf.fprintf oc "  %s B : %.9g %.9g\n" (node_name p.Netlist.cell) dx dy)
            pins));
  with_out (basename ^ ".pl") (fun oc ->
      Printf.fprintf oc "UCLA pl 1.0\n\n";
      for i = 0 to n - 1 do
        Printf.fprintf oc "%s %.9g %.9g : N\n" (node_name i)
          d.Design.global.Placement.xs.(i)
          (d.Design.global.Placement.ys.(i) *. rh)
      done;
      Array.iteri
        (fun k (b : Blockage.t) ->
          Printf.fprintf oc "%s %d %g : N /FIXED\n" (blockage_name k)
            b.Blockage.x
            (float_of_int b.Blockage.row *. rh))
        d.Design.blockages);
  with_out (basename ^ ".scl") (fun oc ->
      Printf.fprintf oc "UCLA scl 1.0\n\n";
      Printf.fprintf oc "NumRows : %d\n\n" chip.Chip.num_rows;
      for r = 0 to chip.Chip.num_rows - 1 do
        Printf.fprintf oc "CoreRow Horizontal\n";
        Printf.fprintf oc "  Coordinate    : %g\n" (float_of_int r *. rh);
        Printf.fprintf oc "  Height        : %g\n" rh;
        Printf.fprintf oc "  Sitewidth     : 1\n";
        Printf.fprintf oc "  Sitespacing   : 1\n";
        Printf.fprintf oc "  Siteorient    : %s\n" (if r mod 2 = 0 then "N" else "FS");
        Printf.fprintf oc "  Sitesymmetry  : Y\n";
        Printf.fprintf oc "  SubrowOrigin  : 0  NumSites : %d\n" chip.Chip.num_sites;
        Printf.fprintf oc "End\n"
      done)

(* ---------- reading ---------- *)

type line_reader = { file : string; ic : in_channel; mutable no : int }

let open_reader file =
  if not (Sys.file_exists file) then failwith (file ^ ": no such file");
  { file; ic = open_in file; no = 0 }

let fail r msg = failwith (Printf.sprintf "%s:%d: %s" r.file r.no msg)

(* next meaningful line: skips blanks, comments, and the UCLA header *)
let rec next_line r =
  match In_channel.input_line r.ic with
  | None -> None
  | Some line ->
    r.no <- r.no + 1;
    let line = String.trim line in
    if
      line = ""
      || String.length line >= 1 && line.[0] = '#'
      || String.length line >= 4 && String.sub line 0 4 = "UCLA"
    then next_line r
    else Some line

let tokens line =
  String.split_on_char '\t' line
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (( <> ) "")

let parse_kv r line key =
  match tokens line with
  | [ k; ":"; v ] when k = key -> v
  | k :: ":" :: v :: _ when k = key -> v
  | _ -> fail r (Printf.sprintf "expected '%s : <value>'" key)

type bs_node = { width : float; height : float; terminal : bool }

let read_nodes file =
  let r = open_reader file in
  Fun.protect
    ~finally:(fun () -> close_in r.ic)
    (fun () ->
      let num_nodes =
        match next_line r with
        | Some l -> int_of_string (parse_kv r l "NumNodes")
        | None -> fail r "missing NumNodes"
      in
      let _num_terminals =
        match next_line r with
        | Some l -> int_of_string (parse_kv r l "NumTerminals")
        | None -> fail r "missing NumTerminals"
      in
      let nodes = Hashtbl.create num_nodes in
      let order = ref [] in
      let rec loop () =
        match next_line r with
        | None -> ()
        | Some line ->
          (match tokens line with
          | [ name; w; h ] ->
            Hashtbl.replace nodes name
              { width = float_of_string w; height = float_of_string h;
                terminal = false };
            order := name :: !order
          | [ name; w; h; "terminal" ] ->
            Hashtbl.replace nodes name
              { width = float_of_string w; height = float_of_string h;
                terminal = true };
            order := name :: !order
          | _ -> fail r "expected '<name> <width> <height> [terminal]'");
          loop ()
      in
      loop ();
      (nodes, List.rev !order))

let read_pl file =
  let r = open_reader file in
  Fun.protect
    ~finally:(fun () -> close_in r.ic)
    (fun () ->
      let tbl = Hashtbl.create 64 in
      let rec loop () =
        match next_line r with
        | None -> ()
        | Some line ->
          (match tokens line with
          | name :: x :: y :: ":" :: _ ->
            Hashtbl.replace tbl name (float_of_string x, float_of_string y)
          | _ -> fail r "expected '<name> <x> <y> : <orient>'");
          loop ()
      in
      loop ();
      tbl)

type bs_row = { coordinate : float; height : float; num_sites : int }

let read_scl file =
  let r = open_reader file in
  Fun.protect
    ~finally:(fun () -> close_in r.ic)
    (fun () ->
      let num_rows =
        match next_line r with
        | Some l -> int_of_string (parse_kv r l "NumRows")
        | None -> fail r "missing NumRows"
      in
      let rows = ref [] in
      let rec read_row () =
        match next_line r with
        | None -> ()
        | Some line when tokens line = [ "CoreRow"; "Horizontal" ] ->
          let coordinate = ref nan and height = ref nan and num_sites = ref 0 in
          let rec body () =
            match next_line r with
            | None -> fail r "unterminated CoreRow"
            | Some l when String.trim l = "End" -> ()
            | Some l ->
              (match tokens l with
              | [ "Coordinate"; ":"; v ] -> coordinate := float_of_string v
              | [ "Height"; ":"; v ] -> height := float_of_string v
              | "SubrowOrigin" :: ":" :: _ :: "NumSites" :: ":" :: v :: _ ->
                num_sites := int_of_string v
              | _ -> ());
              body ()
          in
          body ();
          rows := { coordinate = !coordinate; height = !height; num_sites = !num_sites } :: !rows;
          read_row ()
        | Some _ -> read_row ()
      in
      read_row ();
      let rows = List.rev !rows in
      if List.length rows <> num_rows then
        fail r
          (Printf.sprintf "NumRows %d but %d CoreRow blocks" num_rows
             (List.length rows));
      rows)

let read_nets file nodes nodes_index =
  let r = open_reader file in
  Fun.protect
    ~finally:(fun () -> close_in r.ic)
    (fun () ->
      (* NumNets / NumPins headers *)
      let _ = match next_line r with Some l -> parse_kv r l "NumNets" | None -> fail r "missing NumNets" in
      let _ = match next_line r with Some l -> parse_kv r l "NumPins" | None -> fail r "missing NumPins" in
      let nets = ref [] in
      let rec read_net () =
        match next_line r with
        | None -> ()
        | Some line ->
          (match tokens line with
          | "NetDegree" :: ":" :: k :: _ ->
            let k = int_of_string k in
            let pins = ref [] in
            (* a pin on a terminal is legitimately dropped (blockages carry
               no nets), but a name absent from .nodes altogether is a
               broken input and must not pass silently *)
            let add_pin name dx dy =
              match Hashtbl.find_opt nodes_index name with
              | Some cell -> pins := (cell, dx, dy) :: !pins
              | None ->
                if not (Hashtbl.mem nodes name) then
                  fail r
                    (Printf.sprintf
                       "net pin references node '%s', which is not defined \
                        in the .nodes file"
                       name)
            in
            for _ = 1 to k do
              match next_line r with
              | Some pin_line ->
                (match tokens pin_line with
                | name :: _dir :: ":" :: dx :: dy :: _ ->
                  add_pin name (float_of_string dx) (float_of_string dy)
                | [ name; _dir ] -> add_pin name 0.0 0.0
                | _ -> fail r "expected '<node> <dir> : <dx> <dy>'")
              | None -> fail r "unterminated net"
            done;
            if !pins <> [] then nets := List.rev !pins :: !nets
          | _ -> fail r "expected 'NetDegree : <k> <name>'");
          read_net ()
      in
      read_net ();
      List.rev !nets)

let read ~aux =
  let dir = Filename.dirname aux in
  let r = open_reader aux in
  let files =
    Fun.protect
      ~finally:(fun () -> close_in r.ic)
      (fun () ->
        match next_line r with
        | Some line ->
          (match tokens line with
          | _kind :: ":" :: files -> files
          | _ -> fail r "expected 'RowBasedPlacement : <files>'")
        | None -> fail r "empty aux file")
  in
  let find_ext ext =
    match List.find_opt (fun f -> Filename.check_suffix f ext) files with
    | Some f -> Filename.concat dir f
    | None -> failwith (aux ^ ": no " ^ ext ^ " file listed")
  in
  let nodes, node_order = read_nodes (find_ext ".nodes") in
  let pl = read_pl (find_ext ".pl") in
  let rows = read_scl (find_ext ".scl") in
  (* uniform rows *)
  let row_height =
    match rows with
    | [] -> failwith (aux ^ ": no rows")
    | first :: rest ->
      List.iter
        (fun row ->
          if Float.abs (row.height -. first.height) > 1e-9 then
            failwith (aux ^ ": non-uniform row heights are not supported"))
        rest;
      first.height
  in
  let num_rows = List.length rows in
  let num_sites = List.fold_left (fun acc row -> max acc row.num_sites) 1 rows in
  let chip = Chip.make ~row_height ~num_rows ~num_sites () in
  (* every node lookup goes through this: a name that is referenced but
     missing from .nodes must name the file and the node, not escape as a
     bare Not_found *)
  let node_info name =
    match Hashtbl.find_opt nodes name with
    | Some node -> node
    | None ->
      failwith
        (Printf.sprintf
           "%s: node '%s' is referenced but not defined in the .nodes file"
           aux name)
  in
  (* split nodes into movable cells and terminal blockages, preserving file
     order for ids *)
  let movable = List.filter (fun name -> not (node_info name).terminal) node_order in
  let terminals = List.filter (fun name -> (node_info name).terminal) node_order in
  let to_rows name h =
    let k = h /. row_height in
    let ki = Float.round k in
    if Float.abs (k -. ki) > 1e-6 || ki < 1.0 then
      failwith
        (Printf.sprintf "%s: node %s height %g is not a row multiple" aux name h);
    int_of_float ki
  in
  let position name =
    match Hashtbl.find_opt pl name with
    | Some (x, y) -> (x, y /. row_height)
    | None -> failwith (Printf.sprintf "%s: node %s missing from .pl" aux name)
  in
  let xs = Array.make (List.length movable) 0.0 in
  let ys = Array.make (List.length movable) 0.0 in
  let node_index = Hashtbl.create 64 in
  let cells =
    Array.of_list
      (List.mapi
         (fun id name ->
           let node = node_info name in
           let h = to_rows name node.height in
           let x, y = position name in
           xs.(id) <- x;
           ys.(id) <- y;
           Hashtbl.replace node_index name id;
           let bottom_rail =
             if h mod 2 = 0 then begin
               (* bookshelf carries no rail data: adopt the rail of the
                  nearest in-range row so the input is rail-consistent *)
               let row =
                 max 0 (min (num_rows - h) (int_of_float (Float.round y)))
               in
               Some (Chip.bottom_rail chip row)
             end
             else None
           in
           Cell.make ~id ~name ~width:(int_of_float (Float.round node.width))
             ~height:h ?bottom_rail ())
         movable)
  in
  let blockages =
    Array.of_list
      (List.map
         (fun name ->
           let node = node_info name in
           let x, y = position name in
           Blockage.make
             ~row:(max 0 (int_of_float (Float.round y)))
             ~height:(to_rows name node.height)
             ~x:(max 0 (int_of_float (Float.round x)))
             ~width:(int_of_float (Float.round node.width)))
         terminals)
  in
  let nets =
    read_nets (find_ext ".nets") nodes node_index
    |> List.map (fun pins ->
           pins
           |> List.map (fun (cell, dx, dy) ->
                  let c = cells.(cell) in
                  (* center-relative -> bottom-left-relative *)
                  { Netlist.cell;
                    dx = dx +. (float_of_int c.Cell.width /. 2.0);
                    dy = (dy /. row_height) +. (float_of_int c.Cell.height /. 2.0) })
           |> Array.of_list)
  in
  Design.make ~blockages
    ~name:(Filename.remove_extension (Filename.basename aux))
    ~chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.make ~num_cells:(Array.length cells) nets)
    ()
