(** Exact small-window legalizer.

    Given a handful of cells (up to ~10), their candidate rows and the
    free x-intervals of each row (everything else — blockages, frozen
    neighbors, fence clips — is baked into those intervals), computes the
    placement minimizing total squared displacement

    {v sum_i (x_i - tx_i)^2 + (row_height * (r_i - ty_i))^2 v}

    over integer site positions and non-overlapping spans.

    The search is exact: it enumerates (row, free-interval) assignments
    with a lower-bound cut, and within each assignment runs
    branch-and-bound over left/right orderings of overlapping pairs, each
    node bounded by the convex continuous relaxation (a QP with
    difference and box constraints, solved by {!Mclh_qp.Active_set} from
    a longest-path feasible start). The difference-constraint system of a
    fixed order is a lattice polyhedron, so the continuous optimum rounds
    to an integer optimum within the surrounding unit box — the leaves
    enumerate that box (with a longest-path integral fallback), which
    keeps the leaf step exact rather than heuristic. *)

type cell = {
  id : int;  (** caller's identifier, echoed back *)
  width : int;  (** in sites, >= 1 *)
  height : int;  (** in rows, >= 1 *)
  rows : int array;  (** candidate bottom rows (already rail-filtered) *)
  target_x : float;  (** displacement reference, in sites *)
  target_y : float;  (** displacement reference, in rows *)
}

type solution = {
  xs : int array;  (** chosen site per cell, aligned with the input *)
  rows : int array;  (** chosen bottom row per cell *)
  cost : float;  (** total squared displacement *)
  nodes : int;  (** search nodes expanded *)
}

type outcome =
  | Optimal of solution  (** search completed: provably minimum *)
  | Feasible of solution
      (** node budget hit with an incumbent: valid but unproven *)
  | Infeasible  (** search completed: no legal arrangement exists *)
  | Budget_exceeded of int
      (** node budget hit before any arrangement was found *)

val solve :
  ?max_nodes:int ->
  ?row_height:float ->
  free:(int -> (int * int) list) ->
  cell array ->
  outcome
(** [solve ~free cells] minimizes total squared displacement. [free row]
    must return the free x-intervals of [row] as sorted disjoint
    half-open [(lo, hi)] site ranges with [lo >= 0]; a multi-row cell
    intersects the intervals of all its spanned rows. Defaults:
    [max_nodes = 20_000], [row_height = 1.0]. Never raises on any input:
    infeasibility and budget exhaustion are ordinary outcomes. *)
