open Mclh_linalg
open Mclh_qp

type cell = {
  id : int;
  width : int;
  height : int;
  rows : int array;
  target_x : float;
  target_y : float;
}

type solution = { xs : int array; rows : int array; cost : float; nodes : int }

type outcome =
  | Optimal of solution
  | Feasible of solution
  | Infeasible
  | Budget_exceeded of int

(* one admissible (row, free-interval) pair for a cell: the cell's left
   edge may sit anywhere in [lo, hi]; [base_cost] is the cost lower bound
   of the pair taken in isolation (clamped x target + fixed y term) *)
type choice = { row : int; lo : int; hi : int; base_cost : float }

exception Budget

let intersect a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | (a0, a1) :: ta, (b0, b1) :: tb ->
      let lo = max a0 b0 and hi = min a1 b1 in
      let acc = if lo < hi then (lo, hi) :: acc else acc in
      if a1 < b1 then go ta b acc else go a tb acc
  in
  go a b []

(* minimal solution of the difference system {x_j >= x_i + w_i} over
   [lo, hi] boxes, by Bellman-Ford longest path from the lower bounds;
   None when the system (with the boxes) is infeasible *)
let longest_path ~n ~lo ~hi ~w prec =
  let z = Array.copy lo in
  let changed = ref true and sweeps = ref 0 in
  while !changed && !sweeps <= n do
    changed := false;
    incr sweeps;
    List.iter
      (fun (i, j) ->
        if z.(j) < z.(i) + w.(i) then begin
          z.(j) <- z.(i) + w.(i);
          changed := true
        end)
      prec
  done;
  if !changed then None (* positive cycle: contradictory order *)
  else if Array.exists (fun k -> z.(k) > hi.(k)) (Array.init n Fun.id) then None
  else Some z

(* continuous relaxation of one ordering node:
   min sum (x_i - g_i)^2  s.t.  lo <= x <= hi, x_j - x_i >= w_i for prec.
   Returns (x, converged); x is always feasible (active-set iterates stay
   primal feasible, and on any solver hiccup we fall back to the
   longest-path start). *)
let relax ~n ~lo ~hi ~w ~g ~x0 prec =
  let nprec = List.length prec in
  let m = (2 * n) + nprec in
  let nnz = (2 * n) + (2 * nprec) in
  let row_ptr = Array.make (m + 1) 0 in
  let col_idx = Array.make nnz 0 in
  let values = Array.make nnz 0.0 in
  let rhs = Array.make m 0.0 in
  let r = ref 0 and k = ref 0 in
  let push_row entries b =
    List.iter
      (fun (c, v) ->
        col_idx.(!k) <- c;
        values.(!k) <- v;
        incr k)
      entries;
    rhs.(!r) <- b;
    incr r;
    row_ptr.(!r) <- !k
  in
  for i = 0 to n - 1 do
    push_row [ (i, 1.0) ] (float_of_int lo.(i));
    push_row [ (i, -1.0) ] (-.float_of_int hi.(i))
  done;
  List.iter
    (fun (i, j) ->
      let entries =
        if i < j then [ (i, -1.0); (j, 1.0) ] else [ (j, 1.0); (i, -1.0) ]
      in
      push_row entries (float_of_int w.(i)))
    prec;
  let b_mat = Csr.make ~rows:m ~cols:n ~row_ptr ~col_idx ~values in
  let q_mat = Csr.scale 2.0 (Csr.identity n) in
  let p = Array.init n (fun i -> -2.0 *. g.(i)) in
  let qp = Qp.make ~q_mat ~p ~b_mat ~b_rhs:rhs in
  match Active_set.solve ~x0 qp with
  | { Active_set.x; converged; _ } -> (x, converged)
  | exception Invalid_argument _ -> (x0, false)

let solve ?(max_nodes = 20_000) ?(row_height = 1.0) ~free (cells : cell array) =
  let n = Array.length cells in
  if n = 0 then Optimal { xs = [||]; rows = [||]; cost = 0.0; nodes = 0 }
  else begin
    let nodes = ref 0 in
    let tick () =
      incr nodes;
      if !nodes > max_nodes then raise Budget
    in
    let free_memo = Hashtbl.create 16 in
    let free_row r =
      match Hashtbl.find_opt free_memo r with
      | Some l -> l
      | None ->
        let l = free r in
        Hashtbl.add free_memo r l;
        l
    in
    let choices_of c =
      Array.to_list c.rows
      |> List.concat_map (fun r ->
             let ivals = ref (free_row r) in
             for k = r + 1 to r + c.height - 1 do
               ivals := intersect !ivals (free_row k)
             done;
             List.filter_map
               (fun (a, b) ->
                 if b - a >= c.width then begin
                   let lo = a and hi = b - c.width in
                   let cx =
                     Float.max (float_of_int lo)
                       (Float.min (float_of_int hi) c.target_x)
                   in
                   let dx = cx -. c.target_x in
                   let dy =
                     row_height *. (float_of_int r -. c.target_y)
                   in
                   Some { row = r; lo; hi; base_cost = (dx *. dx) +. (dy *. dy) }
                 end
                 else None)
               !ivals)
      |> List.sort (fun a b -> compare (a.base_cost, a.row, a.lo) (b.base_cost, b.row, b.lo))
      |> Array.of_list
    in
    let choices = Array.map choices_of cells in
    if Array.exists (fun a -> Array.length a = 0) choices then Infeasible
    else begin
      let widths = Array.map (fun c -> c.width) cells in
      let heights = Array.map (fun c -> c.height) cells in
      let g = Array.map (fun c -> c.target_x) cells in
      (* decide the cells with the fewest alternatives first: small
         branching factor near the root makes the bound cut early *)
      let perm = Array.init n Fun.id in
      Array.sort
        (fun a b ->
          compare (Array.length choices.(a), a) (Array.length choices.(b), b))
        perm;
      let suffix = Array.make (n + 1) 0.0 in
      for k = n - 1 downto 0 do
        suffix.(k) <- suffix.(k + 1) +. choices.(perm.(k)).(0).base_cost
      done;
      let best = ref None in
      let best_cost () =
        match !best with None -> infinity | Some s -> s.cost
      in
      let asg = Array.make n choices.(0).(0) in
      let record z cost =
        if cost < best_cost () -. 1e-12 then
          best :=
            Some
              { xs = Array.copy z;
                rows = Array.map (fun ch -> ch.row) asg;
                cost;
                nodes = !nodes }
      in
      (* ---- ordering branch-and-bound within one full assignment ---- *)
      let run_assignment () =
        let lo = Array.map (fun ch -> ch.lo) asg in
        let hi = Array.map (fun ch -> ch.hi) asg in
        let y_cost = ref 0.0 in
        Array.iteri
          (fun i ch ->
            let dy = row_height *. (float_of_int ch.row -. cells.(i).target_y) in
            y_cost := !y_cost +. (dy *. dy))
          asg;
        let y_cost = !y_cost in
        let asg_bound =
          Array.fold_left (fun acc ch -> acc +. ch.base_cost) 0.0 asg
        in
        let shares i j =
          asg.(i).row < asg.(j).row + heights.(j)
          && asg.(j).row < asg.(i).row + heights.(i)
        in
        let ordered prec i j =
          List.exists (fun (a, b) -> (a = i && b = j) || (a = j && b = i)) prec
        in
        let x_cost x =
          let acc = ref y_cost in
          for i = 0 to n - 1 do
            let d = x.(i) -. g.(i) in
            acc := !acc +. (d *. d)
          done;
          !acc
        in
        let int_cost z =
          let acc = ref y_cost in
          for i = 0 to n - 1 do
            let d = float_of_int z.(i) -. g.(i) in
            acc := !acc +. (d *. d)
          done;
          !acc
        in
        (* leaf: the continuous optimum [x] has no unordered overlap; an
           integer optimum of the induced total order lives in the unit
           box around [x] (lattice/L-natural-convex rounding), so
           enumerate it, with the longest-path minimal integral solution
           as a feasibility backstop *)
        let leaf x prec =
          let prec_full = ref prec in
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              if shares i j && not (ordered prec i j) then begin
                let ci = x.(i) +. (float_of_int widths.(i) /. 2.0) in
                let cj = x.(j) +. (float_of_int widths.(j) /. 2.0) in
                prec_full :=
                  (if ci <= cj then (i, j) else (j, i)) :: !prec_full
              end
            done
          done;
          let prec_full = !prec_full in
          (match longest_path ~n ~lo ~hi ~w:widths prec_full with
          | Some z -> record z (int_cost z)
          | None -> ());
          let cand =
            Array.init n (fun i ->
                let f = int_of_float (Float.floor x.(i)) in
                let clampi v = max lo.(i) (min hi.(i) v) in
                List.sort_uniq compare [ clampi f; clampi (f + 1) ])
          in
          let z = Array.make n 0 in
          let feas_against k i =
            (* z.(i) set; check against every decided cell, not just the
               branched pairs: any non-overlapping in-bounds layout is a
               valid incumbent regardless of which branch it belongs to *)
            let ok = ref true in
            for t = 0 to k - 1 do
              let j = t in
              if !ok && shares i j then
                if
                  not
                    (z.(i) + widths.(i) <= z.(j)
                    || z.(j) + widths.(j) <= z.(i))
                then ok := false
            done;
            !ok
          in
          let rec go k acc =
            if acc < best_cost () -. 1e-12 then
              if k = n then record z acc
              else
                List.iter
                  (fun v ->
                    z.(k) <- v;
                    if feas_against k k then begin
                      let d = float_of_int v -. g.(k) in
                      go (k + 1) (acc +. (d *. d))
                    end)
                  cand.(k)
          in
          go 0 y_cost
        in
        let rec node prec =
          tick ();
          match longest_path ~n ~lo ~hi ~w:widths prec with
          | None -> ()
          | Some z0 ->
            let x0 = Array.map float_of_int z0 in
            let x, converged = relax ~n ~lo ~hi ~w:widths ~g ~x0 prec in
            let lb = if converged then x_cost x else asg_bound in
            if lb < best_cost () -. 1e-12 then begin
              (* most-overlapping unordered pair in the relaxed layout *)
              let pick = ref None in
              for i = 0 to n - 1 do
                for j = i + 1 to n - 1 do
                  if shares i j && not (ordered prec i j) then begin
                    let ov =
                      Float.min
                        (x.(i) +. float_of_int widths.(i) -. x.(j))
                        (x.(j) +. float_of_int widths.(j) -. x.(i))
                    in
                    if ov > 1e-9 then
                      match !pick with
                      | Some (_, _, best_ov) when best_ov >= ov -> ()
                      | _ -> pick := Some (i, j, ov)
                  end
                done
              done;
              match !pick with
              | None -> leaf x prec
              | Some (i, j, _) ->
                if x.(i) <= x.(j) then begin
                  node ((i, j) :: prec);
                  node ((j, i) :: prec)
                end
                else begin
                  node ((j, i) :: prec);
                  node ((i, j) :: prec)
                end
            end
        in
        if asg_bound < best_cost () -. 1e-12 then node []
      in
      (* ---- enumerate (row, interval) assignments, best-first ---- *)
      let exception Break in
      let rec assign k acc =
        if acc +. suffix.(k) < best_cost () -. 1e-12 then
          if k = n then run_assignment ()
          else begin
            tick ();
            let i = perm.(k) in
            (try
               Array.iter
                 (fun ch ->
                   if acc +. ch.base_cost +. suffix.(k + 1)
                      >= best_cost () -. 1e-12
                   then raise Break (* choices are sorted: the rest lose *)
                   else begin
                     asg.(i) <- ch;
                     assign (k + 1) (acc +. ch.base_cost)
                   end)
                 choices.(i)
             with Break -> ())
          end
      in
      let truncated =
        try
          assign 0 0.0;
          false
        with Budget -> true
      in
      match (!best, truncated) with
      | Some s, false -> Optimal { s with nodes = !nodes }
      | Some s, true -> Feasible { s with nodes = !nodes }
      | None, false -> Infeasible
      | None, true -> Budget_exceeded !nodes
    end
  end
