(** Window extraction for the exact auditor.

    A window is a row band crossed with an x-range, carrying the cells
    that lie fully inside it and share one fence-membership class.
    Everything else — blockages, cells outside the window or of another
    class, the geometry of fence regions — is frozen and subtracted from
    the per-row free intervals the exact solver consumes. *)

open Mclh_circuit

type t = {
  row0 : int;  (** first row of the band *)
  rows : int;  (** band height in rows *)
  x0 : int;  (** left edge, in sites *)
  x1 : int;  (** right edge (exclusive) *)
  region : int option;  (** membership class of the window's cells *)
  cells : int list;  (** design cell ids fully inside, in id order *)
}

val extract :
  Design.t -> Placement.t ->
  row0:int -> rows:int -> x0:int -> x1:int -> region:int option -> t
(** Cells of membership [region] whose (rounded) placement lies fully
    inside the band and x-range. *)

val free : Design.t -> Placement.t -> t -> int -> (int * int) list
(** [free design pl w row] is the free x-intervals of [row] inside the
    window: the window's x-range minus blockages, minus the spans of all
    placed cells not in [w.cells], clipped to the window's membership
    geometry (inside the region for member windows, outside every region
    for default-class windows). Sorted, disjoint, half-open. *)

val sample :
  ?seed:int -> ?count:int -> ?max_cells:int ->
  Design.t -> Placement.t -> t list
(** Deterministic sample of up to [count] windows (default 16) of at most
    [max_cells] cells each (default 8), grown around randomly chosen seed
    cells and shrunk until small enough. Windows with no cells are
    discarded; fewer than [count] windows may be returned on tiny
    designs. *)
