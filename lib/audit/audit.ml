open Mclh_circuit
module Obs = Mclh_obs.Obs
module Json = Mclh_report.Json

type status =
  | Certified
  | Gap of float
  | Unproven of float
  | Window_infeasible
  | Budget_out

type window_report = {
  window : Window.t;
  cells : int;
  placed_cost : float;
  exact_cost : float;
  gap : float;
  status : status;
  nodes : int;
}

type summary = {
  sampled : int;
  audited : int;
  certified : int;
  max_gap : float;
  total_gap : float;
  infeasible : int;
  budget_out : int;
  reports : window_report list;
}

let placed_cost (design : Design.t) pl ids =
  let rh = design.Design.chip.Chip.row_height in
  List.fold_left
    (fun acc i ->
      let dx = pl.Placement.xs.(i) -. design.Design.global.Placement.xs.(i) in
      let dy =
        rh *. (pl.Placement.ys.(i) -. design.Design.global.Placement.ys.(i))
      in
      acc +. (dx *. dx) +. (dy *. dy))
    0.0 ids

let audit_window ?(max_nodes = 20_000) ?(tol = 1e-6) (design : Design.t) pl
    (w : Window.t) =
  let rh = design.Design.chip.Chip.row_height in
  let spec =
    List.map
      (fun i ->
        let c = design.Design.cells.(i) in
        (* rows pinned to the legalized row: the audit asks whether the
           x arrangement (and ordering) is optimal, the paper's Sec 5.3
           question, so row changes are not part of the window's freedom *)
        { Exact.id = i;
          width = c.Cell.width;
          height = c.Cell.height;
          rows = [| int_of_float (Float.round pl.Placement.ys.(i)) |];
          target_x = design.Design.global.Placement.xs.(i);
          target_y = design.Design.global.Placement.ys.(i) })
      w.Window.cells
    |> Array.of_list
  in
  let placed = placed_cost design pl w.Window.cells in
  let ncells = List.length w.Window.cells in
  match
    Exact.solve ~max_nodes ~row_height:rh ~free:(Window.free design pl w) spec
  with
  | Exact.Optimal s ->
    let gap = placed -. s.Exact.cost in
    { window = w;
      cells = ncells;
      placed_cost = placed;
      exact_cost = s.Exact.cost;
      gap;
      status = (if gap <= tol then Certified else Gap gap);
      nodes = s.Exact.nodes }
  | Exact.Feasible s ->
    let gap = placed -. s.Exact.cost in
    { window = w;
      cells = ncells;
      placed_cost = placed;
      exact_cost = s.Exact.cost;
      gap;
      status = Unproven gap;
      nodes = s.Exact.nodes }
  | Exact.Infeasible ->
    { window = w;
      cells = ncells;
      placed_cost = placed;
      exact_cost = Float.nan;
      gap = Float.nan;
      status = Window_infeasible;
      nodes = 0 }
  | Exact.Budget_exceeded nodes ->
    { window = w;
      cells = ncells;
      placed_cost = placed;
      exact_cost = Float.nan;
      gap = Float.nan;
      status = Budget_out;
      nodes }

let status_name = function
  | Certified -> "certified"
  | Gap _ -> "gap"
  | Unproven _ -> "unproven"
  | Window_infeasible -> "infeasible"
  | Budget_out -> "budget"

let to_json s =
  let window_json r =
    let w = r.window in
    Json.Obj
      [ ("row0", Json.Int w.Window.row0);
        ("rows", Json.Int w.Window.rows);
        ("x0", Json.Int w.Window.x0);
        ("x1", Json.Int w.Window.x1);
        ( "region",
          match w.Window.region with
          | Some k -> Json.Int k
          | None -> Json.Null );
        ("cells", Json.Int r.cells);
        ("placed_cost", Json.Float r.placed_cost);
        ("exact_cost", Json.Float r.exact_cost);
        ("gap", Json.Float r.gap);
        ("status", Json.String (status_name r.status));
        ("nodes", Json.Int r.nodes) ]
  in
  Json.Obj
    [ ("sampled", Json.Int s.sampled);
      ("audited", Json.Int s.audited);
      ("certified", Json.Int s.certified);
      ("max_gap", Json.Float s.max_gap);
      ("total_gap", Json.Float s.total_gap);
      ("infeasible", Json.Int s.infeasible);
      ("budget_out", Json.Int s.budget_out);
      ("windows", Json.List (List.map window_json s.reports)) ]

let run ?seed ?count ?max_cells ?(max_nodes = 20_000) ?(tol = 1e-6) ?obs design
    pl =
  let windows = Window.sample ?seed ?count ?max_cells design pl in
  let reports = List.map (audit_window ~max_nodes ~tol design pl) windows in
  let summary =
    List.fold_left
      (fun acc r ->
        match r.status with
        | Certified ->
          { acc with
            audited = acc.audited + 1;
            certified = acc.certified + 1 }
        | Gap g | Unproven g ->
          { acc with
            audited = acc.audited + 1;
            max_gap = Float.max acc.max_gap g;
            total_gap = acc.total_gap +. Float.max 0.0 g }
        | Window_infeasible -> { acc with infeasible = acc.infeasible + 1 }
        | Budget_out -> { acc with budget_out = acc.budget_out + 1 })
      { sampled = List.length reports;
        audited = 0;
        certified = 0;
        max_gap = 0.0;
        total_gap = 0.0;
        infeasible = 0;
        budget_out = 0;
        reports }
      reports
  in
  Obs.add obs "audit/windows" summary.sampled;
  Obs.add obs "audit/certified" summary.certified;
  Obs.add obs "audit/gap" (summary.audited - summary.certified);
  Obs.add obs "audit/infeasible" summary.infeasible;
  Obs.add obs "audit/budget" summary.budget_out;
  Obs.gauge obs "audit/max_gap" summary.max_gap;
  Obs.gauge obs "audit/total_gap" summary.total_gap;
  (match obs with
  | Some _ -> Obs.sub obs "audit/windows" (to_json summary)
  | None -> ());
  summary
