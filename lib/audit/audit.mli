(** Optimality auditing of a legalized placement.

    Samples small windows from a legal (or partially legal) placement,
    re-solves each exactly with {!Exact} (rows pinned to the legalized
    rows, targets taken from the global placement), and reports the
    per-window displacement gap

    {v gap = placed_cost - exact_cost >= 0 v}

    A zero gap certifies the window is optimally placed given everything
    around it — the Sec 5.3 single-height optimality check, generalized
    to arbitrary windows. *)

open Mclh_circuit

type status =
  | Certified  (** gap within tolerance: provably optimal window *)
  | Gap of float  (** proven positive gap *)
  | Unproven of float
      (** node budget hit: the reported gap is an upper bound *)
  | Window_infeasible
      (** the exact solver found no arrangement — only possible when the
          input placement was itself illegal inside the window *)
  | Budget_out  (** budget hit before any arrangement was found *)

type window_report = {
  window : Window.t;
  cells : int;
  placed_cost : float;  (** squared displacement of the input placement *)
  exact_cost : float;  (** exact (or best-found) optimum; nan if none *)
  gap : float;  (** placed - exact; nan if none *)
  status : status;
  nodes : int;
}

type summary = {
  sampled : int;
  audited : int;  (** windows with a solved exact optimum *)
  certified : int;
  max_gap : float;
  total_gap : float;
  infeasible : int;
  budget_out : int;
  reports : window_report list;
}

val run :
  ?seed:int ->
  ?count:int ->
  ?max_cells:int ->
  ?max_nodes:int ->
  ?tol:float ->
  ?obs:Mclh_obs.Obs.t ->
  Design.t ->
  Placement.t ->
  summary
(** Audits [count] sampled windows (defaults: [count = 16],
    [max_cells = 8], [max_nodes = 20_000], [tol = 1e-6]). Records the
    [audit/{windows,certified,gap,infeasible,budget}] counters, the
    [audit/{max_gap,total_gap}] gauges and an [audit/windows] sub-report
    into [obs]. Never raises. *)

val to_json : summary -> Mclh_report.Json.t
(** The [audit/windows] sub-report: summary fields plus one entry per
    window. *)
