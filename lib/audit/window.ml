open Mclh_circuit

type t = {
  row0 : int;
  rows : int;
  x0 : int;
  x1 : int;
  region : int option;
  cells : int list;
}

let rounded pl i =
  ( int_of_float (Float.round pl.Placement.xs.(i)),
    int_of_float (Float.round pl.Placement.ys.(i)) )

let extract (design : Design.t) pl ~row0 ~rows ~x0 ~x1 ~region =
  let inside = ref [] in
  Array.iteri
    (fun i (c : Cell.t) ->
      let x, r = rounded pl i in
      if
        c.Cell.region = region
        && r >= row0
        && r + c.Cell.height <= row0 + rows
        && x >= x0
        && x + c.Cell.width <= x1
      then inside := i :: !inside)
    design.Design.cells;
  { row0; rows; x0; x1; region; cells = List.rev !inside }

(* subtract the occupied span [s0, s1) from a sorted disjoint segment
   list; keeps the result sorted and disjoint *)
let subtract segs (s0, s1) =
  if s1 <= s0 then segs
  else
    List.concat_map
      (fun (a, b) ->
        if s1 <= a || b <= s0 then [ (a, b) ]
        else
          (if a < s0 then [ (a, s0) ] else [])
          @ if s1 < b then [ (s1, b) ] else [])
      segs

let free (design : Design.t) pl w row =
  if row < w.row0 || row >= w.row0 + w.rows then []
  else begin
    let num_sites = design.Design.chip.Chip.num_sites in
    let segs = ref [ (max 0 w.x0, min num_sites w.x1) ] in
    (* membership geometry first: member windows live inside their
       region's rectangles, default windows outside every region *)
    (match w.region with
    | Some k ->
      let reg = design.Design.regions.(k) in
      let allowed =
        List.filter_map
          (fun (r : Region.rect) ->
            if r.Region.row <= row && row < r.Region.row + r.Region.height
            then Some (r.Region.x, r.Region.x + r.Region.width)
            else None)
          reg.Region.rects
        |> List.sort compare
      in
      segs :=
        List.concat_map
          (fun (a, b) ->
            List.filter_map
              (fun (ra, rb) ->
                let lo = max a ra and hi = min b rb in
                if lo < hi then Some (lo, hi) else None)
              allowed)
          !segs
    | None ->
      Array.iter
        (fun (reg : Region.t) ->
          List.iter
            (fun (r : Region.rect) ->
              if r.Region.row <= row && row < r.Region.row + r.Region.height
              then segs := subtract !segs (r.Region.x, r.Region.x + r.Region.width))
            reg.Region.rects)
        design.Design.regions);
    Array.iter
      (fun (b : Blockage.t) ->
        if b.Blockage.row <= row && row < b.Blockage.row + b.Blockage.height
        then segs := subtract !segs (b.Blockage.x, b.Blockage.x + b.Blockage.width))
      design.Design.blockages;
    (* every placed cell outside the window freezes its span *)
    let in_window = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace in_window i ()) w.cells;
    Array.iteri
      (fun i (c : Cell.t) ->
        if not (Hashtbl.mem in_window i) then begin
          let x, r = rounded pl i in
          if r <= row && row < r + c.Cell.height then
            segs := subtract !segs (x, x + c.Cell.width)
        end)
      design.Design.cells;
    List.sort compare !segs
  end

let sample ?(seed = 1) ?(count = 16) ?(max_cells = 8) (design : Design.t) pl =
  let n = Design.num_cells design in
  if n = 0 then []
  else begin
    let chip = design.Design.chip in
    let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
    (* tiny deterministic LCG; benchgen's stream stays untouched *)
    let state = ref ((seed * 2) + 1) in
    let rand m =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod m
    in
    let windows = ref [] and found = ref 0 and attempts = ref 0 in
    while !found < count && !attempts < count * 8 do
      incr attempts;
      let i = rand n in
      let c = design.Design.cells.(i) in
      let x, r = rounded pl i in
      let region = c.Cell.region in
      let row0 = max 0 (r - 1) in
      let row_end = min num_rows (r + c.Cell.height + 1) in
      let rec shrink half =
        let x0 = max 0 (x - half) and x1 = min num_sites (x + c.Cell.width + half) in
        let w = extract design pl ~row0 ~rows:(row_end - row0) ~x0 ~x1 ~region in
        if List.length w.cells <= max_cells || half <= c.Cell.width then w
        else shrink (half * 2 / 3)
      in
      let w = shrink (16 + (2 * max_cells)) in
      (* a window that cannot shrink below the cap keeps the [max_cells]
         cells nearest the seed; the rest stay frozen obstacles *)
      let w =
        if List.length w.cells <= max_cells then w
        else
          let keep =
            List.sort
              (fun a b ->
                compare
                  (abs (fst (rounded pl a) - x), a)
                  (abs (fst (rounded pl b) - x), b))
              w.cells
            |> List.filteri (fun k _ -> k < max_cells)
            |> List.sort compare
          in
          { w with cells = keep }
      in
      if w.cells <> [] then begin
        windows := w :: !windows;
        incr found
      end
    done;
    List.rev !windows
  end
