type t =
  | Move of { cell : int; x : float; y : float }
  | Resize of { cell : int; width : int }
  | Insert of { width : int; height : int; x : float; y : float }
  | Delete of { cell : int }

let to_line = function
  | Move { cell; x; y } -> Printf.sprintf "move %d %.17g %.17g" cell x y
  | Resize { cell; width } -> Printf.sprintf "resize %d %d" cell width
  | Insert { width; height; x; y } ->
    Printf.sprintf "insert %d %d %.17g %.17g" width height x y
  | Delete { cell } -> Printf.sprintf "delete %d" cell

let header = "mclh-edits 1"

let parse_batches text =
  let lines = String.split_on_char '\n' text in
  let tokens line =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  let exception Bad of string in
  let int_tok what lineno s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "line %d: bad %s %S" lineno what s))
  in
  let float_tok what lineno s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> v
    | Some _ | None ->
      raise (Bad (Printf.sprintf "line %d: bad %s %S" lineno what s))
  in
  try
    let seen_header = ref false in
    let batches = ref [] and current = ref [] in
    let close_batch () =
      if !current <> [] then batches := List.rev !current :: !batches;
      current := []
    in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        match tokens line with
        | [] -> ()
        | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> ()
        | toks when not !seen_header ->
          if String.trim line = header then seen_header := true
          else
            raise
              (Bad
                 (Printf.sprintf "line %d: expected header %S, got %S" lineno
                    header (String.concat " " toks)))
        | [ "batch" ] -> close_batch ()
        | [ "move"; c; x; y ] ->
          current :=
            Move
              { cell = int_tok "cell id" lineno c;
                x = float_tok "x" lineno x;
                y = float_tok "y" lineno y }
            :: !current
        | [ "resize"; c; w ] ->
          current :=
            Resize
              { cell = int_tok "cell id" lineno c;
                width = int_tok "width" lineno w }
            :: !current
        | [ "insert"; w; h; x; y ] ->
          current :=
            Insert
              { width = int_tok "width" lineno w;
                height = int_tok "height" lineno h;
                x = float_tok "x" lineno x;
                y = float_tok "y" lineno y }
            :: !current
        | [ "delete"; c ] ->
          current := Delete { cell = int_tok "cell id" lineno c } :: !current
        | (("move" | "resize" | "insert" | "delete" | "batch") as op) :: _ ->
          raise
            (Bad
               (Printf.sprintf "line %d: wrong number of arguments for %S"
                  lineno op))
        | tok :: _ ->
          raise (Bad (Printf.sprintf "line %d: unknown edit %S" lineno tok)))
      lines;
    if not !seen_header then raise (Bad ("missing header " ^ header));
    close_batch ();
    Ok (List.rev !batches)
  with Bad msg -> Error msg

let read_file ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match parse_batches text with
  | Ok batches -> batches
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

let write_file ~path batches =
  let oc = open_out path in
  output_string oc (header ^ "\n");
  List.iteri
    (fun i batch ->
      if i > 0 then output_string oc "batch\n";
      List.iter (fun e -> output_string oc (to_line e ^ "\n")) batch)
    batches;
  close_out oc
