open Mclh_circuit
open Mclh_core
open Mclh_linalg
module Obs = Mclh_obs.Obs
module Clock = Mclh_par.Clock

type stats = {
  edits : int;
  touched_cells : int;
  dirty_components : int;
  components : int;
  dirty_shards : int;
  shards : int;
  cache_hits : int;
  solve_iterations : int;
  max_iterations : int;
  converged : bool;
  mismatch : float;
  latency_s : float;
}

(* a cached shard solution: the sub-LCP's positions, multipliers and
   final modulus in the shard's local numbering *)
type entry = { ex : Vec.t; er : Vec.t; es : Vec.t }

exception Busy

type t = {
  config : Config.t;
  obs : Obs.t option;
  min_shard_vars : int;
  cache : (Int64.t * Int64.t * int * int, entry) Hashtbl.t;
  in_apply : bool Atomic.t;  (* overlapping-[apply] guard (see [try_apply]) *)
  mutable design : Design.t;
  mutable assignment : Row_assign.t;
  mutable model : Model.t;
  mutable s : Vec.t;  (* previous global modulus vector, length n + m *)
  mutable legal : Placement.t;
  mutable batches : int;
  mutable solves : int;  (* session-global re-solve counter (trace names) *)
  mutable last : stats option;
}

(* one shard per component: a session wants the finest exact granularity
   so edits dirty as little as possible (the cold solver packs small
   components together instead, to amortize its per-job overhead — here
   clean shards cost only a fingerprint, so packing would hurt) *)
let default_min_shard_vars = 1

(* the cache never evicts individual entries (old solutions keep paying
   off when edits are reverted); past this size the whole table is reset
   and reseeded with the live generation, bounding memory on very long
   sessions *)
let max_cache_entries = 8192

(* ------------------------------------------------------------------ *)
(* shard fingerprint                                                   *)

(* the 128-bit pure-LCP fingerprint lives in [Decompose.shard_key] (the
   solver's backend chooser reads the same structural features); the
   cache is keyed on it directly *)
let shard_key = Decompose.shard_key

(* the decomposition's [[||]] fallback means "solve monolithically"; the
   session still needs a shard to fingerprint, so synthesize the identity
   shard covering the whole model *)
let effective_shards (model : Model.t) (deco : Decompose.t) =
  if Array.length deco.Decompose.shards > 0 then deco.Decompose.shards
  else [| Decompose.identity_shard model |]

let gather_entry (model : Model.t) ~x ~r ~s (shard : Decompose.shard) =
  let n = model.Model.nvars in
  let sn = Array.length shard.Decompose.vars in
  let sm = Array.length shard.Decompose.cons in
  { ex = Array.map (fun v -> x.(v)) shard.Decompose.vars;
    er = Array.map (fun c -> r.(c)) shard.Decompose.cons;
    es =
      Vec.init (sn + sm) (fun i ->
          if i < sn then s.(shard.Decompose.vars.(i))
          else s.(n + shard.Decompose.cons.(i - sn))) }

(* ------------------------------------------------------------------ *)
(* edit application                                                    *)

let insert_cell ~id ~width ~height ~y (chip : Chip.t) =
  let bottom_rail =
    if height mod 2 = 1 then None
    else begin
      (* even-height cells need a designed rail: adopt the rail of the
         nearest in-range row, so the insertion point admits the cell *)
      let max_row = chip.Chip.num_rows - height in
      if max_row < 0 then
        invalid_arg "Incr.apply: inserted cell is taller than the chip";
      let r = int_of_float (Float.round y) in
      let r = if r < 0 then 0 else if r > max_row then max_row else r in
      Some (Chip.bottom_rail chip r)
    end
  in
  Cell.make ~id ~width ~height ?bottom_rail ()

(* One batch of edits against [design]. All cell ids refer to the
   pre-batch numbering; modifications apply first, then deletions compact
   ids and insertions append after the survivors. Returns the new design,
   [old_of_new] (new cell id -> pre-batch id, -1 for inserts) and the
   touched flags (moved / resized / inserted) in new numbering. *)
let apply_edits (design : Design.t) edits =
  let n = Design.num_cells design in
  let deleted = Array.make n false in
  let touched = Array.make n false in
  let widths = Array.init n (fun i -> design.Design.cells.(i).Cell.width) in
  let gx = Array.copy design.Design.global.Placement.xs in
  let gy = Array.copy design.Design.global.Placement.ys in
  let inserts = ref [] and num_inserts = ref 0 in
  let check op c =
    if c < 0 || c >= n then
      invalid_arg
        (Printf.sprintf "Incr.apply: %s references cell %d (design has %d cells)"
           op c n);
    if deleted.(c) then
      invalid_arg
        (Printf.sprintf
           "Incr.apply: %s targets cell %d, already deleted in this batch" op c)
  in
  List.iter
    (function
      | Edit.Move { cell; x; y } ->
        check "move" cell;
        gx.(cell) <- x;
        gy.(cell) <- y;
        touched.(cell) <- true
      | Edit.Resize { cell; width } ->
        check "resize" cell;
        if width < 1 then invalid_arg "Incr.apply: resize width must be >= 1";
        widths.(cell) <- width;
        touched.(cell) <- true
      | Edit.Delete { cell } ->
        check "delete" cell;
        deleted.(cell) <- true
      | Edit.Insert { width; height; x; y } ->
        if width < 1 || height < 1 then
          invalid_arg "Incr.apply: insert dimensions must be >= 1";
        inserts := (width, height, x, y) :: !inserts;
        incr num_inserts)
    edits;
  let inserts = Array.of_list (List.rev !inserts) in
  let new_of_old = Array.make n (-1) in
  let survivors = ref 0 in
  for i = 0 to n - 1 do
    if not deleted.(i) then begin
      new_of_old.(i) <- !survivors;
      incr survivors
    end
  done;
  let survivors = !survivors in
  let n' = survivors + !num_inserts in
  if n' = 0 then invalid_arg "Incr.apply: the batch deletes every cell";
  let old_of_new = Array.make n' (-1) in
  for i = 0 to n - 1 do
    if new_of_old.(i) >= 0 then old_of_new.(new_of_old.(i)) <- i
  done;
  let cells' =
    Array.init n' (fun id ->
        let oc = old_of_new.(id) in
        if oc >= 0 then
          let c = design.Design.cells.(oc) in
          Cell.make ~id ~name:c.Cell.name ~width:widths.(oc)
            ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail
            ?region:c.Cell.region ()
        else
          let w, h, _, y = inserts.(id - survivors) in
          insert_cell ~id ~width:w ~height:h ~y design.Design.chip)
  in
  let coord proj =
    Array.init n' (fun id ->
        let oc = old_of_new.(id) in
        if oc >= 0 then (fst proj).(oc)
        else (snd proj) inserts.(id - survivors))
  in
  let xs = coord (gx, fun (_, _, x, _) -> x) in
  let ys = coord (gy, fun (_, _, _, y) -> y) in
  let touched' =
    Array.init n' (fun id ->
        let oc = old_of_new.(id) in
        if oc >= 0 then touched.(oc) else true)
  in
  let nets = ref [] in
  Netlist.iter design.Design.nets (fun _ pins ->
      let kept =
        Array.to_list pins
        |> List.filter_map (fun (p : Netlist.pin) ->
               let nc = new_of_old.(p.Netlist.cell) in
               if nc < 0 then None else Some { p with Netlist.cell = nc })
      in
      if kept <> [] then nets := Array.of_list kept :: !nets);
  let nets' = Netlist.make ~num_cells:n' (List.rev !nets) in
  let design' =
    Design.make ~blockages:design.Design.blockages ~name:design.Design.name
      ~chip:design.Design.chip ~cells:cells'
      ~global:(Placement.make ~xs ~ys)
      ~nets:nets' ()
  in
  (design', old_of_new, touched')

(* ------------------------------------------------------------------ *)
(* warm start across a model rebuild                                   *)

(* Carry the previous modulus vector to the new model's numbering.
   Variables map by (pre-batch cell id, row) identity; constraints by
   their (left, right) variable-identity pair. Touched cells take the
   paper's plain start at their *new* target (their old modulus reflects
   the old position); unmapped constraints start at 0. *)
let warm_s0 (old_model : Model.t) old_s (model' : Model.t) ~old_of_new
    ~touched (config : Config.t) =
  let n_old = old_model.Model.nvars in
  let n' = model'.Model.nvars and m' = Model.num_constraints model' in
  let old_var = Hashtbl.create (2 * n_old) in
  for v = 0 to n_old - 1 do
    Hashtbl.replace old_var
      (old_model.Model.var_cell.(v), old_model.Model.var_row.(v))
      v
  done;
  let old_con = Hashtbl.create 256 in
  Array.iteri
    (fun i (u, v) ->
      Hashtbl.replace old_con
        ( (old_model.Model.var_cell.(u), old_model.Model.var_row.(u)),
          (old_model.Model.var_cell.(v), old_model.Model.var_row.(v)) )
        i)
    (Decompose.constraint_pairs old_model);
  (* identity of a new variable in pre-batch terms; None for inserted or
     touched cells *)
  let ident v' =
    let c = model'.Model.var_cell.(v') in
    if touched.(c) then None
    else
      let oc = old_of_new.(c) in
      if oc < 0 then None else Some (oc, model'.Model.var_row.(v'))
  in
  let s0 = Vec.zeros (n' + m') in
  for v' = 0 to n' - 1 do
    let mapped =
      match ident v' with
      | None -> None
      | Some key -> Hashtbl.find_opt old_var key
    in
    s0.(v') <-
      (match mapped with
      | Some ov -> old_s.(ov)
      | None -> config.Config.gamma /. 2.0 *. -.model'.Model.p.(v'))
  done;
  Array.iteri
    (fun i (u', v') ->
      match (ident u', ident v') with
      | Some ku, Some kv -> (
        match Hashtbl.find_opt old_con (ku, kv) with
        | Some oc -> s0.(n' + i) <- old_s.(n_old + oc)
        | None -> ())
      | _ -> ())
    (Decompose.constraint_pairs model');
  s0

(* ------------------------------------------------------------------ *)
(* dirty-shard re-solve                                                *)

type resolve_out = {
  rx : Vec.t;
  rr : Vec.t;
  rs : Vec.t;
  r_hits : int;
  r_misses : int;
  r_iter_sum : int;
  r_iter_max : int;
  r_converged : bool;
}

let resolve t (model' : Model.t) shards s0 =
  let n' = model'.Model.nvars and m' = Model.num_constraints model' in
  let nsh = Array.length shards in
  let keys = Array.map (shard_key model') shards in
  let found = Array.map (Hashtbl.find_opt t.cache) keys in
  let miss_idx =
    Array.of_list
      (List.filter
         (fun i -> found.(i) = None)
         (List.init nsh Fun.id))
  in
  let sub_config =
    { t.config with Config.decompose = false; verify_bound = false }
  in
  let job i =
    let shard = shards.(i) in
    let sn = Array.length shard.Decompose.vars in
    let sm = Array.length shard.Decompose.cons in
    let s0_loc =
      Vec.init (sn + sm) (fun k ->
          if k < sn then s0.(shard.Decompose.vars.(k))
          else s0.(n' + shard.Decompose.cons.(k - sn)))
    in
    (* pool jobs record into job-local recorders; traces are attached to
       the session recorder after fan-in (recorders are not thread-safe) *)
    let job_obs = match t.obs with None -> None | Some _ -> Some (Obs.create ()) in
    let res =
      Solver.solve ~config:sub_config ?obs:job_obs ~s0:s0_loc
        (Decompose.extract model' shard)
    in
    (i, res, job_obs)
  in
  let results =
    if Array.length miss_idx <= 1 || t.config.Config.num_domains <= 1 then
      Array.map job miss_idx
    else begin
      let pool = Mclh_par.Pool.get ~num_domains:t.config.Config.num_domains in
      if Mclh_par.Pool.oversubscribed pool then Array.map job miss_idx
      else Mclh_par.Pool.parallel_map pool job miss_idx
    end
  in
  let entries = Array.map (fun e -> e) found in
  let iter_sum = ref 0 and iter_max = ref 0 and converged = ref true in
  Array.iter
    (fun (i, (res : Solver.result), job_obs) ->
      (match (t.obs, job_obs) with
      | Some _, Some jo ->
        let name = Printf.sprintf "incr/solve%04d" t.solves in
        (match Obs.find_trace jo "solver/delta_inf" with
        | Some tr -> Obs.attach_trace t.obs (name ^ "/delta_inf") tr
        | None -> ());
        Obs.add t.obs (name ^ "/iterations") res.Solver.iterations;
        Obs.add t.obs (name ^ "/dim") (Decompose.shard_dim shards.(i))
      | _ -> ());
      t.solves <- t.solves + 1;
      iter_sum := !iter_sum + res.Solver.iterations_total;
      if res.Solver.iterations > !iter_max then
        iter_max := res.Solver.iterations;
      if not res.Solver.converged then converged := false;
      entries.(i) <-
        Some
          { ex = res.Solver.x; er = res.Solver.r; es = res.Solver.modulus })
    results;
  (* scatter every shard (hit or fresh) into the global solution *)
  let rx = Vec.zeros n' and rr = Vec.zeros m' in
  let rs = Vec.zeros (n' + m') in
  Array.iteri
    (fun i shard ->
      let e = match entries.(i) with Some e -> e | None -> assert false in
      Decompose.scatter_vars shard e.ex rx;
      Decompose.scatter_cons shard e.er rr;
      let sn = Array.length shard.Decompose.vars in
      Array.iteri (fun k v -> rs.(v) <- e.es.(k)) shard.Decompose.vars;
      Array.iteri
        (fun k c -> rs.(n' + c) <- e.es.(sn + k))
        shard.Decompose.cons)
    shards;
  (* refresh the cache with the live generation; reset first if the table
     outgrew its cap *)
  if Hashtbl.length t.cache > max_cache_entries then Hashtbl.reset t.cache;
  Array.iteri
    (fun i key ->
      match entries.(i) with
      | Some e -> Hashtbl.replace t.cache key e
      | None -> ())
    keys;
  { rx;
    rr;
    rs;
    r_hits = nsh - Array.length miss_idx;
    r_misses = Array.length miss_idx;
    r_iter_sum = !iter_sum;
    r_iter_max = !iter_max;
    r_converged = !converged }

(* ------------------------------------------------------------------ *)
(* session                                                             *)

let of_flow ?(config = Config.default) ?obs
    ?(min_shard_vars = default_min_shard_vars) (flow : Flow.result) =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Incr.of_flow: " ^ msg));
  if min_shard_vars < 1 then
    invalid_arg "Incr.of_flow: min_shard_vars must be >= 1";
  let model = flow.Flow.model in
  let design = model.Model.design in
  if Array.length design.Design.regions > 0 then
    invalid_arg
      "Incr: fenced designs are not supported; create one session per \
       territory";
  let t =
    { config;
      obs;
      min_shard_vars;
      cache = Hashtbl.create 256;
      in_apply = Atomic.make false;
      design;
      assignment = model.Model.assignment;
      model;
      s = flow.Flow.solver.Solver.modulus;
      legal = flow.Flow.legal;
      batches = 0;
      solves = 0;
      last = None }
  in
  (* seed the cache with every current shard's slice of the initial
     solution, so the first batch already hits on clean shards *)
  let deco = Decompose.analyze ~min_shard_vars model in
  let shards = effective_shards model deco in
  let x = flow.Flow.solver.Solver.x and r = flow.Flow.solver.Solver.r in
  Array.iter
    (fun shard ->
      Hashtbl.replace t.cache (shard_key model shard)
        (gather_entry model ~x ~r ~s:t.s shard))
    shards;
  t

let create ?(config = Config.default) ?obs ?min_shard_vars design =
  if Array.length design.Design.regions > 0 then
    invalid_arg
      "Incr.create: fenced designs are not supported; create one session \
       per territory";
  let flow = Flow.run ~config ?obs design in
  of_flow ~config ?obs ?min_shard_vars flow

let design t = t.design
let legal t = Placement.copy t.legal
let num_batches t = t.batches
let cache_entries t = Hashtbl.length t.cache
let last_stats t = t.last

let busy t = Atomic.get t.in_apply

let apply_locked t edits =
  let start = Clock.now () in
  let obs = t.obs in
  Obs.incr obs "incr/batches";
  Obs.add obs "incr/edits" (List.length edits);
  let (design', old_of_new, touched, assignment'), assign_s =
    Clock.timed (fun () ->
        let design', old_of_new, touched = apply_edits t.design edits in
        (* touched cells re-assign; everything else keeps its row (the
           assignment is per-cell independent, so this equals a cold
           [Row_assign.assign] of the new design exactly) *)
        let n' = Design.num_cells design' in
        let rows = Array.make n' 0 in
        for c = 0 to n' - 1 do
          let oc = old_of_new.(c) in
          if oc >= 0 && not touched.(c) then
            rows.(c) <- t.assignment.Row_assign.rows.(oc)
          else rows.(c) <- Row_assign.assign_cell design' c
        done;
        let assignment' =
          { Row_assign.rows;
            y_displacement = Row_assign.y_displacement design' rows }
        in
        (design', old_of_new, touched, assignment'))
  in
  Obs.record_span obs "incr/assign" assign_s;
  let model', model_s = Clock.timed (fun () -> Model.build design' assignment') in
  let (deco', shards'), decomp_s =
    Clock.timed (fun () ->
        let deco' = Decompose.analyze ~min_shard_vars:t.min_shard_vars model' in
        (deco', effective_shards model' deco'))
  in
  Obs.record_span obs "incr/model" (model_s +. decomp_s);
  let touched_cells =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 touched
  in
  let dirty_components =
    let seen = Array.make deco'.Decompose.num_components false in
    let count = ref 0 in
    for v = 0 to model'.Model.nvars - 1 do
      if touched.(model'.Model.var_cell.(v)) then begin
        let c = deco'.Decompose.comp_of_var.(v) in
        if not seen.(c) then begin
          seen.(c) <- true;
          incr count
        end
      end
    done;
    !count
  in
  let out, solve_s =
    Clock.timed (fun () ->
        let s0 =
          warm_s0 t.model t.s model' ~old_of_new ~touched t.config
        in
        resolve t model' shards' s0)
  in
  Obs.record_span obs "incr/solve" solve_s;
  let mismatch = Model.subcell_mismatch model' out.rx in
  let alloc, alloc_s =
    Clock.timed (fun () ->
        Tetris_alloc.run ?obs design' (Model.placement_of model' out.rx))
  in
  Obs.record_span obs "incr/alloc" alloc_s;
  t.design <- design';
  t.assignment <- assignment';
  t.model <- model';
  t.s <- out.rs;
  t.legal <- alloc.Tetris_alloc.placement;
  t.batches <- t.batches + 1;
  let latency_s = Clock.now () -. start in
  Obs.record_span obs "incr/total" latency_s;
  Obs.add obs "incr/touched_cells" touched_cells;
  Obs.add obs "incr/dirty_components" dirty_components;
  Obs.add obs "incr/dirty_shards" out.r_misses;
  Obs.add obs "incr/cache_hits" out.r_hits;
  Obs.add obs "incr/solve_iterations" out.r_iter_sum;
  Obs.gauge obs "incr/mismatch" mismatch;
  let stats =
    { edits = List.length edits;
      touched_cells;
      dirty_components;
      components = deco'.Decompose.num_components;
      dirty_shards = out.r_misses;
      shards = Array.length shards';
      cache_hits = out.r_hits;
      solve_iterations = out.r_iter_sum;
      max_iterations = out.r_iter_max;
      converged = out.r_converged;
      mismatch;
      latency_s }
  in
  t.last <- Some stats;
  stats

(* The session's mutable state (design/model/modulus/cache) is updated in
   place: two overlapping [apply] calls would interleave those writes and
   corrupt the session. The restriction used to live only in the mli; a
   threaded host (the [Mclh_serve] daemon) needs it enforced, so entry is
   guarded by an atomic flag — the loser gets a typed rejection instead of
   silent corruption. *)
let try_apply t edits =
  if not (Atomic.compare_and_set t.in_apply false true) then Error `Busy
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.in_apply false)
      (fun () -> Ok (apply_locked t edits))

let apply t edits =
  match try_apply t edits with Ok stats -> stats | Error `Busy -> raise Busy
