(** Incremental ECO re-legalization.

    A session holds a legalized design plus the solver state that produced
    it — the x-LCP model, its component decomposition and the final MMSIM
    modulus vector — and re-legalizes {!Edit} batches at a fraction of the
    full-flow cost. Three mechanisms stack:

    - {b dirty components}: the LCP splits into exact independent
      components ({!Mclh_core.Decompose}), so an edit can only change the
      solution of the components it touches. Touched cells map through
      [comp_of_var] to a dirty set; components whose constraint structure
      changed indirectly (a neighbour moved in or out of the segment) are
      caught by the fingerprint test below.
    - {b solution cache}: each shard's sub-LCP is fingerprinted over its
      pure LCP content — dimensions, local group/chain structure, [p] and
      [b_rhs] — deliberately excluding cell ids, so insert/delete
      renumbering cannot poison it and moving a cell back re-hits the old
      entry. Equal LCPs have equal (unique) solutions, so a hit skips the
      solve entirely.
    - {b warm start}: cache misses re-solve with [?s0] built from the
      previous modulus vector, carried across the rebuild by cell identity
      (variables) and adjacent-pair identity (constraints); unmapped
      entries fall back to the paper's plain start.

    The fixed point of each sub-LCP is unique, so a session's placement
    matches a cold full re-legalization of the same design to within the
    iteration tolerance regardless of cache and warm-start history
    (equivalence is asserted by the test suite and [bench/eco.ml]).

    Sessions are single-threaded on the outside (one [apply] at a time);
    dirty-shard solves fan out over the domain pool internally exactly
    like the cold solver. The restriction is {e enforced}: overlapping
    [apply] calls from a threaded host are rejected with {!Busy} /
    [Error `Busy] instead of silently corrupting the session (see
    {!try_apply}). Fence regions are not supported — create a session per
    territory instead. *)

open Mclh_circuit
open Mclh_core

type stats = {
  edits : int;  (** edits in the batch *)
  touched_cells : int;  (** cells moved, resized or inserted *)
  dirty_components : int;
      (** components containing a touched cell's variables *)
  components : int;  (** total components after the batch *)
  dirty_shards : int;  (** shards re-solved (fingerprint misses) *)
  shards : int;  (** total shards after the batch *)
  cache_hits : int;  (** shards reused from the solution cache *)
  solve_iterations : int;  (** MMSIM iterations summed over re-solves *)
  max_iterations : int;  (** largest single re-solve iteration count *)
  converged : bool;  (** every re-solve converged *)
  mismatch : float;  (** subcell mismatch of the assembled solution *)
  latency_s : float;  (** wall-clock time of the whole [apply] *)
}

type t

val default_min_shard_vars : int
(** Shard granularity of a session's decomposition: [1], i.e. one shard
    per component. The cold solver packs tiny components together
    ({!Decompose.default_min_shard_vars}) to amortize fan-out overhead;
    a session wants the opposite — the finest exact granularity — so the
    dirty set and the cache keys stay minimal. *)

val create :
  ?config:Config.t ->
  ?obs:Mclh_obs.Obs.t ->
  ?min_shard_vars:int ->
  Design.t ->
  t
(** Runs the full flow once ({!Flow.run}) and wraps the result in a
    session. The config is fixed for the session's lifetime. [obs] is
    shared across the initial legalization and every later {!apply}.
    @raise Invalid_argument on fenced designs or an invalid config. *)

val of_flow :
  ?config:Config.t ->
  ?obs:Mclh_obs.Obs.t ->
  ?min_shard_vars:int ->
  Flow.result ->
  t
(** Wraps an existing flow result (same config that produced it!) without
    re-running anything; the cache is seeded with every shard's slice of
    the flow's solution. *)

val design : t -> Design.t
(** The current design (reflects all applied batches). *)

val legal : t -> Placement.t
(** The current legal placement. *)

val num_batches : t -> int

val cache_entries : t -> int
(** Live solution-cache entries (the cache is capped; see [incr.ml]). *)

val last_stats : t -> stats option
(** Stats of the most recent {!apply} ([None] before the first). *)

exception Busy
(** Raised by {!apply} when another [apply] on the same session is still
    in flight (sessions are single-threaded on the outside; see
    {!try_apply}). *)

val busy : t -> bool
(** True while an {!apply} is in flight on this session. Advisory only —
    the session may become busy (or free) between this read and a
    subsequent call; use {!try_apply} to claim it atomically. *)

val apply : t -> Edit.t list -> stats
(** Applies one edit batch and re-legalizes. All cell ids in the batch
    refer to the design as of the start of the batch; deletions compact
    ids (later cells shift down one) and insertions append after the
    survivors, in edit order, taking effect together when [apply]
    returns.

    [obs] (from {!create}) records per-batch counters
    [incr/{batches,edits,touched_cells,dirty_components,dirty_shards,
    cache_hits,solve_iterations}], the [incr/{assign,model,solve,alloc,
    total}] spans, an [incr/mismatch] gauge and one
    [incr/solveNNNN/delta_inf] warm-start convergence trace per re-solved
    shard (NNNN is a session-global solve counter).

    @raise Invalid_argument on an edit referencing an out-of-range or
      already-deleted cell, a non-positive resize/insert dimension, or a
      batch that deletes every cell.
    @raise Failure if an edit leaves a cell no admissible row or the
      Tetris stage cannot place a cell (design over capacity).
    @raise Busy when another [apply] on this session is still in
      flight — the batch is not applied and the session is unchanged. *)

val try_apply : t -> Edit.t list -> (stats, [ `Busy ]) result
(** Like {!apply} but returns [Error `Busy] instead of raising {!Busy}
    when the session is already applying a batch. The claim is a single
    atomic compare-and-set, so exactly one of any set of concurrent
    callers wins; the session is released when the apply returns or
    raises. Domain-level failures ([Invalid_argument], [Failure]) leave
    the session's design and placement at their pre-batch state. *)
