(** ECO edits: the change vocabulary of the incremental engine.

    An engineering change order arrives as batches of small edits against
    the current design — move a cell's global position, resize its width,
    insert a fresh cell, delete one. Batches are the unit of
    re-legalization: {!Incr.apply} consumes one batch and produces one
    updated legal placement.

    {2 Edits file format}

    A plain text format mirroring the native design/placement files:

    {v
    mclh-edits 1
    # move <cell> <x> <y>      new global position (sites, rows)
    move 12 103.5 7.25
    # resize <cell> <width>    new width in sites
    resize 3 9
    # insert <width> <height> <x> <y>
    insert 6 2 40 3.25
    # delete <cell>
    delete 44
    batch
    move 2 10 1
    v}

    [#]-comments and blank lines are ignored; a [batch] line closes the
    current batch and starts the next (empty batches are dropped). Cell
    ids refer to the design {e as of the start of the batch}: every edit
    in a batch addresses the same pre-batch numbering, and renumbering
    from inserts/deletes only takes effect between batches (see
    {!Incr.apply}). *)

type t =
  | Move of { cell : int; x : float; y : float }
      (** re-place cell [cell]'s global position at ([x], [y]) (site /
          row units, fractional allowed) *)
  | Resize of { cell : int; width : int }  (** new width in sites *)
  | Insert of { width : int; height : int; x : float; y : float }
      (** a new cell of the given footprint at global position ([x],
          [y]); appended after all surviving cells, in edit order *)
  | Delete of { cell : int }
      (** remove cell [cell]; later cells shift down one id *)

val to_line : t -> string
(** The edit as one line of the edits file format. *)

val parse_batches : string -> (t list list, string) result
(** Parses a whole edits file ([Error] carries a message with the
    offending line number). *)

val read_file : path:string -> t list list
(** {!parse_batches} on a file's contents.
    @raise Failure with the path and parse error on malformed input. *)

val write_file : path:string -> t list list -> unit
(** Writes batches in the file format (inverse of {!read_file} up to
    comments and empty batches). *)
