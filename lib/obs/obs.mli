(** Run-scoped metrics recorder: counters, span timers, convergence traces.

    One recorder ([t]) collects everything a single legalization run (or
    bench kernel) wants to report: monotonic integer counters, float
    gauges, cumulative wall-clock spans ({!Mclh_par.Clock}), bounded
    {!Trace} ring buffers, and nested sub-reports (e.g. one per fence
    territory). {!Run_report} serializes a recorder to the versioned JSON
    artifact.

    {b Gating.} Instrumented code receives a [t option] and every
    recording helper takes the option directly: with [None] each call is
    a single branch and zero allocation, so the instrumentation compiles
    to near-zero overhead when metrics are off — in particular the MMSIM
    steady state stays allocation-free (asserted in [test_decompose.ml]).
    Recorders are created by callers when [Config.metrics] is set, which
    defaults to the [MCLH_METRICS] environment gate ({!enabled_from_env}).

    {b Threading.} A recorder itself is not thread-safe; parallel stages
    (pool jobs) create their own recorder or trace per job and the
    orchestrating thread aggregates after fan-in — the same discipline the
    solver uses for result scattering. *)

type t

val create : unit -> t

val enabled_from_env : unit -> bool
(** The [MCLH_METRICS] environment gate: [true] for ["1"], ["true"],
    ["on"], ["yes"]. *)

(** {1 Recording} — all no-ops on [None] *)

val incr : t option -> string -> unit
(** Increment a named monotonic counter (created at 0 on first use). *)

val add : t option -> string -> int -> unit
(** Add to a named counter. *)

val gauge : t option -> string -> float -> unit
(** Set a named float gauge (last write wins). *)

val record_span : t option -> string -> float -> unit
(** Add elapsed seconds to a named cumulative span. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span obs name f] runs [f] and records its wall-clock duration under
    [name]; with [None] it is exactly [f ()]. *)

val new_trace : t option -> string -> capacity:int -> Trace.t option
(** Create and attach a ring-buffer trace; [None] when metrics are off
    (callers skip recording entirely). *)

val attach_trace : t option -> string -> Trace.t -> unit
(** Attach a trace created elsewhere (e.g. inside a pool job). *)

val sub : t option -> string -> Mclh_report.Json.t -> unit
(** Attach a nested sub-report (e.g. a fence territory's own report). *)

val peak_rss_kb : unit -> int option
(** Peak resident set size of this process in kB, read from the [VmHWM]
    line of [/proc/self/status]. A kernel-maintained process-lifetime
    high-water mark: one file read, no sampling thread, but values only
    ever grow across a process (callers measuring several runs in one
    process should order them smallest-first if they want per-run
    peaks). [None] on platforms without procfs. *)

(** {1 Read-back} — name-sorted for deterministic serialization *)

val counters : t -> (string * int) list
val gauges : t -> (string * float) list
val spans : t -> (string * float) list
val traces : t -> (string * Trace.t) list
val subs : t -> (string * Mclh_report.Json.t) list

val counter_value : t -> string -> int
(** [0] for a counter never touched. *)

val find_trace : t -> string -> Trace.t option
