(** The versioned JSON run-report artifact.

    Serializes an {!Obs} recorder into a stable, machine-readable document:

    {v
    { "schema": "mclh-run-report",
      "version": 1,
      "meta":        { ...caller-supplied run identity... },
      "counters":    { "<name>": int, ... },
      "gauges":      { "<name>": float, ... },
      "spans_s":     { "<name>": float, ... },
      "traces":      { "<name>": { "capacity": int, "recorded": int,
                                   "values": [float...] }, ... },
      "sub_reports": { "<name>": <nested report or fragment>, ... } }
    v}

    Section entries are name-sorted, so two runs with the same recordings
    produce byte-identical documents (golden-tested). Consumers must check
    [schema]/[version] ({!validate}) before interpreting the rest. *)

open Mclh_report

val schema : string
val version : int

val to_json : ?meta:(string * Json.t) list -> Obs.t -> Json.t
(** Assemble the report; [meta] lands verbatim under the ["meta"] field
    (design name, algorithm, outcome — whatever identifies the run). *)

val write : path:string -> Json.t -> unit

val validate : Json.t -> (unit, string) result
(** Checks the [schema]/[version] envelope. *)
