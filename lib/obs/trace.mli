(** Bounded ring-buffer traces of float samples.

    Built for per-iteration convergence traces (MMSIM residual
    [delta_inf], per-component iteration counts): the buffer is allocated
    once and {!record} performs no allocation whatsoever, so tracing can
    ride inside the allocation-free MMSIM steady state without perturbing
    it. When more samples arrive than the capacity holds, the oldest are
    overwritten — the trace keeps the {e tail} of the run, which is the
    part that shows how convergence ended. *)

type t

val create : capacity:int -> t
(** A trace retaining the last [capacity] samples.
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val record : t -> float -> unit
(** Appends one sample, overwriting the oldest once full. Performs zero
    minor-heap allocation. *)

val length : t -> int
(** Samples currently retained ([min recorded capacity]). *)

val recorded : t -> int
(** Total samples ever recorded, including overwritten ones. *)

val to_array : t -> float array
(** The retained samples, oldest first. *)

val last : t -> float option
(** The most recent sample. *)

val estimate_rate : t -> float option
(** Geometric-mean contraction factor of consecutive retained samples —
    for a convergence trace, the average per-iteration shrink of
    [delta_inf] over the recorded tail. [< 1] means the iteration is
    contracting, [>= 1] stalled. Returns [Some infinity] when any sample
    is NaN/infinite (the MMSIM divergence guard records NaN), [None] when
    fewer than two positive samples are retained. The solver's rescue
    path uses this to decide whether a non-converged shard needs a
    tighter splitting constant (stalled) or just ran out of budget
    (contracting). *)
