type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  spans : (string, float ref) Hashtbl.t;
  mutable traces : (string * Trace.t) list;
  mutable subs : (string * Mclh_report.Json.t) list;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    traces = [];
    subs = [] }

let enabled_from_env () =
  match Sys.getenv_opt "MCLH_METRICS" with
  | Some ("1" | "true" | "on" | "yes") -> true
  | Some _ | None -> false

(* Every recording helper takes a [t option]: the [None] path is a single
   branch with no allocation, which is what lets instrumented code keep
   its zero-overhead guarantee when metrics are off. *)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr obs name =
  match obs with
  | None -> ()
  | Some t ->
    let r = counter_ref t name in
    r := !r + 1

let add obs name n =
  match obs with
  | None -> ()
  | Some t ->
    let r = counter_ref t name in
    r := !r + n

let gauge obs name v =
  match obs with
  | None -> ()
  | Some t -> (
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges name (ref v))

let record_span obs name seconds =
  match obs with
  | None -> ()
  | Some t -> (
    match Hashtbl.find_opt t.spans name with
    | Some r -> r := !r +. seconds
    | None -> Hashtbl.add t.spans name (ref seconds))

let span obs name f =
  match obs with
  | None -> f ()
  | Some _ ->
    let v, s = Mclh_par.Clock.timed f in
    record_span obs name s;
    v

let new_trace obs name ~capacity =
  match obs with
  | None -> None
  | Some t ->
    let tr = Trace.create ~capacity in
    t.traces <- (name, tr) :: t.traces;
    Some tr

let attach_trace obs name tr =
  match obs with None -> () | Some t -> t.traces <- (name, tr) :: t.traces

let sub obs name json =
  match obs with None -> () | Some t -> t.subs <- (name, json) :: t.subs

(* Peak resident set size of this process, from the [VmHWM] line of
   /proc/self/status — a process-lifetime high-water mark maintained by
   the kernel, so it costs one file read and no sampling thread. Returns
   [None] on platforms without procfs (the metric is then simply absent
   from reports). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then begin
              (* "VmHWM:   123456 kB" *)
              let rest = String.sub line 6 (String.length line - 6) in
              let rest =
                match String.index_opt rest 'k' with
                | Some i -> String.sub rest 0 i
                | None -> rest
              in
              int_of_string_opt (String.trim rest)
            end
            else scan ()
        in
        scan ())

(* ---- read-back (tests, report assembly) ---- *)

let sorted_assoc tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_assoc t.counters
let gauges t = sorted_assoc t.gauges
let spans t = sorted_assoc t.spans

let traces t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.traces

let subs t = List.sort (fun (a, _) (b, _) -> String.compare a b) t.subs

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let find_trace t name = List.assoc_opt name t.traces
