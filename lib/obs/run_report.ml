open Mclh_report

let schema = "mclh-run-report"
let version = 1

let trace_json tr =
  Json.Obj
    [ ("capacity", Json.Int (Trace.capacity tr));
      ("recorded", Json.Int (Trace.recorded tr));
      ("values",
       Json.List
         (Array.to_list (Array.map (fun v -> Json.Float v) (Trace.to_array tr))))
    ]

let to_json ?(meta = []) obs =
  Json.Obj
    [ ("schema", Json.String schema);
      ("version", Json.Int version);
      ("meta", Json.Obj meta);
      ("counters",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Obs.counters obs)));
      ("gauges",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Obs.gauges obs)));
      ("spans_s",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Obs.spans obs)));
      ("traces",
       Json.Obj
         (List.map (fun (k, tr) -> (k, trace_json tr)) (Obs.traces obs)));
      ("sub_reports", Json.Obj (Obs.subs obs)) ]

let write ~path json = Json.to_file ~path json

let validate json =
  match json with
  | Json.Obj _ -> (
    match (Json.member "schema" json, Json.member "version" json) with
    | Some (Json.String s), Some (Json.Int v) when s = schema ->
      if v = version then Ok ()
      else Error (Printf.sprintf "unsupported version %d (expected %d)" v version)
    | _ -> Error "missing or malformed schema/version fields"
  )
  | _ -> Error "run report must be a JSON object"
