type t = {
  data : float array;
  mutable recorded : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { data = Array.make capacity 0.0; recorded = 0 }

let capacity t = Array.length t.data

let record t v =
  let cap = Array.length t.data in
  t.data.(t.recorded mod cap) <- v;
  t.recorded <- t.recorded + 1

let length t = min t.recorded (Array.length t.data)

let recorded t = t.recorded

let to_array t =
  let cap = Array.length t.data in
  if t.recorded <= cap then Array.sub t.data 0 t.recorded
  else begin
    (* the buffer wrapped: the oldest retained sample sits at the write
       cursor *)
    let start = t.recorded mod cap in
    Array.init cap (fun i -> t.data.((start + i) mod cap))
  end

let last t =
  if t.recorded = 0 then None
  else Some t.data.((t.recorded - 1) mod Array.length t.data)

let estimate_rate t =
  (* geometric-mean contraction factor of consecutive positive samples:
     exp(mean log(v_{k+1} / v_k)). Robust to the overall scale and to a
     few zero samples (skipped); NaN/inf samples (the divergence guard
     records NaN) poison the estimate on purpose. *)
  let v = to_array t in
  let n = Array.length v in
  let sum = ref 0.0 and count = ref 0 and poisoned = ref false in
  for k = 0 to n - 2 do
    let a = v.(k) and b = v.(k + 1) in
    if not (Float.is_finite a && Float.is_finite b) then poisoned := true
    else if a > 0.0 && b > 0.0 then begin
      sum := !sum +. log (b /. a);
      incr count
    end
  done;
  if !poisoned then Some infinity
  else if !count = 0 then None
  else Some (exp (!sum /. float_of_int !count))
