type t = {
  data : float array;
  mutable recorded : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { data = Array.make capacity 0.0; recorded = 0 }

let capacity t = Array.length t.data

let record t v =
  let cap = Array.length t.data in
  t.data.(t.recorded mod cap) <- v;
  t.recorded <- t.recorded + 1

let length t = min t.recorded (Array.length t.data)

let recorded t = t.recorded

let to_array t =
  let cap = Array.length t.data in
  if t.recorded <= cap then Array.sub t.data 0 t.recorded
  else begin
    (* the buffer wrapped: the oldest retained sample sits at the write
       cursor *)
    let start = t.recorded mod cap in
    Array.init cap (fun i -> t.data.((start + i) mod cap))
  end

let last t =
  if t.recorded = 0 then None
  else Some t.data.((t.recorded - 1) mod Array.length t.data)
