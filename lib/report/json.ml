type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; non-finite floats become null so the
   emitted document always parses (divergence guards record a nan delta) *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    (* shortest representation that parses back to the exact same float:
       %.12g keeps the artifacts human-diffable when it already round-trips
       (it almost always does for measured quantities), escalating to 15,
       16 and finally 17 significant digits — which is always exact — so
       the wire protocol can carry positions bit-exactly *)
    let exact p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match exact 12 with
    | Some s -> s
    | None -> (
      match exact 15 with
      | Some s -> s
      | None -> (
        match exact 16 with
        | Some s -> s
        | None -> Printf.sprintf "%.17g" f))
  end

let rec emit buf ~indent ~level v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    newline ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    newline ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          newline ()
        end;
        pad (level + 1);
        escape_string buf k;
        Buffer.add_string buf (if indent then ": " else ":");
        emit buf ~indent ~level:(level + 1) item)
      fields;
    newline ();
    pad level;
    Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | None -> fail c "unterminated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          c.pos <- c.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail c "invalid \\u escape"
          in
          add_utf8 buf code
        | _ -> fail c "unknown escape"));
      go ()
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.src && is_num_char c.src.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let text = String.sub c.src start (c.pos - start) in
  if text = "" then fail c "expected number";
  let is_float =
    String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
  in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail c "malformed number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* integer overflow: keep the value as a float *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c "malformed number")

(* The parser recurses once per nesting level, so a nesting bomb like
   100k opening brackets would otherwise run the OCaml stack out (a
   Stack_overflow, not a clean parse error). A fixed depth cap makes the
   recursion depth — and therefore the stack use — bounded and turns the
   bomb into an ordinary [Error]. 512 levels is far beyond any artifact
   this repository emits (run reports nest a handful of levels). *)
let max_depth = 512

let rec parse_value ~depth c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    if depth >= max_depth then
      fail c (Printf.sprintf "nesting deeper than %d levels" max_depth);
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value ~depth:(depth + 1) c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    if depth >= max_depth then
      fail c (Printf.sprintf "nesting deeper than %d levels" max_depth);
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value ~depth:(depth + 1) c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value ~depth:0 c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_file ~path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string v))
