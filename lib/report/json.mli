(** Minimal JSON values: emission and parsing, no external dependency.

    Used for the machine-readable artifacts the harness and the
    observability layer ({!Mclh_obs}) produce — run reports, perf
    snapshots. The emitter writes canonical, human-diffable output
    (two-space indent, fields in caller order); the parser accepts any
    RFC-8259 document, which makes the emitted artifacts round-trippable
    in tests and validations without a third-party JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** Serializes the value; [indent] (default [true]) pretty-prints with
    two-space indentation and a trailing newline. Non-finite floats are
    emitted as [null] (JSON has no NaN/Infinity), so the output always
    parses. Finite floats are emitted with the fewest significant digits
    (starting from the historical [%.12g], escalating to 17 when needed)
    that parse back to the exact same float, so every finite float
    round-trips bit-identically through {!of_string} — the serving
    protocol ({!Mclh_serve}) relies on this to carry cell positions
    exactly. *)

val of_string : string -> (t, string) result
(** Parses one JSON document. Numbers without a fraction or exponent
    become {!Int} (falling back to {!Float} on overflow); the whole input
    must be consumed. Nesting is capped at 512 levels: deeper documents
    (nesting bombs) return a clear [Error] instead of overflowing the
    OCaml stack, and the cap bounds the parser's stack use. *)

val member : string -> t -> t option
(** [member key v] looks up a field of an {!Obj}; [None] for missing keys
    and non-object values. *)

val to_file : path:string -> t -> unit
(** Writes [to_string v] to [path]. *)
