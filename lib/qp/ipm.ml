open Mclh_linalg

type options = { tol : float; max_iter : int; sigma : float }

let default_options = { tol = 1e-9; max_iter = 200; sigma = 0.2 }

type outcome = {
  x : Vec.t;
  multipliers : Vec.t;
  bound_multipliers : Vec.t;
  iterations : int;
  converged : bool;
  duality_gap : float;
}

(* unified constraints G x >= h: the m rows of B, then the n bound rows *)
let apply_g (qp : Qp.t) x =
  let m = Qp.num_constraints qp and n = Qp.num_vars qp in
  let out = Array.make (m + n) 0.0 in
  let bx = Csr.mul_vec qp.b_mat x in
  Array.blit bx 0 out 0 m;
  Array.blit x 0 out m n;
  out

let apply_gt (qp : Qp.t) y =
  let m = Qp.num_constraints qp and n = Qp.num_vars qp in
  let out = Csr.mul_vec_t qp.b_mat (Array.sub y 0 m) in
  for j = 0 to n - 1 do
    out.(j) <- out.(j) +. y.(m + j)
  done;
  out

let h_vec (qp : Qp.t) =
  let m = Qp.num_constraints qp and n = Qp.num_vars qp in
  Vec.init (m + n) (fun i -> if i < m then qp.b_rhs.(i) else 0.0)

(* normal matrix Q + G^T D^-1 G, dense; D = diag(s ./ lambda) *)
let normal_matrix (qp : Qp.t) ~s ~lam =
  let m = Qp.num_constraints qp and n = Qp.num_vars qp in
  let a = Dense.create n n in
  Csr.iter qp.q_mat (fun i j v -> Dense.set a i j (Dense.get a i j +. v));
  (* B rows *)
  for i = 0 to m - 1 do
    let w = lam.(i) /. s.(i) in
    let row = Csr.row_entries qp.b_mat i in
    List.iter
      (fun (j1, v1) ->
        List.iter
          (fun (j2, v2) ->
            Dense.set a j1 j2 (Dense.get a j1 j2 +. (w *. v1 *. v2)))
          row)
      row
  done;
  (* bound rows are unit vectors *)
  for j = 0 to n - 1 do
    let w = lam.(m + j) /. s.(m + j) in
    Dense.set a j j (Dense.get a j j +. w)
  done;
  a

let solve ?(options = default_options) (qp : Qp.t) =
  let { tol; max_iter; sigma } = options in
  let m = Qp.num_constraints qp and n = Qp.num_vars qp in
  let k = m + n in
  let h = h_vec qp in
  let x = Vec.create n 1.0 in
  let s = Vec.create k 1.0 in
  let lam = Vec.create k 1.0 in
  let duality () = Vec.dot s lam /. float_of_int k in
  let residuals () =
    (* r_d = Qx + p - G^T lam;  r_p = Gx - h - s *)
    let r_d = Qp.gradient qp x in
    let gt = apply_gt qp lam in
    Vec.axpy (-1.0) gt r_d;
    let r_p = apply_g qp x in
    for i = 0 to k - 1 do
      r_p.(i) <- r_p.(i) -. h.(i) -. s.(i)
    done;
    (r_d, r_p)
  in
  let rec go iter =
    let r_d, r_p = residuals () in
    let mu = duality () in
    let res_inf = Float.max (Vec.norm_inf r_d) (Vec.norm_inf r_p) in
    if mu < tol && res_inf < Float.max tol (1e-7 *. Float.max 1.0 (Vec.norm_inf x))
    then
      { x = Vec.copy x;
        multipliers = Array.sub lam 0 m;
        bound_multipliers = Array.sub lam m n;
        iterations = iter;
        converged = true;
        duality_gap = mu }
    else if iter >= max_iter then
      { x = Vec.copy x;
        multipliers = Array.sub lam 0 m;
        bound_multipliers = Array.sub lam m n;
        iterations = iter;
        converged = false;
        duality_gap = mu }
    else begin
      (* Newton step on the perturbed KKT system *)
      let target = sigma *. mu in
      (* rhs for the normal system:
         (Q + G^T D^-1 G) dx = -r_d + G^T [ (lam/s) (-r_p) + (lam - target/s) ]
         derived from ds = G dx + r_p and
         dlam = -lam - (lam ds - target)/s . *)
      let y = Array.make k 0.0 in
      for i = 0 to k - 1 do
        y.(i) <- (lam.(i) /. s.(i) *. -.r_p.(i)) -. lam.(i) +. (target /. s.(i))
      done;
      let rhs = apply_gt qp y in
      Vec.axpy (-1.0) r_d rhs;
      (* note: rhs = G^T y - r_d *)
      let a = normal_matrix qp ~s ~lam in
      let dx =
        match Lu.solve_system a rhs with
        | dx -> dx
        | exception Lu.Singular _ ->
          (* near-degenerate iterates (lam/s ratios blowing up as the
             barrier vanishes) can make the normal matrix numerically
             singular. Escalate a diagonal shift scaled to the matrix
             magnitude until the factorization succeeds: an inexact
             Newton step only slows the IPM down, it cannot change the
             limit point. *)
          let scale = ref 1.0 in
          for j = 0 to n - 1 do
            scale := Float.max !scale (Float.abs (Dense.get a j j))
          done;
          let rec attempt reg =
            let a = normal_matrix qp ~s ~lam in
            for j = 0 to n - 1 do
              Dense.set a j j (Dense.get a j j +. (reg *. !scale))
            done;
            match Lu.solve_system a rhs with
            | dx -> dx
            | exception Lu.Singular _ when reg < 1e-2 ->
              attempt (reg *. 100.0)
          in
          attempt 1e-14
      in
      let g_dx = apply_g qp dx in
      let ds = Array.make k 0.0 and dlam = Array.make k 0.0 in
      for i = 0 to k - 1 do
        ds.(i) <- g_dx.(i) +. r_p.(i);
        dlam.(i) <- (target -. (lam.(i) *. ds.(i))) /. s.(i) -. lam.(i)
      done;
      (* fraction-to-boundary step *)
      let alpha = ref 1.0 in
      for i = 0 to k - 1 do
        if ds.(i) < 0.0 then alpha := Float.min !alpha (-.s.(i) /. ds.(i));
        if dlam.(i) < 0.0 then alpha := Float.min !alpha (-.lam.(i) /. dlam.(i))
      done;
      let alpha = 0.995 *. !alpha in
      let alpha = Float.min 1.0 alpha in
      Vec.axpy alpha dx x;
      Vec.axpy alpha ds s;
      Vec.axpy alpha dlam lam;
      go (iter + 1)
    end
  in
  go 0
