(** The [mclh serve] daemon core: many named {!Mclh_incr.Incr} sessions
    behind the {!Protocol}, multiplexed over system threads.

    The server is usable entirely in-process ({!handle_request} /
    {!handle_requests} / {!handle_line}) — the test suite drives it that
    way — or over a Unix / TCP stream socket ({!start}), where every
    accepted connection gets a worker thread running the line protocol.

    {2 Concurrency model}

    Each session owns two locks. [state_lock] serializes everything that
    touches the underlying {!Mclh_incr.Incr} session (applies and
    queries) — sessions are single-threaded on the outside and the
    server is what enforces that, so the {!Mclh_incr.Incr.Busy} guard
    underneath is a belt-and-braces backstop, not the mechanism. [meta]
    protects the pending-batch queue. Edit batches are enqueued under
    [meta]; the first enqueuer becomes the {e drainer} and applies
    groups of queued batches until the queue is empty, delivering each
    waiter's reply through a per-request mailbox, so requests from many
    connections serialize per session while different sessions re-solve
    concurrently. Dirty-shard solves inside an apply still fan out over
    the shared {!Mclh_par.Pool}; concurrent sessions contend on its
    atomic busy claim and the losers take the bit-identical sequential
    path.

    {2 Admission control}

    At most [max_inflight] edit batches may be admitted (enqueued or
    applying) across all sessions; batch [max_inflight + 1] is refused
    with a [busy] reply without being enqueued. Non-edit requests are
    never refused — [stats] and [ping] must work on an overloaded
    server.

    {2 Coalescing}

    Consecutive queued batches for one session are merged into a single
    {!Mclh_incr.Incr.apply} while the group so far contains only moves
    and resizes; a batch containing an insert or delete renumbers cells
    (affecting how {e later} batches' ids resolve) so it may ride along
    last but closes its group. Every rider gets the same [seq] and
    [stats], with [coalesced] = group size. The applied-batch log
    (query [log]) records the merged groups actually handed to [apply];
    replaying it serially on a fresh session of the same design
    reproduces the placement bit-identically. *)

open Mclh_core

type config = {
  incr_config : Config.t;
      (** solver configuration for every session (metrics on by default
          so [query report] has content) *)
  max_sessions : int;  (** open sessions cap (default 64) *)
  max_inflight : int;
      (** global admitted-edit-batch cap; [0] refuses every edit —
          useful for backpressure tests (default 32) *)
  coalesce : bool;  (** merge queued batch runs (default [true]) *)
  max_coalesce : int;  (** largest merged group (default 64) *)
  keep_log : bool;
      (** record the applied-batch log for the [log] query (default
          [true]) *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t
(** A server with no sessions and no listener. *)

val config : t -> config

(** {1 In-process request handling} — thread-safe; every socket
    connection funnels into these *)

val handle_request : t -> Protocol.request -> Protocol.response
(** Handle one request to completion (edit batches block until applied
    or refused). *)

val handle_requests : t -> Protocol.request list -> Protocol.response list
(** Handle a pipelined run of requests, replying in order. Consecutive
    edit batches for the same session are enqueued together before the
    drain starts, making them eligible for coalescing. *)

val handle_line : t -> string -> string
(** Parse one request line, handle it, emit the response line (no
    trailing newline). Malformed input yields a [bad_request] line. *)

val num_sessions : t -> int

(** {1 Socket serving} *)

val sockaddr_of : Protocol.address -> Unix.socket_domain * Unix.sockaddr
(** Resolve an address ([Tcp] host by {!Unix.inet_addr_of_string}, then
    [gethostbyname]). *)

val start : t -> Protocol.address -> Protocol.address
(** Bind, listen and spawn the accept thread; returns the bound address
    with ephemeral TCP port 0 resolved. [SIGPIPE] is ignored
    process-wide (a client vanishing mid-reply must not kill the
    daemon; the write error closes just that connection).
    @raise Invalid_argument if already started.
    @raise Unix.Unix_error on bind/listen failure. *)

val wait : t -> unit
(** Block until a [shutdown] request arrives or {!stop} is called. *)

val shutdown : t -> unit
(** Request shutdown asynchronously (what a [shutdown] protocol request
    does): wakes {!wait} without joining anything, so it is safe from a
    signal handler. Follow with {!stop} to tear the listener down. *)

val stop : t -> unit
(** Stop serving: wakes {!wait}, joins the accept thread, shuts down
    live connections and joins their workers, closes and (for Unix
    sockets) unlinks the listener. Idempotent; in-process handling
    still works afterwards (except that non-[ping]/[stats] requests
    get [shutting_down]). *)
