(* Blocking line-protocol client. *)

type t = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable buf : string;
  mutable closed : bool;
}

let connect addr =
  let domain, sockaddr = Server.sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; chunk = Bytes.create 65536; buf = ""; closed = false }

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let send_line t line = write_all t.fd (line ^ "\n")

let recv_line t =
  let rec go () =
    match String.index_opt t.buf '\n' with
    | Some i ->
      let line = String.sub t.buf 0 i in
      t.buf <- String.sub t.buf (i + 1) (String.length t.buf - i - 1);
      let n = String.length line in
      Some (if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line)
    | None ->
      let n =
        try Unix.read t.fd t.chunk 0 (Bytes.length t.chunk)
        with Unix.Unix_error _ -> 0
      in
      if n = 0 then None
      else begin
        t.buf <- t.buf ^ Bytes.sub_string t.chunk 0 n;
        go ()
      end
  in
  go ()

let request t req =
  send_line t (Protocol.request_to_line req);
  match recv_line t with
  | None -> failwith "mclh client: connection closed by server"
  | Some line -> (
    match Protocol.response_of_line line with
    | Ok r -> r
    | Error m -> failwith ("mclh client: bad response: " ^ m))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
