(* The serving core. See server.mli for the concurrency model.

   Lock order: a thread never holds two of [table], [meta], [state_lock]
   at once except [state_lock] -> [meta] (session-stats query). The
   drainer takes [meta] and [state_lock] strictly alternately. *)

open Mclh_circuit
open Mclh_core
open Mclh_report
module Edit = Mclh_incr.Edit
module Incr = Mclh_incr.Incr
module Obs = Mclh_obs.Obs
module Run_report = Mclh_obs.Run_report

type config = {
  incr_config : Config.t;
  max_sessions : int;
  max_inflight : int;
  coalesce : bool;
  max_coalesce : int;
  keep_log : bool;
}

let default_config =
  {
    incr_config = { Config.default with metrics = true };
    max_sessions = 64;
    max_inflight = 32;
    coalesce = true;
    max_coalesce = 64;
    keep_log = true;
  }

(* One queued edit batch plus the mailbox its requester blocks on. *)
type pending = {
  edits : Edit.t list;
  renumbers : bool;  (* contains an insert or delete *)
  mail_m : Mutex.t;
  mail_c : Condition.t;
  mutable reply : Protocol.response option;
}

type session_state = Building | Ready of Incr.t

type session = {
  name : string;
  obs : Obs.t;
  state_lock : Mutex.t;  (* serializes Incr applies and queries *)
  mutable state : session_state;
  meta : Mutex.t;  (* protects pending, draining, seq, log *)
  cond : Condition.t;  (* signaled when a drain quiesces *)
  pending : pending Queue.t;
  mutable draining : bool;
  mutable seq : int;  (* applies completed *)
  mutable log : (int * Edit.t list) list;  (* newest first *)
}

type t = {
  config : config;
  sessions : (string, session) Hashtbl.t;
  table : Mutex.t;
  inflight : int Atomic.t;
  requests : int Atomic.t;
  edits_requested : int Atomic.t;
  applies : int Atomic.t;
  busy_rejections : int Atomic.t;
  coalesced : int Atomic.t;
  errors : int Atomic.t;
  started_at : float;
  stopping : bool Atomic.t;
  stop_m : Mutex.t;
  stop_c : Condition.t;
  mutable listener : Unix.file_descr option;
  mutable listener_path : string option;  (* unix socket to unlink *)
  mutable accept_thread : Thread.t option;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  conns_lock : Mutex.t;
}

let create ?(config = default_config) () =
  {
    config;
    sessions = Hashtbl.create 16;
    table = Mutex.create ();
    inflight = Atomic.make 0;
    requests = Atomic.make 0;
    edits_requested = Atomic.make 0;
    applies = Atomic.make 0;
    busy_rejections = Atomic.make 0;
    coalesced = Atomic.make 0;
    errors = Atomic.make 0;
    started_at = Unix.gettimeofday ();
    stopping = Atomic.make false;
    stop_m = Mutex.create ();
    stop_c = Condition.create ();
    listener = None;
    listener_path = None;
    accept_thread = None;
    conns = Hashtbl.create 16;
    conn_threads = [];
    conns_lock = Mutex.create ();
  }

let config t = t.config

let num_sessions t =
  Mutex.lock t.table;
  let n = Hashtbl.length t.sessions in
  Mutex.unlock t.table;
  n

let fail code message = Protocol.Failed { code; message }
let unknown_session name = fail Protocol.Unknown_session ("no session " ^ name)

(* ------------------------------------------------------------------ *)
(* sessions: open / close / query                                      *)

let valid_name s =
  s <> "" && String.length s <= 256
  && String.for_all (fun c -> c <> '\n' && c <> '\r') s

let mk_session name =
  {
    name;
    obs = Obs.create ();
    state_lock = Mutex.create ();
    state = Building;
    meta = Mutex.create ();
    cond = Condition.create ();
    pending = Queue.create ();
    draining = false;
    seq = 0;
    log = [];
  }

let build_incr t s source =
  let design =
    match (source : Protocol.open_source) with
    | From_file { path } -> Io.read_design ~path
    | Generated { bench; scale; seed; blockages; tall } ->
      let spec = Mclh_benchgen.Spec.(scaled scale (find bench)) in
      let options =
        {
          Mclh_benchgen.Generate.default_options with
          seed;
          blockage_fraction = blockages;
          (* blockage-rich instances are the ECO regime (many short
             segments, small components): match bench/eco.ml's cut *)
          blockage_count =
            (if blockages > 0.0 then 32
             else Mclh_benchgen.Generate.default_options.blockage_count);
          tall_cell_fraction = tall;
        }
      in
      (Mclh_benchgen.Generate.generate ~options spec).design
  in
  Incr.create ~config:t.config.incr_config ~obs:s.obs design

let handle_open t name source =
  if not (valid_name name) then fail Protocol.Bad_request "invalid session name"
  else begin
    Mutex.lock t.table;
    let reservation =
      if Hashtbl.mem t.sessions name then
        Result.Error (fail Protocol.Session_exists ("session exists: " ^ name))
      else if Hashtbl.length t.sessions >= t.config.max_sessions then
        Result.Error
          (fail Protocol.Too_many_sessions
             (Printf.sprintf "session cap %d reached" t.config.max_sessions))
      else begin
        let s = mk_session name in
        Hashtbl.replace t.sessions name s;
        Ok s
      end
    in
    Mutex.unlock t.table;
    match reservation with
    | Result.Error r -> r
    | Ok s -> (
      let unreserve () =
        Mutex.lock t.table;
        Hashtbl.remove t.sessions name;
        Mutex.unlock t.table
      in
      let t0 = Unix.gettimeofday () in
      match build_incr t s source with
      | exception Not_found ->
        unreserve ();
        fail Protocol.Rejected "unknown benchmark"
      | exception (Failure m | Invalid_argument m | Sys_error m) ->
        unreserve ();
        fail Protocol.Rejected m
      | incr ->
        let init_s = Unix.gettimeofday () -. t0 in
        Mutex.lock s.state_lock;
        s.state <- Ready incr;
        Mutex.unlock s.state_lock;
        let design = Incr.design incr in
        Protocol.Opened
          {
            session = name;
            cells = Design.num_cells design;
            legal = Legality.is_legal design (Incr.legal incr);
            init_s;
          })
  end

let find_session t name =
  Mutex.lock t.table;
  let s = Hashtbl.find_opt t.sessions name in
  Mutex.unlock t.table;
  s

let handle_close t name =
  Mutex.lock t.table;
  let s = Hashtbl.find_opt t.sessions name in
  if s <> None then Hashtbl.remove t.sessions name;
  Mutex.unlock t.table;
  match s with
  | None -> unknown_session name
  | Some s ->
    (* Quiesce: batches admitted before the close finish applying and
       get their replies; new lookups already miss the table. *)
    Mutex.lock s.meta;
    while s.draining do
      Condition.wait s.cond s.meta
    done;
    let batches = s.seq in
    Mutex.unlock s.meta;
    Protocol.Closed { session = name; batches }

let handle_query t name what =
  match find_session t name with
  | None -> unknown_session name
  | Some s ->
    Mutex.lock s.state_lock;
    let r =
      match s.state with
      | Building -> fail Protocol.Busy "session is still opening"
      | Ready incr -> (
        match (what : Protocol.query_what) with
        | Q_cells ->
          let p = Incr.legal incr in
          Protocol.Cells
            {
              session = name;
              xs = Array.copy p.Placement.xs;
              ys = Array.copy p.Placement.ys;
            }
        | Q_stats ->
          Mutex.lock s.meta;
          let applies = s.seq and pending = Queue.length s.pending in
          Mutex.unlock s.meta;
          Protocol.Session_stats
            {
              session = name;
              cells = Design.num_cells (Incr.design incr);
              batches = Incr.num_batches incr;
              applies;
              cache_entries = Incr.cache_entries incr;
              pending;
            }
        | Q_report ->
          let meta =
            [
              ("session", Json.String name);
              ("cells", Json.Int (Design.num_cells (Incr.design incr)));
            ]
          in
          Protocol.Report { session = name; report = Run_report.to_json ~meta s.obs }
        | Q_log ->
          Mutex.lock s.meta;
          let log = List.rev s.log in
          Mutex.unlock s.meta;
          Protocol.Log { session = name; log })
    in
    Mutex.unlock s.state_lock;
    r

(* ------------------------------------------------------------------ *)
(* edit batches: enqueue, drain, coalesce                              *)

let renumbers edits =
  List.exists
    (function Edit.Insert _ | Edit.Delete _ -> true | Edit.Move _ | Edit.Resize _ -> false)
    edits

let mk_pending edits =
  {
    edits;
    renumbers = renumbers edits;
    mail_m = Mutex.create ();
    mail_c = Condition.create ();
    reply = None;
  }

let deliver p r =
  Mutex.lock p.mail_m;
  p.reply <- Some r;
  Condition.signal p.mail_c;
  Mutex.unlock p.mail_m

let await p =
  Mutex.lock p.mail_m;
  while p.reply = None do
    Condition.wait p.mail_c p.mail_m
  done;
  let r = Option.get p.reply in
  Mutex.unlock p.mail_m;
  r

(* Pop the next coalescible group (meta held). A batch may join while
   the group so far is renumbering-free; a renumbering batch joins last
   and closes the group — it only changes how *later* batches' ids
   resolve, so ids of everything merged still refer to the design at
   group start, which is what Incr.apply's batch semantics require. *)
let take_group cfg q =
  if Queue.is_empty q then []
  else begin
    let first = Queue.pop q in
    if not cfg.coalesce then [ first ]
    else begin
      let group = ref [ first ] in
      let n = ref 1 in
      let closed = ref first.renumbers in
      while (not !closed) && !n < cfg.max_coalesce && not (Queue.is_empty q) do
        let next = Queue.pop q in
        group := next :: !group;
        incr n;
        if next.renumbers then closed := true
      done;
      List.rev !group
    end
  end

let rec drain t s =
  Mutex.lock s.meta;
  let group = take_group t.config s.pending in
  if group = [] then begin
    s.draining <- false;
    Condition.broadcast s.cond;
    Mutex.unlock s.meta
  end
  else begin
    Mutex.unlock s.meta;
    let merged = List.concat_map (fun p -> p.edits) group in
    let k = List.length group in
    Mutex.lock s.state_lock;
    let outcome =
      match s.state with
      | Building -> Result.Error (Protocol.Internal, "session is still opening")
      | Ready incr -> (
        try Ok (Incr.apply incr merged) with
        | Invalid_argument m | Failure m -> Result.Error (Protocol.Rejected, m)
        | Incr.Busy ->
          (* unreachable: state_lock serializes applies *)
          Result.Error (Protocol.Internal, "session busy under state lock")
        | e -> Result.Error (Protocol.Internal, Printexc.to_string e))
    in
    Mutex.unlock s.state_lock;
    (match outcome with
    | Ok stats ->
      Atomic.incr t.applies;
      if k > 1 then ignore (Atomic.fetch_and_add t.coalesced (k - 1));
      Mutex.lock s.meta;
      s.seq <- s.seq + 1;
      let seq = s.seq in
      if t.config.keep_log then s.log <- (seq, merged) :: s.log;
      Mutex.unlock s.meta;
      List.iter
        (fun p ->
          deliver p
            (Protocol.Edited { session = s.name; seq; coalesced = k; stats }))
        group
    | Result.Error (code, message) ->
      List.iter (fun p -> deliver p (fail code message)) group);
    drain t s
  end

(* Handle a pipelined run of edit batches for one session: admit each,
   enqueue the admitted ones together (so they can coalesce), drain if
   we claimed the drainer role, and collect replies in request order. *)
let handle_edits t name batches =
  match find_session t name with
  | None -> List.map (fun _ -> unknown_session name) batches
  | Some s ->
    let building =
      Mutex.lock s.state_lock;
      let b = match s.state with Building -> true | Ready _ -> false in
      Mutex.unlock s.state_lock;
      b
    in
    if building then
      List.map (fun _ -> fail Protocol.Busy "session is still opening") batches
    else begin
      let entries =
        List.map
          (fun edits ->
            if Atomic.fetch_and_add t.inflight 1 < t.config.max_inflight then
              `Admitted (mk_pending edits)
            else begin
              Atomic.decr t.inflight;
              `Refused
            end)
          batches
      in
      let admitted =
        List.filter_map (function `Admitted p -> Some p | `Refused -> None) entries
      in
      let drainer =
        admitted <> []
        && begin
             Mutex.lock s.meta;
             List.iter (fun p -> Queue.push p s.pending) admitted;
             let claim = not s.draining in
             if claim then s.draining <- true;
             Mutex.unlock s.meta;
             claim
           end
      in
      if drainer then drain t s;
      List.map
        (function
          | `Refused ->
            fail Protocol.Busy
              (Printf.sprintf "server at max in-flight edit batches (%d)"
                 t.config.max_inflight)
          | `Admitted p ->
            let r = await p in
            Atomic.decr t.inflight;
            r)
        entries
    end

(* ------------------------------------------------------------------ *)
(* server-level requests                                               *)

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              try
                Scanf.sscanf
                  (String.sub line 6 (String.length line - 6))
                  " %d"
                  (fun kb -> Some kb)
              with Scanf.Scan_failure _ | Failure _ -> None
            else go ()
        in
        go ())

let server_stats t =
  Protocol.Server_stats
    {
      sessions = num_sessions t;
      requests = Atomic.get t.requests;
      edits = Atomic.get t.edits_requested;
      applies = Atomic.get t.applies;
      busy = Atomic.get t.busy_rejections;
      coalesced = Atomic.get t.coalesced;
      errors = Atomic.get t.errors;
      uptime_s = Unix.gettimeofday () -. t.started_at;
      peak_rss_kb = peak_rss_kb ();
    }

let request_stop t =
  Atomic.set t.stopping true;
  Mutex.lock t.stop_m;
  Condition.broadcast t.stop_c;
  Mutex.unlock t.stop_m

let shutdown = request_stop

let wait t =
  Mutex.lock t.stop_m;
  while not (Atomic.get t.stopping) do
    Condition.wait t.stop_c t.stop_m
  done;
  Mutex.unlock t.stop_m

let handle_one t (req : Protocol.request) =
  match req with
  | Ping -> Protocol.Pong
  | Stats -> server_stats t
  | Shutdown ->
    request_stop t;
    Protocol.Shutdown_ack
  | _ when Atomic.get t.stopping ->
    fail Protocol.Shutting_down "server is shutting down"
  | Open { session; source } -> handle_open t session source
  | Query { session; what } -> handle_query t session what
  | Close { session } -> handle_close t session
  | Edit_batch _ -> assert false (* routed through handle_edits *)

(* Response-type accounting, applied at the single exit point. *)
let count t (r : Protocol.response) =
  (match r with
  | Failed { code = Busy; _ } -> Atomic.incr t.busy_rejections
  | Failed _ -> Atomic.incr t.errors
  | _ -> ());
  r

let shutting_down_reply = fail Protocol.Shutting_down "server is shutting down"

(* Every entry point funnels here: group consecutive edit batches for
   one session so a pipelined client's run is enqueued together. *)
let handle_parsed t (items : (Protocol.request, string) result list) =
  let rec go items acc =
    match items with
    | [] -> List.rev acc
    | Result.Error msg :: rest ->
      Atomic.incr t.requests;
      let code =
        if String.length msg >= 10 && String.sub msg 0 10 = "unknown op" then
          Protocol.Unknown_op
        else Protocol.Bad_request
      in
      go rest (count t (fail code msg) :: acc)
    | Ok (Protocol.Edit_batch { session; edits }) :: rest ->
      let rec run batches items =
        match items with
        | Ok (Protocol.Edit_batch { session = s2; edits }) :: rest
          when s2 = session ->
          run (edits :: batches) rest
        | _ -> (List.rev batches, items)
      in
      let batches, rest = run [ edits ] rest in
      List.iter
        (fun _ ->
          Atomic.incr t.requests;
          Atomic.incr t.edits_requested)
        batches;
      let replies =
        if Atomic.get t.stopping then
          List.map (fun _ -> shutting_down_reply) batches
        else handle_edits t session batches
      in
      go rest (List.rev_append (List.map (count t) replies) acc)
    | Ok req :: rest ->
      Atomic.incr t.requests;
      go rest (count t (handle_one t req) :: acc)
  in
  go items []

let handle_requests t reqs =
  handle_parsed t (List.map (fun r -> Ok r) reqs)

let handle_request t req =
  match handle_requests t [ req ] with [ r ] -> r | _ -> assert false

let handle_line t line =
  match handle_parsed t [ Protocol.request_of_line line ] with
  | [ r ] -> Protocol.response_to_line r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* socket serving                                                      *)

let sockaddr_of = function
  | Protocol.Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Protocol.Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    (Unix.PF_INET, Unix.ADDR_INET (addr, port))

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let split_lines s =
  let rec go start acc =
    match String.index_from_opt s start '\n' with
    | None -> (List.rev acc, String.sub s start (String.length s - start))
    | Some i -> go (i + 1) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

let handle_lines t lines =
  List.map Protocol.response_to_line
    (handle_parsed t (List.map Protocol.request_of_line lines))

let conn_worker t fd =
  let buf = ref "" in
  let chunk = Bytes.create 65536 in
  (try
     let running = ref true in
     while !running do
       let n =
         try Unix.read fd chunk 0 (Bytes.length chunk)
         with Unix.Unix_error _ -> 0
       in
       if n = 0 then running := false (* EOF mid-line: discard silently *)
       else begin
         let data = !buf ^ Bytes.sub_string chunk 0 n in
         let lines, rest = split_lines data in
         buf := rest;
         let lines = List.map strip_cr lines in
         if
           String.length rest > Protocol.max_line_bytes
           || List.exists (fun l -> String.length l > Protocol.max_line_bytes) lines
         then begin
           (* framing can no longer be trusted: answer once and hang up *)
           let r =
             Protocol.response_to_line
               (fail Protocol.Bad_request "request line exceeds max_line_bytes")
           in
           ignore (count t (fail Protocol.Bad_request "oversized line"));
           (try write_all fd (r ^ "\n") with _ -> ());
           running := false
         end
         else begin
           let lines = List.filter (fun l -> l <> "") lines in
           if lines <> [] then begin
             let replies = handle_lines t lines in
             write_all fd (String.concat "" (List.map (fun r -> r ^ "\n") replies))
           end
         end
       end
     done
   with _ -> ());
  Mutex.lock t.conns_lock;
  Hashtbl.remove t.conns fd;
  Mutex.unlock t.conns_lock;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t listener =
  while not (Atomic.get t.stopping) do
    match Unix.select [ listener ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true listener with
      | exception Unix.Unix_error _ -> () (* racing stop / transient *)
      | fd, _ ->
        Mutex.lock t.conns_lock;
        Hashtbl.replace t.conns fd ();
        let th = Thread.create (fun () -> conn_worker t fd) () in
        t.conn_threads <- th :: t.conn_threads;
        Mutex.unlock t.conns_lock)
  done;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  match t.listener_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let start t addr =
  if t.accept_thread <> None then invalid_arg "Server.start: already started";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, sockaddr = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Protocol.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Protocol.Unix_sock path -> (
    t.listener_path <- Some path;
    try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try
     Unix.bind fd sockaddr;
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let resolved =
    match Unix.getsockname fd with
    | Unix.ADDR_UNIX p -> Protocol.Unix_sock p
    | Unix.ADDR_INET (a, p) -> Protocol.Tcp (Unix.string_of_inet_addr a, p)
  in
  t.listener <- Some fd;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t fd) ());
  resolved

let stop t =
  request_stop t;
  (match t.accept_thread with
  | Some th ->
    Thread.join th;
    t.accept_thread <- None;
    t.listener <- None
  | None -> ());
  Mutex.lock t.conns_lock;
  Hashtbl.iter
    (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.conns;
  let workers = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.conns_lock;
  List.iter Thread.join workers
