(** The mclh serving protocol: line-delimited JSON over a stream socket.

    One request per line, one response line per request, in request
    order. Both sides frame on ['\n'] (requests must not contain raw
    newlines — the {!Mclh_report.Json} emitter never produces them in
    compact mode) and parse each line as a complete JSON document with
    the repository's dependency-free parser, so the daemon adds no
    third-party dependency and inherits the parser's hardening (512-level
    nesting cap turns nesting bombs into clean errors).

    Every response object carries ["ok"]: [true] for the success variants
    below, [false] for {!Error}, whose [code] is machine-readable
    ({!error_code}) — [busy] is the admission-control backpressure reply
    and means "retry later", everything else is a caller mistake or a
    rejected operation. Floats round-trip bit-exactly through the JSON
    layer (shortest-exact emission), so placements read over the wire are
    the placements the daemon holds.

    {2 Requests}

    {v
    {"op":"open","session":S,"design":PATH}
    {"op":"open","session":S,"bench":NAME,"scale":F,"seed":K,
     "blockages":F,"tall":F}
    {"op":"edit","session":S,"edits":[{"op":"move","cell":C,"x":X,"y":Y},
                                      {"op":"resize","cell":C,"width":W},
                                      {"op":"insert","width":W,"height":H,
                                       "x":X,"y":Y},
                                      {"op":"delete","cell":C}]}
    {"op":"query","session":S,"what":"cells"|"stats"|"report"|"log"}
    {"op":"close","session":S}
    {"op":"stats"}   {"op":"ping"}   {"op":"shutdown"}
    v}

    Edit batches have {!Mclh_incr.Incr.apply} semantics: all cell ids
    refer to the session's design as of the start of the batch. *)

open Mclh_report
module Edit = Mclh_incr.Edit
module Incr = Mclh_incr.Incr

val version : int
(** Protocol version, reported by [ping] and [stats] replies. *)

val max_line_bytes : int
(** Upper bound a server places on one request line (8 MiB); longer
    frames are answered with [bad_request] and the connection is closed
    (framing can no longer be trusted). *)

type address =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of string * int  (** host, port (port [0] binds an ephemeral port) *)

val pp_address : address -> string

type open_source =
  | From_file of { path : string }
      (** load a design file ({!Mclh_circuit.Io.read_design}) *)
  | Generated of {
      bench : string;
      scale : float;
      seed : int;
      blockages : float;
      tall : float;
    }
      (** generate a synthetic instance in-daemon
          ({!Mclh_benchgen.Generate}); [bench] names a {!Mclh_benchgen.Spec} *)

type query_what =
  | Q_cells  (** current legal placement, bit-exact *)
  | Q_stats  (** session counters *)
  | Q_report  (** the session's {!Mclh_obs.Run_report} JSON *)
  | Q_log
      (** applied-batch log: what {!Mclh_incr.Incr.apply} actually ran, in
          order, with coalesced groups merged — replaying it serially on a
          fresh session reproduces the placement bit-identically *)

type request =
  | Open of { session : string; source : open_source }
  | Edit_batch of { session : string; edits : Edit.t list }
  | Query of { session : string; what : query_what }
  | Close of { session : string }
  | Stats
  | Ping
  | Shutdown

type error_code =
  | Bad_request  (** malformed JSON, missing/ill-typed fields, bad name *)
  | Unknown_op
  | Unknown_session
  | Session_exists
  | Too_many_sessions
  | Busy
      (** admission control: the in-flight queue is full (or the session
          failed to open); the batch was {e not} applied — retry later *)
  | Rejected
      (** the operation itself failed: unknown benchmark, unreadable
          design file, fenced design, an edit referencing a missing cell,
          a design over capacity. Rejected edit groups leave the session
          at its pre-batch state. *)
  | Shutting_down
  | Internal

type response =
  | Opened of { session : string; cells : int; legal : bool; init_s : float }
  | Edited of {
      session : string;
      seq : int;  (** per-session apply sequence number (1-based) *)
      coalesced : int;
          (** batches merged into that apply, [>= 1]; coalesced requests
              share one [seq] and one [stats] *)
      stats : Incr.stats;
    }
  | Cells of { session : string; xs : float array; ys : float array }
  | Session_stats of {
      session : string;
      cells : int;
      batches : int;  (** {!Mclh_incr.Incr.num_batches} (applies) *)
      applies : int;  (** current apply sequence number *)
      cache_entries : int;
      pending : int;  (** batches queued behind the current apply *)
    }
  | Report of { session : string; report : Json.t }
  | Log of { session : string; log : (int * Edit.t list) list }
      (** [(seq, merged_edits)] in apply order *)
  | Closed of { session : string; batches : int }
  | Server_stats of {
      sessions : int;
      requests : int;
      edits : int;  (** edit batches requested *)
      applies : int;  (** [Incr.apply] calls (coalescing merges batches) *)
      busy : int;  (** busy rejections *)
      coalesced : int;  (** batches that rode along in a merged apply *)
      errors : int;
      uptime_s : float;
      peak_rss_kb : int option;
    }
  | Pong
  | Shutdown_ack
  | Failed of { code : error_code; message : string }

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

(** {1 JSON codecs} — total inverses on every constructor (QCheck-pinned
    in [test_serve.ml]); decoders return [Error] with a human-readable
    message on any malformed document. Non-finite numbers are rejected:
    the emitter writes them as [null] (they have no JSON literal), so a
    value like [1e999] in a request is a malformed frame, not an [inf]
    coordinate to feed the solver. *)

val edit_to_json : Edit.t -> Json.t
val edit_of_json : Json.t -> (Edit.t, string) result
val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

(** {1 Line framing} — compact (non-indented) emission, no trailing
    newline; parsing rejects embedded newlines and trailing garbage *)

val request_to_line : request -> string
val request_of_line : string -> (request, string) result
val response_to_line : response -> string
val response_of_line : string -> (response, string) result
