(** A minimal blocking client for the {!Protocol}: one socket, one
    request/response at a time (or hand-pipelined via {!send_line} /
    {!recv_line}). Used by [bench/serve.ml], the test suite and the
    [mclh serve] client one-liners; not thread-safe — use one client
    per thread. *)

type t

val connect : Protocol.address -> t
(** @raise Unix.Unix_error if the daemon is not listening. *)

val request : t -> Protocol.request -> Protocol.response
(** Send one request line and block for its response line.
    @raise Failure if the server hangs up or replies unparsably. *)

val send_line : t -> string -> unit
(** Raw line write (newline appended) — for pipelining and for sending
    deliberately malformed frames in tests. *)

val recv_line : t -> string option
(** Next response line ([None] on EOF). *)

val close : t -> unit
(** Idempotent. *)
