(* Serving protocol: request/response vocabulary and its JSON codecs.

   Everything rides on the repository's own Json module — the emitter's
   shortest-exact float representation makes positions round-trip
   bit-identically, and the parser's depth cap turns nesting bombs into
   ordinary error replies. Encoders write every field (canonical order);
   decoders look fields up by name and tolerate reordering. *)

open Mclh_report
module Edit = Mclh_incr.Edit
module Incr = Mclh_incr.Incr

let version = 1
let max_line_bytes = 8 * 1024 * 1024

type address = Unix_sock of string | Tcp of string * int

let pp_address = function
  | Unix_sock path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type open_source =
  | From_file of { path : string }
  | Generated of {
      bench : string;
      scale : float;
      seed : int;
      blockages : float;
      tall : float;
    }

type query_what = Q_cells | Q_stats | Q_report | Q_log

type request =
  | Open of { session : string; source : open_source }
  | Edit_batch of { session : string; edits : Edit.t list }
  | Query of { session : string; what : query_what }
  | Close of { session : string }
  | Stats
  | Ping
  | Shutdown

type error_code =
  | Bad_request
  | Unknown_op
  | Unknown_session
  | Session_exists
  | Too_many_sessions
  | Busy
  | Rejected
  | Shutting_down
  | Internal

type response =
  | Opened of { session : string; cells : int; legal : bool; init_s : float }
  | Edited of { session : string; seq : int; coalesced : int; stats : Incr.stats }
  | Cells of { session : string; xs : float array; ys : float array }
  | Session_stats of {
      session : string;
      cells : int;
      batches : int;
      applies : int;
      cache_entries : int;
      pending : int;
    }
  | Report of { session : string; report : Json.t }
  | Log of { session : string; log : (int * Edit.t list) list }
  | Closed of { session : string; batches : int }
  | Server_stats of {
      sessions : int;
      requests : int;
      edits : int;
      applies : int;
      busy : int;
      coalesced : int;
      errors : int;
      uptime_s : float;
      peak_rss_kb : int option;
    }
  | Pong
  | Shutdown_ack
  | Failed of { code : error_code; message : string }

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Unknown_session -> "unknown_session"
  | Session_exists -> "session_exists"
  | Too_many_sessions -> "too_many_sessions"
  | Busy -> "busy"
  | Rejected -> "rejected"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_op" -> Some Unknown_op
  | "unknown_session" -> Some Unknown_session
  | "session_exists" -> Some Session_exists
  | "too_many_sessions" -> Some Too_many_sessions
  | "busy" -> Some Busy
  | "rejected" -> Some Rejected
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ------------------------------------------------------------------ *)
(* decoding combinators                                                *)

let ( let* ) = Result.bind

let field name v =
  match Json.member name v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_field name v = Json.member name v

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let as_float name = function
  (* non-finite numbers are rejected: the emitter writes them as null,
     so they cannot round-trip — and accepting an overflowed literal
     like 1e999 would let a client poison a session with inf/nan
     coordinates that Incr.apply has no reason to expect *)
  | Json.Float f when Float.is_finite f -> Ok f
  | Json.Float _ -> Error (Printf.sprintf "field %S: non-finite number" name)
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S: expected a number" name)

let as_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected a bool" name)

let as_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected a list" name)

let str_field name v =
  let* x = field name v in
  as_string name x

let int_field name v =
  let* x = field name v in
  as_int name x

let float_field name v =
  let* x = field name v in
  as_float name x

let bool_field name v =
  let* x = field name v in
  as_bool name x

let list_field name v =
  let* x = field name v in
  as_list name x

let opt_float_field name ~default v =
  match opt_field name v with None -> Ok default | Some x -> as_float name x

let opt_int_field name ~default v =
  match opt_field name v with None -> Ok default | Some x -> as_int name x

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let float_array_field name v =
  let* l = list_field name v in
  let* fs = map_result (as_float name) l in
  Ok (Array.of_list fs)

(* ------------------------------------------------------------------ *)
(* edits                                                               *)

let edit_to_json = function
  | Edit.Move { cell; x; y } ->
    Json.Obj
      [ ("op", Json.String "move"); ("cell", Json.Int cell);
        ("x", Json.Float x); ("y", Json.Float y) ]
  | Edit.Resize { cell; width } ->
    Json.Obj
      [ ("op", Json.String "resize"); ("cell", Json.Int cell);
        ("width", Json.Int width) ]
  | Edit.Insert { width; height; x; y } ->
    Json.Obj
      [ ("op", Json.String "insert"); ("width", Json.Int width);
        ("height", Json.Int height); ("x", Json.Float x); ("y", Json.Float y) ]
  | Edit.Delete { cell } ->
    Json.Obj [ ("op", Json.String "delete"); ("cell", Json.Int cell) ]

let edit_of_json v =
  let* op = str_field "op" v in
  match op with
  | "move" ->
    let* cell = int_field "cell" v in
    let* x = float_field "x" v in
    let* y = float_field "y" v in
    Ok (Edit.Move { cell; x; y })
  | "resize" ->
    let* cell = int_field "cell" v in
    let* width = int_field "width" v in
    Ok (Edit.Resize { cell; width })
  | "insert" ->
    let* width = int_field "width" v in
    let* height = int_field "height" v in
    let* x = float_field "x" v in
    let* y = float_field "y" v in
    Ok (Edit.Insert { width; height; x; y })
  | "delete" ->
    let* cell = int_field "cell" v in
    Ok (Edit.Delete { cell })
  | op -> Error (Printf.sprintf "unknown edit op %S" op)

(* ------------------------------------------------------------------ *)
(* requests                                                            *)

let what_to_string = function
  | Q_cells -> "cells"
  | Q_stats -> "stats"
  | Q_report -> "report"
  | Q_log -> "log"

let what_of_string = function
  | "cells" -> Some Q_cells
  | "stats" -> Some Q_stats
  | "report" -> Some Q_report
  | "log" -> Some Q_log
  | _ -> None

let request_to_json = function
  | Open { session; source = From_file { path } } ->
    Json.Obj
      [ ("op", Json.String "open"); ("session", Json.String session);
        ("design", Json.String path) ]
  | Open { session; source = Generated { bench; scale; seed; blockages; tall } }
    ->
    Json.Obj
      [ ("op", Json.String "open"); ("session", Json.String session);
        ("bench", Json.String bench); ("scale", Json.Float scale);
        ("seed", Json.Int seed); ("blockages", Json.Float blockages);
        ("tall", Json.Float tall) ]
  | Edit_batch { session; edits } ->
    Json.Obj
      [ ("op", Json.String "edit"); ("session", Json.String session);
        ("edits", Json.List (List.map edit_to_json edits)) ]
  | Query { session; what } ->
    Json.Obj
      [ ("op", Json.String "query"); ("session", Json.String session);
        ("what", Json.String (what_to_string what)) ]
  | Close { session } ->
    Json.Obj [ ("op", Json.String "close"); ("session", Json.String session) ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let request_of_json v =
  match v with
  | Json.Obj _ -> (
    let* op = str_field "op" v in
    match op with
    | "open" ->
      let* session = str_field "session" v in
      let* source =
        match (opt_field "design" v, opt_field "bench" v) with
        | Some _, Some _ -> Error "open: give either \"design\" or \"bench\""
        | Some d, None ->
          let* path = as_string "design" d in
          Ok (From_file { path })
        | None, Some b ->
          let* bench = as_string "bench" b in
          let* scale = opt_float_field "scale" ~default:0.02 v in
          let* seed = opt_int_field "seed" ~default:1 v in
          let* blockages = opt_float_field "blockages" ~default:0.0 v in
          let* tall = opt_float_field "tall" ~default:0.0 v in
          Ok (Generated { bench; scale; seed; blockages; tall })
        | None, None -> Error "open: missing \"design\" or \"bench\""
      in
      Ok (Open { session; source })
    | "edit" ->
      let* session = str_field "session" v in
      let* items = list_field "edits" v in
      let* edits = map_result edit_of_json items in
      Ok (Edit_batch { session; edits })
    | "query" ->
      let* session = str_field "session" v in
      let* what_s = str_field "what" v in
      let* what =
        match what_of_string what_s with
        | Some w -> Ok w
        | None -> Error (Printf.sprintf "unknown query %S" what_s)
      in
      Ok (Query { session; what })
    | "close" ->
      let* session = str_field "session" v in
      Ok (Close { session })
    | "stats" -> Ok Stats
    | "ping" -> Ok Ping
    | "shutdown" -> Ok Shutdown
    | op -> Error (Printf.sprintf "unknown op %S" op))
  | _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* responses                                                           *)

let stats_to_json (s : Incr.stats) =
  Json.Obj
    [ ("edits", Json.Int s.Incr.edits);
      ("touched_cells", Json.Int s.Incr.touched_cells);
      ("dirty_components", Json.Int s.Incr.dirty_components);
      ("components", Json.Int s.Incr.components);
      ("dirty_shards", Json.Int s.Incr.dirty_shards);
      ("shards", Json.Int s.Incr.shards);
      ("cache_hits", Json.Int s.Incr.cache_hits);
      ("solve_iterations", Json.Int s.Incr.solve_iterations);
      ("max_iterations", Json.Int s.Incr.max_iterations);
      ("converged", Json.Bool s.Incr.converged);
      ("mismatch", Json.Float s.Incr.mismatch);
      ("latency_s", Json.Float s.Incr.latency_s) ]

let stats_of_json v =
  let* edits = int_field "edits" v in
  let* touched_cells = int_field "touched_cells" v in
  let* dirty_components = int_field "dirty_components" v in
  let* components = int_field "components" v in
  let* dirty_shards = int_field "dirty_shards" v in
  let* shards = int_field "shards" v in
  let* cache_hits = int_field "cache_hits" v in
  let* solve_iterations = int_field "solve_iterations" v in
  let* max_iterations = int_field "max_iterations" v in
  let* converged = bool_field "converged" v in
  let* mismatch = float_field "mismatch" v in
  let* latency_s = float_field "latency_s" v in
  Ok
    { Incr.edits;
      touched_cells;
      dirty_components;
      components;
      dirty_shards;
      shards;
      cache_hits;
      solve_iterations;
      max_iterations;
      converged;
      mismatch;
      latency_s }

let floats xs = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) xs))

let response_to_json = function
  | Opened { session; cells; legal; init_s } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "open");
        ("session", Json.String session); ("cells", Json.Int cells);
        ("legal", Json.Bool legal); ("init_s", Json.Float init_s) ]
  | Edited { session; seq; coalesced; stats } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "edit");
        ("session", Json.String session); ("seq", Json.Int seq);
        ("coalesced", Json.Int coalesced); ("stats", stats_to_json stats) ]
  | Cells { session; xs; ys } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "query");
        ("what", Json.String "cells"); ("session", Json.String session);
        ("cells", Json.Int (Array.length xs)); ("xs", floats xs);
        ("ys", floats ys) ]
  | Session_stats { session; cells; batches; applies; cache_entries; pending }
    ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "query");
        ("what", Json.String "stats"); ("session", Json.String session);
        ("cells", Json.Int cells); ("batches", Json.Int batches);
        ("applies", Json.Int applies);
        ("cache_entries", Json.Int cache_entries);
        ("pending", Json.Int pending) ]
  | Report { session; report } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "query");
        ("what", Json.String "report"); ("session", Json.String session);
        ("report", report) ]
  | Log { session; log } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "query");
        ("what", Json.String "log"); ("session", Json.String session);
        ("log",
         Json.List
           (List.map
              (fun (seq, edits) ->
                Json.Obj
                  [ ("seq", Json.Int seq);
                    ("edits", Json.List (List.map edit_to_json edits)) ])
              log)) ]
  | Closed { session; batches } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "close");
        ("session", Json.String session); ("batches", Json.Int batches) ]
  | Server_stats
      { sessions; requests; edits; applies; busy; coalesced; errors; uptime_s;
        peak_rss_kb } ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "stats");
        ("proto", Json.Int version); ("sessions", Json.Int sessions);
        ("requests", Json.Int requests); ("edits", Json.Int edits);
        ("applies", Json.Int applies); ("busy", Json.Int busy);
        ("coalesced", Json.Int coalesced); ("errors", Json.Int errors);
        ("uptime_s", Json.Float uptime_s);
        ("peak_rss_kb",
         match peak_rss_kb with Some kb -> Json.Int kb | None -> Json.Null) ]
  | Pong ->
    Json.Obj
      [ ("ok", Json.Bool true); ("op", Json.String "ping");
        ("proto", Json.Int version) ]
  | Shutdown_ack ->
    Json.Obj [ ("ok", Json.Bool true); ("op", Json.String "shutdown") ]
  | Failed { code; message } ->
    Json.Obj
      [ ("ok", Json.Bool false);
        ("error", Json.String (error_code_to_string code));
        ("message", Json.String message) ]

let response_of_json v =
  match v with
  | Json.Obj _ -> (
    let* ok = bool_field "ok" v in
    if not ok then begin
      let* code_s = str_field "error" v in
      let* code =
        match error_code_of_string code_s with
        | Some c -> Ok c
        | None -> Result.Error (Printf.sprintf "unknown error code %S" code_s)
      in
      let* message = str_field "message" v in
      Ok (Failed { code; message })
    end
    else
      let* op = str_field "op" v in
      match op with
      | "open" ->
        let* session = str_field "session" v in
        let* cells = int_field "cells" v in
        let* legal = bool_field "legal" v in
        let* init_s = float_field "init_s" v in
        Ok (Opened { session; cells; legal; init_s })
      | "edit" ->
        let* session = str_field "session" v in
        let* seq = int_field "seq" v in
        let* coalesced = int_field "coalesced" v in
        let* sv = field "stats" v in
        let* stats = stats_of_json sv in
        Ok (Edited { session; seq; coalesced; stats })
      | "query" -> (
        let* session = str_field "session" v in
        let* what = str_field "what" v in
        match what with
        | "cells" ->
          let* xs = float_array_field "xs" v in
          let* ys = float_array_field "ys" v in
          Ok (Cells { session; xs; ys })
        | "stats" ->
          let* cells = int_field "cells" v in
          let* batches = int_field "batches" v in
          let* applies = int_field "applies" v in
          let* cache_entries = int_field "cache_entries" v in
          let* pending = int_field "pending" v in
          Ok
            (Session_stats
               { session; cells; batches; applies; cache_entries; pending })
        | "report" ->
          let* report = field "report" v in
          Ok (Report { session; report })
        | "log" ->
          let* items = list_field "log" v in
          let* log =
            map_result
              (fun item ->
                let* seq = int_field "seq" item in
                let* edits_json = list_field "edits" item in
                let* edits = map_result edit_of_json edits_json in
                Ok (seq, edits))
              items
          in
          Ok (Log { session; log })
        | what -> Result.Error (Printf.sprintf "unknown query reply %S" what))
      | "close" ->
        let* session = str_field "session" v in
        let* batches = int_field "batches" v in
        Ok (Closed { session; batches })
      | "stats" ->
        let* sessions = int_field "sessions" v in
        let* requests = int_field "requests" v in
        let* edits = int_field "edits" v in
        let* applies = int_field "applies" v in
        let* busy = int_field "busy" v in
        let* coalesced = int_field "coalesced" v in
        let* errors = int_field "errors" v in
        let* uptime_s = float_field "uptime_s" v in
        let* peak_rss_kb =
          match opt_field "peak_rss_kb" v with
          | None | Some Json.Null -> Ok None
          | Some (Json.Int kb) -> Ok (Some kb)
          | Some _ -> Result.Error "field \"peak_rss_kb\": expected int or null"
        in
        Ok
          (Server_stats
             { sessions;
               requests;
               edits;
               applies;
               busy;
               coalesced;
               errors;
               uptime_s;
               peak_rss_kb })
      | "ping" -> Ok Pong
      | "shutdown" -> Ok Shutdown_ack
      | op -> Result.Error (Printf.sprintf "unknown reply op %S" op))
  | _ -> Result.Error "response must be a JSON object"

(* ------------------------------------------------------------------ *)
(* line framing                                                        *)

let to_line v = Json.to_string ~indent:false v

let of_line parse line =
  if String.contains line '\n' then Result.Error "embedded newline in frame"
  else
    match Json.of_string line with
    | Ok v -> parse v
    | Result.Error msg -> Result.Error msg

let request_to_line r = to_line (request_to_json r)
let request_of_line line = of_line request_of_json line
let response_to_line r = to_line (response_to_json r)
let response_of_line line = of_line response_of_json line
