(** GP rounds as ECO batches.

    Each global-placement round moves cells; the delta between two
    successive round snapshots is exactly an [mclh-edits] batch of
    {!Mclh_incr.Edit.Move} edits. Writing the whole trajectory lets
    [mclh eco] replay a placer run incrementally — the incremental
    engine driven by honest placer deltas instead of synthetic edits.

    The intended pairing: legalize a design whose [global] is the {e
    first} snapshot, then apply the batches in order; after batch [k]
    the incremental state matches a fresh legalization of snapshot
    [k+1]. *)

open Mclh_circuit

val batches_of_rounds :
  ?min_move:float -> Placement.t list -> Mclh_incr.Edit.t list list
(** One batch per consecutive snapshot pair, in order. A cell appears in
    a batch iff its L1 move between the pair exceeds [min_move]
    (default [1e-6] — drops only numeric noise). Batches where nothing
    moved are omitted, matching the edits file format (which drops empty
    batches on round trip).

    @raise Invalid_argument if snapshots disagree on cell count. *)

val write : path:string -> ?min_move:float -> Placement.t list -> unit
(** {!batches_of_rounds} serialized with {!Mclh_incr.Edit.write_file}. *)
