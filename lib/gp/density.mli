(** Electrostatic density engine for the global placer (FFTPL style).

    An [m x m] bin grid (m a power of two) over the chip accumulates
    cell area — movable cells from the current fractional placement,
    blockages and pinned cells pre-filled once at construction — and
    turns the density map into a smooth force field by solving the
    Poisson equation [div grad psi = -(rho - mean rho)] spectrally:

    + a 2-D DCT-II diagonalizes the 5-point Laplacian under Neumann
      (reflective) boundaries with eigenvalues
      [lambda_u = 2 (1 - cos (pi u / m))], so the potential is a
      pointwise divide in coefficient space (DC removed);
    + the field [E = -grad psi] is synthesized directly in the sine
      basis ([dst3] along the derivative axis, [idct2] along the other),
      so no finite differencing of the potential is needed.

    Cells sitting in dense (or obstructed) bins see a field pointing
    toward sparse bins; the placer mixes [mu E] into its anchor targets.
    All transforms run on {!Mclh_linalg.Fft} plans owned by the engine —
    the per-round [accumulate]/[solve] cycle allocates nothing.

    The eigenvalues are those of the {e discrete} stencil, so the
    potential satisfies the 5-point Neumann Laplacian exactly (up to
    roundoff) — the property [test_gp.ml] checks. *)

open Mclh_circuit

type t

val create :
  ?grid:int -> ?target:float -> ?fixed:bool array -> Design.t -> t
(** [create design] builds the engine for [design]'s chip.

    [grid] is the bin count per side (power of two; default: the
    smallest power of two at or above [sqrt num_cells], clamped to
    [\[8, 512\]]). [target] is the target utilization per bin (default
    [1.0]). [fixed.(i) = true] marks cell [i] as immovable: its area is
    pre-filled at the [design.global] position, alongside all
    blockages, and {!accumulate} skips it.

    @raise Invalid_argument if [grid] is not a positive power of two or
    [fixed] has the wrong length. *)

val grid : t -> int
val bin_w : t -> float  (** bin width in sites *)

val bin_h : t -> float  (** bin height in rows *)

val total_movable_area : t -> float

val accumulate : t -> Design.t -> Placement.t -> unit
(** Re-bin the movable cells from [pl] (area-weighted over the bins
    each cell overlaps); the fixed pre-fill is untouched. Area outside
    the chip is dropped, so callers should clamp first. *)

val solve : t -> unit
(** Solve the Poisson equation for the current bins and refresh the
    potential and field grids. *)

val field_at : t -> x:float -> y:float -> float * float
(** [(ex, ey)] bilinearly interpolated between bin centers at chip
    coordinates [(x, y)] (sites/rows). Positive [ex] pushes toward
    larger [x]. Valid after {!solve}. *)

val overflow : t -> float
(** Movable area that exceeds its bin's free capacity
    ([max 0. (target * bin_area - fixed)]), summed over bins and
    divided by the total movable area — 0 when everything fits at the
    target density. The placer's stopping rule. *)

val max_utilization : t -> float
(** Max over bins of [(movable + fixed) / bin_area]. *)

(** {1 Test access} — row-major [m * m] grids, index [iy * m + ix];
    the arrays are live (not copies). *)

val movable : t -> float array
val fixed_fill : t -> float array
val charge : t -> float array
(** The right-hand side [rho] fed to the last {!solve} (density in
    area per bin-area units, DC {e not} yet removed). *)

val potential : t -> float array
