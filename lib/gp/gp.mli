(** Density-driven analytical global placement.

    The placer alternates a conjugate-gradient solve of the quadratic
    wirelength model [(L + diag alpha) x = b + alpha a] (clique or
    bound-to-bound Laplacian [L], pin offsets in [b]) with a density
    step in the FFTPL style (Lu et al.): the current fractional
    placement is binned on the {!Density} grid, the Poisson potential of
    the density map is solved spectrally, and each movable cell's anchor
    [a] becomes its current position pushed one field step
    [mu E(center)] toward sparser bins. The anchor pull [alpha] grows
    geometrically, so early rounds are wirelength-dominated and late
    rounds density-dominated; the loop stops when the density overflow
    drops to [stop_overflow] (or after [iterations] rounds).

    Blockages and pinned cells ([fixed_cells]) are pre-filled into the
    density grid, so the field steers spreading around obstructed
    regions; pinned cells are additionally held at their [design.global]
    position by a large per-cell anchor weight in the CG system.

    The output is a {e global} placement: overlapping, fractional,
    density-equalized — the honest input the paper's legalization flow
    expects (hundreds of illegal cells, not the feasible-by-construction
    synthetics). [density = false] recovers the earlier SimPL-style
    lookahead placer (Tetris-legalized anchors, fixed round count). *)

open Mclh_circuit

type net_model =
  | Clique  (** fixed clique edges, weight 1/(k-1) — one Laplacian build *)
  | B2b
      (** bound-to-bound (Spindler et al.): every pin connects to the
          net's current extreme pins with weights 1/((k-1) length), so the
          quadratic objective tracks HPWL; the Laplacian is rebuilt from
          the current positions each round *)

type options = {
  iterations : int;
      (** max rounds (default 24); the density stopping rule usually
          exits earlier *)
  anchor_weight : float;  (** initial alpha (default 0.01) *)
  anchor_growth : float;
      (** alpha multiplier per round (default 1.6) — this is the growing
          density weight: it scales how hard cells are pulled toward
          their field-pushed targets *)
  cg_tol : float;  (** conjugate-gradient tolerance (default 1e-7) *)
  net_model : net_model;  (** default [Clique] *)
  density : bool;
      (** default [true]; [false] restores the lookahead-anchor placer *)
  grid : int option;
      (** density bins per side (power of two); default: chosen from the
          cell count by {!Density.create} *)
  target_density : float;  (** per-bin target utilization (default 1.0) *)
  stop_overflow : float;
      (** stop once {!Density.overflow} falls to this fraction of the
          movable area (default 0.10) *)
  step_bins : float;
      (** field step per round in bins: the strongest-pushed cell's
          anchor moves this many bin pitches (default 1.0, capped at
          2.0) *)
  fixed_cells : int list;
      (** cells pinned at their [design.global] position: immovable
          density, huge anchor weight *)
}

val default_options : options

type round = {
  index : int;  (** 1-based *)
  alpha : float;
  hpwl : float;
  overflow : float;  (** {!Density.overflow} after this round's solve *)
  max_utilization : float;
  cg_iterations : int;  (** both axes *)
  density_seconds : float;  (** accumulate + Poisson solve + field *)
}

type stats = {
  rounds : round list;  (** chronological; [<= iterations] entries *)
  final_hpwl : float;
  final_overflow : float;
  grid : int;  (** density bins per side actually used *)
}

val place :
  ?options:options ->
  ?obs:Mclh_obs.Obs.t ->
  ?on_round:(round -> Placement.t -> unit) ->
  Design.t ->
  Placement.t * stats
(** [place design] produces a fresh global placement from the netlist
    ([design.global] is read only for [fixed_cells]). [on_round] fires
    after every round with the round record and the {e live} position
    buffer (copy it to keep it — the ECO bridge does). [obs] records
    [gp/*] counters, gauges and spans.

    Cells not touched by any net settle at their anchors. The result is
    clamped to the chip but not legal.

    @raise Invalid_argument if [iterations < 1] or a [fixed_cells] id is
      out of range. *)
