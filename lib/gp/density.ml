open Mclh_linalg
open Mclh_circuit

type t = {
  m : int;
  bin_w : float;
  bin_h : float;
  bin_area : float;
  target : float;
  is_fixed : bool array;
  movable : float array;
  fixed : float array;
  rho : float array;
  psi : float array;
  ex : float array;
  ey : float array;
  plan : Fft.plan;
  buf : float array;  (* gather/scatter line, length m *)
  lambda : float array;  (* lambda.(u) = 2 (1 - cos (pi u / m)) *)
  w : float array;  (* w.(u) = pi u / m *)
  total_movable : float;
}

let overlap a0 a1 b0 b1 = Float.max 0.0 (Float.min a1 b1 -. Float.max a0 b0)

(* area-weighted spread of rectangle [x0,x1) x [y0,y1) over the grid;
   area outside the chip is dropped *)
let spread t acc ~x0 ~y0 ~x1 ~y1 =
  let m = t.m in
  let ix0 = max 0 (int_of_float (x0 /. t.bin_w)) in
  let ix1 = min (m - 1) (int_of_float ((x1 -. 1e-9) /. t.bin_w)) in
  let iy0 = max 0 (int_of_float (y0 /. t.bin_h)) in
  let iy1 = min (m - 1) (int_of_float ((y1 -. 1e-9) /. t.bin_h)) in
  for iy = iy0 to iy1 do
    let by0 = float_of_int iy *. t.bin_h in
    let cy = overlap y0 y1 by0 (by0 +. t.bin_h) in
    for ix = ix0 to ix1 do
      let bx0 = float_of_int ix *. t.bin_w in
      let a = overlap x0 x1 bx0 (bx0 +. t.bin_w) *. cy in
      acc.((iy * m) + ix) <- acc.((iy * m) + ix) +. a
    done
  done

(* bins sized for ~6 cells each: much finer and per-bin overflow never
   drops below its cell-granularity floor, much coarser and the field
   stops resolving local hot spots *)
let default_grid n =
  let s = sqrt (float_of_int (max 1 n) /. 6.0) in
  let m = ref 8 in
  while float_of_int !m < s && !m < 512 do
    m := !m * 2
  done;
  (* nearest power of two in log space, not the ceiling: just past a
     boundary the finer grid would quarter the cells per bin *)
  if !m > 8 && s < float_of_int !m /. sqrt 2.0 then !m / 2 else !m

let create ?grid ?(target = 1.0) ?fixed (design : Design.t) =
  let n = Design.num_cells design in
  let m = match grid with Some g -> g | None -> default_grid n in
  let plan = Fft.plan m in
  let is_fixed =
    match fixed with
    | None -> Array.make n false
    | Some f ->
      if Array.length f <> n then
        invalid_arg "Density.create: fixed length <> num_cells";
      Array.copy f
  in
  if target <= 0.0 then invalid_arg "Density.create: target <= 0";
  let chip = design.Design.chip in
  let fm = float_of_int m in
  let t =
    { m;
      bin_w = float_of_int chip.Chip.num_sites /. fm;
      bin_h = float_of_int chip.Chip.num_rows /. fm;
      bin_area =
        float_of_int chip.Chip.num_sites /. fm
        *. (float_of_int chip.Chip.num_rows /. fm);
      target;
      is_fixed;
      movable = Array.make (m * m) 0.0;
      fixed = Array.make (m * m) 0.0;
      rho = Array.make (m * m) 0.0;
      psi = Array.make (m * m) 0.0;
      ex = Array.make (m * m) 0.0;
      ey = Array.make (m * m) 0.0;
      plan;
      buf = Array.make m 0.0;
      lambda =
        Array.init m (fun u -> 2.0 *. (1.0 -. cos (Float.pi *. float_of_int u /. fm)));
      w = Array.init m (fun u -> Float.pi *. float_of_int u /. fm);
      total_movable =
        (let acc = ref 0.0 in
         Array.iter
           (fun (c : Cell.t) ->
             if not is_fixed.(c.Cell.id) then
               acc := !acc +. float_of_int (c.Cell.width * c.Cell.height))
           design.Design.cells;
         !acc);
    }
  in
  (* fixed pre-fill: blockages, then pinned cells at their global spot *)
  Array.iter
    (fun (b : Blockage.t) ->
      let x0 = float_of_int b.Blockage.x and y0 = float_of_int b.Blockage.row in
      spread t t.fixed ~x0 ~y0
        ~x1:(x0 +. float_of_int b.Blockage.width)
        ~y1:(y0 +. float_of_int b.Blockage.height))
    design.Design.blockages;
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      if is_fixed.(i) then begin
        let x0 = design.Design.global.Placement.xs.(i)
        and y0 = design.Design.global.Placement.ys.(i) in
        spread t t.fixed ~x0 ~y0
          ~x1:(x0 +. float_of_int c.Cell.width)
          ~y1:(y0 +. float_of_int c.Cell.height)
      end)
    design.Design.cells;
  t

let grid t = t.m
let bin_w t = t.bin_w
let bin_h t = t.bin_h
let total_movable_area t = t.total_movable

let accumulate t (design : Design.t) (pl : Placement.t) =
  Array.fill t.movable 0 (t.m * t.m) 0.0;
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      if not t.is_fixed.(i) then begin
        let x0 = pl.Placement.xs.(i) and y0 = pl.Placement.ys.(i) in
        spread t t.movable ~x0 ~y0
          ~x1:(x0 +. float_of_int c.Cell.width)
          ~y1:(y0 +. float_of_int c.Cell.height)
      end)
    design.Design.cells

(* in-place transform of every row (contiguous) of grid [g] *)
let rows_inplace t g f =
  let m = t.m in
  for iy = 0 to m - 1 do
    Array.blit g (iy * m) t.buf 0 m;
    f t.buf;
    Array.blit t.buf 0 g (iy * m) m
  done

(* in-place transform of every column of grid [g] *)
let cols_inplace t g f =
  let m = t.m in
  for ix = 0 to m - 1 do
    for iy = 0 to m - 1 do
      t.buf.(iy) <- g.((iy * m) + ix)
    done;
    f t.buf;
    for iy = 0 to m - 1 do
      g.((iy * m) + ix) <- t.buf.(iy)
    done
  done

let dct2_line t b = Fft.dct2 t.plan ~src:b ~dst:b
let idct2_line t b = Fft.idct2 t.plan ~src:b ~dst:b

(* b.(k) <- scale * dst3 (w.(k) * b.(k)) — the spectral derivative *)
let deriv_line t scale b =
  let m = t.m in
  for k = 0 to m - 1 do
    b.(k) <- b.(k) *. t.w.(k)
  done;
  Fft.dst3 t.plan ~src:b ~dst:b;
  for k = 0 to m - 1 do
    b.(k) <- b.(k) *. scale
  done

let solve t =
  let m = t.m in
  let mm = m * m in
  for k = 0 to mm - 1 do
    t.rho.(k) <- (t.movable.(k) +. t.fixed.(k)) /. t.bin_area
  done;
  (* forward 2-D DCT-II of rho into psi (kept: rho stays readable) *)
  Array.blit t.rho 0 t.psi 0 mm;
  rows_inplace t t.psi (dct2_line t);
  cols_inplace t t.psi (dct2_line t);
  (* pointwise divide by the stencil eigenvalues; DC removed *)
  t.psi.(0) <- 0.0;
  for iy = 0 to m - 1 do
    for ix = 0 to m - 1 do
      if ix <> 0 || iy <> 0 then begin
        let k = (iy * m) + ix in
        t.psi.(k) <- t.psi.(k) /. (t.lambda.(ix) +. t.lambda.(iy))
      end
    done
  done;
  (* field synthesis from the coefficients, before psi is inverted.
     E = -grad psi: differentiating the cosine basis along one axis
     turns idct2 into a weighted sine sum — (2/m) sum_{k>=1} w_k a_k
     sin(pi k (2i+1) / 2m) — divided by the bin pitch to express the
     slope per site (resp. per row). *)
  Array.blit t.psi 0 t.ex 0 mm;
  Array.blit t.psi 0 t.ey 0 mm;
  let fscale pitch = 2.0 /. (float_of_int m *. pitch) in
  cols_inplace t t.ex (idct2_line t);
  rows_inplace t t.ex (deriv_line t (fscale t.bin_w));
  rows_inplace t t.ey (idct2_line t);
  cols_inplace t t.ey (deriv_line t (fscale t.bin_h));
  (* potential in real space, for the residual check *)
  rows_inplace t t.psi (idct2_line t);
  cols_inplace t t.psi (idct2_line t)

let field_at t ~x ~y =
  let m = t.m in
  let pick g fx fy =
    let gx = Float.max 0.0 (Float.min (fx /. t.bin_w -. 0.5) (float_of_int m -. 1.0)) in
    let gy = Float.max 0.0 (Float.min (fy /. t.bin_h -. 0.5) (float_of_int m -. 1.0)) in
    let ix = min (m - 2) (max 0 (int_of_float gx))
    and iy = min (m - 2) (max 0 (int_of_float gy)) in
    let ix = if m = 1 then 0 else ix and iy = if m = 1 then 0 else iy in
    let tx = Float.max 0.0 (Float.min 1.0 (gx -. float_of_int ix))
    and ty = Float.max 0.0 (Float.min 1.0 (gy -. float_of_int iy)) in
    let at ix iy = g.((min (m - 1) iy * m) + min (m - 1) ix) in
    let v00 = at ix iy
    and v10 = at (ix + 1) iy
    and v01 = at ix (iy + 1)
    and v11 = at (ix + 1) (iy + 1) in
    ((v00 *. (1.0 -. tx)) +. (v10 *. tx)) *. (1.0 -. ty)
    +. (((v01 *. (1.0 -. tx)) +. (v11 *. tx)) *. ty)
  in
  (pick t.ex x y, pick t.ey x y)

let overflow t =
  if t.total_movable <= 0.0 then 0.0
  else begin
    let over = ref 0.0 in
    for k = 0 to (t.m * t.m) - 1 do
      let cap = Float.max 0.0 ((t.target *. t.bin_area) -. t.fixed.(k)) in
      over := !over +. Float.max 0.0 (t.movable.(k) -. cap)
    done;
    !over /. t.total_movable
  end

let max_utilization t =
  let mx = ref 0.0 in
  for k = 0 to (t.m * t.m) - 1 do
    mx := Float.max !mx ((t.movable.(k) +. t.fixed.(k)) /. t.bin_area)
  done;
  !mx

let movable t = t.movable
let fixed_fill t = t.fixed
let charge t = t.rho
let potential t = t.psi
