open Mclh_linalg
open Mclh_circuit

type net_model = Clique | B2b

type options = {
  iterations : int;
  anchor_weight : float;
  anchor_growth : float;
  cg_tol : float;
  net_model : net_model;
}

let default_options =
  { iterations = 12; anchor_weight = 0.01; anchor_growth = 2.0; cg_tol = 1e-7;
    net_model = Clique }

type stats = { rounds : (float * float) list; final_hpwl : float }

(* clique net model with edge weight 1/(k-1): build the Laplacian L (shared
   by x and y) and the pin-offset load vectors.

   For an edge (i, j, w) with pin offsets (di, dj) along one axis, the
   wirelength term w (x_i + di - x_j - dj)^2 contributes
     L[i,i] += w, L[j,j] += w, L[i,j] -= w, L[j,i] -= w
     b[i] += w (dj - di), b[j] += w (di - dj). *)
(* one per-axis Laplacian + load from a list of weighted pin pairs *)
let add_edge coo load w i j di dj =
  if i <> j && w > 0.0 then begin
    Coo.add coo i i w;
    Coo.add coo j j w;
    Coo.add coo i j (-.w);
    Coo.add coo j i (-.w);
    load.(i) <- load.(i) +. (w *. (dj -. di));
    load.(j) <- load.(j) +. (w *. (di -. dj))
  end

(* fixed clique model: one shared Laplacian for both axes (the x/y loads
   differ through the pin offsets) *)
let build_clique (design : Design.t) =
  let n = Design.num_cells design in
  let coo = Coo.create ~rows:n ~cols:n in
  let bx = Vec.zeros n and by = Vec.zeros n in
  let dummy = Vec.zeros n in
  Netlist.iter design.nets (fun _ pins ->
      let k = Array.length pins in
      if k >= 2 then begin
        let w = 1.0 /. float_of_int (k - 1) in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            let pa = pins.(a) and pb = pins.(b) in
            (* the Laplacian entries are added once; both axis loads *)
            add_edge coo bx w pa.Netlist.cell pb.Netlist.cell pa.dx pb.dx;
            (* y load only (reuse the structure; weights already added) *)
            if pa.Netlist.cell <> pb.Netlist.cell then begin
              by.(pa.Netlist.cell) <- by.(pa.Netlist.cell) +. (w *. (pb.dy -. pa.dy));
              by.(pb.Netlist.cell) <- by.(pb.Netlist.cell) +. (w *. (pa.dy -. pb.dy))
            end
          done
        done
      end);
  ignore dummy;
  (Coo.to_csr coo, bx, by, Coo.to_csr (Coo.create ~rows:n ~cols:n))

(* bound-to-bound model for ONE axis at the current positions: each pin
   connects to the net's min and max pins, weight 2/((k-1) length) (the
   B2B weights make the quadratic equal HPWL at the linearization point) *)
let build_b2b (design : Design.t) positions get_offset =
  let n = Design.num_cells design in
  let coo = Coo.create ~rows:n ~cols:n in
  let load = Vec.zeros n in
  Netlist.iter design.nets (fun _ pins ->
      let k = Array.length pins in
      if k >= 2 then begin
        let pos p = positions.(p.Netlist.cell) +. get_offset p in
        let lo = ref 0 and hi = ref 0 in
        Array.iteri
          (fun idx p ->
            if pos p < pos pins.(!lo) then lo := idx;
            if pos p > pos pins.(!hi) then hi := idx)
          pins;
        let connect a b =
          let pa = pins.(a) and pb = pins.(b) in
          let len = Float.max 1.0 (Float.abs (pos pa -. pos pb)) in
          let w = 2.0 /. (float_of_int (k - 1) *. len) in
          add_edge coo load w pa.Netlist.cell pb.Netlist.cell (get_offset pa)
            (get_offset pb)
        in
        connect !lo !hi;
        Array.iteri
          (fun idx _ -> if idx <> !lo && idx <> !hi then begin
               connect idx !lo;
               connect idx !hi
             end)
          pins
      end);
  (Coo.to_csr coo, load)

(* lookahead legalization provides the anchors: legalize the current
   fractional placement with the fast Tetris baseline *)
let lookahead (design : Design.t) (pl : Placement.t) =
  let d =
    Design.make ~blockages:design.blockages ~name:"gp-lookahead"
      ~chip:design.chip ~cells:design.cells ~global:pl ~nets:design.nets ()
  in
  match Mclh_core.Tetris_legal.legalize d with
  | Ok pl -> pl
  | Error u ->
    (* anchors only guide the next iteration; a partial legalization is
       still a usable anchor set *)
    u.Mclh_core.Unplaced.partial

let clamp (design : Design.t) (pl : Placement.t) =
  let chip = design.chip in
  Array.iteri
    (fun i (c : Cell.t) ->
      pl.Placement.xs.(i) <-
        Float.max 0.0
          (Float.min pl.Placement.xs.(i)
             (float_of_int (chip.Chip.num_sites - c.Cell.width)));
      pl.Placement.ys.(i) <-
        Float.max 0.0
          (Float.min pl.Placement.ys.(i)
             (float_of_int (chip.Chip.num_rows - c.Cell.height))))
    design.cells;
  pl

let place ?(options = default_options) (design : Design.t) =
  if options.iterations < 1 then invalid_arg "Gp.place: iterations < 1";
  let n = Design.num_cells design in
  let chip = design.chip in
  let rh = chip.Chip.row_height in
  if n = 0 then (Placement.create 0, { rounds = []; final_hpwl = 0.0 })
  else begin
    let clique_laplacian, clique_bx, clique_by, _ = build_clique design in
    let diag_of lap =
      let d = Vec.zeros n in
      Csr.iter lap (fun i j v -> if i = j then d.(i) <- d.(i) +. v);
      d
    in
    let clique_diag = diag_of clique_laplacian in
    (* initial anchors: chip center, with a deterministic sub-site stagger
       so the Laplacian's nullspace (connected components) is broken *)
    let cx = float_of_int chip.Chip.num_sites /. 2.0 in
    let cy = float_of_int chip.Chip.num_rows /. 2.0 in
    let ax = Vec.init n (fun i -> cx +. (0.001 *. float_of_int (i mod 101))) in
    let ay = Vec.init n (fun i -> cy +. (0.0005 *. float_of_int (i mod 89))) in
    let xs = Vec.copy ax and ys = Vec.copy ay in
    let solve_axis ~laplacian ~diag ~alpha ~anchors ~load current =
      let apply v =
        let out = Csr.mul_vec laplacian v in
        for i = 0 to n - 1 do
          out.(i) <- out.(i) +. (alpha *. v.(i))
        done;
        out
      in
      let b = Vec.init n (fun i -> load.(i) +. (alpha *. anchors.(i))) in
      let jacobi = Vec.init n (fun i -> Float.max 1e-12 diag.(i) +. alpha) in
      let r =
        Cg.solve ~tol:options.cg_tol ~x0:current ~jacobi ~dim:n apply ~b
      in
      r.Cg.x
    in
    let rounds = ref [] in
    let alpha = ref options.anchor_weight in
    for _round = 1 to options.iterations do
      let x', y' =
        match options.net_model with
        | Clique ->
          ( solve_axis ~laplacian:clique_laplacian ~diag:clique_diag
              ~alpha:!alpha ~anchors:ax ~load:clique_bx xs,
            solve_axis ~laplacian:clique_laplacian ~diag:clique_diag
              ~alpha:!alpha ~anchors:ay ~load:clique_by ys )
        | B2b ->
          let lap_x, load_x = build_b2b design xs (fun p -> p.Netlist.dx) in
          let lap_y, load_y = build_b2b design ys (fun p -> p.Netlist.dy) in
          ( solve_axis ~laplacian:lap_x ~diag:(diag_of lap_x) ~alpha:!alpha
              ~anchors:ax ~load:load_x xs,
            solve_axis ~laplacian:lap_y ~diag:(diag_of lap_y) ~alpha:!alpha
              ~anchors:ay ~load:load_y ys )
      in
      Array.blit x' 0 xs 0 n;
      Array.blit y' 0 ys 0 n;
      let pl = clamp design (Placement.make ~xs:(Vec.copy xs) ~ys:(Vec.copy ys)) in
      let hpwl = Hpwl.total ~row_height:rh design.nets pl in
      rounds := (!alpha, hpwl) :: !rounds;
      (* refresh anchors by lookahead legalization of the current solution *)
      let legal = lookahead design pl in
      Array.blit legal.Placement.xs 0 ax 0 n;
      Array.blit legal.Placement.ys 0 ay 0 n;
      alpha := !alpha *. options.anchor_growth
    done;
    let final =
      clamp design (Placement.make ~xs:(Vec.copy xs) ~ys:(Vec.copy ys))
    in
    ( final,
      { rounds = List.rev !rounds;
        final_hpwl = Hpwl.total ~row_height:rh design.nets final } )
  end
