module Dgrid = Density
open Mclh_linalg
open Mclh_circuit
module Obs = Mclh_obs.Obs

type net_model = Clique | B2b

type options = {
  iterations : int;
  anchor_weight : float;
  anchor_growth : float;
  cg_tol : float;
  net_model : net_model;
  density : bool;
  grid : int option;
  target_density : float;
  stop_overflow : float;
  step_bins : float;
  fixed_cells : int list;
}

let default_options =
  { iterations = 24; anchor_weight = 0.01; anchor_growth = 1.6; cg_tol = 1e-7;
    net_model = Clique; density = true; grid = None; target_density = 1.0;
    stop_overflow = 0.10; step_bins = 1.0; fixed_cells = [] }

type round = {
  index : int;
  alpha : float;
  hpwl : float;
  overflow : float;
  max_utilization : float;
  cg_iterations : int;
  density_seconds : float;
}

type stats = {
  rounds : round list;
  final_hpwl : float;
  final_overflow : float;
  grid : int;
}

(* anchor weight pinning a fixed cell to design.global: large enough that
   the quadratic pull of any realistic net load is invisible *)
let pin_weight = 1e8

(* clique net model with edge weight 1/(k-1): build the Laplacian L (shared
   by x and y) and the pin-offset load vectors.

   For an edge (i, j, w) with pin offsets (di, dj) along one axis, the
   wirelength term w (x_i + di - x_j - dj)^2 contributes
     L[i,i] += w, L[j,j] += w, L[i,j] -= w, L[j,i] -= w
     b[i] += w (dj - di), b[j] += w (di - dj). *)
let add_edge coo load w i j di dj =
  if i <> j && w > 0.0 then begin
    Coo.add coo i i w;
    Coo.add coo j j w;
    Coo.add coo i j (-.w);
    Coo.add coo j i (-.w);
    load.(i) <- load.(i) +. (w *. (dj -. di));
    load.(j) <- load.(j) +. (w *. (di -. dj))
  end

(* fixed clique model: one shared Laplacian for both axes (the x/y loads
   differ through the pin offsets) *)
let build_clique (design : Design.t) =
  let n = Design.num_cells design in
  let coo = Coo.create ~rows:n ~cols:n in
  let bx = Vec.zeros n and by = Vec.zeros n in
  Netlist.iter design.nets (fun _ pins ->
      let k = Array.length pins in
      if k >= 2 then begin
        let w = 1.0 /. float_of_int (k - 1) in
        for a = 0 to k - 1 do
          for b = a + 1 to k - 1 do
            let pa = pins.(a) and pb = pins.(b) in
            (* the Laplacian entries are added once; both axis loads *)
            add_edge coo bx w pa.Netlist.cell pb.Netlist.cell pa.dx pb.dx;
            (* y load only (reuse the structure; weights already added) *)
            if pa.Netlist.cell <> pb.Netlist.cell then begin
              by.(pa.Netlist.cell) <- by.(pa.Netlist.cell) +. (w *. (pb.dy -. pa.dy));
              by.(pb.Netlist.cell) <- by.(pb.Netlist.cell) +. (w *. (pa.dy -. pb.dy))
            end
          done
        done
      end);
  (Coo.to_csr coo, bx, by)

(* bound-to-bound model for ONE axis at the current positions: each pin
   connects to the net's min and max pins, weight 2/((k-1) length) (the
   B2B weights make the quadratic equal HPWL at the linearization point) *)
let build_b2b (design : Design.t) positions get_offset =
  let n = Design.num_cells design in
  let coo = Coo.create ~rows:n ~cols:n in
  let load = Vec.zeros n in
  Netlist.iter design.nets (fun _ pins ->
      let k = Array.length pins in
      if k >= 2 then begin
        let pos p = positions.(p.Netlist.cell) +. get_offset p in
        let lo = ref 0 and hi = ref 0 in
        Array.iteri
          (fun idx p ->
            if pos p < pos pins.(!lo) then lo := idx;
            if pos p > pos pins.(!hi) then hi := idx)
          pins;
        let connect a b =
          let pa = pins.(a) and pb = pins.(b) in
          let len = Float.max 1.0 (Float.abs (pos pa -. pos pb)) in
          let w = 2.0 /. (float_of_int (k - 1) *. len) in
          add_edge coo load w pa.Netlist.cell pb.Netlist.cell (get_offset pa)
            (get_offset pb)
        in
        connect !lo !hi;
        Array.iteri
          (fun idx _ -> if idx <> !lo && idx <> !hi then begin
               connect idx !lo;
               connect idx !hi
             end)
          pins
      end);
  (Coo.to_csr coo, load)

(* lookahead legalization provides the legacy-mode anchors: legalize the
   current fractional placement with the fast Tetris baseline *)
let lookahead (design : Design.t) (pl : Placement.t) =
  let d =
    Design.make ~blockages:design.blockages ~name:"gp-lookahead"
      ~chip:design.chip ~cells:design.cells ~global:pl ~nets:design.nets ()
  in
  match Mclh_core.Tetris_legal.legalize d with
  | Ok pl -> pl
  | Error u ->
    (* anchors only guide the next iteration; a partial legalization is
       still a usable anchor set *)
    u.Mclh_core.Unplaced.partial

let clamp_arrays (design : Design.t) xs ys =
  let chip = design.chip in
  Array.iteri
    (fun i (c : Cell.t) ->
      xs.(i) <-
        Float.max 0.0
          (Float.min xs.(i) (float_of_int (chip.Chip.num_sites - c.Cell.width)));
      ys.(i) <-
        Float.max 0.0
          (Float.min ys.(i) (float_of_int (chip.Chip.num_rows - c.Cell.height))))
    design.cells

let place ?(options = default_options) ?obs ?on_round (design : Design.t) =
  if options.iterations < 1 then invalid_arg "Gp.place: iterations < 1";
  let n = Design.num_cells design in
  let chip = design.chip in
  let rh = chip.Chip.row_height in
  if n = 0 then
    ( Placement.create 0,
      { rounds = []; final_hpwl = 0.0; final_overflow = 0.0; grid = 0 } )
  else
    Obs.span obs "gp/place" @@ fun () ->
    let fixed = Array.make n false in
    List.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Gp.place: fixed cell out of range";
        fixed.(i) <- true)
      options.fixed_cells;
    let dgrid =
      Dgrid.create ?grid:options.grid ~target:options.target_density ~fixed
        design
    in
    Obs.gauge obs "gp/grid" (float_of_int (Dgrid.grid dgrid));
    let ov_trace = Obs.new_trace obs "gp/overflow" ~capacity:256 in
    let clique_laplacian, clique_bx, clique_by = build_clique design in
    let diag_of lap =
      let d = Vec.zeros n in
      Csr.iter lap (fun i j v -> if i = j then d.(i) <- d.(i) +. v);
      d
    in
    let clique_diag = diag_of clique_laplacian in
    (* initial anchors: chip center, with a deterministic sub-site stagger
       so the Laplacian's nullspace (connected components) is broken;
       pinned cells anchor at their given global position *)
    let cx = float_of_int chip.Chip.num_sites /. 2.0 in
    let cy = float_of_int chip.Chip.num_rows /. 2.0 in
    let ax =
      Vec.init n (fun i ->
          if fixed.(i) then design.global.Placement.xs.(i)
          else cx +. (0.001 *. float_of_int (i mod 101)))
    in
    let ay =
      Vec.init n (fun i ->
          if fixed.(i) then design.global.Placement.ys.(i)
          else cy +. (0.0005 *. float_of_int (i mod 89)))
    in
    let xs = Vec.copy ax and ys = Vec.copy ay in
    let alphas = Vec.zeros n in
    let fx = Vec.zeros n and fy = Vec.zeros n in
    let solve_axis ~laplacian ~diag ~anchors ~load current =
      let apply v =
        let out = Csr.mul_vec laplacian v in
        for i = 0 to n - 1 do
          out.(i) <- out.(i) +. (alphas.(i) *. v.(i))
        done;
        out
      in
      let b = Vec.init n (fun i -> load.(i) +. (alphas.(i) *. anchors.(i))) in
      let jacobi = Vec.init n (fun i -> Float.max 1e-12 diag.(i) +. alphas.(i)) in
      let r =
        Cg.solve ~tol:options.cg_tol ~x0:current ~jacobi ~dim:n apply ~b
      in
      (r.Cg.x, r.Cg.iterations)
    in
    let step_bins = Float.min options.step_bins 2.0 in
    let rounds = ref [] in
    let alpha = ref options.anchor_weight in
    let stop = ref false in
    let round_no = ref 0 in
    while (not !stop) && !round_no < options.iterations do
      incr round_no;
      for i = 0 to n - 1 do
        alphas.(i) <- (if fixed.(i) then pin_weight else !alpha)
      done;
      let (x', itx), (y', ity) =
        match options.net_model with
        | Clique ->
          ( solve_axis ~laplacian:clique_laplacian ~diag:clique_diag
              ~anchors:ax ~load:clique_bx xs,
            solve_axis ~laplacian:clique_laplacian ~diag:clique_diag
              ~anchors:ay ~load:clique_by ys )
        | B2b ->
          let lap_x, load_x = build_b2b design xs (fun p -> p.Netlist.dx) in
          let lap_y, load_y = build_b2b design ys (fun p -> p.Netlist.dy) in
          ( solve_axis ~laplacian:lap_x ~diag:(diag_of lap_x) ~anchors:ax
              ~load:load_x xs,
            solve_axis ~laplacian:lap_y ~diag:(diag_of lap_y) ~anchors:ay
              ~load:load_y ys )
      in
      Array.blit x' 0 xs 0 n;
      Array.blit y' 0 ys 0 n;
      (* pinned cells sit exactly at their given position (the huge anchor
         weight holds them there up to CG tolerance; make it exact) *)
      Array.iteri
        (fun i f ->
          if f then begin
            xs.(i) <- design.global.Placement.xs.(i);
            ys.(i) <- design.global.Placement.ys.(i)
          end)
        fixed;
      clamp_arrays design xs ys;
      let pl = Placement.make ~xs ~ys in
      let hpwl = Hpwl.total ~row_height:rh design.nets pl in
      (* density step: bin the placement, solve the potential, read the
         field at every movable cell center *)
      let t0 = Mclh_par.Clock.now () in
      Dgrid.accumulate dgrid design pl;
      if options.density then begin
        Dgrid.solve dgrid;
        Array.iteri
          (fun i (c : Cell.t) ->
            if fixed.(i) then begin
              fx.(i) <- 0.0;
              fy.(i) <- 0.0
            end
            else begin
              let ex, ey =
                Dgrid.field_at dgrid
                  ~x:(xs.(i) +. (float_of_int c.Cell.width /. 2.0))
                  ~y:(ys.(i) +. (float_of_int c.Cell.height /. 2.0))
              in
              fx.(i) <- ex;
              fy.(i) <- ey
            end)
          design.cells
      end;
      let ov = Dgrid.overflow dgrid in
      let max_util = Dgrid.max_utilization dgrid in
      let density_seconds = Mclh_par.Clock.now () -. t0 in
      let r =
        { index = !round_no; alpha = !alpha; hpwl; overflow = ov;
          max_utilization = max_util; cg_iterations = itx + ity;
          density_seconds }
      in
      rounds := r :: !rounds;
      Obs.incr obs "gp/rounds";
      Obs.add obs "gp/cg_iterations" (itx + ity);
      Obs.record_span obs "gp/density" density_seconds;
      (match ov_trace with Some tr -> Mclh_obs.Trace.record tr ov | None -> ());
      (match on_round with Some f -> f r pl | None -> ());
      if options.density then begin
        if ov <= options.stop_overflow then stop := true
        else begin
          (* next anchors: each movable cell's position pushed one field
             step toward sparser bins, normalized so the strongest push
             moves [step_bins] bin pitches; clamped so no anchor asks a
             cell to leave the chip *)
          let mex = ref 0.0 and mey = ref 0.0 in
          for i = 0 to n - 1 do
            mex := Float.max !mex (Float.abs fx.(i));
            mey := Float.max !mey (Float.abs fy.(i))
          done;
          let mux =
            if !mex > 0.0 then step_bins *. Dgrid.bin_w dgrid /. !mex else 0.0
          and muy =
            if !mey > 0.0 then step_bins *. Dgrid.bin_h dgrid /. !mey else 0.0
          in
          Array.iteri
            (fun i f ->
              if not f then begin
                ax.(i) <- xs.(i) +. (mux *. fx.(i));
                ay.(i) <- ys.(i) +. (muy *. fy.(i))
              end)
            fixed;
          clamp_arrays design ax ay
        end
      end
      else begin
        (* legacy mode: refresh anchors by lookahead legalization *)
        let legal = lookahead design pl in
        Array.iteri
          (fun i f ->
            if not f then begin
              ax.(i) <- legal.Placement.xs.(i);
              ay.(i) <- legal.Placement.ys.(i)
            end)
          fixed
      end;
      alpha := !alpha *. options.anchor_growth
    done;
    let final =
      let xs' = Vec.copy xs and ys' = Vec.copy ys in
      clamp_arrays design xs' ys';
      Placement.make ~xs:xs' ~ys:ys'
    in
    let final_overflow =
      match !rounds with r :: _ -> r.overflow | [] -> 0.0
    in
    let final_hpwl = Hpwl.total ~row_height:rh design.nets final in
    Obs.gauge obs "gp/final_hpwl" final_hpwl;
    Obs.gauge obs "gp/final_overflow" final_overflow;
    ( final,
      { rounds = List.rev !rounds; final_hpwl; final_overflow;
        grid = Dgrid.grid dgrid } )
