open Mclh_circuit
open Mclh_incr

let batches_of_rounds ?(min_move = 1e-6) (snapshots : Placement.t list) =
  let batch (prev : Placement.t) (next : Placement.t) =
    let n = Array.length prev.Placement.xs in
    if Array.length next.Placement.xs <> n then
      invalid_arg "Eco_bridge: snapshots differ in cell count";
    let edits = ref [] in
    for i = n - 1 downto 0 do
      let dx = Float.abs (next.Placement.xs.(i) -. prev.Placement.xs.(i))
      and dy = Float.abs (next.Placement.ys.(i) -. prev.Placement.ys.(i)) in
      if dx +. dy > min_move then
        edits :=
          Edit.Move
            { cell = i; x = next.Placement.xs.(i); y = next.Placement.ys.(i) }
          :: !edits
    done;
    !edits
  in
  let rec pair = function
    | a :: (b :: _ as rest) ->
      (match batch a b with [] -> pair rest | es -> es :: pair rest)
    | _ -> []
  in
  pair snapshots

let write ~path ?min_move snapshots =
  Edit.write_file ~path (batches_of_rounds ?min_move snapshots)
