open Mclh_circuit

let attempt ~order (design : Design.t) =
  let chip = design.chip in
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let n = Design.num_cells design in
  let frontier = Array.make num_rows 0 in
  (* blockage intervals per row, sorted; the frontier jumps over them *)
  let blocked : (int * int) list array = Array.make num_rows [] in
  Array.iter
    (fun (b : Blockage.t) ->
      for r = b.Blockage.row to b.Blockage.row + b.Blockage.height - 1 do
        blocked.(r) <- (b.Blockage.x, b.Blockage.x + b.Blockage.width) :: blocked.(r)
      done)
    design.blockages;
  Array.iteri (fun r l -> blocked.(r) <- List.sort compare l) blocked;
  (* smallest x' >= x such that [x', x'+w) avoids every blockage in rows
     r..r+h-1; iterates to a fixed point across the spanned rows *)
  let rec clear_of_blockages r h w x =
    let bumped = ref x in
    for k = r to r + h - 1 do
      List.iter
        (fun (b0, b1) -> if !bumped < b1 && b0 < !bumped + w then bumped := b1)
        blocked.(k)
    done;
    if !bumped = x then x else clear_of_blockages r h w !bumped
  in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let unplaced = ref [] in
  Array.iter
    (fun i ->
      let cell = design.cells.(i) in
      let h = cell.Cell.height and w = cell.Cell.width in
      let gx = design.global.Placement.xs.(i)
      and gy = design.global.Placement.ys.(i) in
      let desired_x = int_of_float (Float.round gx) in
      let best = ref None in
      let best_cost () =
        match !best with None -> infinity | Some (_, _, c) -> c
      in
      for r = 0 to num_rows - h do
        if Chip.row_admits chip cell r then begin
          let front = ref 0 in
          for k = r to r + h - 1 do
            front := max !front frontier.(k)
          done;
          (* appended position: at the frontier, or at the target if the
             frontier leaves room; bumped right past any blockage *)
          let x = max !front (min desired_x (num_sites - w)) in
          let x = clear_of_blockages r h w x in
          if x + w <= num_sites then begin
            let cost =
              Float.abs (float_of_int x -. gx)
              +. (chip.Chip.row_height *. Float.abs (float_of_int r -. gy))
            in
            if cost < best_cost () then best := Some (r, x, cost)
          end
        end
      done;
      match !best with
      | None ->
        (* nowhere to append: park the cell at its clamped target and
           report it; the frontier is untouched so the rest of the scan
           proceeds undisturbed *)
        xs.(i) <- float_of_int (max 0 (min (num_sites - w) desired_x));
        ys.(i) <-
          float_of_int
            (max 0 (min (num_rows - h) (int_of_float (Float.round gy))));
        unplaced := i :: !unplaced
      | Some (r, x, _) ->
        for k = r to r + h - 1 do
          frontier.(k) <- x + w
        done;
        xs.(i) <- float_of_int x;
        ys.(i) <- float_of_int r)
    order;
  (Placement.make ~xs ~ys, List.rev !unplaced)

let legalize (design : Design.t) =
  let n = Design.num_cells design in
  let x_order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c =
        compare design.global.Placement.xs.(a) design.global.Placement.xs.(b)
      in
      if c <> 0 then c else compare a b)
    x_order;
  match attempt ~order:x_order design with
  | pl, [] -> Ok pl
  | _, _ ->
    (* the no-holes frontier can strand a tall cell at moderate density;
       classic Tetris has no recourse, so as robustness fallbacks, retry
       with the tall cells first, then fall back to the hole-reusing
       greedy search *)
    let hard_order = Array.copy x_order in
    Array.sort
      (fun a b ->
        let ca = design.cells.(a) and cb = design.cells.(b) in
        let c = compare cb.Cell.height ca.Cell.height in
        if c <> 0 then c
        else
          compare
            (design.global.Placement.xs.(a), a)
            (design.global.Placement.xs.(b), b))
      hard_order;
    (match attempt ~order:hard_order design with
    | pl, [] -> Ok pl
    | _, _ -> (
      match Greedy_cpy.legalize ~options:Greedy_cpy.improved design with
      | Ok pl -> Ok pl
      | Error u ->
        Error
          { u with
            Unplaced.stage = "tetris";
            detail =
              "no row can host these cells, even via the greedy fallback \
               (design beyond capacity?)" }))
