open Mclh_linalg
open Mclh_circuit

type t = {
  design : Design.t;
  assignment : Row_assign.t;
  nvars : int;
  first_var : int array;
  var_cell : int array;
  var_row : int array;
  row_vars : int array array;
  b_mat : Csr.t Lazy.t;
  b_rhs : Vec.t;
  p : Vec.t;
  shift : Vec.t;
  blocks : Blocks.t;
}

let b_mat t = Lazy.force t.b_mat

let num_constraints t = Array.length t.b_rhs

(* The ordering-constraint matrix has exactly one (-1, +1) pair per row,
   emitted in ascending column order — the same (sorted, merged) layout
   [Coo.to_csr] produces, so the direct build is byte-identical to the
   historical triplet-list path (pinned by test_soa.ml). Built lazily:
   the decomposed solve path only ever materializes per-shard CSRs, so
   at scale the global B is never assembled at all. *)
let csr_of_groups ~nvars ~m row_vars =
  let row_ptr = Array.init (m + 1) (fun i -> 2 * i) in
  let col_idx = Array.make (2 * m) 0 in
  let values = Array.make (2 * m) 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        let u = vars.(k) and v = vars.(k + 1) in
        let pos = 2 * !ci in
        if u < v then begin
          col_idx.(pos) <- u;
          values.(pos) <- -1.0;
          col_idx.(pos + 1) <- v;
          values.(pos + 1) <- 1.0
        end
        else begin
          col_idx.(pos) <- v;
          values.(pos) <- 1.0;
          col_idx.(pos + 1) <- u;
          values.(pos + 1) <- -1.0
        end;
        incr ci
      done)
    row_vars;
  Csr.make ~rows:m ~cols:nvars ~row_ptr ~col_idx ~values

(* run [f lo hi] over [0, count), fanned over the shared pool when the
   caller asked for domains and the range is worth splitting; [f] must
   write disjoint state per index so either path produces the same bits *)
let iter_chunks ~num_domains count f =
  if num_domains > 1 && count >= 8192 then
    Mclh_par.Pool.parallel_iter_chunks ~min_chunk:4096
      (Mclh_par.Pool.get ~num_domains)
      count ~f
  else f 0 count

let build ?(num_domains = 1) (design : Design.t) (assignment : Row_assign.t) =
  let n = Design.num_cells design in
  let cells = design.cells in
  let gxs = design.global.Placement.xs in
  let rows = assignment.Row_assign.rows in
  let first_var = Array.make n 0 in
  let nvars =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      first_var.(i) <- !acc;
      acc := !acc + cells.(i).Cell.height
    done;
    !acc
  in
  let var_cell = Array.make nvars 0 and var_row = Array.make nvars 0 in
  for i = 0 to n - 1 do
    let h = cells.(i).Cell.height in
    let fv = first_var.(i) in
    for k = 0 to h - 1 do
      var_cell.(fv + k) <- i;
      var_row.(fv + k) <- rows.(i) + k
    done
  done;
  let segments = Segments.compute design in
  let has_blk = Segments.has_blockages segments in
  (* per-cell segment choice and shift: a multi-row cell picks a segment in
     every spanned row and is measured from the rightmost of their left
     walls, so all its subcells share one shift and E u = 0 is preserved.
     [seg_of_var] is the chosen segment's start per subcell (-1 when the
     row has no segment at all); it doubles as the grouping key below. *)
  let seg_of_var = if has_blk then Array.make nvars (-1) else [||] in
  let cell_shift = Array.make n 0 in
  if has_blk then
    iter_chunks ~num_domains n (fun lo hi ->
        for i = lo to hi - 1 do
          let c = cells.(i) in
          let gx = gxs.(i) in
          let fv = first_var.(i) in
          let sh = ref 0 in
          for k = 0 to c.Cell.height - 1 do
            match
              Segments.locate segments ~row:(rows.(i) + k) ~x:gx
                ~width:c.Cell.width
            with
            | Some seg ->
              seg_of_var.(fv + k) <- seg.Segments.start;
              if seg.Segments.start > !sh then sh := seg.Segments.start
            | None -> ()
          done;
          cell_shift.(i) <- !sh
        done);
  let shift = Array.make nvars 0.0 in
  if has_blk then
    for v = 0 to nvars - 1 do
      shift.(v) <- float_of_int cell_shift.(var_cell.(v))
    done;
  (* ordering groups, struct-of-arrays: bucket the subcell variables per
     chip row with a counting sort, then sort each row range by
     (global x, cell id) in place — the same total order [Order.per_row]
     derives from its per-row lists, without materializing any *)
  let num_rows = design.chip.Chip.num_rows in
  let row_start = Array.make (num_rows + 1) 0 in
  for v = 0 to nvars - 1 do
    let r = var_row.(v) in
    row_start.(r + 1) <- row_start.(r + 1) + 1
  done;
  let nonempty = ref 0 in
  for r = 0 to num_rows - 1 do
    if row_start.(r + 1) > 0 then incr nonempty;
    row_start.(r + 1) <- row_start.(r + 1) + row_start.(r)
  done;
  let members = Array.make nvars 0 in
  let cursor = Array.make num_rows 0 in
  for v = 0 to nvars - 1 do
    let r = var_row.(v) in
    members.(row_start.(r) + cursor.(r)) <- v;
    cursor.(r) <- cursor.(r) + 1
  done;
  let cmp a b =
    let ca = var_cell.(a) and cb = var_cell.(b) in
    let c = compare gxs.(ca) gxs.(cb) in
    if c <> 0 then c else compare ca cb
  in
  iter_chunks ~num_domains num_rows (fun lo hi ->
      for r = lo to hi - 1 do
        let base = row_start.(r) in
        let len = row_start.(r + 1) - base in
        if len > 1 then begin
          let tmp = Array.sub members base len in
          Array.sort cmp tmp;
          Array.blit tmp 0 members base len
        end
      done);
  (* groups: one per nonempty row; under blockages a row splits into one
     group per chosen segment, ordered by first appearance in x order
     (exactly the historical Hashtbl-based split) *)
  let gcap = ref (max 1 !nonempty) and glen = ref 0 in
  let gbuf = ref (Array.make !gcap [||]) in
  let push_group g =
    if !glen = !gcap then begin
      let grown = Array.make (2 * !gcap) [||] in
      Array.blit !gbuf 0 grown 0 !glen;
      gbuf := grown;
      gcap := 2 * !gcap
    end;
    !gbuf.(!glen) <- g;
    incr glen
  in
  if not has_blk then
    for r = 0 to num_rows - 1 do
      let base = row_start.(r) in
      let len = row_start.(r + 1) - base in
      if len > 0 then push_group (Array.sub members base len)
    done
  else begin
    (* scratch reused across rows: distinct keys (first-appearance order)
       and their member counts *)
    let keybuf = ref (Array.make 8 0) and cntbuf = ref (Array.make 8 0) in
    for r = 0 to num_rows - 1 do
      let base = row_start.(r) in
      let len = row_start.(r + 1) - base in
      if len > 0 then begin
        if Array.length !keybuf < len then begin
          keybuf := Array.make len 0;
          cntbuf := Array.make len 0
        end;
        let keys = !keybuf and cnts = !cntbuf in
        let nkeys = ref 0 in
        let key_index key =
          let idx = ref (-1) in
          for j = 0 to !nkeys - 1 do
            if keys.(j) = key then idx := j
          done;
          if !idx >= 0 then !idx
          else begin
            keys.(!nkeys) <- key;
            cnts.(!nkeys) <- 0;
            incr nkeys;
            !nkeys - 1
          end
        in
        for idx = base to base + len - 1 do
          let j = key_index seg_of_var.(members.(idx)) in
          cnts.(j) <- cnts.(j) + 1
        done;
        if !nkeys = 1 then push_group (Array.sub members base len)
        else begin
          let groups = Array.init !nkeys (fun j -> Array.make cnts.(j) 0) in
          let fill = Array.make !nkeys 0 in
          for idx = base to base + len - 1 do
            let v = members.(idx) in
            let j = key_index seg_of_var.(v) in
            groups.(j).(fill.(j)) <- v;
            fill.(j) <- fill.(j) + 1
          done;
          Array.iter push_group groups
        end
      end
    done
  end;
  let row_vars = Array.sub !gbuf 0 !glen in
  (* ordering constraints: one per adjacent pair in each group; every
     variable sits in exactly one group, so m = nvars - #groups. The
     required separation accounts for the shift difference. *)
  let m = nvars - !glen in
  let b_rhs = Array.make m 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        let u = vars.(k) and v = vars.(k + 1) in
        b_rhs.(!ci) <-
          float_of_int cells.(var_cell.(u)).Cell.width
          +. shift.(u) -. shift.(v);
        incr ci
      done)
    row_vars;
  let b_mat = lazy (csr_of_groups ~nvars ~m row_vars) in
  let p = Array.make nvars 0.0 in
  for v = 0 to nvars - 1 do
    p.(v) <- -.(gxs.(var_cell.(v)) -. shift.(v))
  done;
  let num_chains = ref 0 in
  for i = 0 to n - 1 do
    if cells.(i).Cell.height >= 2 then incr num_chains
  done;
  let chains = Array.make !num_chains [||] in
  let k = ref 0 in
  for i = 0 to n - 1 do
    let h = cells.(i).Cell.height in
    if h >= 2 then begin
      let fv = first_var.(i) in
      chains.(!k) <- Array.init h (fun j -> fv + j);
      incr k
    end
  done;
  let blocks = Blocks.of_array ~nvars chains in
  { design; assignment; nvars; first_var; var_cell; var_row; row_vars;
    b_mat; b_rhs; p; shift; blocks }

(* The historical list-based construction, kept verbatim as the oracle the
   property tests pin the streaming build against (byte-identical model
   fields on any design). Not used by the production flow. *)
let build_reference (design : Design.t) (assignment : Row_assign.t) =
  let n = Design.num_cells design in
  let first_var = Array.make n 0 in
  let nvars =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      first_var.(i) <- !acc;
      acc := !acc + design.cells.(i).Cell.height
    done;
    !acc
  in
  let var_cell = Array.make nvars 0 and var_row = Array.make nvars 0 in
  for i = 0 to n - 1 do
    let h = design.cells.(i).Cell.height in
    for k = 0 to h - 1 do
      var_cell.(first_var.(i) + k) <- i;
      var_row.(first_var.(i) + k) <- assignment.rows.(i) + k
    done
  done;
  let segments = Segments.compute design in
  let cell_segment_start =
    Array.init n (fun i ->
        let c = design.cells.(i) in
        let gx = design.global.Placement.xs.(i) in
        Array.init c.Cell.height (fun k ->
            match
              Segments.locate segments
                ~row:(assignment.rows.(i) + k)
                ~x:gx ~width:c.Cell.width
            with
            | Some seg -> Some seg.Segments.start
            | None -> None))
  in
  let cell_shift =
    Array.init n (fun i ->
        Array.fold_left
          (fun acc -> function Some s -> max acc s | None -> acc)
          0 cell_segment_start.(i))
  in
  let shift =
    Vec.init nvars (fun v -> float_of_int cell_shift.(var_cell.(v)))
  in
  let order = Order.per_row design ~rows:assignment.rows in
  let groups = ref [] in
  Array.iteri
    (fun r ids ->
      if Array.length ids > 0 then begin
        if Segments.has_blockages segments then begin
          let tbl = Hashtbl.create 4 in
          let keys = ref [] in
          Array.iter
            (fun i ->
              let k = r - assignment.rows.(i) in
              let key = cell_segment_start.(i).(k) in
              if not (Hashtbl.mem tbl key) then keys := key :: !keys;
              let prev = try Hashtbl.find tbl key with Not_found -> [] in
              Hashtbl.replace tbl key (i :: prev))
            ids;
          List.iter
            (fun key ->
              let members = List.rev (Hashtbl.find tbl key) in
              let vars =
                List.map (fun i -> first_var.(i) + (r - assignment.rows.(i))) members
              in
              groups := Array.of_list vars :: !groups)
            (List.rev !keys)
        end
        else
          groups :=
            Array.map (fun i -> first_var.(i) + (r - assignment.rows.(i))) ids
            :: !groups
      end)
    order;
  let row_vars = Array.of_list (List.rev !groups) in
  let m =
    Array.fold_left (fun acc vars -> acc + max 0 (Array.length vars - 1)) 0 row_vars
  in
  let coo = Coo.create ~rows:m ~cols:nvars in
  let b_rhs = Array.make m 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        let u = vars.(k) and v = vars.(k + 1) in
        Coo.add coo !ci u (-1.0);
        Coo.add coo !ci v 1.0;
        b_rhs.(!ci) <-
          float_of_int design.cells.(var_cell.(u)).Cell.width
          +. shift.(u) -. shift.(v);
        incr ci
      done)
    row_vars;
  let b_mat = Lazy.from_val (Coo.to_csr coo) in
  let p =
    Vec.init nvars (fun v ->
        -.(design.global.Placement.xs.(var_cell.(v)) -. shift.(v)))
  in
  let chains =
    Array.to_list first_var
    |> List.mapi (fun i fv ->
           let h = design.cells.(i).Cell.height in
           Array.init h (fun k -> fv + k))
    |> List.filter (fun chain -> Array.length chain >= 2)
  in
  let blocks = Blocks.make ~nvars chains in
  { design; assignment; nvars; first_var; var_cell; var_row; row_vars;
    b_mat; b_rhs; p; shift; blocks }

let lcp_rhs t =
  let n = t.nvars and m = num_constraints t in
  Vec.init (n + m) (fun i -> if i < n then t.p.(i) else -.t.b_rhs.(i - n))

let apply_q_tilde t ~lambda x =
  let out = Blocks.apply_ete t.blocks x in
  let result = Vec.scale lambda out in
  Vec.axpy 1.0 x result;
  result

let to_qp t ~lambda =
  let coo = Coo.create ~rows:t.nvars ~cols:t.nvars in
  for v = 0 to t.nvars - 1 do
    Coo.add coo v v 1.0
  done;
  (* lambda E^T E assembled from the explicit E matrix *)
  let e = Blocks.e_matrix t.blocks in
  for r = 0 to Csr.rows e - 1 do
    let entries = Csr.row_entries e r in
    List.iter
      (fun (j1, v1) ->
        List.iter
          (fun (j2, v2) -> Coo.add coo j1 j2 (lambda *. v1 *. v2))
          entries)
      entries
  done;
  Mclh_qp.Qp.make ~q_mat:(Coo.to_csr coo) ~p:t.p ~b_mat:(b_mat t) ~b_rhs:t.b_rhs

let packed_start t =
  (* cumulative packing directly in u-space: u_first = 0 and
     u_next = max(0, u_prev + separation) satisfies B u >= b and u >= 0
     whatever the segment shifts are *)
  let x = Array.make t.nvars 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      let k = Array.length vars in
      if k > 0 then begin
        x.(vars.(0)) <- 0.0;
        for idx = 1 to k - 1 do
          x.(vars.(idx)) <- Float.max 0.0 (x.(vars.(idx - 1)) +. t.b_rhs.(!ci));
          incr ci
        done
      end)
    t.row_vars;
  x

let cell_positions t x =
  let n = Design.num_cells t.design in
  Vec.init n (fun i ->
      let h = t.design.cells.(i).Cell.height in
      let fv = t.first_var.(i) in
      let acc = ref 0.0 in
      for k = 0 to h - 1 do
        acc := !acc +. x.(fv + k)
      done;
      !acc /. float_of_int h)

let subcell_mismatch t x = Blocks.mismatch t.blocks x

let placement_of t x =
  let xs = cell_positions t x in
  (* add back the per-cell shift (subcells share it) *)
  Array.iteri (fun i fv -> xs.(i) <- xs.(i) +. t.shift.(fv)) t.first_var;
  let ys = Array.map float_of_int t.assignment.rows in
  Placement.make ~xs ~ys
