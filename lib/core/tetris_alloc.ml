open Mclh_circuit
module Obs = Mclh_obs.Obs

type result = {
  placement : Placement.t;
  illegal_before : int;
  relocated : int;
  relocation_cost : float;
  repack_fallback : bool;
}

(* the one clamp both repair passes share: a relocation search never starts
   left of the chip or so far right the cell cannot fit. For a cell wider
   than the chip the clamp floors at 0 and the search fails cleanly instead
   of receiving a negative start. *)
let clamp_x0 ~num_sites (c : Cell.t) x = max 0 (min x (num_sites - c.Cell.width))

let run ?obs (design : Design.t) (input : Placement.t) =
  let chip = design.chip in
  let n = Design.num_cells design in
  let num_sites = chip.Chip.num_sites in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let snap = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let c = design.cells.(i) in
    let x =
      (* snap to the nearest site; out-of-right-boundary stays out and is
         caught by the legality scan below *)
      int_of_float (Float.round input.Placement.xs.(i))
    in
    let x = max 0 x in
    let row = int_of_float (Float.round input.Placement.ys.(i)) in
    let row = max 0 (min (chip.Chip.num_rows - c.Cell.height) row) in
    snap.(i) <- (x, row)
  done;
  (* acceptance scan in x order (global x as tiebreak for determinism) *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let xa, _ = snap.(a) and xb, _ = snap.(b) in
      let c = compare xa xb in
      if c <> 0 then c
      else
        let c =
          compare design.global.Placement.xs.(a) design.global.Placement.xs.(b)
        in
        if c <> 0 then c else compare a b)
    order;
  let occ = Occupancy.of_design design in
  let illegal = ref [] in
  Array.iter
    (fun i ->
      let c = design.cells.(i) in
      let x, row = snap.(i) in
      if
        x + c.Cell.width <= num_sites
        && Chip.row_admits chip c row
        && Occupancy.is_free_span occ ~row ~height:c.Cell.height ~x
             ~width:c.Cell.width
      then begin
        Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
        xs.(i) <- float_of_int x;
        ys.(i) <- float_of_int row
      end
      else illegal := i :: !illegal)
    order;
  let illegal = List.rev !illegal in
  let illegal_before = List.length illegal in
  let relocated = ref 0 and relocation_cost = ref 0.0 in
  let place_illegal i =
    let c = design.cells.(i) in
    let x0, row0 = snap.(i) in
    let x0 = clamp_x0 ~num_sites c x0 in
    match Occupancy.find_spot occ c ~row0 ~x0 with
    | Some (row, x, cost) ->
      Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
      xs.(i) <- float_of_int x;
      ys.(i) <- float_of_int row;
      incr relocated;
      relocation_cost := !relocation_cost +. cost;
      true
    | None -> false
  in
  let finish repack_fallback =
    Obs.add obs "tetris/illegal_before" illegal_before;
    Obs.add obs "tetris/relocated" !relocated;
    if repack_fallback then Obs.incr obs "tetris/repack_fallback";
    Obs.gauge obs "tetris/relocation_cost" !relocation_cost;
    { placement = Placement.make ~xs ~ys;
      illegal_before;
      relocated = !relocated;
      relocation_cost = !relocation_cost;
      repack_fallback }
  in
  if List.for_all place_illegal illegal then finish false
  else begin
    (* fragmentation at very high density: a multi-row cell found no free
       span after the singles grabbed theirs. Redo the whole allocation
       with the hardest cells (tallest, then largest) placed first so they
       get contiguous space before fragments develop. *)
    let occ = Occupancy.of_design design in
    let order2 = Array.copy order in
    Array.sort
      (fun a b ->
        let ca = design.cells.(a) and cb = design.cells.(b) in
        let c = compare cb.Cell.height ca.Cell.height in
        if c <> 0 then c
        else
          let c = compare (Cell.area cb) (Cell.area ca) in
          if c <> 0 then c
          else
            let xa, _ = snap.(a) and xb, _ = snap.(b) in
            compare (xa, a) (xb, b))
      order2;
    relocated := 0;
    relocation_cost := 0.0;
    Array.iter
      (fun i ->
        let c = design.cells.(i) in
        let x0, row0 = snap.(i) in
        let x0 = clamp_x0 ~num_sites c x0 in
        match Occupancy.find_spot occ c ~row0 ~x0 with
        | Some (row, x, cost) ->
          Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
          xs.(i) <- float_of_int x;
          ys.(i) <- float_of_int row;
          incr relocated;
          relocation_cost := !relocation_cost +. cost
        | None ->
          failwith
            (Printf.sprintf
               "Tetris_alloc.run: no free span for cell %d even after the \
                area-ordered repack (design beyond capacity?)"
               i))
      order2;
    finish true
  end
