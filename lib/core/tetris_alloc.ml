open Mclh_circuit
module Obs = Mclh_obs.Obs

type result = {
  placement : Placement.t;
  illegal_before : int;
  relocated : int;
  relocation_cost : float;
  repack_fallback : bool;
  exact_repacks : int;
  unplaced : int list;
}

(* the one clamp both repair passes share: a relocation search never starts
   left of the chip or so far right the cell cannot fit. For a cell wider
   than the chip the clamp floors at 0 and the search fails cleanly instead
   of receiving a negative start. *)
let clamp_x0 ~num_sites (c : Cell.t) x = max 0 (min x (num_sites - c.Cell.width))

(* ---- exact evict-and-repack rescue -------------------------------------
   When even the area-ordered repack strands a cell, evict its nearest
   placed neighbors from a small window around the target and hand the
   window to the exact solver: the stuck cell plus the evictees are
   re-placed at provably-minimum displacement inside the freed space. *)

let rescue_band_rows = 2 (* extra rows each side of the stuck cell's span *)
let rescue_halo_sites = 24 (* extra sites each side of the stuck cell *)
let rescue_max_evict = 6
let rescue_max_nodes = 4_000

let exact_rescue ?obs (design : Design.t) occ ~pos ~snap ~xs ~ys i =
  let chip = design.chip in
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let c = design.cells.(i) in
  let x0, row0 = snap.(i) in
  let x0 = clamp_x0 ~num_sites c x0 in
  let band0 = max 0 (row0 - rescue_band_rows) in
  let band1 = min num_rows (row0 + c.Cell.height + rescue_band_rows) in
  let wx0 = max 0 (x0 - rescue_halo_sites) in
  let wx1 = min num_sites (x0 + c.Cell.width + rescue_halo_sites) in
  let n = Design.num_cells design in
  let evictable = ref [] in
  for j = 0 to n - 1 do
    match pos.(j) with
    | Some (r, x) ->
      let cj = design.cells.(j) in
      if
        r >= band0
        && r + cj.Cell.height <= band1
        && x >= wx0
        && x + cj.Cell.width <= wx1
      then evictable := j :: !evictable
    | None -> ()
  done;
  let evicted =
    let dist j = abs (snd (Option.get pos.(j)) - x0) in
    List.sort (fun a b -> compare (dist a, a) (dist b, b)) !evictable
    |> List.filteri (fun k _ -> k < rescue_max_evict)
  in
  let saved = List.map (fun j -> (j, Option.get pos.(j))) evicted in
  List.iter
    (fun (j, (r, x)) ->
      let cj = design.cells.(j) in
      Occupancy.release occ ~row:r ~height:cj.Cell.height ~x
        ~width:cj.Cell.width;
      pos.(j) <- None)
    saved;
  let restore () =
    List.iter
      (fun (j, (r, x)) ->
        let cj = design.cells.(j) in
        Occupancy.occupy occ ~row:r ~height:cj.Cell.height ~x
          ~width:cj.Cell.width;
        pos.(j) <- Some (r, x))
      saved
  in
  (* free intervals of one band row, by scanning the occupancy grid over
     the window: maximal runs of free sites *)
  let free r =
    if r < band0 || r >= band1 then []
    else begin
      let segs = ref [] and run_start = ref (-1) in
      for s = wx0 to wx1 - 1 do
        let free_site =
          Occupancy.is_free_span occ ~row:r ~height:1 ~x:s ~width:1
        in
        if free_site && !run_start < 0 then run_start := s
        else if (not free_site) && !run_start >= 0 then begin
          segs := (!run_start, s) :: !segs;
          run_start := -1
        end
      done;
      if !run_start >= 0 then segs := (!run_start, wx1) :: !segs;
      List.rev !segs
    end
  in
  let spec_of j =
    let cj = design.cells.(j) in
    let rows =
      List.filter
        (fun r -> Chip.row_admits chip cj r)
        (List.init (max 0 (band1 - band0 - cj.Cell.height + 1)) (fun k ->
             band0 + k))
    in
    let sx, srow = snap.(j) in
    { Mclh_audit.Exact.id = j;
      width = cj.Cell.width;
      height = cj.Cell.height;
      rows = Array.of_list rows;
      target_x = float_of_int (clamp_x0 ~num_sites cj sx);
      target_y = float_of_int srow }
  in
  let spec = Array.of_list (List.map spec_of (i :: evicted)) in
  if Array.exists (fun (s : Mclh_audit.Exact.cell) -> Array.length s.rows = 0) spec
  then begin
    restore ();
    false
  end
  else begin
    match
      Mclh_audit.Exact.solve ~max_nodes:rescue_max_nodes
        ~row_height:chip.Chip.row_height ~free spec
    with
    | Mclh_audit.Exact.Optimal sol | Mclh_audit.Exact.Feasible sol ->
      let ok = ref true in
      Array.iteri
        (fun k (s : Mclh_audit.Exact.cell) ->
          if !ok then begin
            let r = sol.Mclh_audit.Exact.rows.(k)
            and x = sol.Mclh_audit.Exact.xs.(k) in
            let cj = design.cells.(s.Mclh_audit.Exact.id) in
            if
              Occupancy.is_free_span occ ~row:r ~height:cj.Cell.height ~x
                ~width:cj.Cell.width
            then begin
              Occupancy.occupy occ ~row:r ~height:cj.Cell.height ~x
                ~width:cj.Cell.width;
              pos.(s.Mclh_audit.Exact.id) <- Some (r, x)
            end
            else ok := false (* solver/grid disagreement: roll back *)
          end)
        spec;
      if !ok then begin
        Array.iter
          (fun (s : Mclh_audit.Exact.cell) ->
            let j = s.Mclh_audit.Exact.id in
            match pos.(j) with
            | Some (r, x) ->
              xs.(j) <- float_of_int x;
              ys.(j) <- float_of_int r
            | None -> ())
          spec;
        Obs.incr obs "tetris/exact_repacks";
        true
      end
      else begin
        (* roll back any partial occupation, then the evictions *)
        Array.iter
          (fun (s : Mclh_audit.Exact.cell) ->
            let j = s.Mclh_audit.Exact.id in
            if j <> i then
              match pos.(j) with
              | Some (r, x) ->
                let cj = design.cells.(j) in
                Occupancy.release occ ~row:r ~height:cj.Cell.height ~x
                  ~width:cj.Cell.width;
                pos.(j) <- None
              | None -> ())
          spec;
        (match pos.(i) with
        | Some (r, x) ->
          Occupancy.release occ ~row:r ~height:c.Cell.height ~x
            ~width:c.Cell.width;
          pos.(i) <- None
        | None -> ());
        restore ();
        false
      end
    | Mclh_audit.Exact.Infeasible | Mclh_audit.Exact.Budget_exceeded _ ->
      restore ();
      false
  end

let run ?obs (design : Design.t) (input : Placement.t) =
  let chip = design.chip in
  let n = Design.num_cells design in
  let num_sites = chip.Chip.num_sites in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let snap = Array.make n (0, 0) in
  for i = 0 to n - 1 do
    let c = design.cells.(i) in
    let x =
      (* snap to the nearest site; out-of-right-boundary stays out and is
         caught by the legality scan below *)
      int_of_float (Float.round input.Placement.xs.(i))
    in
    let x = max 0 x in
    let row = int_of_float (Float.round input.Placement.ys.(i)) in
    let row = max 0 (min (chip.Chip.num_rows - c.Cell.height) row) in
    snap.(i) <- (x, row)
  done;
  (* acceptance scan in x order (global x as tiebreak for determinism) *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let xa, _ = snap.(a) and xb, _ = snap.(b) in
      let c = compare xa xb in
      if c <> 0 then c
      else
        let c =
          compare design.global.Placement.xs.(a) design.global.Placement.xs.(b)
        in
        if c <> 0 then c else compare a b)
    order;
  let occ = Occupancy.of_design design in
  let illegal = ref [] in
  Array.iter
    (fun i ->
      let c = design.cells.(i) in
      let x, row = snap.(i) in
      if
        x + c.Cell.width <= num_sites
        && Chip.row_admits chip c row
        && Occupancy.is_free_span occ ~row ~height:c.Cell.height ~x
             ~width:c.Cell.width
      then begin
        Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
        xs.(i) <- float_of_int x;
        ys.(i) <- float_of_int row
      end
      else illegal := i :: !illegal)
    order;
  let illegal = List.rev !illegal in
  let illegal_before = List.length illegal in
  let relocated = ref 0 and relocation_cost = ref 0.0 in
  let place_illegal i =
    let c = design.cells.(i) in
    let x0, row0 = snap.(i) in
    let x0 = clamp_x0 ~num_sites c x0 in
    match Occupancy.find_spot occ c ~row0 ~x0 with
    | Some (row, x, cost) ->
      Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
      xs.(i) <- float_of_int x;
      ys.(i) <- float_of_int row;
      incr relocated;
      relocation_cost := !relocation_cost +. cost;
      true
    | None -> false
  in
  let exact_repacks = ref 0 in
  let finish repack_fallback unplaced =
    Obs.add obs "tetris/illegal_before" illegal_before;
    Obs.add obs "tetris/relocated" !relocated;
    if repack_fallback then Obs.incr obs "tetris/repack_fallback";
    Obs.gauge obs "tetris/relocation_cost" !relocation_cost;
    Obs.add obs "tetris/unplaced" (List.length unplaced);
    { placement = Placement.make ~xs ~ys;
      illegal_before;
      relocated = !relocated;
      relocation_cost = !relocation_cost;
      repack_fallback;
      exact_repacks = !exact_repacks;
      unplaced }
  in
  if List.for_all place_illegal illegal then finish false []
  else begin
    (* fragmentation at very high density: a multi-row cell found no free
       span after the singles grabbed theirs. Redo the whole allocation
       with the hardest cells (tallest, then largest) placed first so they
       get contiguous space before fragments develop. *)
    let occ = Occupancy.of_design design in
    let order2 = Array.copy order in
    Array.sort
      (fun a b ->
        let ca = design.cells.(a) and cb = design.cells.(b) in
        let c = compare cb.Cell.height ca.Cell.height in
        if c <> 0 then c
        else
          let c = compare (Cell.area cb) (Cell.area ca) in
          if c <> 0 then c
          else
            let xa, _ = snap.(a) and xb, _ = snap.(b) in
            compare (xa, a) (xb, b))
      order2;
    relocated := 0;
    relocation_cost := 0.0;
    let pos = Array.make n None in
    let unplaced = ref [] in
    Array.iter
      (fun i ->
        let c = design.cells.(i) in
        let x0, row0 = snap.(i) in
        let x0 = clamp_x0 ~num_sites c x0 in
        match Occupancy.find_spot occ c ~row0 ~x0 with
        | Some (row, x, cost) ->
          Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
          pos.(i) <- Some (row, x);
          xs.(i) <- float_of_int x;
          ys.(i) <- float_of_int row;
          incr relocated;
          relocation_cost := !relocation_cost +. cost
        | None ->
          (* the historical hard-failure point: evict-and-exact-repack
             first; only a genuinely unplaceable cell is reported *)
          if exact_rescue ?obs design occ ~pos ~snap ~xs ~ys i then begin
            incr relocated;
            incr exact_repacks;
            relocation_cost :=
              !relocation_cost
              +. Float.abs (xs.(i) -. float_of_int x0)
              +. (chip.Chip.row_height
                 *. Float.abs (ys.(i) -. float_of_int row0))
          end
          else begin
            unplaced := i :: !unplaced;
            xs.(i) <- float_of_int x0;
            ys.(i) <- float_of_int row0
          end)
      order2;
    finish true (List.rev !unplaced)
  end
