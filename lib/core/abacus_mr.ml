open Mclh_circuit

type cluster = {
  cid : int;
  mutable x : float;
  mutable e : float;  (* one unit of weight per member cell *)
  mutable q : float;  (* sum of (target - member offset) *)
  mutable members : (int * float) list;  (* cell id, offset from origin *)
  extents : (int, float * float) Hashtbl.t;  (* row -> (lo, hi) rel. to origin *)
  mutable fixed : bool;
      (* multi-row clusters freeze after their initial resolution, as in the
         published algorithm; later clusters clamp against them *)
  mutable x_min : float;  (* clamp bounds accumulated from fixed neighbors *)
  mutable x_max : float;
}

let eps = 1e-9

let extent c r = try Hashtbl.find c.extents r with Not_found -> (0.0, 0.0)

let rows_of c = Hashtbl.fold (fun r _ acc -> r :: acc) c.extents []

(* position bounds: chip walls plus any clamps against fixed obstacles *)
let clamp_x num_sites c =
  let lo = ref c.x_min and hi = ref c.x_max in
  Hashtbl.iter
    (fun _ (l, h) ->
      lo := Float.max !lo (-.l);
      hi := Float.min !hi (float_of_int num_sites -. h))
    c.extents;
  Float.min (Float.max (c.q /. c.e) !lo) !hi

(* merge the right cluster into the left one; returns the left cluster *)
let merge num_sites left right =
  let shared = List.filter (Hashtbl.mem left.extents) (rows_of right) in
  let delta =
    List.fold_left
      (fun acc r ->
        let _, l_hi = extent left r and r_lo, _ = extent right r in
        Float.max acc (l_hi -. r_lo))
      neg_infinity shared
  in
  let delta = if delta = neg_infinity then 0.0 else delta in
  List.iter
    (fun (cell, off) -> left.members <- (cell, off +. delta) :: left.members)
    right.members;
  left.q <- left.q +. right.q -. (right.e *. delta);
  left.e <- left.e +. right.e;
  left.x_min <- Float.max left.x_min (right.x_min -. delta);
  left.x_max <- Float.min left.x_max (right.x_max -. delta);
  Hashtbl.iter
    (fun r (lo, hi) ->
      let lo = lo +. delta and hi = hi +. delta in
      match Hashtbl.find_opt left.extents r with
      | None -> Hashtbl.replace left.extents r (lo, hi)
      | Some (l, h) -> Hashtbl.replace left.extents r (Float.min l lo, Float.max h hi))
    right.extents;
  left.x <- clamp_x num_sites left;
  left

let legalize (design : Design.t) =
  let chip = design.chip in
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let n = Design.num_cells design in
  (* per-row stacks, head = rightmost cluster of the row *)
  let stacks : cluster list array = Array.make num_rows [] in
  let row_of = Array.make n 0 in
  let unplaced = ref [] in
  let next_cid = ref 0 in
  let replace_in_stacks ~absorbed ~into =
    List.iter
      (fun r ->
        let keep_sub =
          List.filter_map
            (fun c ->
              if c.cid = absorbed.cid then
                if List.exists (fun c' -> c'.cid = into.cid) stacks.(r) then None
                else Some into
              else Some c)
            stacks.(r)
        in
        stacks.(r) <- keep_sub)
      (rows_of absorbed)
  in
  (* neighbors of cluster c in row r: (left, right) *)
  let neighbors r c =
    let rec go right = function
      | [] -> (None, right)
      | x :: rest ->
        if x.cid = c.cid then
          ((match rest with [] -> None | l :: _ -> Some l), right)
        else go (Some x) rest
    in
    go None stacks.(r)
  in
  let rec resolve c =
    c.x <- clamp_x num_sites c;
    let overlap_found = ref None in
    let check_row r =
      if !overlap_found = None then begin
        let left, right = neighbors r c in
        (match left with
        | Some l ->
          let _, l_hi = extent l r and c_lo, _ = extent c r in
          if l.x +. l_hi > c.x +. c_lo +. eps then
            overlap_found := Some (`Left l)
        | None -> ());
        (match right with
        | Some rt when !overlap_found = None ->
          let _, c_hi = extent c r and r_lo, _ = extent rt r in
          if c.x +. c_hi > rt.x +. r_lo +. eps then
            overlap_found := Some (`Right rt)
        | Some _ | None -> ())
      end
    in
    List.iter check_row (rows_of c);
    match !overlap_found with
    | None -> c
    | Some (`Left l) when l.fixed ->
      (* cannot push a frozen obstacle: clamp this cluster to its right *)
      let bound =
        List.fold_left
          (fun acc r ->
            if Hashtbl.mem l.extents r then begin
              let _, l_hi = extent l r and c_lo, _ = extent c r in
              Float.max acc (l.x +. l_hi -. c_lo)
            end
            else acc)
          neg_infinity (rows_of c)
      in
      c.x_min <- Float.max c.x_min bound;
      c.x <- clamp_x num_sites c;
      if c.x +. 1e-6 < bound then c (* squeezed; Tetris_alloc repairs *)
      else resolve c
    | Some (`Right rt) when rt.fixed ->
      let bound =
        List.fold_left
          (fun acc r ->
            if Hashtbl.mem rt.extents r then begin
              let _, c_hi = extent c r and r_lo, _ = extent rt r in
              Float.min acc (rt.x +. r_lo -. c_hi)
            end
            else acc)
          infinity (rows_of c)
      in
      c.x_max <- Float.min c.x_max bound;
      c.x <- clamp_x num_sites c;
      if c.x -. 1e-6 > bound then c
      else resolve c
    | Some (`Left l) ->
      let merged = merge num_sites l c in
      replace_in_stacks ~absorbed:c ~into:merged;
      resolve merged
    | Some (`Right rt) ->
      let merged = merge num_sites c rt in
      replace_in_stacks ~absorbed:rt ~into:merged;
      resolve merged
  in
  (* blockages enter the per-row stacks as immovable clusters, interleaved
     with the cells in x order so stack order stays monotone *)
  let items =
    Array.append
      (Array.init n (fun i -> `Cell i))
      (Array.mapi (fun k _ -> `Blockage k) design.blockages)
  in
  let x_of = function
    | `Cell i -> design.global.Placement.xs.(i)
    | `Blockage k -> float_of_int design.blockages.(k).Blockage.x
  in
  Array.sort
    (fun a b ->
      let c = compare (x_of a) (x_of b) in
      if c <> 0 then c else compare a b)
    items;
  let insert_blockage k =
    let b = design.blockages.(k) in
    let bx = float_of_int b.Blockage.x in
    let c =
      { cid =
          (incr next_cid;
           !next_cid);
        x = bx;
        e = 1.0;
        q = bx;
        members = [];
        extents = Hashtbl.create (max 2 b.Blockage.height);
        fixed = true;
        x_min = bx;
        x_max = bx }
    in
    for r = b.Blockage.row to b.Blockage.row + b.Blockage.height - 1 do
      Hashtbl.replace c.extents r (0.0, float_of_int b.Blockage.width);
      stacks.(r) <- c :: stacks.(r);
      (* a cluster placed earlier may reach past the blockage's left wall:
         clamp it and let it re-settle *)
      match stacks.(r) with
      | _ :: (l :: _) when not l.fixed ->
        let _, l_hi = extent l r in
        if l.x +. l_hi > bx +. eps then begin
          l.x_max <- Float.min l.x_max (bx -. l_hi);
          ignore (resolve l)
        end
      | _ -> ()
    done
  in
  let process_cell i =
      let cell = design.cells.(i) in
      let h = cell.Cell.height and w = cell.Cell.width in
      let gx = design.global.Placement.xs.(i)
      and gy = design.global.Placement.ys.(i) in
      let desired = Float.max 0.0 (Float.min gx (float_of_int (num_sites - w))) in
      (* choose the admitting span by frontier-penalty estimate *)
      let best = ref (-1) and best_cost = ref infinity in
      for r = 0 to num_rows - h do
        if Chip.row_admits chip cell r then begin
          let front = ref 0.0 in
          for k = r to r + h - 1 do
            match stacks.(k) with
            | top :: _ ->
              let _, hi = extent top k in
              front := Float.max !front (top.x +. hi)
            | [] -> ()
          done;
          let penalty = Float.max 0.0 (!front -. desired) in
          let dy = chip.Chip.row_height *. (float_of_int r -. gy) in
          let cost = (penalty *. penalty) +. (dy *. dy) in
          if cost < !best_cost then begin
            best_cost := cost;
            best := r
          end
        end
      done;
      if !best < 0 then begin
        (* no admitting row span at all: park the cell at its clamped
           global position, outside every cluster, and report it *)
        row_of.(i) <-
          max 0
            (min (num_rows - h) (int_of_float (Float.round gy)));
        unplaced := i :: !unplaced
      end
      else begin
      let r0 = !best in
      row_of.(i) <- r0;
      let c =
        { cid =
            (incr next_cid;
             !next_cid);
          x = desired;
          e = 1.0;
          q = gx;
          members = [ (i, 0.0) ];
          extents = Hashtbl.create (max 2 h);
          fixed = false;
          x_min = 0.0;
          x_max = infinity }
      in
      for k = r0 to r0 + h - 1 do
        Hashtbl.replace c.extents k (0.0, float_of_int w);
        stacks.(k) <- c :: stacks.(k)
      done;
      let settled = resolve c in
      if h > 1 then settled.fixed <- true
      end
  in
  Array.iter
    (function `Cell i -> process_cell i | `Blockage k -> insert_blockage k)
    items;
  (* collect final positions from the distinct clusters *)
  let xs = Array.make n 0.0 in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun stack ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem seen c.cid) then begin
            Hashtbl.replace seen c.cid ();
            List.iter (fun (cell, off) -> xs.(cell) <- c.x +. off) c.members
          end)
        stack)
    stacks;
  List.iter
    (fun i ->
      let c = design.cells.(i) in
      let gx = design.global.Placement.xs.(i) in
      xs.(i) <-
        Float.max 0.0 (Float.min gx (float_of_int (num_sites - c.Cell.width))))
    !unplaced;
  let ys = Array.map float_of_int row_of in
  let pl = Placement.make ~xs ~ys in
  match !unplaced with
  | [] -> Ok pl
  | cells ->
    Error
      (Unplaced.make ~stage:"abacus_mr" ~cells ~partial:pl
         ~detail:"no admitting row span for these cells")
