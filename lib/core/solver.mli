(** The problem-specific MMSIM solver (Section 3.2, Algorithm 1).

    Instantiates the generic {!Mclh_lcp.Mmsim} over the legalization KKT
    system with the splitting of Equation (16):

    M = [ (1/beta) Q~   0          ]     N = [ (1/beta - 1) Q~   B^T       ]
        [ B             (1/theta) D ]        [ 0                 (1/theta) D ]

    with [Q~ = I + lambda E^T E] and [D = tridiag(B Q~^-1 B^T)]. With
    [Omega = I], [M + Omega] is block lower triangular, so one iteration
    costs O(n + m): an arrowhead solve per cell chain for the top block and
    one Thomas solve for the bottom block. *)

open Mclh_linalg

type result = {
  x : Vec.t;  (** subcell positions (length [Model.nvars]) *)
  r : Vec.t;  (** ordering-constraint multipliers (length m) *)
  iterations : int;
  converged : bool;
  delta_inf : float;  (** final iterate change *)
  mismatch : float;  (** subcell mismatch after the solve *)
  bound : bound_check option;  (** present when the config asks for it *)
  components : int;
      (** independent LCP components found by {!Decompose} (1 when
          [config.decompose] is off) *)
  largest_dim : int;
      (** variables + constraints of the largest component ([n + m] when
          [config.decompose] is off) *)
}

and bound_check = {
  mu_max : float;  (** power-iteration estimate of the largest eigenvalue
                       of [Gamma = D^-1 B Q~^-1 B^T] *)
  theta_limit : float;  (** [2 (2 - beta) / (beta mu_max)] *)
  theta_ok : bool;  (** Theorem 2's sufficient condition satisfied *)
}

val operators : Model.t -> Config.t -> Mclh_lcp.Mmsim.operators
(** The MMSIM operators for this model/config — exposed for tests that
    drive the generic solver directly. *)

val par_chain_chunk : int ref
(** Minimum chains per domain chunk before the top-block solves of
    {!operators_inplace} fan out over the pool (when
    [config.num_domains > 1]); below [2 * !par_chain_chunk] chains the
    per-iteration barrier is not worth paying and the solve stays
    sequential. Exposed so tests can lower it and exercise the parallel
    path on small models; the parallel path is bit-identical to the
    sequential one either way. *)

val operators_inplace : Model.t -> Config.t -> Mclh_lcp.Mmsim.operators_inplace
(** Allocation-free operators over preallocated scratch buffers; the
    production path ({!solve} uses {!Mclh_lcp.Mmsim.solve_inplace} with
    these). Produces the same iterates as {!operators} (tested). *)

val rhs_q : Model.t -> Vec.t
(** The LCP right-hand side [q = (p; -b)]. *)

val solve : ?config:Config.t -> ?obs:Mclh_obs.Obs.t -> Model.t -> result
(** Runs Algorithm 1. When [config.decompose] is set (the default) the
    LCP is first split into its independent connected components
    ({!Decompose}); multi-shard decompositions solve every sub-LCP on the
    domain pool and scatter the solutions back, while single-component
    designs take the monolithic path exactly. Decomposed results agree
    with the monolithic solve up to the iteration tolerance and are
    bit-identical across [num_domains] values.

    [obs] records [solver/iterations], [solver/components],
    [solver/largest_dim] and [solver/nonconverged] counters, the
    [solver/delta_inf] / [solver/mismatch] gauges, and per-iteration
    convergence traces: [solver/delta_inf] for the monolithic path,
    [solver/compNNN/{delta_inf,iterations,dim}] per shard when
    decomposed. Traces are ring buffers keeping the last 512 iterations;
    pool jobs record into job-local traces attached after fan-in, so
    instrumentation never perturbs the bit-identical parallel results. *)

val check_bound : Model.t -> Config.t -> bound_check
(** The Theorem 2 convergence check on its own. *)

val lcp_problem : Model.t -> lambda:float -> Mclh_lcp.Lcp.problem
(** The explicit KKT LCP (Equation (15)) via {!Model.to_qp} — small
    instances / validation only. *)
