(** The problem-specific MMSIM solver (Section 3.2, Algorithm 1).

    Instantiates the generic {!Mclh_lcp.Mmsim} over the legalization KKT
    system with the splitting of Equation (16):

    M = [ (1/beta) Q~   0          ]     N = [ (1/beta - 1) Q~   B^T       ]
        [ B             (1/theta) D ]        [ 0                 (1/theta) D ]

    with [Q~ = I + lambda E^T E] and [D = tridiag(B Q~^-1 B^T)]. With
    [Omega = I], [M + Omega] is block lower triangular, so one iteration
    costs O(n + m): an arrowhead solve per cell chain for the top block and
    one Thomas solve for the bottom block. *)

open Mclh_linalg

type backend_tag =
  | Chain_free
      (** exact isotonic-projection solve of a chain-free shard
          ({!Direct.chain_free}) *)
  | Lemke  (** direct Lemke pivoting on a tiny shard *)
  | Active_set  (** dense active-set solve on a tiny shard *)
  | Accel  (** Anderson-accelerated MMSIM *)
  | Plain  (** plain MMSIM (Algorithm 1 exactly) *)

type backend_stats = {
  chain_free : int;
  lemke : int;
  active_set : int;
  accel : int;
  plain : int;
      (** shards whose {e final} backend was each tag; the five counts
          sum to the number of per-shard solves (1 on the monolithic
          path) *)
  fallbacks : int;
      (** abandoned attempts across all shards: direct solves that
          failed the KKT-residual acceptance and MMSIM rescue retries.
          [0] means every shard was solved by its first-choice
          backend. *)
}

type result = {
  x : Vec.t;  (** subcell positions (length [Model.nvars]) *)
  r : Vec.t;  (** ordering-constraint multipliers (length m) *)
  modulus : Vec.t;
      (** the final MMSIM modulus vector [s] in global numbering (length
          [n + m]: variables first, then constraints). Feeding it back as
          [?s0] warm-restarts a later solve of the same (or a slightly
          perturbed) model — the incremental engine ({!Mclh_incr}) relies
          on this. When the solve was decomposed, per-shard final [s]
          slices are scattered back just like [x] and [r]. *)
  iterations : int;  (** max over shards when decomposed *)
  iterations_total : int;
      (** sum of iterations over all shards (equals [iterations] on the
          monolithic path); the honest total-work count that incremental
          re-legalization reports savings against *)
  converged : bool;
  delta_inf : float;  (** final iterate change *)
  mismatch : float;  (** subcell mismatch after the solve *)
  bound : bound_check option;
      (** present when the config asks for it. Refers to the model MMSIM
          actually iterated on: the full model on the monolithic path;
          the largest (worst-case) shard's sub-model when the solve was
          decomposed — smaller shards can be checked individually with
          {!check_bound} on {!Decompose.extract}ed sub-models. *)
  components : int;
      (** independent LCP components found by {!Decompose} (1 when
          [config.decompose] is off) *)
  largest_dim : int;
      (** variables + constraints of the largest component ([n + m] when
          [config.decompose] is off) *)
  backends : backend_stats;
      (** which backend solved each shard and how many attempts fell
          back (see {!backend_stats}); under [Config.Plain] this is
          always [plain = shards, fallbacks = 0] *)
}

and bound_check = {
  mu_max : float;  (** power-iteration estimate of the largest eigenvalue
                       of [Gamma = D^-1 B Q~^-1 B^T] *)
  theta_limit : float;  (** [2 (2 - beta) / (beta mu_max)] *)
  theta_ok : bool;  (** Theorem 2's sufficient condition satisfied *)
}

val operators : Model.t -> Config.t -> Mclh_lcp.Mmsim.operators
(** The MMSIM operators for this model/config — exposed for tests that
    drive the generic solver directly. *)

val par_chain_chunk : int ref
(** Minimum chains per domain chunk before the top-block solves of
    {!operators_inplace} fan out over the pool (when
    [config.num_domains > 1]); below [2 * !par_chain_chunk] chains the
    per-iteration barrier is not worth paying and the solve stays
    sequential. Exposed so tests can lower it and exercise the parallel
    path on small models; the parallel path is bit-identical to the
    sequential one either way. *)

val par_shard_chunk : int ref
(** Minimum total KKT dimension ([vars + constraints]) a pool job must
    carry before the decomposed solve fans another shard chunk out; see
    {!Mclh_par.Pool.parallel_iter_weighted}. Chunking depends only on
    the (deterministic) heaviest-first shard order and the shard
    dimensions, so results are bit-identical across values — this only
    bounds dispatch overhead when a full-scale design splits into tens
    of thousands of tiny shards. Exposed so tests can force multi-chunk
    scheduling on small models. *)

val operators_inplace : Model.t -> Config.t -> Mclh_lcp.Mmsim.operators_inplace
(** Allocation-free operators over preallocated scratch buffers; the
    production path ({!solve} uses {!Mclh_lcp.Mmsim.solve_inplace} with
    these). Produces the same iterates as {!operators} (tested). *)

val rhs_q : Model.t -> Vec.t
(** The LCP right-hand side [q = (p; -b)]. *)

val solve :
  ?config:Config.t -> ?obs:Mclh_obs.Obs.t -> ?s0:Vec.t -> Model.t -> result
(** Solves the x-direction LCP. When [config.decompose] is set (the
    default) the LCP is first split into its independent connected
    components ({!Decompose}); multi-shard decompositions solve every
    sub-LCP on the domain pool and scatter the solutions back, while
    single-component designs take the monolithic path exactly. Decomposed
    results agree with the monolithic solve up to the iteration tolerance
    and are bit-identical across [num_domains] values.

    Each per-shard solve is routed by [config.backend]. [Plain] is
    exactly the paper's Algorithm 1 (one plain MMSIM run, no rescue).
    [Accel] forces Anderson-accelerated MMSIM. [Auto] (the default)
    chooses per shard: chain-free shards solve exactly by isotonic
    projection, shards with [dim <= config.direct_max_dim] pivot directly
    (Lemke, then active set), the rest run accelerated MMSIM. Direct
    solves are accepted only when their KKT residual passes
    {!Direct.acceptable}; any miss falls through to MMSIM. A
    non-converged accelerated run is rescued: retry plain, then — guided
    by the retry's convergence-trace contraction estimate
    ({!Mclh_obs.Trace.estimate_rate}) — once more with [theta] halved.
    Iterations accumulate across attempts and every abandoned attempt
    counts in [result.backends.fallbacks], so reported work and fallback
    behaviour are never hidden. Routing and rescue decisions depend only
    on shard content and config — never on timing, pool size, or whether
    [obs] is attached — preserving bit-identical parallel results.

    [s0] is an explicit MMSIM start vector in global numbering (length
    [n + m]); it overrides both the PlaceRow warm start and the paper's
    plain start. On the decomposed path each shard receives its own
    restriction of [s0]. The LCP fixed point is unique (Q~ SPD, B full
    row rank), so any [s0] converges to the same solution within the
    tolerance; a good [s0] — e.g. [result.modulus] from a previous solve
    of a nearby model — just gets there in fewer iterations.
    @raise Invalid_argument when [s0] has the wrong dimension.

    [obs] records [solver/iterations], [solver/iterations_total],
    [solver/components], [solver/largest_dim] and [solver/nonconverged]
    counters, the per-backend [solver/backend/*] shard counts and
    [solver/fallbacks], the
    [solver/delta_inf] / [solver/mismatch] gauges, and per-iteration
    convergence traces: [solver/delta_inf] for the monolithic path,
    [solver/compNNN/{delta_inf,iterations,dim}] per shard when
    decomposed. Traces are ring buffers keeping the last 512 iterations;
    pool jobs record into job-local traces attached after fan-in, so
    instrumentation never perturbs the bit-identical parallel results. *)

val check_bound : Model.t -> Config.t -> bound_check
(** The Theorem 2 convergence check on its own. *)

val lcp_problem : Model.t -> lambda:float -> Mclh_lcp.Lcp.problem
(** The explicit KKT LCP (Equation (15)) via {!Model.to_qp} — small
    instances / validation only. *)
