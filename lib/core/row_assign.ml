open Mclh_circuit

type t = { rows : int array; y_displacement : float }

let assign_cell (design : Design.t) i =
  let cell = design.cells.(i) in
  let y = design.global.Placement.ys.(i) in
  match Chip.nearest_admitting_row design.chip cell y with
  | Some row -> row
  | None ->
    (* no admitting row at all (rail-impossible cell): park on the nearest
       in-range row and let the allocation stage report the cell as
       unplaceable instead of killing the flow here *)
    max 0
      (min
         (design.chip.Chip.num_rows - cell.Cell.height)
         (int_of_float (Float.round y)))

let y_displacement (design : Design.t) rows =
  let total = ref 0.0 in
  Array.iteri
    (fun i row ->
      total :=
        !total
        +. (design.chip.Mclh_circuit.Chip.row_height
            *. Float.abs (float_of_int row -. design.global.Placement.ys.(i))))
    rows;
  !total

let assign (design : Design.t) =
  let n = Design.num_cells design in
  let rows = Array.init n (assign_cell design) in
  { rows; y_displacement = y_displacement design rows }
