(** Tetris-like allocation (final stage of Figure 4).

    Aligns every cell to the nearest placement site, accepts cells in
    left-to-right order while they stay conflict-free, and relocates each
    remaining illegal cell — overlap from finite-precision subcell
    mismatch, or out-of-right-boundary after the relaxation — to the
    nearest free span over rail-compatible rows. Table 1's "#I. Cell"
    column is [illegal_before] of this stage. *)

open Mclh_circuit

type result = {
  placement : Placement.t;  (** legal placement *)
  illegal_before : int;  (** cells the scan marked illegal *)
  relocated : int;  (** cells actually moved to a new free span *)
  relocation_cost : float;  (** total Manhattan distance of relocations,
                                relative to the input positions *)
  repack_fallback : bool;
      (** the first repair pass fragmented the free space and the whole
          allocation was redone tallest/largest-first *)
  exact_repacks : int;
      (** windows handed to the exact evict-and-repack rescue
          ({!Mclh_audit.Exact}) after even the area-ordered repack
          stranded a cell *)
  unplaced : int list;
      (** cells no strategy could place — empty on any feasible design.
          They sit at their clamped snapped positions in [placement]
          (overlapping whatever is there), so the caller can still
          measure and report; the flow surfaces them as a typed failure
          instead of an exception *)
}

val clamp_x0 : num_sites:int -> Cell.t -> int -> int
(** Clamp a relocation-search start column into [[0, num_sites - width]]
    (the single clamp both repair passes share). *)

val run : ?obs:Mclh_obs.Obs.t -> Design.t -> Placement.t -> result
(** Input: a placement whose ys are integral rows admitting each cell
    (as produced by {!Model.placement_of}); xs may be fractional, off the
    chip to the right, or overlapping. [obs] records the
    [tetris/illegal_before], [tetris/relocated], [tetris/repack_fallback],
    [tetris/exact_repacks] and [tetris/unplaced] counters and the
    [tetris/relocation_cost] gauge. Never raises: a cell that cannot be
    placed anywhere (design exceeds chip capacity) is first offered to
    the exact evict-and-repack rescue and, failing that, listed in
    [unplaced]. *)
