(** End-to-end legalization flow (Figure 4).

    global placement -> nearest-correct-row alignment -> multi-row cell
    splitting -> MMSIM on the converted LCP -> multi-row restoration ->
    Tetris-like allocation -> legal placement. *)

open Mclh_circuit

type timings = {
  assign_s : float;
  model_s : float;
  solve_s : float;
  alloc_s : float;
  total_s : float;
}

type result = {
  legal : Placement.t;
  model : Model.t;
  solver : Solver.result;
  alloc : Tetris_alloc.result;
  timings : timings;
}

val run :
  ?config:Config.t ->
  ?obs:Mclh_obs.Obs.t ->
  ?s0:Mclh_linalg.Vec.t ->
  Design.t ->
  result
(** Executes the full pipeline. The output placement is legal for every
    design whose cells fit the chip (checked by the test suite with
    {!Mclh_circuit.Legality}).

    [obs] records the [flow/{assign,model,solve,alloc,total}] stage spans,
    a [flow/nonconverged] counter when MMSIM hits [max_iter], and is
    threaded into {!Solver.solve} and {!Tetris_alloc.run}.

    [s0] is forwarded to {!Solver.solve} as the explicit MMSIM start
    vector; it must be sized for the model this flow builds (same design
    and row assignment), so it is only useful for warm re-runs of an
    unchanged design — the incremental engine handles the general case. *)

val legalize : ?config:Config.t -> Design.t -> Placement.t
(** [run] returning only the legal placement. *)

val illegal_after_mmsim : result -> int
(** Cells the Tetris-like stage had to fix — Table 1's "#I. Cell". *)
