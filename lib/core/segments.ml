open Mclh_circuit

type span = { start : int; stop : int }
type t = { per_row : span list array; any : bool }

let compute (design : Design.t) =
  let chip = design.chip in
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let blocked : (int * int) list array = Array.make num_rows [] in
  Array.iter
    (fun (b : Blockage.t) ->
      for r = b.Blockage.row to b.Blockage.row + b.Blockage.height - 1 do
        blocked.(r) <- (b.Blockage.x, b.Blockage.x + b.Blockage.width) :: blocked.(r)
      done)
    design.blockages;
  (* monomorphic int comparator: the polymorphic [compare] walks the
     runtime representation of every pair, an order of magnitude slower on
     blockage-heavy rows *)
  let cmp_interval (a1, b1) (a2, b2) =
    if a1 <> a2 then Int.compare a1 a2 else Int.compare b1 b2
  in
  let per_row =
    Array.map
      (fun intervals ->
        let sorted = List.sort cmp_interval intervals in
        (* merge overlapping blocked intervals, then take the complement;
           both passes are tail-recursive with accumulators (no [@] and no
           stack growth proportional to the blockage count) *)
        let rec merge acc = function
          | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
            merge acc ((a1, max b1 b2) :: rest)
          | iv :: rest -> merge (iv :: acc) rest
          | [] -> List.rev acc
        in
        let merged = merge [] sorted in
        let rec free acc cursor = function
          | [] ->
            List.rev
              (if cursor < num_sites then
                 { start = cursor; stop = num_sites } :: acc
               else acc)
          | (a, b) :: rest ->
            let acc =
              if cursor < a then { start = cursor; stop = a } :: acc else acc
            in
            free acc (max cursor b) rest
        in
        free [] 0 merged)
      blocked
  in
  { per_row; any = Array.length design.blockages > 0 }

let row_segments t row = t.per_row.(row)

let locate t ~row ~x ~width =
  let candidates = t.per_row.(row) in
  let distance seg =
    (* distance from the desired x to the nearest feasible left edge *)
    let lo = float_of_int seg.start
    and hi = float_of_int (max seg.start (seg.stop - width)) in
    if x < lo then lo -. x else if x > hi then x -. hi else 0.0
  in
  let fits seg = seg.stop - seg.start >= width in
  let pick pred =
    List.fold_left
      (fun best seg ->
        if not (pred seg) then best
        else
          match best with
          | Some (b, bd) when bd <= distance seg -> Some (b, bd)
          | Some _ | None -> Some (seg, distance seg))
      None candidates
  in
  match pick fits with
  | Some (seg, _) -> Some seg
  | None -> (
    match pick (fun _ -> true) with
    | Some (seg, _) -> Some seg
    | None -> None)

let has_blockages t = t.any
