(** Parameters of the legalization flow.

    Defaults follow the experimental setup of Section 5: [lambda = 1000],
    [beta = theta = 0.5]. *)

type t = {
  lambda : float;  (** equality-penalty factor of Problem (13) *)
  beta : float;  (** splitting constant of Eq. (16); in (0, 2) *)
  theta : float;  (** splitting constant of Eq. (16); positive *)
  gamma : float;  (** MMSIM modulus scaling; positive *)
  eps : float;  (** MMSIM stopping tolerance on iterate change *)
  max_iter : int;
  use_sherman_morrison : bool;
      (** use the closed-form inverse for all-double-height designs; the
          exact per-chain path is used regardless when a cell spans more
          than two rows *)
  verify_bound : bool;
      (** estimate mu_max and record whether Theorem 2's bound on theta
          holds (costs one power iteration) *)
  warm_start : bool;
      (** start Algorithm 1 from the {!Warm_start} modulus vector instead
          of the plain global-placement start; identical fixed point, far
          fewer iterations (see the ablation bench) *)
  num_domains : int;
      (** parallelism degree for the multicore layers ({!Fence}
          territories, the solver's per-chain top-block solves); [1]
          bypasses the domain pool entirely. Defaults to
          {!Mclh_par.Pool.default_num_domains}, i.e. the [MCLH_DOMAINS]
          environment override when set. Parallel and sequential runs
          produce bit-identical placements. *)
  decompose : bool;
      (** split the x-direction LCP into its independent connected
          components ({!Decompose}) and solve them as separate sub-LCPs,
          fanned out over the domain pool. The placement agrees with the
          monolithic solve up to the iteration tolerance (each component
          converges on its own schedule instead of the global one); a
          single-component design falls back to the monolithic solve
          exactly. Results are bit-identical across [num_domains] values
          either way. *)
  metrics : bool;
      (** collect the {!Mclh_obs} run metrics (stage spans, convergence
          traces, repair counters) and expose them as a JSON run report
          ({!Runner.report}, [mclh ... --metrics-out]). Defaults to the
          [MCLH_METRICS] environment gate; when off, the instrumentation
          reduces to single branches and the solver's zero-allocation
          steady state is preserved. Never affects results — only what is
          recorded about them. *)
}

val default : t

val validate : t -> (t, string) result
(** Checks the parameter ranges ([0 < beta < 2], positivity, ...). *)
