(** Parameters of the legalization flow.

    Defaults follow the experimental setup of Section 5: [lambda = 1000],
    [beta = theta = 0.5].

    This record is the {b single source} for solver tolerances and
    budgets: every backend the per-shard chooser can pick (plain MMSIM,
    accelerated MMSIM, Lemke, active set, the chain-free direct solve)
    receives its stopping tolerance and iteration budget from here — the
    module-local defaults of {!Mclh_lcp.Mmsim.default_options} ([eps =
    1e-9]), {!Mclh_lcp.Pgs.default_options} ([eps = 1e-10]) and
    {!Mclh_lcp.Lemke.solve} ([max_iter = 50 n + 200]) are for direct
    library use and tests only, never consulted on the production path,
    so the chooser always compares backends like with like. *)

type backend =
  | Auto
      (** per-shard chooser: chain-free shards solve directly (isotonic
          projection), tiny shards pivot directly (Lemke, then active
          set), the rest run accelerated MMSIM; any direct/accelerated
          failure falls back to plain MMSIM (see {!Solver.solve}) *)
  | Plain  (** force plain MMSIM everywhere (the pre-chooser behavior) *)
  | Accel
      (** force accelerated MMSIM everywhere (no direct backends); plain
          rescue still applies on divergence *)

type t = {
  lambda : float;  (** equality-penalty factor of Problem (13) *)
  beta : float;  (** splitting constant of Eq. (16); in (0, 2) *)
  theta : float;  (** splitting constant of Eq. (16); positive *)
  gamma : float;  (** MMSIM modulus scaling; positive *)
  eps : float;  (** MMSIM stopping tolerance on iterate change *)
  max_iter : int;
  backend : backend;  (** per-shard solver selection policy *)
  accel_depth : int;
      (** Anderson history depth for accelerated MMSIM ([backend = Auto]
          or [Accel]); [0] degrades Accel to the plain iteration *)
  direct_max_dim : int;
      (** shards with [vars + constraints] at most this route to the
          direct pivoting backends under [Auto]; [0] disables them *)
  direct_max_iter : int;
      (** pivot/iteration budget for the direct backends (Lemke pivots,
          active-set steps) — replaces their module-local defaults *)
  direct_tol : float;
      (** acceptance tolerance for a direct backend's KKT residual
          (relative to the solution scale); a direct solve that misses it
          "disagrees" and falls back to MMSIM *)
  use_sherman_morrison : bool;
      (** use the closed-form inverse for all-double-height designs; the
          exact per-chain path is used regardless when a cell spans more
          than two rows *)
  verify_bound : bool;
      (** estimate mu_max and record whether Theorem 2's bound on theta
          holds (costs one power iteration) *)
  warm_start : bool;
      (** start Algorithm 1 from the {!Warm_start} modulus vector instead
          of the plain global-placement start; identical fixed point, far
          fewer iterations (see the ablation bench) *)
  num_domains : int;
      (** parallelism degree for the multicore layers ({!Fence}
          territories, the solver's per-chain top-block solves); [1]
          bypasses the domain pool entirely. Defaults to
          {!Mclh_par.Pool.default_num_domains}, i.e. the [MCLH_DOMAINS]
          environment override when set. Parallel and sequential runs
          produce bit-identical placements. *)
  decompose : bool;
      (** split the x-direction LCP into its independent connected
          components ({!Decompose}) and solve them as separate sub-LCPs,
          fanned out over the domain pool. The placement agrees with the
          monolithic solve up to the iteration tolerance (each component
          converges on its own schedule instead of the global one); a
          single-component design falls back to the monolithic solve
          exactly. Results are bit-identical across [num_domains] values
          either way. *)
  metrics : bool;
      (** collect the {!Mclh_obs} run metrics (stage spans, convergence
          traces, repair counters) and expose them as a JSON run report
          ({!Runner.report}, [mclh ... --metrics-out]). Defaults to the
          [MCLH_METRICS] environment gate; when off, the instrumentation
          reduces to single branches and the solver's zero-allocation
          steady state is preserved. Never affects results — only what is
          recorded about them. *)
  progress : bool;
      (** print stage/iteration heartbeat lines to stderr during the flow
          (model build, shard fan-out, MMSIM iterations) — for watching
          long full-scale runs. Off by default; never appears in reports
          or stdout and never affects results. *)
}

val default : t

val validate : t -> (t, string) result
(** Checks the parameter ranges ([0 < beta < 2], positivity, ...). *)
