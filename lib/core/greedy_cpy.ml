open Mclh_circuit

type options = {
  row_window : int option;
  x_window : int option;
  rightward_only : bool;
}

let default = { row_window = Some 2; x_window = Some 40; rightward_only = true }
let improved = { row_window = None; x_window = None; rightward_only = false }

let attempt ~order (options : options) (design : Design.t) =
  let chip = design.chip in
  let n = Design.num_cells design in
  let occ = Occupancy.of_design design in
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  let unplaced = ref [] in
  Array.iter
    (fun i ->
      let cell = design.cells.(i) in
      let gx = design.global.Placement.xs.(i)
      and gy = design.global.Placement.ys.(i) in
      let x0 =
        max 0
          (min
             (chip.Chip.num_sites - cell.Cell.width)
             (int_of_float (Float.round gx)))
      in
      let park () =
        (* leave the cell at its clamped target without occupying: the
           caller surfaces it as a typed failure *)
        xs.(i) <- float_of_int x0;
        ys.(i) <-
          float_of_int
            (max 0
               (min
                  (chip.Chip.num_rows - cell.Cell.height)
                  (int_of_float (Float.round gy))));
        unplaced := i :: !unplaced
      in
      match Chip.nearest_admitting_row chip cell gy with
      | None -> park ()
      | Some row0 ->
        let rec search row_window x_window =
          match
            Occupancy.find_spot ?row_window ?x_window
              ~rightward_only:options.rightward_only occ cell ~row0 ~x0
          with
          | Some spot -> Some spot
          | None ->
            (* the local region failed; widen both windows (the published
               algorithm's region selection also falls back to a larger
               region) *)
            (match (row_window, x_window) with
            | None, None -> None
            | _ ->
              let widen cap = function
                | Some k when 2 * k < cap -> Some (2 * k)
                | Some _ | None -> None
              in
              search
                (widen chip.Chip.num_rows row_window)
                (widen chip.Chip.num_sites x_window))
        in
        (match search options.row_window options.x_window with
        | None -> park ()
        | Some (row, x, _cost) ->
          Occupancy.occupy occ ~row ~height:cell.Cell.height ~x
            ~width:cell.Cell.width;
          xs.(i) <- float_of_int x;
          ys.(i) <- float_of_int row))
    order;
  (Placement.make ~xs ~ys, List.rev !unplaced)

let legalize ?(options = default) (design : Design.t) =
  let n = Design.num_cells design in
  let x_order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c =
        compare design.global.Placement.xs.(a) design.global.Placement.xs.(b)
      in
      if c <> 0 then c else compare a b)
    x_order;
  match attempt ~order:x_order options design with
  | pl, [] -> Ok pl
  | _, _ ->
    (* fragmentation stranded a (multi-row) cell: robustness fallback — the
       hardest cells first, full search windows *)
    let hard_order = Array.copy x_order in
    Array.sort
      (fun a b ->
        let ca = design.cells.(a) and cb = design.cells.(b) in
        let c = compare cb.Cell.height ca.Cell.height in
        if c <> 0 then c
        else
          let c = compare (Cell.area cb) (Cell.area ca) in
          if c <> 0 then c
          else
            compare
              (design.global.Placement.xs.(a), a)
              (design.global.Placement.xs.(b), b))
      hard_order;
    (match attempt ~order:hard_order improved design with
    | pl, [] -> Ok pl
    | partial, cells ->
      Error
        (Unplaced.make ~stage:"greedy" ~cells ~partial
           ~detail:
             "no free span anywhere for these cells (design beyond \
              capacity?)"))
