open Mclh_circuit

type t = {
  stage : string;
  cells : int list;
  partial : Placement.t;
  detail : string;
}

let make ~stage ~cells ~partial ~detail =
  { stage; cells = List.sort_uniq compare cells; partial; detail }

let message t =
  let shown = List.filteri (fun i _ -> i < 16) t.cells in
  let ids = String.concat ", " (List.map string_of_int shown) in
  let more =
    let extra = List.length t.cells - List.length shown in
    if extra > 0 then Printf.sprintf " (+%d more)" extra else ""
  in
  Printf.sprintf "%s: %d unplaceable cell(s): [%s]%s — %s" t.stage
    (List.length t.cells) ids more t.detail
