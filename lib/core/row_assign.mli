(** Row assignment: each cell to its nearest correct row.

    The first stage of the flow (Figure 4). Odd-height cells go to the
    in-range row nearest their global y; even-height cells to the nearest
    row whose bottom rail matches their designed rail. Assigning nearest
    correct rows minimizes the y-direction displacement independently of x
    (Section 3), after which only the x coordinates remain variables. *)

open Mclh_circuit

type t = {
  rows : int array;  (** assigned bottom row per cell *)
  y_displacement : float;
      (** sum of [row_height * |row_i - y'_i|] over cells (site units) *)
}

val assign : Design.t -> t
(** @raise Failure if some cell admits no row at all (chip shorter than the
    cell or missing rail parity) — impossible for chips from the
    generator. *)

val assign_cell : Design.t -> int -> int
(** The row {!assign} gives cell [i]. Assignment is per-cell independent,
    so an incremental caller ({!Mclh_incr}) re-assigns only the cells an
    edit touched and keeps the rest of a previous assignment verbatim.
    @raise Failure as {!assign}. *)

val y_displacement : Design.t -> int array -> float
(** The y-displacement aggregate of an assignment (the [y_displacement]
    field {!assign} computes), for callers that assemble [rows]
    incrementally. *)
