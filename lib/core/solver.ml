open Mclh_linalg

type backend_tag = Chain_free | Lemke | Active_set | Accel | Plain

type backend_stats = {
  chain_free : int;
  lemke : int;
  active_set : int;
  accel : int;
  plain : int;
  fallbacks : int;
}

let no_backend_stats =
  { chain_free = 0; lemke = 0; active_set = 0; accel = 0; plain = 0;
    fallbacks = 0 }

let count_backend stats tag ~fallbacks =
  let stats = { stats with fallbacks = stats.fallbacks + fallbacks } in
  match tag with
  | Chain_free -> { stats with chain_free = stats.chain_free + 1 }
  | Lemke -> { stats with lemke = stats.lemke + 1 }
  | Active_set -> { stats with active_set = stats.active_set + 1 }
  | Accel -> { stats with accel = stats.accel + 1 }
  | Plain -> { stats with plain = stats.plain + 1 }

type result = {
  x : Vec.t;
  r : Vec.t;
  modulus : Vec.t;
  iterations : int;
  iterations_total : int;
  converged : bool;
  delta_inf : float;
  mismatch : float;
  bound : bound_check option;
  components : int;
  largest_dim : int;
  backends : backend_stats;
}

and bound_check = { mu_max : float; theta_limit : float; theta_ok : bool }

let rhs_q = Model.lcp_rhs

let operators (model : Model.t) (config : Config.t) =
  let n = model.nvars and m = Model.num_constraints model in
  let b = Model.b_mat model in
  let { Config.lambda; beta; theta; _ } = config in
  let d =
    Schur.tridiag
      ~path:
        (if config.use_sherman_morrison && Blocks.all_double model.blocks
         then Schur.Sherman_morrison
         else Schur.Exact_chains)
      model ~lambda
  in
  let d_over_theta = Tridiag.scale (1.0 /. theta) d in
  let bottom_solve_mat = Tridiag.add_scaled_identity d_over_theta 1.0 in
  let ete_buf = Vec.zeros n in
  let split z = (Array.sub z 0 n, Array.sub z n m) in
  let q_tilde_into x out =
    (* out := x + lambda E^T E x *)
    Blocks.apply_ete_into model.blocks x ete_buf;
    for i = 0 to n - 1 do
      out.(i) <- x.(i) +. (lambda *. ete_buf.(i))
    done
  in
  let apply_a z =
    let x, r = split z in
    let out = Vec.zeros (n + m) in
    let top = Array.sub out 0 n in
    q_tilde_into x top;
    Array.blit top 0 out 0 n;
    (* top -= B^T r *)
    let btr = Csr.mul_vec_t b r in
    for i = 0 to n - 1 do
      out.(i) <- out.(i) -. btr.(i)
    done;
    let bx = Csr.mul_vec b x in
    Array.blit bx 0 out n m;
    out
  in
  let apply_n z =
    let x, r = split z in
    let out = Vec.zeros (n + m) in
    let top = Vec.zeros n in
    q_tilde_into x top;
    let c = (1.0 /. beta) -. 1.0 in
    let btr = Csr.mul_vec_t b r in
    for i = 0 to n - 1 do
      out.(i) <- (c *. top.(i)) +. btr.(i)
    done;
    let dr = Tridiag.mul_vec d_over_theta r in
    Array.blit dr 0 out n m;
    out
  in
  let solve_m_omega rhs =
    let rhs_x = Array.sub rhs 0 n and rhs_r = Array.sub rhs n m in
    (* ((1/beta) Q~ + I) s_x = rhs_x, i.e. alpha I + coef E^T E with
       alpha = 1 + 1/beta and coef = lambda/beta *)
    let s_x =
      Blocks.solve_shifted ~alpha:(1.0 +. (1.0 /. beta))
        ~coef:(lambda /. beta) model.blocks rhs_x
    in
    (* ((1/theta) D + I) s_r = rhs_r - B s_x *)
    let bsx = Csr.mul_vec b s_x in
    for i = 0 to m - 1 do
      rhs_r.(i) <- rhs_r.(i) -. bsx.(i)
    done;
    let s_r =
      if m = 0 then [||] else Tridiag.solve bottom_solve_mat rhs_r
    in
    Array.append s_x s_r
  in
  { Mclh_lcp.Mmsim.dim = n + m;
    apply_a;
    apply_n;
    solve_m_omega;
    omega_diag = Vec.create (n + m) 1.0 }

(* Minimum chains per domain chunk for the parallel top-block path: below
   this the per-iteration pool barrier costs more than the arrowhead
   solves it spreads out. Chunks are contiguous chain ranges with
   disjoint variable footprints, so the parallel path is bit-identical
   to the sequential one (asserted by test_par.ml, which lowers this
   threshold to force the path on small models). *)
let par_chain_chunk = ref 1024

(* Minimum total KKT dimension per pool job of the decomposed fan-out:
   shards are packed (heaviest first) into chunks of at least this much
   work, so with tens of thousands of tiny shards (scale 1.0) the
   per-job closure/dispatch overhead stays proportional to the chunk
   count while big shards still get a job each. Scheduling only — the
   per-shard bits never depend on the chunking (test_par.ml lowers this
   to force many chunks on small models). *)
let par_shard_chunk = ref 2048

(* allocation-free operator set: the same mathematics as [operators], with
   every intermediate in preallocated scratch; used by the production
   solve loop *)
let operators_inplace (model : Model.t) (config : Config.t) =
  let n = model.nvars and m = Model.num_constraints model in
  let b = Model.b_mat model in
  let { Config.lambda; beta; theta; _ } = config in
  let nchains = Blocks.num_chains model.blocks in
  let chain_chunk = !par_chain_chunk in
  let pool =
    (* the tridiagonal Schur sweep is inherently sequential (Thomas
       recurrence); only the independent per-chain solves chunk out *)
    if config.num_domains > 1 && nchains >= 2 * chain_chunk then
      Some (Mclh_par.Pool.get ~num_domains:config.num_domains)
    else None
  in
  let d =
    Schur.tridiag
      ~path:
        (if config.use_sherman_morrison && Blocks.all_double model.blocks
         then Schur.Sherman_morrison
         else Schur.Exact_chains)
      model ~lambda
  in
  let d_over_theta = Tridiag.scale (1.0 /. theta) d in
  let bottom_factor =
    Tridiag.prefactor (Tridiag.add_scaled_identity d_over_theta 1.0)
  in
  let xbuf = Vec.zeros n and rbuf = Vec.zeros m in
  let ete_buf = Vec.zeros n in
  let btr = Vec.zeros n and bx = Vec.zeros m in
  let dr = Vec.zeros m in
  let split z =
    Array.blit z 0 xbuf 0 n;
    Array.blit z n rbuf 0 m
  in
  let apply_ete x dst =
    match pool with
    | None -> Blocks.apply_ete_into model.blocks x dst
    | Some p ->
      Array.fill dst 0 n 0.0;
      Mclh_par.Pool.parallel_iter_chunks ~min_chunk:chain_chunk p nchains
        ~f:(fun lo hi -> Blocks.apply_ete_chains model.blocks ~lo ~hi x dst)
  in
  let q_tilde_into x out =
    apply_ete x ete_buf;
    for i = 0 to n - 1 do
      out.(i) <- x.(i) +. (lambda *. ete_buf.(i))
    done
  in
  let apply_a_into z dst =
    split z;
    q_tilde_into xbuf dst;
    Csr.mul_vec_t_into b rbuf btr;
    for i = 0 to n - 1 do
      dst.(i) <- dst.(i) -. btr.(i)
    done;
    Csr.mul_vec_into b xbuf bx;
    Array.blit bx 0 dst n m
  in
  let c_top = (1.0 /. beta) -. 1.0 in
  let apply_n_into z dst =
    split z;
    q_tilde_into xbuf dst;
    Csr.mul_vec_t_into b rbuf btr;
    for i = 0 to n - 1 do
      dst.(i) <- (c_top *. dst.(i)) +. btr.(i)
    done;
    if m > 0 then begin
      Tridiag.mul_vec_into d_over_theta rbuf dr;
      Array.blit dr 0 dst n m
    end
  in
  let alpha = 1.0 +. (1.0 /. beta) and coef = lambda /. beta in
  let solve_shifted b dst =
    match pool with
    | None -> Blocks.solve_shifted_into ~alpha ~coef model.blocks b dst
    | Some p ->
      (* chain chunks write disjoint variable slices; the chain-free
         diagonal entries follow in a second sweep over variable ranges *)
      Mclh_par.Pool.parallel_iter_chunks ~min_chunk:chain_chunk p nchains
        ~f:(fun lo hi ->
          Blocks.solve_shifted_chains ~alpha ~coef model.blocks ~lo ~hi b dst);
      Mclh_par.Pool.parallel_iter_chunks ~min_chunk:(16 * chain_chunk) p n
        ~f:(fun lo hi ->
          Blocks.solve_shifted_singles ~alpha model.blocks ~lo ~hi b dst)
  in
  let solve_m_omega_into rhs dst =
    split rhs;
    (* top: ((1/beta) Q~ + I) s_x = rhs_x, solved per chain into dst *)
    solve_shifted xbuf xbuf;
    Array.blit xbuf 0 dst 0 n;
    (* bottom: ((1/theta) D + I) s_r = rhs_r - B s_x *)
    if m > 0 then begin
      Csr.mul_vec_into b xbuf bx;
      for i = 0 to m - 1 do
        rbuf.(i) <- rbuf.(i) -. bx.(i)
      done;
      Tridiag.solve_prefactored bottom_factor rbuf rbuf;
      Array.blit rbuf 0 dst n m
    end
  in
  { Mclh_lcp.Mmsim.dim_ip = n + m;
    apply_a_into;
    apply_n_into;
    solve_m_omega_into;
    omega_diag_ip = Vec.create (n + m) 1.0 }

let gamma_operator (model : Model.t) (config : Config.t) =
  let m = Model.num_constraints model in
  let b = Model.b_mat model in
  let d = Schur.tridiag model ~lambda:config.Config.lambda in
  fun v ->
    let t1 = Csr.mul_vec_t b v in
    let t2 =
      Blocks.solve_shifted ~alpha:1.0 ~coef:config.Config.lambda model.blocks t1
    in
    let t3 = Csr.mul_vec b t2 in
    if m = 0 then t3 else Tridiag.solve_pivoting d t3

let check_bound (model : Model.t) (config : Config.t) =
  let m = Model.num_constraints model in
  if m = 0 then { mu_max = 0.0; theta_limit = infinity; theta_ok = true }
  else begin
    let apply = gamma_operator model config in
    let est = Eig.power_iteration ~max_iter:300 ~tol:1e-7 ~dim:m apply in
    let mu_max = Float.max est.Eig.value 1e-12 in
    let beta = config.Config.beta in
    let theta_limit = 2.0 *. (2.0 -. beta) /. (beta *. mu_max) in
    { mu_max; theta_limit; theta_ok = config.Config.theta < theta_limit }
  end

module Obs = Mclh_obs.Obs
module Trace = Mclh_obs.Trace

(* convergence traces keep the tail of the iteration history; enough to
   see the terminal behaviour without unbounded memory on long runs *)
let trace_capacity = 512

(* a plain-MMSIM rescue attempt that retains (at least) this geometric
   contraction per iteration is merely out of budget; anything slower
   counts as stalled and earns the theta/2 retry *)
let rescue_stall_rate = 0.999

(* Splitting constants for the accelerated attempt. The paper's beta =
   theta = 0.5 are chosen so that plain Algorithm 1 provably contracts
   (Theorem 2 with headroom); under Anderson acceleration the binding
   concern is G-evaluation count, and (1.0, 0.4) measures 8-40% fewer
   evaluations across the bench designs (140 vs 151 on matrix_mult_1,
   314 vs 367 on des_perf_1, both at scale 0.04). The modulus fixed
   point depends only on Omega and gamma, never on the M/N split, so the
   tuned attempt converges to the same solution — and a failed attempt
   still rescues through plain MMSIM at the caller's own constants.
   Applied only when the caller left beta/theta at the paper defaults,
   so explicit sweeps and ablations steer the accelerated path too.

   The tuned splitting trades a little late-stage smoothness for speed:
   its accelerated iterate-change floor sits around 2e-12 on the bench
   designs, so a caller asking for eps at or below that would burn the
   whole budget without converging. Below [accel_eps_floor] the attempt
   keeps the caller's own splitting, where acceleration reaches 1e-12
   comfortably. *)
let accel_beta = 1.0

let accel_theta = 0.4

let accel_eps_floor = 1e-10

let accel_config (config : Config.t) =
  if
    config.beta = Config.default.Config.beta
    && config.theta = Config.default.Config.theta
    && config.eps >= accel_eps_floor
  then { config with beta = accel_beta; theta = accel_theta }
  else config

(* one solve of [model] as a single LCP; the core shared by the
   monolithic path and every decomposition shard. Routes the shard to a
   backend according to [config.backend]:

   - [Plain]: exactly the pre-chooser behavior — one plain MMSIM run, no
     rescue (the honest baseline the bench compares against);
   - [Accel]: Anderson-accelerated MMSIM, with the rescue ladder below
     on failure;
   - [Auto]: chain-free shards solve exactly by isotonic projection,
     tiny shards pivot directly (Lemke, then active set), everything
     else runs accelerated MMSIM. A direct solve is accepted only when
     its KKT residual passes [Direct.acceptable]; any miss falls through
     to the MMSIM ladder.

   MMSIM rescue ladder (Auto/Accel): if the accelerated run fails, retry
   plain with a private convergence trace; if that also fails, use the
   trace's contraction estimate to pick a final attempt — still
   contracting means the budget was short (keep acceleration, halve
   theta for a faster rate); stalled or diverging means the splitting
   violated Theorem 2's bound (halve theta, plain). Iterations
   accumulate across attempts, so reported work never hides a rescue.

   Every routing/rescue decision depends only on the shard's own content
   and the config — never on timing, the domain count, or whether obs is
   attached — so decomposed solves stay bit-identical across pool sizes.

   A caller-supplied [s0] (incremental warm restart) overrides the
   config's start-vector policy. *)
let solve_raw ?on_iter ?s0 (config : Config.t) (model : Model.t) =
  let n = model.nvars and m = Model.num_constraints model in
  let q = rhs_q model in
  let mmsim ?trace ~accel (cfg : Config.t) =
    let ops = operators_inplace model cfg in
    let options =
      { Mclh_lcp.Mmsim.gamma = cfg.gamma;
        eps = cfg.eps;
        max_iter = cfg.max_iter;
        accel }
    in
    let s0 =
      match s0 with
      | Some s0 -> s0
      | None ->
        if cfg.warm_start then Warm_start.modulus_vector model cfg ops
        else
          (* the paper's plain start: z_0 at the global-placement positions *)
          Vec.init (n + m) (fun i ->
              if i < n then cfg.gamma /. 2.0 *. -.model.p.(i) else 0.0)
    in
    let on_iter =
      match trace with
      | None -> on_iter
      | Some tr ->
        (* rescue attempts record into a private trace for the rate
           estimate and still feed the caller's hook *)
        Some
          (fun k d ->
            Trace.record tr d;
            match on_iter with None -> () | Some f -> f k d)
    in
    Mclh_lcp.Mmsim.solve_inplace ~options ?on_iter ~s0 ops ~q
  in
  let finish_mmsim (out : Mclh_lcp.Mmsim.outcome) ~iters_before ~tag ~fallbacks =
    let x = Array.sub out.Mclh_lcp.Mmsim.z 0 n in
    let r = Array.sub out.Mclh_lcp.Mmsim.z n m in
    (x, r, out.Mclh_lcp.Mmsim.s, iters_before + out.Mclh_lcp.Mmsim.iterations,
     out.Mclh_lcp.Mmsim.converged, out.Mclh_lcp.Mmsim.delta_inf, tag, fallbacks)
  in
  let mmsim_ladder ~fallbacks =
    let depth = config.accel_depth in
    let first_tag = if depth > 0 then Accel else Plain in
    let first_cfg = if depth > 0 then accel_config config else config in
    let first = mmsim ~accel:depth first_cfg in
    if first.Mclh_lcp.Mmsim.converged then
      finish_mmsim first ~iters_before:0 ~tag:first_tag ~fallbacks
    else begin
      let spent = first.Mclh_lcp.Mmsim.iterations in
      let tr = Trace.create ~capacity:trace_capacity in
      let second = mmsim ~trace:tr ~accel:0 config in
      if second.Mclh_lcp.Mmsim.converged then
        finish_mmsim second ~iters_before:spent ~tag:Plain
          ~fallbacks:(fallbacks + 1)
      else begin
        let spent = spent + second.Mclh_lcp.Mmsim.iterations in
        let contracting =
          match Trace.estimate_rate tr with
          | Some rate -> rate < rescue_stall_rate
          | None -> false
        in
        let cfg = { config with theta = config.theta /. 2.0 } in
        let accel = if contracting then depth else 0 in
        let third = mmsim ~accel cfg in
        finish_mmsim third ~iters_before:spent
          ~tag:(if accel > 0 then Accel else Plain)
          ~fallbacks:(fallbacks + 2)
      end
    end
  in
  let finish_direct (out : Direct.outcome) tag ~fallbacks =
    (out.Direct.x, out.Direct.r, out.Direct.modulus, out.Direct.iterations,
     true, 0.0, tag, fallbacks)
  in
  match config.backend with
  | Config.Plain ->
    let out = mmsim ~accel:0 config in
    finish_mmsim out ~iters_before:0 ~tag:Plain ~fallbacks:0
  | Config.Accel -> mmsim_ladder ~fallbacks:0
  | Config.Auto ->
    if Direct.chain_free_applicable model then begin
      match Direct.chain_free config model with
      | Some out when Direct.acceptable config out ->
        finish_direct out Chain_free ~fallbacks:0
      | Some _ | None -> mmsim_ladder ~fallbacks:1
    end
    else if config.direct_max_dim > 0 && n + m <= config.direct_max_dim
    then begin
      match Direct.lemke config model with
      | Some out when Direct.acceptable config out ->
        finish_direct out Lemke ~fallbacks:0
      | Some _ | None -> begin
        match Direct.active_set config model with
        | Some out when Direct.acceptable config out ->
          finish_direct out Active_set ~fallbacks:1
        | Some _ | None -> mmsim_ladder ~fallbacks:2
      end
    end
    else mmsim_ladder ~fallbacks:0

let solve ?(config = Config.default) ?obs ?s0 (model : Model.t) =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Solver.solve: " ^ msg));
  let n = model.nvars and m = Model.num_constraints model in
  (match s0 with
  | Some s0 when Vec.dim s0 <> n + m ->
    invalid_arg
      (Printf.sprintf "Solver.solve: s0 has dimension %d, expected n + m = %d"
         (Vec.dim s0) (n + m))
  | Some _ | None -> ());
  let deco = if config.decompose then Some (Decompose.analyze model) else None in
  if config.progress then begin
    match deco with
    | Some d ->
      Printf.eprintf "[mclh] solve: %d components, %d shards (largest dim %d)\n%!"
        (Decompose.num_components d) (Decompose.num_shards d)
        (Decompose.largest_dim d)
    | None -> Printf.eprintf "[mclh] solve: monolithic (dim %d)\n%!" (n + m)
  end;
  let x, r, modulus, iterations, iterations_total, converged, delta_inf, backends
      =
    match deco with
    | Some d when Array.length d.Decompose.shards > 1 ->
      (* independent sub-LCPs fan out over the domain pool; each job
         materializes its sub-model ([Decompose.extract]) and converges on
         its own schedule. Shard contents are fixed by the model alone, so
         any pool size produces the same bits. Nested entries (Fence
         territories, bench fan-out) find the pool busy and fall back to a
         sequential map with identical results. *)
      let pool = Mclh_par.Pool.get ~num_domains:config.num_domains in
      let shards = d.Decompose.shards in
      let ns = Array.length shards in
      (* dispatch heaviest shards first: chunks are handed out in order,
         so a size-descending order trims the makespan. The order affects
         scheduling only, never the per-shard bits. *)
      let order = Array.init ns Fun.id in
      Array.sort
        (fun i j ->
          let di = Decompose.shard_dim shards.(i)
          and dj = Decompose.shard_dim shards.(j) in
          if di <> dj then Int.compare dj di else Int.compare i j)
        order;
      let shard_s0 shard =
        (* restrict a caller-supplied global start vector to the shard's
           own (vars; cons) numbering *)
        match s0 with
        | None -> None
        | Some s0 ->
          let sn = Array.length shard.Decompose.vars in
          let sm = Array.length shard.Decompose.cons in
          Some
            (Vec.init (sn + sm) (fun i ->
                 if i < sn then s0.(shard.Decompose.vars.(i))
                 else s0.(n + shard.Decompose.cons.(i - sn))))
      in
      (* per-shard results land in slots indexed by shard id; solution
         slices scatter straight into the shared global vectors. Every
         write is disjoint across shards (the vars/cons sets partition),
         so concurrent jobs never touch the same entry and the fan-in
         below only folds scalars, in shard-id order. *)
      let x = Vec.zeros n and r = Vec.zeros m in
      let s_final = Vec.zeros (n + m) in
      let its = Array.make ns 0 in
      let convs = Array.make ns false in
      let dinfs = Array.make ns 0.0 in
      let tags = Array.make ns Plain in
      let fbks = Array.make ns 0 in
      let trs = Array.make ns None in
      let completed = Atomic.make 0 in
      let progress_step = max 1 (ns / 20) in
      let solve_shard i =
        let shard = shards.(i) in
        (* each pool job records into its own trace; the orchestrating
           thread attaches them after fan-in (recorders are not
           thread-safe, see {!Mclh_obs.Obs}) *)
        let tr, on_iter =
          match obs with
          | None -> (None, None)
          | Some _ ->
            let tr = Trace.create ~capacity:trace_capacity in
            (Some tr, Some (fun _k d -> Trace.record tr d))
        in
        let sx, sr, ss, it, conv, dinf, tag, fbk =
          solve_raw ?on_iter ?s0:(shard_s0 shard) config
            (Decompose.extract model shard)
        in
        Decompose.scatter_vars shard sx x;
        Decompose.scatter_cons shard sr r;
        (* the shard's final modulus slices scatter to (vars; n + cons) *)
        let sn = Array.length shard.Decompose.vars in
        Array.iteri (fun k v -> s_final.(v) <- ss.(k)) shard.Decompose.vars;
        Array.iteri
          (fun k c -> s_final.(n + c) <- ss.(sn + k))
          shard.Decompose.cons;
        its.(i) <- it;
        convs.(i) <- conv;
        dinfs.(i) <- dinf;
        tags.(i) <- tag;
        fbks.(i) <- fbk;
        trs.(i) <- tr;
        if config.progress then begin
          let k = Atomic.fetch_and_add completed 1 + 1 in
          if k mod progress_step = 0 || k = ns then
            Printf.eprintf "[mclh] solve: %d/%d shards done\n%!" k ns
        end
      in
      (* on an oversubscribed pool (more domains than cores) fan-out
         only adds GC-rendezvous stalls; same bits either way *)
      if Mclh_par.Pool.oversubscribed pool then Array.iter solve_shard order
      else
        Mclh_par.Pool.parallel_iter_weighted
          ~min_chunk_weight:!par_shard_chunk pool
          ~weight:(fun i -> Decompose.shard_dim shards.(i))
          ~f:solve_shard order;
      let iterations = ref 0
      and iterations_total = ref 0
      and converged = ref true
      and delta = ref 0.0
      and stats = ref no_backend_stats in
      for i = 0 to ns - 1 do
        (match trs.(i) with
        | None -> ()
        | Some tr ->
          let name = Printf.sprintf "solver/comp%03d" i in
          Obs.attach_trace obs (name ^ "/delta_inf") tr;
          Obs.add obs (name ^ "/iterations") its.(i);
          Obs.add obs (name ^ "/dim") (Decompose.shard_dim shards.(i)));
        stats := count_backend !stats tags.(i) ~fallbacks:fbks.(i);
        if its.(i) > !iterations then iterations := its.(i);
        iterations_total := !iterations_total + its.(i);
        if not convs.(i) then converged := false;
        (* a nan delta (divergence guard) must survive the max *)
        if Float.is_nan dinfs.(i) then delta := dinfs.(i)
        else if (not (Float.is_nan !delta)) && dinfs.(i) > !delta then
          delta := dinfs.(i)
      done;
      (x, r, s_final, !iterations, !iterations_total, !converged, !delta, !stats)
    | Some _ | None ->
      (* single component (or decomposition off): the monolithic solve is
         the exact reference path *)
      let on_iter =
        match Obs.new_trace obs "solver/delta_inf" ~capacity:trace_capacity with
        | None -> None
        | Some tr -> Some (fun _k d -> Trace.record tr d)
      in
      let on_iter =
        if not config.progress then on_iter
        else
          Some
            (fun k d ->
              (match on_iter with None -> () | Some f -> f k d);
              if k mod 500 = 0 then
                Printf.eprintf "[mclh] mmsim: iteration %d (delta %.2e)\n%!" k d)
      in
      let x, r, s, it, conv, dinf, tag, fbk =
        solve_raw ?on_iter ?s0 config model
      in
      (x, r, s, it, it, conv, dinf,
       count_backend no_backend_stats tag ~fallbacks:fbk)
  in
  let bound =
    if config.verify_bound then begin
      (* Theorem 2 is checked on the model actually handed to MMSIM: the
         full model on the monolithic path, the largest (worst-case) shard's
         sub-model when the solve was decomposed *)
      let bound_model =
        match deco with
        | Some d when Array.length d.Decompose.shards > 1 ->
          let shards = d.Decompose.shards in
          let best = ref 0 in
          Array.iteri
            (fun i s ->
              if Decompose.shard_dim s > Decompose.shard_dim shards.(!best)
              then best := i)
            shards;
          Decompose.extract model shards.(!best)
        | Some _ | None -> model
      in
      Some (check_bound bound_model config)
    end
    else None
  in
  let components =
    match deco with Some d -> Decompose.num_components d | None -> 1
  and largest_dim =
    match deco with Some d -> Decompose.largest_dim d | None -> n + m
  in
  let mismatch = Model.subcell_mismatch model x in
  Obs.add obs "solver/iterations" iterations;
  Obs.add obs "solver/iterations_total" iterations_total;
  Obs.add obs "solver/components" components;
  Obs.add obs "solver/largest_dim" largest_dim;
  if not converged then Obs.incr obs "solver/nonconverged";
  Obs.add obs "solver/backend/chain_free" backends.chain_free;
  Obs.add obs "solver/backend/lemke" backends.lemke;
  Obs.add obs "solver/backend/active_set" backends.active_set;
  Obs.add obs "solver/backend/accel" backends.accel;
  Obs.add obs "solver/backend/plain" backends.plain;
  Obs.add obs "solver/fallbacks" backends.fallbacks;
  Obs.gauge obs "solver/delta_inf" delta_inf;
  Obs.gauge obs "solver/mismatch" mismatch;
  { x;
    r;
    modulus;
    iterations;
    iterations_total;
    converged;
    delta_inf;
    mismatch;
    bound;
    components;
    largest_dim;
    backends }

let lcp_problem (model : Model.t) ~lambda =
  Mclh_qp.Kkt.to_lcp (Model.to_qp model ~lambda)
