open Mclh_circuit

let log_src = Logs.Src.create "mclh.flow" ~doc:"Legalization flow"

module Log = (val Logs.src_log log_src : Logs.LOG)

type timings = {
  assign_s : float;
  model_s : float;
  solve_s : float;
  alloc_s : float;
  total_s : float;
}

type result = {
  legal : Placement.t;
  model : Model.t;
  solver : Solver.result;
  alloc : Tetris_alloc.result;
  timings : timings;
}

(* wall clock, not [Sys.time]: processor time over-counts multicore
   stages and under-counts anything that blocks *)
let timed = Mclh_par.Clock.timed

module Obs = Mclh_obs.Obs

let run ?(config = Config.default) ?obs ?s0 design =
  let start = Mclh_par.Clock.now () in
  let heartbeat fmt =
    Format.kasprintf
      (fun s -> if config.Config.progress then Printf.eprintf "[mclh] %s\n%!" s)
      fmt
  in
  heartbeat "%s: %d cells, assigning rows" design.Design.name
    (Array.length design.Design.cells);
  let assignment, assign_s = timed (fun () -> Row_assign.assign design) in
  Obs.record_span obs "flow/assign" assign_s;
  Log.debug (fun m ->
      m "%s: rows assigned, y displacement %.1f sites (%.3fs)"
        design.Design.name assignment.Row_assign.y_displacement assign_s);
  heartbeat "rows assigned (%.2fs), building model" assign_s;
  let model, model_s =
    timed (fun () ->
        Model.build ~num_domains:config.Config.num_domains design assignment)
  in
  Obs.record_span obs "flow/model" model_s;
  Log.debug (fun m ->
      m "model: %d vars, %d constraints, %d chains (%.3fs)" model.Model.nvars
        (Model.num_constraints model)
        (Mclh_linalg.Blocks.num_chains model.Model.blocks)
        model_s);
  heartbeat "model built: %d vars, %d constraints (%.2fs), solving" model.Model.nvars
    (Model.num_constraints model) model_s;
  let solver, solve_s =
    timed (fun () -> Solver.solve ~config ?obs ?s0 model)
  in
  Obs.record_span obs "flow/solve" solve_s;
  Log.debug (fun m ->
      m "mmsim: %d iterations, converged %b, mismatch %.2e, %d components \
         (largest %d) (%.3fs)"
        solver.Solver.iterations solver.Solver.converged solver.Solver.mismatch
        solver.Solver.components solver.Solver.largest_dim solve_s);
  if not solver.Solver.converged then begin
    Obs.incr obs "flow/nonconverged";
    Log.warn (fun m ->
        m "%s: MMSIM hit max_iter %d (delta %.2e); the Tetris stage will \
           repair residual overlaps"
          design.Design.name config.Config.max_iter solver.Solver.delta_inf)
  end;
  heartbeat "solve done: %d iterations, converged %b (%.2fs), allocating"
    solver.Solver.iterations solver.Solver.converged solve_s;
  let relaxed = Model.placement_of model solver.Solver.x in
  let alloc, alloc_s =
    timed (fun () -> Tetris_alloc.run ?obs design relaxed)
  in
  Obs.record_span obs "flow/alloc" alloc_s;
  Log.debug (fun m ->
      m "tetris: %d illegal, %d relocated (%.3fs)"
        alloc.Tetris_alloc.illegal_before alloc.Tetris_alloc.relocated alloc_s);
  (match alloc.Tetris_alloc.unplaced with
  | [] -> ()
  | unplaced ->
    Obs.add obs "flow/unplaced" (List.length unplaced);
    Log.warn (fun m ->
        m "%s: %d cell(s) could not be placed anywhere (design beyond \
           capacity?); the placement is partial"
          design.Design.name (List.length unplaced)));
  let total_s = Mclh_par.Clock.now () -. start in
  heartbeat "done: %d relocated, %.2fs total" alloc.Tetris_alloc.relocated total_s;
  Obs.record_span obs "flow/total" total_s;
  { legal = alloc.Tetris_alloc.placement;
    model;
    solver;
    alloc;
    timings = { assign_s; model_s; solve_s; alloc_s; total_s } }

let legalize ?config design = (run ?config design).legal

let illegal_after_mmsim result = result.alloc.Tetris_alloc.illegal_before
