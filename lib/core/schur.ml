open Mclh_linalg

type path = Sherman_morrison | Exact_chains

(* assoc-list dot product with a two-nonzero B row *)
let dot_with_row entries (l, j) =
  let look v =
    List.fold_left
      (fun acc (v', value) -> if v' = v then acc +. value else acc)
      0.0 entries
  in
  look j -. look l

let b_row_pair (model : Model.t) i =
  match Csr.row_entries (Model.b_mat model) i with
  | [ (l, -1.0); (j, 1.0) ] -> (l, j)
  | [ (j, 1.0); (l, -1.0) ] -> (l, j)
  | _ -> invalid_arg "Schur: constraint row is not a (-1, +1) pair"

(* column c_i = Q~^-1 B_i^T for the exact path *)
let column_exact (model : Model.t) ~lambda i =
  let l, j = b_row_pair model i in
  Blocks.solve_shifted_sparse ~alpha:1.0 ~coef:lambda model.blocks
    [ (l, -1.0); (j, 1.0) ]

(* column via the closed form, valid when every chain is a pair:
   c_i = B_i^T - mu E^T E B_i^T with mu = lambda/(2 lambda + 1) *)
let column_sm (model : Model.t) ~partner ~lambda i =
  let mu = lambda /. ((2.0 *. lambda) +. 1.0) in
  let l, j = b_row_pair model i in
  let contrib acc (v, coeff) =
    let acc = (v, coeff) :: acc in
    match partner.(v) with
    | -1 -> acc
    | p -> (v, -.mu *. coeff) :: (p, mu *. coeff) :: acc
  in
  List.fold_left contrib [] [ (l, -1.0); (j, 1.0) ]

let partner_array (model : Model.t) =
  let partner = Array.make model.nvars (-1) in
  for c = 0 to Blocks.num_chains model.blocks - 1 do
    let vars = Blocks.chain_vars model.blocks c in
    if Array.length vars <> 2 then
      invalid_arg
        "Schur: Sherman-Morrison path requires all chains of length two";
    partner.(vars.(0)) <- vars.(1);
    partner.(vars.(1)) <- vars.(0)
  done;
  partner

let tridiag ?path (model : Model.t) ~lambda =
  if lambda <= 0.0 then invalid_arg "Schur.tridiag: lambda must be positive";
  let m = Model.num_constraints model in
  let path =
    match path with
    | Some p -> p
    | None ->
      if Blocks.all_double model.blocks then Sherman_morrison else Exact_chains
  in
  let column =
    match path with
    | Exact_chains -> column_exact model ~lambda
    | Sherman_morrison ->
      let partner = partner_array model in
      column_sm model ~partner ~lambda
  in
  let diag = Array.make m 0.0 in
  let off = Array.make (max 0 (m - 1)) 0.0 in
  for i = 0 to m - 1 do
    let c = column i in
    diag.(i) <- dot_with_row c (b_row_pair model i);
    if i + 1 < m then off.(i) <- dot_with_row c (b_row_pair model (i + 1))
  done;
  Tridiag.of_symmetric ~diag ~off

let dense (model : Model.t) ~lambda =
  let m = Model.num_constraints model in
  let out = Dense.create m m in
  for i = 0 to m - 1 do
    let c = column_exact model ~lambda i in
    for k = 0 to m - 1 do
      Dense.set out k i (dot_with_row c (b_row_pair model k))
    done
  done;
  out
