open Mclh_circuit

type stats = {
  territories : int;
  per_territory : (string * int * int) list;
}

(* sub-design for one territory: the listed cells (renumbered, region
   membership erased — the territory's geometry is enforced by blockages)
   with the given extra obstacles *)
let sub_design (design : Design.t) ~label ~cell_ids ~extra_blockages =
  let cells =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let c = design.Design.cells.(old_id) in
           Cell.make ~id:new_id ~name:c.Cell.name ~width:c.Cell.width
             ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail ())
         cell_ids)
  in
  let xs =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.xs.(i)) cell_ids)
  in
  let ys =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.ys.(i)) cell_ids)
  in
  let blockages =
    Array.append design.Design.blockages (Array.of_list extra_blockages)
  in
  Design.make ~blockages
    ~name:(design.Design.name ^ "/" ^ label)
    ~chip:design.Design.chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let legalize ?(config = Config.default) (design : Design.t) =
  let num_regions = Array.length design.Design.regions in
  if num_regions = 0 then begin
    let result = Flow.run ~config design in
    ( result.Flow.legal,
      { territories = 1;
        per_territory =
          [ (design.Design.name, Design.num_cells design,
             result.Flow.solver.Solver.iterations) ] } )
  end
  else begin
    let n = Design.num_cells design in
    let classes = Array.make (num_regions + 1) [] in
    for i = n - 1 downto 0 do
      let k =
        match design.Design.cells.(i).Cell.region with
        | Some r -> r
        | None -> num_regions
      in
      classes.(k) <- i :: classes.(k)
    done;
    (* one job per non-empty territory, in class order; the sub-problems
       are independent (disjoint cell sets, disjoint geometry), so they
       fan out over the domain pool. Results come back in job order and
       every job writes a disjoint set of cell indices, so the merged
       placement is identical to a sequential run. *)
    let jobs =
      Array.of_list
        (List.filter_map
           (fun k -> if classes.(k) = [] then None else Some k)
           (List.init (num_regions + 1) Fun.id))
    in
    let run_territory k =
      let cell_ids = classes.(k) in
      let label, extra =
        if k < num_regions then begin
          let reg = design.Design.regions.(k) in
          ( reg.Region.name,
            Region.complement_blockages reg design.Design.chip )
        end
        else
          ( "default",
            Array.to_list design.Design.regions
            |> List.concat_map Region.to_blockages )
      in
      let sub = sub_design design ~label ~cell_ids ~extra_blockages:extra in
      let result = Flow.run ~config sub in
      (label, cell_ids, result)
    in
    let results =
      if config.Config.num_domains <= 1 then Array.map run_territory jobs
      else
        Mclh_par.Pool.parallel_map
          (Mclh_par.Pool.get ~num_domains:config.Config.num_domains)
          run_territory jobs
    in
    let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
    let per_territory =
      Array.to_list results
      |> List.map (fun (label, cell_ids, result) ->
             List.iteri
               (fun new_id old_id ->
                 xs.(old_id) <- result.Flow.legal.Placement.xs.(new_id);
                 ys.(old_id) <- result.Flow.legal.Placement.ys.(new_id))
               cell_ids;
             ( label,
               List.length cell_ids,
               result.Flow.solver.Solver.iterations ))
    in
    ( Placement.make ~xs ~ys,
      { territories = Array.length results; per_territory } )
  end
