open Mclh_circuit
module Obs = Mclh_obs.Obs

type territory_stats = {
  name : string;
  cells : int;
  iterations : int;
  converged : bool;
  delta_inf : float;
  mismatch : float;
  components : int;
  illegal_before : int;
  relocated : int;
}

type stats = {
  territories : int;
  per_territory : territory_stats list;
}

let territory_of_flow name cells (result : Flow.result) =
  { name;
    cells;
    iterations = result.Flow.solver.Solver.iterations;
    converged = result.Flow.solver.Solver.converged;
    delta_inf = result.Flow.solver.Solver.delta_inf;
    mismatch = result.Flow.solver.Solver.mismatch;
    components = result.Flow.solver.Solver.components;
    illegal_before = result.Flow.alloc.Tetris_alloc.illegal_before;
    relocated = result.Flow.alloc.Tetris_alloc.relocated }

(* ---- aggregation over territories (what a fenced run reports) ---- *)

let max_iterations stats =
  List.fold_left (fun acc t -> max acc t.iterations) 0 stats.per_territory

let all_converged stats =
  List.for_all (fun t -> t.converged) stats.per_territory

let max_delta_inf stats =
  List.fold_left
    (fun acc t ->
      (* a nan delta (divergence guard) must survive the max *)
      if Float.is_nan t.delta_inf || Float.is_nan acc then Float.nan
      else Float.max acc t.delta_inf)
    0.0 stats.per_territory

let max_mismatch stats =
  List.fold_left (fun acc t -> Float.max acc t.mismatch) 0.0 stats.per_territory

let total_illegal stats =
  List.fold_left (fun acc t -> acc + t.illegal_before) 0 stats.per_territory

let total_relocated stats =
  List.fold_left (fun acc t -> acc + t.relocated) 0 stats.per_territory

(* sub-design for one territory: the listed cells (renumbered, region
   membership erased — the territory's geometry is enforced by blockages)
   with the given extra obstacles *)
let sub_design (design : Design.t) ~label ~cell_ids ~extra_blockages =
  let cells =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let c = design.Design.cells.(old_id) in
           Cell.make ~id:new_id ~name:c.Cell.name ~width:c.Cell.width
             ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail ())
         cell_ids)
  in
  let xs =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.xs.(i)) cell_ids)
  in
  let ys =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.ys.(i)) cell_ids)
  in
  let blockages =
    Array.append design.Design.blockages (Array.of_list extra_blockages)
  in
  Design.make ~blockages
    ~name:(design.Design.name ^ "/" ^ label)
    ~chip:design.Design.chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let record_aggregates obs stats =
  Obs.add obs "fence/territories" stats.territories;
  Obs.add obs "fence/illegal_before" (total_illegal stats);
  Obs.add obs "fence/relocated" (total_relocated stats);
  if not (all_converged stats) then Obs.incr obs "fence/nonconverged";
  Obs.gauge obs "fence/max_mismatch" (max_mismatch stats)

let legalize ?(config = Config.default) ?obs (design : Design.t) =
  let num_regions = Array.length design.Design.regions in
  if num_regions = 0 then begin
    (* no fences: a single territory, recorded straight into [obs] *)
    let result = Flow.run ~config ?obs design in
    let stats =
      { territories = 1;
        per_territory =
          [ territory_of_flow design.Design.name (Design.num_cells design)
              result ] }
    in
    record_aggregates obs stats;
    (result.Flow.legal, stats)
  end
  else begin
    let n = Design.num_cells design in
    let classes = Array.make (num_regions + 1) [] in
    for i = n - 1 downto 0 do
      let k =
        match design.Design.cells.(i).Cell.region with
        | Some r -> r
        | None -> num_regions
      in
      classes.(k) <- i :: classes.(k)
    done;
    (* one job per non-empty territory, in class order; the sub-problems
       are independent (disjoint cell sets, disjoint geometry), so they
       fan out over the domain pool. Results come back in job order and
       every job writes a disjoint set of cell indices, so the merged
       placement is identical to a sequential run. *)
    let jobs =
      Array.of_list
        (List.filter_map
           (fun k -> if classes.(k) = [] then None else Some k)
           (List.init (num_regions + 1) Fun.id))
    in
    let run_territory k =
      let cell_ids = classes.(k) in
      let label, extra =
        if k < num_regions then begin
          let reg = design.Design.regions.(k) in
          ( reg.Region.name,
            Region.complement_blockages reg design.Design.chip )
        end
        else
          ( "default",
            Array.to_list design.Design.regions
            |> List.concat_map Region.to_blockages )
      in
      let sub = sub_design design ~label ~cell_ids ~extra_blockages:extra in
      (* each pool job records into its own recorder; the orchestrating
         thread attaches them as sub-reports after fan-in (recorders are
         not thread-safe) *)
      let territory_obs =
        match obs with None -> None | Some _ -> Some (Obs.create ())
      in
      let result = Flow.run ~config ?obs:territory_obs sub in
      (label, cell_ids, result, territory_obs)
    in
    let results =
      if config.Config.num_domains <= 1 then Array.map run_territory jobs
      else
        Mclh_par.Pool.parallel_map
          (Mclh_par.Pool.get ~num_domains:config.Config.num_domains)
          run_territory jobs
    in
    let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
    let per_territory =
      Array.to_list results
      |> List.map (fun (label, cell_ids, result, territory_obs) ->
             List.iteri
               (fun new_id old_id ->
                 xs.(old_id) <- result.Flow.legal.Placement.xs.(new_id);
                 ys.(old_id) <- result.Flow.legal.Placement.ys.(new_id))
               cell_ids;
             (match territory_obs with
             | Some t ->
               Obs.sub obs
                 ("territory/" ^ label)
                 (Mclh_obs.Run_report.to_json t)
             | None -> ());
             territory_of_flow label (List.length cell_ids) result)
    in
    let stats = { territories = Array.length results; per_territory } in
    record_aggregates obs stats;
    (Placement.make ~xs ~ys, stats)
  end
