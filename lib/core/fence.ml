open Mclh_circuit
module Obs = Mclh_obs.Obs

type territory_stats = {
  name : string;
  cells : int;
  iterations : int;
  converged : bool;
  delta_inf : float;
  mismatch : float;
  components : int;
  illegal_before : int;
  relocated : int;
  over_subscribed : bool;
  evicted : int;
  unplaced : int list;
}

type stats = {
  territories : int;
  per_territory : territory_stats list;
}

let territory_of_flow ?(over_subscribed = false) ?(evicted = 0)
    ?(unplaced = []) name cells (result : Flow.result) =
  { name;
    cells;
    iterations = result.Flow.solver.Solver.iterations;
    converged = result.Flow.solver.Solver.converged;
    delta_inf = result.Flow.solver.Solver.delta_inf;
    mismatch = result.Flow.solver.Solver.mismatch;
    components = result.Flow.solver.Solver.components;
    illegal_before = result.Flow.alloc.Tetris_alloc.illegal_before;
    relocated = result.Flow.alloc.Tetris_alloc.relocated;
    over_subscribed;
    evicted;
    unplaced }

(* ---- aggregation over territories (what a fenced run reports) ---- *)

let max_iterations stats =
  List.fold_left (fun acc t -> max acc t.iterations) 0 stats.per_territory

let all_converged stats =
  List.for_all (fun t -> t.converged) stats.per_territory

let max_delta_inf stats =
  List.fold_left
    (fun acc t ->
      (* a nan delta (divergence guard) must survive the max *)
      if Float.is_nan t.delta_inf || Float.is_nan acc then Float.nan
      else Float.max acc t.delta_inf)
    0.0 stats.per_territory

let max_mismatch stats =
  List.fold_left (fun acc t -> Float.max acc t.mismatch) 0.0 stats.per_territory

let total_illegal stats =
  List.fold_left (fun acc t -> acc + t.illegal_before) 0 stats.per_territory

let total_relocated stats =
  List.fold_left (fun acc t -> acc + t.relocated) 0 stats.per_territory

let total_evicted stats =
  List.fold_left (fun acc t -> acc + t.evicted) 0 stats.per_territory

let over_subscribed_territories stats =
  List.filter (fun t -> t.over_subscribed) stats.per_territory
  |> List.map (fun t -> t.name)

let total_unplaced stats =
  List.concat_map (fun t -> t.unplaced) stats.per_territory
  |> List.sort_uniq compare

(* sub-design for one territory: the listed cells (renumbered, region
   membership erased — the territory's geometry is enforced by blockages)
   with the given extra obstacles *)
let sub_design (design : Design.t) ~label ~cell_ids ~extra_blockages =
  let cells =
    Array.of_list
      (List.mapi
         (fun new_id old_id ->
           let c = design.Design.cells.(old_id) in
           Cell.make ~id:new_id ~name:c.Cell.name ~width:c.Cell.width
             ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail ())
         cell_ids)
  in
  let xs =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.xs.(i)) cell_ids)
  in
  let ys =
    Array.of_list (List.map (fun i -> design.Design.global.Placement.ys.(i)) cell_ids)
  in
  let blockages =
    Array.append design.Design.blockages (Array.of_list extra_blockages)
  in
  Design.make ~blockages
    ~name:(design.Design.name ^ "/" ^ label)
    ~chip:design.Design.chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let record_aggregates obs stats =
  Obs.add obs "fence/territories" stats.territories;
  Obs.add obs "fence/illegal_before" (total_illegal stats);
  Obs.add obs "fence/relocated" (total_relocated stats);
  Obs.add obs "fence/evicted" (total_evicted stats);
  Obs.add obs "fence/over_subscribed"
    (List.length (over_subscribed_territories stats));
  Obs.add obs "fence/unplaced" (List.length (total_unplaced stats));
  if not (all_converged stats) then Obs.incr obs "fence/nonconverged";
  Obs.gauge obs "fence/max_mismatch" (max_mismatch stats)

(* ---- over-subscription: capacity of a region vs its members ---------- *)

(* usable area of region k: the union of its rectangles minus any overlap
   with blockages (regions never overlap each other) *)
let region_capacity (design : Design.t) k =
  let reg = design.Design.regions.(k) in
  let blocked =
    List.fold_left
      (fun acc (r : Region.rect) ->
        Array.fold_left
          (fun acc (b : Blockage.t) ->
            let rows =
              min (r.Region.row + r.Region.height)
                (b.Blockage.row + b.Blockage.height)
              - max r.Region.row b.Blockage.row
            in
            let cols =
              min (r.Region.x + r.Region.width) (b.Blockage.x + b.Blockage.width)
              - max r.Region.x b.Blockage.x
            in
            if rows > 0 && cols > 0 then acc + (rows * cols) else acc)
          acc design.Design.blockages)
      0 reg.Region.rects
  in
  Region.area reg - blocked

(* how far a member's global position sits from its region: 0 when the
   cell's span already touches the region, else the Manhattan distance of
   the cell center to the nearest rectangle — the eviction policy sends
   the cells that wandered farthest back to the default territory *)
let region_distance (design : Design.t) k i =
  let c = design.Design.cells.(i) in
  let gx = design.Design.global.Placement.xs.(i)
  and gy = design.Design.global.Placement.ys.(i) in
  let reg = design.Design.regions.(k) in
  let row = int_of_float (Float.round gy) in
  if
    Region.intersects_span reg ~row ~height:c.Cell.height ~x:gx
      ~width:c.Cell.width
  then 0.0
  else begin
    let cx = gx +. (float_of_int c.Cell.width /. 2.0) in
    let cy = gy +. (float_of_int c.Cell.height /. 2.0) in
    List.fold_left
      (fun acc (r : Region.rect) ->
        let dx =
          Float.max 0.0
            (Float.max
               (float_of_int r.Region.x -. cx)
               (cx -. float_of_int (r.Region.x + r.Region.width)))
        in
        let dy =
          Float.max 0.0
            (Float.max
               (float_of_int r.Region.row -. cy)
               (cy -. float_of_int (r.Region.row + r.Region.height)))
        in
        Float.min acc (dx +. dy))
      infinity reg.Region.rects
  end

(* evict members of over-subscribed regions to the default class until
   each region's member area fits its usable capacity; returns the
   (possibly updated) classes plus per-region (over_subscribed, evicted) *)
let evict_overflow (design : Design.t) classes num_regions =
  let over = Array.make (num_regions + 1) false in
  let evicted_count = Array.make (num_regions + 1) 0 in
  for k = 0 to num_regions - 1 do
    let members = classes.(k) in
    let area =
      List.fold_left
        (fun acc i -> acc + Cell.area design.Design.cells.(i))
        0 members
    in
    let cap = region_capacity design k in
    if area > cap then begin
      over.(k) <- true;
      (* farthest-wandered members first, largest first on ties *)
      let ranked =
        List.sort
          (fun a b ->
            let da = region_distance design k a
            and db = region_distance design k b in
            let c = compare db da in
            if c <> 0 then c
            else
              let c =
                compare
                  (Cell.area design.Design.cells.(b))
                  (Cell.area design.Design.cells.(a))
              in
              if c <> 0 then c else compare a b)
          members
      in
      let remaining = ref area and keep = ref [] and gone = ref [] in
      List.iter
        (fun i ->
          if !remaining > cap then begin
            remaining := !remaining - Cell.area design.Design.cells.(i);
            gone := i :: !gone
          end
          else keep := i :: !keep)
        ranked;
      evicted_count.(k) <- List.length !gone;
      classes.(k) <- List.sort compare !keep;
      classes.(num_regions) <-
        List.sort compare (!gone @ classes.(num_regions))
    end
  done;
  (over, evicted_count)

let legalize ?(config = Config.default) ?obs (design : Design.t) =
  let num_regions = Array.length design.Design.regions in
  if num_regions = 0 then begin
    (* no fences: a single territory, recorded straight into [obs] *)
    let result = Flow.run ~config ?obs design in
    let stats =
      { territories = 1;
        per_territory =
          [ territory_of_flow
              ~unplaced:result.Flow.alloc.Tetris_alloc.unplaced
              design.Design.name (Design.num_cells design)
              result ] }
    in
    record_aggregates obs stats;
    (result.Flow.legal, stats)
  end
  else begin
    let n = Design.num_cells design in
    let classes = Array.make (num_regions + 1) [] in
    for i = n - 1 downto 0 do
      let k =
        match design.Design.cells.(i).Cell.region with
        | Some r -> r
        | None -> num_regions
      in
      classes.(k) <- i :: classes.(k)
    done;
    (* a region too small for its members would previously crash inside
       its territory's allocation; detect it up front and evict the
       overflow to the default territory (graceful degradation: the
       evictees end up legally placed but outside their fence, which the
       final legality check reports as exit 2 rather than a crash) *)
    let over, evicted_count = evict_overflow design classes num_regions in
    (* one job per non-empty territory, in class order; the sub-problems
       are independent (disjoint cell sets, disjoint geometry), so they
       fan out over the domain pool. Results come back in job order and
       every job writes a disjoint set of cell indices, so the merged
       placement is identical to a sequential run. *)
    let jobs =
      Array.of_list
        (List.filter_map
           (fun k -> if classes.(k) = [] then None else Some k)
           (List.init (num_regions + 1) Fun.id))
    in
    let run_territory k =
      let cell_ids = classes.(k) in
      let label, extra =
        if k < num_regions then begin
          let reg = design.Design.regions.(k) in
          ( reg.Region.name,
            Region.complement_blockages reg design.Design.chip )
        end
        else
          ( "default",
            Array.to_list design.Design.regions
            |> List.concat_map Region.to_blockages )
      in
      let sub = sub_design design ~label ~cell_ids ~extra_blockages:extra in
      (* each pool job records into its own recorder; the orchestrating
         thread attaches them as sub-reports after fan-in (recorders are
         not thread-safe) *)
      let territory_obs =
        match obs with None -> None | Some _ -> Some (Obs.create ())
      in
      let result = Flow.run ~config ?obs:territory_obs sub in
      (k, label, cell_ids, result, territory_obs)
    in
    let results =
      if config.Config.num_domains <= 1 then Array.map run_territory jobs
      else
        Mclh_par.Pool.parallel_map
          (Mclh_par.Pool.get ~num_domains:config.Config.num_domains)
          run_territory jobs
    in
    let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
    let per_territory =
      Array.to_list results
      |> List.map (fun (k, label, cell_ids, result, territory_obs) ->
             List.iteri
               (fun new_id old_id ->
                 xs.(old_id) <- result.Flow.legal.Placement.xs.(new_id);
                 ys.(old_id) <- result.Flow.legal.Placement.ys.(new_id))
               cell_ids;
             (match territory_obs with
             | Some t ->
               Obs.sub obs
                 ("territory/" ^ label)
                 (Mclh_obs.Run_report.to_json t)
             | None -> ());
             (* map the territory's unplaced sub-ids back to design ids *)
             let ids = Array.of_list cell_ids in
             let unplaced =
               List.map
                 (fun sub_id -> ids.(sub_id))
                 result.Flow.alloc.Tetris_alloc.unplaced
             in
             territory_of_flow ~over_subscribed:over.(k)
               ~evicted:evicted_count.(k) ~unplaced label
               (List.length cell_ids) result)
    in
    let stats = { territories = Array.length results; per_territory } in
    record_aggregates obs stats;
    (Placement.make ~xs ~ys, stats)
  end
