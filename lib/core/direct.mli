(** Direct (non-iterative / pivoting) backends for the per-shard solver
    chooser ({!Solver}).

    Each backend solves the same Problem (13) sub-QP a decomposition
    shard represents and returns the MMSIM-equivalent unknowns: primal
    positions [x], ordering multipliers [r], and a modulus vector [s]
    reconstructed as [(gamma/2)(z - w)] — feeding it back as [?s0] lands
    a later MMSIM warm restart exactly on the fixed point, so the
    incremental solution cache never notices which backend produced an
    entry.

    Safety contract: every outcome carries its own KKT residual
    ({!Mclh_qp.Kkt.kkt_residual}); the dispatcher accepts a direct solve
    only when {!acceptable} holds and otherwise falls back to MMSIM, so a
    backend misfire can cost time but never correctness. *)

open Mclh_linalg

type outcome = {
  x : Vec.t;  (** subcell positions, length [Model.nvars] *)
  r : Vec.t;  (** ordering-constraint multipliers, length m *)
  modulus : Vec.t;
      (** MMSIM-compatible modulus vector [(gamma/2)(z - w)], length
          [n + m] *)
  iterations : int;
      (** backend-specific work count: 0 for the chain-free projection,
          pivots for Lemke, active-set steps otherwise *)
  residual : float;  (** KKT residual of (x, r), infinity norm *)
}

val chain_free_applicable : Model.t -> bool
(** True when the model has no subcell-equality chains (so [Q~ = I]) and
    every required separation is nonnegative — the preconditions of
    {!chain_free}. *)

val chain_free : Config.t -> Model.t -> outcome option
(** Exact O(n + m) solve for chain-free shards: with [Q~ = I] the QP
    decouples into one isotonic-regression-with-separations problem per
    ordering group, solved by pool-adjacent-violators after a
    prefix-shift change of variables (the feasible set becomes the
    isotone-nonnegative cone, whose projection is clip-after-PAVA).
    Multipliers are recovered by a right-to-left stationarity recurrence.
    [None] if the model's constraint layout violates the group-major
    build-order invariant (never expected); callers must still check
    {!acceptable} — degenerate ties can make the recovered multipliers
    inexact even though [x] is the projection. Only meaningful when
    {!chain_free_applicable} holds. *)

val lemke : Config.t -> Model.t -> outcome option
(** Lemke pivoting on the explicit KKT LCP (dense, O(dim^2) per pivot —
    tiny shards only; the chooser gates on [Config.direct_max_dim]).
    [None] on ray termination or when [Config.direct_max_iter] pivots are
    exhausted. *)

val active_set : Config.t -> Model.t -> outcome option
(** Dense primal active-set solve started from {!Model.packed_start}
    (feasible by construction), with tolerance [Config.direct_tol] and
    budget [Config.direct_max_iter]. [None] when it fails to converge.
    Tiny shards only, like {!lemke}. *)

val acceptable : Config.t -> outcome -> bool
(** The dispatcher's acceptance test: the KKT residual is finite and at
    most [Config.direct_tol * (1 + max(||x||_inf, ||r||_inf))]. *)
