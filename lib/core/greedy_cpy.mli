(** Greedy nearest-free-position legalizer — the DAC'16 baseline
    (Chow, Pui, Young: "Legalization algorithm for multiple-row height
    standard cell design"), reimplemented from its published strategy.

    Each cell, in global-x order, is first tried at its nearest aligned,
    power-rail-matched position; on conflict, a local region search places
    it at the minimum-displacement free span. Holes are reused (unlike
    Tetris), but decisions are one-cell-at-a-time and local — the source
    of the displacement gap to the MMSIM flow that Table 2 shows.

    Two configurations reproduce the paper's two columns:
    - [default]: row search window limited to +/- 2 rows (the original's
      local region), "DAC'16";
    - [improved]: unlimited window, i.e. globally nearest free span,
      "DAC'16-Imp" (the authors' post-conference improvement). *)

open Mclh_circuit

type options = {
  row_window : int option;  (** [Some k] limits the row search to +/- k *)
  x_window : int option;  (** [Some d] limits the x search to +/- d sites *)
  rightward_only : bool;
      (** scan each row only rightward of the target, the original
          algorithm's scan direction *)
}

val default : options
(** The published algorithm's local region and scan direction:
    [row_window = Some 2], [x_window = Some 40], [rightward_only = true]. *)

val improved : options
(** The post-conference improvement: globally nearest free span in both
    directions. *)

val legalize : ?options:options -> Design.t -> (Placement.t, Unplaced.t) result
(** A legal placement. If the window search fails for a cell, the window
    is widened until a spot is found; if fragmentation still strands a
    multi-row cell, the whole pass re-runs with the hardest cells first.
    A cell with no free span anywhere (design beyond capacity) is parked
    at its clamped target and reported in a typed {!Unplaced.t} — never
    an exception. *)
