open Mclh_linalg

(* Connected-component decomposition of the x-direction LCP.

   Variables interact only through
     - ordering constraints, which couple adjacent subcells of the same
       row segment (every group of [Model.row_vars] is connected through
       its adjacency chain), and
     - subcell-equality chains, which couple the rows spanned by one
       multi-row cell.
   Union-find over those two relations therefore partitions the KKT
   system [[Q~, -B^T]; [B, 0]] into exact block-diagonal components: a
   constraint's two variables always share a component, and Q~ = I +
   lambda E^T E never couples across components because every E chain is
   contained in one. Each component is an independent LCP that can be
   extracted, solved, and scattered back with no approximation beyond the
   iteration tolerance.

   [analyze] only plans the partition (index maps and renumbered
   group/chain structure — O(n + m) and cheap); materializing a shard's
   sub-model is deferred to [extract] so the solver can run it inside the
   parallel shard jobs instead of on the critical path. *)

type shard = {
  vars : int array; (* local variable -> global variable, ascending *)
  cons : int array; (* local constraint -> global constraint, ascending *)
  groups : int array array; (* [Model.row_vars] restricted, local ids *)
  chains : int array array; (* equality chains restricted, local ids *)
}

type t = {
  model : Model.t;
  comp_of_var : int array; (* dense component ids, by first appearance *)
  num_components : int;
  largest_dim : int; (* max over components of vars + constraints *)
  shards : shard array; (* [||] when the packing degenerates to one shard *)
}

(* ---------- union-find ---------- *)

let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    let r = find parent p in
    parent.(i) <- r;
    r
  end

let union parent rank a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then
    if rank.(ra) < rank.(rb) then parent.(ra) <- rb
    else if rank.(ra) > rank.(rb) then parent.(rb) <- ra
    else begin
      parent.(rb) <- ra;
      rank.(ra) <- rank.(ra) + 1
    end

(* group [g] of [row_vars] starts at this constraint id; groups emit their
   constraints consecutively in order (see [Model.build]) *)
let constraint_bases (model : Model.t) =
  let bases = Array.make (Array.length model.row_vars) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun g vars ->
      bases.(g) <- !acc;
      acc := !acc + max 0 (Array.length vars - 1))
    model.row_vars;
  bases

(* constraint id -> (left, right) global variable pair, in build order:
   group g emits the adjacent pairs (vars.(k), vars.(k+1)) consecutively
   starting at bases.(g). The pair is the constraint's identity across
   model rebuilds — incremental callers key old-to-new constraint maps on
   it. *)
let constraint_pairs (model : Model.t) =
  let m = Model.num_constraints model in
  let pairs = Array.make m (0, 0) in
  let acc = ref 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        pairs.(!acc) <- (vars.(k), vars.(k + 1));
        incr acc
      done)
    model.row_vars;
  pairs

let components (model : Model.t) =
  let n = model.nvars in
  let parent = Array.init n Fun.id and rank = Array.make n 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        union parent rank vars.(k) vars.(k + 1)
      done)
    model.row_vars;
  for c = 0 to Blocks.num_chains model.blocks - 1 do
    let vars = Blocks.chain_vars model.blocks c in
    for k = 1 to Array.length vars - 1 do
      union parent rank vars.(0) vars.(k)
    done
  done;
  (* dense component ids in order of first appearance, so everything
     downstream is deterministic in the global variable order *)
  let comp_of_var = Array.make n (-1) in
  let comp_of_root = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    let r = find parent v in
    if comp_of_root.(r) = -1 then begin
      comp_of_root.(r) <- !count;
      incr count
    end;
    comp_of_var.(v) <- comp_of_root.(r)
  done;
  (comp_of_var, !count)

(* ---------- shard planning ---------- *)

(* Pack consecutive components (in dense-id order) into shards of at
   least [min_shard_vars] variables: solving thousands of tiny components
   as separate LCPs would drown in per-solve setup, and a joint solve of
   several components is still exact (their blocks stay independent
   inside the shard). The packing depends only on the model — never on
   [num_domains] — so results are identical whatever the pool size. *)
let pack ~min_shard_vars ~comp_of_var ~num_components n =
  let vars_per_comp = Array.make num_components 0 in
  for v = 0 to n - 1 do
    let c = comp_of_var.(v) in
    vars_per_comp.(c) <- vars_per_comp.(c) + 1
  done;
  let shard_of_comp = Array.make num_components 0 in
  let num_shards = ref 0 in
  let filled = ref 0 in
  for c = 0 to num_components - 1 do
    if !filled >= min_shard_vars then begin
      incr num_shards;
      filled := 0
    end;
    shard_of_comp.(c) <- !num_shards;
    filled := !filled + vars_per_comp.(c)
  done;
  (shard_of_comp, !num_shards + 1)

let plan_shards (model : Model.t) ~shard_of_comp ~num_shards ~comp_of_var =
  let n = model.nvars in
  let shard_of_var v = shard_of_comp.(comp_of_var.(v)) in
  (* local variable numbering: ascending global order within each shard *)
  let local_of_var = Array.make n 0 in
  let shard_nvars = Array.make num_shards 0 in
  for v = 0 to n - 1 do
    let s = shard_of_var v in
    local_of_var.(v) <- shard_nvars.(s);
    shard_nvars.(s) <- shard_nvars.(s) + 1
  done;
  let vars = Array.init num_shards (fun s -> Array.make shard_nvars.(s) 0) in
  for v = 0 to n - 1 do
    vars.(shard_of_var v).(local_of_var.(v)) <- v
  done;
  (* groups and their constraints, in global order per shard *)
  let bases = constraint_bases model in
  let groups_rev = Array.make num_shards [] in
  let cons_rev = Array.make num_shards [] in
  Array.iteri
    (fun g gvars ->
      if Array.length gvars > 0 then begin
        let s = shard_of_var gvars.(0) in
        groups_rev.(s) <-
          Array.map (fun v -> local_of_var.(v)) gvars :: groups_rev.(s);
        for k = 0 to Array.length gvars - 2 do
          cons_rev.(s) <- (bases.(g) + k) :: cons_rev.(s)
        done
      end)
    model.row_vars;
  let chains_rev = Array.make num_shards [] in
  for c = Blocks.num_chains model.blocks - 1 downto 0 do
    let cvars = Blocks.chain_vars model.blocks c in
    let s = shard_of_var cvars.(0) in
    chains_rev.(s) <-
      Array.map (fun v -> local_of_var.(v)) cvars :: chains_rev.(s)
  done;
  Array.init num_shards (fun s ->
      { vars = vars.(s);
        cons = Array.of_list (List.rev cons_rev.(s));
        groups = Array.of_list (List.rev groups_rev.(s));
        chains = Array.of_list chains_rev.(s) })

(* ---------- sub-model extraction ---------- *)

let extract (model : Model.t) shard =
  let sub_n = Array.length shard.vars in
  let sub_m = Array.length shard.cons in
  (* B restricted to the shard, built directly in CSR form: every
     constraint row is a (-1, +1) pair over two distinct local columns,
     emitted in ascending column order — exactly the (sorted, merged)
     layout [Coo.to_csr] gives the global B in [Model.build], without the
     intermediate triplet lists. b_rhs carries the global separations
     over unchanged. *)
  let row_ptr = Array.init (sub_m + 1) (fun i -> 2 * i) in
  let col_idx = Array.make (2 * sub_m) 0 in
  let values = Array.make (2 * sub_m) 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun gvars ->
      for k = 0 to Array.length gvars - 2 do
        let a = gvars.(k) and b = gvars.(k + 1) in
        let pos = 2 * !ci in
        if a < b then begin
          col_idx.(pos) <- a;
          values.(pos) <- -1.0;
          col_idx.(pos + 1) <- b;
          values.(pos + 1) <- 1.0
        end
        else begin
          col_idx.(pos) <- b;
          values.(pos) <- 1.0;
          col_idx.(pos + 1) <- a;
          values.(pos + 1) <- -1.0
        end;
        incr ci
      done)
    shard.groups;
  { model with
    Model.nvars = sub_n;
    (* per-cell lookup tables are global-model notions; sub-models are
       solver-facing only (placement_of is never called on one) *)
    first_var = [||];
    var_cell = Array.map (fun v -> model.var_cell.(v)) shard.vars;
    var_row = Array.map (fun v -> model.var_row.(v)) shard.vars;
    row_vars = shard.groups;
    b_mat = Lazy.from_val (Csr.make ~rows:sub_m ~cols:sub_n ~row_ptr ~col_idx ~values);
    b_rhs = Array.init sub_m (fun i -> model.b_rhs.(shard.cons.(i)));
    p = Array.map (fun v -> model.p.(v)) shard.vars;
    shift = Array.map (fun v -> model.shift.(v)) shard.vars;
    blocks = Blocks.of_array ~nvars:sub_n shard.chains }

(* Small enough that independent components stop iterating as soon as
   they individually converge (the work saving that pays off even on one
   core), large enough that per-shard solve setup stays noise. *)
let default_min_shard_vars = 64

let analyze ?(min_shard_vars = default_min_shard_vars) (model : Model.t) =
  if min_shard_vars < 1 then invalid_arg "Decompose.analyze: min_shard_vars < 1";
  let n = model.nvars in
  let comp_of_var, num_components = components model in
  (* largest component dimension (vars + constraints), for reporting *)
  let vars_per_comp = Array.make (max 1 num_components) 0 in
  for v = 0 to n - 1 do
    let c = comp_of_var.(v) in
    vars_per_comp.(c) <- vars_per_comp.(c) + 1
  done;
  let cons_per_comp = Array.make (max 1 num_components) 0 in
  Array.iter
    (fun gvars ->
      if Array.length gvars > 1 then begin
        let c = comp_of_var.(gvars.(0)) in
        cons_per_comp.(c) <- cons_per_comp.(c) + Array.length gvars - 1
      end)
    model.row_vars;
  let largest_dim = ref 0 in
  for c = 0 to num_components - 1 do
    let dim = vars_per_comp.(c) + cons_per_comp.(c) in
    if dim > !largest_dim then largest_dim := dim
  done;
  let shards =
    if num_components <= 1 then [||]
    else begin
      let shard_of_comp, num_shards =
        pack ~min_shard_vars ~comp_of_var ~num_components n
      in
      if num_shards <= 1 then [||]
      else plan_shards model ~shard_of_comp ~num_shards ~comp_of_var
    end
  in
  { model; comp_of_var; num_components; largest_dim = !largest_dim; shards }

let num_components t = t.num_components
let largest_dim t = t.largest_dim
let num_shards t = if Array.length t.shards = 0 then 1 else Array.length t.shards

let shard_dim shard = Array.length shard.vars + Array.length shard.cons

(* scatter a per-shard solution slice back into a global vector *)
let scatter_vars shard local global =
  Array.iteri (fun i v -> global.(v) <- local.(i)) shard.vars

let scatter_cons shard local global =
  Array.iteri (fun i c -> global.(c) <- local.(i)) shard.cons

(* the [[||]] fallback means "solve monolithically"; callers that need a
   shard per solve regardless (the incremental cache, the solver's
   backend chooser) synthesize the identity shard covering the model *)
let identity_shard (model : Model.t) =
  { vars = Array.init model.nvars Fun.id;
    cons = Array.init (Model.num_constraints model) Fun.id;
    groups = model.row_vars;
    chains =
      Array.init
        (Blocks.num_chains model.blocks)
        (Blocks.chain_vars model.blocks) }

(* Two independent 64-bit rolling hashes over the shard's pure LCP
   content: dimensions, local group/chain structure, [p] and [b_rhs].
   Deliberately excluded: global/cell ids (so insert/delete renumbering
   cannot poison a cache keyed on this) and [shift] (placement
   bookkeeping, not part of the LCP). Equal sub-LCPs have equal unique
   solutions, so a 128-bit key match makes solution reuse mathematically
   sound up to hash collisions. The incremental engine keys its solution
   cache on this; the solver's backend chooser reads the same structural
   features (dimensions, chain count, separation signs) when routing a
   shard. *)
let fnv_prime = 0x100000001b3L

let shard_key (model : Model.t) (shard : shard) =
  let h1 = ref 0xcbf29ce484222325L and h2 = ref 0x9e3779b97f4a7c15L in
  let mix v =
    h1 := Int64.mul (Int64.logxor !h1 v) fnv_prime;
    h2 := Int64.logxor (Int64.mul !h2 0x2545f4914f6cdd1dL) v
  in
  let mix_int i = mix (Int64.of_int i) in
  let mix_float f = mix (Int64.bits_of_float f) in
  let sn = Array.length shard.vars in
  let sm = Array.length shard.cons in
  mix_int sn;
  mix_int sm;
  mix_int (Array.length shard.groups);
  Array.iter
    (fun g ->
      mix_int (Array.length g);
      Array.iter mix_int g)
    shard.groups;
  mix_int (Array.length shard.chains);
  Array.iter
    (fun ch ->
      mix_int (Array.length ch);
      Array.iter mix_int ch)
    shard.chains;
  Array.iter (fun v -> mix_float model.Model.p.(v)) shard.vars;
  Array.iter (fun c -> mix_float model.Model.b_rhs.(c)) shard.cons;
  (!h1, !h2, sn, sm)
