(** Connected-component decomposition of the x-direction LCP.

    The KKT system of Problem (13) is block-separable: subcell variables
    are coupled only by same-segment ordering constraints (the groups of
    [Model.row_vars]) and by the equality chains of multi-row cells. A
    union-find pass over those two relations splits the [(n + m)]-
    dimensional LCP into exact independent components; each is extracted
    as a self-contained {!Model.t} (with index maps back to the global
    variable and constraint numbering) and can be solved on its own
    domain, then scattered back. The component blocks never interact, so
    the only deviation from the monolithic solve is the stopping
    schedule: each component iterates to its own tolerance instead of the
    global maximum — which is also where the speedup beyond parallelism
    comes from.

    Tiny components are packed together into shards of at least
    [min_shard_vars] variables (a joint solve of several components is
    still exact). The packing depends only on the model, never on the
    domain count, so decomposed solves are bit-identical across
    [Config.num_domains] settings.

    {!analyze} only plans the partition (cheap, O(n + m)); the sub-model
    of a shard is materialized on demand by {!extract}, which the solver
    calls inside each parallel shard job so extraction runs off the
    critical path. *)

type shard = {
  vars : int array;  (** local variable -> global variable, ascending *)
  cons : int array;  (** local constraint -> global constraint, ascending *)
  groups : int array array;
      (** the ordering groups ([Model.row_vars]) falling in this shard,
          renumbered to local variable ids, in global order *)
  chains : int array array;
      (** the multi-row equality chains falling in this shard, local ids,
          in global order *)
}

type t = {
  model : Model.t;
  comp_of_var : int array;
      (** dense component id per global variable, numbered by first
          appearance in variable order *)
  num_components : int;
  largest_dim : int;
      (** variables + constraints of the largest single component *)
  shards : shard array;
      (** [[||]] when decomposition finds a single component (or the
          packing collapses to one shard): callers must fall back to the
          monolithic solve, which is then exact by construction *)
}

val default_min_shard_vars : int

val analyze : ?min_shard_vars:int -> Model.t -> t
(** Partitions the model. O(n alpha(n) + m). [min_shard_vars] defaults to
    {!default_min_shard_vars}; it must be positive and must not be derived
    from the domain count (see above). *)

val extract : Model.t -> shard -> Model.t
(** [extract model shard] materializes the shard's self-contained
    sub-model. Solver-facing: [nvars], [row_vars], [b_mat], [b_rhs], [p],
    [shift] and [blocks] are fully renumbered; the per-cell tables
    ([first_var]) are not meaningful on a sub-model, so
    {!Model.placement_of} and {!Model.cell_positions} must only be called
    on the parent. The sub-model's B is built directly in (sorted) CSR
    form, bit-identical to what [Model.build] would produce for the same
    rows. *)

val constraint_pairs : Model.t -> (int * int) array
(** [constraint_pairs model] maps every ordering-constraint id to its
    (left, right) global variable pair, in the build order ([Model.build]
    emits each [row_vars] group's adjacent pairs consecutively, left to
    right). The pair — lifted to cell identity — survives model rebuilds
    after an edit, so the incremental engine uses it to carry constraint
    multipliers and modulus entries from an old model to a new one. *)

val num_components : t -> int

val largest_dim : t -> int

val num_shards : t -> int
(** Number of independent solves the decomposition produces (1 on the
    fallback path). *)

val shard_dim : shard -> int
(** Variables + constraints of a shard — the size of the LCP {!extract}
    yields for it. *)

val scatter_vars : shard -> Mclh_linalg.Vec.t -> Mclh_linalg.Vec.t -> unit
(** [scatter_vars shard local global] writes the shard's local variable
    vector into the global one through the index map. *)

val scatter_cons : shard -> Mclh_linalg.Vec.t -> Mclh_linalg.Vec.t -> unit

val identity_shard : Model.t -> shard
(** The trivial shard covering the whole model — what the [[||]]
    (monolithic) fallback of {!analyze} means. Callers that key per-solve
    state on shards regardless of how the decomposition went (the
    incremental solution cache, the solver's backend chooser) fingerprint
    this one. *)

val shard_key : Model.t -> shard -> Int64.t * Int64.t * int * int
(** A 128-bit fingerprint (two independent rolling hashes, plus the
    dimensions in clear) of the shard's pure LCP content: dimensions,
    local group/chain structure, [p] and [b_rhs]. Global ids and [shift]
    are deliberately excluded, so insert/delete renumbering preserves the
    key. Equal sub-LCPs have equal unique solutions, which makes a cache
    keyed on this sound up to hash collisions — the incremental engine
    ({!Mclh_incr}) relies on it, and the solver's backend chooser routes
    shards off the same structural features. *)
