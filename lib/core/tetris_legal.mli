(** Classic Tetris legalization (Hill, US patent 6370673), extended with
    power-rail awareness.

    Cells are processed in global-x order; each goes to the admitting row
    (or row span) minimizing Manhattan displacement when appended at that
    row's frontier. No holes are ever reused, which is what makes Tetris
    fast but displacement-hungry — the weakest baseline, included because
    the paper's Tetris-like allocation stage descends from it. *)

open Mclh_circuit

val legalize : Design.t -> (Placement.t, Unplaced.t) result
(** A legal placement (integral coordinates). The classic frontier scheme
    can strand a tall cell at moderate density; this implementation then
    retries with the tall cells first and finally falls back to the
    hole-reusing greedy search. When even that fails (the design truly
    exceeds capacity) the result is a typed {!Unplaced.t} — never an
    exception — whose [partial] placement parks the leftover cells at
    their clamped targets. *)
