open Mclh_linalg

(* Direct (non-iterative / pivoting) backends for the per-shard solver
   chooser. Each returns the same unknowns as the MMSIM path — the primal
   positions x, the ordering multipliers r, and an MMSIM-compatible
   modulus vector — so the dispatcher can swap backends per shard without
   any caller noticing. Every backend also reports its own KKT residual;
   the dispatcher accepts a direct solve only when that residual clears
   [Config.direct_tol] relative to the solution scale, and otherwise
   falls back to MMSIM, so a backend misfire can cost time but never
   correctness. *)

type outcome = {
  x : Vec.t;
  r : Vec.t;
  modulus : Vec.t;
  iterations : int;
  residual : float;
}

(* With Omega = I the modulus identities z = (|s| + s) / gamma and
   w = (1/gamma)(|s| - s) invert to s = (gamma/2)(z - w): reconstructing
   s from an exact (z, w) pair lands a later MMSIM warm restart directly
   on its fixed point, which keeps the incremental engine's solution
   cache oblivious to which backend produced an entry. *)
let modulus_of (config : Config.t) (qp : Mclh_qp.Qp.t) ~x ~r =
  let n = Vec.dim x and m = Vec.dim r in
  let half_gamma = config.Config.gamma /. 2.0 in
  let u = Mclh_qp.Qp.gradient qp x in
  let btr = Csr.mul_vec_t qp.Mclh_qp.Qp.b_mat r in
  for i = 0 to n - 1 do
    u.(i) <- u.(i) -. btr.(i)
  done;
  let bx = Csr.mul_vec qp.Mclh_qp.Qp.b_mat x in
  Vec.init (n + m) (fun i ->
      if i < n then half_gamma *. (x.(i) -. u.(i))
      else
        half_gamma
        *. (r.(i - n) -. (bx.(i - n) -. qp.Mclh_qp.Qp.b_rhs.(i - n))))

let finish config qp ~x ~r ~iterations =
  { x;
    r;
    modulus = modulus_of config qp ~x ~r;
    iterations;
    residual = Mclh_qp.Kkt.kkt_residual qp ~x ~r }

(* ------------------------------------------------------------------ *)
(* chain-free isotonic projection                                      *)

(* Without equality chains Q~ = I and Problem (13) decouples into one
   tiny QP per ordering group:

     min sum (x_i - t_i)^2   s.t.  x_{i+1} - x_i >= w_i,  x >= 0

   with t = -p and w the required separations. When every w_i >= 0,
   x_0 >= 0 plus the chain already implies x_i >= 0, so substituting
   x_i = y_i + c_i (c = prefix sums of w) turns the feasible set into
   the isotone-nonnegative cone {y nondecreasing, y >= 0}, whose
   Euclidean projection is clip-after-pool: y = max(0, PAVA(t - c)).
   One O(n + m) pass, zero iterations, exact up to rounding. *)

let chain_free_applicable (model : Model.t) =
  Blocks.num_chains model.Model.blocks = 0
  && Array.for_all (fun w -> w >= 0.0) model.Model.b_rhs

(* pool-adjacent-violators: overwrite [u.(0 .. g-1)] with its projection
   onto the nondecreasing cone; [bsum]/[bcnt] are caller scratch (length
   >= g) holding the block stack *)
let pava u g bsum bcnt =
  let nb = ref 0 in
  for i = 0 to g - 1 do
    bsum.(!nb) <- u.(i);
    bcnt.(!nb) <- 1;
    incr nb;
    while
      !nb > 1
      && bsum.(!nb - 2) /. float_of_int bcnt.(!nb - 2)
         >= bsum.(!nb - 1) /. float_of_int bcnt.(!nb - 1)
    do
      bsum.(!nb - 2) <- bsum.(!nb - 2) +. bsum.(!nb - 1);
      bcnt.(!nb - 2) <- bcnt.(!nb - 2) + bcnt.(!nb - 1);
      decr nb
    done
  done;
  let i = ref 0 in
  for k = 0 to !nb - 1 do
    let mean = bsum.(k) /. float_of_int bcnt.(k) in
    for _ = 1 to bcnt.(k) do
      u.(!i) <- mean;
      incr i
    done
  done

let chain_free (config : Config.t) (model : Model.t) =
  let n = model.Model.nvars and m = Model.num_constraints model in
  (* variables outside every group (none are expected) keep the
     unconstrained clamp; groups overwrite their members below *)
  let x = Vec.init n (fun i -> Float.max 0.0 (-.model.Model.p.(i))) in
  let r = Vec.zeros m in
  let groups = model.Model.row_vars in
  let maxg =
    Array.fold_left (fun acc g -> max acc (Array.length g)) 1 groups
  in
  let u = Vec.zeros maxg and c = Vec.zeros maxg in
  let bsum = Vec.zeros maxg and bcnt = Array.make maxg 0 in
  (* [Model.build] emits each group's adjacent-pair constraints
     consecutively, left to right (see [Decompose.constraint_pairs]), so
     a running base recovers every constraint id *)
  let cons_base = ref 0 in
  Array.iter
    (fun group ->
      let g = Array.length group in
      if g > 0 then begin
        let base = !cons_base in
        c.(0) <- 0.0;
        for j = 1 to g - 1 do
          c.(j) <- c.(j - 1) +. model.Model.b_rhs.(base + j - 1)
        done;
        for j = 0 to g - 1 do
          u.(j) <- -.model.Model.p.(group.(j)) -. c.(j)
        done;
        pava u g bsum bcnt;
        for j = 0 to g - 1 do
          x.(group.(j)) <- Float.max 0.0 u.(j) +. c.(j)
        done;
        (* multipliers by right-to-left stationarity: where the pair
           constraint is slack, r_j = 0 (complementarity); where it is
           tight and x_{j+1} > 0, u_{j+1} = 0 forces
           r_j = x_{j+1} + p_{j+1} + r_{j+1}. The max 0 clamp only acts
           in degenerate ties (multiplier non-unique); the KKT-residual
           acceptance check catches any case this recurrence misjudges. *)
        let rnext = ref 0.0 in
        for j = g - 2 downto 0 do
          let slack =
            x.(group.(j + 1)) -. x.(group.(j)) -. model.Model.b_rhs.(base + j)
          in
          let rj =
            if slack > 1e-7 then 0.0
            else
              Float.max 0.0
                (x.(group.(j + 1)) +. model.Model.p.(group.(j + 1)) +. !rnext)
          in
          r.(base + j) <- rj;
          rnext := rj
        done;
        cons_base := base + g - 1
      end)
    groups;
  if !cons_base <> m then None
  else
    let qp = Model.to_qp model ~lambda:config.Config.lambda in
    Some (finish config qp ~x ~r ~iterations:0)

(* ------------------------------------------------------------------ *)
(* dense pivoting backends (tiny shards only)                          *)

let lemke (config : Config.t) (model : Model.t) =
  let qp = Model.to_qp model ~lambda:config.Config.lambda in
  let p = Mclh_qp.Kkt.to_lcp qp in
  match
    Mclh_lcp.Lemke.solve_pivots ~max_iter:config.Config.direct_max_iter p
  with
  | Mclh_lcp.Lemke.Solution z, pivots ->
    let x, r = Mclh_qp.Kkt.split_solution qp z in
    Some (finish config qp ~x ~r ~iterations:pivots)
  | (Mclh_lcp.Lemke.Ray_termination | Mclh_lcp.Lemke.Iteration_limit), _ ->
    None

let active_set (config : Config.t) (model : Model.t) =
  let qp = Model.to_qp model ~lambda:config.Config.lambda in
  let x0 = Model.packed_start model in
  let out =
    Mclh_qp.Active_set.solve ~max_iter:config.Config.direct_max_iter
      ~tol:config.Config.direct_tol ~x0 qp
  in
  if not out.Mclh_qp.Active_set.converged then None
  else
    Some
      (finish config qp ~x:out.Mclh_qp.Active_set.x
         ~r:out.Mclh_qp.Active_set.multipliers
         ~iterations:out.Mclh_qp.Active_set.iterations)

(* scale-relative acceptance: a direct solve "agrees" when its KKT
   residual is small against the solution magnitude *)
let acceptable (config : Config.t) (out : outcome) =
  let scale = ref 0.0 in
  Array.iter (fun v -> if Float.abs v > !scale then scale := Float.abs v) out.x;
  Array.iter (fun v -> if Float.abs v > !scale then scale := Float.abs v) out.r;
  Float.is_finite out.residual
  && out.residual <= config.Config.direct_tol *. (1.0 +. !scale)
