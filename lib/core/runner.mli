(** Uniform driver over every legalizer in the repository.

    Each algorithm consumes a {!Mclh_circuit.Design.t} and produces a legal
    placement (fractional outputs are snapped and repaired by
    {!Tetris_alloc}, the same final stage the paper's flow uses), together
    with the metrics the benchmark tables report. *)

open Mclh_circuit

type algorithm =
  | Mmsim  (** the paper's flow ("Ours") *)
  | Greedy_dac16  (** windowed greedy — "DAC'16" *)
  | Greedy_dac16_improved  (** global greedy — "DAC'16-Imp" *)
  | Abacus_multirow  (** multi-row Abacus — "ASP-DAC'17" *)
  | Tetris  (** classic Tetris (extra baseline) *)

val all : algorithm list
val name : algorithm -> string
val of_name : string -> algorithm option

type report = {
  algorithm : algorithm;
  placement : Placement.t;
  legal : bool;
  displacement : Metrics.t;
  delta_hpwl : float;
  runtime_s : float;
  unplaced : int list;
      (** cells no stage could place legally (empty on feasible designs):
          a baseline's typed {!Unplaced.t} failure, the flow's
          [Tetris_alloc] leftovers, or a fenced run's aggregated
          {!Fence.total_unplaced}. The placement still contains them at
          clamped positions, and [legal] is necessarily [false] *)
  mmsim : Flow.result option;
      (** present for {!Mmsim} on designs without fence regions (fenced
          designs run the {!Fence} decomposition instead) *)
  fence : Fence.stats option;
      (** present for {!Mmsim} on fenced designs: the per-territory solver
          stats ({!Fence.territory_stats}), ready to aggregate with the
          {!Fence} helpers *)
  obs : Mclh_obs.Obs.t option;
      (** the run's metrics recorder, present when [config.metrics] is set
          (default: the [MCLH_METRICS] gate) — serialize it with
          {!Mclh_obs.Run_report} *)
}

val run :
  ?config:Config.t -> ?obs:Mclh_obs.Obs.t -> algorithm -> Design.t -> report
(** [obs] shares a caller-owned metrics recorder with the run (the eco
    session uses one recorder across the initial legalization and every
    later batch); when omitted, a fresh recorder is created iff
    [config.metrics] is set. *)

val converged : report -> bool option
(** Whether every solver invocation behind this report converged:
    the MMSIM result's flag on plain designs, {!Fence.all_converged}
    over the per-territory stats on fenced ones. [None] for the
    non-iterative baseline algorithms, which have no notion of
    convergence. The CLI's [--strict-convergence] gate keys on this. *)

val run_all :
  ?config:Config.t -> ?algorithms:algorithm list -> Design.t list ->
  report list list
(** [run_all designs] runs every algorithm (default {!all}) on every
    design, fanning the (design, algorithm) jobs out over the domain
    pool (degree [config.num_domains]; [1] stays fully sequential).
    Returns one report list per design, algorithms in input order —
    the same reports, in the same order, as nested {!run} loops. *)
