(** Fence-region legalization by territorial decomposition.

    Fence regions are *exclusive*: member cells must land inside their
    region, every other cell outside all regions. The chip therefore
    partitions into disjoint territories — one per region plus the default
    territory — and legalization decomposes into independent sub-problems
    where the other territories act as blockages:

    - the sub-problem of region r sees the original blockages plus the
      complement of region r;
    - the default sub-problem sees the original blockages plus every
      region's rectangles.

    Each sub-problem runs the full MMSIM flow of {!Flow}; the merged
    placement is legal for the whole design, fences included, because the
    territories are disjoint. *)

open Mclh_circuit

type territory_stats = {
  name : string;  (** region name, or ["default"] *)
  cells : int;
  iterations : int;  (** MMSIM iterations of the territory's solve *)
  converged : bool;
  delta_inf : float;  (** final iterate change *)
  mismatch : float;  (** subcell mismatch after the solve *)
  components : int;  (** independent LCP components *)
  illegal_before : int;  (** cells the Tetris stage had to fix *)
  relocated : int;
}

type stats = {
  territories : int;  (** sub-problems solved (regions + default) *)
  per_territory : territory_stats list;
}

(** {1 Aggregation} — what a fenced run reports as its solver summary *)

val max_iterations : stats -> int
(** Territories solve concurrently, so the slowest one bounds the solve —
    the same convention as the decomposed solver's iteration count. *)

val all_converged : stats -> bool

val max_delta_inf : stats -> float
(** NaN if any territory hit the divergence guard. *)

val max_mismatch : stats -> float

val total_illegal : stats -> int

val total_relocated : stats -> int

val legalize :
  ?config:Config.t -> ?obs:Mclh_obs.Obs.t -> Design.t -> Placement.t * stats
(** Decomposed legalization. For a design without regions this is exactly
    one {!Flow} run (recording straight into [obs]). With regions, each
    territory's pool job records into its own recorder, attached after
    fan-in as a [territory/<name>] sub-report; the parent recorder gets
    the [fence/{territories,illegal_before,relocated,nonconverged}]
    counters and the [fence/max_mismatch] gauge.
    @raise Failure if a territory cannot host its cells (region too small
      for its members). *)
