(** Fence-region legalization by territorial decomposition.

    Fence regions are *exclusive*: member cells must land inside their
    region, every other cell outside all regions. The chip therefore
    partitions into disjoint territories — one per region plus the default
    territory — and legalization decomposes into independent sub-problems
    where the other territories act as blockages:

    - the sub-problem of region r sees the original blockages plus the
      complement of region r;
    - the default sub-problem sees the original blockages plus every
      region's rectangles.

    Each sub-problem runs the full MMSIM flow of {!Flow}; the merged
    placement is legal for the whole design, fences included, because the
    territories are disjoint. *)

open Mclh_circuit

type territory_stats = {
  name : string;  (** region name, or ["default"] *)
  cells : int;
  iterations : int;  (** MMSIM iterations of the territory's solve *)
  converged : bool;
  delta_inf : float;  (** final iterate change *)
  mismatch : float;  (** subcell mismatch after the solve *)
  components : int;  (** independent LCP components *)
  illegal_before : int;  (** cells the Tetris stage had to fix *)
  relocated : int;
  over_subscribed : bool;
      (** the region's usable area (rectangles minus blockage overlap) is
          smaller than its members' total area; overflow members were
          evicted to the default territory before solving *)
  evicted : int;  (** members evicted to the default territory *)
  unplaced : int list;
      (** original design ids of cells even the territory's allocation
          (with exact rescue) could not place *)
}

type stats = {
  territories : int;  (** sub-problems solved (regions + default) *)
  per_territory : territory_stats list;
}

(** {1 Aggregation} — what a fenced run reports as its solver summary *)

val max_iterations : stats -> int
(** Territories solve concurrently, so the slowest one bounds the solve —
    the same convention as the decomposed solver's iteration count. *)

val all_converged : stats -> bool

val max_delta_inf : stats -> float
(** NaN if any territory hit the divergence guard. *)

val max_mismatch : stats -> float

val total_illegal : stats -> int

val total_relocated : stats -> int

val total_evicted : stats -> int

val over_subscribed_territories : stats -> string list
(** Names of the regions whose members exceeded their usable area. *)

val total_unplaced : stats -> int list
(** Original design ids of all unplaceable cells, sorted and distinct. *)

val legalize :
  ?config:Config.t -> ?obs:Mclh_obs.Obs.t -> Design.t -> Placement.t * stats
(** Decomposed legalization. For a design without regions this is exactly
    one {!Flow} run (recording straight into [obs]). With regions, each
    territory's pool job records into its own recorder, attached after
    fan-in as a [territory/<name>] sub-report; the parent recorder gets
    the [fence/{territories,illegal_before,relocated,evicted,
    over_subscribed,unplaced,nonconverged}] counters and the
    [fence/max_mismatch] gauge. A region too small for its members no
    longer raises: overflow members are evicted to the default territory
    up front (reported per territory as [over_subscribed]/[evicted]), and
    anything even the exact rescue cannot place is listed in [unplaced]
    with the merged placement still returned. *)
