open Mclh_circuit
module Obs = Mclh_obs.Obs

type algorithm =
  | Mmsim
  | Greedy_dac16
  | Greedy_dac16_improved
  | Abacus_multirow
  | Tetris

let all =
  [ Mmsim; Greedy_dac16; Greedy_dac16_improved; Abacus_multirow; Tetris ]

let name = function
  | Mmsim -> "mmsim"
  | Greedy_dac16 -> "dac16"
  | Greedy_dac16_improved -> "dac16-imp"
  | Abacus_multirow -> "aspdac17"
  | Tetris -> "tetris"

let of_name s = List.find_opt (fun a -> name a = s) all

type report = {
  algorithm : algorithm;
  placement : Placement.t;
  legal : bool;
  displacement : Metrics.t;
  delta_hpwl : float;
  runtime_s : float;
  unplaced : int list;
  mmsim : Flow.result option;
  fence : Fence.stats option;
  obs : Obs.t option;
}

let snap design placement =
  let alloc = Tetris_alloc.run design placement in
  (alloc.Tetris_alloc.placement, alloc.Tetris_alloc.unplaced)

(* a baseline's typed failure still yields a measurable partial placement *)
let unwrap = function
  | Ok pl -> (pl, [])
  | Error u -> (u.Unplaced.partial, u.Unplaced.cells)

let run ?(config = Config.default) ?obs algorithm design =
  let obs =
    match obs with
    | Some _ as o -> o
    | None -> if config.Config.metrics then Some (Obs.create ()) else None
  in
  let t0 = Mclh_par.Clock.now () in
  let placement, unplaced, mmsim, fence =
    match algorithm with
    | Mmsim ->
      if Array.length design.Design.regions > 0 then begin
        let legal, stats = Fence.legalize ~config ?obs design in
        (legal, Fence.total_unplaced stats, None, Some stats)
      end
      else begin
        let result = Flow.run ~config ?obs design in
        ( result.Flow.legal,
          result.Flow.alloc.Tetris_alloc.unplaced,
          Some result,
          None )
      end
    | Greedy_dac16 ->
      let pl, unplaced =
        unwrap (Greedy_cpy.legalize ~options:Greedy_cpy.default design)
      in
      (pl, unplaced, None, None)
    | Greedy_dac16_improved ->
      let pl, unplaced =
        unwrap (Greedy_cpy.legalize ~options:Greedy_cpy.improved design)
      in
      (pl, unplaced, None, None)
    | Abacus_multirow ->
      let fractional, ab_unplaced = unwrap (Abacus_mr.legalize design) in
      let pl, alloc_unplaced = snap design fractional in
      (pl, List.sort_uniq compare (ab_unplaced @ alloc_unplaced), None, None)
    | Tetris ->
      let pl, unplaced = unwrap (Tetris_legal.legalize design) in
      (pl, unplaced, None, None)
  in
  let runtime_s = Mclh_par.Clock.now () -. t0 in
  let legal = Legality.is_legal design placement in
  let displacement =
    Metrics.displacement ~row_height:design.Design.chip.Chip.row_height
      ~before:design.Design.global placement
  in
  let delta_hpwl =
    Hpwl.delta ~row_height:design.Design.chip.Chip.row_height
      design.Design.nets ~before:design.Design.global placement
  in
  Obs.record_span obs "runner/total" runtime_s;
  Obs.add obs "runner/legal" (if legal then 1 else 0);
  Obs.add obs "runner/unplaced" (List.length unplaced);
  Obs.gauge obs "runner/delta_hpwl" delta_hpwl;
  if runtime_s > 0.0 then
    Obs.gauge obs "runner/cells_per_s"
      (float_of_int (Array.length design.Design.cells) /. runtime_s);
  (match Obs.peak_rss_kb () with
  | Some kb -> Obs.gauge obs "mem/peak_rss_kb" (float_of_int kb)
  | None -> ());
  { algorithm;
    placement;
    legal;
    displacement;
    delta_hpwl;
    runtime_s;
    unplaced;
    mmsim;
    fence;
    obs }

let converged report =
  match (report.mmsim, report.fence) with
  | Some flow, _ -> Some flow.Flow.solver.Solver.converged
  | None, Some stats -> Some (Fence.all_converged stats)
  | None, None -> None

let run_all ?config ?(algorithms = all) designs =
  let num_domains =
    match config with
    | Some c -> c.Config.num_domains
    | None -> Config.default.Config.num_domains
  in
  (* flatten to one job per (design, algorithm) pair for load balance —
     a slow MMSIM solve on one design should not serialize the cheap
     baselines of the others — and regroup in input order afterwards *)
  let designs = Array.of_list designs in
  let algorithms = Array.of_list algorithms in
  let na = Array.length algorithms in
  let jobs =
    Array.init
      (Array.length designs * na)
      (fun i -> (designs.(i / na), algorithms.(i mod na)))
  in
  let reports =
    if num_domains <= 1 then
      Array.map (fun (d, alg) -> run ?config alg d) jobs
    else
      Mclh_par.Pool.parallel_map
        (Mclh_par.Pool.get ~num_domains)
        (fun (d, alg) -> run ?config alg d)
        jobs
  in
  List.init (Array.length designs) (fun i ->
      List.init na (fun j -> reports.((i * na) + j)))
