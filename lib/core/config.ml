type backend = Auto | Plain | Accel

type t = {
  lambda : float;
  beta : float;
  theta : float;
  gamma : float;
  eps : float;
  max_iter : int;
  backend : backend;
  accel_depth : int;
  direct_max_dim : int;
  direct_max_iter : int;
  direct_tol : float;
  use_sherman_morrison : bool;
  verify_bound : bool;
  warm_start : bool;
  num_domains : int;
  decompose : bool;
  metrics : bool;
  progress : bool;
      (* stage/iteration heartbeat lines on stderr for long full-scale
         runs; never part of report output *)
}

(* eps is measured in site widths; final positions snap to integer sites,
   so 1e-3 sites of iterate change is far below the rounding threshold
   (empirically the snapped placement is already stable at 1e-2). The
   optimality experiments (Section 5.3) override eps downward. *)
let default =
  { lambda = 1000.0;
    beta = 0.5;
    theta = 0.5;
    gamma = 2.0;
    eps = 3e-3;
    max_iter = 10_000;
    backend = Auto;
    accel_depth = 8;
    direct_max_dim = 48;
    direct_max_iter = 10_000;
    direct_tol = 1e-9;
    use_sherman_morrison = true;
    verify_bound = false;
    warm_start = true;
    num_domains = Mclh_par.Pool.default_num_domains ();
    decompose = true;
    metrics = Mclh_obs.Obs.enabled_from_env ();
    progress = false }

let validate t =
  if t.lambda <= 0.0 then Error "lambda must be positive"
  else if not (t.beta > 0.0 && t.beta < 2.0) then Error "beta must lie in (0, 2)"
  else if t.theta <= 0.0 then Error "theta must be positive"
  else if t.gamma <= 0.0 then Error "gamma must be positive"
  else if t.eps <= 0.0 then Error "eps must be positive"
  else if t.max_iter <= 0 then Error "max_iter must be positive"
  else if t.accel_depth < 0 then Error "accel_depth must be >= 0"
  else if t.direct_max_dim < 0 then Error "direct_max_dim must be >= 0"
  else if t.direct_max_iter <= 0 then Error "direct_max_iter must be positive"
  else if t.direct_tol <= 0.0 then Error "direct_tol must be positive"
  else if t.num_domains < 1 then Error "num_domains must be >= 1"
  else Ok t
