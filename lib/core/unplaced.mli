(** Typed legalization failure: the design (or a territory of it) exceeds
    what a legalizer can place, and these are the cells left over.

    Every legalizer in the repository returns
    [(Placement.t, Unplaced.t) result] instead of raising: the [partial]
    placement keeps the unplaceable cells at their clamped input
    positions so the flow can still measure, report and exit with a
    meaningful status (the CLI maps a nonempty failure to exit 2). *)

open Mclh_circuit

type t = {
  stage : string;  (** which legalizer gave up (e.g. ["greedy"]) *)
  cells : int list;  (** unplaceable cell ids, sorted *)
  partial : Placement.t;
      (** every other cell legally placed; the listed cells sit at their
          clamped input positions (overlapping whatever is there) *)
  detail : string;  (** one-line diagnosis for logs/stderr *)
}

val make :
  stage:string -> cells:int list -> partial:Placement.t -> detail:string -> t
(** Sorts and de-duplicates [cells]. *)

val message : t -> string
(** One-line report naming the stage and the first few cell ids. *)
