(** The x-direction optimization model (Problems (5), (6), (12), (13)).

    After row assignment, every cell is split into one subcell variable per
    spanned row. The model carries:

    - the ordering constraints [B x >= b] — one row per adjacent subcell
      pair in each chip row, two nonzeros (-1, +1) per row, ordered row by
      row and left to right so that consecutive constraints share
      variables and the Schur complement is nearly tridiagonal;
    - the subcell-equality chains (the [E] matrix of Problem (12)) in the
      {!Mclh_linalg.Blocks} star representation;
    - the linear term [p] with [p_v = -x'_cell(v)].

    Propositions 1-2 of the paper (B of full row rank, [Q + lambda E^T E]
    SPD) hold by this construction and are asserted in the test suite. *)

open Mclh_linalg
open Mclh_circuit

type t = {
  design : Design.t;
  assignment : Row_assign.t;
  nvars : int;  (** total number of subcell variables *)
  first_var : int array;  (** first (hub) variable of each cell *)
  var_cell : int array;  (** owning cell of each variable *)
  var_row : int array;  (** chip row of each variable *)
  row_vars : int array array;
      (** ordering groups: one per row *segment* (one per row when the
          design has no blockages), variables in global-x order *)
  b_mat : Csr.t Lazy.t;
      (** m x nvars ordering-constraint matrix, materialized on first
          force (prefer the {!b_mat} accessor). The decomposed solve path
          never forces the global matrix: component discovery and shard
          extraction work from [row_vars]/[blocks] alone, and each shard
          builds only its own sub-CSR. *)
  b_rhs : Vec.t;
      (** required separation of each adjacent pair: the left cell's width
          plus the shift difference when blockage segments shift the
          variables *)
  p : Vec.t;  (** linear term, length nvars: [-(x' - shift)] *)
  shift : Vec.t;
      (** per-variable coordinate shift: the segment left wall the
          variable is measured from ([x = u + shift]); all zero without
          blockages *)
  blocks : Blocks.t;  (** subcell-equality chains *)
}

val build : ?num_domains:int -> Design.t -> Row_assign.t -> t
(** Streaming struct-of-arrays construction: every model field is filled
    in linear passes over preallocated arrays (counting-sort row buckets,
    in-place range sorts, direct CSR emission) with no intermediate
    lists. With [num_domains > 1] the per-cell segment location and the
    per-row sorts fan out over the shared pool; all parallel writes are
    disjoint, so the result is bit-identical to the sequential build. *)

val build_reference : Design.t -> Row_assign.t -> t
(** The historical list-based construction (kept as an oracle): same
    design, byte-identical model fields. For tests only. *)

val b_mat : t -> Csr.t
(** Force and return the global ordering-constraint matrix. *)

val num_constraints : t -> int

val lcp_rhs : t -> Vec.t
(** The KKT LCP right-hand side [q = (p; -b)], length [nvars + m]. *)

val to_qp : t -> lambda:float -> Mclh_qp.Qp.t
(** Explicit Problem (13): [Q = I + lambda E^T E] materialized as a sparse
    matrix. For oracle comparisons on small instances. *)

val apply_q_tilde : t -> lambda:float -> Vec.t -> Vec.t
(** [(I + lambda E^T E) x] without materializing anything. *)

val packed_start : t -> Vec.t
(** A point satisfying [B u >= b] and [u >= 0] (cumulative packing per
    ordering group; subcells of a multi-row cell may disagree, which
    Problem (13) permits). Used to start the active-set oracle. *)

val cell_positions : t -> Vec.t -> Vec.t
(** Per-cell x from a per-variable vector by averaging each cell's
    subcells (multi-row restoration). *)

val subcell_mismatch : t -> Vec.t -> float
(** Largest subcell disagreement (see {!Mclh_linalg.Blocks.mismatch}). *)

val placement_of : t -> Vec.t -> Placement.t
(** Placement with x = averaged subcell positions plus the segment shift,
    and y = assigned rows. *)
