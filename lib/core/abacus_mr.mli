(** Multi-row Abacus — the ASP-DAC'17 baseline (Wang et al., "An effective
    legalization algorithm for mixed-cell-height standard cells"),
    reimplemented from its published strategy: extend Abacus's cluster
    collapse to clusters that span several rows, honoring the
    global-placement cell order.

    Cells are inserted in global-x order into the row span minimizing an
    insertion-cost estimate; a multi-row cell forms a cluster spanning all
    its rows, and overlapping clusters merge with their members packed
    abutting per row, the merged cluster moving to its clamped weighted
    mean. This gives the order-preserving, Abacus-quality behaviour of the
    original; the simplification relative to the published algorithm
    (documented in DESIGN.md) is the insertion-cost estimate, which uses
    the span frontier instead of a full trial collapse. *)

open Mclh_circuit

val legalize : Design.t -> (Placement.t, Unplaced.t) result
(** A placement with integral rows and fractional x (cluster optima); snap
    and repair with {!Tetris_alloc}. A cell admitting no row span at all
    (taller than the chip allows, or rail-impossible) is left at its
    clamped global position and reported in a typed {!Unplaced.t} — never
    an exception. *)
