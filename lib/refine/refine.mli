(** Post-legalization detailed placement (wirelength refinement).

    The paper's flow ends at legalization; its successor work (MrDP, Lin
    et al., ICCAD'16 — cited as [12]) refines the legal placement for
    wirelength. This module implements the three classic local moves on
    top of any legal placement, each preserving legality by construction:

    - {b global move}: relocate one cell to the nearest free span inside
      its optimal region (the median box of its connected nets);
    - {b swap}: exchange two cells of identical footprint and compatible
      rail parity;
    - {b reorder}: optimally re-sequence small windows of consecutive
      cells within a row segment.

    Moves are accepted only when they strictly reduce HPWL, so the refined
    placement is never worse. *)

open Mclh_circuit

type options = {
  passes : int;  (** maximum sweeps over all cells (default 3) *)
  window : int;  (** reorder window size, 2 or 3 (default 3) *)
  move_radius : int;  (** row radius for global moves (default 5) *)
  seed : int;  (** tie-breaking/visit-order seed *)
  enable_moves : bool;  (** run the global-move phase (default true) *)
  enable_swaps : bool;  (** run the swap phase (default true) *)
  enable_reorders : bool;  (** run the reorder phase (default true) *)
}

val default_options : options

type stats = {
  hpwl_before : float;
  hpwl_after : float;
  moves : int;  (** accepted global moves *)
  swaps : int;
  reorders : int;
  passes_run : int;
  skipped_cells : int;
      (** cells that were illegal in the input, frozen in place and
          excluded from every move *)
}

val improvement : stats -> float
(** Relative HPWL reduction, in [0, 1). *)

val run :
  ?options:options ->
  ?obs:Mclh_obs.Obs.t ->
  Design.t ->
  Placement.t ->
  Placement.t * stats
(** [run design placement] refines a placement. A not-perfectly-legal
    input no longer aborts: the illegal cells are frozen in place (their
    clamped spans become obstacles), excluded from every move, counted in
    [stats.skipped_cells] and under the [refine/skipped_illegal] obs
    counter, and every other cell is still refined. Never raises on any
    placement whose coordinates are finite. *)
