open Mclh_circuit
module Obs = Mclh_obs.Obs

type options = {
  passes : int;
  window : int;
  move_radius : int;
  seed : int;
  enable_moves : bool;
  enable_swaps : bool;
  enable_reorders : bool;
}

let default_options =
  { passes = 3; window = 3; move_radius = 5; seed = 1; enable_moves = true;
    enable_swaps = true; enable_reorders = true }

type stats = {
  hpwl_before : float;
  hpwl_after : float;
  moves : int;
  swaps : int;
  reorders : int;
  passes_run : int;
  skipped_cells : int;
}

let improvement s =
  if s.hpwl_before = 0.0 then 0.0
  else (s.hpwl_before -. s.hpwl_after) /. s.hpwl_before

(* mutable refinement state: positions + occupancy kept in sync *)
type state = {
  design : Design.t;
  pl : Placement.t;
  occ : Occupancy.t;
  nets_of : int array array;
  row_height : float;
  skip : bool array;
      (* illegal-in-input cells: frozen in place (their clamped span is
         marked as an obstacle) and excluded from every move *)
}

let net_hpwl st net_id =
  Hpwl.net ~row_height:st.row_height (Netlist.net st.design.Design.nets net_id) st.pl

let nets_hpwl st net_ids =
  Array.fold_left (fun acc n -> acc +. net_hpwl st n) 0.0 net_ids

let union_nets a b =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace tbl n ()) a;
  Array.iter (fun n -> Hashtbl.replace tbl n ()) b;
  Array.of_seq (Hashtbl.to_seq_keys tbl)

let cell_geom st i =
  let c = st.design.Design.cells.(i) in
  (c, int_of_float st.pl.Placement.xs.(i), int_of_float st.pl.Placement.ys.(i))

let release_cell st i =
  let c, x, row = cell_geom st i in
  Occupancy.release st.occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width

let occupy_cell st i ~x ~row =
  let c = st.design.Design.cells.(i) in
  Occupancy.occupy st.occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
  st.pl.Placement.xs.(i) <- float_of_int x;
  st.pl.Placement.ys.(i) <- float_of_int row

(* optimal-region target: median of the connected nets' bounding boxes,
   each computed without the moving cell's own pins *)
let optimal_target st i =
  let c = st.design.Design.cells.(i) in
  let xs = ref [] and ys = ref [] in
  Array.iter
    (fun n ->
      let pins = Netlist.net st.design.Design.nets n in
      let min_x = ref infinity and max_x = ref neg_infinity in
      let min_y = ref infinity and max_y = ref neg_infinity in
      let seen_other = ref false in
      Array.iter
        (fun (p : Netlist.pin) ->
          if p.Netlist.cell <> i then begin
            seen_other := true;
            let px = st.pl.Placement.xs.(p.Netlist.cell) +. p.dx in
            let py = st.pl.Placement.ys.(p.Netlist.cell) +. p.dy in
            if px < !min_x then min_x := px;
            if px > !max_x then max_x := px;
            if py < !min_y then min_y := py;
            if py > !max_y then max_y := py
          end)
        pins;
      if !seen_other then begin
        xs := ((!min_x +. !max_x) /. 2.0) :: !xs;
        ys := ((!min_y +. !max_y) /. 2.0) :: !ys
      end)
    st.nets_of.(i);
  match !xs with
  | [] -> None
  | _ ->
    let median l =
      let arr = Array.of_list l in
      Array.sort compare arr;
      arr.(Array.length arr / 2)
    in
    let tx = median !xs -. (float_of_int c.Cell.width /. 2.0) in
    let ty = median !ys -. (float_of_int c.Cell.height /. 2.0) in
    Some (int_of_float (Float.round tx), int_of_float (Float.round ty))

let try_global_move st options i =
  match optimal_target st i with
  | None -> false
  | Some (tx, ty) ->
    let c, old_x, old_row = cell_geom st i in
    if abs (tx - old_x) <= 1 && abs (ty - old_row) <= 0 then false
    else begin
      let before = nets_hpwl st st.nets_of.(i) in
      release_cell st i;
      let row0 =
        max 0 (min ((Occupancy.chip st.occ).Chip.num_rows - c.Cell.height) ty)
      in
      match
        Occupancy.find_spot ~row_window:options.move_radius st.occ c ~row0
          ~x0:(max 0 tx)
      with
      | None ->
        occupy_cell st i ~x:old_x ~row:old_row;
        false
      | Some (row, x, _) ->
        occupy_cell st i ~x ~row;
        let after = nets_hpwl st st.nets_of.(i) in
        if after < before -. 1e-9 then true
        else begin
          release_cell st i;
          occupy_cell st i ~x:old_x ~row:old_row;
          false
        end
    end

(* swap two footprint-identical cells when both rows admit both cells *)
let try_swap st i j =
  let ci, xi, ri = cell_geom st i and cj, xj, rj = cell_geom st j in
  let chip = Occupancy.chip st.occ in
  if
    i = j
    || st.skip.(j)
    || ci.Cell.width <> cj.Cell.width
    || ci.Cell.height <> cj.Cell.height
    || (not (Chip.row_admits chip ci rj))
    || not (Chip.row_admits chip cj ri)
  then false
  else begin
    let nets = union_nets st.nets_of.(i) st.nets_of.(j) in
    let before = nets_hpwl st nets in
    st.pl.Placement.xs.(i) <- float_of_int xj;
    st.pl.Placement.ys.(i) <- float_of_int rj;
    st.pl.Placement.xs.(j) <- float_of_int xi;
    st.pl.Placement.ys.(j) <- float_of_int ri;
    let after = nets_hpwl st nets in
    if after < before -. 1e-9 then true
    else begin
      st.pl.Placement.xs.(i) <- float_of_int xi;
      st.pl.Placement.ys.(i) <- float_of_int ri;
      st.pl.Placement.xs.(j) <- float_of_int xj;
      st.pl.Placement.ys.(j) <- float_of_int rj;
      false
    end
  end

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* exhaustive window reorder enumerates [length!] permutations; above
   this cap (720 candidates) the move stops paying for itself *)
let max_reorder_window = 6

(* re-sequence a window of consecutive single-height cells in one row:
   candidates are packed left-to-right from the window start, which keeps
   them inside the original span *)
let try_reorder st ids =
  match ids with
  | [] | [ _ ] -> false
  | _ when List.length ids > max_reorder_window -> false
  | _ ->
    (* earlier moves in the same pass may have re-sequenced these cells, so
       order by the *current* positions and pack from the current left
       edge of the window *)
    let ids =
      List.sort
        (fun a b -> compare st.pl.Placement.xs.(a) st.pl.Placement.xs.(b))
        ids
    in
    let first = List.hd ids in
    (* the contiguous repacking below is only sound for cells homed in one
       shared row: a cell from another row would be dragged out of it, and
       a taller cell's other rows would not be repacked *)
    let home = int_of_float st.pl.Placement.ys.(first) in
    List.iter
      (fun i ->
        if
          int_of_float st.pl.Placement.ys.(i) <> home
          || st.design.Design.cells.(i).Cell.height <> 1
        then
          invalid_arg
            "Refine.try_reorder: window must be same-row single-height cells")
      ids;
    let nets =
      List.fold_left
        (fun acc i -> union_nets acc st.nets_of.(i))
        [||] ids
    in
    let row = int_of_float st.pl.Placement.ys.(first) in
    let span_start = int_of_float st.pl.Placement.xs.(first) in
    let original = List.map (fun i -> (i, int_of_float st.pl.Placement.xs.(i))) ids in
    let place order =
      let cursor = ref span_start in
      List.iter
        (fun i ->
          st.pl.Placement.xs.(i) <- float_of_int !cursor;
          cursor := !cursor + st.design.Design.cells.(i).Cell.width)
        order
    in
    let restore () =
      List.iter (fun (i, x) -> st.pl.Placement.xs.(i) <- float_of_int x) original
    in
    let before = nets_hpwl st nets in
    let best = ref None in
    List.iter
      (fun perm ->
        place perm;
        let h = nets_hpwl st nets in
        restore ();
        match !best with
        | Some (_, bh) when bh <= h -> ()
        | Some _ | None -> if h < before -. 1e-9 then best := Some (perm, h))
      (permutations ids);
    (match !best with
    | None -> false
    | Some (perm, _) ->
      (* re-occupy: release the window, place the permutation *)
      List.iter (fun i -> release_cell st i) ids;
      place perm;
      List.iter
        (fun i ->
          let c = st.design.Design.cells.(i) in
          Occupancy.occupy st.occ ~row ~height:c.Cell.height
            ~x:(int_of_float st.pl.Placement.xs.(i))
            ~width:c.Cell.width)
        perm;
      true)

let run ?(options = default_options) ?obs (design : Design.t)
    (input : Placement.t) =
  let chip = design.Design.chip in
  let pl = Placement.copy input in
  let occ = Occupancy.of_design design in
  (* a partially-legal input no longer aborts the flow: the offending
     cells are frozen in place and skipped by every pass. Legal cells are
     occupied exactly first (any overlapping pair has its blamed member in
     the illegal set, so they never collide among themselves); the frozen
     cells' clamped spans are then laid down idempotently. *)
  let skip = Array.make (Design.num_cells design) false in
  let illegal = Legality.illegal_cells design input in
  List.iter (fun i -> skip.(i) <- true) illegal;
  Obs.add obs "refine/skipped_illegal" (List.length illegal);
  Array.iteri
    (fun i (c : Cell.t) ->
      if not skip.(i) then
        Occupancy.occupy occ
          ~row:(int_of_float pl.Placement.ys.(i))
          ~height:c.Cell.height
          ~x:(int_of_float pl.Placement.xs.(i))
          ~width:c.Cell.width)
    design.Design.cells;
  Array.iteri
    (fun i (c : Cell.t) ->
      if skip.(i) then begin
        let row =
          max 0
            (min
               (chip.Chip.num_rows - c.Cell.height)
               (int_of_float (Float.round pl.Placement.ys.(i))))
        in
        let x =
          max 0
            (min
               (chip.Chip.num_sites - c.Cell.width)
               (int_of_float (Float.round pl.Placement.xs.(i))))
        in
        Occupancy.mark occ ~row
          ~height:(min c.Cell.height chip.Chip.num_rows)
          ~x
          ~width:(min c.Cell.width chip.Chip.num_sites)
      end)
    design.Design.cells;
  let st =
    { design;
      pl;
      occ;
      nets_of = Netlist.nets_of_cell design.Design.nets;
      row_height = chip.Chip.row_height;
      skip }
  in
  let hpwl_before = Hpwl.total ~row_height:st.row_height design.Design.nets pl in
  let n = Design.num_cells design in
  (* deterministic visit order, shuffled by a tiny LCG *)
  let order = Array.init n (fun i -> i) in
  let lcg = ref options.seed in
  for i = n - 1 downto 1 do
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    let j = !lcg mod (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  (* footprint buckets for the swap move *)
  let buckets = Hashtbl.create 64 in
  Array.iter
    (fun (c : Cell.t) ->
      let key = (c.Cell.width, c.Cell.height) in
      let prev = try Hashtbl.find buckets key with Not_found -> [] in
      Hashtbl.replace buckets key (c.Cell.id :: prev))
    design.Design.cells;
  let moves = ref 0 and swaps = ref 0 and reorders = ref 0 in
  let passes_run = ref 0 in
  let improved = ref true in
  while !improved && !passes_run < options.passes do
    improved := false;
    incr passes_run;
    (* pass 1: global moves *)
    if options.enable_moves then
      Array.iter
        (fun i ->
          if (not st.skip.(i)) && try_global_move st options i then begin
            incr moves;
            improved := true
          end)
        order;
    (* pass 2: swaps among footprint twins (bounded candidate list) *)
    if options.enable_swaps then
    Array.iter
      (fun i ->
        if not st.skip.(i) then begin
        let c = design.Design.cells.(i) in
        let twins =
          try Hashtbl.find buckets (c.Cell.width, c.Cell.height)
          with Not_found -> []
        in
        let rec try_first k = function
          | [] -> ()
          | j :: rest ->
            if k = 0 then ()
            else if try_swap st i j then begin
              incr swaps;
              improved := true
            end
            else try_first (k - 1) rest
        in
        try_first 8 twins
        end)
      order;
    (* pass 3: window reorder of single-height runs. A window is only
       valid when its cells are consecutive among *all* occupants of the
       row — a multi-row cell sitting between them would be plowed over
       by the contiguous repacking — and windows are disjoint so earlier
       reorders cannot invalidate later ones. *)
    let num_rows = chip.Chip.num_rows in
    if options.enable_reorders then
    for row = 0 to num_rows - 1 do
      (* every cell whose vertical span covers [row], in x order *)
      let occupants =
        Array.to_list order
        |> List.filter (fun i ->
               let c = design.Design.cells.(i) in
               let home = int_of_float st.pl.Placement.ys.(i) in
               home <= row && row < home + c.Cell.height)
        |> List.sort (fun a b ->
               compare st.pl.Placement.xs.(a) st.pl.Placement.xs.(b))
      in
      let is_single i =
        (not st.skip.(i))
        && design.Design.cells.(i).Cell.height = 1
        && int_of_float st.pl.Placement.ys.(i) = row
      in
      let rec windows = function
        | a :: b :: c :: rest
          when options.window >= 3 && is_single a && is_single b && is_single c ->
          if try_reorder st [ a; b; c ] then begin
            incr reorders;
            improved := true
          end;
          windows rest
        | a :: b :: rest when options.window = 2 && is_single a && is_single b ->
          if try_reorder st [ a; b ] then begin
            incr reorders;
            improved := true
          end;
          windows rest
        | _ :: rest -> windows rest
        | [] -> ()
      in
      windows occupants
    done
  done;
  let hpwl_after = Hpwl.total ~row_height:st.row_height design.Design.nets pl in
  ( pl,
    { hpwl_before;
      hpwl_after;
      moves = !moves;
      swaps = !swaps;
      reorders = !reorders;
      passes_run = !passes_run;
      skipped_cells = List.length illegal } )
