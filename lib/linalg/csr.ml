type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array; (* length nrows + 1 *)
  col_idx : int array; (* length nnz *)
  values : float array; (* length nnz *)
  sorted_rows : bool;
      (* every row's col_idx strictly increasing (implies no duplicate
         entries); Coo.to_csr always produces such matrices *)
}

let detect_sorted_rows ~nrows ~row_ptr ~col_idx =
  let ok = ref true in
  for i = 0 to nrows - 1 do
    for k = row_ptr.(i) to row_ptr.(i + 1) - 2 do
      if col_idx.(k) >= col_idx.(k + 1) then ok := false
    done
  done;
  !ok

let rows t = t.nrows
let cols t = t.ncols
let nnz t = Array.length t.values

let make ~rows ~cols ~row_ptr ~col_idx ~values =
  if rows < 0 || cols < 0 then invalid_arg "Csr.make: negative dimension";
  if Array.length row_ptr <> rows + 1 then
    invalid_arg "Csr.make: row_ptr must have length rows + 1";
  if Array.length col_idx <> Array.length values then
    invalid_arg "Csr.make: col_idx and values length mismatch";
  if row_ptr.(0) <> 0 || row_ptr.(rows) <> Array.length values then
    invalid_arg "Csr.make: row_ptr endpoints invalid";
  for i = 0 to rows - 1 do
    if row_ptr.(i) > row_ptr.(i + 1) then
      invalid_arg "Csr.make: row_ptr not monotone"
  done;
  Array.iter
    (fun j -> if j < 0 || j >= cols then invalid_arg "Csr.make: col_idx bound")
    col_idx;
  { nrows = rows;
    ncols = cols;
    row_ptr;
    col_idx;
    values;
    sorted_rows = detect_sorted_rows ~nrows:rows ~row_ptr ~col_idx }

let empty ~rows ~cols =
  { nrows = rows;
    ncols = cols;
    row_ptr = Array.make (rows + 1) 0;
    col_idx = [||];
    values = [||];
    sorted_rows = true }

let identity n =
  { nrows = n;
    ncols = n;
    row_ptr = Array.init (n + 1) (fun i -> i);
    col_idx = Array.init n (fun i -> i);
    values = Array.make n 1.0;
    sorted_rows = true }

let get t i j =
  if i < 0 || i >= t.nrows || j < 0 || j >= t.ncols then
    invalid_arg "Csr.get: index out of bounds";
  let lo = t.row_ptr.(i) and hi = t.row_ptr.(i + 1) in
  if t.sorted_rows then begin
    (* strictly increasing columns: binary search, at most one hit *)
    let rec search lo hi =
      if lo >= hi then 0.0
      else
        let mid = lo + ((hi - lo) / 2) in
        let c = t.col_idx.(mid) in
        if c = j then t.values.(mid)
        else if c < j then search (mid + 1) hi
        else search lo mid
    in
    search lo hi
  end
  else begin
    (* unsorted rows may carry duplicate entries that sum; scan them all *)
    let acc = ref 0.0 in
    for k = lo to hi - 1 do
      if t.col_idx.(k) = j then acc := !acc +. t.values.(k)
    done;
    !acc
  end

let mul_vec_into t x dst =
  if Array.length x <> t.ncols || Array.length dst <> t.nrows then
    invalid_arg "Csr.mul_vec_into: dimension mismatch";
  for i = 0 to t.nrows - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    dst.(i) <- !acc
  done

let mul_vec t x =
  let dst = Array.make t.nrows 0.0 in
  mul_vec_into t x dst;
  dst

let mul_vec_t_into t x dst =
  if Array.length x <> t.nrows || Array.length dst <> t.ncols then
    invalid_arg "Csr.mul_vec_t_into: dimension mismatch";
  Array.fill dst 0 (Array.length dst) 0.0;
  for i = 0 to t.nrows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        dst.(j) <- dst.(j) +. (t.values.(k) *. xi)
      done
  done

let mul_vec_t t x =
  let dst = Array.make t.ncols 0.0 in
  mul_vec_t_into t x dst;
  dst

let add_mul_vec t x acc =
  if Array.length x <> t.ncols || Array.length acc <> t.nrows then
    invalid_arg "Csr.add_mul_vec: dimension mismatch";
  for i = 0 to t.nrows - 1 do
    let s = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      s := !s +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    acc.(i) <- acc.(i) +. !s
  done

let add_mul_vec_t t x acc =
  if Array.length x <> t.nrows || Array.length acc <> t.ncols then
    invalid_arg "Csr.add_mul_vec_t: dimension mismatch";
  for i = 0 to t.nrows - 1 do
    let xi = x.(i) in
    if xi <> 0.0 then
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        let j = t.col_idx.(k) in
        acc.(j) <- acc.(j) +. (t.values.(k) *. xi)
      done
  done

let transpose t =
  let counts = Array.make (t.ncols + 1) 0 in
  Array.iter (fun j -> counts.(j + 1) <- counts.(j + 1) + 1) t.col_idx;
  for j = 1 to t.ncols do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let row_ptr = Array.copy counts in
  let fill_pos = Array.copy counts in
  let n = nnz t in
  let col_idx = Array.make n 0 and values = Array.make n 0.0 in
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      let pos = fill_pos.(j) in
      col_idx.(pos) <- i;
      values.(pos) <- t.values.(k);
      fill_pos.(j) <- pos + 1
    done
  done;
  { nrows = t.ncols;
    ncols = t.nrows;
    row_ptr;
    col_idx;
    values;
    sorted_rows = detect_sorted_rows ~nrows:t.ncols ~row_ptr ~col_idx }

let scale c t = { t with values = Array.map (( *. ) c) t.values }

let row_entries t i =
  if i < 0 || i >= t.nrows then invalid_arg "Csr.row_entries: row out of bounds";
  let acc = ref [] in
  for k = t.row_ptr.(i + 1) - 1 downto t.row_ptr.(i) do
    acc := (t.col_idx.(k), t.values.(k)) :: !acc
  done;
  !acc

let iter_row t i f =
  if i < 0 || i >= t.nrows then invalid_arg "Csr.iter_row: row out of bounds";
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let iter t f =
  for i = 0 to t.nrows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

let to_dense t =
  let d = Dense.create t.nrows t.ncols in
  iter t (fun i j v -> Dense.set d i j (Dense.get d i j +. v));
  d

let frobenius_norm t =
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 t.values)

let equal ?eps a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Dense.equal ?eps (to_dense a) (to_dense b)
