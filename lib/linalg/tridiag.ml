type t = { sub : float array; diag : float array; sup : float array }

exception Singular of int

let make ~sub ~diag ~sup =
  let n = Array.length diag in
  let expect = if n = 0 then 0 else n - 1 in
  if Array.length sub <> expect || Array.length sup <> expect then
    invalid_arg "Tridiag.make: band length mismatch";
  { sub; diag; sup }

let dim t = Array.length t.diag

let identity n =
  { sub = Array.make (max 0 (n - 1)) 0.0;
    diag = Array.make n 1.0;
    sup = Array.make (max 0 (n - 1)) 0.0 }

let of_symmetric ~diag ~off = make ~sub:(Array.copy off) ~diag ~sup:off

let add_scaled_identity t c =
  { t with diag = Array.map (fun v -> v +. c) t.diag }

let scale c t =
  { sub = Array.map (( *. ) c) t.sub;
    diag = Array.map (( *. ) c) t.diag;
    sup = Array.map (( *. ) c) t.sup }

let mul_vec_into t x dst =
  let n = dim t in
  if Array.length x <> n || Array.length dst <> n then
    invalid_arg "Tridiag.mul_vec_into: dimension";
  (* reads of x.(i-1)/x.(i+1) must not see freshly written dst entries *)
  if x == dst then invalid_arg "Tridiag.mul_vec_into: aliased arguments";
  for i = 0 to n - 1 do
    let acc = ref (t.diag.(i) *. x.(i)) in
    if i > 0 then acc := !acc +. (t.sub.(i - 1) *. x.(i - 1));
    if i < n - 1 then acc := !acc +. (t.sup.(i) *. x.(i + 1));
    dst.(i) <- !acc
  done

let mul_vec t x =
  let dst = Array.make (dim t) 0.0 in
  mul_vec_into t x dst;
  dst

let to_dense t =
  let n = dim t in
  Dense.init n n (fun i j ->
      if i = j then t.diag.(i)
      else if j = i + 1 then t.sup.(i)
      else if j = i - 1 then t.sub.(j)
      else 0.0)

let solve t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Tridiag.solve: dimension";
  if n = 0 then [||]
  else begin
    (* forward sweep: c' and d' of the Thomas recurrence *)
    let c' = Array.make n 0.0 and d' = Array.make n 0.0 in
    if Float.abs t.diag.(0) < 1e-300 then raise (Singular 0);
    c'.(0) <- (if n > 1 then t.sup.(0) /. t.diag.(0) else 0.0);
    d'.(0) <- b.(0) /. t.diag.(0);
    for i = 1 to n - 1 do
      let denom = t.diag.(i) -. (t.sub.(i - 1) *. c'.(i - 1)) in
      if Float.abs denom < 1e-300 then raise (Singular i);
      if i < n - 1 then c'.(i) <- t.sup.(i) /. denom;
      d'.(i) <- (b.(i) -. (t.sub.(i - 1) *. d'.(i - 1))) /. denom
    done;
    let x = Array.make n 0.0 in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

type factor = {
  f_sub : float array; (* original subdiagonal *)
  f_cprime : float array; (* Thomas c' coefficients *)
  f_denom : float array; (* forward-sweep denominators *)
}

let prefactor t =
  let n = dim t in
  let cprime = Array.make (max 0 n) 0.0 in
  let denom = Array.make (max 0 n) 0.0 in
  if n > 0 then begin
    if Float.abs t.diag.(0) < 1e-300 then raise (Singular 0);
    denom.(0) <- t.diag.(0);
    if n > 1 then cprime.(0) <- t.sup.(0) /. t.diag.(0);
    for i = 1 to n - 1 do
      let d = t.diag.(i) -. (t.sub.(i - 1) *. cprime.(i - 1)) in
      if Float.abs d < 1e-300 then raise (Singular i);
      denom.(i) <- d;
      if i < n - 1 then cprime.(i) <- t.sup.(i) /. d
    done
  end;
  { f_sub = Array.copy t.sub; f_cprime = cprime; f_denom = denom }

let solve_prefactored f b dst =
  let n = Array.length f.f_denom in
  if Array.length b <> n || Array.length dst <> n then
    invalid_arg "Tridiag.solve_prefactored: dimension";
  if n > 0 then begin
    (* forward sweep writes d' into dst, then back substitution in place *)
    dst.(0) <- b.(0) /. f.f_denom.(0);
    for i = 1 to n - 1 do
      dst.(i) <- (b.(i) -. (f.f_sub.(i - 1) *. dst.(i - 1))) /. f.f_denom.(i)
    done;
    for i = n - 2 downto 0 do
      dst.(i) <- dst.(i) -. (f.f_cprime.(i) *. dst.(i + 1))
    done
  end

(* Band LU with partial pivoting: pivoting between adjacent rows introduces
   one extra superdiagonal [sup2]. *)
let solve_pivoting t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Tridiag.solve_pivoting: dimension";
  if n = 0 then [||]
  else begin
    let diag = Array.copy t.diag in
    let sup = Array.append (Array.copy t.sup) [| 0.0 |] in
    let sup2 = Array.make n 0.0 in
    let sub = Array.append (Array.copy t.sub) [| 0.0 |] in
    let rhs = Array.copy b in
    let scale_ref =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 diag
    in
    let tol = 1e-14 *. Float.max 1.0 scale_ref in
    for k = 0 to n - 2 do
      if Float.abs sub.(k) > Float.abs diag.(k) then begin
        (* swap rows k and k+1 *)
        let swap a i j =
          let tmp = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- tmp
        in
        let tmp = diag.(k) in
        diag.(k) <- sub.(k);
        sub.(k) <- tmp;
        let tmp = sup.(k) in
        sup.(k) <- diag.(k + 1);
        diag.(k + 1) <- tmp;
        let tmp = sup2.(k) in
        sup2.(k) <- sup.(k + 1);
        sup.(k + 1) <- tmp;
        swap rhs k (k + 1)
      end;
      if Float.abs diag.(k) <= tol then raise (Singular k);
      let m = sub.(k) /. diag.(k) in
      diag.(k + 1) <- diag.(k + 1) -. (m *. sup.(k));
      sup.(k + 1) <- sup.(k + 1) -. (m *. sup2.(k));
      rhs.(k + 1) <- rhs.(k + 1) -. (m *. rhs.(k))
    done;
    if Float.abs diag.(n - 1) <= tol then raise (Singular (n - 1));
    let x = Array.make n 0.0 in
    x.(n - 1) <- rhs.(n - 1) /. diag.(n - 1);
    if n >= 2 then
      x.(n - 2) <- (rhs.(n - 2) -. (sup.(n - 2) *. x.(n - 1))) /. diag.(n - 2);
    for i = n - 3 downto 0 do
      x.(i) <-
        (rhs.(i) -. (sup.(i) *. x.(i + 1)) -. (sup2.(i) *. x.(i + 2)))
        /. diag.(i)
    done;
    x
  end

let is_diagonally_dominant t =
  let n = dim t in
  let ok = ref true in
  for i = 0 to n - 1 do
    let off =
      (if i > 0 then Float.abs t.sub.(i - 1) else 0.0)
      +. (if i < n - 1 then Float.abs t.sup.(i) else 0.0)
    in
    if Float.abs t.diag.(i) < off then ok := false
  done;
  !ok
