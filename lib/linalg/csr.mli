(** Compressed sparse row matrices.

    The circuit constraint matrices ([B], [E]) and the LCP system matrix
    blocks are stored in this format; products with vectors are O(nnz). *)

type t

val rows : t -> int
val cols : t -> int
val nnz : t -> int

val make :
  rows:int ->
  cols:int ->
  row_ptr:int array ->
  col_idx:int array ->
  values:float array ->
  t
(** Builds from raw CSR arrays. Validates monotone [row_ptr], bounds of
    [col_idx], and array lengths; raises [Invalid_argument] on violation.
    Column indices within a row need not be sorted (the constructors in
    {!Coo} produce sorted rows). *)

val empty : rows:int -> cols:int -> t

val identity : int -> t

val get : t -> int -> int -> float
(** Lookup; 0.0 when absent. O(log row nnz) binary search when the row's
    column indices are strictly increasing (always true for matrices from
    {!Coo.to_csr}); falls back to an O(row nnz) duplicate-summing scan for
    raw {!make} inputs with unsorted or repeated columns. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. *)

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into a x dst] writes [A x] into [dst] (no allocation). *)

val mul_vec_t : t -> Vec.t -> Vec.t
(** [mul_vec_t a x] is [A^T x]. *)

val mul_vec_t_into : t -> Vec.t -> Vec.t -> unit

val add_mul_vec : t -> Vec.t -> Vec.t -> unit
(** [add_mul_vec a x acc] updates [acc <- acc + A x]. *)

val add_mul_vec_t : t -> Vec.t -> Vec.t -> unit
(** [add_mul_vec_t a x acc] updates [acc <- acc + A^T x]. *)

val transpose : t -> t

val scale : float -> t -> t

val row_entries : t -> int -> (int * float) list
(** Entries of row [i] as [(col, value)] pairs, in storage order. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterates all stored entries in row-major order. *)

val to_dense : t -> Dense.t

val frobenius_norm : t -> float

val equal : ?eps:float -> t -> t -> bool
(** Structural equality of the represented matrices (compares dense
    realizations entry by entry; intended for tests on small matrices). *)
