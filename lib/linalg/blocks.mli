(** Chain-partitioned arrowhead systems.

    When a multi-row-height cell is split into [d] single-row subcells
    (variables), the equality coupling [E x = 0] is written in star form:
    one row [x_spoke - x_hub = 0] per non-hub subcell. The induced matrix
    [E^T E] is then block diagonal with one small arrowhead block per cell
    chain, and systems of the form [(alpha I + coef E^T E) y = b] decompose
    into independent O(d) closed-form solves. This module owns that chain
    partition and the associated kernels; it is the reason the MMSIM
    top-block solve costs O(n) per iteration regardless of cell heights. *)

type t

val make : nvars:int -> int array list -> t
(** [make ~nvars chains] builds the partition. Each chain is an array of
    variable indices; index 0 is the hub. Chains of length < 2 are ignored.
    @raise Invalid_argument if an index is out of range or appears in two
    chains. *)

val of_array : nvars:int -> int array array -> t
(** {!make} from a chains array, taking ownership of it when no chain is
    degenerate (no list intermediates — the constructor the streaming
    model build uses). Same validation and semantics as {!make}. *)

val nvars : t -> int

val num_chains : t -> int
(** Number of chains of length >= 2. *)

val num_constraints : t -> int
(** Total number of rows of [E]: sum over chains of (length - 1). *)

val chain_of_var : t -> int -> int option
(** Chain id containing the variable, if any. *)

val chain_vars : t -> int -> int array
(** Variables of chain [c], hub first. *)

val apply_ete : t -> Vec.t -> Vec.t
(** [apply_ete t x] is [E^T E x]. *)

val apply_ete_into : t -> Vec.t -> Vec.t -> unit

val apply_ete_chains : t -> lo:int -> hi:int -> Vec.t -> Vec.t -> unit
(** [apply_ete_chains t ~lo ~hi x dst] writes the [E^T E x] entries of
    chains [lo, hi) (and only those chains' variables) into [dst].
    Disjoint chain ranges touch disjoint slices of [dst], so the range
    decomposition may run on separate domains; the caller zeroes the
    entries of chain-free variables once up front. Covering the full
    range reproduces {!apply_ete_into} bit for bit. *)

val solve_shifted : alpha:float -> coef:float -> t -> Vec.t -> Vec.t
(** [solve_shifted ~alpha ~coef t b] solves [(alpha I + coef E^T E) y = b].
    Requires [alpha > 0] and [coef >= 0]; raises [Invalid_argument]
    otherwise. *)

val solve_shifted_into : alpha:float -> coef:float -> t -> Vec.t -> Vec.t -> unit
(** In-place variant writing into a caller-provided destination (the MMSIM
    hot path). [b] and the destination may be the same array. *)

val solve_shifted_chains :
  alpha:float -> coef:float -> t -> lo:int -> hi:int -> Vec.t -> Vec.t -> unit
(** The arrowhead solves of chains [lo, hi) only, writing exactly those
    chains' entries of the destination; disjoint ranges are domain-safe
    and [b] may alias the destination (chain inputs are staged). *)

val solve_shifted_singles :
  alpha:float -> t -> lo:int -> hi:int -> Vec.t -> Vec.t -> unit
(** The diagonal part of {!solve_shifted_into}: for variables in
    [lo, hi) that belong to no chain, writes [b.(v) / alpha]; other
    entries are untouched. Disjoint variable ranges are domain-safe.
    Running {!solve_shifted_chains} then this over the full ranges
    reproduces {!solve_shifted_into} bit for bit. *)

val solve_shifted_sparse :
  alpha:float -> coef:float -> t -> (int * float) list -> (int * float) list
(** Solves the shifted system for a sparse right-hand side, returning only
    the (generally few) nonzero result entries: untouched chains contribute
    nothing, touched chains contribute all their variables. Used to form
    the tridiagonal part of the Schur complement in O(m). *)

val mismatch : t -> Vec.t -> float
(** [mismatch t x] is the largest |x_spoke - x_hub| over all chains — the
    subcell mismatch distance the paper's lambda penalty controls. *)

val average_into : t -> Vec.t -> unit
(** Replaces every chain's values by their mean (multi-row cell
    restoration). *)

val e_matrix : t -> Csr.t
(** The explicit [E] matrix (rows ordered chain by chain, spokes in chain
    order); for tests and dense cross-checks. *)

val all_double : t -> bool
(** True when every chain has exactly two variables — the condition under
    which the paper's closed-form Sherman-Morrison inverse
    [(Q + lambda E^T E)^-1 = I - lambda/(2 lambda + 1) E^T E] is exact. *)
