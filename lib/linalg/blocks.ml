type t = {
  nvars : int;
  chains : int array array; (* hub first; every chain has length >= 2 *)
  chain_of : int array; (* var -> chain id, or -1 *)
}

let of_array ~nvars chains =
  if nvars < 0 then invalid_arg "Blocks.make: negative nvars";
  let chains =
    if Array.for_all (fun c -> Array.length c >= 2) chains then chains
    else begin
      (* drop degenerate chains without list intermediates *)
      let kept = ref 0 in
      Array.iter (fun c -> if Array.length c >= 2 then incr kept) chains;
      let out = Array.make !kept [||] in
      let k = ref 0 in
      Array.iter
        (fun c ->
          if Array.length c >= 2 then begin
            out.(!k) <- c;
            incr k
          end)
        chains;
      out
    end
  in
  let chain_of = Array.make nvars (-1) in
  Array.iteri
    (fun c vars ->
      Array.iter
        (fun v ->
          if v < 0 || v >= nvars then
            invalid_arg "Blocks.make: variable index out of range";
          if chain_of.(v) <> -1 then
            invalid_arg "Blocks.make: variable in two chains";
          chain_of.(v) <- c)
        vars)
    chains;
  { nvars; chains; chain_of }

let make ~nvars chain_list = of_array ~nvars (Array.of_list chain_list)

let nvars t = t.nvars
let num_chains t = Array.length t.chains

let num_constraints t =
  Array.fold_left (fun acc c -> acc + Array.length c - 1) 0 t.chains

let chain_of_var t v =
  if v < 0 || v >= t.nvars then invalid_arg "Blocks.chain_of_var: out of range";
  if t.chain_of.(v) = -1 then None else Some t.chain_of.(v)

let chain_vars t c = Array.copy t.chains.(c)

let check_chain_range t ~lo ~hi name =
  if lo < 0 || hi > Array.length t.chains || lo > hi then
    invalid_arg (name ^ ": chain range out of bounds")

(* E^T E contribution of chains [lo, hi) only; touches exactly those
   chains' variables, so disjoint ranges write disjoint slices of [dst]
   and the range decomposition is safe to run on separate domains. The
   caller is responsible for zeroing (or otherwise initializing) the
   entries of variables outside every chain. *)
let apply_ete_chains t ~lo ~hi x dst =
  check_chain_range t ~lo ~hi "Blocks.apply_ete_chains";
  for c = lo to hi - 1 do
    let vars = t.chains.(c) in
    let hub = vars.(0) in
    let d = Array.length vars in
    let sum_spokes = ref 0.0 in
    for k = 1 to d - 1 do
      let s = vars.(k) in
      dst.(s) <- x.(s) -. x.(hub);
      sum_spokes := !sum_spokes +. x.(s)
    done;
    dst.(hub) <- (float_of_int (d - 1) *. x.(hub)) -. !sum_spokes
  done

let apply_ete_into t x dst =
  if Array.length x <> t.nvars || Array.length dst <> t.nvars then
    invalid_arg "Blocks.apply_ete_into: dimension mismatch";
  (* write result; safe even if x == dst is NOT allowed, so stage per chain *)
  if x == dst then invalid_arg "Blocks.apply_ete_into: aliased arguments";
  Array.fill dst 0 t.nvars 0.0;
  apply_ete_chains t ~lo:0 ~hi:(Array.length t.chains) x dst

let apply_ete t x =
  let dst = Array.make t.nvars 0.0 in
  apply_ete_into t x dst;
  dst

(* Arrowhead solve for one chain of (alpha I + coef E^T E):
     hub row:   (alpha + coef (d-1)) y_h - coef sum_k y_sk = b_h
     spoke row: (alpha + coef) y_sk - coef y_h             = b_sk
   Eliminating the spokes gives
     y_h = (b_h + coef/(alpha+coef) * sum_k b_sk)
           * (alpha + coef) / (alpha (alpha + coef d)). *)
let solve_chain ~alpha ~coef vars b set =
  let d = Array.length vars in
  let hub = vars.(0) in
  let sum_spoke_b = ref 0.0 in
  for k = 1 to d - 1 do
    sum_spoke_b := !sum_spoke_b +. b vars.(k)
  done;
  let ac = alpha +. coef in
  let y_hub =
    (b hub +. (coef /. ac *. !sum_spoke_b))
    *. ac
    /. (alpha *. (alpha +. (coef *. float_of_int d)))
  in
  set hub y_hub;
  for k = 1 to d - 1 do
    let s = vars.(k) in
    set s ((b s +. (coef *. y_hub)) /. ac)
  done

let check_params ~alpha ~coef =
  if not (alpha > 0.0) then invalid_arg "Blocks.solve_shifted: alpha <= 0";
  if coef < 0.0 then invalid_arg "Blocks.solve_shifted: coef < 0"

(* arrowhead solves for chains [lo, hi) only; touches exactly those
   chains' entries of [dst], so disjoint ranges are domain-safe.
   Allocation-free: this runs once per MMSIM iteration, so the arrowhead
   arithmetic of [solve_chain] is unrolled here over [b]/[dst] directly.
   b == dst is safe: y_hub depends only on b values read before the hub
   write, and each spoke reads its own b.(s) before overwriting it. *)
let solve_shifted_chains ~alpha ~coef t ~lo ~hi b dst =
  check_params ~alpha ~coef;
  check_chain_range t ~lo ~hi "Blocks.solve_shifted_chains";
  let ac = alpha +. coef in
  for c = lo to hi - 1 do
    let vars = t.chains.(c) in
    let d = Array.length vars in
    let hub = vars.(0) in
    let sum_spoke_b = ref 0.0 in
    for k = 1 to d - 1 do
      sum_spoke_b := !sum_spoke_b +. b.(vars.(k))
    done;
    let y_hub =
      (b.(hub) +. (coef /. ac *. !sum_spoke_b))
      *. ac
      /. (alpha *. (alpha +. (coef *. float_of_int d)))
    in
    dst.(hub) <- y_hub;
    for k = 1 to d - 1 do
      let s = vars.(k) in
      dst.(s) <- (b.(s) +. (coef *. y_hub)) /. ac
    done
  done

(* the diagonal part of the shifted solve: variables in [lo, hi) that
   belong to no chain; disjoint variable ranges are domain-safe *)
let solve_shifted_singles ~alpha t ~lo ~hi b dst =
  if not (alpha > 0.0) then
    invalid_arg "Blocks.solve_shifted_singles: alpha <= 0";
  if lo < 0 || hi > t.nvars || lo > hi then
    invalid_arg "Blocks.solve_shifted_singles: variable range out of bounds";
  let inv_alpha = 1.0 /. alpha in
  for v = lo to hi - 1 do
    if t.chain_of.(v) = -1 then dst.(v) <- b.(v) *. inv_alpha
  done

let solve_shifted_into ~alpha ~coef t b dst =
  check_params ~alpha ~coef;
  if Array.length b <> t.nvars || Array.length dst <> t.nvars then
    invalid_arg "Blocks.solve_shifted_into: dimension mismatch";
  solve_shifted_chains ~alpha ~coef t ~lo:0 ~hi:(Array.length t.chains) b dst;
  solve_shifted_singles ~alpha t ~lo:0 ~hi:t.nvars b dst

let solve_shifted ~alpha ~coef t b =
  let dst = Array.make t.nvars 0.0 in
  solve_shifted_into ~alpha ~coef t b dst;
  dst

let solve_shifted_sparse ~alpha ~coef t entries =
  check_params ~alpha ~coef;
  let touched = Hashtbl.create 8 in
  let singles = ref [] in
  List.iter
    (fun (v, value) ->
      if v < 0 || v >= t.nvars then
        invalid_arg "Blocks.solve_shifted_sparse: index out of range";
      match t.chain_of.(v) with
      | -1 -> singles := (v, value /. alpha) :: !singles
      | c ->
        let prev = try Hashtbl.find touched c with Not_found -> [] in
        Hashtbl.replace touched c ((v, value) :: prev))
    entries;
  let results = ref !singles in
  Hashtbl.iter
    (fun c chain_entries ->
      let vars = t.chains.(c) in
      let b v =
        List.fold_left
          (fun acc (v', value) -> if v' = v then acc +. value else acc)
          0.0 chain_entries
      in
      solve_chain ~alpha ~coef vars b (fun v y ->
          results := (v, y) :: !results))
    touched;
  !results

let mismatch t x =
  if Array.length x <> t.nvars then invalid_arg "Blocks.mismatch: dimension";
  Array.fold_left
    (fun acc vars ->
      let hub = x.(vars.(0)) in
      let worst = ref acc in
      for k = 1 to Array.length vars - 1 do
        worst := Float.max !worst (Float.abs (x.(vars.(k)) -. hub))
      done;
      !worst)
    0.0 t.chains

let average_into t x =
  if Array.length x <> t.nvars then invalid_arg "Blocks.average_into: dimension";
  Array.iter
    (fun vars ->
      let sum = Array.fold_left (fun acc v -> acc +. x.(v)) 0.0 vars in
      let mean = sum /. float_of_int (Array.length vars) in
      Array.iter (fun v -> x.(v) <- mean) vars)
    t.chains

let e_matrix t =
  let coo = Coo.create ~rows:(num_constraints t) ~cols:t.nvars in
  let row = ref 0 in
  Array.iter
    (fun vars ->
      let hub = vars.(0) in
      for k = 1 to Array.length vars - 1 do
        Coo.add coo !row hub (-1.0);
        Coo.add coo !row vars.(k) 1.0;
        incr row
      done)
    t.chains;
  Coo.to_csr coo

let all_double t =
  Array.for_all (fun vars -> Array.length vars = 2) t.chains
