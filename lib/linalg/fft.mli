(** Iterative radix-2 FFT and the trigonometric transforms the density
    engine needs (DCT-II / DCT-III / DST-III), in the allocation-free
    style of the MMSIM kernels.

    A {!plan} precomputes the bit-reversal permutation, the twiddle
    tables and the scratch buffers for one transform length [n] (a power
    of two); every transform below then runs without allocating, so the
    per-round Poisson solves of the global placer stay off the minor
    heap. The real transforms ride on one complex FFT of the same length
    (Makhoul's re-indexing), not a zero-padded double-length FFT.

    Conventions (all unnormalized sums, [n] the plan length):

    - [fft]:   [X\[k\] = sum_i x\[i\] exp (-2 pi i k l / n)]
    - [ifft]:  exact inverse of [fft] (includes the [1/n] scale)
    - [dct2]:  [X\[k\] = sum_i x\[i\] cos (pi k (2i+1) / 2n)]
    - [idct2]: exact inverse of [dct2], i.e.
               [x\[i\] = (2/n) (X\[0\]/2 + sum_{k>=1} X\[k\] cos ...)]
    - [dct3]:  the plain cosine evaluation
               [c\[i\] = sum_k a\[k\] cos (pi k (2i+1) / 2n)]
               (full-weight DC term, no scale)
    - [dst3]:  [s\[i\] = sum_{k>=1} b\[k\] sin (pi k (2i+1) / 2n)]
               ([b\[0\]] is ignored — the sine basis has no DC) *)

type plan

val plan : int -> plan
(** [plan n] for transforms of length [n].
    @raise Invalid_argument unless [n] is a positive power of two. *)

val length : plan -> int

val fft : plan -> re:float array -> im:float array -> unit
(** In-place forward DFT of the complex sequence [(re, im)].
    @raise Invalid_argument on a length mismatch with the plan. *)

val ifft : plan -> re:float array -> im:float array -> unit
(** In-place inverse DFT, scaled by [1/n] ([ifft plan (fft plan x) = x]). *)

val dct2 : plan -> src:float array -> dst:float array -> unit
(** Forward DCT-II of [src] into [dst] ([src == dst] is allowed; the
    input is staged through plan scratch). *)

val idct2 : plan -> src:float array -> dst:float array -> unit
(** Exact inverse of {!dct2}. *)

val dct3 : plan -> src:float array -> dst:float array -> unit
(** Unnormalized cosine-series evaluation (see above) — the synthesis
    step of the spectral Poisson solver. *)

val dst3 : plan -> src:float array -> dst:float array -> unit
(** Unnormalized sine-series evaluation — the spectral x/y derivative
    used for the electrostatic field. [src.(0)] is ignored. *)
