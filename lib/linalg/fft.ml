(* Iterative radix-2 Cooley-Tukey with precomputed tables, plus the
   DCT/DST family via Makhoul's same-length re-indexing.

   Everything mutable a transform needs lives in the plan: the
   bit-reversal permutation, a half-length twiddle table (stage [len]
   reads it at stride [n/len]), the quarter-wave table for the real
   transforms' pre/post twiddles, and two scratch buffers. Transforms
   allocate nothing, so a caller looping over grid rows and columns
   (the Poisson engine) keeps the minor heap quiet. *)

type plan = {
  n : int;
  rev : int array;  (* bit-reversal permutation *)
  twc : float array;  (* twc.(j) = cos (2 pi j / n), j < n/2 *)
  tws : float array;  (* tws.(j) = sin (2 pi j / n), j < n/2 *)
  qc : float array;  (* qc.(k) = cos (pi k / 2n), k < n *)
  qs : float array;  (* qs.(k) = sin (pi k / 2n), k < n *)
  sre : float array;  (* scratch, length n *)
  sim : float array;
  srev : float array;  (* staging for dst3's coefficient reversal *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let plan n =
  if not (is_pow2 n) then invalid_arg "Fft.plan: length must be a power of two";
  let rev = Array.make n 0 in
  let bits = ref 0 in
  while 1 lsl !bits < n do
    incr bits
  done;
  for i = 0 to n - 1 do
    let r = ref 0 in
    for b = 0 to !bits - 1 do
      if i land (1 lsl b) <> 0 then r := !r lor (1 lsl (!bits - 1 - b))
    done;
    rev.(i) <- !r
  done;
  let half = max 1 (n / 2) in
  let twc = Array.init half (fun j -> cos (2.0 *. Float.pi *. float_of_int j /. float_of_int n))
  and tws = Array.init half (fun j -> sin (2.0 *. Float.pi *. float_of_int j /. float_of_int n)) in
  let qc = Array.init n (fun k -> cos (Float.pi *. float_of_int k /. (2.0 *. float_of_int n)))
  and qs = Array.init n (fun k -> sin (Float.pi *. float_of_int k /. (2.0 *. float_of_int n))) in
  { n; rev; twc; tws; qc; qs;
    sre = Array.make n 0.0;
    sim = Array.make n 0.0;
    srev = Array.make n 0.0 }

let length p = p.n

let check p re im =
  if Array.length re <> p.n || Array.length im <> p.n then
    invalid_arg "Fft: array length does not match the plan"

(* forward DFT, in place; twiddle sign -1 = forward, +1 = inverse *)
let transform p re im sign =
  let n = p.n in
  (* bit-reversal permutation: swap once per out-of-place pair *)
  for i = 0 to n - 1 do
    let j = p.rev.(i) in
    if j > i then begin
      let tr = re.(i) in
      re.(i) <- re.(j);
      re.(j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(j);
      im.(j) <- ti
    end
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let stride = n / !len in
    let i = ref 0 in
    while !i < n do
      for j = 0 to half - 1 do
        let wc = p.twc.(j * stride)
        and ws = sign *. p.tws.(j * stride) in
        let a = !i + j and b = !i + j + half in
        let xr = re.(b) and xi = im.(b) in
        (* w = wc + i ws; forward uses conj via sign *)
        let tr = (wc *. xr) +. (ws *. xi) in
        let ti = (wc *. xi) -. (ws *. xr) in
        re.(b) <- re.(a) -. tr;
        im.(b) <- im.(a) -. ti;
        re.(a) <- re.(a) +. tr;
        im.(a) <- im.(a) +. ti
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let fft p ~re ~im =
  check p re im;
  transform p re im 1.0

let ifft p ~re ~im =
  check p re im;
  transform p re im (-1.0);
  let inv = 1.0 /. float_of_int p.n in
  for i = 0 to p.n - 1 do
    re.(i) <- re.(i) *. inv;
    im.(i) <- im.(i) *. inv
  done

let check1 p src dst =
  if Array.length src <> p.n || Array.length dst <> p.n then
    invalid_arg "Fft: array length does not match the plan"

(* DCT-II (Makhoul): permute evens forward / odds backward, one complex
   FFT, then X[k] = Re (e^{-i pi k / 2n} V[k]). *)
let dct2 p ~src ~dst =
  check1 p src dst;
  let n = p.n in
  if n = 1 then dst.(0) <- src.(0)
  else begin
    for i = 0 to ((n + 1) / 2) - 1 do
      p.sre.(i) <- src.(2 * i)
    done;
    for i = 0 to (n / 2) - 1 do
      p.sre.(n - 1 - i) <- src.((2 * i) + 1)
    done;
    Array.fill p.sim 0 n 0.0;
    transform p p.sre p.sim 1.0;
    for k = 0 to n - 1 do
      dst.(k) <- (p.qc.(k) *. p.sre.(k)) +. (p.qs.(k) *. p.sim.(k))
    done
  end

(* Shared synthesis core: from real spectra [a] build
   V[k] = e^{i pi k / 2n} (a[k] - i a[n-k]) (DC weight [dc] on a[0]),
   inverse-FFT without the 1/n, un-permute, and scale by [scale].
   [inverse = true] picks dc = 1, scale = 1/n — the exact inverse of
   dct2; [inverse = false] picks dc = 2, scale = 1/2 — the full-weight
   cosine evaluation. The weights are computed locally from the flag
   (rather than passed as float arguments) so they never cross a call
   boundary boxed. *)
let synth p ~src ~dst ~inverse =
  let n = p.n in
  let dc = if inverse then 1.0 else 2.0 in
  let scale = if inverse then 1.0 /. float_of_int n else 0.5 in
  if n = 1 then dst.(0) <- dc *. scale *. src.(0)
  else begin
    p.sre.(0) <- dc *. src.(0);
    p.sim.(0) <- 0.0;
    for k = 1 to n - 1 do
      let a = src.(k) and b = src.(n - k) in
      (* (qc + i qs) (a - i b) *)
      p.sre.(k) <- (p.qc.(k) *. a) +. (p.qs.(k) *. b);
      p.sim.(k) <- (p.qs.(k) *. a) -. (p.qc.(k) *. b)
    done;
    transform p p.sre p.sim (-1.0);
    for i = 0 to ((n + 1) / 2) - 1 do
      dst.(2 * i) <- scale *. p.sre.(i)
    done;
    for i = 0 to (n / 2) - 1 do
      dst.((2 * i) + 1) <- scale *. p.sre.(n - 1 - i)
    done
  end

let idct2 p ~src ~dst =
  check1 p src dst;
  synth p ~src ~dst ~inverse:true

let dct3 p ~src ~dst =
  check1 p src dst;
  synth p ~src ~dst ~inverse:false

(* DST-III from DCT-III: with a[0] = 0, a[j] = b[n-j],
   s[i] = (-1)^i sum_j a[j] cos (pi j (2i+1) / 2n) — so even output
   positions keep the cosine evaluation's sign and odd ones flip it. *)
let dst3 p ~src ~dst =
  check1 p src dst;
  let n = p.n in
  if n = 1 then dst.(0) <- 0.0
  else begin
    p.srev.(0) <- 0.0;
    for j = 1 to n - 1 do
      p.srev.(j) <- src.(n - j)
    done;
    synth p ~src:p.srev ~dst ~inverse:false;
    let i = ref 1 in
    while !i < n do
      dst.(!i) <- -.dst.(!i);
      i := !i + 2
    done
  end
