(** Tridiagonal systems.

    The MMSIM bottom-block solve works on [(1/theta) D + I] where
    [D = tridiag(B Q~^-1 B^T)] — a symmetric tridiagonal matrix. The Thomas
    algorithm solves it in O(n); a partial-pivoting variant is provided for
    matrices that are not diagonally dominant. *)

type t = {
  sub : float array;  (** subdiagonal, length n-1 (empty when n <= 1) *)
  diag : float array;  (** main diagonal, length n *)
  sup : float array;  (** superdiagonal, length n-1 *)
}

val make : sub:float array -> diag:float array -> sup:float array -> t
(** Validates the band lengths. Raises [Invalid_argument] on mismatch. *)

val dim : t -> int

val identity : int -> t

val of_symmetric : diag:float array -> off:float array -> t
(** [of_symmetric ~diag ~off] builds the symmetric tridiagonal matrix with
    the given main diagonal and off-diagonal. *)

val add_scaled_identity : t -> float -> t
(** [add_scaled_identity t c] is [t + c I]. *)

val scale : float -> t -> t

val mul_vec : t -> Vec.t -> Vec.t

val mul_vec_into : t -> Vec.t -> Vec.t -> unit
(** [mul_vec_into t x dst] writes [t x] into [dst] (no allocation).
    @raise Invalid_argument when [x == dst] or on dimension mismatch. *)

val to_dense : t -> Dense.t

exception Singular of int

val solve : t -> Vec.t -> Vec.t
(** Thomas algorithm (no pivoting). Fast path for diagonally dominant or
    positive definite systems.
    @raise Singular when a pivot underflows. *)

type factor
(** Precomputed Thomas sweep coefficients for a fixed matrix: repeated
    solves against the same matrix skip the pivot recurrence. *)

val prefactor : t -> factor
(** @raise Singular when a pivot underflows. *)

val solve_prefactored : factor -> Vec.t -> Vec.t -> unit
(** [solve_prefactored f b dst] solves into [dst]; [b] and [dst] may be
    the same array. *)

val solve_pivoting : t -> Vec.t -> Vec.t
(** Gaussian elimination with partial pivoting restricted to the band
    (fill-in of one extra superdiagonal). Slightly slower, unconditionally
    stable for nonsingular systems.
    @raise Singular when the matrix is numerically singular. *)

val is_diagonally_dominant : t -> bool
(** Weak row diagonal dominance — a sufficient condition for the plain
    Thomas algorithm to be stable. *)
