open Mclh_circuit

type kind = Fence_dense | Fence_cross | Fence_oversub | Md3_mix | Oversub

let all = [ Fence_dense; Fence_cross; Fence_oversub; Md3_mix; Oversub ]

let name = function
  | Fence_dense -> "fence-dense"
  | Fence_cross -> "fence-cross"
  | Fence_oversub -> "fence-oversub"
  | Md3_mix -> "md3-mix"
  | Oversub -> "oversub"

let of_name s = List.find_opt (fun k -> name k = s) all

let names = List.map name all

(* base spec for the generated kinds: ~660 cells at scale 1, dense enough
   that the repair paths actually run but small enough for CI *)
let spec ~label ~density scale =
  Spec.scaled scale
    { Spec.name = label; singles = 600; doubles = 60; density;
      gp_hpwl_m = 0.0 }

let generated ~label ~density ~options ~seed scale =
  Generate.generate
    ~options:{ options with Generate.seed }
    (spec ~label ~density scale)

(* reassign default-territory cells to region [k] until the members' area
   clearly exceeds the region's raw area — infeasible by construction
   (the usable capacity is at most the raw area) *)
let oversubscribe_region (inst : Generate.instance) k =
  let d = inst.Generate.design in
  let reg_area = Region.area d.Design.regions.(k) in
  let member_area =
    Array.fold_left
      (fun acc (c : Cell.t) ->
        if c.Cell.region = Some k then acc + Cell.area c else acc)
      0 d.Design.cells
  in
  let extra = ref (max 0 ((2 * reg_area) - member_area)) in
  let cells =
    Array.map
      (fun (c : Cell.t) ->
        if c.Cell.region = None && !extra > 0 then begin
          extra := !extra - Cell.area c;
          Cell.make ~id:c.Cell.id ~name:c.Cell.name ~width:c.Cell.width
            ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail ~region:k ()
        end
        else c)
      d.Design.cells
  in
  let design =
    Design.make ~blockages:d.Design.blockages ~regions:d.Design.regions
      ~name:(d.Design.name ^ "-oversub") ~chip:d.Design.chip ~cells
      ~global:d.Design.global ~nets:d.Design.nets ()
  in
  (* the packed witness no longer honors the inflated membership *)
  { Generate.design; reference = design.Design.global }

(* hand-built infeasible chip: total cell area ~15% above chip capacity,
   spread deterministically so every legalizer gets to try (and must fail
   with a typed error, not an exception) *)
let oversub_design ~seed scale =
  let num_rows = 8 in
  let num_sites = max 20 (int_of_float (60.0 *. scale)) in
  let chip = Chip.make ~num_rows ~num_sites () in
  let w = 5 in
  let count = (115 * num_rows * num_sites / 100 / w) + 1 in
  let cells = Array.init count (fun id -> Cell.make ~id ~width:w ~height:1 ()) in
  let state = ref (max 1 seed) in
  let next range =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod range
  in
  let xs = Array.init count (fun _ -> float_of_int (next (num_sites - w + 1))) in
  let ys = Array.init count (fun _ -> float_of_int (next num_rows)) in
  let global = Placement.make ~xs ~ys in
  let design =
    Design.make ~name:"oversub" ~chip ~cells ~global
      ~nets:(Netlist.empty ~num_cells:count) ()
  in
  { Generate.design; reference = global }

let generate ?(seed = 1) ?(scale = 1.0) kind =
  let base = Generate.default_options in
  match kind with
  | Fence_dense ->
    (* density as high as the witness packer still handles with this many
       fences: the territories run close to capacity without making the
       generator itself give up *)
    generated ~label:"fence-dense" ~density:0.78 ~seed scale
      ~options:
        { base with
          (* fewer fences on small chips: each fence has a minimum width,
             so a tiny chip cannot host six of them *)
          Generate.fence_count =
            max 2 (min 6 (int_of_float (6.0 *. scale))) }
  | Fence_cross ->
    (* violent perturbation: members land far outside (or straddling)
       their fence, so the territory flow starts from a bad placement *)
    generated ~label:"fence-cross" ~density:0.75 ~seed scale
      ~options:
        { base with
          Generate.fence_count = 4;
          noise_x_sigma = 30.0;
          noise_y_sigma = 3.0;
          hotspots = 5;
          hotspot_strength = 0.08 }
  | Fence_oversub ->
    let inst =
      generated ~label:"fence-oversub" ~density:0.7 ~seed scale
        ~options:{ base with Generate.fence_count = 1 }
    in
    if Array.length inst.Generate.design.Design.regions = 0 then inst
    else oversubscribe_region inst 0
  | Md3_mix ->
    generated ~label:"md3-mix" ~density:0.8 ~seed scale
      ~options:
        { base with
          Generate.tall_cell_fraction = 0.6;
          blockage_fraction = 0.1;
          blockage_count = 4 }
  | Oversub -> oversub_design ~seed scale
