open Mclh_circuit

type options = {
  seed : int;
  single_width_range : int * int;
  double_width_range : int * int;
  tall_cell_fraction : float;
  sites_per_row_ratio : float;
  noise_x_sigma : float;
  noise_y_sigma : float;
  hotspots : int;
  hotspot_strength : float;
  nets_per_cell : float;
  single_height_only : bool;
  blockage_fraction : float;
  blockage_count : int;
  fence_count : int;
}

let default_options =
  { seed = 1;
    single_width_range = (2, 10);
    double_width_range = (1, 5);
    tall_cell_fraction = 0.0;
    sites_per_row_ratio = 10.0;
    noise_x_sigma = 4.0;
    noise_y_sigma = 0.12;
    hotspots = 3;
    hotspot_strength = 0.02;
    nets_per_cell = 1.2;
    single_height_only = false;
    blockage_fraction = 0.0;
    blockage_count = 4;
    fence_count = 0 }

type instance = { design : Design.t; reference : Placement.t }

(* random non-overlapping blockage rectangles covering roughly the target
   fraction of the chip *)
let make_blockages rng options (chip : Chip.t) =
  if options.blockage_fraction <= 0.0 || options.blockage_count <= 0 then [||]
  else begin
    let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
    let target_area =
      options.blockage_fraction *. float_of_int (Chip.capacity chip)
    in
    let per_block = target_area /. float_of_int options.blockage_count in
    let acc = ref [] in
    let overlaps (r0, h0, x0, w0) (b : Blockage.t) =
      r0 < b.Blockage.row + b.Blockage.height
      && b.Blockage.row < r0 + h0
      && x0 < b.Blockage.x + b.Blockage.width
      && b.Blockage.x < x0 + w0
    in
    let attempts = ref 0 in
    while List.length !acc < options.blockage_count && !attempts < 200 do
      incr attempts;
      (* aspect: blockages a few rows tall, wide in x *)
      let h = min num_rows (2 + Rng.int rng (max 1 (num_rows / 4))) in
      let w =
        max 2 (min (num_sites - 2) (int_of_float (per_block /. float_of_int h)))
      in
      if w >= 2 && h >= 1 && w < num_sites && h <= num_rows then begin
        let row = Rng.int rng (num_rows - h + 1) in
        let x = Rng.int rng (num_sites - w + 1) in
        if not (List.exists (overlaps (row, h, x, w)) !acc) then
          acc := Blockage.make ~row ~height:h ~x ~width:w :: !acc
      end
    done;
    Array.of_list (List.rev !acc)
  end

(* Shuffled processing order with multi-row cells first (they are the
   hardest to fit). Built by two passes over the shuffled index array
   into a preallocated output — the historical [multi @ single] list
   construction allocated three lists of a cons cell per cell, which at
   full scale (1.3M cells) dominated packing's minor-heap traffic. The
   order (and the RNG draw) is unchanged. *)
let pack_order rng (cells : Cell.t array) =
  let n = Array.length cells in
  let idx = Array.init n (fun i -> i) in
  Rng.shuffle rng idx;
  let out = Array.make n 0 in
  let k = ref 0 in
  Array.iter
    (fun i ->
      if cells.(i).Cell.height > 1 then begin
        out.(!k) <- i;
        incr k
      end)
    idx;
  Array.iter
    (fun i ->
      if cells.(i).Cell.height = 1 then begin
        out.(!k) <- i;
        incr k
      end)
    idx;
  out

(* occupancy-based packing used when blockages fragment the rows: each cell
   lands at the free spot nearest a random target *)
let pack_with_blockages rng (chip : Chip.t) blockages (cells : Cell.t array) =
  let scratch =
    Design.make ~blockages ~name:"scratch" ~chip ~cells:[||]
      ~global:(Placement.create 0)
      ~nets:(Netlist.empty ~num_cells:0)
      ()
  in
  let occ = Occupancy.of_design scratch in
  let xs = Array.make (Array.length cells) 0.0 in
  let ys = Array.make (Array.length cells) 0.0 in
  let order = pack_order rng cells in
  let ok =
    Array.for_all
      (fun i ->
        let c = cells.(i) in
        let x0 = Rng.int rng (max 1 (chip.Chip.num_sites - c.Cell.width + 1)) in
        let row0 = Rng.int rng (max 1 (chip.Chip.num_rows - c.Cell.height + 1)) in
        match Occupancy.find_spot occ c ~row0 ~x0 with
        | Some (row, x, _) ->
          Occupancy.occupy occ ~row ~height:c.Cell.height ~x ~width:c.Cell.width;
          xs.(i) <- float_of_int x;
          ys.(i) <- float_of_int row;
          true
        | None -> false)
      order
  in
  if ok then Some (Placement.make ~xs ~ys) else None

let build_cells rng options (spec : Spec.t) =
  let lo_s, hi_s = options.single_width_range in
  let lo_d, hi_d = options.double_width_range in
  (* exactly [singles + doubles] cells are pushed, in id order — write
     them straight into a preallocated array (the historical list-push /
     reverse / copy path held every cell behind a cons cell) *)
  let n = spec.singles + spec.doubles in
  let arr = Array.make n (Cell.make ~id:0 ~width:1 ~height:1 ()) in
  let next_id = ref 0 in
  let push width height rail =
    let id = !next_id in
    incr next_id;
    arr.(id) <- Cell.make ~id ~width ~height ?bottom_rail:rail ()
  in
  for _ = 1 to spec.singles do
    push (Rng.int_in rng lo_s hi_s) 1 None
  done;
  for _ = 1 to spec.doubles do
    let w = Rng.int_in rng lo_d hi_d in
    if options.single_height_only then
      (* Section 5.3: the cell keeps its original (un-halved) footprint *)
      push (2 * w) 1 None
    else if Rng.float rng 1.0 < options.tall_cell_fraction then begin
      (* extension beyond the paper's suite: taller cells at roughly the
         same area (triple-height flippable, or quad-height with a rail) *)
      if Rng.bool rng then push (max 1 ((2 * w) / 3)) 3 None
      else push (max 1 (w / 2)) 4 (Some (if Rng.bool rng then Rail.Vdd else Rail.Vss))
    end
    else push w 2 (Some (if Rng.bool rng then Rail.Vdd else Rail.Vss))
  done;
  (* shuffle so ids do not encode the height class *)
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  Array.init n (fun new_id ->
      let c = arr.(order.(new_id)) in
      Cell.make ~id:new_id ~width:c.Cell.width ~height:c.Cell.height
        ?bottom_rail:c.Cell.bottom_rail ())

let size_chip options ~total_area ~max_width ~density =
  (* blockages consume chip area without hosting cells; widen so the free
     capacity still matches the target density *)
  let capacity =
    float_of_int total_area /. density
    /. Float.max 0.05 (1.0 -. options.blockage_fraction)
  in
  let rows_f = sqrt (capacity /. options.sites_per_row_ratio) in
  let num_rows =
    let r = max 4 (int_of_float (Float.round rows_f)) in
    if r mod 2 = 0 then r else r + 1
  in
  let num_sites =
    max (max_width + 2)
      (int_of_float (Float.ceil (capacity /. float_of_int num_rows)))
  in
  Chip.make ~num_rows ~num_sites ()

(* Pack a legal placement: multi-row cells first, each cell into the
   admitting row (or row span) with the lowest frontier, advancing the
   frontier by a randomized gap that statistically spreads the free space
   across the whole row. *)
let pack rng (chip : Chip.t) (cells : Cell.t array) ~density =
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let cursor = Array.make num_rows 0 in
  let xs = Array.make (Array.length cells) 0.0 in
  let ys = Array.make (Array.length cells) 0.0 in
  let gap_for width =
    let free_ratio = (1.0 -. density) /. Float.max density 0.05 in
    let mean = float_of_int width *. free_ratio in
    int_of_float (Rng.float rng (2.0 *. mean +. 1.0))
  in
  let place (c : Cell.t) =
    let h = c.Cell.height and w = c.Cell.width in
    (* frontier of a span = max cursor over the spanned rows *)
    let span_front r =
      let front = ref 0 in
      for k = r to r + h - 1 do
        front := max !front cursor.(k)
      done;
      !front
    in
    let best = ref (-1) and best_front = ref max_int in
    for r = 0 to num_rows - h do
      if Chip.row_admits chip c r then begin
        let front = span_front r in
        if front < !best_front && front + w <= num_sites then begin
          best := r;
          best_front := front
        end
      end
    done;
    if !best < 0 then None
    else begin
      let r = !best in
      let front = !best_front in
      let gap = min (gap_for w) (num_sites - front - w) in
      let x = front + max 0 gap in
      for k = r to r + h - 1 do
        cursor.(k) <- x + w
      done;
      xs.(c.Cell.id) <- float_of_int x;
      ys.(c.Cell.id) <- float_of_int r;
      Some ()
    end
  in
  let order = pack_order rng cells in
  let ok = Array.for_all (fun i -> place cells.(i) <> None) order in
  if ok then Some (Placement.make ~xs ~ys) else None

let rec pack_with_growth rng chip cells ~density ~attempts =
  (* retry a few shuffled orders at the same size before growing, and grow
     gently: widening dilutes the density the spec asks for *)
  let rec try_same_size k =
    if k = 0 then None else
      match pack rng chip cells ~density with
      | Some pl -> Some pl
      | None -> try_same_size (k - 1)
  in
  match try_same_size 3 with
  | Some pl -> (chip, pl)
  | None ->
    if attempts <= 0 then
      failwith "Generate: could not pack a legal reference placement";
    let wider =
      Chip.make ~base_rail:chip.Chip.base_rail ~num_rows:chip.Chip.num_rows
        ~num_sites:(chip.Chip.num_sites + (chip.Chip.num_sites / 33) + 2)
        ()
    in
    pack_with_growth rng wider cells ~density ~attempts:(attempts - 1)

(* fences: random disjoint rectangles; membership sized to each fence's
   capacity at the target density. Members are packed inside their fence
   (the complement acts as a mask), everyone else outside (the fence
   rectangles act as masks), so the reference packing is a witness for the
   exclusive fence semantics. *)
let make_fences rng count (chip : Chip.t) =
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let fences = ref [] in
  let overlaps (r0, h0, x0, w0) (r : Region.rect) =
    r0 < r.Region.row + r.Region.height
    && r.Region.row < r0 + h0
    && x0 < r.Region.x + r.Region.width
    && r.Region.x < x0 + w0
  in
  let attempts = ref 0 in
  while List.length !fences < count && !attempts < 100 do
    incr attempts;
    let h = min num_rows (max 2 (num_rows / 3)) in
    let w = min num_sites (max 8 (num_sites / (2 * max 1 count))) in
    if h <= num_rows && w <= num_sites then begin
      let row = Rng.int rng (num_rows - h + 1) in
      let x = Rng.int rng (num_sites - w + 1) in
      let rect = { Region.row; height = h; x; width = w } in
      if not (List.exists (fun reg -> List.exists (overlaps (row, h, x, w)) reg.Region.rects) !fences)
      then
        fences :=
          Region.make ~name:(Printf.sprintf "fence%d" (List.length !fences)) [ rect ]
          :: !fences
    end
  done;
  Array.of_list (List.rev !fences)

(* assign cells to fences: fill each fence to ~[density] of its area with
   cells drawn round-robin, leaving the rest in the default territory *)
let assign_fence_members rng ~density (fences : Region.t array)
    (cells : Cell.t array) =
  let n = Array.length cells in
  let membership = Array.make n None in
  let order = Array.init n (fun i -> i) in
  Rng.shuffle rng order;
  let cursor = ref 0 in
  Array.iteri
    (fun k reg ->
      let budget = ref (density *. 0.95 *. float_of_int (Region.area reg)) in
      while !budget > 0.0 && !cursor < n do
        let i = order.(!cursor) in
        incr cursor;
        let a = float_of_int (Cell.area cells.(i)) in
        if a <= !budget then begin
          membership.(i) <- Some k;
          budget := !budget -. a
        end
        else budget := 0.0
      done)
    fences;
  membership

(* per-class masked packing: every class sees the blockages, the cells
   already placed, and its own exclusion mask *)
let pack_with_fences rng (chip : Chip.t) blockages (fences : Region.t array)
    membership (cells : Cell.t array) =
  let scratch k =
    let mask =
      match k with
      | Some f -> Region.complement_blockages fences.(f) chip
      | None ->
        Array.to_list fences |> List.concat_map Region.to_blockages
    in
    let d =
      Design.make
        ~blockages:(Array.append blockages (Array.of_list mask))
        ~name:"scratch" ~chip ~cells:[||] ~global:(Placement.create 0)
        ~nets:(Netlist.empty ~num_cells:0)
        ()
    in
    Occupancy.of_design d
  in
  let grids =
    Array.init (Array.length fences + 1) (fun k ->
        scratch (if k < Array.length fences then Some k else None))
  in
  let grid_of i =
    match membership.(i) with
    | Some f -> grids.(f)
    | None -> grids.(Array.length fences)
  in
  let xs = Array.make (Array.length cells) 0.0 in
  let ys = Array.make (Array.length cells) 0.0 in
  let order = pack_order rng cells in
  let ok =
    Array.for_all
      (fun i ->
        let c = cells.(i) in
        let x0 = Rng.int rng (max 1 (chip.Chip.num_sites - c.Cell.width + 1)) in
        let row0 = Rng.int rng (max 1 (chip.Chip.num_rows - c.Cell.height + 1)) in
        match Occupancy.find_spot (grid_of i) c ~row0 ~x0 with
        | Some (row, x, _) ->
          (* occupy the span in every class grid *)
          Array.iter
            (fun g ->
              Occupancy.mark g ~row ~height:c.Cell.height ~x ~width:c.Cell.width)
            grids;
          xs.(i) <- float_of_int x;
          ys.(i) <- float_of_int row;
          true
        | None -> false)
      order
  in
  if ok then Some (Placement.make ~xs ~ys) else None

let perturb rng options ~density (chip : Chip.t) (cells : Cell.t array)
    (reference : Placement.t) =
  (* real global placers spread cells to meet density targets, so the
     denser the design, the smaller the typical overlap with neighbours;
     scale the noise by the free-space ratio to reproduce that shape
     (and with it the paper's density-vs-illegal-cell correlation) *)
  let free_scale = Float.min 1.0 ((1.0 -. density) /. 0.5) in
  (* vertical wobble shrinks fast with density (spreading keeps cells in
     their rows); horizontal wobble shrinks less — local x overlaps are
     what legalization mainly resolves, at any density *)
  let noise_x = options.noise_x_sigma *. Float.max 0.5 free_scale in
  let noise_y = options.noise_y_sigma *. Float.max 0.15 free_scale in
  let num_rows = float_of_int chip.Chip.num_rows in
  let num_sites = float_of_int chip.Chip.num_sites in
  let centers =
    Array.init options.hotspots (fun _ ->
        (Rng.float rng num_sites, Rng.float rng num_rows))
  in
  let tau = Float.max 1.0 (sqrt ((num_sites *. num_sites) +. (num_rows *. num_rows)) /. 20.0) in
  let xs = Array.copy reference.Placement.xs in
  let ys = Array.copy reference.Placement.ys in
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      let x = ref (xs.(i) +. (noise_x *. Rng.gaussian rng)) in
      let y = ref (ys.(i) +. (noise_y *. Rng.gaussian rng)) in
      Array.iter
        (fun (cx, cy) ->
          let dx = cx -. !x and dy = cy -. !y in
          let dist2 = (dx *. dx) +. (dy *. dy) in
          let pull =
            options.hotspot_strength *. exp (-.dist2 /. (2.0 *. tau *. tau))
          in
          x := !x +. (pull *. dx);
          y := !y +. (pull *. dy))
        centers;
      let clamp v lo hi = Float.max lo (Float.min hi v) in
      xs.(i) <- clamp !x 0.0 (num_sites -. float_of_int c.Cell.width);
      ys.(i) <- clamp !y 0.0 (num_rows -. float_of_int c.Cell.height))
    cells;
  Placement.make ~xs ~ys

let generate ?(options = default_options) (spec : Spec.t) =
  if spec.singles + spec.doubles <= 0 then
    invalid_arg "Generate.generate: spec has no cells";
  let rng = Rng.of_string (Printf.sprintf "%s#%d" spec.name options.seed) in
  let cells = build_cells rng options spec in
  let total_area = Array.fold_left (fun acc c -> acc + Cell.area c) 0 cells in
  let max_width =
    Array.fold_left (fun acc c -> max acc c.Cell.width) 1 cells
  in
  let chip = size_chip options ~total_area ~max_width ~density:spec.density in
  let blockages = make_blockages rng options chip in
  let fences = make_fences rng options.fence_count chip in
  let membership =
    if Array.length fences = 0 then Array.make (Array.length cells) None
    else assign_fence_members rng ~density:spec.density fences cells
  in
  let cells =
    if Array.length fences = 0 then cells
    else
      Array.mapi
        (fun i (c : Cell.t) ->
          Cell.make ~id:i ~name:c.Cell.name ~width:c.Cell.width
            ~height:c.Cell.height ?bottom_rail:c.Cell.bottom_rail
            ?region:membership.(i) ())
        cells
  in
  let chip, blockages, reference =
    if Array.length fences > 0 then begin
      let rec attempt chip k =
        match pack_with_fences rng chip blockages fences membership cells with
        | Some reference -> (chip, blockages, reference)
        | None ->
          if k <= 0 then failwith "Generate: could not pack with fences";
          let wider =
            Chip.make ~base_rail:chip.Chip.base_rail
              ~row_height:chip.Chip.row_height ~num_rows:chip.Chip.num_rows
              ~num_sites:(chip.Chip.num_sites + (chip.Chip.num_sites / 20) + 2)
              ()
          in
          (* fences keep their absolute coordinates: the chip only grows *)
          attempt wider (k - 1)
      in
      attempt chip 6
    end
    else if Array.length blockages = 0 then begin
      let chip, reference =
        pack_with_growth rng chip cells ~density:spec.density ~attempts:6
      in
      (chip, [||], reference)
    end
    else begin
      let rec attempt chip blockages k =
        match pack_with_blockages rng chip blockages cells with
        | Some reference -> (chip, blockages, reference)
        | None ->
          if k <= 0 then
            failwith "Generate: could not pack with blockages";
          let wider =
            Chip.make ~base_rail:chip.Chip.base_rail
              ~row_height:chip.Chip.row_height ~num_rows:chip.Chip.num_rows
              ~num_sites:(chip.Chip.num_sites + (chip.Chip.num_sites / 20) + 2)
              ()
          in
          (* blockages stay valid: chip only grows *)
          attempt wider blockages (k - 1)
      in
      attempt chip blockages 6
    end
  in
  let global =
    perturb rng options ~density:spec.density chip cells reference
  in
  let nets =
    Nets.generate rng ~nets_per_cell:options.nets_per_cell ~chip ~cells
      ~placement:global
  in
  let design =
    Design.make ~blockages ~regions:fences ~name:spec.name ~chip ~cells ~global
      ~nets ()
  in
  { design; reference }

let generate_named ?options ?(scale = 1.0) name =
  let spec = Spec.find name in
  generate ?options (Spec.scaled scale spec)
