(** Hard-scenario pack: adversarial instances for the repair paths.

    Each scenario targets a failure mode that historically crashed a
    legalizer rather than degrading gracefully:

    - {b fence-dense}: many fence regions at high density — territories
      have little slack and the per-territory allocation runs close to
      capacity;
    - {b fence-cross}: fences plus a violently perturbed global placement,
      so many members start far outside (or straddling) their fence;
    - {b fence-oversub}: a fence region whose members' total area exceeds
      the region's usable capacity — infeasible as given; the legalizer
      must evict rather than die;
    - {b md3-mix}: a heavy mix of triple/quadruple-height cells with
      blockages, stressing the multi-deck machinery;
    - {b oversub}: total cell area exceeds the chip capacity — infeasible
      by construction; every legalizer must return a typed failure, never
      an uncaught exception.

    For the two over-subscribed kinds there is no feasibility witness;
    [reference] is the global placement itself. *)

type kind = Fence_dense | Fence_cross | Fence_oversub | Md3_mix | Oversub

val all : kind list

val name : kind -> string
(** The CLI-facing name ("fence-dense", "fence-cross", "fence-oversub",
    "md3-mix", "oversub"). *)

val of_name : string -> kind option

val names : string list
(** CLI-facing names of {!all}, in order. *)

val generate : ?seed:int -> ?scale:float -> kind -> Generate.instance
(** Builds the scenario instance. [scale] (default 1.0) multiplies the
    cell count; [seed] (default 1) drives all randomness. Deterministic:
    identical arguments produce the identical instance. *)
