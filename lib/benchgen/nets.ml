open Mclh_circuit

(* Spatial grid over the global placement for neighborhood queries.

   The buckets are stored CSR-style (prefix offsets into one members
   array, each bucket's slice ascending by cell id) instead of as
   per-bucket lists: full-scale designs put ~1.3M cells in the grid, and
   the list representation costs a cons cell per placement plus pointer
   chasing on every neighborhood scan. The candidate order produced from
   this layout is byte-identical to the historical list-based one (see
   [fill_candidates]); the pinned generated designs depend on it. *)
type grid = {
  bucket_w : float;
  bucket_h : float;
  nx : int;
  ny : int;
  start : int array; (* nx*ny + 1 prefix offsets into [members] *)
  members : int array; (* cell ids, ascending within each bucket *)
}

let bucket_key grid (placement : Placement.t) i =
  let clamp v hi = max 0 (min (hi - 1) v) in
  let bx = clamp (int_of_float (placement.Placement.xs.(i) /. grid.bucket_w)) grid.nx in
  let by = clamp (int_of_float (placement.Placement.ys.(i) /. grid.bucket_h)) grid.ny in
  (by * grid.nx) + bx

let build_grid (chip : Chip.t) (placement : Placement.t) =
  let n = Placement.num_cells placement in
  let target_per_bucket = 8.0 in
  let num_buckets = Float.max 1.0 (float_of_int n /. target_per_bucket) in
  let aspect = float_of_int chip.Chip.num_sites /. float_of_int chip.Chip.num_rows in
  let ny = max 1 (int_of_float (sqrt (num_buckets /. aspect))) in
  let nx = max 1 (int_of_float (num_buckets /. float_of_int ny)) in
  let bucket_w = float_of_int chip.Chip.num_sites /. float_of_int nx in
  let bucket_h = float_of_int chip.Chip.num_rows /. float_of_int ny in
  let nb = nx * ny in
  let grid =
    { bucket_w; bucket_h; nx; ny; start = Array.make (nb + 1) 0; members = Array.make n 0 }
  in
  (* counting sort by bucket: count, prefix, fill (cells in increasing id
     order, so each bucket's slice comes out ascending) *)
  let count = Array.make nb 0 in
  for i = 0 to n - 1 do
    let key = bucket_key grid placement i in
    count.(key) <- count.(key) + 1
  done;
  let acc = ref 0 in
  for k = 0 to nb - 1 do
    grid.start.(k) <- !acc;
    acc := !acc + count.(k)
  done;
  grid.start.(nb) <- !acc;
  let cursor = Array.copy grid.start in
  for i = 0 to n - 1 do
    let key = bucket_key grid placement i in
    grid.members.(cursor.(key)) <- i;
    cursor.(key) <- cursor.(key) + 1
  done;
  grid

let degree rng =
  (* ~55% two-pin nets, geometric tail capped at 8 *)
  if Rng.float rng 1.0 < 0.55 then 2
  else begin
    let rec tail d = if d >= 8 || Rng.float rng 1.0 < 0.5 then d else tail (d + 1) in
    tail 3
  end

let pin_of rng (cells : Cell.t array) cell =
  let c = cells.(cell) in
  Netlist.
    { cell;
      dx = Rng.float rng (float_of_int c.Cell.width);
      dy = Rng.float rng (float_of_int c.Cell.height) }

let generate rng ~nets_per_cell ~chip ~cells ~placement =
  let n = Array.length cells in
  let num_nets = int_of_float (Float.round (nets_per_cell *. float_of_int n)) in
  if n = 0 || num_nets = 0 then Netlist.empty ~num_cells:n
  else begin
    let grid = build_grid chip placement in
    let max_radius = max grid.nx grid.ny in
    (* Candidate scratch, reused across nets. The historical list code
       visited buckets dy = -r..r, dx = -r..r and [List.rev_append]ed
       each (descending, prepend-built) bucket onto the accumulator, so
       the final list held the buckets in *reverse* visit order with
       each bucket ascending. Replicate that exact order here: walk
       dy = +r downto -r, dx = +r downto -r and append each bucket's
       ascending CSR slice. *)
    let buf = ref (Array.make 64 0) in
    let fill_candidates seed ~radius_buckets =
      let clamp v hi = max 0 (min (hi - 1) v) in
      let bx =
        clamp (int_of_float (placement.Placement.xs.(seed) /. grid.bucket_w)) grid.nx
      in
      let by =
        clamp (int_of_float (placement.Placement.ys.(seed) /. grid.bucket_h)) grid.ny
      in
      let len = ref 0 in
      for dy = radius_buckets downto -radius_buckets do
        for dx = radius_buckets downto -radius_buckets do
          let x = bx + dx and y = by + dy in
          if x >= 0 && x < grid.nx && y >= 0 && y < grid.ny then begin
            let key = (y * grid.nx) + x in
            let lo = grid.start.(key) and hi = grid.start.(key + 1) in
            let size = hi - lo in
            if size > 0 then begin
              let cap = ref (Array.length !buf) in
              while !len + size > !cap do
                cap := 2 * !cap
              done;
              if !cap > Array.length !buf then begin
                let bigger = Array.make !cap 0 in
                Array.blit !buf 0 bigger 0 !len;
                buf := bigger
              end;
              Array.blit grid.members lo !buf !len size;
              len := !len + size
            end
          end
        done
      done;
      !len
    in
    let make_net () =
      let seed = Rng.int rng n in
      let want = degree rng in
      let rec gather radius =
        let count = fill_candidates seed ~radius_buckets:radius in
        if count >= want || radius >= max_radius then count
        else gather (radius + 1)
      in
      let cand = Array.sub !buf 0 (gather 1) in
      Rng.shuffle rng cand;
      let chosen = Hashtbl.create want in
      Hashtbl.replace chosen seed ();
      let idx = ref 0 in
      while Hashtbl.length chosen < want && !idx < Array.length cand do
        Hashtbl.replace chosen cand.(!idx) ();
        incr idx
      done;
      Hashtbl.fold (fun cell () acc -> pin_of rng cells cell :: acc) chosen []
      |> Array.of_list
    in
    let builder = Netlist.Builder.create ~num_cells:n ~expected_nets:num_nets in
    for _ = 1 to num_nets do
      Netlist.Builder.add_net builder (make_net ())
    done;
    Netlist.Builder.build builder
  end
