(** Deterministic pseudo-random numbers (splitmix64).

    Every random choice in the benchmark generator flows through a seeded
    stream, so instances are reproducible bit-for-bit across runs and
    machines — a requirement for comparing legalizers on "the same"
    benchmark. *)

type t

val create : int -> t
(** Stream seeded by the given integer. *)

val of_string : string -> t
(** Stream seeded by a string (FNV-1a hash); used to derive one stream per
    benchmark name. *)

val split : t -> t
(** An independent stream derived from the current state (advances the
    parent). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive.
    Exactly uniform: draws are rejection-sampled, so there is no modulo
    bias toward the low residues. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
