type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let of_string s = { state = fnv1a s }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

(* uniform in [0, bound) by rejection: [v mod bound] alone is biased for
   any bound that does not divide 2^62 (the low residues are hit one extra
   time). Draw 62-bit values and reject those at or above the largest
   multiple of bound, so every residue is equally likely; the rejection
   probability is bound / 2^62 per draw. *)
let two_62 = Int64.shift_left 1L 62

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let b = Int64.of_int bound in
  let limit = Int64.sub two_62 (Int64.rem two_62 b) in
  let rec draw () =
    let v = Int64.shift_right_logical (next_int64 t) 2 in
    if v >= limit then draw () else Int64.to_int (Int64.rem v b)
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0) (* 2^53 *)

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))
