open Mclh_linalg

type operators = {
  dim : int;
  apply_a : Vec.t -> Vec.t;
  apply_n : Vec.t -> Vec.t;
  solve_m_omega : Vec.t -> Vec.t;
  omega_diag : Vec.t;
}

type options = { gamma : float; eps : float; max_iter : int }

let default_options = { gamma = 2.0; eps = 1e-9; max_iter = 10_000 }

type outcome = {
  z : Vec.t;
  s : Vec.t;
  iterations : int;
  converged : bool;
  delta_inf : float;
}

let z_of_s gamma s = Vec.map (fun v -> (Float.abs v +. v) /. gamma) s

let w_of_s options ops s =
  Vec.mapi (fun i v -> ops.omega_diag.(i) /. options.gamma *. (Float.abs v -. v)) s

let solve ?(options = default_options) ?on_iter ?s0 ops ~q =
  let { gamma; eps; max_iter } = options in
  if gamma <= 0.0 then invalid_arg "Mmsim.solve: gamma must be positive";
  if eps <= 0.0 then invalid_arg "Mmsim.solve: eps must be positive";
  if max_iter <= 0 then invalid_arg "Mmsim.solve: max_iter must be positive";
  if Vec.dim q <> ops.dim then invalid_arg "Mmsim.solve: q dimension mismatch";
  if Vec.dim ops.omega_diag <> ops.dim then
    invalid_arg "Mmsim.solve: omega dimension mismatch";
  let s =
    match s0 with
    | None -> Vec.zeros ops.dim
    | Some s0 ->
      if Vec.dim s0 <> ops.dim then
        invalid_arg "Mmsim.solve: s0 dimension mismatch";
      Vec.copy s0
  in
  let abs_s = Vec.zeros ops.dim in
  let z_prev = ref (z_of_s gamma s) in
  let rec go s k =
    Vec.abs_into s abs_s;
    (* rhs = N s + Omega |s| - A |s| - gamma q *)
    let rhs = ops.apply_n s in
    let a_abs = ops.apply_a abs_s in
    for i = 0 to ops.dim - 1 do
      rhs.(i) <-
        rhs.(i)
        +. (ops.omega_diag.(i) *. abs_s.(i))
        -. a_abs.(i)
        -. (gamma *. q.(i))
    done;
    let s_next = ops.solve_m_omega rhs in
    let z = z_of_s gamma s_next in
    let delta = Vec.dist_inf z !z_prev in
    (* z alone can stall at a bound while s still moves: require the
       modulus vector to be stationary too (relative to its own scale) *)
    let delta_s = Vec.dist_inf s_next s in
    let s_scale = Float.max 1.0 (Vec.norm_inf s_next) in
    z_prev := z;
    (match on_iter with None -> () | Some f -> f (k + 1) delta);
    (* nan detection must not rely on comparisons (nan > x is false);
       summing propagates nan reliably *)
    if Float.is_nan delta || Float.is_nan (Vec.sum z) then
      (* divergence guard: the splitting parameters violate convergence *)
      { z; s = s_next; iterations = k + 1; converged = false;
        delta_inf = Float.nan }
    else if delta < eps && delta_s < eps *. s_scale then
      { z; s = s_next; iterations = k + 1; converged = true; delta_inf = delta }
    else if k + 1 >= max_iter then
      { z; s = s_next; iterations = k + 1; converged = false; delta_inf = delta }
    else go s_next (k + 1)
  in
  go s 0

type operators_inplace = {
  dim_ip : int;
  apply_a_into : Vec.t -> Vec.t -> unit;
  apply_n_into : Vec.t -> Vec.t -> unit;
  solve_m_omega_into : Vec.t -> Vec.t -> unit;
  omega_diag_ip : Vec.t;
}

let solve_inplace ?(options = default_options) ?on_iter ?s0 ops ~q =
  let { gamma; eps; max_iter } = options in
  if gamma <= 0.0 then invalid_arg "Mmsim.solve_inplace: gamma must be positive";
  if eps <= 0.0 then invalid_arg "Mmsim.solve_inplace: eps must be positive";
  if max_iter <= 0 then invalid_arg "Mmsim.solve_inplace: max_iter must be positive";
  let n = ops.dim_ip in
  if Vec.dim q <> n then invalid_arg "Mmsim.solve_inplace: q dimension mismatch";
  let s =
    match s0 with
    | None -> Vec.zeros n
    | Some s0 ->
      if Vec.dim s0 <> n then invalid_arg "Mmsim.solve_inplace: s0 dimension";
      Vec.copy s0
  in
  let abs_s = Vec.zeros n in
  let rhs = Vec.zeros n in
  let a_abs = Vec.zeros n in
  let s_next = Vec.zeros n in
  let z = Vec.zeros n in
  let z_prev = Vec.zeros n in
  for i = 0 to n - 1 do
    z_prev.(i) <- (Float.abs s.(i) +. s.(i)) /. gamma
  done;
  let rec go s s_next k =
    Vec.abs_into s abs_s;
    ops.apply_n_into s rhs;
    ops.apply_a_into abs_s a_abs;
    for i = 0 to n - 1 do
      rhs.(i) <-
        rhs.(i)
        +. (ops.omega_diag_ip.(i) *. abs_s.(i))
        -. a_abs.(i)
        -. (gamma *. q.(i))
    done;
    ops.solve_m_omega_into rhs s_next;
    let delta = ref 0.0 and nan_seen = ref false in
    let delta_s = ref 0.0 and s_scale = ref 1.0 in
    for i = 0 to n - 1 do
      let zi = (Float.abs s_next.(i) +. s_next.(i)) /. gamma in
      z.(i) <- zi;
      let d = Float.abs (zi -. z_prev.(i)) in
      if Float.is_nan zi || Float.is_nan d then nan_seen := true
      else if d > !delta then delta := d;
      let ds = Float.abs (s_next.(i) -. s.(i)) in
      if ds > !delta_s then delta_s := ds;
      let a = Float.abs s_next.(i) in
      if a > !s_scale then s_scale := a
    done;
    Vec.blit ~src:z ~dst:z_prev;
    (* the observer branch is allocation-free when [on_iter] is [None],
       preserving the zero-allocation steady state *)
    (match on_iter with
    | None -> ()
    | Some f -> f (k + 1) (if !nan_seen then Float.nan else !delta));
    if !nan_seen then
      { z = Vec.copy z; s = Vec.copy s_next; iterations = k + 1;
        converged = false; delta_inf = Float.nan }
    else if !delta < eps && !delta_s < eps *. !s_scale then
      { z = Vec.copy z; s = Vec.copy s_next; iterations = k + 1;
        converged = true; delta_inf = !delta }
    else if k + 1 >= max_iter then
      { z = Vec.copy z; s = Vec.copy s_next; iterations = k + 1;
        converged = false; delta_inf = !delta }
    else go s_next s (k + 1)
  in
  go s s_next 0

let gauss_seidel_operators ?omega a =
  let n = Csr.rows a in
  if Csr.cols a <> n then
    invalid_arg "Mmsim.gauss_seidel_operators: matrix not square";
  let diag = Array.make n 0.0 in
  Csr.iter a (fun i j v -> if i = j then diag.(i) <- diag.(i) +. v);
  Array.iteri
    (fun i d ->
      if d <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Mmsim.gauss_seidel_operators: nonpositive diagonal at %d" i))
    diag;
  let omega_diag =
    match omega with
    | None -> Vec.create n 1.0
    | Some o ->
      if Vec.dim o <> n then
        invalid_arg "Mmsim.gauss_seidel_operators: omega dimension";
      Array.iter
        (fun v ->
          if v <= 0.0 then
            invalid_arg "Mmsim.gauss_seidel_operators: omega not positive")
        o;
      Vec.copy o
  in
  (* split the strict triangular parts once: apply_n and solve_m_omega run
     every iteration and must not re-walk the full matrix each time *)
  let strict_part keep =
    let row_ptr = Array.make (n + 1) 0 in
    Csr.iter a (fun i j _ -> if keep i j then row_ptr.(i + 1) <- row_ptr.(i + 1) + 1);
    for i = 1 to n do
      row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
    done;
    let count = row_ptr.(n) in
    let col_idx = Array.make count 0 and values = Array.make count 0.0 in
    let fill = Array.copy row_ptr in
    Csr.iter a (fun i j v ->
        if keep i j then begin
          col_idx.(fill.(i)) <- j;
          values.(fill.(i)) <- v;
          fill.(i) <- fill.(i) + 1
        end);
    (row_ptr, col_idx, values)
  in
  let up_ptr, up_col, up_val = strict_part (fun i j -> j > i) in
  let lo_ptr, lo_col, lo_val = strict_part (fun i j -> j < i) in
  let apply_a v = Csr.mul_vec a v in
  (* N = -U: strictly upper part, negated *)
  let apply_n v =
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = up_ptr.(i) to up_ptr.(i + 1) - 1 do
        acc := !acc -. (up_val.(k) *. v.(up_col.(k)))
      done;
      out.(i) <- !acc
    done;
    out
  in
  (* (M + Omega) x = rhs with M = D + L: forward substitution *)
  let solve_m_omega rhs =
    let x = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref rhs.(i) in
      for k = lo_ptr.(i) to lo_ptr.(i + 1) - 1 do
        acc := !acc -. (lo_val.(k) *. x.(lo_col.(k)))
      done;
      x.(i) <- !acc /. (diag.(i) +. omega_diag.(i))
    done;
    x
  in
  { dim = n; apply_a; apply_n; solve_m_omega; omega_diag }
