open Mclh_linalg

type operators = {
  dim : int;
  apply_a : Vec.t -> Vec.t;
  apply_n : Vec.t -> Vec.t;
  solve_m_omega : Vec.t -> Vec.t;
  omega_diag : Vec.t;
}

type options = { gamma : float; eps : float; max_iter : int; accel : int }

let default_options = { gamma = 2.0; eps = 1e-9; max_iter = 10_000; accel = 0 }

type outcome = {
  z : Vec.t;
  s : Vec.t;
  iterations : int;
  converged : bool;
  delta_inf : float;
}

let w_of_s options ops s =
  Vec.mapi (fun i v -> ops.omega_diag.(i) /. options.gamma *. (Float.abs v -. v)) s

let validate ~name { gamma; eps; max_iter; accel } =
  if gamma <= 0.0 then invalid_arg (name ^ ": gamma must be positive");
  if eps <= 0.0 then invalid_arg (name ^ ": eps must be positive");
  if max_iter <= 0 then invalid_arg (name ^ ": max_iter must be positive");
  if accel < 0 then invalid_arg (name ^ ": accel must be >= 0")

type operators_inplace = {
  dim_ip : int;
  apply_a_into : Vec.t -> Vec.t -> unit;
  apply_n_into : Vec.t -> Vec.t -> unit;
  solve_m_omega_into : Vec.t -> Vec.t -> unit;
  omega_diag_ip : Vec.t;
}

(* Anderson (type II) acceleration state over the modulus fixed point
   s <- G(s). Keeps the last [depth] residual/step difference pairs
   (f_k - f_{k-1}, g_k - g_{k-1}) with f = G(s) - s, and extrapolates
   s_next = g - sum c_k dg_k where c minimizes ||f - DF c||_2. Everything
   is preallocated: the steady state stays at zero minor words per
   iteration, acceleration on or off. *)
type accel_state = {
  depth : int;
  hist_df : Vec.t array;
  hist_dg : Vec.t array;
  f : Vec.t;
  f_prev : Vec.t;
  g_prev : Vec.t;
  gram : float array array;
  bvec : float array;
  coef : float array;
  mutable nhist : int;
}

let make_accel depth n =
  { depth;
    hist_df = Array.init depth (fun _ -> Vec.zeros n);
    hist_dg = Array.init depth (fun _ -> Vec.zeros n);
    f = Vec.zeros n;
    f_prev = Vec.zeros n;
    g_prev = Vec.zeros n;
    gram = Array.make_matrix depth depth 0.0;
    bvec = Array.make depth 0.0;
    coef = Array.make depth 0.0;
    nhist = 0 }

(* solve the [mk x mk] ridge-regularized normal equations in place
   (partial-pivot elimination); false when the pivot degenerates *)
let solve_gram st mk =
  let { gram; bvec; coef; _ } = st in
  let ridge = 1e-12 *. (1.0 +. gram.(0).(0)) in
  for a = 0 to mk - 1 do
    gram.(a).(a) <- gram.(a).(a) +. ridge
  done;
  let ok = ref true in
  for col = 0 to mk - 1 do
    let piv = ref col in
    for row = col + 1 to mk - 1 do
      if Float.abs gram.(row).(col) > Float.abs gram.(!piv).(col) then piv := row
    done;
    if Float.abs gram.(!piv).(col) < 1e-300 then ok := false
    else begin
      if !piv <> col then begin
        let tmp = gram.(col) in
        gram.(col) <- gram.(!piv);
        gram.(!piv) <- tmp;
        let tb = bvec.(col) in
        bvec.(col) <- bvec.(!piv);
        bvec.(!piv) <- tb
      end;
      for row = col + 1 to mk - 1 do
        let fct = gram.(row).(col) /. gram.(col).(col) in
        for cc = col to mk - 1 do
          gram.(row).(cc) <- gram.(row).(cc) -. (fct *. gram.(col).(cc))
        done;
        bvec.(row) <- bvec.(row) -. (fct *. bvec.(col))
      done
    end
  done;
  if !ok then
    for row = mk - 1 downto 0 do
      let acc = ref bvec.(row) in
      for cc = row + 1 to mk - 1 do
        acc := !acc -. (gram.(row).(cc) *. coef.(cc))
      done;
      coef.(row) <- !acc /. gram.(row).(row)
    done;
  !ok

(* largest admissible coefficient mass: beyond this the least-squares
   system is effectively singular and extrapolating from it stalls or
   oscillates, so the step falls back to plain G and the history resets *)
let coef_limit = 1e4

(* advance the accelerated iteration: given the plain step [g] from the
   point [s] (with iteration number [k], 1-based), write the next iterate
   into [s]. Falls back to [s <- g] whenever the extrapolation is not
   trustworthy. *)
let accel_advance st ~k ~n s g =
  let { depth; hist_df; hist_dg; f; f_prev; g_prev; gram; bvec; coef; _ } =
    st
  in
  if k > 1 then begin
    (* rotate: recycle the oldest pair's buffers for the newest *)
    let last_df = hist_df.(depth - 1) and last_dg = hist_dg.(depth - 1) in
    for j = depth - 1 downto 1 do
      hist_df.(j) <- hist_df.(j - 1);
      hist_dg.(j) <- hist_dg.(j - 1)
    done;
    hist_df.(0) <- last_df;
    hist_dg.(0) <- last_dg;
    for i = 0 to n - 1 do
      let fi = g.(i) -. s.(i) in
      f.(i) <- fi;
      last_df.(i) <- fi -. f_prev.(i);
      last_dg.(i) <- g.(i) -. g_prev.(i)
    done;
    if st.nhist < depth then st.nhist <- st.nhist + 1
  end
  else
    for i = 0 to n - 1 do
      f.(i) <- g.(i) -. s.(i)
    done;
  Vec.blit ~src:f ~dst:f_prev;
  Vec.blit ~src:g ~dst:g_prev;
  let mk = st.nhist in
  if mk = 0 then Vec.blit ~src:g ~dst:s
  else begin
    for a = 0 to mk - 1 do
      for b = a to mk - 1 do
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. (hist_df.(a).(i) *. hist_df.(b).(i))
        done;
        gram.(a).(b) <- !acc;
        gram.(b).(a) <- !acc
      done;
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (hist_df.(a).(i) *. f.(i))
      done;
      bvec.(a) <- !acc
    done;
    if not (solve_gram st mk) then begin
      st.nhist <- 0;
      Vec.blit ~src:g ~dst:s
    end
    else begin
      let cmag = ref 0.0 in
      for j = 0 to mk - 1 do
        cmag := !cmag +. Float.abs coef.(j)
      done;
      if Float.is_nan !cmag || !cmag > coef_limit then begin
        st.nhist <- 0;
        Vec.blit ~src:g ~dst:s
      end
      else
        for i = 0 to n - 1 do
          let acc = ref g.(i) in
          for j = 0 to mk - 1 do
            acc := !acc -. (coef.(j) *. hist_dg.(j).(i))
          done;
          s.(i) <- !acc
        done
    end
  end

let solve_inplace ?(options = default_options) ?on_iter ?s0 ops ~q =
  validate ~name:"Mmsim.solve_inplace" options;
  let { gamma; eps; max_iter; accel } = options in
  let n = ops.dim_ip in
  if Vec.dim q <> n then invalid_arg "Mmsim.solve_inplace: q dimension mismatch";
  if Vec.dim ops.omega_diag_ip <> n then
    invalid_arg "Mmsim.solve_inplace: omega dimension mismatch";
  let s =
    match s0 with
    | None -> Vec.zeros n
    | Some s0 ->
      if Vec.dim s0 <> n then invalid_arg "Mmsim.solve_inplace: s0 dimension";
      Vec.copy s0
  in
  let abs_s = Vec.zeros n in
  let rhs = Vec.zeros n in
  let a_abs = Vec.zeros n in
  let g = Vec.zeros n in
  let z = Vec.zeros n in
  let z_prev = Vec.zeros n in
  for i = 0 to n - 1 do
    z_prev.(i) <- (Float.abs s.(i) +. s.(i)) /. gamma
  done;
  let acc_state = if accel > 0 then Some (make_accel accel n) else None in
  (* the plain path advances by swapping the [cur]/[nxt] buffers; the
     accelerated path writes its combination back into [cur] instead.
     [last] always names the buffer holding the newest plain step, which
     is what the outcome reports on every exit path. *)
  let cur = ref s and nxt = ref g in
  let last = ref g in
  let iters = ref 0 in
  let converged = ref false and diverged = ref false in
  let delta_last = ref 0.0 in
  while (not !converged) && (not !diverged) && !iters < max_iter do
    incr iters;
    let s = !cur and g = !nxt in
    (* g := G(s), the plain modulus step:
       (M + Omega) g = N s + (Omega - A) |s| - gamma q *)
    Vec.abs_into s abs_s;
    ops.apply_n_into s rhs;
    ops.apply_a_into abs_s a_abs;
    for i = 0 to n - 1 do
      rhs.(i) <-
        rhs.(i)
        +. (ops.omega_diag_ip.(i) *. abs_s.(i))
        -. a_abs.(i)
        -. (gamma *. q.(i))
    done;
    ops.solve_m_omega_into rhs g;
    last := g;
    (* the stopping test always judges the plain step: the z change plus
       stationarity of the modulus vector relative to its own scale, so
       acceleration changes how fast the fixed point is approached but
       never what "converged" means *)
    let delta = ref 0.0 and nan_seen = ref false in
    let delta_s = ref 0.0 and s_scale = ref 1.0 in
    for i = 0 to n - 1 do
      let zi = (Float.abs g.(i) +. g.(i)) /. gamma in
      z.(i) <- zi;
      let d = Float.abs (zi -. z_prev.(i)) in
      if Float.is_nan zi || Float.is_nan d then nan_seen := true
      else if d > !delta then delta := d;
      let ds = Float.abs (g.(i) -. s.(i)) in
      if ds > !delta_s then delta_s := ds;
      let a = Float.abs g.(i) in
      if a > !s_scale then s_scale := a
    done;
    Vec.blit ~src:z ~dst:z_prev;
    delta_last := (if !nan_seen then Float.nan else !delta);
    (* the observer branch is allocation-free when [on_iter] is [None],
       preserving the zero-allocation steady state *)
    (match on_iter with None -> () | Some fn -> fn !iters !delta_last);
    if !nan_seen then diverged := true
    else if !delta < eps && !delta_s < eps *. !s_scale then converged := true
    else
      match acc_state with
      | None ->
        cur := g;
        nxt := s
      | Some st -> accel_advance st ~k:!iters ~n s g
  done;
  { z = Vec.copy z;
    s = Vec.copy !last;
    iterations = !iters;
    converged = !converged;
    delta_inf = !delta_last }

(* adapt allocating operators so [solve] and [solve_inplace] are the same
   algorithm with the same stopping and divergence logic — by
   construction, both return identical (iterations, converged, delta_inf)
   on identical inputs (property-pinned in test_lcp.ml) *)
let operators_as_inplace ops =
  { dim_ip = ops.dim;
    apply_a_into = (fun v dst -> Array.blit (ops.apply_a v) 0 dst 0 ops.dim);
    apply_n_into = (fun v dst -> Array.blit (ops.apply_n v) 0 dst 0 ops.dim);
    solve_m_omega_into =
      (fun rhs dst -> Array.blit (ops.solve_m_omega rhs) 0 dst 0 ops.dim);
    omega_diag_ip = ops.omega_diag }

let solve ?(options = default_options) ?on_iter ?s0 ops ~q =
  validate ~name:"Mmsim.solve" options;
  if Vec.dim q <> ops.dim then invalid_arg "Mmsim.solve: q dimension mismatch";
  if Vec.dim ops.omega_diag <> ops.dim then
    invalid_arg "Mmsim.solve: omega dimension mismatch";
  (match s0 with
  | Some s0 when Vec.dim s0 <> ops.dim ->
    invalid_arg "Mmsim.solve: s0 dimension mismatch"
  | Some _ | None -> ());
  solve_inplace ~options ?on_iter ?s0 (operators_as_inplace ops) ~q

let gauss_seidel_operators ?omega a =
  let n = Csr.rows a in
  if Csr.cols a <> n then
    invalid_arg "Mmsim.gauss_seidel_operators: matrix not square";
  let diag = Array.make n 0.0 in
  Csr.iter a (fun i j v -> if i = j then diag.(i) <- diag.(i) +. v);
  Array.iteri
    (fun i d ->
      if d <= 0.0 then
        invalid_arg
          (Printf.sprintf
             "Mmsim.gauss_seidel_operators: nonpositive diagonal at %d" i))
    diag;
  let omega_diag =
    match omega with
    | None -> Vec.create n 1.0
    | Some o ->
      if Vec.dim o <> n then
        invalid_arg "Mmsim.gauss_seidel_operators: omega dimension";
      Array.iter
        (fun v ->
          if v <= 0.0 then
            invalid_arg "Mmsim.gauss_seidel_operators: omega not positive")
        o;
      Vec.copy o
  in
  (* split the strict triangular parts once: apply_n and solve_m_omega run
     every iteration and must not re-walk the full matrix each time *)
  let strict_part keep =
    let row_ptr = Array.make (n + 1) 0 in
    Csr.iter a (fun i j _ -> if keep i j then row_ptr.(i + 1) <- row_ptr.(i + 1) + 1);
    for i = 1 to n do
      row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
    done;
    let count = row_ptr.(n) in
    let col_idx = Array.make count 0 and values = Array.make count 0.0 in
    let fill = Array.copy row_ptr in
    Csr.iter a (fun i j v ->
        if keep i j then begin
          col_idx.(fill.(i)) <- j;
          values.(fill.(i)) <- v;
          fill.(i) <- fill.(i) + 1
        end);
    (row_ptr, col_idx, values)
  in
  let up_ptr, up_col, up_val = strict_part (fun i j -> j > i) in
  let lo_ptr, lo_col, lo_val = strict_part (fun i j -> j < i) in
  let apply_a v = Csr.mul_vec a v in
  (* N = -U: strictly upper part, negated *)
  let apply_n v =
    let out = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = up_ptr.(i) to up_ptr.(i + 1) - 1 do
        acc := !acc -. (up_val.(k) *. v.(up_col.(k)))
      done;
      out.(i) <- !acc
    done;
    out
  in
  (* (M + Omega) x = rhs with M = D + L: forward substitution *)
  let solve_m_omega rhs =
    let x = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let acc = ref rhs.(i) in
      for k = lo_ptr.(i) to lo_ptr.(i + 1) - 1 do
        acc := !acc -. (lo_val.(k) *. x.(lo_col.(k)))
      done;
      x.(i) <- !acc /. (diag.(i) +. omega_diag.(i))
    done;
    x
  in
  { dim = n; apply_a; apply_n; solve_m_omega; omega_diag }
