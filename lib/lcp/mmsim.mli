(** Modulus-based matrix splitting iteration method (MMSIM, Bai 2010).

    For LCP(q, A) with splitting [A = M - N] and positive diagonal [Omega],
    iterate (Equation (3) of the paper):

    [(M + Omega) s_{k+1} = N s_k + (Omega - A) |s_k| - gamma q]

    and recover [z_{k+1} = (|s_{k+1}| + s_{k+1}) / gamma] (Equation (4)).
    At a fixed point, [z] solves the LCP with
    [w = (Omega/gamma) (|s| - s)].

    The solver is expressed over abstract operators so that structured
    problems (like the legalization KKT system, where [M + Omega] is block
    lower triangular with an arrowhead top block and a tridiagonal bottom
    block) never materialize their matrices. *)

open Mclh_linalg

type operators = {
  dim : int;
  apply_a : Vec.t -> Vec.t;  (** [A v] *)
  apply_n : Vec.t -> Vec.t;  (** [N v] *)
  solve_m_omega : Vec.t -> Vec.t;  (** solves [(M + Omega) x = rhs] *)
  omega_diag : Vec.t;  (** the positive diagonal of [Omega] *)
}

type options = {
  gamma : float;  (** positive scaling constant; the fixed point is invariant *)
  eps : float;
      (** stop when both [||z_k - z_{k-1}||_inf < eps] and the modulus
          vector is stationary, [||G(s_k) - s_k||_inf < eps * max(1,
          ||G(s_k)||_inf)]. The paper's Algorithm 1 tests only the z
          change, which can fire spuriously while [z] sits at a bound
          (e.g. [z = 0] for an iteration although [s] is still moving);
          the extra s-test restores soundness without changing the fixed
          point. Both [solve] and [solve_inplace] apply exactly this
          criterion and the same divergence (NaN) guard — they are the
          same loop — so the two return identical [(iterations,
          converged, delta_inf)] on identical inputs (property-pinned in
          [test_lcp.ml]). *)
  max_iter : int;
  accel : int;
      (** Anderson (type II) acceleration depth on the modulus fixed
          point [s <- G(s)]; [0] (the default) is the paper's plain
          iteration. With depth [d], the last [d] residual differences
          steer an extrapolated iterate via a ridge-regularized [d x d]
          least-squares solve per iteration — typically cutting iteration
          counts by 5-20x on slowly-contracting instances. The stopping
          test always judges the {e plain} step taken from the
          accelerated point, so "converged" keeps its plain-MMSIM meaning
          and the fixed point is unchanged; degenerate or wild
          extrapolations fall back to the plain step and reset the
          history. Acceleration preserves the zero-allocation steady
          state (history buffers are preallocated). *)
}

val default_options : options
(** [gamma = 2.0] (so [z = max(s, 0)]), [eps = 1e-9], [max_iter = 10_000],
    [accel = 0]. Production call sites in [lib/core] never rely on these:
    they derive every tolerance and budget from {!Mclh_core.Config} (the
    single source for backend tolerances), passing options explicitly. *)

type outcome = {
  z : Vec.t;  (** final iterate *)
  s : Vec.t;  (** final modulus variable *)
  iterations : int;
  converged : bool;  (** iterate-difference tolerance reached *)
  delta_inf : float;  (** final [||z_k - z_{k-1}||_inf] *)
}

val solve :
  ?options:options -> ?on_iter:(int -> float -> unit) -> ?s0:Vec.t ->
  operators -> q:Vec.t -> outcome
(** Runs Algorithm 1. [s0] defaults to the zero vector. Because the
    iteration's fixed point is unique for the splittings this repository
    uses (SPD system matrix), [s0] only affects how many iterations
    convergence takes, never which solution is reached — so a caller may
    warm-restart from any previous modulus vector (the incremental ECO
    engine does; property-tested with adversarial starts in
    [test_lcp.ml]). [s0] is copied up front, and the warm-started path
    remains allocation-free per iteration in {!solve_inplace}.
    [on_iter k delta] is called after every iteration with the 1-based
    iteration number and the iterate change [||z_k - z_{k-1}||_inf] (NaN
    when the divergence guard fires) — the hook the observability layer
    uses for convergence traces.

    [solve] is a thin adapter over {!solve_inplace} (allocating operator
    results are blitted into the in-place destinations), so the two paths
    share one stopping/divergence implementation by construction.
    @raise Invalid_argument on dimension mismatches, non-positive
      [gamma]/[eps]/[max_iter], or negative [accel]. *)

val w_of_s : options -> operators -> Vec.t -> Vec.t
(** The complementary slack [w = (Omega/gamma) (|s| - s)] at a modulus
    iterate — exact complementarity with [z] holds by construction. *)

type operators_inplace = {
  dim_ip : int;
  apply_a_into : Vec.t -> Vec.t -> unit;  (** [apply_a_into v dst] *)
  apply_n_into : Vec.t -> Vec.t -> unit;
  solve_m_omega_into : Vec.t -> Vec.t -> unit;
      (** [solve_m_omega_into rhs dst]; [rhs] may be clobbered *)
  omega_diag_ip : Vec.t;
}

val solve_inplace :
  ?options:options -> ?on_iter:(int -> float -> unit) -> ?s0:Vec.t ->
  operators_inplace -> q:Vec.t -> outcome
(** Allocation-free variant of {!solve} for hot paths: all iteration state
    lives in preallocated buffers and the operators write into
    caller-visible destinations. Produces the same iterates as {!solve}
    given equivalent operators (tested) — {!solve} delegates here, so the
    stopping criterion, divergence guard, and acceleration are shared
    code. Without [on_iter] the steady state allocates zero minor-heap
    words per iteration, including with [accel > 0] (Gc-asserted in
    tests); the [on_iter] check itself is a single branch, so the
    guarantee survives instrumented-but-disabled call sites. *)

val gauss_seidel_operators : ?omega:Vec.t -> Csr.t -> operators
(** The textbook modulus-based Gauss-Seidel splitting [M = D + L],
    [N = -U] for an explicit square matrix with positive diagonal.
    [omega] defaults to the identity diagonal. Used as a reference
    instantiation in tests; raises [Invalid_argument] if a diagonal entry
    is not positive. *)
