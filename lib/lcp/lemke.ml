open Mclh_linalg

type outcome = Solution of Vec.t | Ray_termination | Iteration_limit

(* Column identifiers of the augmented system  I w - A z - d z0 = q. *)
type var = W of int | Z of int | Z0

let solve_pivots ?max_iter (p : Lcp.problem) =
  let n = Lcp.dim p in
  let max_iter = match max_iter with Some v -> v | None -> (50 * n) + 200 in
  let pivots = ref 0 in
  if n = 0 then (Solution [||], 0)
  else begin
    (* tableau rows: current basis representation.
       columns: 0..n-1 -> w, n..2n-1 -> z, 2n -> z0, 2n+1 -> rhs *)
    let cols = (2 * n) + 2 in
    let rhs_col = cols - 1 and z0_col = cols - 2 in
    let t = Array.make_matrix n cols 0.0 in
    for i = 0 to n - 1 do
      t.(i).(i) <- 1.0;
      (* -A in the z block *)
      Csr.iter_row p.Lcp.a i (fun j v -> t.(i).(n + j) <- t.(i).(n + j) -. v);
      t.(i).(z0_col) <- -1.0;
      (* tiny index-dependent perturbation avoids degenerate cycling *)
      t.(i).(rhs_col) <- p.Lcp.q.(i) +. (1e-11 *. float_of_int (i + 1))
    done;
    let basis = Array.init n (fun i -> W i) in
    let col_of = function W i -> i | Z i -> n + i | Z0 -> z0_col in
    let extract_solution () =
      let z = Vec.zeros n in
      Array.iteri
        (fun row v ->
          match v with
          | Z j -> z.(j) <- Float.max 0.0 t.(row).(rhs_col)
          | W _ | Z0 -> ())
        basis;
      Solution z
    in
    let finish outcome = (outcome, !pivots) in
    (* all rhs nonnegative: the trivial solution *)
    let min_row = ref 0 in
    for i = 1 to n - 1 do
      if t.(i).(rhs_col) < t.(!min_row).(rhs_col) then min_row := i
    done;
    if t.(!min_row).(rhs_col) >= 0.0 then finish (Solution (Vec.zeros n))
    else begin
      let pivot row col =
        incr pivots;
        let piv = t.(row).(col) in
        for j = 0 to cols - 1 do
          t.(row).(j) <- t.(row).(j) /. piv
        done;
        for i = 0 to n - 1 do
          if i <> row then begin
            let factor = t.(i).(col) in
            if factor <> 0.0 then
              for j = 0 to cols - 1 do
                t.(i).(j) <- t.(i).(j) -. (factor *. t.(row).(j))
              done
          end
        done
      in
      (* ratio test for an entering column; None = unbounded (ray) *)
      let ratio_test col =
        let best = ref (-1) and best_ratio = ref infinity in
        for i = 0 to n - 1 do
          let a = t.(i).(col) in
          if a > 1e-12 then begin
            let r = t.(i).(rhs_col) /. a in
            if r < !best_ratio -. 1e-15 then begin
              best_ratio := r;
              best := i
            end
          end
        done;
        if !best < 0 then None else Some !best
      in
      (* initial pivot: z0 enters, the most negative w leaves *)
      let row = !min_row in
      let leaving = basis.(row) in
      pivot row z0_col;
      basis.(row) <- Z0;
      let complement = function
        | W i -> Z i
        | Z i -> W i
        | Z0 -> Z0
      in
      let rec loop entering k =
        if k > max_iter then finish Iteration_limit
        else begin
          let col = col_of entering in
          match ratio_test col with
          | None -> finish Ray_termination
          | Some row ->
            let leaving = basis.(row) in
            pivot row col;
            basis.(row) <- entering;
            if leaving = Z0 then finish (extract_solution ())
            else loop (complement leaving) (k + 1)
        end
      in
      loop (complement leaving) 0
    end
  end

let solve ?max_iter p = fst (solve_pivots ?max_iter p)
