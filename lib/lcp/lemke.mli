(** Lemke's complementary pivoting algorithm for LCP(q, A).

    The classic direct method: augment with an artificial variable [z0] and
    a covering vector, then pivot complementarily until [z0] leaves the
    basis (solution found) or a secondary ray appears (no solution found
    along the path). Terminates with a solution for copositive-plus
    matrices — which includes the positive semidefinite saddle-point
    matrix of the legalization KKT system — whenever the LCP is solvable.

    Dense O(n^2) per pivot: this is a *reference* solver for small
    problems, used to validate the MMSIM independently (it shares no code
    and no algorithmic idea with the modulus iteration). *)

open Mclh_linalg

type outcome =
  | Solution of Vec.t  (** a z with [w = Az + q >= 0], [z >= 0], [z^T w = 0] *)
  | Ray_termination  (** a secondary ray: Lemke's path found no solution *)
  | Iteration_limit

val solve : ?max_iter:int -> Lcp.problem -> outcome
(** [solve p] runs Lemke's method with the all-ones covering vector.
    [max_iter] defaults to [50 * n + 200] pivots — a module-local default
    for direct library use and tests; the production chooser passes
    [Config.direct_max_iter] explicitly. Ties in the ratio test are
    broken by smallest row index with a tiny anti-cycling perturbation on
    the right-hand side. *)

val solve_pivots : ?max_iter:int -> Lcp.problem -> outcome * int
(** Like {!solve} but also returns the number of pivots performed — the
    backend chooser reports it as the direct backend's iteration count. *)
