(* mclh: command-line driver for the mixed-cell-height legalization library.

   Subcommands:
     list       show the benchmark suite and its Table-1 statistics
     gen        generate a synthetic instance and write it to a file
     place      density-driven analytical global placement
     pipeline   place -> legalize -> refine in one flow
     legalize   legalize a design file with a chosen algorithm
     run        generate + legalize in one step (no files)
     audit      sample windows of a legalized placement, re-solve exactly
     check      verify a placement file against a design file
     stats      density/utilization analysis of a design (+ placement)
     convert    translate between the native format and Bookshelf
     eco        apply ECO edit batches through the incremental engine
     serve      legalization-as-a-service daemon over a line-JSON socket *)

open Cmdliner
open Mclh_circuit
open Mclh_benchgen
open Mclh_core

let report_of design (r : Runner.report) =
  let b = Buffer.create 512 in
  let n = Design.num_cells design in
  Printf.bprintf b "algorithm        : %s\n" (Runner.name r.Runner.algorithm);
  Printf.bprintf b "cells            : %d\n" n;
  Printf.bprintf b "legal            : %b\n" r.Runner.legal;
  (match Runner.converged r with
  | Some c -> Printf.bprintf b "converged        : %b\n" c
  | None -> ());
  Printf.bprintf b "total disp       : %.1f sites (avg %.3f/cell, max %.1f)\n"
    r.Runner.displacement.Metrics.total_manhattan
    (Metrics.avg_manhattan r.Runner.displacement n)
    r.Runner.displacement.Metrics.max_manhattan;
  Printf.bprintf b "delta HPWL       : %.4f%%\n" (100.0 *. r.Runner.delta_hpwl);
  Printf.bprintf b "runtime          : %.3f s\n" r.Runner.runtime_s;
  if r.Runner.unplaced <> [] then
    Printf.bprintf b "unplaced         : %d\n" (List.length r.Runner.unplaced);
  (match r.Runner.mmsim with
  | Some f ->
    Printf.bprintf b "mmsim iterations : %d (total %d, converged %b)\n"
      f.Flow.solver.Solver.iterations f.Flow.solver.Solver.iterations_total
      f.Flow.solver.Solver.converged;
    let bs = f.Flow.solver.Solver.backends in
    Printf.bprintf b
      "backends         : chain_free %d, lemke %d, active_set %d, accel %d, \
       plain %d (fallbacks %d)\n"
      bs.Solver.chain_free bs.Solver.lemke bs.Solver.active_set bs.Solver.accel
      bs.Solver.plain bs.Solver.fallbacks;
    Printf.bprintf b "subcell mismatch : %.2e sites\n" f.Flow.solver.Solver.mismatch;
    Printf.bprintf b "illegal pre-fix  : %d\n" (Flow.illegal_after_mmsim f);
    Printf.bprintf b "order preserved  : %.4f\n"
      (Order.preservation design r.Runner.placement)
  | None -> ());
  (match r.Runner.fence with
  | Some s ->
    (* fenced run: the territory aggregates play the role of the solver
       summary above *)
    Printf.bprintf b "territories      : %d\n" s.Fence.territories;
    Printf.bprintf b "mmsim iterations : %d (converged %b)\n"
      (Fence.max_iterations s) (Fence.all_converged s);
    Printf.bprintf b "subcell mismatch : %.2e sites\n" (Fence.max_mismatch s);
    Printf.bprintf b "illegal pre-fix  : %d\n" (Fence.total_illegal s);
    List.iter
      (fun (t : Fence.territory_stats) ->
        Printf.bprintf b
          "  %-14s : %d cells, %d iterations, converged %b, %d illegal\n"
          t.Fence.name t.Fence.cells t.Fence.iterations t.Fence.converged
          t.Fence.illegal_before)
      s.Fence.per_territory;
    Printf.bprintf b "order preserved  : %.4f\n"
      (Order.preservation design r.Runner.placement)
  | None -> ());
  Buffer.contents b

(* ---- common arguments ---- *)

let bench_arg =
  let doc = "Benchmark name (see $(b,mclh list))." in
  Arg.(value & opt string "fft_2" & info [ "bench"; "b" ] ~docv:"NAME" ~doc)

let scale_arg =
  let doc = "Scale factor applied to the published cell counts." in
  Arg.(value & opt float 0.02 & info [ "scale"; "s" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Generator seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"K" ~doc)

let single_height_arg =
  let doc = "Section 5.3 mode: no doubled cells." in
  Arg.(value & flag & info [ "single-height" ] ~doc)

let alg_arg =
  let alts = String.concat ", " (List.map Runner.name Runner.all) in
  let doc = Printf.sprintf "Legalization algorithm (%s)." alts in
  let parse s =
    match Runner.of_name s with
    | Some a -> Ok a
    | None -> Error (`Msg (Printf.sprintf "unknown algorithm %S (%s)" s alts))
  in
  let print ppf a = Format.pp_print_string ppf (Runner.name a) in
  Arg.(
    value
    & opt (conv (parse, print)) Runner.Mmsim
    & info [ "alg"; "a" ] ~docv:"ALG" ~doc)

let svg_arg =
  let doc = "Also render the result to an SVG file." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)

let lambda_arg =
  let doc = "Penalty factor lambda of Problem (13)." in
  Arg.(value & opt float Config.default.Config.lambda & info [ "lambda" ] ~doc)

let eps_arg =
  let doc = "MMSIM stopping tolerance (site widths)." in
  Arg.(value & opt float Config.default.Config.eps & info [ "eps" ] ~doc)

let max_iter_arg =
  let doc = "MMSIM iteration budget per solve." in
  Arg.(
    value
    & opt int Config.default.Config.max_iter
    & info [ "max-iter" ] ~docv:"N" ~doc)

let progress_arg =
  let doc =
    "Print stage and iteration heartbeat lines to stderr while the flow \
     runs (model build, shard fan-out, solver iterations) — for watching \
     long full-scale runs. Never appears in reports or stdout and never \
     affects results."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let strict_arg =
  let doc =
    "Exit with status 3 when the solver fails to converge within its \
     iteration budget. Without this flag a placement is still produced \
     (the repair stage fixes whatever the solver reached) and \
     non-convergence only prints a warning on stderr."
  in
  Arg.(value & flag & info [ "strict-convergence" ] ~doc)

let metrics_out_arg =
  let doc =
    "Write the run's metrics (stage spans, convergence traces, repair \
     counters) to $(docv) as a versioned JSON run report. Implies metrics \
     collection; without this flag, collection follows the \
     $(b,MCLH_METRICS) environment gate."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let config_of ?(metrics_out = None) ?(progress = false) lambda eps max_iter =
  { Config.default with
    lambda;
    eps;
    max_iter;
    progress;
    metrics = Config.default.Config.metrics || metrics_out <> None }

(* a typed placement failure (design beyond capacity, over-subscribed
   fence, ...) surfaces as a clear stderr report + exit 2, never a crash *)
let report_unplaced (r : Runner.report) =
  match r.Runner.unplaced with
  | [] -> ()
  | ids ->
    let ids = List.sort_uniq compare ids in
    let n = List.length ids in
    let shown = List.filteri (fun i _ -> i < 16) ids in
    Printf.eprintf
      "ERROR: %d cell(s) could not be legally placed anywhere: %s%s\n\
       (the design likely exceeds capacity; the placement written is \
       partial)\n\
       %!"
      n
      (String.concat ", " (List.map string_of_int shown))
      (if n > 16 then Printf.sprintf " (+%d more)" (n - 16) else "")

(* A non-converged solve used to look exactly like success (the repair
   stage hides it); make it loud, and fatal under --strict-convergence. *)
let warn_nonconvergence ~strict (r : Runner.report) =
  match Runner.converged r with
  | Some false ->
    let delta_inf =
      match (r.Runner.mmsim, r.Runner.fence) with
      | Some f, _ -> f.Flow.solver.Solver.delta_inf
      | None, Some s -> Fence.max_delta_inf s
      | None, None -> Float.nan
    in
    Printf.eprintf "WARNING: solver did not converge (delta_inf=%.3e)\n%!"
      delta_inf;
    strict
  | Some true | None -> false

let write_metrics design (r : Runner.report) = function
  | None -> ()
  | Some path ->
    (match r.Runner.obs with
    | None -> ()
    | Some obs ->
      let open Mclh_report in
      let meta =
        [ ("design", Json.String design.Design.name);
          ("cells", Json.Int (Design.num_cells design));
          ("algorithm", Json.String (Runner.name r.Runner.algorithm));
          ("legal", Json.Bool r.Runner.legal);
          ("runtime_s", Json.Float r.Runner.runtime_s) ]
        @
        match Runner.converged r with
        | Some c -> [ ("converged", Json.Bool c) ]
        | None -> []
      in
      Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs);
      Printf.printf "metrics          : %s\n" path)

let refine_arg =
  let doc =
    "Run the detailed-placement refinement (global moves, swaps, window \
     reordering) after legalization."
  in
  Arg.(value & flag & info [ "refine" ] ~doc)

let maybe_refine design refine (r : Runner.report) =
  if not refine then r
  else begin
    let refined, stats = Mclh_refine.Refine.run design r.Runner.placement in
    Printf.printf "refinement       : HPWL %.1f -> %.1f (%.2f%%), %d moves, %d swaps, %d reorders\n"
      stats.Mclh_refine.Refine.hpwl_before stats.hpwl_after
      (100.0 *. Mclh_refine.Refine.improvement stats)
      stats.moves stats.swaps stats.reorders;
    { r with
      Runner.placement = refined;
      legal = Mclh_circuit.Legality.is_legal design refined;
      delta_hpwl =
        Hpwl.delta ~row_height:design.Design.chip.Chip.row_height
          design.Design.nets ~before:design.Design.global refined }
  end

let blockage_arg =
  let doc = "Fraction of the chip area covered by fixed blockages." in
  Arg.(value & opt float 0.0 & info [ "blockages" ] ~docv:"FRAC" ~doc)

let tall_arg =
  let doc = "Fraction of the doubled cells regenerated as 3x/4x-height cells." in
  Arg.(value & opt float 0.0 & info [ "tall" ] ~docv:"FRAC" ~doc)

let fences_arg =
  let doc = "Number of exclusive fence regions to generate." in
  Arg.(value & opt int 0 & info [ "fences" ] ~docv:"K" ~doc)

let scenario_arg =
  let alts = String.concat ", " Scenario.names in
  let doc =
    Printf.sprintf
      "Generate a hard scenario instead of a Table-1 benchmark (%s). \
       Overrides $(b,--bench) and the generator knobs."
      alts
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)

let generate_instance name scale seed single_height blockages tall fences
    scenario =
  match scenario with
  | Some s -> (
    match Scenario.of_name s with
    | Some kind -> Scenario.generate ~seed ~scale kind
    | None ->
      Printf.eprintf "unknown scenario %S (%s)\n" s
        (String.concat ", " Scenario.names);
      exit 1)
  | None ->
    (match Spec.find name with
    | exception Not_found ->
      Printf.eprintf "unknown benchmark %S\n" name;
      exit 1
    | _ -> ());
    let options =
      { Generate.default_options with
        seed;
        single_height_only = single_height;
        blockage_fraction = blockages;
        tall_cell_fraction = tall;
        fence_count = fences }
    in
    Generate.generate ~options (Spec.scaled scale (Spec.find name))

(* ---- subcommands ---- *)

let list_cmd =
  let run () =
    Printf.printf "%-16s %10s %9s %8s %9s\n" "benchmark" "#singles" "#doubles"
      "density" "GP HPWL";
    List.iter
      (fun (s : Spec.t) ->
        Printf.printf "%-16s %10d %9d %8.2f %8.2fm\n" s.Spec.name s.Spec.singles
          s.Spec.doubles s.Spec.density s.Spec.gp_hpwl_m)
      Spec.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite (paper Table 1).")
    Term.(const run $ const ())

let gen_cmd =
  let out_arg =
    let doc = "Output design file." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run bench scale seed single_height blockages tall fences scenario out =
    let inst =
      generate_instance bench scale seed single_height blockages tall fences
        scenario
    in
    Io.write_design ~path:out inst.Generate.design;
    let d = inst.Generate.design in
    Printf.printf "wrote %s: %d cells, %d nets, chip %dx%d, density %.3f\n" out
      (Design.num_cells d)
      (Netlist.num_nets d.Design.nets)
      d.Design.chip.Chip.num_rows d.Design.chip.Chip.num_sites
      (Design.density d)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark instance.")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ single_height_arg
      $ blockage_arg $ tall_arg $ fences_arg $ scenario_arg $ out_arg)

let legalize_cmd =
  let in_arg =
    let doc = "Input design file." in
    Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output placement file." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run input alg output svg lambda eps max_iter strict refine metrics_out
      progress =
    let design = Io.read_design ~path:input in
    let r =
      Runner.run
        ~config:(config_of ~metrics_out ~progress lambda eps max_iter)
        alg design
    in
    let r = maybe_refine design refine r in
    print_string (report_of design r);
    report_unplaced r;
    let strict_fail = warn_nonconvergence ~strict r in
    write_metrics design r metrics_out;
    Option.iter
      (fun path ->
        Io.write_placement ~path r.Runner.placement;
        Printf.printf "placement        : %s\n" path)
      output;
    Option.iter
      (fun path ->
        Svg.write_file ~path design r.Runner.placement;
        Printf.printf "svg              : %s\n" path)
      svg;
    if not r.Runner.legal then exit 2;
    if strict_fail then exit 3
  in
  Cmd.v
    (Cmd.info "legalize" ~doc:"Legalize a design file.")
    Term.(
      const run $ in_arg $ alg_arg $ out_arg $ svg_arg $ lambda_arg $ eps_arg
      $ max_iter_arg $ strict_arg $ refine_arg $ metrics_out_arg
      $ progress_arg)

let run_cmd =
  let run bench scale seed single_height blockages tall fences scenario alg
      svg lambda eps max_iter strict refine metrics_out progress =
    if progress then
      Printf.eprintf "[mclh] generating %s at scale %g\n%!"
        (Option.value scenario ~default:bench)
        scale;
    let inst =
      generate_instance bench scale seed single_height blockages tall fences
        scenario
    in
    let design = inst.Generate.design in
    let r =
      Runner.run
        ~config:(config_of ~metrics_out ~progress lambda eps max_iter)
        alg design
    in
    let r = maybe_refine design refine r in
    print_string (report_of design r);
    report_unplaced r;
    let strict_fail = warn_nonconvergence ~strict r in
    write_metrics design r metrics_out;
    Option.iter
      (fun path ->
        Svg.write_file ~path design r.Runner.placement;
        Printf.printf "svg              : %s\n" path)
      svg;
    if not r.Runner.legal then exit 2;
    if strict_fail then exit 3
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Generate and legalize in one step.")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ single_height_arg
      $ blockage_arg $ tall_arg $ fences_arg $ scenario_arg $ alg_arg
      $ svg_arg $ lambda_arg $ eps_arg $ max_iter_arg $ strict_arg
      $ refine_arg $ metrics_out_arg $ progress_arg)

let audit_cmd =
  let module Audit = Mclh_audit.Audit in
  let in_arg =
    let doc =
      "Audit an existing design file instead of generating an instance."
    in
    Arg.(value & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let placement_arg =
    let doc =
      "Audit this placement file (with $(b,--in); defaults to legalizing \
       the design first)."
    in
    Arg.(
      value & opt (some string) None & info [ "p"; "placement" ] ~docv:"FILE" ~doc)
  in
  let windows_arg =
    let doc = "Number of windows to sample." in
    Arg.(value & opt int 16 & info [ "windows"; "w" ] ~docv:"K" ~doc)
  in
  let max_cells_arg =
    let doc = "Maximum movable cells per window (exact solve size)." in
    Arg.(value & opt int 8 & info [ "max-cells" ] ~docv:"N" ~doc)
  in
  let max_nodes_arg =
    let doc = "Branch-and-bound node budget per window." in
    Arg.(value & opt int 20_000 & info [ "max-nodes" ] ~docv:"N" ~doc)
  in
  let run bench scale seed single_height blockages tall fences scenario input
      placement_path alg windows max_cells max_nodes lambda eps max_iter
      metrics_out progress =
    let design, placement =
      match input with
      | Some path ->
        let design = Io.read_design ~path in
        let placement =
          match placement_path with
          | Some p -> Io.read_placement ~path:p
          | None ->
            let r =
              Runner.run
                ~config:(config_of ~metrics_out ~progress lambda eps max_iter)
                alg design
            in
            report_unplaced r;
            r.Runner.placement
        in
        (design, placement)
      | None ->
        let inst =
          generate_instance bench scale seed single_height blockages tall
            fences scenario
        in
        let design = inst.Generate.design in
        let r =
          Runner.run
            ~config:(config_of ~metrics_out ~progress lambda eps max_iter)
            alg design
        in
        report_unplaced r;
        (design, r.Runner.placement)
    in
    let obs = Some (Mclh_obs.Obs.create ()) in
    let s =
      Audit.run ~seed ~count:windows ~max_cells ~max_nodes ?obs design
        placement
    in
    Printf.printf "design           : %s (%d cells)\n" design.Design.name
      (Design.num_cells design);
    Printf.printf "windows sampled  : %d\n" s.Audit.sampled;
    Printf.printf "audited (exact)  : %d\n" s.Audit.audited;
    Printf.printf "certified optimal: %d\n" s.Audit.certified;
    Printf.printf "max gap          : %.4f sq.sites\n" s.Audit.max_gap;
    Printf.printf "total gap        : %.4f sq.sites\n" s.Audit.total_gap;
    Printf.printf "infeasible       : %d\n" s.Audit.infeasible;
    Printf.printf "budget exceeded  : %d\n" s.Audit.budget_out;
    List.iteri
      (fun i (w : Audit.window_report) ->
        let status =
          match w.Audit.status with
          | Audit.Certified -> "certified"
          | Audit.Gap g -> Printf.sprintf "gap %.4f" g
          | Audit.Unproven g -> Printf.sprintf "gap <= %.4f (unproven)" g
          | Audit.Window_infeasible -> "infeasible"
          | Audit.Budget_out -> "budget out"
        in
        Printf.printf
          "  window %2d : rows %d+%d, x [%d, %d), %d cells, %d nodes, %s\n" i
          w.Audit.window.Mclh_audit.Window.row0
          w.Audit.window.Mclh_audit.Window.rows
          w.Audit.window.Mclh_audit.Window.x0
          w.Audit.window.Mclh_audit.Window.x1 w.Audit.cells w.Audit.nodes
          status)
      s.Audit.reports;
    (match (metrics_out, obs) with
    | Some path, Some obs ->
      let open Mclh_report in
      let meta =
        [ ("design", Json.String design.Design.name);
          ("cells", Json.Int (Design.num_cells design));
          ("windows", Json.Int s.Audit.sampled);
          ("certified", Json.Int s.Audit.certified);
          ("max_gap", Json.Float s.Audit.max_gap) ]
      in
      Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs);
      Printf.printf "metrics          : %s\n" path
    | _ -> ())
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Sample small windows of a legalized placement and re-solve each \
          exactly (branch-and-bound over orderings, convex QP per leaf); \
          report per-window optimality gaps. A zero gap certifies the \
          window is optimally placed given its surroundings.")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ single_height_arg
      $ blockage_arg $ tall_arg $ fences_arg $ scenario_arg $ in_arg
      $ placement_arg $ alg_arg $ windows_arg $ max_cells_arg $ max_nodes_arg
      $ lambda_arg $ eps_arg $ max_iter_arg $ metrics_out_arg $ progress_arg)

let check_cmd =
  let design_arg =
    let doc = "Design file." in
    Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let placement_arg =
    let doc = "Placement file." in
    Arg.(
      required & opt (some string) None & info [ "p"; "placement" ] ~docv:"FILE" ~doc)
  in
  let run design_path placement_path =
    let design = Io.read_design ~path:design_path in
    let placement = Io.read_placement ~path:placement_path in
    let violations = Legality.check design placement in
    let rh = design.Design.chip.Chip.row_height in
    let m = Metrics.displacement ~row_height:rh ~before:design.Design.global placement in
    Printf.printf "cells      : %d\n" (Design.num_cells design);
    Printf.printf "violations : %d\n" (List.length violations);
    List.iteri
      (fun i v -> if i < 20 then Format.printf "  %a@." Legality.pp_violation v)
      violations;
    if List.length violations > 20 then Printf.printf "  ...\n";
    Printf.printf "total disp : %.1f sites\n" m.Metrics.total_manhattan;
    Printf.printf "delta HPWL : %.4f%%\n"
      (100.0
      *. Hpwl.delta ~row_height:rh design.Design.nets ~before:design.Design.global
           placement);
    if violations <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a placement against a design.")
    Term.(const run $ design_arg $ placement_arg)

let stats_cmd =
  let design_arg =
    let doc = "Design file (native format or Bookshelf .aux)." in
    Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let placement_arg =
    let doc = "Placement file (defaults to the design's global placement)." in
    Arg.(value & opt (some string) None & info [ "p"; "placement" ] ~docv:"FILE" ~doc)
  in
  let svg_arg =
    let doc = "Write the utilization heatmap to an SVG file." in
    Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"FILE" ~doc)
  in
  let run design_path placement_path svg =
    let design =
      if Filename.check_suffix design_path ".aux" then
        Bookshelf.read ~aux:design_path
      else Io.read_design ~path:design_path
    in
    let placement =
      match placement_path with
      | Some p -> Io.read_placement ~path:p
      | None -> design.Design.global
    in
    let n = Design.num_cells design in
    Printf.printf "design        : %s\n" design.Design.name;
    Printf.printf "cells         : %d (%s)\n" n
      (Design.count_by_height design
      |> List.map (fun (h, c) -> Printf.sprintf "%dx height %d" c h)
      |> String.concat ", ");
    Printf.printf "chip          : %d rows x %d sites (row height %g)\n"
      design.Design.chip.Chip.num_rows design.Design.chip.Chip.num_sites
      design.Design.chip.Chip.row_height;
    Printf.printf "blockages     : %d\n" (Array.length design.Design.blockages);
    Printf.printf "density       : %.3f\n" (Design.density design);
    Printf.printf "nets          : %d (HPWL %.1f)\n"
      (Netlist.num_nets design.Design.nets)
      (Hpwl.total ~row_height:design.Design.chip.Chip.row_height
         design.Design.nets placement);
    let m = Density.map design placement in
    let o = Density.overflow m in
    Printf.printf "bin grid      : %d x %d\n" m.Density.bins_x m.Density.bins_y;
    Printf.printf "utilization   : mean %.3f, max %.3f\n" o.Density.mean_utilization
      o.Density.max_utilization;
    Printf.printf "overflow      : %d bins over 100%%, ratio %.4f\n"
      o.Density.overflowed_bins o.Density.overflow_ratio;
    let rows = Density.row_utilization design placement in
    let worst = Array.fold_left Float.max 0.0 rows in
    Printf.printf "rows          : worst utilization %.3f\n" worst;
    Format.printf "%a@." Density.pp_histogram m;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Density.to_svg m);
        close_out oc;
        Printf.printf "heatmap       : %s\n" path)
      svg
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Density and utilization analysis.")
    Term.(const run $ design_arg $ placement_arg $ svg_arg)

let eco_cmd =
  let in_arg =
    let doc = "Input design file." in
    Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let edits_arg =
    let doc = "Edits file (see the mclh-edits format in Mclh_incr.Edit)." in
    Arg.(
      required & opt (some string) None & info [ "e"; "edits" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output placement file (state after the last batch)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let out_design_arg =
    let doc =
      "Also write the post-edit design (inserts/deletes renumber cells, so \
       the output placement only checks against this design, not the \
       input)."
    in
    Arg.(
      value & opt (some string) None & info [ "out-design" ] ~docv:"FILE" ~doc)
  in
  let verify_arg =
    let doc =
      "After the last batch, re-legalize the final design from cold and \
       report the maximum position difference and the MMSIM iterations the \
       incremental engine saved."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run input edits_path output out_design lambda eps max_iter strict verify
      metrics_out =
    let design = Io.read_design ~path:input in
    let batches = Mclh_incr.Edit.read_file ~path:edits_path in
    if batches = [] then begin
      Printf.eprintf "no batches in %s\n" edits_path;
      exit 1
    end;
    let config = config_of ~metrics_out lambda eps max_iter in
    let obs =
      if config.Config.metrics then Some (Mclh_obs.Obs.create ()) else None
    in
    let t0 = Mclh_par.Clock.now () in
    let session = Mclh_incr.Incr.create ~config ?obs design in
    let initial_s = Mclh_par.Clock.now () -. t0 in
    Printf.printf "initial legalize : %d cells in %.3f s\n"
      (Design.num_cells design) initial_s;
    Printf.printf "%5s %6s %7s %12s %5s %6s %11s %5s\n" "batch" "edits"
      "touched" "dirty/shards" "hits" "iters" "latency(ms)" "conv";
    let total_iters = ref 0
    and total_latency = ref 0.0
    and nonconverged = ref 0 in
    List.iteri
      (fun i batch ->
        let st = Mclh_incr.Incr.apply session batch in
        total_iters := !total_iters + st.Mclh_incr.Incr.solve_iterations;
        total_latency := !total_latency +. st.Mclh_incr.Incr.latency_s;
        if not st.Mclh_incr.Incr.converged then incr nonconverged;
        Printf.printf "%5d %6d %7d %6d/%-5d %5d %6d %11.2f %5b\n" (i + 1)
          st.Mclh_incr.Incr.edits st.Mclh_incr.Incr.touched_cells
          st.Mclh_incr.Incr.dirty_shards st.Mclh_incr.Incr.shards
          st.Mclh_incr.Incr.cache_hits st.Mclh_incr.Incr.solve_iterations
          (1000.0 *. st.Mclh_incr.Incr.latency_s)
          st.Mclh_incr.Incr.converged)
      batches;
    Printf.printf "batches          : %d in %.3f s (%d solve iterations)\n"
      (List.length batches) !total_latency !total_iters;
    Printf.printf "cache            : %d entries\n"
      (Mclh_incr.Incr.cache_entries session);
    let design' = Mclh_incr.Incr.design session in
    let incr_legal = Mclh_incr.Incr.legal session in
    let legal = Legality.is_legal design' incr_legal in
    let all_converged = !nonconverged = 0 in
    Printf.printf "legal            : %b\n" legal;
    Printf.printf "converged        : %b\n" all_converged;
    if not all_converged then
      Printf.eprintf
        "WARNING: solver did not converge (%d of %d batches hit the \
         iteration budget)\n\
         %!"
        !nonconverged (List.length batches);
    if verify then begin
      let t1 = Mclh_par.Clock.now () in
      let cold = Flow.run ~config design' in
      let cold_s = Mclh_par.Clock.now () -. t1 in
      let open Mclh_linalg in
      let dx =
        Vec.dist_inf cold.Flow.legal.Placement.xs incr_legal.Placement.xs
      and dy =
        Vec.dist_inf cold.Flow.legal.Placement.ys incr_legal.Placement.ys
      in
      let cold_iters = cold.Flow.solver.Solver.iterations_total in
      Printf.printf "verify           : max |dx| %.2e sites, max |dy| %.2e rows\n"
        dx dy;
      Printf.printf "iterations saved : %d of %d cold (%.1f%%)\n"
        (cold_iters - !total_iters)
        cold_iters
        (if cold_iters = 0 then 0.0
         else
           100.0
           *. float_of_int (cold_iters - !total_iters)
           /. float_of_int cold_iters);
      Printf.printf "cold re-run      : %.3f s (incremental total %.3f s)\n"
        cold_s !total_latency
    end;
    (match (metrics_out, obs) with
    | Some path, Some obs ->
      let open Mclh_report in
      let meta =
        [ ("design", Json.String design'.Design.name);
          ("cells", Json.Int (Design.num_cells design'));
          ("batches", Json.Int (Mclh_incr.Incr.num_batches session));
          ("legal", Json.Bool legal);
          ("converged", Json.Bool all_converged) ]
      in
      Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs);
      Printf.printf "metrics          : %s\n" path
    | _ -> ());
    Option.iter
      (fun path ->
        Io.write_placement ~path incr_legal;
        Printf.printf "placement        : %s\n" path)
      output;
    Option.iter
      (fun path ->
        Io.write_design ~path design';
        Printf.printf "design           : %s\n" path)
      out_design;
    if not legal then exit 2;
    if strict && not all_converged then exit 3
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Apply ECO edit batches with the incremental re-legalization engine.")
    Term.(
      const run $ in_arg $ edits_arg $ out_arg $ out_design_arg $ lambda_arg
      $ eps_arg $ max_iter_arg $ strict_arg $ verify_arg $ metrics_out_arg)

(* ---- global placement ---- *)

let gp_rounds_arg =
  let doc = "Maximum global-placement rounds." in
  Arg.(
    value
    & opt int Mclh_gp.Gp.default_options.Mclh_gp.Gp.iterations
    & info [ "gp-rounds" ] ~docv:"N" ~doc)

let target_density_arg =
  let doc = "Target utilization per density bin." in
  Arg.(
    value
    & opt float Mclh_gp.Gp.default_options.Mclh_gp.Gp.target_density
    & info [ "target-density" ] ~docv:"D" ~doc)

let stop_overflow_arg =
  let doc =
    "Stop spreading once the density overflow falls to this fraction of \
     the movable area."
  in
  Arg.(
    value
    & opt float Mclh_gp.Gp.default_options.Mclh_gp.Gp.stop_overflow
    & info [ "stop-overflow" ] ~docv:"F" ~doc)

let grid_arg =
  let doc =
    "Density bins per side (a power of two; default picked from the cell \
     count)."
  in
  Arg.(value & opt (some int) None & info [ "grid" ] ~docv:"M" ~doc)

let no_density_arg =
  let doc =
    "Disable the density force: the legacy lookahead-anchor placer (a \
     fixed round count, Tetris-legalized anchors)."
  in
  Arg.(value & flag & info [ "no-density" ] ~doc)

let net_model_arg =
  let doc = "Quadratic net model: $(b,clique) or $(b,b2b)." in
  let parse = function
    | "clique" -> Ok Mclh_gp.Gp.Clique
    | "b2b" -> Ok Mclh_gp.Gp.B2b
    | s -> Error (`Msg (Printf.sprintf "unknown net model %S (clique, b2b)" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with Mclh_gp.Gp.Clique -> "clique" | Mclh_gp.Gp.B2b -> "b2b")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Mclh_gp.Gp.default_options.Mclh_gp.Gp.net_model
    & info [ "net-model" ] ~docv:"MODEL" ~doc)

let gp_options_of rounds target stop grid no_density net_model =
  { Mclh_gp.Gp.default_options with
    Mclh_gp.Gp.iterations = rounds;
    target_density = target;
    stop_overflow = stop;
    grid;
    density = not no_density;
    net_model }

let gp_round_table (stats : Mclh_gp.Gp.stats) =
  Printf.printf "%5s %9s %11s %9s %9s %8s %10s\n" "round" "alpha" "HPWL"
    "overflow" "max util" "cg iters" "density ms";
  List.iter
    (fun (r : Mclh_gp.Gp.round) ->
      Printf.printf "%5d %9.4f %11.0f %8.1f%% %9.2f %8d %10.2f\n"
        r.Mclh_gp.Gp.index r.Mclh_gp.Gp.alpha r.Mclh_gp.Gp.hpwl
        (100.0 *. r.Mclh_gp.Gp.overflow)
        r.Mclh_gp.Gp.max_utilization r.Mclh_gp.Gp.cg_iterations
        (1000.0 *. r.Mclh_gp.Gp.density_seconds))
    stats.Mclh_gp.Gp.rounds

(* the design with the GP output installed as its global placement — the
   instance the legalization flow consumes *)
let design_with_global (design : Design.t) pl =
  Design.make ~blockages:design.Design.blockages
    ~regions:design.Design.regions ~name:design.Design.name
    ~chip:design.Design.chip ~cells:design.Design.cells ~global:pl
    ~nets:design.Design.nets ()

let read_or_generate input bench scale seed single_height blockages tall
    fences scenario =
  match input with
  | Some path -> Io.read_design ~path
  | None ->
    (generate_instance bench scale seed single_height blockages tall fences
       scenario)
      .Generate.design

let place_cmd =
  let in_arg =
    let doc =
      "Place this design file instead of generating an instance (its \
       global placement is discarded; the placer starts from the netlist)."
    in
    Arg.(value & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output placement file (the fractional GP positions)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let out_design_arg =
    let doc =
      "Write the design with the GP output installed as its global \
       placement — the file $(b,mclh legalize) consumes."
    in
    Arg.(
      value & opt (some string) None & info [ "out-design" ] ~docv:"FILE" ~doc)
  in
  let edits_out_arg =
    let doc =
      "Write the per-round placement deltas as mclh-edits batches: replay \
       the placer's trajectory through $(b,mclh eco) against the design \
       written by $(b,--edits-base) (whose global placement is the first \
       round's snapshot)."
    in
    Arg.(
      value & opt (some string) None & info [ "edits-out" ] ~docv:"FILE" ~doc)
  in
  let edits_base_arg =
    let doc =
      "With $(b,--edits-out): write the base design the edit batches \
       apply to."
    in
    Arg.(
      value & opt (some string) None & info [ "edits-base" ] ~docv:"FILE" ~doc)
  in
  let run bench scale seed single_height blockages tall fences scenario input
      output out_design edits_out edits_base svg metrics_out gp_rounds
      target_density stop_overflow grid no_density net_model =
    let design =
      read_or_generate input bench scale seed single_height blockages tall
        fences scenario
    in
    let options =
      gp_options_of gp_rounds target_density stop_overflow grid no_density
        net_model
    in
    let obs =
      if metrics_out <> None || Mclh_obs.Obs.enabled_from_env () then
        Some (Mclh_obs.Obs.create ())
      else None
    in
    let snapshots = ref [] in
    let on_round =
      if edits_out = None then None
      else Some (fun _ pl -> snapshots := Placement.copy pl :: !snapshots)
    in
    let (gp, stats), seconds =
      Mclh_par.Clock.timed (fun () ->
          Mclh_gp.Gp.place ~options ?obs ?on_round design)
    in
    let placed = design_with_global design gp in
    let illegal_pre = Legality.count_illegal placed gp in
    Printf.printf "design           : %s (%d cells, %d nets)\n"
      design.Design.name (Design.num_cells design)
      (Netlist.num_nets design.Design.nets);
    gp_round_table stats;
    Printf.printf "rounds           : %d (grid %dx%d)\n"
      (List.length stats.Mclh_gp.Gp.rounds)
      stats.Mclh_gp.Gp.grid stats.Mclh_gp.Gp.grid;
    Printf.printf "final HPWL       : %.0f\n" stats.Mclh_gp.Gp.final_hpwl;
    Printf.printf "final overflow   : %.2f%%\n"
      (100.0 *. stats.Mclh_gp.Gp.final_overflow);
    Printf.printf "illegal cells    : %d (pre-legalization)\n" illegal_pre;
    Printf.printf "runtime          : %.3f s\n" seconds;
    (match (metrics_out, obs) with
    | Some path, Some obs ->
      let open Mclh_report in
      let meta =
        [ ("design", Json.String design.Design.name);
          ("cells", Json.Int (Design.num_cells design));
          ("rounds", Json.Int (List.length stats.Mclh_gp.Gp.rounds));
          ("grid", Json.Int stats.Mclh_gp.Gp.grid);
          ("final_hpwl", Json.Float stats.Mclh_gp.Gp.final_hpwl);
          ("final_overflow", Json.Float stats.Mclh_gp.Gp.final_overflow);
          ("illegal_pre", Json.Int illegal_pre) ]
      in
      Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs);
      Printf.printf "metrics          : %s\n" path
    | _ -> ());
    Option.iter
      (fun path ->
        Io.write_placement ~path gp;
        Printf.printf "placement        : %s\n" path)
      output;
    Option.iter
      (fun path ->
        Io.write_design ~path placed;
        Printf.printf "design           : %s\n" path)
      out_design;
    (match edits_out with
    | None -> ()
    | Some path ->
      let snaps = List.rev !snapshots in
      Mclh_gp.Eco_bridge.write ~path snaps;
      Printf.printf "edits            : %s (%d batches)\n" path
        (List.length (Mclh_gp.Eco_bridge.batches_of_rounds snaps));
      Option.iter
        (fun base ->
          (match snaps with
          | first :: _ -> Io.write_design ~path:base (design_with_global design first)
          | [] -> ());
          Printf.printf "edits base       : %s\n" base)
        edits_base);
    Option.iter
      (fun path ->
        Svg.write_file ~path placed gp;
        Printf.printf "svg              : %s\n" path)
      svg
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Density-driven analytical global placement: quadratic wirelength \
          (CG) alternating with FFT-solved Poisson density forces. The \
          output is fractional and overlapping — feed it to $(b,mclh \
          legalize) or use $(b,mclh pipeline).")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ single_height_arg
      $ blockage_arg $ tall_arg $ fences_arg $ scenario_arg $ in_arg
      $ out_arg $ out_design_arg $ edits_out_arg $ edits_base_arg $ svg_arg
      $ metrics_out_arg $ gp_rounds_arg $ target_density_arg
      $ stop_overflow_arg $ grid_arg $ no_density_arg $ net_model_arg)

let pipeline_cmd =
  let in_arg =
    let doc = "Run the pipeline on this design file (netlist only; its \
               global placement is discarded)." in
    Arg.(value & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Output placement file (final legal positions)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let no_refine_arg =
    let doc = "Skip the detailed-placement refinement stage." in
    Arg.(value & flag & info [ "no-refine" ] ~doc)
  in
  let run bench scale seed single_height blockages tall fences scenario input
      output svg alg lambda eps max_iter strict metrics_out progress no_refine
      gp_rounds target_density stop_overflow grid no_density net_model =
    let design =
      read_or_generate input bench scale seed single_height blockages tall
        fences scenario
    in
    let rh = design.Design.chip.Chip.row_height in
    let options =
      gp_options_of gp_rounds target_density stop_overflow grid no_density
        net_model
    in
    let config = config_of ~metrics_out ~progress lambda eps max_iter in
    let obs =
      if config.Config.metrics then Some (Mclh_obs.Obs.create ()) else None
    in
    if progress then
      Printf.eprintf "[mclh] pipeline: global placement (%d cells)\n%!"
        (Design.num_cells design);
    (* stage 1: global placement *)
    let (gp, gp_stats), gp_s =
      Mclh_par.Clock.timed (fun () -> Mclh_gp.Gp.place ~options ?obs design)
    in
    Mclh_obs.Obs.record_span obs "pipeline/gp" gp_s;
    let placed = design_with_global design gp in
    let illegal_pre = Legality.count_illegal placed gp in
    Printf.printf "design           : %s (%d cells, %d nets)\n"
      design.Design.name (Design.num_cells design)
      (Netlist.num_nets design.Design.nets);
    Printf.printf "gp               : %d rounds, HPWL %.0f, overflow %.2f%%, \
                   %d illegal, %.3f s\n"
      (List.length gp_stats.Mclh_gp.Gp.rounds)
      gp_stats.Mclh_gp.Gp.final_hpwl
      (100.0 *. gp_stats.Mclh_gp.Gp.final_overflow)
      illegal_pre gp_s;
    (* stage 2: legalization *)
    if progress then Printf.eprintf "[mclh] pipeline: legalization\n%!";
    let r, legalize_s =
      Mclh_par.Clock.timed (fun () -> Runner.run ~config ?obs alg placed)
    in
    Mclh_obs.Obs.record_span obs "pipeline/legalize" legalize_s;
    let hpwl_legal = Hpwl.total ~row_height:rh placed.Design.nets r.Runner.placement in
    Printf.printf "legalize         : %s, legal %b, dHPWL %+.2f%%, %.3f s\n"
      (Runner.name alg) r.Runner.legal
      (100.0 *. r.Runner.delta_hpwl)
      legalize_s;
    report_unplaced r;
    let strict_fail = warn_nonconvergence ~strict r in
    (* stage 3: refinement *)
    let final, refine_line =
      if no_refine then (r.Runner.placement, None)
      else begin
        if progress then Printf.eprintf "[mclh] pipeline: refinement\n%!";
        let (refined, stats), refine_s =
          Mclh_par.Clock.timed (fun () ->
              Mclh_refine.Refine.run placed r.Runner.placement)
        in
        Mclh_obs.Obs.record_span obs "pipeline/refine" refine_s;
        ( refined,
          Some
            (Printf.sprintf
               "refine           : HPWL %.0f -> %.0f (%.2f%%), %.3f s"
               stats.Mclh_refine.Refine.hpwl_before stats.hpwl_after
               (100.0 *. Mclh_refine.Refine.improvement stats)
               refine_s) )
      end
    in
    Option.iter print_endline refine_line;
    let legal = Legality.is_legal placed final in
    let dhpwl =
      Hpwl.delta ~row_height:rh placed.Design.nets ~before:gp final
    in
    ignore hpwl_legal;
    Printf.printf "pipeline         : legal %b, dHPWL vs GP %+.2f%%\n" legal
      (100.0 *. dhpwl);
    (match (metrics_out, obs) with
    | Some path, Some obs ->
      let open Mclh_report in
      let meta =
        [ ("design", Json.String design.Design.name);
          ("cells", Json.Int (Design.num_cells design));
          ("gp_rounds", Json.Int (List.length gp_stats.Mclh_gp.Gp.rounds));
          ("gp_overflow", Json.Float gp_stats.Mclh_gp.Gp.final_overflow);
          ("illegal_pre", Json.Int illegal_pre);
          ("legal", Json.Bool legal);
          ("delta_hpwl_vs_gp", Json.Float dhpwl) ]
      in
      Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs);
      Printf.printf "metrics          : %s\n" path
    | _ -> ());
    Option.iter
      (fun path ->
        Io.write_placement ~path final;
        Printf.printf "placement        : %s\n" path)
      output;
    Option.iter
      (fun path ->
        Svg.write_file ~path placed final;
        Printf.printf "svg              : %s\n" path)
      svg;
    if not legal then exit 2;
    if strict_fail then exit 3
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:
         "The full flow in one command: density-driven global placement, \
          then legalization, then detailed-placement refinement — with \
          per-stage spans in the metrics report. Exit 0 iff the final \
          placement is legal.")
    Term.(
      const run $ bench_arg $ scale_arg $ seed_arg $ single_height_arg
      $ blockage_arg $ tall_arg $ fences_arg $ scenario_arg $ in_arg
      $ out_arg $ svg_arg $ alg_arg $ lambda_arg $ eps_arg $ max_iter_arg
      $ strict_arg $ metrics_out_arg $ progress_arg $ no_refine_arg
      $ gp_rounds_arg $ target_density_arg $ stop_overflow_arg $ grid_arg
      $ no_density_arg $ net_model_arg)

let convert_cmd =
  let in_arg =
    let doc = "Input design: native file or Bookshelf .aux." in
    Arg.(required & opt (some string) None & info [ "i"; "in" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc =
      "Output: a path ending in .mclh for the native format, anything else \
       is used as a Bookshelf basename (five files are written)."
    in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run input output =
    let design =
      if Filename.check_suffix input ".aux" then Bookshelf.read ~aux:input
      else Io.read_design ~path:input
    in
    if Filename.check_suffix output ".mclh" then begin
      Io.write_design ~path:output design;
      Printf.printf "wrote %s (native)\n" output
    end
    else begin
      Bookshelf.write ~basename:output design;
      Printf.printf "wrote %s.{aux,nodes,nets,wts,pl,scl} (bookshelf)\n" output
    end
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between native and Bookshelf formats.")
    Term.(const run $ in_arg $ out_arg)

let serve_cmd =
  let module Serve = Mclh_serve in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv) (the default, at \
               /tmp/mclh.sock)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Listen on TCP at $(docv) instead of a Unix socket; port 0 \
               binds an ephemeral port (the resolved address is printed on \
               startup)." in
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT" ~doc)
  in
  let max_sessions_arg =
    let doc = "Maximum concurrently open sessions." in
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_sessions
      & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc = "Admission control: maximum edit batches admitted (queued or \
               applying) across all sessions; further batches are refused \
               with a $(b,busy) reply." in
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let no_coalesce_arg =
    let doc = "Apply every edit batch individually instead of merging \
               queued renumbering-free runs per session." in
    Arg.(value & flag & info [ "no-coalesce" ] ~doc)
  in
  let run socket tcp max_sessions max_inflight no_coalesce lambda eps max_iter =
    let addr =
      match (socket, tcp) with
      | Some _, Some _ ->
        prerr_endline "mclh serve: --socket and --tcp are mutually exclusive";
        exit 2
      | Some path, None -> Serve.Protocol.Unix_sock path
      | None, Some hp -> (
        match String.rindex_opt hp ':' with
        | Some i -> (
          let host = String.sub hp 0 i
          and port = String.sub hp (i + 1) (String.length hp - i - 1) in
          let host = if host = "" then "127.0.0.1" else host in
          match int_of_string_opt port with
          | Some p -> Serve.Protocol.Tcp (host, p)
          | None ->
            prerr_endline "mclh serve: --tcp wants HOST:PORT";
            exit 2)
        | None ->
          prerr_endline "mclh serve: --tcp wants HOST:PORT";
          exit 2)
      | None, None -> Serve.Protocol.Unix_sock "/tmp/mclh.sock"
    in
    let incr_config =
      { (config_of lambda eps max_iter) with Config.metrics = true }
    in
    let config =
      { Serve.Server.default_config with
        Serve.Server.incr_config;
        max_sessions;
        max_inflight;
        coalesce = not no_coalesce }
    in
    let srv = Serve.Server.create ~config () in
    let bound = Serve.Server.start srv addr in
    Printf.printf "mclh serve: listening on %s (protocol v%d)\n%!"
      (Serve.Protocol.pp_address bound) Serve.Protocol.version;
    let on_signal = Sys.Signal_handle (fun _ -> Serve.Server.shutdown srv) in
    (try Sys.set_signal Sys.sigint on_signal with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm on_signal with Invalid_argument _ -> ());
    Serve.Server.wait srv;
    Serve.Server.stop srv;
    Printf.printf "mclh serve: stopped\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve incremental legalization sessions over a line-delimited \
          JSON protocol (one request per line; see DESIGN.md \"Serving\"). \
          Try: echo '{\"op\":\"ping\"}' | socat - UNIX:/tmp/mclh.sock")
    Term.(
      const run $ socket_arg $ tcp_arg $ max_sessions_arg $ max_inflight_arg
      $ no_coalesce_arg $ lambda_arg $ eps_arg $ max_iter_arg)

let () =
  let info =
    Cmd.info "mclh" ~version:"1.0.0"
      ~doc:"Mixed-cell-height legalization via LCP + MMSIM (DAC'17 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; gen_cmd; place_cmd; pipeline_cmd; legalize_cmd;
            run_cmd; audit_cmd; check_cmd; stats_cmd; convert_cmd; eco_cmd;
            serve_cmd ]))
