(* Pins the streaming struct-of-arrays model construction against the
   historical list-based path (kept as [Model.build_reference]): every
   model field must be byte-identical — including the forced constraint
   CSR — on plain, blockage-heavy, and tall-cell designs, across domain
   counts. Also asserts the construction's allocation behaviour stays
   linear in the instance size (the list path was O(n log n) minor words
   through [List.sort]), the counted [Netlist.Builder] agrees with
   [Netlist.make], and the solver's chunked weighted shard fan-out is
   scheduling-only. *)

open Mclh_core
open Mclh_linalg
open Mclh_circuit

let instance ?(options = Mclh_benchgen.Generate.default_options) ~scale name =
  Mclh_benchgen.Generate.generate ~options
    (Mclh_benchgen.Spec.scaled scale (Mclh_benchgen.Spec.find name))

let blockage_options =
  { Mclh_benchgen.Generate.default_options with
    blockage_fraction = 0.15;
    blockage_count = 24 }

let tall_options =
  { Mclh_benchgen.Generate.default_options with tall_cell_fraction = 0.3 }

let tall_blockage_options =
  { Mclh_benchgen.Generate.default_options with
    tall_cell_fraction = 0.25;
    blockage_fraction = 0.12;
    blockage_count = 16 }

let check_int_array label a b =
  Alcotest.(check (array int)) label a b

let check_float_array label (a : float array) (b : float array) =
  (* bit-exact: the streaming path performs the same arithmetic in the
     same order as the reference, so not even reassociation noise is
     allowed here *)
  Alcotest.(check int) (label ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float b.(i)))
      then
        Alcotest.failf "%s: index %d differs (%h vs %h)" label i x b.(i))
    a

let check_model_equal label (a : Model.t) (b : Model.t) =
  Alcotest.(check int) (label ^ " nvars") a.Model.nvars b.Model.nvars;
  check_int_array (label ^ " first_var") a.Model.first_var b.Model.first_var;
  check_int_array (label ^ " var_cell") a.Model.var_cell b.Model.var_cell;
  check_int_array (label ^ " var_row") a.Model.var_row b.Model.var_row;
  Alcotest.(check int)
    (label ^ " num groups")
    (Array.length a.Model.row_vars)
    (Array.length b.Model.row_vars);
  Array.iteri
    (fun g ga -> check_int_array (Printf.sprintf "%s group %d" label g) ga b.Model.row_vars.(g))
    a.Model.row_vars;
  check_float_array (label ^ " shift") a.Model.shift b.Model.shift;
  check_float_array (label ^ " b_rhs") a.Model.b_rhs b.Model.b_rhs;
  check_float_array (label ^ " p") a.Model.p b.Model.p;
  let ca = Model.b_mat a and cb = Model.b_mat b in
  Alcotest.(check int) (label ^ " csr rows") (Csr.rows ca) (Csr.rows cb);
  Alcotest.(check int) (label ^ " csr cols") (Csr.cols ca) (Csr.cols cb);
  for i = 0 to Csr.rows ca - 1 do
    let ra = Csr.row_entries ca i and rb = Csr.row_entries cb i in
    if ra <> rb then Alcotest.failf "%s: csr row %d differs" label i
  done;
  Alcotest.(check int)
    (label ^ " num chains")
    (Blocks.num_chains a.Model.blocks)
    (Blocks.num_chains b.Model.blocks);
  for c = 0 to Blocks.num_chains a.Model.blocks - 1 do
    check_int_array
      (Printf.sprintf "%s chain %d" label c)
      (Blocks.chain_vars a.Model.blocks c)
      (Blocks.chain_vars b.Model.blocks c)
  done

let cases =
  [ ("plain", Mclh_benchgen.Generate.default_options, "fft_2", 0.03);
    ("blockages", blockage_options, "fft_2", 0.03);
    ("tall", tall_options, "fft_2", 0.03);
    ("tall+blockages", tall_blockage_options, "pci_bridge32_a", 0.03) ]

let test_streaming_matches_reference () =
  List.iter
    (fun (label, options, name, scale) ->
      let d = (instance ~options ~scale name).Mclh_benchgen.Generate.design in
      let assignment = Row_assign.assign d in
      let reference = Model.build_reference d assignment in
      let streaming = Model.build d assignment in
      check_model_equal (label ^ "/seq") streaming reference;
      let parallel = Model.build ~num_domains:4 d assignment in
      check_model_equal (label ^ "/par") parallel reference)
    cases

(* The streaming build must stay O(n) in minor-heap allocation: growing
   the instance ~4x may grow allocation by the same factor but not by an
   extra log term (the historical path's List.sort of every row). The
   bound is deliberately loose (fixed overheads shrink the ratio, a log
   factor at this size would add ~20%+ on top of linear). *)
let test_build_allocation_linear () =
  let build_minor_words ~scale =
    let d =
      (instance ~options:blockage_options ~scale "fft_2")
        .Mclh_benchgen.Generate.design
    in
    let assignment = Row_assign.assign d in
    let model0 = Model.build d assignment in
    ignore (Sys.opaque_identity model0.Model.nvars);
    let w0 = Gc.minor_words () in
    let model = Model.build d assignment in
    let w1 = Gc.minor_words () in
    (model.Model.nvars, w1 -. w0)
  in
  let n_small, w_small = build_minor_words ~scale:0.05 in
  let n_big, w_big = build_minor_words ~scale:0.2 in
  let var_ratio = float_of_int n_big /. float_of_int n_small in
  let alloc_ratio = w_big /. w_small in
  Alcotest.(check bool)
    (Printf.sprintf "instance actually grew (%d -> %d vars)" n_small n_big)
    true
    (var_ratio > 2.0);
  Alcotest.(check bool)
    (Printf.sprintf
       "allocation stays linear (vars x%.2f, minor words x%.2f)" var_ratio
       alloc_ratio)
    true
    (alloc_ratio < var_ratio *. 1.6)

let test_netlist_builder () =
  let d = (instance ~scale:0.02 "fft_2").Mclh_benchgen.Generate.design in
  let nets = d.Design.nets in
  let n = Netlist.num_cells nets in
  (* rebuild through the builder with an exact count, then with a wrong
     estimate: both must reproduce the netlist *)
  List.iter
    (fun expected_nets ->
      let b = Netlist.Builder.create ~num_cells:n ~expected_nets in
      Netlist.iter nets (fun _ net -> Netlist.Builder.add_net b net);
      Alcotest.(check int) "length" (Netlist.num_nets nets)
        (Netlist.Builder.length b);
      let rebuilt = Netlist.Builder.build b in
      Alcotest.(check int) "num_nets" (Netlist.num_nets nets)
        (Netlist.num_nets rebuilt);
      Alcotest.(check int) "num_pins" (Netlist.num_pins nets)
        (Netlist.num_pins rebuilt);
      Netlist.iter nets (fun i net ->
          if Netlist.net rebuilt i <> net then
            Alcotest.failf "net %d differs" i))
    [ Netlist.num_nets nets; 1; 7 ];
  (* validation matches Netlist.make *)
  let b = Netlist.Builder.create ~num_cells:2 ~expected_nets:1 in
  Alcotest.check_raises "empty net rejected"
    (Invalid_argument "Netlist.Builder.add_net: net 0 has no pin") (fun () ->
      Netlist.Builder.add_net b [||]);
  Alcotest.check_raises "out-of-range pin rejected"
    (Invalid_argument "Netlist.Builder.add_net: net 0 pins missing cell 5")
    (fun () ->
      Netlist.Builder.add_net b [| { Netlist.cell = 5; dx = 0.0; dy = 0.0 } |])

(* The chunked weighted shard fan-out is scheduling-only: forcing many
   tiny chunks must leave the solve bit-identical. *)
let test_shard_chunking_identical () =
  let d =
    (instance ~options:blockage_options ~scale:0.03 "fft_2")
      .Mclh_benchgen.Generate.design
  in
  let config = { Config.default with Config.num_domains = 4 } in
  let saved = !Solver.par_shard_chunk in
  let baseline = (Flow.run ~config d).Flow.legal in
  Solver.par_shard_chunk := 1;
  let chunked =
    Fun.protect
      ~finally:(fun () -> Solver.par_shard_chunk := saved)
      (fun () -> (Flow.run ~config d).Flow.legal)
  in
  check_float_array "xs" baseline.Placement.xs chunked.Placement.xs;
  check_float_array "ys" baseline.Placement.ys chunked.Placement.ys

let () =
  Alcotest.run "soa"
    [ ( "construction",
        [ Alcotest.test_case "streaming matches reference oracle" `Quick
            test_streaming_matches_reference;
          Alcotest.test_case "build allocation is linear" `Quick
            test_build_allocation_linear ] );
      ( "netlist",
        [ Alcotest.test_case "builder agrees with make" `Quick
            test_netlist_builder ] );
      ( "solver",
        [ Alcotest.test_case "shard chunk forcing is bit-identical" `Quick
            test_shard_chunking_identical ] ) ]
