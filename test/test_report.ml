(* Tests for the reporting library (ASCII tables, CSV) and an end-to-end
   exercise of the command-line tool. *)

open Mclh_report

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---------- Table ---------- *)

let test_table_render () =
  let t =
    Table.create
      [ { Table.title = "name"; align = Table.Left };
        { title = "value"; align = Table.Right } ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22222" ];
  Table.add_separator t;
  Table.add_row t [ "total"; "22223" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (contains s "name");
  Alcotest.(check bool) "has rule" true (contains s "---");
  Alcotest.(check bool) "has rows" true (contains s "alpha" && contains s "22223");
  (* right alignment pads the short value *)
  Alcotest.(check bool) "right aligned" true (contains s "     1");
  (* all lines of the body have equal length *)
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  let lens = List.map String.length lines in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (( = ) (List.hd lens)) lens)

let test_table_arity () =
  let t = Table.create [ { Table.title = "a"; align = Table.Left } ] in
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       Table.add_row t [ "x"; "y" ];
       false
     with Invalid_argument _ -> true)

let test_table_formatters () =
  Alcotest.(check string) "fmt_float" "3.14" (Table.fmt_float 2 3.14159);
  Alcotest.(check string) "fmt_int" "42" (Table.fmt_int 41.7);
  Alcotest.(check string) "fmt_pct" "12.3%" (Table.fmt_pct 1 0.1234)

let test_normalized_average () =
  Alcotest.(check (float 1e-9)) "simple" 2.0
    (Table.normalized_average [ 2.0; 4.0 ] ~baseline:[ 1.0; 2.0 ]);
  Alcotest.(check (float 1e-9)) "skips zero baselines" 3.0
    (Table.normalized_average [ 3.0; 9.0 ] ~baseline:[ 1.0; 0.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Table.normalized_average [] ~baseline:[])

(* ---------- Csv ---------- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row [ "a"; "b,c"; "d" ])

let test_csv_file () =
  let path = Filename.temp_file "mclh_csv" ".csv" in
  Csv.write_file ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ];
  let content = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check string) "content" "x,y\n1,2\n3,\"4,5\"\n" content

(* ---------- CLI end to end ---------- *)

let cli =
  (* dune runtest runs from _build/default/test; dune exec from the root *)
  List.find_opt Sys.file_exists
    [ "../bin/mclh_cli.exe"; "_build/default/bin/mclh_cli.exe" ]
  |> Option.value ~default:"../bin/mclh_cli.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

let test_cli_available () =
  if not (Sys.file_exists cli) then
    Alcotest.skip ()
  else Alcotest.(check int) "list" 0 (run_cli [ "list" ])

let test_cli_roundtrip () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else begin
    let design = Filename.temp_file "mclh_cli" ".mclh" in
    let placed = Filename.temp_file "mclh_cli" ".pl.mclh" in
    Alcotest.(check int) "gen" 0
      (run_cli [ "gen"; "-b"; "fft_a"; "-s"; "0.005"; "-o"; design ]);
    Alcotest.(check int) "legalize" 0
      (run_cli [ "legalize"; "-i"; design; "-a"; "mmsim"; "-o"; placed ]);
    (* check exits 0 only for a legal placement *)
    Alcotest.(check int) "check" 0
      (run_cli [ "check"; "-i"; design; "-p"; placed ]);
    Alcotest.(check int) "stats" 0 (run_cli [ "stats"; "-i"; design ]);
    Sys.remove design;
    Sys.remove placed
  end

(* ---------- Json parser robustness ---------- *)

let test_json_nesting_bomb () =
  (* a deeply nested document must come back as a clean parse error, not a
     Stack_overflow crash *)
  let bombs =
    [ String.make 100_000 '[';
      String.concat "" (List.init 100_000 (fun _ -> "{\"a\":"));
      String.make 50_000 '[' ^ "1" ^ String.make 50_000 ']' ]
  in
  List.iter
    (fun bomb ->
      match Json.of_string bomb with
      | Ok _ -> Alcotest.fail "nesting bomb parsed"
      | Error msg ->
        Alcotest.(check bool) "error names the depth cap" true
          (contains msg "nesting"))
    bombs;
  (* nesting below the cap still parses *)
  let deep n = String.make n '[' ^ "7" ^ String.make n ']' in
  (match Json.of_string (deep 400) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 400 should parse: %s" msg);
  match Json.of_string (deep 513) with
  | Ok _ -> Alcotest.fail "depth 513 should hit the cap"
  | Error _ -> ()

let test_cli_rejects_unknown () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else begin
    Alcotest.(check bool) "unknown bench fails" true
      (run_cli [ "run"; "-b"; "nonexistent" ] <> 0);
    Alcotest.(check bool) "unknown alg fails" true
      (run_cli [ "run"; "-b"; "fft_a"; "-a"; "nope" ] <> 0)
  end

let () =
  Alcotest.run "report"
    [ ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "formatters" `Quick test_table_formatters;
          Alcotest.test_case "normalized average" `Quick test_normalized_average ] );
      ( "csv",
        [ Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "file" `Quick test_csv_file ] );
      ( "json",
        [ Alcotest.test_case "nesting bomb" `Quick test_json_nesting_bomb ] );
      ( "cli",
        [ Alcotest.test_case "list" `Quick test_cli_available;
          Alcotest.test_case "gen/legalize/check" `Slow test_cli_roundtrip;
          Alcotest.test_case "error handling" `Quick test_cli_rejects_unknown ] ) ]
