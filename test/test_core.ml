(* Tests for the core legalization machinery: row assignment, ordering,
   the QP/LCP model (checked against the paper's Figure 2 and Figure 3
   examples), the Schur complement, the MMSIM solver against the dense
   active-set oracle, Abacus PlaceRow, and the allocation stages. *)

open Mclh_linalg
open Mclh_circuit
open Mclh_core
open Mclh_benchgen

let cell ?rail ~id ~w ~h () = Cell.make ~id ~width:w ~height:h ?bottom_rail:rail ()

let design ~chip ~cells ~xs ~ys =
  Design.make ~name:"t" ~chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

(* ---------- Row_assign ---------- *)

let test_row_assign_nearest () =
  let chip = Chip.make ~num_rows:6 ~num_sites:40 () in
  let cells =
    [| cell ~id:0 ~w:2 ~h:1 ();
       cell ~rail:Rail.Vss ~id:1 ~w:2 ~h:2 ();
       cell ~rail:Rail.Vdd ~id:2 ~w:2 ~h:2 () |]
  in
  let d =
    design ~chip ~cells ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 2.7; 2.8; 2.8 |]
  in
  let a = Row_assign.assign d in
  Alcotest.(check int) "odd nearest" 3 a.Row_assign.rows.(0);
  (* VSS double admits even rows: from 2.8, row 2 *)
  Alcotest.(check int) "vss parity" 2 a.Row_assign.rows.(1);
  (* VDD double admits odd rows: from 2.8, row 3 *)
  Alcotest.(check int) "vdd parity" 3 a.Row_assign.rows.(2);
  (* y displacement in site units: rh * (0.3 + 0.8 + 0.2) *)
  Alcotest.(check (float 1e-9)) "y displacement"
    (chip.Chip.row_height *. 1.3)
    a.Row_assign.y_displacement

(* ---------- Order ---------- *)

let test_order_per_row () =
  let chip = Chip.make ~num_rows:4 ~num_sites:40 () in
  let cells =
    [| cell ~id:0 ~w:2 ~h:1 ();
       cell ~id:1 ~w:2 ~h:1 ();
       cell ~rail:Rail.Vss ~id:2 ~w:2 ~h:2 () |]
  in
  let d = design ~chip ~cells ~xs:[| 9.0; 1.0; 5.0 |] ~ys:[| 0.0; 0.0; 0.0 |] in
  let rows = [| 0; 0; 0 |] in
  let order = Order.per_row d ~rows in
  Alcotest.(check (array int)) "row0 by global x" [| 1; 2; 0 |] order.(0);
  Alcotest.(check (array int)) "row1 only the double" [| 2 |] order.(1);
  Alcotest.(check (array int)) "row2 empty" [||] order.(2)

let test_order_preservation_metric () =
  let chip = Chip.make ~num_rows:2 ~num_sites:40 () in
  let cells = Array.init 3 (fun id -> cell ~id ~w:2 ~h:1 ()) in
  let d = design ~chip ~cells ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 0.0; 0.0; 0.0 |] in
  let same = Placement.make ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 0.0; 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "preserved" 1.0 (Order.preservation d same);
  let swapped = Placement.make ~xs:[| 5.0; 0.0; 10.0 |] ~ys:[| 0.0; 0.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "one inversion" 0.5 (Order.preservation d swapped)

(* ---------- Model: the paper's Figure 2 (single height) ---------- *)

let figure2_design () =
  (* cells c2, c4 on row 0; c1, c3, c5 on row 1 (paper rows renumbered).
     widths: w1 = 2, w2 = 3, w3 = 4, w4 = 2, w5 = 2 *)
  let chip = Chip.make ~num_rows:2 ~num_sites:40 () in
  let cells =
    [| cell ~id:0 ~w:2 ~h:1 (); (* c1 *)
       cell ~id:1 ~w:3 ~h:1 (); (* c2 *)
       cell ~id:2 ~w:4 ~h:1 (); (* c3 *)
       cell ~id:3 ~w:2 ~h:1 (); (* c4 *)
       cell ~id:4 ~w:2 ~h:1 () (* c5 *) |]
  in
  design ~chip ~cells
    ~xs:[| 1.0; 2.0; 6.0; 8.0; 12.0 |]
    ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |]

let test_model_figure2 () =
  let d = figure2_design () in
  let a = Row_assign.assign d in
  let m = Model.build d a in
  Alcotest.(check int) "nvars" 5 m.Model.nvars;
  Alcotest.(check int) "constraints" 3 (Model.num_constraints m);
  (* row 0 order: c2 then c4 -> constraint x4 - x2 >= w2 = 3 *)
  (* row 1 order: c1, c3, c5 -> x3 - x1 >= 2; x5 - x3 >= 4 *)
  let b_dense = Csr.to_dense (Model.b_mat m) in
  let expect =
    Dense.of_arrays
      [| [| 0.0; -1.0; 0.0; 1.0; 0.0 |];
         [| -1.0; 0.0; 1.0; 0.0; 0.0 |];
         [| 0.0; 0.0; -1.0; 0.0; 1.0 |] |]
  in
  Alcotest.(check bool) "B matches the paper" true (Dense.equal b_dense expect);
  Alcotest.(check bool) "b = (w2, w1, w3)" true
    (Vec.equal m.Model.b_rhs (Vec.of_list [ 3.0; 2.0; 4.0 ]));
  Alcotest.(check bool) "p = -x'" true
    (Vec.equal m.Model.p (Vec.of_list [ -1.0; -2.0; -6.0; -8.0; -12.0 ]));
  Alcotest.(check int) "no chains" 0 (Blocks.num_chains m.Model.blocks);
  (* Proposition 1: B has full row rank (here: B B^T nonsingular) *)
  let bbt = Dense.outer_gram b_dense in
  Alcotest.(check bool) "full row rank" true
    (Float.abs (Lu.det (Lu.factorize bbt)) > 1e-9)

(* ---------- Model: the paper's Figure 3 (mixed height) ---------- *)

let figure3_design () =
  (* c1: double (w 2), c2: single (w 3), c3: double (w 2).
     row 0 order: c1, c2, c3; row 1 order: c1, c3. *)
  let chip = Chip.make ~num_rows:2 ~num_sites:40 () in
  let cells =
    [| cell ~rail:Rail.Vss ~id:0 ~w:2 ~h:2 ();
       cell ~id:1 ~w:3 ~h:1 ();
       cell ~rail:Rail.Vss ~id:2 ~w:2 ~h:2 () |]
  in
  design ~chip ~cells ~xs:[| 1.0; 4.0; 8.0 |] ~ys:[| 0.0; 0.0; 0.0 |]

let test_model_figure3 () =
  let d = figure3_design () in
  let a = Row_assign.assign d in
  let m = Model.build d a in
  (* variables: c1 -> 0 (row0), 1 (row1); c2 -> 2; c3 -> 3 (row0), 4 (row1) *)
  Alcotest.(check int) "nvars" 5 m.Model.nvars;
  Alcotest.(check int) "constraints" 3 (Model.num_constraints m);
  let b_dense = Csr.to_dense (Model.b_mat m) in
  (* row 0: x2 - x0 >= 2; x3 - x2 >= 3. row 1: x4 - x1 >= 2 *)
  let expect_b =
    Dense.of_arrays
      [| [| -1.0; 0.0; 1.0; 0.0; 0.0 |];
         [| 0.0; 0.0; -1.0; 1.0; 0.0 |];
         [| 0.0; -1.0; 0.0; 0.0; 1.0 |] |]
  in
  Alcotest.(check bool) "B with subcell split" true (Dense.equal b_dense expect_b);
  Alcotest.(check bool) "b = (w1, w2, w1)" true
    (Vec.equal m.Model.b_rhs (Vec.of_list [ 2.0; 3.0; 2.0 ]));
  (* E: one row per double, x_spoke - x_hub *)
  let e_dense = Csr.to_dense (Blocks.e_matrix m.Model.blocks) in
  let expect_e =
    Dense.of_arrays
      [| [| -1.0; 1.0; 0.0; 0.0; 0.0 |]; [| 0.0; 0.0; 0.0; -1.0; 1.0 |] |]
  in
  Alcotest.(check bool) "E matches the paper" true (Dense.equal e_dense expect_e);
  Alcotest.(check bool) "all chains double" true (Blocks.all_double m.Model.blocks);
  (* p duplicates targets across subcells *)
  Alcotest.(check bool) "p subcells" true
    (Vec.equal m.Model.p (Vec.of_list [ -1.0; -1.0; -4.0; -8.0; -8.0 ]));
  (* Proposition 2: Q + lambda E^T E is SPD - check via Cholesky-ish LU det
     of the explicit matrix and symmetry *)
  let qp = Model.to_qp m ~lambda:10.0 in
  let qd = Csr.to_dense qp.Mclh_qp.Qp.q_mat in
  Alcotest.(check bool) "Q~ symmetric" true (Dense.is_symmetric qd);
  Alcotest.(check bool) "Q~ positive definite" true
    (Lu.det (Lu.factorize qd) > 0.0);
  (* B full row rank with the split (Proposition 2) *)
  let bbt = Dense.outer_gram b_dense in
  Alcotest.(check bool) "B full row rank" true
    (Float.abs (Lu.det (Lu.factorize bbt)) > 1e-9)

let test_model_apply_q_tilde () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let lambda = 17.0 in
  let qp = Model.to_qp m ~lambda in
  let x = Vec.of_list [ 1.0; -2.0; 0.5; 3.0; 4.0 ] in
  Alcotest.(check bool) "operator matches matrix" true
    (Vec.equal ~eps:1e-10
       (Model.apply_q_tilde m ~lambda x)
       (Csr.mul_vec qp.Mclh_qp.Qp.q_mat x))

let test_model_packed_start_feasible () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let qp = Model.to_qp m ~lambda:1000.0 in
  Alcotest.(check bool) "packed start feasible" true
    (Mclh_qp.Qp.is_feasible qp (Model.packed_start m))

let test_model_cell_positions () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let x = Vec.of_list [ 1.0; 3.0; 5.0; 7.0; 9.0 ] in
  let pos = Model.cell_positions m x in
  Alcotest.(check bool) "averaging" true
    (Vec.equal pos (Vec.of_list [ 2.0; 5.0; 8.0 ]));
  Alcotest.(check (float 1e-12)) "mismatch" 2.0 (Model.subcell_mismatch m x)

(* ---------- Schur ---------- *)

let test_schur_paths_agree () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let lambda = 1000.0 in
  let sm = Schur.tridiag ~path:Schur.Sherman_morrison m ~lambda in
  let exact = Schur.tridiag ~path:Schur.Exact_chains m ~lambda in
  Alcotest.(check bool) "SM = exact (all doubles)" true
    (Dense.equal ~eps:1e-9 (Tridiag.to_dense sm) (Tridiag.to_dense exact))

let test_schur_matches_dense () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let lambda = 100.0 in
  let tri = Schur.tridiag m ~lambda in
  let full = Schur.dense m ~lambda in
  let mm = Model.num_constraints m in
  for i = 0 to mm - 1 do
    let expect = Dense.get full i i in
    let got = (Tridiag.to_dense tri |> fun dm -> Dense.get dm i i) in
    if Float.abs (expect -. got) > 1e-9 then
      Alcotest.failf "diag %d: %g vs %g" i got expect;
    if i + 1 < mm then begin
      let expect = Dense.get full i (i + 1) in
      let got = (Tridiag.to_dense tri |> fun dm -> Dense.get dm i (i + 1)) in
      if Float.abs (expect -. got) > 1e-9 then
        Alcotest.failf "off %d: %g vs %g" i got expect
    end
  done

let test_schur_dense_vs_bruteforce () =
  (* B Q~^-1 B^T computed via explicit dense inversion *)
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let lambda = 50.0 in
  let qp = Model.to_qp m ~lambda in
  let qinv = Lu.inverse (Lu.factorize (Csr.to_dense qp.Mclh_qp.Qp.q_mat)) in
  let b = Csr.to_dense (Model.b_mat m) in
  let brute = Dense.mul b (Dense.mul qinv (Dense.transpose b)) in
  Alcotest.(check bool) "dense schur correct" true
    (Dense.equal ~eps:1e-8 brute (Schur.dense m ~lambda))

(* ---------- Abacus PlaceRow ---------- *)

let rc id target width = { Abacus.id; target; width }

let test_place_row_no_overlap () =
  let placed = Abacus.place_row [ rc 0 1.0 2.0; rc 1 8.0 2.0 ] in
  Alcotest.(check (list (pair int (float 1e-12))))
    "targets kept" [ (0, 1.0); (1, 8.0) ] placed

let test_place_row_two_cell_collapse () =
  (* both want 10.0, widths 4: optimal split is 8 and 12 *)
  let placed = Abacus.place_row [ rc 0 10.0 4.0; rc 1 10.0 4.0 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "even split" [ (0, 8.0); (1, 12.0) ] placed

let test_place_row_left_clamp () =
  let placed = Abacus.place_row [ rc 0 (-5.0) 3.0; rc 1 (-5.0) 3.0 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "clamped at zero" [ (0, 0.0); (1, 3.0) ] placed

let test_place_row_right_boundary () =
  let placed = Abacus.place_row ~xmax:10.0 [ rc 0 9.0 4.0; rc 1 9.0 4.0 ] in
  Alcotest.(check (list (pair int (float 1e-9))))
    "clamped at right" [ (0, 2.0); (1, 6.0) ] placed

let test_place_row_cost () =
  Alcotest.(check (float 1e-9)) "cost of even split" 8.0
    (Abacus.place_row_cost [ rc 0 10.0 4.0; rc 1 10.0 4.0 ]);
  Alcotest.(check (float 1e-9)) "zero cost" 0.0
    (Abacus.place_row_cost [ rc 0 1.0 2.0; rc 1 8.0 2.0 ])

let test_place_row_does_not_fit () =
  Alcotest.(check bool) "rejects overflow" true
    (try
       ignore (Abacus.place_row ~xmax:3.0 [ rc 0 0.0 2.0; rc 1 0.0 2.0 ]);
       false
     with Invalid_argument _ -> true)

let test_place_row_vs_oracle () =
  (* the cluster DP must match the dense active-set optimum *)
  let rand =
    let state = ref 99 in
    fun () ->
      state := (!state * 1103515245) + 12345;
      float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF
  in
  for _ = 1 to 15 do
    let k = 2 + int_of_float (rand () *. 6.0) in
    let widths = Array.init k (fun _ -> 1.0 +. Float.round (rand () *. 5.0)) in
    let targets = Array.init k (fun _ -> rand () *. 20.0) in
    Array.sort compare targets;
    let cells = List.init k (fun i -> rc i targets.(i) widths.(i)) in
    let placed = Abacus.place_row cells in
    let abacus_cost =
      List.fold_left
        (fun acc (i, x) ->
          let dx = x -. targets.(i) in
          acc +. (dx *. dx))
        0.0 placed
    in
    (* oracle on the same chain QP *)
    let coo = Coo.create ~rows:(k - 1) ~cols:k in
    for i = 0 to k - 2 do
      Coo.add coo i i (-1.0);
      Coo.add coo i (i + 1) 1.0
    done;
    let qp =
      Mclh_qp.Qp.make ~q_mat:(Csr.identity k)
        ~p:(Vec.init k (fun i -> -.targets.(i)))
        ~b_mat:(Coo.to_csr coo)
        ~b_rhs:(Vec.init (k - 1) (fun i -> widths.(i)))
    in
    let x0 = Array.make k 0.0 in
    for i = 1 to k - 1 do
      x0.(i) <- x0.(i - 1) +. widths.(i - 1)
    done;
    let oracle = Mclh_qp.Active_set.solve ~x0 qp in
    let oracle_cost =
      Mclh_qp.Qp.objective qp oracle.Mclh_qp.Active_set.x
      +. (0.5 *. Array.fold_left (fun acc t -> acc +. (t *. t)) 0.0 targets)
    in
    if Float.abs ((abacus_cost /. 2.0) -. oracle_cost) > 1e-6 then
      Alcotest.failf "PlaceRow %g vs oracle %g" (abacus_cost /. 2.0) oracle_cost
  done

(* ---------- Solver vs oracle ---------- *)

let solver_matches_oracle d =
  let a = Row_assign.assign d in
  let m = Model.build d a in
  let config = { Config.default with eps = 1e-10; max_iter = 500_000 } in
  let res = Solver.solve ~config m in
  Alcotest.(check bool) "converged" true res.Solver.converged;
  let lambda = config.Config.lambda in
  let qp = Model.to_qp m ~lambda in
  let oracle = Mclh_qp.Active_set.solve ~x0:(Model.packed_start m) qp in
  Alcotest.(check bool) "oracle converged" true oracle.Mclh_qp.Active_set.converged;
  let obj_mmsim = Mclh_qp.Qp.objective qp res.Solver.x in
  let obj_oracle = Mclh_qp.Qp.objective qp oracle.Mclh_qp.Active_set.x in
  if Float.abs (obj_mmsim -. obj_oracle) > 1e-4 *. Float.max 1.0 (Float.abs obj_oracle)
  then Alcotest.failf "objective %.8f vs oracle %.8f" obj_mmsim obj_oracle

let test_solver_oracle_figure3 () = solver_matches_oracle (figure3_design ())

let test_solver_oracle_random_mixed () =
  List.iter
    (fun seed ->
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.0008 (Spec.find "fft_2"))
      in
      solver_matches_oracle inst.Generate.design)
    [ 1; 2; 3 ]

let test_solver_lcp_solution () =
  (* the MMSIM iterate solves the explicit KKT LCP *)
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let config = { Config.default with eps = 1e-12; max_iter = 500_000 } in
  let res = Solver.solve ~config m in
  let lcp = Solver.lcp_problem m ~lambda:config.Config.lambda in
  let z = Array.append res.Solver.x res.Solver.r in
  Alcotest.(check bool) "z solves the LCP" true
    (Mclh_lcp.Lcp.is_solution ~eps:1e-5 lcp z)

let test_solver_bound_check () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let b = Solver.check_bound m Config.default in
  Alcotest.(check bool) "mu_max positive" true (b.Solver.mu_max > 0.0);
  Alcotest.(check bool) "paper setting admissible" true b.Solver.theta_ok

let test_solver_mismatch_lambda () =
  (* larger lambda gives smaller subcell mismatch *)
  let inst = Generate.generate (Spec.scaled 0.002 (Spec.find "fft_1")) in
  let d = inst.Generate.design in
  let m = Model.build d (Row_assign.assign d) in
  let run lambda =
    let config = { Config.default with lambda; eps = 1e-9; max_iter = 200_000 } in
    (Solver.solve ~config m).Solver.mismatch
  in
  let m10 = run 10.0 and m1000 = run 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mismatch decreases with lambda (%g vs %g)" m10 m1000)
    true (m1000 < m10 +. 1e-12)


(* ---------- three independent solvers on the same legalization model ---------- *)

let test_cross_solver_agreement () =
  (* MMSIM (modulus iteration), Lemke (complementary pivoting on the KKT
     LCP), IPM (path following on the QP) and the active-set method share
     no code; agreement on the same instance is strong evidence that each
     is correct *)
  List.iter
    (fun seed ->
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.0006 (Spec.find "fft_2"))
      in
      let d = inst.Generate.design in
      let m = Model.build d (Row_assign.assign d) in
      let lambda = Config.default.Config.lambda in
      let qp = Model.to_qp m ~lambda in
      let config = { Config.default with eps = 1e-10; max_iter = 500_000 } in
      let mmsim = Solver.solve ~config m in
      let obj_mmsim = Mclh_qp.Qp.objective qp mmsim.Solver.x in
      (* Lemke on the explicit KKT LCP *)
      let lcp = Solver.lcp_problem m ~lambda in
      (match Mclh_lcp.Lemke.solve lcp with
      | Mclh_lcp.Lemke.Solution z ->
        let x_lemke = Array.sub z 0 m.Model.nvars in
        let obj_lemke = Mclh_qp.Qp.objective qp x_lemke in
        if Float.abs (obj_lemke -. obj_mmsim) > 1e-4 *. Float.abs obj_mmsim then
          Alcotest.failf "Lemke %.8f vs MMSIM %.8f" obj_lemke obj_mmsim
      | Mclh_lcp.Lemke.Ray_termination | Mclh_lcp.Lemke.Iteration_limit ->
        Alcotest.fail "Lemke failed on the KKT LCP");
      (* interior point on the QP *)
      let ipm = Mclh_qp.Ipm.solve qp in
      Alcotest.(check bool) "ipm converged" true ipm.Mclh_qp.Ipm.converged;
      let obj_ipm = Mclh_qp.Qp.objective qp ipm.Mclh_qp.Ipm.x in
      if Float.abs (obj_ipm -. obj_mmsim) > 1e-4 *. Float.abs obj_mmsim then
        Alcotest.failf "IPM %.8f vs MMSIM %.8f" obj_ipm obj_mmsim)
    [ 11; 12; 13 ]

let test_inplace_equals_generic () =
  (* the production in-place operator set must generate exactly the same
     iterates as the boxed reference operators *)
  List.iter
    (fun seed ->
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.002 (Spec.find "fft_2"))
      in
      let d = inst.Generate.design in
      let m = Model.build d (Row_assign.assign d) in
      let config = { Config.default with eps = 1e-8; max_iter = 200_000 } in
      let q = Solver.rhs_q m in
      let options =
        { Mclh_lcp.Mmsim.gamma = config.Config.gamma; eps = config.Config.eps;
          max_iter = config.Config.max_iter; accel = 0 }
      in
      let boxed =
        Mclh_lcp.Mmsim.solve ~options (Solver.operators m config) ~q
      in
      let inplace =
        Mclh_lcp.Mmsim.solve_inplace ~options (Solver.operators_inplace m config) ~q
      in
      Alcotest.(check int) "same iterations" boxed.Mclh_lcp.Mmsim.iterations
        inplace.Mclh_lcp.Mmsim.iterations;
      if
        not
          (Vec.equal ~eps:1e-9 boxed.Mclh_lcp.Mmsim.z inplace.Mclh_lcp.Mmsim.z)
      then Alcotest.fail "iterates diverged between boxed and in-place paths")
    [ 21; 22 ]

(* ---------- Warm start ---------- *)

let test_warm_start_single_height_exact () =
  let inst =
    Generate.generate
      ~options:{ Generate.default_options with single_height_only = true }
      (Spec.scaled 0.003 (Spec.find "fft_2"))
  in
  let d = inst.Generate.design in
  let m = Model.build d (Row_assign.assign d) in
  let config = { Config.default with eps = 1e-8; max_iter = 100_000 } in
  let res = Solver.solve ~config m in
  Alcotest.(check bool) "single-height warm start is the fixed point" true
    (res.Solver.iterations <= 2)

let test_warm_start_multipliers_nonnegative () =
  let d = figure3_design () in
  let m = Model.build d (Row_assign.assign d) in
  let x0 = Warm_start.positions m in
  let r0 = Warm_start.multipliers m x0 in
  Array.iter
    (fun r -> if r < 0.0 then Alcotest.failf "negative multiplier %g" r)
    r0

(* ---------- Occupancy ---------- *)

let test_occupancy_basics () =
  let chip = Chip.make ~num_rows:4 ~num_sites:20 () in
  let occ = Occupancy.create chip in
  Alcotest.(check bool) "free initially" true
    (Occupancy.is_free_span occ ~row:0 ~height:2 ~x:5 ~width:4);
  Occupancy.occupy occ ~row:0 ~height:2 ~x:5 ~width:4;
  Alcotest.(check int) "occupied sites" 8 (Occupancy.occupied_sites occ);
  Alcotest.(check bool) "not free" false
    (Occupancy.is_free_span occ ~row:1 ~height:1 ~x:8 ~width:2);
  Alcotest.(check bool) "double occupy rejected" true
    (try
       Occupancy.occupy occ ~row:0 ~height:1 ~x:5 ~width:1;
       false
     with Invalid_argument _ -> true);
  Occupancy.release occ ~row:0 ~height:2 ~x:5 ~width:4;
  Alcotest.(check int) "released" 0 (Occupancy.occupied_sites occ);
  Alcotest.(check bool) "span beyond chip" false
    (Occupancy.is_free_span occ ~row:0 ~height:1 ~x:18 ~width:4)

let test_occupancy_nearest_free_x () =
  let chip = Chip.make ~num_rows:2 ~num_sites:20 () in
  let occ = Occupancy.create chip in
  Occupancy.occupy occ ~row:0 ~height:1 ~x:8 ~width:4;
  (* want width 3 at x0 = 9: right candidate 12, left candidate 5 *)
  (match Occupancy.nearest_free_x occ ~row:0 ~height:1 ~width:3 ~x0:9 ~max_dist:20 with
  | Some (x, dist) ->
    Alcotest.(check int) "nearest x" 12 x;
    Alcotest.(check int) "distance" 3 dist
  | None -> Alcotest.fail "expected a span");
  (match Occupancy.nearest_free_x occ ~row:0 ~height:1 ~width:3 ~x0:7 ~max_dist:20 with
  | Some (x, _) -> Alcotest.(check int) "left wins" 5 x
  | None -> Alcotest.fail "expected a span");
  Alcotest.(check bool) "max_dist respected" true
    (Occupancy.nearest_free_x occ ~row:0 ~height:1 ~width:3 ~x0:9 ~max_dist:1 = None)

let test_occupancy_find_spot () =
  let chip = Chip.make ~num_rows:4 ~num_sites:10 ~row_height:8.0 () in
  let occ = Occupancy.create chip in
  (* fill row 1 fully; a single-height cell wanting row 1 slides in-row is
     impossible, so it must pay a row hop of 8 *)
  Occupancy.occupy occ ~row:1 ~height:1 ~x:0 ~width:10;
  (match Occupancy.find_spot occ (cell ~id:0 ~w:3 ~h:1 ()) ~row0:1 ~x0:4 with
  | Some (row, x, cost) ->
    Alcotest.(check bool) "adjacent row" true (row = 0 || row = 2);
    Alcotest.(check int) "same x" 4 x;
    Alcotest.(check (float 1e-9)) "cost = row hop" 8.0 cost
  | None -> Alcotest.fail "expected a spot");
  (* a rail-constrained double only fits even rows *)
  let dbl = cell ~rail:Rail.Vss ~id:1 ~w:3 ~h:2 () in
  (match Occupancy.find_spot occ dbl ~row0:0 ~x0:0 with
  | Some (row, _, _) -> Alcotest.(check int) "parity respected" 2 row
  | None -> Alcotest.fail "expected a spot");
  (* window too small -> none *)
  Occupancy.occupy occ ~row:0 ~height:1 ~x:0 ~width:10;
  Alcotest.(check bool) "window miss" true
    (Occupancy.find_spot ~row_window:0 occ (cell ~id:2 ~w:3 ~h:1 ()) ~row0:1 ~x0:0
     = None)

(* ---------- Tetris_alloc ---------- *)

let test_tetris_alloc_noop_when_legal () =
  let d = figure2_design () in
  let input = Placement.make ~xs:[| 1.0; 2.0; 6.0; 8.0; 12.0 |] ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |] in
  let out = Tetris_alloc.run d input in
  Alcotest.(check int) "no illegal cells" 0 out.Tetris_alloc.illegal_before;
  Alcotest.(check bool) "unchanged" true
    (Placement.equal out.Tetris_alloc.placement input)

let test_tetris_alloc_fixes_overlap () =
  let d = figure2_design () in
  (* c2 and c4 overlapping in row 0 *)
  let input = Placement.make ~xs:[| 1.0; 2.0; 6.0; 3.0; 12.0 |] ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |] in
  let out = Tetris_alloc.run d input in
  Alcotest.(check int) "one illegal" 1 out.Tetris_alloc.illegal_before;
  Alcotest.(check bool) "legal output" true
    (Legality.is_legal d out.Tetris_alloc.placement)

let test_tetris_alloc_out_of_boundary () =
  let d = figure2_design () in
  (* c5 pushed beyond the right boundary (chip is 40 sites) *)
  let input = Placement.make ~xs:[| 1.0; 2.0; 6.0; 8.0; 39.5 |] ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |] in
  let out = Tetris_alloc.run d input in
  Alcotest.(check bool) "legal output" true
    (Legality.is_legal d out.Tetris_alloc.placement);
  Alcotest.(check bool) "x within chip" true
    (out.Tetris_alloc.placement.Placement.xs.(4) <= 38.0)

let test_tetris_alloc_fractional_snap () =
  let d = figure2_design () in
  let input = Placement.make ~xs:[| 1.3; 2.4; 6.5; 8.9; 12.1 |] ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |] in
  let out = Tetris_alloc.run d input in
  Alcotest.(check bool) "legal output" true
    (Legality.is_legal d out.Tetris_alloc.placement);
  Alcotest.(check bool) "integral" true
    (Placement.is_integral out.Tetris_alloc.placement)

let () =
  Alcotest.run "core"
    [ ("row_assign", [ Alcotest.test_case "nearest correct row" `Quick test_row_assign_nearest ]);
      ( "order",
        [ Alcotest.test_case "per row" `Quick test_order_per_row;
          Alcotest.test_case "preservation metric" `Quick test_order_preservation_metric ] );
      ( "model",
        [ Alcotest.test_case "figure 2 (single height)" `Quick test_model_figure2;
          Alcotest.test_case "figure 3 (mixed height)" `Quick test_model_figure3;
          Alcotest.test_case "Q~ operator" `Quick test_model_apply_q_tilde;
          Alcotest.test_case "packed start feasible" `Quick test_model_packed_start_feasible;
          Alcotest.test_case "cell positions / mismatch" `Quick test_model_cell_positions ] );
      ( "schur",
        [ Alcotest.test_case "SM = exact chains" `Quick test_schur_paths_agree;
          Alcotest.test_case "tridiag of dense" `Quick test_schur_matches_dense;
          Alcotest.test_case "dense vs brute force" `Quick test_schur_dense_vs_bruteforce ] );
      ( "abacus",
        [ Alcotest.test_case "no overlap" `Quick test_place_row_no_overlap;
          Alcotest.test_case "two-cell collapse" `Quick test_place_row_two_cell_collapse;
          Alcotest.test_case "left clamp" `Quick test_place_row_left_clamp;
          Alcotest.test_case "right boundary" `Quick test_place_row_right_boundary;
          Alcotest.test_case "cost" `Quick test_place_row_cost;
          Alcotest.test_case "overflow rejected" `Quick test_place_row_does_not_fit;
          Alcotest.test_case "vs active-set oracle" `Quick test_place_row_vs_oracle ] );
      ( "solver",
        [ Alcotest.test_case "figure 3 vs oracle" `Quick test_solver_oracle_figure3;
          Alcotest.test_case "random mixed vs oracle" `Slow test_solver_oracle_random_mixed;
          Alcotest.test_case "solves the KKT LCP" `Quick test_solver_lcp_solution;
          Alcotest.test_case "theorem 2 bound" `Quick test_solver_bound_check;
          Alcotest.test_case "cross-solver agreement" `Slow test_cross_solver_agreement;
          Alcotest.test_case "in-place = generic" `Quick test_inplace_equals_generic;
          Alcotest.test_case "lambda vs mismatch" `Slow test_solver_mismatch_lambda ] );
      ( "warm_start",
        [ Alcotest.test_case "exact on single height" `Quick test_warm_start_single_height_exact;
          Alcotest.test_case "multipliers nonnegative" `Quick test_warm_start_multipliers_nonnegative ] );
      ( "occupancy",
        [ Alcotest.test_case "basics" `Quick test_occupancy_basics;
          Alcotest.test_case "nearest free x" `Quick test_occupancy_nearest_free_x;
          Alcotest.test_case "find spot" `Quick test_occupancy_find_spot ] );
      ( "tetris_alloc",
        [ Alcotest.test_case "no-op when legal" `Quick test_tetris_alloc_noop_when_legal;
          Alcotest.test_case "fixes overlap" `Quick test_tetris_alloc_fixes_overlap;
          Alcotest.test_case "out of boundary" `Quick test_tetris_alloc_out_of_boundary;
          Alcotest.test_case "fractional snap" `Quick test_tetris_alloc_fractional_snap ] ) ]
