(* Tests for the QP machinery: problem records, the KKT -> LCP conversion
   (Theorem 1), and the dense active-set oracle. *)

open Mclh_linalg
open Mclh_qp

let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* the paper's Figure 2 instance: five unit-weight cells in two rows.
   row 1: c2 (w=3) then c4; row 2: c1 (w=2) then c3 (w=4) then c5 *)
let figure2_qp ~targets =
  let n = 5 in
  let q_mat = Csr.identity n in
  let p = Vec.init n (fun i -> -.targets.(i)) in
  let coo = Coo.create ~rows:3 ~cols:n in
  (* x4 - x2 >= w2; x3 - x1 >= w1; x5 - x3 >= w3 (matrix B of the paper) *)
  Coo.add coo 0 1 (-1.0);
  Coo.add coo 0 3 1.0;
  Coo.add coo 1 0 (-1.0);
  Coo.add coo 1 2 1.0;
  Coo.add coo 2 2 (-1.0);
  Coo.add coo 2 4 1.0;
  let b_mat = Coo.to_csr coo in
  let b_rhs = Vec.of_list [ 3.0; 2.0; 4.0 ] in
  Qp.make ~q_mat ~p ~b_mat ~b_rhs

let test_objective_gradient () =
  let qp = figure2_qp ~targets:[| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let x = Vec.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  (* at the targets the gradient is zero and the objective is -||t||^2/2 *)
  Alcotest.(check (float 1e-9)) "gradient at optimum" 0.0
    (Vec.norm_inf (Qp.gradient qp x));
  Alcotest.(check (float 1e-9)) "objective" (-27.5) (Qp.objective qp x)

let test_feasibility () =
  let qp = figure2_qp ~targets:[| 0.0; 0.0; 0.0; 0.0; 0.0 |] in
  let x_ok = Vec.of_list [ 0.0; 0.0; 2.0; 3.0; 6.0 ] in
  Alcotest.(check bool) "feasible" true (Qp.is_feasible qp x_ok);
  let x_bad = Vec.of_list [ 0.0; 0.0; 1.0; 3.0; 6.0 ] in
  Alcotest.(check bool) "infeasible" false (Qp.is_feasible qp x_bad);
  Alcotest.(check (float 1e-9))
    "violation magnitude" 1.0
    (Qp.constraint_violation qp x_bad)

let test_kkt_structure () =
  (* the assembled LCP matrix must be [[Q, -B^T], [B, 0]] *)
  let qp = figure2_qp ~targets:[| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let lcp = Kkt.to_lcp qp in
  let a = Mclh_lcp.Lcp.(lcp.a) in
  Alcotest.(check int) "dimension" 8 (Csr.rows a);
  (* spot checks: Q block diagonal of ones *)
  Alcotest.(check (float 0.0)) "Q diag" 1.0 (Csr.get a 0 0);
  (* B in the bottom-left: row 5 is constraint 0 = (-1 at col 1, +1 at col 3) *)
  Alcotest.(check (float 0.0)) "B entry" (-1.0) (Csr.get a 5 1);
  Alcotest.(check (float 0.0)) "B entry +" 1.0 (Csr.get a 5 3);
  (* -B^T in the top-right *)
  Alcotest.(check (float 0.0)) "-B^T entry" 1.0 (Csr.get a 1 5);
  Alcotest.(check (float 0.0)) "-B^T entry -" (-1.0) (Csr.get a 3 5);
  (* bottom-right zero block *)
  Alcotest.(check (float 0.0)) "zero block" 0.0 (Csr.get a 6 7);
  (* q = (p; -b) *)
  Alcotest.(check (float 0.0)) "q top" (-1.0) Mclh_lcp.Lcp.(lcp.q).(0);
  Alcotest.(check (float 0.0)) "q bottom" (-3.0) Mclh_lcp.Lcp.(lcp.q).(5)

let test_active_set_unconstrained () =
  (* targets already feasible and interior: optimum = targets *)
  let targets = [| 1.0; 2.0; 10.0; 14.0; 20.0 |] in
  let qp = figure2_qp ~targets in
  let out = Active_set.solve ~x0:(Vec.of_list [ 1.0; 2.0; 10.0; 14.0; 20.0 ]) qp in
  Alcotest.(check bool) "converged" true out.Active_set.converged;
  Alcotest.(check bool)
    "x = targets" true
    (Vec.equal ~eps:1e-9 out.Active_set.x (Vec.of_list (Array.to_list targets)))

let test_active_set_two_cell_overlap () =
  (* two cells in one row, both targeting the same spot: the optimum splits
     the separation evenly *)
  let q_mat = Csr.identity 2 in
  let p = Vec.of_list [ -10.0; -10.0 ] in
  let coo = Coo.create ~rows:1 ~cols:2 in
  Coo.add coo 0 0 (-1.0);
  Coo.add coo 0 1 1.0;
  let qp =
    Qp.make ~q_mat ~p ~b_mat:(Coo.to_csr coo) ~b_rhs:(Vec.of_list [ 4.0 ])
  in
  let out = Active_set.solve ~x0:(Vec.of_list [ 0.0; 4.0 ]) qp in
  Alcotest.(check bool) "converged" true out.Active_set.converged;
  Alcotest.(check bool)
    "split evenly" true
    (Vec.equal ~eps:1e-8 out.Active_set.x (Vec.of_list [ 8.0; 12.0 ]));
  Alcotest.(check bool)
    "positive multiplier" true
    (out.Active_set.multipliers.(0) > 0.0)

let test_active_set_bound_clamp () =
  (* one cell targeting a negative position clamps at zero with a positive
     bound multiplier *)
  let qp =
    Qp.make ~q_mat:(Csr.identity 1) ~p:(Vec.of_list [ 5.0 ])
      ~b_mat:(Csr.empty ~rows:0 ~cols:1) ~b_rhs:[||]
  in
  let out = Active_set.solve ~x0:(Vec.of_list [ 1.0 ]) qp in
  Alcotest.(check (float 1e-9)) "clamped" 0.0 out.Active_set.x.(0);
  Alcotest.(check (float 1e-9)) "bound multiplier" 5.0 out.Active_set.bound_multipliers.(0)

let test_active_set_kkt_residual () =
  let rand = mk_rand 5 in
  for _ = 1 to 12 do
    (* random chain QP: k cells in one row, random targets and widths *)
    let k = 2 + int_of_float (rand () *. 6.0) in
    let widths = Array.init k (fun _ -> 1.0 +. (rand () *. 5.0)) in
    let targets = Array.init k (fun _ -> rand () *. 30.0) in
    Array.sort compare targets;
    let coo = Coo.create ~rows:(k - 1) ~cols:k in
    for i = 0 to k - 2 do
      Coo.add coo i i (-1.0);
      Coo.add coo i (i + 1) 1.0
    done;
    let qp =
      Qp.make ~q_mat:(Csr.identity k)
        ~p:(Vec.init k (fun i -> -.targets.(i)))
        ~b_mat:(Coo.to_csr coo)
        ~b_rhs:(Vec.init (k - 1) (fun i -> widths.(i)))
    in
    (* packed start is always feasible *)
    let x0 = Array.make k 0.0 in
    for i = 1 to k - 1 do
      x0.(i) <- x0.(i - 1) +. widths.(i - 1)
    done;
    let out = Active_set.solve ~x0 qp in
    Alcotest.(check bool) "converged" true out.Active_set.converged;
    let res =
      Kkt.kkt_residual qp ~x:out.Active_set.x ~r:out.Active_set.multipliers
    in
    if res > 1e-6 then Alcotest.failf "KKT residual %g too large" res
  done

let test_feasible_start () =
  let qp = figure2_qp ~targets:[| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  match Active_set.feasible_start qp with
  | Some x -> Alcotest.(check bool) "feasible" true (Qp.is_feasible qp x)
  | None -> Alcotest.fail "expected a feasible start"

let test_active_set_rejects_infeasible_start () =
  let qp = figure2_qp ~targets:[| 0.0; 0.0; 0.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Active_set.solve ~x0:(Vec.zeros 5) qp);
       false
     with Invalid_argument _ -> true)


(* ---------- interior-point method ---------- *)

let chain_qp rand k =
  let widths = Array.init k (fun _ -> 1.0 +. (rand () *. 4.0)) in
  let targets = Array.init k (fun _ -> rand () *. 25.0) in
  Array.sort compare targets;
  let coo = Coo.create ~rows:(k - 1) ~cols:k in
  for i = 0 to k - 2 do
    Coo.add coo i i (-1.0);
    Coo.add coo i (i + 1) 1.0
  done;
  let qp =
    Qp.make ~q_mat:(Csr.identity k)
      ~p:(Vec.init k (fun i -> -.targets.(i)))
      ~b_mat:(Coo.to_csr coo)
      ~b_rhs:(Vec.init (k - 1) (fun i -> widths.(i)))
  in
  let x0 = Array.make k 0.0 in
  for i = 1 to k - 1 do
    x0.(i) <- x0.(i - 1) +. widths.(i - 1)
  done;
  (qp, x0)

let test_ipm_matches_active_set () =
  let rand = mk_rand 61 in
  for _ = 1 to 12 do
    let k = 2 + int_of_float (rand () *. 8.0) in
    let qp, x0 = chain_qp rand k in
    let ipm = Ipm.solve qp in
    let asq = Active_set.solve ~x0 qp in
    Alcotest.(check bool) "both converged" true
      (ipm.Ipm.converged && asq.Active_set.converged);
    if Vec.dist_inf ipm.Ipm.x asq.Active_set.x > 1e-5 then
      Alcotest.failf "IPM vs active-set disagree by %g"
        (Vec.dist_inf ipm.Ipm.x asq.Active_set.x)
  done

let test_ipm_kkt_residual () =
  let rand = mk_rand 67 in
  let qp, _ = chain_qp rand 7 in
  let ipm = Ipm.solve qp in
  let res = Kkt.kkt_residual qp ~x:ipm.Ipm.x ~r:ipm.Ipm.multipliers in
  if res > 1e-5 then Alcotest.failf "IPM KKT residual %g" res

let test_ipm_infeasible_start_ok () =
  (* unlike the active-set oracle, the IPM needs no feasible x0; the
     all-ones interior start is infeasible for this instance *)
  let rand = mk_rand 71 in
  let qp, x0 = chain_qp rand 5 in
  Alcotest.(check bool) "x0=1 infeasible" false
    (Qp.is_feasible qp (Vec.create 5 1.0));
  let ipm = Ipm.solve qp in
  Alcotest.(check bool) "converged anyway" true ipm.Ipm.converged;
  let asq = Active_set.solve ~x0 qp in
  Alcotest.(check bool) "same optimum" true
    (Vec.equal ~eps:1e-5 ipm.Ipm.x asq.Active_set.x)

let test_ipm_degenerate_chain () =
  (* regression: this instance (k = 8, QCheck seed 7411) drives the IPM
     to a numerically singular normal matrix late in the solve; the
     escalating diagonal regularization must carry it to the optimum
     instead of raising Lu.Singular *)
  let rand = mk_rand (7411 + 13) in
  let qp, x0 = chain_qp rand 8 in
  let ipm = Ipm.solve qp in
  Alcotest.(check bool) "converged" true ipm.Ipm.converged;
  let asq = Active_set.solve ~x0 qp in
  Alcotest.(check bool) "matches active set" true
    (Vec.dist_inf ipm.Ipm.x asq.Active_set.x < 1e-5)

let qc_ipm_random_chains =
  QCheck.Test.make ~count:40 ~name:"ipm: random chain QPs match active set"
    QCheck.(pair (int_range 2 9) (int_range 0 10_000))
    (fun (k, seed) ->
      let rand = mk_rand (seed + 13) in
      let qp, x0 = chain_qp rand k in
      let ipm = Ipm.solve qp in
      let asq = Active_set.solve ~x0 qp in
      ipm.Ipm.converged && asq.Active_set.converged
      && Vec.dist_inf ipm.Ipm.x asq.Active_set.x < 1e-5)

let qc_active_set_beats_random_feasible =
  QCheck.Test.make ~count:50
    ~name:"active_set: optimum not worse than random feasible points"
    QCheck.(pair (int_range 2 7) (int_range 0 10_000))
    (fun (k, seed) ->
      let rand = mk_rand (seed + 11) in
      let widths = Array.init k (fun _ -> 1.0 +. (rand () *. 4.0)) in
      let targets = Array.init k (fun _ -> rand () *. 25.0) in
      Array.sort compare targets;
      let coo = Coo.create ~rows:(k - 1) ~cols:k in
      for i = 0 to k - 2 do
        Coo.add coo i i (-1.0);
        Coo.add coo i (i + 1) 1.0
      done;
      let qp =
        Qp.make ~q_mat:(Csr.identity k)
          ~p:(Vec.init k (fun i -> -.targets.(i)))
          ~b_mat:(Coo.to_csr coo)
          ~b_rhs:(Vec.init (k - 1) (fun i -> widths.(i)))
      in
      let x0 = Array.make k 0.0 in
      for i = 1 to k - 1 do
        x0.(i) <- x0.(i - 1) +. widths.(i - 1)
      done;
      let out = Active_set.solve ~x0 qp in
      let opt = Qp.objective qp out.Active_set.x in
      (* sample feasible points: packed with random base offsets *)
      let ok = ref out.Active_set.converged in
      for _ = 1 to 10 do
        let base = rand () *. 20.0 in
        let x = Array.map (fun v -> v +. base) x0 in
        if Qp.is_feasible qp x && Qp.objective qp x < opt -. 1e-7 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "qp"
    [ ( "problem",
        [ Alcotest.test_case "objective/gradient" `Quick test_objective_gradient;
          Alcotest.test_case "feasibility" `Quick test_feasibility ] );
      ("kkt", [ Alcotest.test_case "figure 2 structure" `Quick test_kkt_structure ]);
      ( "active_set",
        [ Alcotest.test_case "unconstrained" `Quick test_active_set_unconstrained;
          Alcotest.test_case "two-cell overlap" `Quick test_active_set_two_cell_overlap;
          Alcotest.test_case "bound clamp" `Quick test_active_set_bound_clamp;
          Alcotest.test_case "random chains KKT" `Quick test_active_set_kkt_residual;
          Alcotest.test_case "feasible start" `Quick test_feasible_start;
          Alcotest.test_case "rejects infeasible x0" `Quick
            test_active_set_rejects_infeasible_start ] );
      ( "ipm",
        [ Alcotest.test_case "matches active set" `Quick test_ipm_matches_active_set;
          Alcotest.test_case "KKT residual" `Quick test_ipm_kkt_residual;
          Alcotest.test_case "infeasible start" `Quick test_ipm_infeasible_start_ok;
          Alcotest.test_case "degenerate chain regression" `Quick
            test_ipm_degenerate_chain ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qc_active_set_beats_random_feasible; qc_ipm_random_chains ] ) ]
