(* Tests for the multicore layer: pool lifecycle, exception propagation,
   and — the key property — bit-identity of the parallel and sequential
   paths of Fence.legalize, Runner.run/run_all, and Solver.solve. *)

open Mclh_circuit
open Mclh_core
open Mclh_par

(* ---------- pool mechanics ---------- *)

let test_pool_map_order () =
  let pool = Pool.create ~num_domains:4 in
  Alcotest.(check int) "size" 4 (Pool.size pool);
  let input = Array.init 100 (fun i -> i) in
  (* reuse the same pool across several jobs *)
  for _ = 1 to 3 do
    let out = Pool.parallel_map pool (fun i -> (2 * i) + 1) input in
    Alcotest.(check (array int))
      "index-ordered results"
      (Array.map (fun i -> (2 * i) + 1) input)
      out
  done;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (* a stopped pool still computes, sequentially *)
  let out = Pool.parallel_map pool (fun i -> i * i) input in
  Alcotest.(check (array int)) "after shutdown" (Array.map (fun i -> i * i) input) out

let test_pool_iter_chunks_cover () =
  let pool = Pool.create ~num_domains:3 in
  List.iter
    (fun n ->
      let hits = Array.make (max n 1) 0 in
      Pool.parallel_iter_chunks pool n ~f:(fun lo hi ->
          Alcotest.(check bool) "chunk bounds" true (0 <= lo && lo <= hi && hi <= n);
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      if n > 0 then
        Alcotest.(check (array int))
          (Printf.sprintf "each index covered once (n=%d)" n)
          (Array.make n 1) (Array.sub hits 0 n))
    [ 0; 1; 2; 3; 7; 100; 101 ];
  (* min_chunk keeps small ranges on the caller *)
  let calls = ref 0 in
  Pool.parallel_iter_chunks ~min_chunk:50 pool 40 ~f:(fun lo hi ->
      incr calls;
      Alcotest.(check (pair int int)) "single chunk" (0, 40) (lo, hi));
  Alcotest.(check int) "one call" 1 !calls;
  Pool.shutdown pool

exception Boom of int

let test_pool_exception_propagation () =
  let pool = Pool.create ~num_domains:4 in
  let raised =
    try
      ignore
        (Pool.parallel_map pool
           (fun i -> if i = 13 then raise (Boom i) else i)
           (Array.init 64 Fun.id));
      false
    with Boom 13 -> true
  in
  Alcotest.(check bool) "exception reaches the caller" true raised;
  (* the pool survives a failed job *)
  let out = Pool.parallel_map pool (fun i -> i + 1) (Array.init 32 Fun.id) in
  Alcotest.(check (array int)) "usable after failure" (Array.init 32 (fun i -> i + 1)) out;
  Pool.shutdown pool

let test_pool_nested_fallback () =
  (* a nested parallel call on a busy pool must degrade to sequential,
     not deadlock, and still produce correct results *)
  let pool = Pool.create ~num_domains:3 in
  let out =
    Pool.parallel_map pool
      (fun i ->
        let inner = Pool.parallel_map pool (fun j -> i + j) (Array.init 10 Fun.id) in
        Array.fold_left ( + ) 0 inner)
      (Array.init 8 Fun.id)
  in
  let expect = Array.init 8 (fun i -> (10 * i) + 45) in
  Alcotest.(check (array int)) "nested results" expect out;
  Pool.shutdown pool

let test_default_num_domains () =
  (* the env override is read by default_num_domains; tests run without
     MCLH_DOMAINS, so it falls back to the hardware-based default *)
  let d = Pool.default_num_domains () in
  Alcotest.(check bool) "at least one" true (d >= 1);
  Alcotest.(check bool) "capped" true (d <= 8 || Sys.getenv_opt "MCLH_DOMAINS" <> None)

(* ---------- bit-identity of the wired layers ---------- *)

let check_placement_identical name (a : Placement.t) (b : Placement.t) =
  (* exact float equality: the parallel path must be the same arithmetic *)
  Alcotest.(check (array (float 0.0))) (name ^ " xs") a.Placement.xs b.Placement.xs;
  Alcotest.(check (array (float 0.0))) (name ^ " ys") a.Placement.ys b.Placement.ys

let instance ?(options = Mclh_benchgen.Generate.default_options) ?(scale = 0.008)
    name =
  Mclh_benchgen.Generate.generate ~options
    (Mclh_benchgen.Spec.scaled scale (Mclh_benchgen.Spec.find name))

let config_with_domains num_domains = { Config.default with num_domains }

let test_fence_bit_identity () =
  let options =
    { Mclh_benchgen.Generate.default_options with fence_count = 2 }
  in
  let d = (instance ~options "fft_2").Mclh_benchgen.Generate.design in
  let seq, seq_stats = Fence.legalize ~config:(config_with_domains 1) d in
  List.iter
    (fun nd ->
      let par, par_stats = Fence.legalize ~config:(config_with_domains nd) d in
      check_placement_identical (Printf.sprintf "fence nd=%d" nd) seq par;
      Alcotest.(check int)
        (Printf.sprintf "territories nd=%d" nd)
        seq_stats.Fence.territories par_stats.Fence.territories;
      Alcotest.(check (list (triple string int int)))
        (Printf.sprintf "per-territory stats nd=%d" nd)
        (List.map
           (fun t -> (t.Fence.name, t.Fence.cells, t.Fence.iterations))
           seq_stats.Fence.per_territory)
        (List.map
           (fun t -> (t.Fence.name, t.Fence.cells, t.Fence.iterations))
           par_stats.Fence.per_territory))
    [ 2; 4 ];
  Alcotest.(check bool) "legal" true (Legality.is_legal d seq)

let test_solver_bit_identity () =
  (* force the parallel per-chain path on a small model by lowering the
     chunk threshold *)
  let d = (instance ~scale:0.01 "fft_2").Mclh_benchgen.Generate.design in
  let assignment = Row_assign.assign d in
  let model = Model.build d assignment in
  Alcotest.(check bool) "model has chains" true
    (Mclh_linalg.Blocks.num_chains model.Model.blocks > 1);
  let saved = !Solver.par_chain_chunk in
  Fun.protect
    ~finally:(fun () -> Solver.par_chain_chunk := saved)
    (fun () ->
      Solver.par_chain_chunk := 1;
      let seq = Solver.solve ~config:(config_with_domains 1) model in
      List.iter
        (fun nd ->
          let par = Solver.solve ~config:(config_with_domains nd) model in
          let tag = Printf.sprintf "solver nd=%d" nd in
          Alcotest.(check int) (tag ^ " iterations") seq.Solver.iterations
            par.Solver.iterations;
          Alcotest.(check bool) (tag ^ " converged") seq.Solver.converged
            par.Solver.converged;
          Alcotest.(check (array (float 0.0))) (tag ^ " x") seq.Solver.x par.Solver.x;
          Alcotest.(check (array (float 0.0))) (tag ^ " r") seq.Solver.r par.Solver.r)
        [ 2; 4 ])

let test_pool_iter_weighted () =
  (* coverage and chunk determinism: every element of [order] is visited
     exactly once whatever the pool degree or min_chunk_weight, and
     disjoint writes land identically *)
  let orders =
    [ [||]; [| 0 |]; [| 4; 1; 0; 3; 2 |]; Array.init 257 (fun i -> 256 - i) ]
  in
  let weights i = 1 + (i mod 7) in
  List.iter
    (fun num_domains ->
      let pool = Pool.create ~num_domains in
      List.iter
        (fun order ->
          List.iter
            (fun min_chunk_weight ->
              let n = Array.length order in
              let hits = Array.make (max n 1) 0 in
              Pool.parallel_iter_weighted ~min_chunk_weight pool
                ~weight:weights
                ~f:(fun i -> hits.(i) <- hits.(i) + 1)
                order;
              if n > 0 then
                Alcotest.(check (array int))
                  (Printf.sprintf
                     "each element once (n=%d, nd=%d, mcw=%d)" n num_domains
                     min_chunk_weight)
                  (Array.make n 1) (Array.sub hits 0 n))
            [ 1; 3; 1000 ])
        orders;
      Pool.shutdown pool)
    [ 1; 3 ];
  let pool = Pool.create ~num_domains:2 in
  Alcotest.check_raises "min_chunk_weight validated"
    (Invalid_argument "Pool.parallel_iter_weighted: min_chunk_weight < 1")
    (fun () ->
      Pool.parallel_iter_weighted ~min_chunk_weight:0 pool
        ~weight:(fun _ -> 1)
        ~f:ignore [| 0 |]);
  Pool.shutdown pool

let test_runner_bit_identity () =
  let d = (instance "fft_1").Mclh_benchgen.Generate.design in
  let seq = Runner.run ~config:(config_with_domains 1) Runner.Mmsim d in
  let par = Runner.run ~config:(config_with_domains 4) Runner.Mmsim d in
  check_placement_identical "runner mmsim" seq.Runner.placement par.Runner.placement;
  Alcotest.(check bool) "legal" true par.Runner.legal;
  Alcotest.(check (float 1e-12)) "displacement"
    seq.Runner.displacement.Metrics.total_manhattan
    par.Runner.displacement.Metrics.total_manhattan

let test_run_all_matches_run () =
  let designs =
    List.map
      (fun name -> (instance name).Mclh_benchgen.Generate.design)
      [ "fft_1"; "fft_2"; "pci_bridge32_a" ]
  in
  let algorithms = [ Runner.Tetris; Runner.Mmsim ] in
  List.iter
    (fun nd ->
      let config = config_with_domains nd in
      let grouped = Runner.run_all ~config ~algorithms designs in
      Alcotest.(check int) "one group per design" (List.length designs)
        (List.length grouped);
      List.iter2
        (fun d reports ->
          List.iter2
            (fun alg (r : Runner.report) ->
              let solo = Runner.run ~config alg d in
              Alcotest.(check string) "algorithm order" (Runner.name alg)
                (Runner.name r.Runner.algorithm);
              check_placement_identical
                (Printf.sprintf "run_all %s nd=%d" (Runner.name alg) nd)
                solo.Runner.placement r.Runner.placement)
            algorithms reports)
        designs grouped)
    [ 1; 4 ]

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ Alcotest.test_case "map order + lifecycle" `Quick test_pool_map_order;
          Alcotest.test_case "iter_chunks coverage" `Quick
            test_pool_iter_chunks_cover;
          Alcotest.test_case "iter_weighted coverage" `Quick
            test_pool_iter_weighted;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "nested fallback" `Quick test_pool_nested_fallback;
          Alcotest.test_case "default domains" `Quick test_default_num_domains ] );
      ( "bit-identity",
        [ Alcotest.test_case "fence territories" `Quick test_fence_bit_identity;
          Alcotest.test_case "solver chains" `Quick test_solver_bit_identity;
          Alcotest.test_case "runner" `Quick test_runner_bit_identity;
          Alcotest.test_case "run_all vs run" `Quick test_run_all_matches_run ] ) ]
