(* Tests for the LCP machinery: residuals, the generic MMSIM, and the
   projected Gauss-Seidel reference solver. *)

open Mclh_linalg
open Mclh_lcp

let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* random SPD matrix A = M^T M + n I as CSR, with q *)
let random_spd_lcp rand n =
  let m = Dense.init n n (fun _ _ -> rand () -. 0.5) in
  let a = Dense.gram m in
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i +. 1.0)
  done;
  let q = Vec.init n (fun _ -> (rand () *. 4.0) -. 2.0) in
  Lcp.of_dense a q

let test_residual_known_solution () =
  (* A = I, q = (-1, 2): solution z = (1, 0), w = (0, 2) *)
  let p = Lcp.of_dense (Dense.identity 2) (Vec.of_list [ -1.0; 2.0 ]) in
  let z = Vec.of_list [ 1.0; 0.0 ] in
  Alcotest.(check bool) "solution accepted" true (Lcp.is_solution p z);
  let r = Lcp.residual p z in
  Alcotest.(check (float 1e-12)) "fb residual" 0.0 r.Lcp.fischer_burmeister;
  let bad = Vec.of_list [ 0.0; 0.0 ] in
  Alcotest.(check bool) "non-solution rejected" false (Lcp.is_solution p bad)

let test_residual_components () =
  let p = Lcp.of_dense (Dense.identity 2) (Vec.of_list [ 0.0; 0.0 ]) in
  let z = Vec.of_list [ -1.0; 2.0 ] in
  let r = Lcp.residual p z in
  Alcotest.(check (float 1e-12)) "z_neg" 1.0 r.Lcp.z_neg;
  Alcotest.(check (float 1e-12)) "w_neg" 1.0 r.Lcp.w_neg;
  Alcotest.(check (float 1e-12)) "complementarity" 4.0 r.Lcp.complementarity

let test_mmsim_gauss_seidel_solves () =
  let rand = mk_rand 3 in
  List.iter
    (fun n ->
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      let out = Mmsim.solve ops ~q:p.Lcp.q in
      Alcotest.(check bool)
        (Printf.sprintf "converged n=%d" n)
        true out.Mmsim.converged;
      if Lcp.residual_inf p out.Mmsim.z > 1e-6 then
        Alcotest.failf "MMSIM residual too large at n = %d: %g" n
          (Lcp.residual_inf p out.Mmsim.z))
    [ 1; 2; 5; 10; 25 ]

let test_mmsim_agrees_with_pgs () =
  let rand = mk_rand 17 in
  for _ = 1 to 10 do
    let n = 3 + int_of_float (rand () *. 10.0) in
    let p = random_spd_lcp rand n in
    let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
    let mm = Mmsim.solve ops ~q:p.Lcp.q in
    let pg = Pgs.solve p in
    Alcotest.(check bool) "pgs converged" true pg.Pgs.converged;
    if Vec.dist_inf mm.Mmsim.z pg.Pgs.z > 1e-5 then
      Alcotest.failf "MMSIM and PGS disagree: %g"
        (Vec.dist_inf mm.Mmsim.z pg.Pgs.z)
  done

let test_mmsim_complementary_w () =
  let rand = mk_rand 23 in
  let p = random_spd_lcp rand 8 in
  let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
  let options = Mmsim.default_options in
  let out = Mmsim.solve ~options ops ~q:p.Lcp.q in
  let w = Mmsim.w_of_s options ops out.Mmsim.s in
  (* the modulus construction gives exact complementarity *)
  Array.iteri
    (fun i wi ->
      if Float.abs (wi *. out.Mmsim.z.(i)) > 1e-9 then
        Alcotest.failf "complementarity violated at %d" i)
    w

let test_mmsim_gamma_invariance () =
  let rand = mk_rand 31 in
  let p = random_spd_lcp rand 6 in
  let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
  let solve gamma =
    let options = { Mmsim.default_options with gamma } in
    (Mmsim.solve ~options ops ~q:p.Lcp.q).Mmsim.z
  in
  Alcotest.(check bool)
    "gamma 1 vs 2" true
    (Vec.equal ~eps:1e-6 (solve 1.0) (solve 2.0))

let test_mmsim_warm_start_at_solution () =
  let rand = mk_rand 37 in
  let p = random_spd_lcp rand 8 in
  let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
  let options = Mmsim.default_options in
  let first = Mmsim.solve ~options ops ~q:p.Lcp.q in
  let second = Mmsim.solve ~options ~s0:first.Mmsim.s ops ~q:p.Lcp.q in
  Alcotest.(check bool)
    "restart converges immediately" true
    (second.Mmsim.iterations <= 2)

let test_mmsim_validation () =
  let p = random_spd_lcp (mk_rand 1) 3 in
  let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
  Alcotest.(check bool) "bad gamma" true
    (try
       ignore
         (Mmsim.solve ~options:{ Mmsim.default_options with gamma = 0.0 } ops
            ~q:p.Lcp.q);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad q dim" true
    (try
       ignore (Mmsim.solve ops ~q:(Vec.zeros 7));
       false
     with Invalid_argument _ -> true)

let test_mmsim_stalled_z_regression () =
  (* regression: z can sit at 0 for an iteration while s still moves; the
     paper's z-change-only criterion declares victory at a non-solution.
     Found by qcheck on (n = 2, seed = 3177). *)
  let a =
    Dense.of_arrays
      [| [| 1.26359; -0.216442 |]; [| -0.216442; 1.21613 |] |]
  in
  let p = Lcp.of_dense a (Vec.of_list [ 1.33375; -0.0748509 ]) in
  let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
  let out = Mmsim.solve ops ~q:p.Lcp.q in
  Alcotest.(check bool) "converged" true out.Mmsim.converged;
  Alcotest.(check bool) "to an actual solution" true
    (Lcp.residual_inf p out.Mmsim.z < 1e-6);
  Alcotest.(check bool) "z2 positive" true (out.Mmsim.z.(1) > 0.05)

let test_gs_operators_validation () =
  let bad = Coo.create ~rows:2 ~cols:2 in
  Coo.add bad 0 1 1.0;
  Coo.add bad 1 0 1.0;
  (* zero diagonal *)
  Alcotest.(check bool) "zero diagonal rejected" true
    (try
       ignore (Mmsim.gauss_seidel_operators (Coo.to_csr bad));
       false
     with Invalid_argument _ -> true)

let test_pgs_relaxation () =
  let rand = mk_rand 41 in
  let p = random_spd_lcp rand 10 in
  let plain = Pgs.solve p in
  let sor =
    Pgs.solve ~options:{ Pgs.default_options with relaxation = 1.4 } p
  in
  Alcotest.(check bool) "sor converged" true sor.Pgs.converged;
  Alcotest.(check bool)
    "same solution" true
    (Vec.equal ~eps:1e-6 plain.Pgs.z sor.Pgs.z)

let test_pgs_validation () =
  let p = random_spd_lcp (mk_rand 2) 3 in
  Alcotest.(check bool) "relaxation bound" true
    (try
       ignore (Pgs.solve ~options:{ Pgs.default_options with relaxation = 2.5 } p);
       false
     with Invalid_argument _ -> true)


(* ---------- Lemke ---------- *)

let test_lemke_trivial () =
  (* q >= 0: z = 0 *)
  let p = Lcp.of_dense (Dense.identity 3) (Vec.of_list [ 1.0; 0.5; 2.0 ]) in
  match Lemke.solve p with
  | Lemke.Solution z -> Alcotest.(check bool) "zero" true (Vec.norm_inf z = 0.0)
  | Lemke.Ray_termination | Lemke.Iteration_limit -> Alcotest.fail "expected solution"

let test_lemke_known () =
  (* A = I, q = (-1, 2): z = (1, 0) *)
  let p = Lcp.of_dense (Dense.identity 2) (Vec.of_list [ -1.0; 2.0 ]) in
  match Lemke.solve p with
  | Lemke.Solution z ->
    Alcotest.(check bool) "z = (1,0)" true
      (Vec.equal ~eps:1e-8 z (Vec.of_list [ 1.0; 0.0 ]))
  | Lemke.Ray_termination | Lemke.Iteration_limit -> Alcotest.fail "expected solution"

let test_lemke_vs_pgs_random_spd () =
  let rand = mk_rand 53 in
  for _ = 1 to 15 do
    let n = 2 + int_of_float (rand () *. 12.0) in
    let p = random_spd_lcp rand n in
    match Lemke.solve p with
    | Lemke.Solution z ->
      if Lcp.residual_inf p z > 1e-6 then
        Alcotest.failf "Lemke residual %g" (Lcp.residual_inf p z);
      let pg = Pgs.solve p in
      if Vec.dist_inf z pg.Pgs.z > 1e-5 then
        Alcotest.failf "Lemke vs PGS disagree by %g" (Vec.dist_inf z pg.Pgs.z)
    | Lemke.Ray_termination | Lemke.Iteration_limit ->
      Alcotest.fail "Lemke failed on an SPD LCP"
  done

let test_lemke_infeasible_ray () =
  (* A = 0 (copositive), q with a negative entry: w = q cannot be >= 0,
     no solution exists; Lemke must terminate on a ray, not loop *)
  let zero = Dense.create 2 2 in
  let p = Lcp.of_dense zero (Vec.of_list [ -1.0; 1.0 ]) in
  match Lemke.solve p with
  | Lemke.Ray_termination -> ()
  | Lemke.Solution _ -> Alcotest.fail "no solution exists"
  | Lemke.Iteration_limit -> Alcotest.fail "should detect the ray"

let qc_lemke_random_spd =
  QCheck.Test.make ~count:40 ~name:"lemke: random SPD LCPs solved"
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 7) in
      let p = random_spd_lcp rand n in
      match Lemke.solve p with
      | Lemke.Solution z -> Lcp.residual_inf p z < 1e-6
      | Lemke.Ray_termination | Lemke.Iteration_limit -> false)

let qc_mmsim_random_spd =
  QCheck.Test.make ~count:60 ~name:"mmsim: random SPD LCPs solved"
    QCheck.(pair (int_range 1 15) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 1) in
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      (* ill-conditioned draws converge slowly under the GS splitting:
         give the iteration room, then judge by the residual *)
      let options = { Mmsim.default_options with max_iter = 500_000 } in
      let out = Mmsim.solve ~options ops ~q:p.Lcp.q in
      Lcp.residual_inf p out.Mmsim.z < 1e-5)

let qc_mmsim_adversarial_s0_same_fixed_point =
  (* the modulus fixed point is unique for SPD splittings, so *any* start
     vector — including large adversarial ones — must land on the same
     solution as the cold (zero) start *)
  QCheck.Test.make ~count:60
    ~name:"mmsim: adversarial s0 reaches the cold fixed point"
    QCheck.(triple (int_range 1 12) (int_range 0 10_000) (float_range (-1000.0) 1000.0))
    (fun (n, seed, magnitude) ->
      let rand = mk_rand (seed + 11) in
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      let options = { Mmsim.default_options with max_iter = 500_000 } in
      let cold = Mmsim.solve ~options ops ~q:p.Lcp.q in
      let s0 =
        Vec.init n (fun _ -> magnitude *. ((rand () *. 2.0) -. 1.0))
      in
      let warm = Mmsim.solve ~options ~s0 ops ~q:p.Lcp.q in
      warm.Mmsim.converged
      && Lcp.residual_inf p warm.Mmsim.z < 1e-5
      && Vec.equal ~eps:1e-4 cold.Mmsim.z warm.Mmsim.z)

let qc_mmsim_warm_start_reduces_iterations =
  (* s0 = the previous solve's final modulus on a slightly perturbed
     problem must not iterate more than the cold start — and strictly
     less whenever the cold solve does real work *)
  QCheck.Test.make ~count:40
    ~name:"mmsim: previous-s warm start reduces iterations on a perturbed LCP"
    QCheck.(pair (int_range 2 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 13) in
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      let options = { Mmsim.default_options with max_iter = 500_000 } in
      let first = Mmsim.solve ~options ops ~q:p.Lcp.q in
      (* perturb the linear term by ~0.1% of its magnitude *)
      let q' =
        Vec.init n (fun i ->
            p.Lcp.q.(i) +. (1e-3 *. ((rand () *. 2.0) -. 1.0)))
      in
      let cold = Mmsim.solve ~options ops ~q:q' in
      let warm = Mmsim.solve ~options ~s0:first.Mmsim.s ops ~q:q' in
      warm.Mmsim.converged
      && Vec.equal ~eps:1e-4 cold.Mmsim.z warm.Mmsim.z
      &&
      (* tiny instances can converge in a step or two either way; the
         strict reduction is required once the cold start does real
         work *)
      if cold.Mmsim.iterations <= 3 then
        warm.Mmsim.iterations <= cold.Mmsim.iterations
      else warm.Mmsim.iterations < cold.Mmsim.iterations)

(* lockstep in-place adapter over allocating operators: the semantics the
   mli promises ([solve] delegates to [solve_inplace]) checked from the
   outside, through a *different* operator implementation *)
let inplace_of (ops : Mmsim.operators) =
  { Mmsim.dim_ip = ops.Mmsim.dim;
    apply_a_into = (fun v dst -> Vec.blit ~src:(ops.Mmsim.apply_a v) ~dst);
    apply_n_into = (fun v dst -> Vec.blit ~src:(ops.Mmsim.apply_n v) ~dst);
    solve_m_omega_into =
      (fun rhs dst -> Vec.blit ~src:(ops.Mmsim.solve_m_omega rhs) ~dst);
    omega_diag_ip = ops.Mmsim.omega_diag }

let qc_solve_matches_solve_inplace =
  (* solve and solve_inplace share one stopping/divergence implementation:
     identical (iterations, converged, delta_inf) and bit-identical
     iterates on identical inputs — including truncated budgets (converged
     = false), warm starts, and acceleration *)
  QCheck.Test.make ~count:80
    ~name:"mmsim: solve = solve_inplace on (iterations, converged, delta_inf)"
    QCheck.(
      quad (int_range 1 12) (int_range 0 10_000) (int_range 1 60)
        (int_range 0 4))
    (fun (n, seed, max_iter, accel) ->
      let rand = mk_rand (seed + 29) in
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      let options = { Mmsim.default_options with max_iter; accel } in
      let s0 = Vec.init n (fun _ -> (rand () *. 4.0) -. 2.0) in
      let a = Mmsim.solve ~options ~s0 ops ~q:p.Lcp.q in
      let b = Mmsim.solve_inplace ~options ~s0 (inplace_of ops) ~q:p.Lcp.q in
      a.Mmsim.iterations = b.Mmsim.iterations
      && a.Mmsim.converged = b.Mmsim.converged
      && Float.equal a.Mmsim.delta_inf b.Mmsim.delta_inf
      && Vec.dist_inf a.Mmsim.z b.Mmsim.z = 0.0
      && Vec.dist_inf a.Mmsim.s b.Mmsim.s = 0.0)

let qc_mmsim_accel_same_fixed_point =
  (* Anderson acceleration changes the path, never the destination: the
     accelerated solve must land on the plain fixed point *)
  QCheck.Test.make ~count:60
    ~name:"mmsim: accelerated solve reaches the plain fixed point"
    QCheck.(pair (int_range 1 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 19) in
      let p = random_spd_lcp rand n in
      let ops = Mmsim.gauss_seidel_operators p.Lcp.a in
      let plain =
        Mmsim.solve
          ~options:{ Mmsim.default_options with max_iter = 500_000 }
          ops ~q:p.Lcp.q
      in
      let accel =
        Mmsim.solve
          ~options:{ Mmsim.default_options with max_iter = 500_000; accel = 8 }
          ops ~q:p.Lcp.q
      in
      accel.Mmsim.converged
      && Lcp.residual_inf p accel.Mmsim.z < 1e-5
      && Vec.equal ~eps:1e-5 plain.Mmsim.z accel.Mmsim.z)

let qc_pgs_random_spd =
  QCheck.Test.make ~count:60 ~name:"pgs: random SPD LCPs solved"
    QCheck.(pair (int_range 1 15) (int_range 0 10_000))
    (fun (n, seed) ->
      let rand = mk_rand (seed + 2) in
      let p = random_spd_lcp rand n in
      let options = { Pgs.default_options with max_iter = 500_000 } in
      let out = Pgs.solve ~options p in
      Lcp.residual_inf p out.Pgs.z < 1e-5)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ qc_mmsim_random_spd;
        qc_mmsim_adversarial_s0_same_fixed_point;
        qc_mmsim_warm_start_reduces_iterations;
        qc_solve_matches_solve_inplace;
        qc_mmsim_accel_same_fixed_point;
        qc_pgs_random_spd;
        qc_lemke_random_spd ]
  in
  Alcotest.run "lcp"
    [ ( "residuals",
        [ Alcotest.test_case "known solution" `Quick test_residual_known_solution;
          Alcotest.test_case "components" `Quick test_residual_components ] );
      ( "mmsim",
        [ Alcotest.test_case "solves SPD LCPs" `Quick test_mmsim_gauss_seidel_solves;
          Alcotest.test_case "agrees with PGS" `Quick test_mmsim_agrees_with_pgs;
          Alcotest.test_case "complementary w" `Quick test_mmsim_complementary_w;
          Alcotest.test_case "gamma invariance" `Quick test_mmsim_gamma_invariance;
          Alcotest.test_case "warm restart" `Quick test_mmsim_warm_start_at_solution;
          Alcotest.test_case "validation" `Quick test_mmsim_validation;
          Alcotest.test_case "stalled-z regression" `Quick test_mmsim_stalled_z_regression;
          Alcotest.test_case "gs operator validation" `Quick test_gs_operators_validation ] );
      ( "pgs",
        [ Alcotest.test_case "relaxation" `Quick test_pgs_relaxation;
          Alcotest.test_case "validation" `Quick test_pgs_validation ] );
      ( "lemke",
        [ Alcotest.test_case "trivial q >= 0" `Quick test_lemke_trivial;
          Alcotest.test_case "known solution" `Quick test_lemke_known;
          Alcotest.test_case "vs PGS on SPD" `Quick test_lemke_vs_pgs_random_spd;
          Alcotest.test_case "ray termination" `Quick test_lemke_infeasible_ray ] );
      ("properties", qsuite) ]
