(* Tests for the conjugate-gradient solver and the analytical global
   placer. *)

open Mclh_linalg
open Mclh_circuit
open Mclh_benchgen

let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* ---------- CG ---------- *)

let random_spd rand n =
  let m = Dense.init n n (fun _ _ -> rand () -. 0.5) in
  let a = Dense.gram m in
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i +. 2.0)
  done;
  a

let test_cg_matches_lu () =
  let rand = mk_rand 3 in
  List.iter
    (fun n ->
      let a = random_spd rand n in
      let b = Vec.init n (fun _ -> rand () *. 4.0 -. 2.0) in
      let cg = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
      Alcotest.(check bool) "converged" true cg.Cg.converged;
      let x_ref = Lu.solve_system a b in
      if not (Vec.equal ~eps:1e-6 cg.Cg.x x_ref) then
        Alcotest.failf "CG vs LU mismatch at n = %d" n)
    [ 1; 2; 5; 12; 30 ]

let test_cg_jacobi () =
  let rand = mk_rand 7 in
  let n = 20 in
  let a = random_spd rand n in
  (* skew the diagonal so preconditioning matters *)
  for i = 0 to n - 1 do
    Dense.set a i i (Dense.get a i i *. float_of_int (1 + (i mod 5)))
  done;
  let b = Vec.init n (fun _ -> rand ()) in
  let diag = Vec.init n (fun i -> Dense.get a i i) in
  let plain = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
  let pre = Cg.solve ~jacobi:diag ~dim:n (Dense.mul_vec a) ~b in
  Alcotest.(check bool) "both converge" true (plain.Cg.converged && pre.Cg.converged);
  Alcotest.(check bool) "same solution" true (Vec.equal ~eps:1e-5 plain.Cg.x pre.Cg.x);
  Alcotest.(check bool) "preconditioning not slower" true
    (pre.Cg.iterations <= plain.Cg.iterations + 2)

let test_cg_warm_start () =
  let rand = mk_rand 11 in
  let n = 10 in
  let a = random_spd rand n in
  let b = Vec.init n (fun _ -> rand ()) in
  let first = Cg.solve ~dim:n (Dense.mul_vec a) ~b in
  let second = Cg.solve ~x0:first.Cg.x ~dim:n (Dense.mul_vec a) ~b in
  Alcotest.(check bool) "immediate" true (second.Cg.iterations <= 1)

let test_cg_validation () =
  Alcotest.(check bool) "bad jacobi" true
    (try
       ignore (Cg.solve ~jacobi:(Vec.zeros 2) ~dim:2 (fun v -> v) ~b:(Vec.zeros 2));
       false
     with Invalid_argument _ -> true)

(* ---------- Gp ---------- *)

let design_for name scale =
  (Generate.generate (Spec.scaled scale (Spec.find name))).Generate.design

let test_gp_basics () =
  let d = design_for "fft_2" 0.01 in
  let gp, stats = Mclh_gp.Gp.place d in
  (* the overflow stopping rule may end the loop early, never late *)
  let nrounds = List.length stats.Mclh_gp.Gp.rounds in
  Alcotest.(check bool) "rounds recorded" true
    (nrounds >= 1
    && nrounds <= Mclh_gp.Gp.default_options.Mclh_gp.Gp.iterations);
  (* round indices are chronological starting at 1 *)
  List.iteri
    (fun i (r : Mclh_gp.Gp.round) ->
      Alcotest.(check int) "round index" (i + 1) r.Mclh_gp.Gp.index)
    stats.Mclh_gp.Gp.rounds;
  (* in bounds *)
  let chip = d.Design.chip in
  Array.iteri
    (fun i (c : Cell.t) ->
      let x = gp.Placement.xs.(i) and y = gp.Placement.ys.(i) in
      if
        x < 0.0
        || x +. float_of_int c.Cell.width > float_of_int chip.Chip.num_sites
        || y < 0.0
        || y +. float_of_int c.Cell.height > float_of_int chip.Chip.num_rows
      then Alcotest.failf "cell %d out of bounds" i)
    d.Design.cells;
  (* wirelength sanity: far below a deliberately scattered placement *)
  let rand = mk_rand 13 in
  let scattered =
    Placement.make
      ~xs:(Array.init (Design.num_cells d) (fun _ ->
               rand () *. float_of_int (chip.Chip.num_sites - 12)))
      ~ys:(Array.init (Design.num_cells d) (fun _ ->
               rand () *. float_of_int (chip.Chip.num_rows - 4)))
  in
  let rh = chip.Chip.row_height in
  let h_gp = Hpwl.total ~row_height:rh d.Design.nets gp in
  let h_rand = Hpwl.total ~row_height:rh d.Design.nets scattered in
  Alcotest.(check bool)
    (Printf.sprintf "gp %.0f < scattered %.0f" h_gp h_rand)
    true (h_gp < h_rand)

let test_gp_deterministic () =
  let d = design_for "fft_a" 0.01 in
  let gp1, _ = Mclh_gp.Gp.place d in
  let gp2, _ = Mclh_gp.Gp.place d in
  Alcotest.(check bool) "deterministic" true (Placement.equal gp1 gp2)

let test_gp_output_legalizes () =
  List.iter
    (fun name ->
      let d0 = design_for name 0.01 in
      let gp, _ = Mclh_gp.Gp.place d0 in
      let d =
        Design.make ~blockages:d0.Design.blockages ~name:"gp" ~chip:d0.Design.chip
          ~cells:d0.Design.cells ~global:gp ~nets:d0.Design.nets ()
      in
      let legal = Mclh_core.Flow.legalize d in
      Alcotest.(check bool) (name ^ " legalizes") true (Legality.is_legal d legal))
    [ "fft_2"; "pci_bridge32_b" ]

let test_gp_b2b_model () =
  let d = design_for "fft_a" 0.01 in
  let options = { Mclh_gp.Gp.default_options with net_model = Mclh_gp.Gp.B2b } in
  let gp, stats = Mclh_gp.Gp.place ~options d in
  Alcotest.(check bool) "finite hpwl" true
    (Float.is_finite stats.Mclh_gp.Gp.final_hpwl);
  (* B2B output is a usable global placement too *)
  let d2 =
    Design.make ~name:"b2b" ~chip:d.Design.chip ~cells:d.Design.cells
      ~global:gp ~nets:d.Design.nets ()
  in
  let legal = Mclh_core.Flow.legalize d2 in
  Alcotest.(check bool) "legalizes" true (Legality.is_legal d2 legal);
  (* and it differs from the clique solution (different model) *)
  let gp_clique, _ = Mclh_gp.Gp.place d in
  Alcotest.(check bool) "distinct model" false (Placement.equal gp gp_clique)

let test_gp_no_nets () =
  (* without nets, cells start at the staggered center anchors and the
     density field spreads them apart until they fit the target *)
  let chip = Chip.make ~num_rows:4 ~num_sites:40 () in
  let cells = Array.init 3 (fun id -> Cell.make ~id ~width:3 ~height:1 ()) in
  let d =
    Design.make ~name:"isolated" ~chip ~cells
      ~global:(Placement.create 3)
      ~nets:(Netlist.empty ~num_cells:3)
      ()
  in
  let gp, stats = Mclh_gp.Gp.place d in
  Alcotest.(check (float 1e-9)) "no wirelength" 0.0 stats.Mclh_gp.Gp.final_hpwl;
  Array.iter
    (fun x ->
      Alcotest.(check bool) "in bounds" true (x >= 0.0 && x <= 37.0))
    gp.Placement.xs;
  (* density equalization reached its target on this trivial instance *)
  Alcotest.(check bool) "spread converged" true
    (stats.Mclh_gp.Gp.final_overflow
    <= Mclh_gp.Gp.default_options.Mclh_gp.Gp.stop_overflow)

(* ---------- density engine ---------- *)

let test_density_conservation () =
  (* binning is area-exact: the grid holds exactly the movable area *)
  let d = design_for "fft_a" 0.02 in
  let fixed = Array.make (Design.num_cells d) false in
  fixed.(0) <- true;
  let t = Mclh_gp.Density.create ~fixed d in
  Mclh_gp.Density.accumulate t d d.Design.global;
  let binned =
    Array.fold_left ( +. ) 0.0 (Mclh_gp.Density.movable t)
  in
  let expect = Mclh_gp.Density.total_movable_area t in
  Alcotest.(check bool)
    (Printf.sprintf "binned %.3f = movable %.3f" binned expect)
    true
    (Float.abs (binned -. expect) < 1e-6 *. Float.max 1.0 expect)

let test_density_poisson_residual () =
  (* the spectral potential satisfies the 5-point Neumann Laplacian:
     L psi = -(rho - mean rho), checked by direct stencil application *)
  let d = design_for "pci_bridge32_a" 0.02 in
  let t = Mclh_gp.Density.create ~grid:32 d in
  Mclh_gp.Density.accumulate t d d.Design.global;
  Mclh_gp.Density.solve t;
  let m = Mclh_gp.Density.grid t in
  let psi = Mclh_gp.Density.potential t
  and rho = Mclh_gp.Density.charge t in
  let mean = Array.fold_left ( +. ) 0.0 rho /. float_of_int (m * m) in
  let at g ix iy =
    let ix = max 0 (min (m - 1) ix) and iy = max 0 (min (m - 1) iy) in
    g.((iy * m) + ix)
  in
  let maxres = ref 0.0 in
  for iy = 0 to m - 1 do
    for ix = 0 to m - 1 do
      let lap =
        at psi (ix - 1) iy +. at psi (ix + 1) iy +. at psi ix (iy - 1)
        +. at psi ix (iy + 1)
        -. (4.0 *. at psi ix iy)
      in
      maxres := Float.max !maxres (Float.abs (lap +. rho.((iy * m) + ix) -. mean))
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "max residual %.2e" !maxres)
    true (!maxres < 1e-6)

let test_gp_overflow_decreases () =
  let d = design_for "fft_2" 0.01 in
  let _, stats = Mclh_gp.Gp.place d in
  match stats.Mclh_gp.Gp.rounds with
  | [] -> Alcotest.fail "no rounds"
  | first :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "overflow %.3f -> %.3f" first.Mclh_gp.Gp.overflow
         stats.Mclh_gp.Gp.final_overflow)
      true
      (stats.Mclh_gp.Gp.final_overflow < first.Mclh_gp.Gp.overflow
      || stats.Mclh_gp.Gp.final_overflow
         <= Mclh_gp.Gp.default_options.Mclh_gp.Gp.stop_overflow)

let test_gp_fixed_cells_stay_put () =
  let d = design_for "fft_a" 0.01 in
  let pinned = [ 0; 3; 7 ] in
  let options =
    { Mclh_gp.Gp.default_options with Mclh_gp.Gp.fixed_cells = pinned }
  in
  let gp, _ = Mclh_gp.Gp.place ~options d in
  List.iter
    (fun i ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "cell %d x" i)
        d.Design.global.Placement.xs.(i)
        gp.Placement.xs.(i);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "cell %d y" i)
        d.Design.global.Placement.ys.(i)
        gp.Placement.ys.(i))
    pinned;
  (* movable cells did move off the pinned spots' neighborhood *)
  Alcotest.(check bool) "placement not the input" false
    (Placement.equal gp d.Design.global)

let test_gp_honest_illegality () =
  (* the whole point of density-driven GP: its output is overlapping
     (illegal) before legalization, then legalizes cleanly *)
  let d0 = design_for "fft_2" 0.02 in
  let gp, _ = Mclh_gp.Gp.place d0 in
  let d =
    Design.make ~blockages:d0.Design.blockages ~name:"gp" ~chip:d0.Design.chip
      ~cells:d0.Design.cells ~global:gp ~nets:d0.Design.nets ()
  in
  let illegal_pre = Legality.count_illegal d gp in
  Alcotest.(check bool)
    (Printf.sprintf "%d illegal cells pre-legalization" illegal_pre)
    true (illegal_pre > 0);
  let legal = Mclh_core.Flow.legalize d in
  Alcotest.(check bool) "legalizes" true (Legality.is_legal d legal)

(* ---------- eco bridge ---------- *)

let test_eco_bridge_round_trip () =
  let d = design_for "fft_a" 0.01 in
  let snapshots = ref [] in
  let _, _ =
    Mclh_gp.Gp.place
      ~on_round:(fun _ pl -> snapshots := Placement.copy pl :: !snapshots)
      d
  in
  let snapshots = List.rev !snapshots in
  Alcotest.(check bool) "several rounds" true (List.length snapshots >= 2);
  let batches = Mclh_gp.Eco_bridge.batches_of_rounds snapshots in
  Alcotest.(check bool) "non-empty" true (batches <> []);
  (* every batch is pure moves, and each move lands exactly on the next
     snapshot's position for that cell *)
  let rec check_batches snaps batches =
    match (snaps, batches) with
    | _, [] -> ()
    | prev :: (next :: _ as rest), batch :: more ->
      let moved = List.length batch in
      if moved = 0 then Alcotest.fail "empty batch emitted";
      List.iter
        (function
          | Mclh_incr.Edit.Move { cell; x; y } ->
            Alcotest.(check (float 1e-12)) "x" next.Placement.xs.(cell) x;
            Alcotest.(check (float 1e-12)) "y" next.Placement.ys.(cell) y
          | _ -> Alcotest.fail "non-move edit from the bridge")
        batch;
      ignore prev;
      check_batches rest more
    | _ -> Alcotest.fail "more batches than snapshot pairs"
  in
  check_batches snapshots batches;
  (* file round trip *)
  let path = Filename.temp_file "gp_edits" ".edits" in
  Mclh_gp.Eco_bridge.write ~path snapshots;
  let back = Mclh_incr.Edit.read_file ~path in
  Sys.remove path;
  Alcotest.(check int) "batch count survives" (List.length batches)
    (List.length back);
  List.iter2
    (fun b1 b2 ->
      Alcotest.(check int) "batch size" (List.length b1) (List.length b2))
    batches back

let () =
  Alcotest.run "gp"
    [ ( "cg",
        [ Alcotest.test_case "matches LU" `Quick test_cg_matches_lu;
          Alcotest.test_case "jacobi" `Quick test_cg_jacobi;
          Alcotest.test_case "warm start" `Quick test_cg_warm_start;
          Alcotest.test_case "validation" `Quick test_cg_validation ] );
      ( "placer",
        [ Alcotest.test_case "basics" `Quick test_gp_basics;
          Alcotest.test_case "deterministic" `Quick test_gp_deterministic;
          Alcotest.test_case "output legalizes" `Quick test_gp_output_legalizes;
          Alcotest.test_case "b2b model" `Quick test_gp_b2b_model;
          Alcotest.test_case "no nets" `Quick test_gp_no_nets;
          Alcotest.test_case "overflow decreases" `Quick
            test_gp_overflow_decreases;
          Alcotest.test_case "fixed cells stay put" `Quick
            test_gp_fixed_cells_stay_put;
          Alcotest.test_case "honest illegality" `Quick
            test_gp_honest_illegality ] );
      ( "density",
        [ Alcotest.test_case "conservation" `Quick test_density_conservation;
          Alcotest.test_case "poisson residual" `Quick
            test_density_poisson_residual ] );
      ( "eco-bridge",
        [ Alcotest.test_case "round trip" `Quick test_eco_bridge_round_trip ] ) ]
