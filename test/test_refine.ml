(* Tests for the post-legalization detailed-placement refinement. *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core
open Mclh_refine

let instance ?(options = Generate.default_options) name scale =
  Generate.generate ~options (Spec.scaled scale (Spec.find name))

let legal_flow d = Flow.legalize d

let test_skips_illegal_input () =
  let inst = instance "fft_2" 0.004 in
  let d = inst.Generate.design in
  (* the raw global placement is not legal: the offending cells must be
     frozen (reported in [skipped_cells]) rather than the whole run
     aborting, the frozen cells must not move, and the rest must still
     come out no worse *)
  let refined, stats = Refine.run d d.Design.global in
  Alcotest.(check bool) "skipped some cells" true (stats.Refine.skipped_cells > 0);
  let illegal = Legality.illegal_cells d d.Design.global in
  Alcotest.(check int) "skipped = illegal count"
    (List.length illegal) stats.Refine.skipped_cells;
  List.iter
    (fun i ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cell %d x frozen" i)
        d.Design.global.Placement.xs.(i)
        refined.Placement.xs.(i);
      Alcotest.(check (float 0.0))
        (Printf.sprintf "cell %d y frozen" i)
        d.Design.global.Placement.ys.(i)
        refined.Placement.ys.(i))
    illegal;
  Alcotest.(check bool) "not worse" true
    (stats.Refine.hpwl_after <= stats.Refine.hpwl_before +. 1e-9)

let test_preserves_legality () =
  List.iter
    (fun name ->
      let inst = instance name 0.008 in
      let d = inst.Generate.design in
      let legal = legal_flow d in
      let refined, _ = Refine.run d legal in
      Alcotest.(check bool) (name ^ " still legal") true
        (Legality.is_legal d refined))
    [ "fft_2"; "des_perf_1"; "pci_bridge32_b" ]

let test_never_worse () =
  let inst = instance "fft_1" 0.01 in
  let d = inst.Generate.design in
  let legal = legal_flow d in
  let _, stats = Refine.run d legal in
  Alcotest.(check bool) "hpwl not increased" true
    (stats.Refine.hpwl_after <= stats.Refine.hpwl_before +. 1e-9);
  Alcotest.(check bool) "improvement in [0,1)" true
    (Refine.improvement stats >= 0.0 && Refine.improvement stats < 1.0)

let test_individual_phases_legal () =
  let inst = instance "fft_2" 0.008 in
  let d = inst.Generate.design in
  let legal = legal_flow d in
  List.iter
    (fun (label, options) ->
      let refined, _ = Refine.run ~options d legal in
      Alcotest.(check bool) (label ^ " legal") true (Legality.is_legal d refined))
    [ ( "moves",
        { Refine.default_options with enable_swaps = false; enable_reorders = false } );
      ( "swaps",
        { Refine.default_options with enable_moves = false; enable_reorders = false } );
      ( "reorders",
        { Refine.default_options with enable_moves = false; enable_swaps = false } );
      ("window2", { Refine.default_options with window = 2 }) ]

let test_tall_cells_refine () =
  let options =
    { Generate.default_options with tall_cell_fraction = 0.5 }
  in
  let inst = instance ~options "fft_2" 0.008 in
  let d = inst.Generate.design in
  let legal = legal_flow d in
  let refined, stats = Refine.run d legal in
  Alcotest.(check bool) "legal with tall cells" true (Legality.is_legal d refined);
  Alcotest.(check bool) "not worse" true
    (stats.Refine.hpwl_after <= stats.Refine.hpwl_before +. 1e-9)

let test_no_nets_noop () =
  (* without nets there is nothing to improve; the placement is unchanged *)
  let chip = Chip.make ~num_rows:4 ~num_sites:20 () in
  let cells = Array.init 3 (fun id -> Cell.make ~id ~width:3 ~height:1 ()) in
  let d =
    Design.make ~name:"no-nets" ~chip ~cells
      ~global:(Placement.make ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 0.0; 1.0; 2.0 |])
      ~nets:(Netlist.empty ~num_cells:3) ()
  in
  let legal = Placement.make ~xs:[| 0.0; 5.0; 10.0 |] ~ys:[| 0.0; 1.0; 2.0 |] in
  let refined, stats = Refine.run d legal in
  Alcotest.(check bool) "unchanged" true (Placement.equal refined legal);
  Alcotest.(check int) "no moves" 0 stats.Refine.moves;
  Alcotest.(check (float 0.0)) "hpwl 0" 0.0 stats.Refine.hpwl_after

let test_pulls_connected_pair_together () =
  (* two connected cells far apart in one row with free space between:
     refinement must shrink the net *)
  let chip = Chip.make ~num_rows:2 ~num_sites:60 () in
  let cells = Array.init 2 (fun id -> Cell.make ~id ~width:3 ~height:1 ()) in
  let nets =
    Netlist.make ~num_cells:2
      [ [| { Netlist.cell = 0; dx = 1.5; dy = 0.5 };
           { Netlist.cell = 1; dx = 1.5; dy = 0.5 } |] ]
  in
  let pl () = Placement.make ~xs:[| 0.0; 50.0 |] ~ys:[| 0.0; 0.0 |] in
  let d =
    Design.make ~name:"pair" ~chip ~cells ~global:(pl ()) ~nets ()
  in
  let refined, stats = Refine.run d (pl ()) in
  Alcotest.(check bool) "legal" true (Legality.is_legal d refined);
  Alcotest.(check bool)
    (Printf.sprintf "hpwl shrank (%.1f -> %.1f)" stats.Refine.hpwl_before
       stats.Refine.hpwl_after)
    true
    (stats.Refine.hpwl_after < 10.0)

let test_deterministic () =
  let inst = instance "fft_a" 0.01 in
  let d = inst.Generate.design in
  let legal = legal_flow d in
  let r1, s1 = Refine.run d legal in
  let r2, s2 = Refine.run d legal in
  Alcotest.(check bool) "same placement" true (Placement.equal r1 r2);
  Alcotest.(check (float 0.0)) "same hpwl" s1.Refine.hpwl_after s2.Refine.hpwl_after

let qc_refine_legal_and_monotone =
  QCheck.Test.make ~count:15
    ~name:"refine: legal and never worse on random instances"
    QCheck.(pair (int_range 1 10_000) (int_range 0 19))
    (fun (seed, bench_idx) ->
      let name = List.nth Spec.names bench_idx in
      let inst =
        Generate.generate
          ~options:{ Generate.default_options with seed }
          (Spec.scaled 0.003 (Spec.find name))
      in
      let d = inst.Generate.design in
      let legal = Flow.legalize d in
      let refined, stats = Refine.run d legal in
      Legality.is_legal d refined
      && stats.Refine.hpwl_after <= stats.Refine.hpwl_before +. 1e-9)

let () =
  Alcotest.run "refine"
    [ ( "invariants",
        [ Alcotest.test_case "skips illegal input" `Quick test_skips_illegal_input;
          Alcotest.test_case "preserves legality" `Quick test_preserves_legality;
          Alcotest.test_case "never worse" `Quick test_never_worse;
          Alcotest.test_case "individual phases" `Quick test_individual_phases_legal;
          Alcotest.test_case "tall cells" `Quick test_tall_cells_refine ] );
      ( "behaviour",
        [ Alcotest.test_case "no nets no-op" `Quick test_no_nets_noop;
          Alcotest.test_case "pulls pair together" `Quick test_pulls_connected_pair_together;
          Alcotest.test_case "deterministic" `Quick test_deterministic ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qc_refine_legal_and_monotone ] ) ]
