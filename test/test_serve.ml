(* Tests for the legalization service (lib/serve).

   - QCheck: every request/response round-trips through the JSON layer,
     and re-encoding is byte-identical (floats use shortest-exact
     emission, so wire placements are bit-exact).
   - A malformed-input corpus (truncated frames, nesting bombs, unknown
     ops, ill-typed fields) must produce clean error replies and leave
     open sessions uncorrupted.
   - The Incr busy guard: overlapping applies from two threads are
     rejected with `Busy instead of corrupting the session.
   - Concurrency stress: 8 in-process clients interleave edit batches
     across 3 sessions; final placements must be bit-identical to a
     serial replay of each session's applied-batch log.
   - Coalescing semantics, admission control, session lifecycle, and a
     live-socket smoke with a mid-frame client crash. *)

open Mclh_circuit
open Mclh_core
open Mclh_serve
module Edit = Mclh_incr.Edit
module Incr = Mclh_incr.Incr

(* ---------- shared helpers ---------- *)

let test_scale = 0.01
let test_blockages = 0.15

let generated ?(bench = "fft_2") seed =
  Protocol.Generated
    { bench; scale = test_scale; seed; blockages = test_blockages; tall = 0.0 }

(* the exact design the server builds for [generated seed] *)
let local_design ?(bench = "fft_2") seed =
  let options =
    { Mclh_benchgen.Generate.default_options with
      seed;
      blockage_fraction = test_blockages;
      blockage_count = 32 }
  in
  (Mclh_benchgen.Generate.generate ~options
     (Mclh_benchgen.Spec.scaled test_scale (Mclh_benchgen.Spec.find bench)))
    .Mclh_benchgen.Generate.design

let local_session ?bench seed =
  Incr.create
    ~config:Server.default_config.Server.incr_config
    (local_design ?bench seed)

let check_bits_equal what (a : Placement.t) (b : Placement.t) =
  let n = Placement.num_cells a in
  Alcotest.(check int) (what ^ ": cell count") n (Placement.num_cells b);
  for i = 0 to n - 1 do
    let xa, ya = Placement.get a i and xb, yb = Placement.get b i in
    if
      Int64.bits_of_float xa <> Int64.bits_of_float xb
      || Int64.bits_of_float ya <> Int64.bits_of_float yb
    then
      Alcotest.failf "%s: cell %d differs: (%h,%h) vs (%h,%h)" what i xa ya xb
        yb
  done

let open_ok server name seed =
  match Server.handle_request server (Open { session = name; source = generated seed }) with
  | Protocol.Opened { legal; cells; _ } ->
    Alcotest.(check bool) (name ^ " opened legal") true legal;
    cells
  | r -> Alcotest.failf "open %s failed: %s" name (Protocol.response_to_line r)

let snapshot server name =
  match Server.handle_request server (Query { session = name; what = Q_cells }) with
  | Protocol.Cells { xs; ys; _ } -> (xs, ys)
  | r -> Alcotest.failf "query cells failed: %s" (Protocol.response_to_line r)

let applied_log server name =
  match Server.handle_request server (Query { session = name; what = Q_log }) with
  | Protocol.Log { log; _ } -> log
  | r -> Alcotest.failf "query log failed: %s" (Protocol.response_to_line r)

(* replay a session's applied-batch log serially on a fresh local
   session of the same generated design; placements must be bit-equal *)
let check_replay_matches server name seed =
  let log = applied_log server name in
  let xs, ys = snapshot server name in
  let replay = local_session seed in
  List.iter (fun (_, edits) -> ignore (Incr.apply replay edits)) log;
  check_bits_equal
    (Printf.sprintf "session %s vs serial replay (%d applies)" name
       (List.length log))
    (Placement.make ~xs ~ys) (Incr.legal replay)

(* ---------- QCheck: codec round-trips ---------- *)

let finite_float =
  QCheck.Gen.(
    frequency
      [ (6, map2 (fun m e -> Float.ldexp m e) (float_range (-1.0) 1.0) (int_range (-60) 60));
        ( 1,
          oneofl
            [ 0.0; -0.0; 1.0; -1.0; 0.1; 1.0 /. 3.0; 1e-17; 1e17; Float.pi;
              4503599627370497.0 ] ) ])

let edit_gen =
  QCheck.Gen.(
    oneof
      [ map3
          (fun cell x y -> Edit.Move { cell; x; y })
          (int_range 0 9999) finite_float finite_float;
        map2
          (fun cell width -> Edit.Resize { cell; width })
          (int_range 0 9999) (int_range 1 64);
        map
          (fun ((width, height), (x, y)) -> Edit.Insert { width; height; x; y })
          (pair (pair (int_range 1 64) (int_range 1 4)) (pair finite_float finite_float));
        map (fun cell -> Edit.Delete { cell }) (int_range 0 9999) ])

let session_gen =
  QCheck.Gen.(
    oneof
      [ map (fun n -> "s" ^ string_of_int n) small_nat;
        oneofl [ "a"; "fleet-1"; "with \"quotes\""; "back\\slash"; "sp ace" ] ])

let source_gen =
  QCheck.Gen.(
    oneof
      [ map (fun p -> Protocol.From_file { path = "designs/" ^ p ^ ".mclh" }) session_gen;
        map3
          (fun bench (scale, seed) (blockages, tall) ->
            Protocol.Generated { bench; scale; seed; blockages; tall })
          (oneofl [ "fft_2"; "des_perf_1" ])
          (pair (float_range 0.001 1.0) small_nat)
          (pair (float_range 0.0 0.4) (float_range 0.0 0.3)) ])

let request_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun session source -> Protocol.Open { session; source }) session_gen source_gen;
        map2
          (fun session edits -> Protocol.Edit_batch { session; edits })
          session_gen (list_size (0 -- 6) edit_gen);
        map2
          (fun session what -> Protocol.Query { session; what })
          session_gen
          (oneofl [ Protocol.Q_cells; Q_stats; Q_report; Q_log ]);
        map (fun session -> Protocol.Close { session }) session_gen;
        oneofl [ Protocol.Stats; Protocol.Ping; Protocol.Shutdown ] ])

let stats_gen =
  QCheck.Gen.(
    map3
      (fun a b (f, c) ->
        { Incr.edits = a;
          touched_cells = a + 1;
          dirty_components = b;
          components = b + 3;
          dirty_shards = b;
          shards = (2 * b) + 1;
          cache_hits = a;
          solve_iterations = a * b;
          max_iterations = b;
          converged = c;
          mismatch = Float.abs f;
          latency_s = Float.abs f })
      small_nat small_nat (pair finite_float bool))

let error_code_gen =
  QCheck.Gen.oneofl
    [ Protocol.Bad_request; Unknown_op; Unknown_session; Session_exists;
      Too_many_sessions; Busy; Rejected; Shutting_down; Internal ]

let response_gen =
  QCheck.Gen.(
    oneof
      [ map3
          (fun session cells (legal, init_s) ->
            Protocol.Opened { session; cells; legal; init_s })
          session_gen small_nat (pair bool finite_float);
        map3
          (fun session (seq, coalesced) stats ->
            Protocol.Edited { session; seq; coalesced; stats })
          session_gen
          (pair small_nat (int_range 1 64))
          stats_gen;
        map3
          (fun session xs ys -> Protocol.Cells { session; xs; ys })
          session_gen
          (array_size (0 -- 16) finite_float)
          (array_size (0 -- 16) finite_float);
        map3
          (fun session (cells, batches) (applies, (cache_entries, pending)) ->
            Protocol.Session_stats
              { session; cells; batches; applies; cache_entries; pending })
          session_gen (pair small_nat small_nat)
          (pair small_nat (pair small_nat small_nat));
        map2
          (fun session k ->
            Protocol.Report
              { session;
                report =
                  Mclh_report.Json.Obj
                    [ ("schema", Mclh_report.Json.String "mclh-run-report");
                      ("version", Mclh_report.Json.Int k) ] })
          session_gen small_nat;
        map2
          (fun session log -> Protocol.Log { session; log })
          session_gen
          (list_size (0 -- 4) (pair small_nat (list_size (0 -- 3) edit_gen)));
        map2
          (fun session batches -> Protocol.Closed { session; batches })
          session_gen small_nat;
        map3
          (fun (sessions, requests) ((edits, applies), (busy, coalesced))
               ((errors, uptime_s), peak_rss_kb) ->
            Protocol.Server_stats
              { sessions; requests; edits; applies; busy; coalesced; errors;
                uptime_s; peak_rss_kb })
          (pair small_nat small_nat)
          (pair (pair small_nat small_nat) (pair small_nat small_nat))
          (pair (pair small_nat finite_float) (option small_nat));
        oneofl [ Protocol.Pong; Protocol.Shutdown_ack ];
        map2
          (fun code message -> Protocol.Failed { code; message })
          error_code_gen
          (oneofl [ ""; "nope"; "cell 17 out of range"; "a \"quoted\" part" ]) ])

let qc_request_roundtrip =
  QCheck.Test.make ~count:500 ~name:"request JSON round-trip (exact)"
    (QCheck.make request_gen) (fun r ->
      let line = Protocol.request_to_line r in
      match Protocol.request_of_line line with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s on %s" m line
      | Ok r' ->
        r' = r && Protocol.request_to_line r' = line)

let qc_response_roundtrip =
  QCheck.Test.make ~count:500 ~name:"response JSON round-trip (exact)"
    (QCheck.make response_gen) (fun r ->
      let line = Protocol.response_to_line r in
      match Protocol.response_of_line line with
      | Error m -> QCheck.Test.fail_reportf "decode failed: %s on %s" m line
      | Ok r' ->
        r' = r && Protocol.response_to_line r' = line)

(* ---------- malformed-input corpus ---------- *)

let malformed_corpus =
  [ "";
    "{";
    "{\"op\"";
    "{\"op\":\"edit\",\"session\":\"a\"";  (* truncated frame *)
    "[1,2";
    "42";
    "\"just a string\"";
    "null";
    "{}";
    "{\"op\":\"frobnicate\"}";  (* unknown op *)
    "{\"op\":42}";
    "{\"op\":\"edit\"}";  (* missing fields *)
    "{\"op\":\"edit\",\"session\":7,\"edits\":[]}";
    "{\"op\":\"edit\",\"session\":\"a\",\"edits\":{}}";
    "{\"op\":\"edit\",\"session\":\"a\",\"edits\":[{\"op\":\"move\"}]}";
    "{\"op\":\"query\",\"session\":\"a\",\"what\":\"everything\"}";
    "{\"op\":\"open\",\"session\":\"\",\"bench\":\"fft_2\"}";  (* bad name *)
    "{\"op\":\"open\",\"session\":\"x\",\"bench\":\"no_such_bench\"}";
    String.concat "" (List.init 600 (fun _ -> "["))
    ^ String.concat "" (List.init 600 (fun _ -> "]"));  (* nesting bomb *)
    "{\"op\":\"edit\",\"session\":\"a\",\"edits\":[{\"op\":\"move\",\"cell\":0,\
     \"x\":1e999,\"y\":0}]}" (* overflows to inf *) ]

let test_malformed_corpus () =
  let server = Server.create () in
  ignore (open_ok server "a" 1);
  let xs0, ys0 = snapshot server "a" in
  (* every corpus line gets exactly one clean, parsable error reply *)
  List.iter
    (fun line ->
      let reply = Server.handle_line server line in
      match Protocol.response_of_line reply with
      | Ok (Protocol.Failed _) -> ()
      | Ok r ->
        Alcotest.failf "corpus line %S got non-error reply %s" line
          (Protocol.response_to_line r)
      | Error m -> Alcotest.failf "unparsable reply %S for %S: %s" reply line m)
    malformed_corpus;
  (* no session corruption: placement untouched, session still serves *)
  let xs1, ys1 = snapshot server "a" in
  check_bits_equal "placement after corpus"
    (Placement.make ~xs:xs0 ~ys:ys0)
    (Placement.make ~xs:xs1 ~ys:ys1);
  (match
     Server.handle_request server
       (Edit_batch
          { session = "a";
            edits = [ Edit.Move { cell = 0; x = xs0.(1); y = ys0.(1) } ] })
   with
  | Protocol.Edited { stats; _ } ->
    Alcotest.(check bool) "edit after corpus converged" true
      stats.Incr.converged
  | r -> Alcotest.failf "edit after corpus failed: %s" (Protocol.response_to_line r));
  check_replay_matches server "a" 1

(* ---------- Incr busy guard (regression) ---------- *)

let test_incr_busy_guard () =
  let design = local_design 5 in
  let n = Design.num_cells design in
  let session = Incr.create ~config:Config.default design in
  let xs = design.Design.global.Placement.xs
  and ys = design.Design.global.Placement.ys in
  let batches =
    List.init 12 (fun b ->
        List.init
          (max 1 (n / 10))
          (fun i ->
            let cell = (b + (7 * i)) mod n in
            Edit.Move
              { cell;
                x = xs.(cell) +. (if b land 1 = 0 then 2.0 else -2.0);
                y = ys.(cell) }))
  in
  (* The prober must run WHILE an apply is in flight. Systhreads share
     the runtime lock and pure-OCaml applies barely release it, so a
     second systhread almost never overlaps one — a second *domain* is
     OS-preempted mid-apply even on one core. The main thread flags each
     apply; the prober probes only during that window, paced by short
     sleeps (an "empty" apply is a full solve, so a free-running probe
     loop would hold the claim and starve the real work). Whichever side
     loses the claim race observes the typed `Busy — that observation is
     the regression being pinned. *)
  let applies_done = Atomic.make false in
  let in_flight = Atomic.make false in
  let main_busy = Atomic.make 0 in
  let prober_busy = Atomic.make 0 in
  let prober =
    Domain.spawn (fun () ->
        while
          (not (Atomic.get applies_done))
          && Atomic.get prober_busy = 0
          && Atomic.get main_busy = 0
        do
          if Atomic.get in_flight then begin
            match Incr.try_apply session [] with
            | Error `Busy -> Atomic.incr prober_busy
            | Ok _ -> ()
            (* a no-op apply: the probe won a race window; placement is
               unchanged (warm start re-converges to the same solution) *)
          end
          else Unix.sleepf 0.0002
        done)
  in
  List.iter
    (fun b ->
      let rec go () =
        Atomic.set in_flight true;
        match Incr.try_apply session b with
        | Ok _ -> Atomic.set in_flight false
        | Error `Busy ->
          Atomic.set in_flight false;
          Atomic.incr main_busy;
          Unix.sleepf 0.0005;
          go ()
      in
      go ())
    batches;
  Atomic.set applies_done true;
  Domain.join prober;
  let saw_busy = Atomic.get main_busy + Atomic.get prober_busy > 0 in
  Alcotest.(check bool) "observed `Busy during concurrent apply" true saw_busy;
  Alcotest.(check bool) "session free after join" false (Incr.busy session);
  (* the guard kept the session exactly on the serial trajectory *)
  let control = Incr.create ~config:Config.default (local_design 5) in
  List.iter (fun b -> ignore (Incr.apply control b)) batches;
  check_bits_equal "busy-guarded session vs serial control"
    (Incr.legal control) (Incr.legal session)

(* ---------- concurrency stress: 8 clients, 3 sessions ---------- *)

let test_concurrent_stress () =
  let server = Server.create () in
  let seeds = [ ("sa", 1); ("sb", 2); ("sc", 3) ] in
  let cells =
    List.map (fun (name, seed) -> open_ok server name seed) seeds
  in
  let snaps =
    Array.of_list
      (List.map2
         (fun (name, _) n ->
           let xs, ys = snapshot server name in
           (name, xs, ys, n))
         seeds cells)
  in
  let num_sessions = Array.length snaps in
  let num_clients = 8 and batches_each = 6 in
  let failures = Atomic.make 0 in
  let client id =
    let rng = Mclh_benchgen.Rng.create (400 + id) in
    for b = 0 to batches_each - 1 do
      let name, xs, ys, n = snaps.((id + b) mod num_sessions) in
      (* moves stay on low ids so concurrent inserts (which only grow
         the design) never invalidate a batch *)
      let moves =
        List.init 3 (fun _ ->
            let cell = Mclh_benchgen.Rng.int rng (n / 2) in
            Edit.Move
              { cell;
                x = Float.max 0.0 (xs.(cell) +. (3.0 *. Mclh_benchgen.Rng.gaussian rng));
                y = ys.(cell) })
      in
      let edits =
        if (id + b) mod 4 = 0 then
          (* a renumbering batch: exercises group-closing coalescing *)
          moves @ [ Edit.Insert { width = 3; height = 1; x = xs.(0); y = ys.(0) } ]
        else moves
      in
      (match Server.handle_request server (Edit_batch { session = name; edits }) with
      | Protocol.Edited _ -> ()
      | _ -> Atomic.incr failures);
      (* interleave queries with the edit traffic *)
      if b land 1 = 0 then
        match Server.handle_request server (Query { session = name; what = Q_stats }) with
        | Protocol.Session_stats _ -> ()
        | _ -> Atomic.incr failures
    done
  in
  let threads = List.init num_clients (fun id -> Thread.create client id) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no failed requests" 0 (Atomic.get failures);
  (* every session must equal its own serial replay, bit for bit *)
  List.iter (fun (name, seed) -> check_replay_matches server name seed) seeds;
  match Server.handle_request server Protocol.Stats with
  | Protocol.Server_stats { applies; edits; errors; busy; _ } ->
    Alcotest.(check int) "no server errors" 0 errors;
    Alcotest.(check int) "no busy rejections" 0 busy;
    Alcotest.(check bool) "coalescing can only reduce applies" true
      (applies <= edits);
    Alcotest.(check bool) "every batch accounted" true
      (edits = num_clients * batches_each)
  | r -> Alcotest.failf "stats failed: %s" (Protocol.response_to_line r)

(* ---------- coalescing semantics ---------- *)

let test_coalescing_semantics () =
  let server = Server.create () in
  ignore (open_ok server "c" 1);
  let xs, ys = snapshot server "c" in
  let mv i dx =
    Protocol.Edit_batch
      { session = "c";
        edits = [ Edit.Move { cell = i; x = xs.(i) +. dx; y = ys.(i) } ] }
  in
  let ins =
    Protocol.Edit_batch
      { session = "c";
        edits = [ Edit.Insert { width = 2; height = 1; x = xs.(0); y = ys.(0) } ] }
  in
  (* a pipelined run of move-only batches coalesces into one apply *)
  let rs = Server.handle_requests server [ mv 0 1.0; mv 1 1.0; mv 2 1.0 ] in
  let seqs =
    List.map
      (function
        | Protocol.Edited { seq; coalesced; _ } ->
          Alcotest.(check int) "group size" 3 coalesced;
          seq
        | r -> Alcotest.failf "expected Edited, got %s" (Protocol.response_to_line r))
      rs
  in
  Alcotest.(check (list int)) "one shared seq" [ 1; 1; 1 ] seqs;
  (* a renumbering batch may ride along last but closes its group *)
  let rs = Server.handle_requests server [ mv 0 (-1.0); ins; mv 1 (-1.0) ] in
  (match
     List.map
       (function
         | Protocol.Edited { seq; coalesced; _ } -> (seq, coalesced)
         | r -> Alcotest.failf "expected Edited, got %s" (Protocol.response_to_line r))
       rs
   with
  | [ (s1, c1); (s2, c2); (s3, c3) ] ->
    Alcotest.(check (list int)) "insert closes group" [ 2; 2; 1 ] [ c1; c2; c3 ];
    Alcotest.(check bool) "rider shares seq" true (s1 = s2 && s3 = s2 + 1)
  | _ -> Alcotest.fail "wrong reply count");
  (* the log records merged groups; replay is still bit-identical *)
  check_replay_matches server "c" 1;
  (* with coalescing off every batch applies alone *)
  let server2 =
    Server.create ~config:{ Server.default_config with coalesce = false } ()
  in
  ignore (open_ok server2 "c" 1);
  let rs = Server.handle_requests server2 [ mv 0 1.0; mv 1 1.0 ] in
  List.iter
    (function
      | Protocol.Edited { coalesced; _ } ->
        Alcotest.(check int) "no coalescing" 1 coalesced
      | r -> Alcotest.failf "expected Edited, got %s" (Protocol.response_to_line r))
    rs

(* ---------- admission control ---------- *)

let test_admission_control () =
  (* max_inflight = 0: every edit is refused with busy, nothing stalls,
     and non-edit requests still work *)
  let server =
    Server.create ~config:{ Server.default_config with max_inflight = 0 } ()
  in
  ignore (open_ok server "a" 1);
  (match
     Server.handle_request server
       (Edit_batch
          { session = "a"; edits = [ Edit.Move { cell = 0; x = 1.0; y = 0.0 } ] })
   with
  | Protocol.Failed { code = Protocol.Busy; _ } -> ()
  | r -> Alcotest.failf "expected busy, got %s" (Protocol.response_to_line r));
  (match Server.handle_request server Protocol.Ping with
  | Protocol.Pong -> ()
  | r -> Alcotest.failf "ping failed: %s" (Protocol.response_to_line r));
  (match Server.handle_request server Protocol.Stats with
  | Protocol.Server_stats { busy; applies; _ } ->
    Alcotest.(check int) "busy counted" 1 busy;
    Alcotest.(check int) "nothing applied" 0 applies
  | r -> Alcotest.failf "stats failed: %s" (Protocol.response_to_line r));
  (* the refused batch left the session on its initial placement *)
  check_replay_matches server "a" 1;
  (* max_inflight = 1: of a pipelined pair, the second is refused *)
  let server =
    Server.create ~config:{ Server.default_config with max_inflight = 1 } ()
  in
  ignore (open_ok server "a" 1);
  let xs, ys = snapshot server "a" in
  let mv i =
    Protocol.Edit_batch
      { session = "a";
        edits = [ Edit.Move { cell = i; x = xs.(i) +. 1.0; y = ys.(i) } ] }
  in
  (match Server.handle_requests server [ mv 0; mv 1 ] with
  | [ Protocol.Edited _; Protocol.Failed { code = Protocol.Busy; _ } ] -> ()
  | rs ->
    Alcotest.failf "expected [edited; busy], got %s"
      (String.concat " | " (List.map Protocol.response_to_line rs)))

(* ---------- session lifecycle ---------- *)

let test_session_lifecycle () =
  let server =
    Server.create ~config:{ Server.default_config with max_sessions = 2 } ()
  in
  ignore (open_ok server "a" 1);
  (match Server.handle_request server (Open { session = "a"; source = generated 2 }) with
  | Protocol.Failed { code = Protocol.Session_exists; _ } -> ()
  | r -> Alcotest.failf "expected session_exists, got %s" (Protocol.response_to_line r));
  ignore (open_ok server "b" 2);
  (match Server.handle_request server (Open { session = "c"; source = generated 3 }) with
  | Protocol.Failed { code = Protocol.Too_many_sessions; _ } -> ()
  | r -> Alcotest.failf "expected too_many_sessions, got %s" (Protocol.response_to_line r));
  (match Server.handle_request server (Close { session = "a" }) with
  | Protocol.Closed { batches; _ } -> Alcotest.(check int) "no batches" 0 batches
  | r -> Alcotest.failf "close failed: %s" (Protocol.response_to_line r));
  (match Server.handle_request server (Query { session = "a"; what = Q_cells }) with
  | Protocol.Failed { code = Protocol.Unknown_session; _ } -> ()
  | r -> Alcotest.failf "expected unknown_session, got %s" (Protocol.response_to_line r));
  Alcotest.(check int) "one session left" 1 (Server.num_sessions server);
  (* freed capacity is reusable *)
  ignore (open_ok server "c" 3);
  (* report query carries a valid run-report document *)
  match Server.handle_request server (Query { session = "c"; what = Q_report }) with
  | Protocol.Report { report; _ } -> (
    match Mclh_obs.Run_report.validate report with
    | Ok () -> ()
    | Error m -> Alcotest.failf "invalid run report: %s" m)
  | r -> Alcotest.failf "report failed: %s" (Protocol.response_to_line r)

(* ---------- live socket: protocol, resilience, shutdown ---------- *)

let test_socket_smoke () =
  let server = Server.create () in
  let path = Filename.temp_file "mclh_serve" ".sock" in
  Sys.remove path;
  let addr = Server.start server (Protocol.Unix_sock path) in
  let c = Client.connect addr in
  (match Client.request c Protocol.Ping with
  | Protocol.Pong -> ()
  | r -> Alcotest.failf "ping failed: %s" (Protocol.response_to_line r));
  (match Client.request c (Open { session = "live"; source = generated 1 }) with
  | Protocol.Opened { legal; _ } -> Alcotest.(check bool) "legal" true legal
  | r -> Alcotest.failf "open failed: %s" (Protocol.response_to_line r));
  (* malformed line on the wire: clean error, connection survives *)
  Client.send_line c "{\"op\":";
  (match Client.recv_line c with
  | Some line -> (
    match Protocol.response_of_line line with
    | Ok (Protocol.Failed { code = Protocol.Bad_request; _ }) -> ()
    | _ -> Alcotest.failf "expected bad_request, got %s" line)
  | None -> Alcotest.fail "connection dropped on malformed line");
  (* crash injection: another client dies mid-frame (no newline);
     the daemon must keep serving everyone else *)
  let domain, sockaddr = Server.sockaddr_of addr in
  let dying = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  Unix.connect dying sockaddr;
  let partial = Bytes.of_string "{\"op\":\"edit\",\"session\":\"live\"" in
  ignore (Unix.write dying partial 0 (Bytes.length partial));
  Unix.close dying;
  (match Client.request c (Query { session = "live"; what = Q_stats }) with
  | Protocol.Session_stats _ -> ()
  | r -> Alcotest.failf "daemon hurt by dying client: %s" (Protocol.response_to_line r));
  (* graceful shutdown over the wire *)
  (match Client.request c Protocol.Shutdown with
  | Protocol.Shutdown_ack -> ()
  | r -> Alcotest.failf "shutdown failed: %s" (Protocol.response_to_line r));
  Client.close c;
  Server.stop server;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        List.map QCheck_alcotest.to_alcotest
          [ qc_request_roundtrip; qc_response_roundtrip ] );
      ( "hardening",
        [ Alcotest.test_case "malformed corpus" `Quick test_malformed_corpus ] );
      ( "incr",
        [ Alcotest.test_case "busy guard" `Quick test_incr_busy_guard ] );
      ( "concurrency",
        [ Alcotest.test_case "8 clients x 3 sessions bit-identical" `Quick
            test_concurrent_stress ] );
      ( "semantics",
        [ Alcotest.test_case "coalescing" `Quick test_coalescing_semantics;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "session lifecycle" `Quick test_session_lifecycle ] );
      ( "socket",
        [ Alcotest.test_case "live daemon smoke" `Quick test_socket_smoke ] ) ]
