(* Tests for the per-shard backend chooser: every backend (chain-free
   projection, Lemke, active set, accelerated MMSIM) lands on the plain
   run-to-convergence MMSIM solution; the des_perf_1 non-convergence fix
   stays fixed; and --strict-convergence turns silent budget exhaustion
   into a non-zero exit. *)

open Mclh_core
open Mclh_linalg

let instance ?(options = Mclh_benchgen.Generate.default_options) ~scale name =
  Mclh_benchgen.Generate.generate ~options
    (Mclh_benchgen.Spec.scaled scale (Mclh_benchgen.Spec.find name))

let model_of ?options ~scale name =
  let d = (instance ?options ~scale name).Mclh_benchgen.Generate.design in
  (d, Model.build d (Row_assign.assign d))

let placement_xs model res =
  (Model.placement_of model res.Solver.x).Mclh_circuit.Placement.xs

(* run-to-convergence plain MMSIM: the semantic baseline every backend is
   judged against. eps far below the production tolerance so the
   iterate-change stop is within ~1e-10 of the true fixed point;
   direct_tol tightened to match, since a KKT residual at the default
   1e-9 certifies positions only to ~1e-9, the very bound under test. *)
let tight =
  { Config.default with
    eps = 1e-12;
    direct_tol = 1e-12;
    max_iter = 400_000;
    num_domains = 1 }

(* ---------- direct backends vs plain MMSIM, shard by shard ---------- *)

let test_direct_backends_agree () =
  let options =
    { Mclh_benchgen.Generate.default_options with
      blockage_fraction = 0.2;
      blockage_count = 24 }
  in
  let _, model = model_of ~options ~scale:0.02 "fft_2" in
  (* min_shard_vars = 1 keeps raw connected components: plenty of tiny
     sub-LCPs of every flavour (singletons, short chains) *)
  let deco = Decompose.analyze ~min_shard_vars:1 model in
  Alcotest.(check bool) "several shards" true
    (Array.length deco.Decompose.shards > 4);
  let cfg = { tight with backend = Config.Plain } in
  let chain_free_hits = ref 0 and lemke_hits = ref 0 and as_hits = ref 0 in
  Array.iter
    (fun shard ->
      let sub = Decompose.extract model shard in
      let dim = sub.Model.nvars + Model.num_constraints sub in
      if dim <= Config.default.Config.direct_max_dim then begin
        let base = Solver.solve ~config:cfg sub in
        let check name (out : Direct.outcome) =
          Alcotest.(check bool) (name ^ " acceptable") true
            (Direct.acceptable Config.default out);
          let d = Vec.dist_inf out.Direct.x base.Solver.x in
          if d > 1e-8 then
            Alcotest.failf "%s disagrees with plain MMSIM by %g (dim %d)"
              name d dim
        in
        if Direct.chain_free_applicable sub then begin
          match Direct.chain_free Config.default sub with
          | Some out ->
            incr chain_free_hits;
            check "chain_free" out
          | None -> Alcotest.fail "chain_free returned None on applicable shard"
        end;
        (match Direct.lemke Config.default sub with
        | Some out ->
          incr lemke_hits;
          check "lemke" out
        | None -> Alcotest.fail "lemke failed on a tiny SPD shard");
        match Direct.active_set Config.default sub with
        | Some out ->
          incr as_hits;
          check "active_set" out
        | None -> Alcotest.fail "active_set failed on a tiny shard"
      end)
    deco.Decompose.shards;
  (* the test is vacuous unless every backend actually ran *)
  Alcotest.(check bool) "chain-free exercised" true (!chain_free_hits > 0);
  Alcotest.(check bool) "lemke exercised" true (!lemke_hits > 0);
  Alcotest.(check bool) "active-set exercised" true (!as_hits > 0)

(* ---------- end-to-end chooser equivalence ---------- *)

let flavor_options = function
  | 0 -> Mclh_benchgen.Generate.default_options
  | 1 ->
    { Mclh_benchgen.Generate.default_options with
      blockage_fraction = 0.15;
      blockage_count = 16 }
  | _ -> { Mclh_benchgen.Generate.default_options with tall_cell_fraction = 0.3 }

let qc_chooser_matches_plain_baseline =
  (* Auto and Accel runs (tight tolerance) vs the plain run-to-convergence
     baseline: positions within 1e-9 on random designs with blockages,
     tall cells, and adversarial warm starts. The fixed point is unique,
     so backend choice and s0 may change the path but not the answer. *)
  QCheck.Test.make ~count:10 ~name:"backend chooser matches plain baseline"
    QCheck.(triple (int_range 0 10_000) (int_range 0 2) bool)
    (fun (seed, flavor, warm) ->
      let options = { (flavor_options flavor) with seed } in
      let _, model = model_of ~options ~scale:0.005 "fft_2" in
      let base =
        Solver.solve ~config:{ tight with backend = Config.Plain } model
      in
      (* a rare slow-contracting draw can exhaust even this budget; the
         baseline is then not a fixed point and proves nothing — skip *)
      QCheck.assume base.Solver.converged;
      let xs_base = placement_xs model base in
      let s0 =
        if not warm then None
        else
          Some
            (Vec.init
               (model.Model.nvars + Model.num_constraints model)
               (fun i -> (0.5 *. float_of_int (i mod 7)) -. 1.0))
      in
      let auto =
        Solver.solve ~config:{ tight with backend = Config.Auto } ?s0 model
      in
      let accel =
        Solver.solve ~config:{ tight with backend = Config.Accel } ?s0 model
      in
      auto.Solver.converged && accel.Solver.converged
      && Vec.dist_inf (placement_xs model auto) xs_base <= 1e-9
      && Vec.dist_inf (placement_xs model accel) xs_base <= 1e-9)

(* ---------- des_perf_1 regression ---------- *)

let test_des_perf_1_converges () =
  (* the PR's headline bug: plain MMSIM exhausts its 10k budget on
     des_perf_1 (the slowest-contracting benchmark) and used to report
     success anyway. Auto must converge well inside the budget — pinned
     at a third of it, the ISSUE's >= 3x iteration cut. *)
  let _, model = model_of ~scale:0.04 "des_perf_1" in
  let res = Solver.solve ~config:{ Config.default with num_domains = 1 } model in
  Alcotest.(check bool) "converged" true res.Solver.converged;
  Alcotest.(check bool)
    (Printf.sprintf "iterations_total %d within a third of the budget"
       res.Solver.iterations_total)
    true
    (res.Solver.iterations_total * 3 < Config.default.Config.max_iter)

(* ---------- CLI --strict-convergence ---------- *)

let cli =
  (* dune runtest runs from _build/default/test; dune exec from the root *)
  List.find_opt Sys.file_exists
    [ "../bin/mclh_cli.exe"; "_build/default/bin/mclh_cli.exe" ]
  |> Option.value ~default:"../bin/mclh_cli.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

let test_cli_strict_convergence () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else begin
    let starved = [ "run"; "-b"; "fft_2"; "-s"; "0.02"; "--max-iter"; "3" ] in
    (* a starved budget cannot converge: warn-only without the flag... *)
    Alcotest.(check int) "non-convergence alone still exits 0" 0
      (run_cli starved);
    (* ...and exit 3 (distinct from exit 2 = illegal placement) with it *)
    Alcotest.(check int) "strict turns it into exit 3" 3
      (run_cli (starved @ [ "--strict-convergence" ]));
    Alcotest.(check int) "strict passes on a converging run" 0
      (run_cli
         [ "run"; "-b"; "fft_2"; "-s"; "0.02"; "--strict-convergence" ])
  end

let () =
  Alcotest.run "backend"
    [ ( "direct",
        [ Alcotest.test_case "shard-level agreement" `Quick
            test_direct_backends_agree ] );
      ( "chooser",
        [ QCheck_alcotest.to_alcotest qc_chooser_matches_plain_baseline ] );
      ( "regression",
        [ Alcotest.test_case "des_perf_1 converges in budget/3" `Quick
            test_des_perf_1_converges ] );
      ( "cli",
        [ Alcotest.test_case "--strict-convergence" `Quick
            test_cli_strict_convergence ] ) ]
