(* The FFT/DCT/DST kernels, pinned against naive O(n^2) references.

   The density engine trusts these transforms blindly (the Poisson solve
   is a pointwise divide between a forward and an inverse pass), so every
   convention in Fft's mli is re-stated here as a brute-force sum and
   compared at 1e-9. *)

open Mclh_linalg

let pi = Float.pi

(* ---------- naive references (the mli contract, verbatim) ---------- *)

let naive_dft xs_re xs_im =
  let n = Array.length xs_re in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let th = -2.0 *. pi *. float_of_int (k * i) /. float_of_int n in
      re.(k) <- re.(k) +. (xs_re.(i) *. cos th) -. (xs_im.(i) *. sin th);
      im.(k) <- im.(k) +. (xs_re.(i) *. sin th) +. (xs_im.(i) *. cos th)
    done
  done;
  (re, im)

let naive_dct2 x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc :=
          !acc
          +. x.(i)
             *. cos (pi *. float_of_int (k * ((2 * i) + 1)) /. (2.0 *. float_of_int n))
      done;
      !acc)

let naive_dct3 a =
  let n = Array.length a in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc :=
          !acc
          +. a.(k)
             *. cos (pi *. float_of_int (k * ((2 * i) + 1)) /. (2.0 *. float_of_int n))
      done;
      !acc)

let naive_dst3 b =
  let n = Array.length b in
  Array.init n (fun i ->
      let acc = ref 0.0 in
      for k = 1 to n - 1 do
        acc :=
          !acc
          +. b.(k)
             *. sin (pi *. float_of_int (k * ((2 * i) + 1)) /. (2.0 *. float_of_int n))
      done;
      !acc)

let max_abs_diff a b =
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.(i)))) a;
  !m

let sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

let random_array rand n = Array.init n (fun _ -> (rand () *. 4.0) -. 2.0)

let mk_rand seed =
  let state = ref seed in
  fun () ->
    state := (!state * 1103515245) + 12345;
    float_of_int (!state land 0xFFFFFF) /. float_of_int 0xFFFFFF

(* ---------- complex FFT ---------- *)

let test_fft_matches_dft () =
  let rand = mk_rand 3 in
  List.iter
    (fun n ->
      let p = Fft.plan n in
      let re = random_array rand n and im = random_array rand n in
      let rre, rim = naive_dft re im in
      Fft.fft p ~re ~im;
      (* tolerance scales mildly with n through summation error *)
      let tol = 1e-9 *. float_of_int (max 1 n) in
      if max_abs_diff re rre > tol || max_abs_diff im rim > tol then
        Alcotest.failf "fft vs naive DFT at n = %d (err %.2e / %.2e)" n
          (max_abs_diff re rre) (max_abs_diff im rim))
    sizes

let test_ifft_inverts () =
  let rand = mk_rand 7 in
  List.iter
    (fun n ->
      let p = Fft.plan n in
      let re = random_array rand n and im = random_array rand n in
      let re0 = Array.copy re and im0 = Array.copy im in
      Fft.fft p ~re ~im;
      Fft.ifft p ~re ~im;
      if max_abs_diff re re0 > 1e-10 || max_abs_diff im im0 > 1e-10 then
        Alcotest.failf "ifft . fft <> id at n = %d" n)
    sizes

(* ---------- real transforms ---------- *)

let pin name reference transform =
  let rand = mk_rand 13 in
  List.iter
    (fun n ->
      let p = Fft.plan n in
      let src = random_array rand n in
      let expect = reference src in
      let dst = Array.make n Float.nan in
      transform p src dst;
      let tol = 1e-9 *. float_of_int (max 1 n) in
      if max_abs_diff dst expect > tol then
        Alcotest.failf "%s vs naive at n = %d (err %.2e)" name n
          (max_abs_diff dst expect))
    sizes

let test_dct2 () = pin "dct2" naive_dct2 (fun p src dst -> Fft.dct2 p ~src ~dst)
let test_dct3 () = pin "dct3" naive_dct3 (fun p src dst -> Fft.dct3 p ~src ~dst)
let test_dst3 () = pin "dst3" naive_dst3 (fun p src dst -> Fft.dst3 p ~src ~dst)

let test_idct2_inverts () =
  let rand = mk_rand 17 in
  List.iter
    (fun n ->
      let p = Fft.plan n in
      let x = random_array rand n in
      let spec = Array.make n 0.0 and back = Array.make n 0.0 in
      Fft.dct2 p ~src:x ~dst:spec;
      Fft.idct2 p ~src:spec ~dst:back;
      if max_abs_diff back x > 1e-10 *. float_of_int (max 1 n) then
        Alcotest.failf "idct2 . dct2 <> id at n = %d" n)
    sizes

let test_aliasing () =
  (* src == dst is explicitly allowed: input is staged through scratch *)
  let rand = mk_rand 23 in
  let n = 32 in
  let p = Fft.plan n in
  let x = random_array rand n in
  let expect = naive_dct2 x in
  let buf = Array.copy x in
  Fft.dct2 p ~src:buf ~dst:buf;
  Alcotest.(check bool) "aliased dct2" true (max_abs_diff buf expect < 1e-8)

(* ---------- property: random sizes and data ---------- *)

let qcheck_transforms =
  QCheck.Test.make ~count:60 ~name:"fft family matches naive references"
    QCheck.(pair (int_bound 6) (int_bound 1_000_000))
    (fun (log2n, seed) ->
      let n = 1 lsl log2n in
      let rand = mk_rand (seed + 1) in
      let p = Fft.plan n in
      let x = random_array rand n in
      let tol = 1e-9 *. float_of_int n in
      let dst = Array.make n 0.0 in
      Fft.dct2 p ~src:x ~dst;
      let ok_dct2 = max_abs_diff dst (naive_dct2 x) <= tol in
      Fft.dct3 p ~src:x ~dst;
      let ok_dct3 = max_abs_diff dst (naive_dct3 x) <= tol in
      Fft.dst3 p ~src:x ~dst;
      let ok_dst3 = max_abs_diff dst (naive_dst3 x) <= tol in
      ok_dct2 && ok_dct3 && ok_dst3)

(* ---------- validation and steady-state allocation ---------- *)

let test_plan_validation () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "plan %d rejected" n)
        true
        (try
           ignore (Fft.plan n);
           false
         with Invalid_argument _ -> true))
    [ 0; -1; 3; 6; 12; 100 ];
  Alcotest.(check int) "length" 64 (Fft.length (Fft.plan 64))

let test_steady_state_allocation_free () =
  let n = 64 in
  let p = Fft.plan n in
  let re = Array.make n 1.0 and im = Array.make n 0.0 in
  let src = Array.make n 1.0 and dst = Array.make n 0.0 in
  (* warm up: any one-time allocation happens here *)
  Fft.fft p ~re ~im;
  Fft.ifft p ~re ~im;
  Fft.dct2 p ~src ~dst;
  Fft.idct2 p ~src ~dst;
  Fft.dct3 p ~src ~dst;
  Fft.dst3 p ~src ~dst;
  let before = Gc.minor_words () in
  for _ = 1 to 50 do
    Fft.fft p ~re ~im;
    Fft.ifft p ~re ~im;
    Fft.dct2 p ~src ~dst;
    Fft.idct2 p ~src ~dst;
    Fft.dct3 p ~src ~dst;
    Fft.dst3 p ~src ~dst
  done;
  let words = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "0 minor words across 300 transforms" 0.0 words

let () =
  Alcotest.run "fft"
    [ ( "complex",
        [ Alcotest.test_case "matches naive DFT" `Quick test_fft_matches_dft;
          Alcotest.test_case "ifft inverts" `Quick test_ifft_inverts ] );
      ( "real",
        [ Alcotest.test_case "dct2" `Quick test_dct2;
          Alcotest.test_case "dct3" `Quick test_dct3;
          Alcotest.test_case "dst3" `Quick test_dst3;
          Alcotest.test_case "idct2 inverts" `Quick test_idct2_inverts;
          Alcotest.test_case "aliasing" `Quick test_aliasing;
          QCheck_alcotest.to_alcotest qcheck_transforms ] );
      ( "plan",
        [ Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "allocation-free" `Quick
            test_steady_state_allocation_free ] ) ]
