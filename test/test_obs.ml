(* The observability layer: ring-buffer traces, the JSON emitter/parser,
   the versioned run report (golden-tested byte-for-byte), and the metrics
   threading through the legalization stack — including the failure paths
   the instrumentation exists to expose (non-convergence, Tetris repair,
   the area-ordered repack fallback). *)

open Mclh_circuit
open Mclh_core
module Obs = Mclh_obs.Obs
module Trace = Mclh_obs.Trace
module Run_report = Mclh_obs.Run_report
module Json = Mclh_report.Json

(* ---------- Trace ---------- *)

let test_trace_basic () =
  let tr = Trace.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Trace.capacity tr);
  Alcotest.(check int) "empty length" 0 (Trace.length tr);
  Alcotest.(check (option (float 0.0))) "empty last" None (Trace.last tr);
  Trace.record tr 1.0;
  Trace.record tr 2.0;
  Alcotest.(check int) "length" 2 (Trace.length tr);
  Alcotest.(check (array (float 0.0))) "partial" [| 1.0; 2.0 |] (Trace.to_array tr);
  Alcotest.(check (option (float 0.0))) "last" (Some 2.0) (Trace.last tr)

let test_trace_wraps () =
  let tr = Trace.create ~capacity:3 in
  List.iter (Trace.record tr) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  Alcotest.(check int) "recorded counts all" 5 (Trace.recorded tr);
  Alcotest.(check int) "length capped" 3 (Trace.length tr);
  (* the tail survives, oldest first *)
  Alcotest.(check (array (float 0.0))) "tail" [| 3.0; 4.0; 5.0 |] (Trace.to_array tr);
  Alcotest.(check (option (float 0.0))) "last" (Some 5.0) (Trace.last tr)

let test_trace_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0))

let test_trace_record_allocation_free () =
  let tr = Trace.create ~capacity:64 in
  (* record a pre-boxed sample: boxing a fresh float in the loop would
     charge the test 2 words/call that record itself never allocates *)
  let sample = Float.of_string "1.5" in
  let run n =
    let before = Gc.minor_words () in
    for _ = 1 to n do
      Trace.record tr sample
    done;
    Gc.minor_words () -. before
  in
  ignore (run 10) (* warm up *);
  let lo = run 100 and hi = run 1100 in
  Alcotest.(check (float 0.0)) "0 words per record" 0.0 ((hi -. lo) /. 1000.0)

(* ---------- Json ---------- *)

let test_json_emit_golden () =
  let v =
    Json.Obj
      [ ("a", Json.Int 1);
        ("b", Json.List [ Json.Float 2.5; Json.Null; Json.Bool true ]);
        ("c", Json.String "x\"y\n") ]
  in
  Alcotest.(check string) "emitted"
    "{\n  \"a\": 1,\n  \"b\": [\n    2.5,\n    null,\n    true\n  ],\n  \"c\": \"x\\\"y\\n\"\n}\n"
    (Json.to_string v);
  Alcotest.(check string) "compact"
    "{\"a\":1,\"b\":[2.5,null,true],\"c\":\"x\\\"y\\n\"}"
    (Json.to_string ~indent:false v)

let test_json_nonfinite_floats () =
  let v = Json.List [ Json.Float Float.nan; Json.Float Float.infinity ] in
  let s = Json.to_string ~indent:false v in
  Alcotest.(check string) "nan and inf emit as null" "[null,null]" s;
  (* the emitted document always parses *)
  match Json.of_string s with
  | Ok (Json.List [ Json.Null; Json.Null ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error e -> Alcotest.fail e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("ints", Json.List [ Json.Int 0; Json.Int (-42); Json.Int 1000000 ]);
        ("floats", Json.List [ Json.Float 0.25; Json.Float (-1.5e-3) ]);
        ("unicode", Json.String "caf\xc3\xa9");
        ("nested", Json.Obj [ ("empty_list", Json.List []);
                              ("empty_obj", Json.Obj []) ]) ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip equal" true (v = v')
  | Error e -> Alcotest.fail e);
  match Json.of_string (Json.to_string ~indent:false v) with
  | Ok v' -> Alcotest.(check bool) "compact roundtrip" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_parse_forms () =
  let ok s expected =
    match Json.of_string s with
    | Ok v -> Alcotest.(check bool) (Printf.sprintf "parse %S" s) true (v = expected)
    | Error e -> Alcotest.fail (Printf.sprintf "%S: %s" s e)
  in
  ok "3" (Json.Int 3);
  ok "3.5" (Json.Float 3.5);
  ok "1e3" (Json.Float 1000.0);
  ok "-0.5" (Json.Float (-0.5));
  ok "\"\\u0041\\u00e9\"" (Json.String "A\xc3\xa9");
  ok "  [ ]  " (Json.List []);
  ok "{\"k\": [1, {\"n\": null}]}"
    (Json.Obj [ ("k", Json.List [ Json.Int 1; Json.Obj [ ("n", Json.Null) ] ]) ])

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "1 2";
  bad "nul";
  bad "\"unterminated"

let test_json_member () =
  let v = Json.Obj [ ("a", Json.Int 1) ] in
  Alcotest.(check bool) "present" true (Json.member "a" v = Some (Json.Int 1));
  Alcotest.(check bool) "absent" true (Json.member "b" v = None);
  Alcotest.(check bool) "non-object" true (Json.member "a" (Json.Int 1) = None)

(* ---------- Obs recorder ---------- *)

let test_obs_none_is_noop () =
  Obs.incr None "x";
  Obs.add None "x" 3;
  Obs.gauge None "x" 1.0;
  Obs.record_span None "x" 1.0;
  Alcotest.(check int) "span None runs f" 7 (Obs.span None "x" (fun () -> 7));
  Alcotest.(check bool) "no trace when off" true (Obs.new_trace None "x" ~capacity:4 = None)

let test_obs_recording () =
  let t = Obs.create () in
  let obs = Some t in
  Obs.incr obs "b/count";
  Obs.incr obs "b/count";
  Obs.add obs "a/count" 40;
  Obs.gauge obs "g" 1.0;
  Obs.gauge obs "g" 2.5;
  Obs.record_span obs "s" 0.125;
  Obs.record_span obs "s" 0.125;
  Alcotest.(check (list (pair string int))) "counters sorted"
    [ ("a/count", 40); ("b/count", 2) ]
    (Obs.counters t);
  Alcotest.(check int) "counter_value" 2 (Obs.counter_value t "b/count");
  Alcotest.(check int) "counter_value default" 0 (Obs.counter_value t "zzz");
  Alcotest.(check (list (pair string (float 0.0)))) "gauge last write wins"
    [ ("g", 2.5) ] (Obs.gauges t);
  Alcotest.(check (list (pair string (float 0.0)))) "spans accumulate"
    [ ("s", 0.25) ] (Obs.spans t);
  Alcotest.(check int) "span timer records" 5 (Obs.span obs "timed" (fun () -> 5));
  Alcotest.(check bool) "timed span present" true
    (List.mem_assoc "timed" (Obs.spans t));
  match Obs.new_trace obs "tr" ~capacity:8 with
  | None -> Alcotest.fail "trace expected when metrics on"
  | Some tr ->
    Trace.record tr 1.0;
    Alcotest.(check bool) "find_trace" true (Obs.find_trace t "tr" = Some tr)

(* ---------- Run report ---------- *)

let golden_recorder () =
  let t = Obs.create () in
  let obs = Some t in
  Obs.incr obs "alpha/count";
  Obs.incr obs "alpha/count";
  Obs.add obs "beta/count" 40;
  Obs.gauge obs "gamma" 2.5;
  Obs.record_span obs "stage/a" 0.125;
  Obs.record_span obs "stage/a" 0.125;
  (match Obs.new_trace obs "conv" ~capacity:4 with
  | Some tr -> List.iter (Trace.record tr) [ 1.0; 0.5; Float.nan ]
  | None -> assert false);
  Obs.sub obs "child" (Json.Obj [ ("k", Json.Int 1) ]);
  t

let golden_expected =
  "{\n\
  \  \"schema\": \"mclh-run-report\",\n\
  \  \"version\": 1,\n\
  \  \"meta\": {\n\
  \    \"design\": \"golden\"\n\
  \  },\n\
  \  \"counters\": {\n\
  \    \"alpha/count\": 2,\n\
  \    \"beta/count\": 40\n\
  \  },\n\
  \  \"gauges\": {\n\
  \    \"gamma\": 2.5\n\
  \  },\n\
  \  \"spans_s\": {\n\
  \    \"stage/a\": 0.25\n\
  \  },\n\
  \  \"traces\": {\n\
  \    \"conv\": {\n\
  \      \"capacity\": 4,\n\
  \      \"recorded\": 3,\n\
  \      \"values\": [\n\
  \        1.0,\n\
  \        0.5,\n\
  \        null\n\
  \      ]\n\
  \    }\n\
  \  },\n\
  \  \"sub_reports\": {\n\
  \    \"child\": {\n\
  \      \"k\": 1\n\
  \    }\n\
  \  }\n\
   }\n"

let test_report_golden () =
  let json =
    Run_report.to_json ~meta:[ ("design", Json.String "golden") ]
      (golden_recorder ())
  in
  Alcotest.(check string) "byte-identical report" golden_expected
    (Json.to_string json);
  (* two identical recordings serialize identically *)
  let json2 =
    Run_report.to_json ~meta:[ ("design", Json.String "golden") ]
      (golden_recorder ())
  in
  Alcotest.(check string) "deterministic" (Json.to_string json)
    (Json.to_string json2)

let test_report_roundtrip_and_validate () =
  let json = Run_report.to_json (golden_recorder ()) in
  (match Run_report.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Json.of_string (Json.to_string json) with
  | Ok parsed -> (
    match Run_report.validate parsed with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("parsed report rejected: " ^ e))
  | Error e -> Alcotest.fail ("emitted report does not parse: " ^ e));
  (match Run_report.validate (Json.Obj [ ("schema", Json.String "other") ]) with
  | Ok () -> Alcotest.fail "wrong schema accepted"
  | Error _ -> ());
  match Run_report.validate (Json.Int 3) with
  | Ok () -> Alcotest.fail "non-object accepted"
  | Error _ -> ()

(* ---------- threading through the legalization stack ---------- *)

let cell ?rail ?name ~id ~w ~h () =
  Cell.make ~id ?name ~width:w ~height:h ?bottom_rail:rail ()

let design ?blockages ?name:(dname = "obs") ~chip ~cells ~xs ~ys () =
  Design.make ?blockages ~name:dname ~chip ~cells
    ~global:(Placement.make ~xs ~ys)
    ~nets:(Netlist.empty ~num_cells:(Array.length cells))
    ()

let mixed_design () =
  (* a handful of overlapping mixed-height cells: enough work for every
     stage to record something *)
  let chip = Chip.make ~num_rows:4 ~num_sites:24 () in
  let cells =
    [| cell ~id:0 ~w:4 ~h:1 (); cell ~id:1 ~w:4 ~h:1 ();
       cell ~rail:Rail.Vss ~id:2 ~w:3 ~h:2 (); cell ~id:3 ~w:5 ~h:1 ();
       cell ~rail:Rail.Vss ~id:4 ~w:3 ~h:2 (); cell ~id:5 ~w:4 ~h:1 () |]
  in
  let xs = [| 1.2; 3.8; 6.1; 6.4; 8.9; 12.2 |] in
  let ys = [| 0.4; 0.6; 0.2; 1.5; 1.7; 2.4 |] in
  design ~chip ~cells ~xs ~ys ()

let test_flow_records_metrics () =
  let d = mixed_design () in
  let t = Obs.create () in
  (* Plain backend: the per-iteration trace assertions below only hold
     when the shard actually runs MMSIM (a direct-backend solve records
     no convergence trace) *)
  let config =
    { Config.default with
      decompose = false;
      num_domains = 1;
      backend = Config.Plain }
  in
  let result = Flow.run ~config ~obs:t d in
  Alcotest.(check bool) "legal" true (Legality.is_legal d result.Flow.legal);
  Alcotest.(check int) "solver/iterations counter"
    result.Flow.solver.Solver.iterations
    (Obs.counter_value t "solver/iterations");
  List.iter
    (fun span ->
      Alcotest.(check bool) (span ^ " recorded") true
        (List.mem_assoc span (Obs.spans t)))
    [ "flow/assign"; "flow/model"; "flow/solve"; "flow/alloc"; "flow/total" ];
  match Obs.find_trace t "solver/delta_inf" with
  | None -> Alcotest.fail "monolithic convergence trace missing"
  | Some tr ->
    Alcotest.(check int) "trace records every iteration"
      result.Flow.solver.Solver.iterations (Trace.recorded tr);
    (* the final sample is the final residual *)
    Alcotest.(check (option (float 1e-12)))
      "last sample is delta_inf"
      (Some result.Flow.solver.Solver.delta_inf)
      (Trace.last tr)

let test_metrics_do_not_change_results () =
  let d = mixed_design () in
  let config = { Config.default with num_domains = 1 } in
  let plain = Flow.run ~config d in
  let observed = Flow.run ~config ~obs:(Obs.create ()) d in
  Alcotest.(check (array (float 0.0))) "xs identical"
    plain.Flow.legal.Placement.xs observed.Flow.legal.Placement.xs;
  Alcotest.(check (array (float 0.0))) "ys identical"
    plain.Flow.legal.Placement.ys observed.Flow.legal.Placement.ys;
  Alcotest.(check int) "iterations identical"
    plain.Flow.solver.Solver.iterations observed.Flow.solver.Solver.iterations

let test_tiny_max_iter_repair_path () =
  (* starve MMSIM so the flow warning path and the Tetris repair run end to
     end: tiny iteration budget, tolerance far below reachable *)
  let d = mixed_design () in
  let t = Obs.create () in
  let config =
    (* Plain backend: starving the iteration only starves the solver when
       the chooser cannot hand the shard to an exact direct backend *)
    { Config.default with
      max_iter = 2;
      eps = 1e-12;
      warm_start = false;
      num_domains = 1;
      backend = Config.Plain }
  in
  let result = Flow.run ~config ~obs:t d in
  Alcotest.(check bool) "solver hit max_iter" false
    result.Flow.solver.Solver.converged;
  Alcotest.(check int) "flow/nonconverged" 1
    (Obs.counter_value t "flow/nonconverged");
  Alcotest.(check int) "solver/nonconverged" 1
    (Obs.counter_value t "solver/nonconverged");
  Alcotest.(check bool) "tetris repaired to a legal placement" true
    (Legality.is_legal d result.Flow.legal)

let test_repack_fallback () =
  (* near-capacity: singles grab their spots first and fragment the free
     space (columns {0, 3} on both rows), so the double-height cell has no
     2-wide dual-row span and the area-ordered repack must take over *)
  let chip = Chip.make ~num_rows:2 ~num_sites:4 () in
  let cells =
    [| cell ~rail:Rail.Vss ~id:0 ~w:2 ~h:2 ();
       cell ~id:1 ~w:2 ~h:1 (); cell ~id:2 ~w:2 ~h:1 () |]
  in
  let xs = [| 2.0; 1.0; 1.0 |] and ys = [| 0.0; 0.0; 1.0 |] in
  let d = design ~chip ~cells ~xs ~ys () in
  let t = Obs.create () in
  let result = Tetris_alloc.run ~obs:t d d.Design.global in
  Alcotest.(check bool) "repack fallback taken" true
    result.Tetris_alloc.repack_fallback;
  Alcotest.(check int) "tetris/repack_fallback" 1
    (Obs.counter_value t "tetris/repack_fallback");
  Alcotest.(check bool) "legal after repack" true
    (Legality.is_legal d result.Tetris_alloc.placement);
  (* tallest-first: the double-height cell keeps its snapped position *)
  Alcotest.(check (float 0.0)) "double at x=2" 2.0
    result.Tetris_alloc.placement.Placement.xs.(0)

let test_clamp_x0 () =
  let c = cell ~id:0 ~w:4 ~h:1 () in
  Alcotest.(check int) "right overflow" 6 (Tetris_alloc.clamp_x0 ~num_sites:10 c 20);
  Alcotest.(check int) "left overflow" 0 (Tetris_alloc.clamp_x0 ~num_sites:10 c (-3));
  Alcotest.(check int) "interior" 5 (Tetris_alloc.clamp_x0 ~num_sites:10 c 5);
  let wide = cell ~id:1 ~w:12 ~h:1 () in
  (* wider than the chip: floors at 0 instead of going negative *)
  Alcotest.(check int) "wider than chip" 0 (Tetris_alloc.clamp_x0 ~num_sites:10 wide 3)

let test_fenced_runner_report () =
  let inst =
    Mclh_benchgen.Generate.generate
      ~options:{ Mclh_benchgen.Generate.default_options with fence_count = 2 }
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let d = inst.Mclh_benchgen.Generate.design in
  let config = { Config.default with metrics = true; num_domains = 1 } in
  let r = Runner.run ~config Runner.Mmsim d in
  Alcotest.(check bool) "legal" true r.Runner.legal;
  match (r.Runner.fence, r.Runner.obs) with
  | None, _ -> Alcotest.fail "fenced run must carry territory stats"
  | _, None -> Alcotest.fail "metrics run must carry a recorder"
  | Some stats, Some t ->
    Alcotest.(check bool) "several territories" true (stats.Fence.territories >= 2);
    Alcotest.(check int) "one stats entry per territory" stats.Fence.territories
      (List.length stats.Fence.per_territory);
    (* the aggregates the CLI prints *)
    Alcotest.(check int) "max iterations"
      (List.fold_left
         (fun acc (ts : Fence.territory_stats) -> max acc ts.Fence.iterations)
         0 stats.Fence.per_territory)
      (Fence.max_iterations stats);
    Alcotest.(check bool) "aggregate converged" true (Fence.all_converged stats);
    Alcotest.(check bool) "mismatch bounded" true
      (Fence.max_mismatch stats >= 0.0 && Fence.max_delta_inf stats >= 0.0);
    Alcotest.(check int) "illegal total"
      (List.fold_left
         (fun acc (ts : Fence.territory_stats) -> acc + ts.Fence.illegal_before)
         0 stats.Fence.per_territory)
      (Fence.total_illegal stats);
    Alcotest.(check int) "territory counter" stats.Fence.territories
      (Obs.counter_value t "fence/territories");
    (* one sub-report per territory, each a valid run report *)
    let subs = Obs.subs t in
    Alcotest.(check int) "territory sub-reports" stats.Fence.territories
      (List.length subs);
    List.iter
      (fun (name, json) ->
        Alcotest.(check bool) "territory/ prefix" true
          (String.length name > 10 && String.sub name 0 10 = "territory/");
        match Run_report.validate json with
        | Ok () -> ()
        | Error e -> Alcotest.fail (name ^ ": " ^ e))
      subs

(* ---------- CLI --metrics-out ---------- *)

let cli =
  List.find_opt Sys.file_exists
    [ "../bin/mclh_cli.exe"; "_build/default/bin/mclh_cli.exe" ]
  |> Option.value ~default:"../bin/mclh_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cli_metrics_out () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else begin
    let out = Filename.temp_file "mclh_metrics" ".json" in
    let cmd =
      Filename.quote_command cli
        [ "run"; "-b"; "fft_2"; "-s"; "0.005"; "--metrics-out"; out ]
    in
    Alcotest.(check int) "cli exit" 0 (Sys.command (cmd ^ " > /dev/null 2>&1"));
    (match Json.of_string (read_file out) with
    | Error e -> Alcotest.fail ("report does not parse: " ^ e)
    | Ok json -> (
      (match Run_report.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      match (Json.member "meta" json, Json.member "spans_s" json) with
      | Some meta, Some (Json.Obj spans) ->
        Alcotest.(check bool) "meta names the design" true
          (Json.member "design" meta = Some (Json.String "fft_2"));
        Alcotest.(check bool) "stage spans present" true
          (List.mem_assoc "flow/total" spans)
      | _ -> Alcotest.fail "meta/spans_s missing"));
    Sys.remove out
  end

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "wraps" `Quick test_trace_wraps;
          Alcotest.test_case "bad capacity" `Quick test_trace_bad_capacity;
          Alcotest.test_case "allocation-free record" `Quick
            test_trace_record_allocation_free ] );
      ( "json",
        [ Alcotest.test_case "emit golden" `Quick test_json_emit_golden;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse forms" `Quick test_json_parse_forms;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member ] );
      ( "obs",
        [ Alcotest.test_case "none is noop" `Quick test_obs_none_is_noop;
          Alcotest.test_case "recording" `Quick test_obs_recording ] );
      ( "report",
        [ Alcotest.test_case "golden" `Quick test_report_golden;
          Alcotest.test_case "roundtrip+validate" `Quick
            test_report_roundtrip_and_validate ] );
      ( "stack",
        [ Alcotest.test_case "flow records metrics" `Quick
            test_flow_records_metrics;
          Alcotest.test_case "metrics do not change results" `Quick
            test_metrics_do_not_change_results;
          Alcotest.test_case "tiny max_iter repair path" `Quick
            test_tiny_max_iter_repair_path;
          Alcotest.test_case "repack fallback" `Quick test_repack_fallback;
          Alcotest.test_case "clamp_x0" `Quick test_clamp_x0;
          Alcotest.test_case "fenced runner report" `Quick
            test_fenced_runner_report ] );
      ( "cli",
        [ Alcotest.test_case "--metrics-out" `Quick test_cli_metrics_out ] ) ]
