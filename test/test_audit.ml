(* Tests for the exact small-window auditor and the graceful-failure
   paths it backs: exact-vs-brute-force agreement, typed infeasibility,
   witness feasibility on legalized placements, Sec 5.3 parity (sorted
   single-height targets certify at zero gap), and the scenario pack
   driving every legalizer into its repair path without a crash. *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core
module Exact = Mclh_audit.Exact
module Window = Mclh_audit.Window
module Audit = Mclh_audit.Audit

(* ---------- exact vs brute force on tiny windows ---------- *)

(* every integer placement of every cell, checked pairwise: the ground
   truth the branch-and-bound must match *)
let brute_force ~row_height ~free (cells : Exact.cell array) =
  let n = Array.length cells in
  let candidates i =
    let c = cells.(i) in
    Array.to_list c.Exact.rows
    |> List.concat_map (fun r ->
           let segs =
             (* a multi-row cell needs the intersection over its rows *)
             List.init c.Exact.height (fun dr -> free (r + dr))
             |> List.fold_left
                  (fun acc segs ->
                    List.concat_map
                      (fun (a0, a1) ->
                        List.filter_map
                          (fun (b0, b1) ->
                            let lo = max a0 b0 and hi = min a1 b1 in
                            if hi > lo then Some (lo, hi) else None)
                          segs)
                      acc)
                  [ (min_int / 2, max_int / 2) ]
           in
           List.concat_map
             (fun (lo, hi) ->
               List.init
                 (max 0 (hi - lo - c.Exact.width + 1))
                 (fun k -> (r, lo + k)))
             segs)
  in
  let best = ref None in
  let rec go i placed acc =
    match !best with
    | Some b when acc >= b -> ()
    | _ ->
      if i = n then best := Some acc
      else
        List.iter
          (fun (r, x) ->
            let c = cells.(i) in
            let ok =
              List.for_all
                (fun (j, rj, xj) ->
                  let cj = cells.(j) in
                  not
                    (r < rj + cj.Exact.height
                    && rj < r + c.Exact.height
                    && x < xj + cj.Exact.width
                    && xj < x + c.Exact.width))
                placed
            in
            if ok then begin
              let dx = float_of_int x -. c.Exact.target_x in
              let dy =
                row_height *. (float_of_int r -. c.Exact.target_y)
              in
              go (i + 1) ((i, r, x) :: placed) (acc +. (dx *. dx) +. (dy *. dy))
            end)
          (candidates i)
  in
  go 0 [] 0.0;
  !best

let check_matches_brute ~row_height ~free cells =
  let brute = brute_force ~row_height ~free cells in
  match (Exact.solve ~row_height ~free cells, brute) with
  | Exact.Infeasible, None -> true
  | Exact.Optimal s, Some b -> Float.abs (s.Exact.cost -. b) <= 1e-6
  | Exact.Optimal _, None -> false
  | Exact.Infeasible, Some _ -> false
  | (Exact.Feasible _ | Exact.Budget_exceeded _), _ -> false

let qc_exact_matches_brute =
  QCheck.Test.make ~count:200 ~name:"exact == brute force on tiny windows"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let state = ref (max 1 seed) in
      let next range =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod range
      in
      let num_rows = 1 + next 2 in
      let sites = 8 + next 6 in
      (* occasionally notch a hole out of a row's free span *)
      let notch = Array.init num_rows (fun _ -> next 3 = 0) in
      let free r =
        if notch.(r) then [ (0, sites / 2); ((sites / 2) + 1, sites) ]
        else [ (0, sites) ]
      in
      let n = 1 + next 3 in
      let cells =
        Array.init n (fun id ->
            let height =
              if num_rows >= 2 && next 4 = 0 then 2 else 1
            in
            let rows =
              Array.init (num_rows - height + 1) (fun r -> r)
            in
            { Exact.id;
              width = 1 + next 3;
              height;
              rows;
              target_x = float_of_int (next sites);
              target_y = float_of_int (next num_rows) })
      in
      check_matches_brute ~row_height:2.0 ~free cells)

(* ---------- pinned outcomes ---------- *)

let test_pinned_infeasible () =
  (* two width-6 cells in a 10-site row: provably no arrangement *)
  let cells =
    Array.init 2 (fun id ->
        { Exact.id; width = 6; height = 1; rows = [| 0 |];
          target_x = 0.0; target_y = 0.0 })
  in
  (match Exact.solve ~free:(fun _ -> [ (0, 10) ]) cells with
  | Exact.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible");
  (* empty free list: also infeasible, never an exception *)
  (match Exact.solve ~free:(fun _ -> []) cells with
  | Exact.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible on empty free list")

let test_budget_exhaustion_typed () =
  (* a contested window under a starvation budget must return a typed
     outcome, not raise *)
  let cells =
    Array.init 8 (fun id ->
        { Exact.id; width = 3; height = 1; rows = [| 0; 1 |];
          target_x = 10.0; target_y = 0.5 })
  in
  match Exact.solve ~max_nodes:1 ~free:(fun _ -> [ (0, 24) ]) cells with
  | Exact.Feasible _ | Exact.Budget_exceeded _ -> ()
  | Exact.Optimal _ -> Alcotest.fail "cannot prove optimality in 1 node"
  | Exact.Infeasible -> Alcotest.fail "the window is feasible"

let test_single_cell_snaps_to_target () =
  let cells =
    [| { Exact.id = 7; width = 2; height = 1; rows = [| 0 |];
         target_x = 5.3; target_y = 0.0 } |]
  in
  match Exact.solve ~free:(fun _ -> [ (0, 20) ]) cells with
  | Exact.Optimal s ->
    Alcotest.(check int) "x snaps to nearest site" 5 s.Exact.xs.(0);
    Alcotest.(check int) "row 0" 0 s.Exact.rows.(0)
  | _ -> Alcotest.fail "expected Optimal"

(* ---------- auditing legalized placements ---------- *)

let instance ?(options = Generate.default_options) name scale =
  Generate.generate ~options (Spec.scaled scale (Spec.find name))

let test_witness_windows_feasible () =
  (* windows of a *legal* placement can never be infeasible, and the exact
     optimum can never exceed the placed cost *)
  List.iter
    (fun name ->
      let inst = instance name 0.008 in
      let d = inst.Generate.design in
      let legal = Flow.legalize d in
      let s = Audit.run ~count:12 d legal in
      Alcotest.(check int) (name ^ ": no infeasible window") 0
        s.Audit.infeasible;
      Alcotest.(check bool) (name ^ ": sampled some windows") true
        (s.Audit.sampled > 0);
      List.iter
        (fun (w : Audit.window_report) ->
          match w.Audit.status with
          | Audit.Certified | Audit.Unproven _ | Audit.Budget_out -> ()
          | Audit.Window_infeasible ->
            Alcotest.fail (name ^ ": infeasible window on legal placement")
          | Audit.Gap g ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: gap %.6f >= 0" name g)
              true (g >= -1e-6))
        s.Audit.reports)
    [ "fft_2"; "pci_bridge32_b" ]

let test_sorted_single_height_certifies () =
  (* Sec 5.3 parity. With single-height cells in one row and *sorted*
     targets, the order-preserving optimum MMSIM computes is the global
     optimum (exchange argument), so every window must certify at zero
     gap. *)
  let chip = Chip.make ~num_rows:1 ~num_sites:60 () in
  let n = 10 in
  let state = ref 42 in
  let next range =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod range
  in
  let widths = Array.init n (fun _ -> 2 + next 3) in
  let cells =
    Array.init n (fun id -> Cell.make ~id ~width:widths.(id) ~height:1 ())
  in
  (* sorted, overlapping targets crowding the middle of the row *)
  let xs =
    Array.init n (fun i -> 18.0 +. (2.1 *. float_of_int i))
  in
  let d =
    Design.make ~name:"sorted-row" ~chip ~cells
      ~global:(Placement.make ~xs ~ys:(Array.make n 0.0))
      ~nets:(Netlist.empty ~num_cells:n) ()
  in
  let legal = Flow.legalize d in
  Alcotest.(check bool) "legal" true (Legality.is_legal d legal);
  let s = Audit.run ~count:8 ~max_cells:n d legal in
  Alcotest.(check bool) "sampled" true (s.Audit.sampled > 0);
  Alcotest.(check int) "all certified" s.Audit.sampled s.Audit.certified;
  Alcotest.(check (float 1e-6)) "zero max gap" 0.0 s.Audit.max_gap

(* ---------- scenario pack: typed failure everywhere ---------- *)

let test_legalizers_return_typed_errors () =
  let inst = Scenario.generate ~scale:0.5 Scenario.Oversub in
  let d = inst.Generate.design in
  let check_result name = function
    | Ok _ -> Alcotest.failf "%s: an over-subscribed chip cannot be legal" name
    | Error u ->
      Alcotest.(check bool) (name ^ ": names the victims") true
        (u.Unplaced.cells <> []);
      Alcotest.(check int)
        (name ^ ": partial placement covers every cell")
        (Design.num_cells d)
        (Array.length u.Unplaced.partial.Placement.xs)
  in
  check_result "tetris" (Tetris_legal.legalize d);
  check_result "greedy" (Greedy_cpy.legalize ~options:Greedy_cpy.default d);
  check_result "greedy-imp" (Greedy_cpy.legalize ~options:Greedy_cpy.improved d);
  (* abacus emits a fractional placement that the snap stage repairs, so
     over-capacity surfaces at the Runner level: either a typed error from
     abacus itself or unplaced cells after the snap *)
  (match Abacus_mr.legalize d with
  | Error u ->
    Alcotest.(check bool) "abacus: names the victims" true
      (u.Unplaced.cells <> [])
  | Ok _ ->
    let r = Runner.run Runner.Abacus_multirow d in
    Alcotest.(check bool) "abacus runner reports unplaced" true
      (r.Runner.unplaced <> []);
    Alcotest.(check bool) "abacus partial => illegal" true
      (not r.Runner.legal));
  (* the MMSIM flow parks the victims and reports them, never raises *)
  let r = Flow.run d in
  Alcotest.(check bool) "flow reports unplaced" true
    (r.Flow.alloc.Tetris_alloc.unplaced <> [])

let test_fence_oversub_detected () =
  let inst = Scenario.generate ~scale:0.5 Scenario.Fence_oversub in
  let d = inst.Generate.design in
  Alcotest.(check bool) "has a region" true (Array.length d.Design.regions > 0);
  let pl, stats = Fence.legalize d in
  Alcotest.(check int) "placement covers every cell" (Design.num_cells d)
    (Array.length pl.Placement.xs);
  Alcotest.(check bool) "over-subscription detected" true
    (Fence.over_subscribed_territories stats <> []);
  Alcotest.(check bool) "members evicted" true (Fence.total_evicted stats > 0)

let test_all_scenarios_all_algorithms_no_crash () =
  List.iter
    (fun kind ->
      let inst = Scenario.generate ~scale:0.25 kind in
      let d = inst.Generate.design in
      List.iter
        (fun alg ->
          let r = Runner.run alg d in
          (* a partial placement must be flagged illegal, and the report
             must always carry positions for every cell *)
          if r.Runner.unplaced <> [] then
            Alcotest.(check bool)
              (Scenario.name kind ^ "/" ^ Runner.name alg ^ ": partial => illegal")
              true (not r.Runner.legal);
          Alcotest.(check int)
            (Scenario.name kind ^ "/" ^ Runner.name alg ^ ": full placement")
            (Design.num_cells d)
            (Array.length r.Runner.placement.Placement.xs))
        Runner.all)
    Scenario.all

let test_scenario_names_roundtrip () =
  List.iter
    (fun k ->
      match Scenario.of_name (Scenario.name k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "scenario name %s does not round-trip"
               (Scenario.name k))
    Scenario.all;
  Alcotest.(check bool) "unknown name rejected" true
    (Scenario.of_name "no-such-scenario" = None)

(* ---------- CLI smoke: exit codes, not crashes ---------- *)

let cli =
  List.find_opt Sys.file_exists
    [ "../bin/mclh_cli.exe"; "_build/default/bin/mclh_cli.exe" ]
  |> Option.value ~default:"../bin/mclh_cli.exe"

let run_cli args =
  let cmd = Filename.quote_command cli args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

let test_cli_exit_codes () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else begin
    Alcotest.(check int) "oversub scenario exits 2 (typed, not a crash)" 2
      (run_cli [ "run"; "--scenario"; "oversub"; "-s"; "1"; "-a"; "tetris" ]);
    Alcotest.(check int) "fence-oversub exits 2 under mmsim" 2
      (run_cli [ "run"; "--scenario"; "fence-oversub"; "-s"; "0.25" ]);
    Alcotest.(check int) "audit runs clean on a feasible design" 0
      (run_cli [ "audit"; "-b"; "fft_2"; "-s"; "0.008"; "--windows"; "4" ]);
    Alcotest.(check int) "unknown scenario exits 1" 1
      (run_cli [ "run"; "--scenario"; "bogus" ])
  end

let () =
  Alcotest.run "audit"
    [ ( "exact",
        [ QCheck_alcotest.to_alcotest qc_exact_matches_brute;
          Alcotest.test_case "pinned infeasible" `Quick test_pinned_infeasible;
          Alcotest.test_case "budget exhaustion typed" `Quick
            test_budget_exhaustion_typed;
          Alcotest.test_case "single cell snaps" `Quick
            test_single_cell_snaps_to_target ] );
      ( "audit",
        [ Alcotest.test_case "witness windows feasible" `Quick
            test_witness_windows_feasible;
          Alcotest.test_case "sorted single-height certifies" `Quick
            test_sorted_single_height_certifies ] );
      ( "scenarios",
        [ Alcotest.test_case "typed legalizer errors" `Quick
            test_legalizers_return_typed_errors;
          Alcotest.test_case "fence over-subscription" `Quick
            test_fence_oversub_detected;
          Alcotest.test_case "no scenario crashes any algorithm" `Slow
            test_all_scenarios_all_algorithms_no_crash;
          Alcotest.test_case "names round-trip" `Quick
            test_scenario_names_roundtrip ] );
      ( "cli",
        [ Alcotest.test_case "exit codes" `Quick test_cli_exit_codes ] ) ]
