(* Tests for the incremental ECO re-legalization engine: edit-file
   round-trips, per-cell row re-assignment, end-state equivalence with a
   cold full run at tight tolerance, cache behaviour (empty batch, A/B/A
   revert, insert/delete round-trip), dirty-set locality, observability
   counters, and the Solver ?s0 warm-restart path. *)

open Mclh_core
open Mclh_circuit
module Edit = Mclh_incr.Edit
module Incr = Mclh_incr.Incr

let instance ?(options = Mclh_benchgen.Generate.default_options) ~scale name =
  Mclh_benchgen.Generate.generate ~options
    (Mclh_benchgen.Spec.scaled scale (Mclh_benchgen.Spec.find name))

(* blockage cuts keep components small, the regime the engine targets *)
let eco_options =
  { Mclh_benchgen.Generate.default_options with
    blockage_fraction = 0.15;
    blockage_count = 24 }

let eco_design ~scale =
  (instance ~options:eco_options ~scale "fft_2").Mclh_benchgen.Generate.design

(* tight tolerance so incremental-vs-cold agreement is meaningful *)
let tight = { Config.default with eps = 1e-10 }

let max_position_diff (a : Placement.t) (b : Placement.t) =
  let n = Placement.num_cells a in
  Alcotest.(check int) "same cell count" n (Placement.num_cells b);
  let worst = ref 0.0 in
  for i = 0 to n - 1 do
    let xa, ya = Placement.get a i and xb, yb = Placement.get b i in
    worst := Float.max !worst (Float.abs (xa -. xb));
    worst := Float.max !worst (Float.abs (ya -. yb))
  done;
  !worst

(* ---------- edit file format ---------- *)

let test_edit_roundtrip () =
  let batches =
    [ [ Edit.Move { cell = 3; x = 10.5; y = 2.0 };
        Edit.Resize { cell = 1; width = 7 };
        Edit.Insert { width = 4; height = 2; x = 20.0; y = 1.5 } ];
      [ Edit.Delete { cell = 0 } ] ]
  in
  let path = Filename.temp_file "mclh_edits" ".mclh" in
  Edit.write_file ~path batches;
  let back = Edit.read_file ~path in
  Sys.remove path;
  Alcotest.(check bool) "round-trip" true (batches = back)

let test_edit_parse_errors () =
  let fails text =
    match Edit.parse_batches text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error msg -> Alcotest.(check bool) "message nonempty" true (msg <> "")
  in
  fails "move 1 2 3\n";
  (* no header *)
  fails "mclh-edits 1\nmove 1 two 3\n";
  fails "mclh-edits 1\nteleport 1 2 3\n";
  fails "mclh-edits 1\nmove 1 2\n";
  (match Edit.parse_batches "mclh-edits 1\n# comment\n\nmove 1 2 3\nbatch\n" with
  | Ok [ [ Edit.Move _ ] ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error msg -> Alcotest.fail msg)

(* ---------- per-cell row assignment ---------- *)

let test_assign_cell_matches_assign () =
  let d = eco_design ~scale:0.01 in
  let full = Row_assign.assign d in
  for i = 0 to Design.num_cells d - 1 do
    Alcotest.(check int)
      (Printf.sprintf "cell %d row" i)
      full.Row_assign.rows.(i) (Row_assign.assign_cell d i)
  done;
  Alcotest.(check (float 1e-9)) "y_displacement"
    full.Row_assign.y_displacement
    (Row_assign.y_displacement d full.Row_assign.rows)

(* ---------- session behaviour ---------- *)

let test_empty_batch_all_hits () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  let before = Incr.legal t in
  let st = Incr.apply t [] in
  Alcotest.(check int) "no dirty shards" 0 st.Incr.dirty_shards;
  Alcotest.(check int) "all hits" st.Incr.shards st.Incr.cache_hits;
  Alcotest.(check int) "no touched cells" 0 st.Incr.touched_cells;
  Alcotest.(check (float 0.0)) "placement unchanged" 0.0
    (max_position_diff before (Incr.legal t))

let mixed_batch (d : Design.t) seed =
  let rng = Mclh_benchgen.Rng.create seed in
  let n = Design.num_cells d in
  let chip = d.Design.chip in
  let move _ =
    let c = Mclh_benchgen.Rng.int rng n in
    let x = Mclh_benchgen.Rng.float rng (float_of_int chip.Chip.num_sites) in
    let y = Mclh_benchgen.Rng.float rng (float_of_int chip.Chip.num_rows) in
    Edit.Move { cell = c; x; y }
  in
  List.init 5 move
  @ [ Edit.Resize
        { cell = Mclh_benchgen.Rng.int rng n;
          width = 1 + Mclh_benchgen.Rng.int rng 8 };
      Edit.Insert
        { width = 3;
          height = 1;
          x = Mclh_benchgen.Rng.float rng (float_of_int chip.Chip.num_sites);
          y = Mclh_benchgen.Rng.float rng (float_of_int chip.Chip.num_rows) };
      Edit.Delete { cell = Mclh_benchgen.Rng.int rng n } ]

let test_equivalence_with_cold_run () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  for batch = 1 to 3 do
    let st = Incr.apply t (mixed_batch (Incr.design t) (100 + batch)) in
    Alcotest.(check bool) "converged" true st.Incr.converged;
    let d' = Incr.design t in
    let cold = Flow.run ~config:tight d' in
    let diff = max_position_diff (Incr.legal t) cold.Flow.legal in
    if diff > 1e-9 then
      Alcotest.failf "batch %d: incremental differs from cold run by %g"
        batch diff;
    Alcotest.(check bool)
      (Printf.sprintf "batch %d legal" batch)
      true
      (Legality.is_legal d' (Incr.legal t))
  done

let test_dirty_set_is_local () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  let d = Incr.design t in
  let x0, y0 = Placement.get d.Design.global 0 in
  let st = Incr.apply t [ Edit.Move { cell = 0; x = x0 +. 3.0; y = y0 } ] in
  Alcotest.(check bool) "many shards" true (st.Incr.shards > 8);
  Alcotest.(check bool) "at least one dirty" true (st.Incr.dirty_shards >= 1);
  Alcotest.(check bool) "dirty set is a small fraction" true
    (st.Incr.dirty_shards * 4 <= st.Incr.shards);
  Alcotest.(check int) "hits + dirty = shards" st.Incr.shards
    (st.Incr.cache_hits + st.Incr.dirty_shards);
  Alcotest.(check bool) "dirty components counted" true
    (st.Incr.dirty_components >= 1)

let test_revert_rehits_cache () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  let initial = Incr.legal t in
  let d = Incr.design t in
  let x0, y0 = Placement.get d.Design.global 5 in
  let st1 = Incr.apply t [ Edit.Move { cell = 5; x = x0 +. 10.0; y = y0 } ] in
  Alcotest.(check bool) "first move re-solves" true (st1.Incr.dirty_shards >= 1);
  (* moving the cell back restores the exact original sub-LCPs, whose
     solutions are still cached: the revert batch must be solve-free *)
  let st2 = Incr.apply t [ Edit.Move { cell = 5; x = x0; y = y0 } ] in
  Alcotest.(check int) "revert is all cache hits" 0 st2.Incr.dirty_shards;
  Alcotest.(check (float 0.0)) "revert restores the placement" 0.0
    (max_position_diff initial (Incr.legal t))

let test_insert_delete_roundtrip () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  let initial = Incr.legal t in
  let n = Design.num_cells (Incr.design t) in
  let _ =
    Incr.apply t [ Edit.Insert { width = 5; height = 1; x = 30.0; y = 2.2 } ]
  in
  Alcotest.(check int) "inserted at the end" (n + 1)
    (Design.num_cells (Incr.design t));
  let _ = Incr.apply t [ Edit.Delete { cell = n } ] in
  Alcotest.(check int) "back to original count" n
    (Design.num_cells (Incr.design t));
  Alcotest.(check (float 0.0)) "round-trip restores the placement" 0.0
    (max_position_diff initial (Incr.legal t))

let test_bad_edits_raise () =
  let t = Incr.create ~config:tight (eco_design ~scale:0.01) in
  let n = Design.num_cells (Incr.design t) in
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "out of range" (fun () ->
      Incr.apply t [ Edit.Move { cell = n; x = 1.0; y = 1.0 } ]);
  raises "negative id" (fun () -> Incr.apply t [ Edit.Delete { cell = -1 } ]);
  raises "edit after delete" (fun () ->
      Incr.apply t
        [ Edit.Delete { cell = 0 }; Edit.Move { cell = 0; x = 1.0; y = 1.0 } ]);
  raises "zero width" (fun () ->
      Incr.apply t [ Edit.Resize { cell = 0; width = 0 } ])

let test_obs_counters () =
  let obs = Mclh_obs.Obs.create () in
  let t = Incr.create ~config:tight ~obs (eco_design ~scale:0.01) in
  let d = Incr.design t in
  let x0, y0 = Placement.get d.Design.global 1 in
  let st = Incr.apply t [ Edit.Move { cell = 1; x = x0 +. 5.0; y = y0 } ] in
  let c name = Mclh_obs.Obs.counter_value obs name in
  Alcotest.(check int) "batches" 1 (c "incr/batches");
  Alcotest.(check int) "edits" 1 (c "incr/edits");
  Alcotest.(check int) "cache hits" st.Incr.cache_hits (c "incr/cache_hits");
  Alcotest.(check int) "dirty shards" st.Incr.dirty_shards
    (c "incr/dirty_shards");
  Alcotest.(check int) "dirty components" st.Incr.dirty_components
    (c "incr/dirty_components");
  Alcotest.(check bool) "a warm-start trace was attached" true
    (List.exists
       (fun (name, _) ->
         String.length name >= 10 && String.sub name 0 10 = "incr/solve")
       (Mclh_obs.Obs.traces obs))

(* ---------- Solver ?s0 restart ---------- *)

let test_solver_s0_restart () =
  let d = eco_design ~scale:0.01 in
  let model = Model.build d (Row_assign.assign d) in
  let first = Solver.solve ~config:tight model in
  let again = Solver.solve ~config:tight ~s0:first.Solver.modulus model in
  Alcotest.(check bool) "restart nearly free" true
    (again.Solver.iterations <= 3);
  let n = model.Model.nvars in
  let worst = ref 0.0 in
  for v = 0 to n - 1 do
    worst := Float.max !worst (Float.abs (first.Solver.x.(v) -. again.Solver.x.(v)))
  done;
  Alcotest.(check bool) "same solution" true (!worst <= 1e-8);
  match Solver.solve ~config:tight ~s0:(Mclh_linalg.Vec.zeros 3) model with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong s0 dimension must raise"

let () =
  Alcotest.run "incr"
    [ ( "edits",
        [ Alcotest.test_case "file round-trip" `Quick test_edit_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_edit_parse_errors ] );
      ( "row_assign",
        [ Alcotest.test_case "assign_cell matches assign" `Quick
            test_assign_cell_matches_assign ] );
      ( "session",
        [ Alcotest.test_case "empty batch all hits" `Quick
            test_empty_batch_all_hits;
          Alcotest.test_case "equivalence with cold run" `Slow
            test_equivalence_with_cold_run;
          Alcotest.test_case "dirty set is local" `Quick
            test_dirty_set_is_local;
          Alcotest.test_case "revert re-hits cache" `Quick
            test_revert_rehits_cache;
          Alcotest.test_case "insert/delete round-trip" `Quick
            test_insert_delete_roundtrip;
          Alcotest.test_case "bad edits raise" `Quick test_bad_edits_raise;
          Alcotest.test_case "obs counters" `Quick test_obs_counters ] );
      ( "solver",
        [ Alcotest.test_case "?s0 restart" `Quick test_solver_s0_restart ] ) ]
