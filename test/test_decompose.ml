(* Tests for the connected-component LCP decomposition and the
   allocation-free MMSIM kernels: partition validity, decomposed-parallel
   vs monolithic agreement, bit-identity across domain counts, the exact
   single-component fallback, and zero steady-state allocation per
   iteration on the in-place path. *)

open Mclh_core
open Mclh_linalg

let instance ?(options = Mclh_benchgen.Generate.default_options) ~scale name =
  Mclh_benchgen.Generate.generate ~options
    (Mclh_benchgen.Spec.scaled scale (Mclh_benchgen.Spec.find name))

let model_of ?options ~scale name =
  let d = (instance ?options ~scale name).Mclh_benchgen.Generate.design in
  (d, Model.build d (Row_assign.assign d))

let blockage_options =
  { Mclh_benchgen.Generate.default_options with
    blockage_fraction = 0.15;
    blockage_count = 24 }

let tall_options =
  { Mclh_benchgen.Generate.default_options with tall_cell_fraction = 0.3 }

(* ---------- partition validity ---------- *)

let test_partition_valid () =
  let _, model = model_of ~options:blockage_options ~scale:0.02 "fft_2" in
  let deco = Decompose.analyze ~min_shard_vars:64 model in
  Alcotest.(check bool) "several components" true (deco.Decompose.num_components > 1);
  Alcotest.(check bool) "several shards" true (Array.length deco.Decompose.shards > 1);
  let n = model.Model.nvars and m = Model.num_constraints model in
  let var_seen = Array.make n 0 and con_seen = Array.make m 0 in
  Array.iter
    (fun shard ->
      let sub = Decompose.extract model shard in
      Alcotest.(check int) "vars map length" sub.Model.nvars
        (Array.length shard.Decompose.vars);
      Alcotest.(check int) "cons map length" (Model.num_constraints sub)
        (Array.length shard.Decompose.cons);
      Array.iteri
        (fun local v ->
          var_seen.(v) <- var_seen.(v) + 1;
          (* extraction preserves the linear term and shift *)
          Alcotest.(check (float 0.0)) "p extracted" model.Model.p.(v)
            sub.Model.p.(local);
          Alcotest.(check (float 0.0)) "shift extracted" model.Model.shift.(v)
            sub.Model.shift.(local))
        shard.Decompose.vars;
      Array.iteri
        (fun local c ->
          con_seen.(c) <- con_seen.(c) + 1;
          Alcotest.(check (float 0.0)) "b_rhs extracted" model.Model.b_rhs.(c)
            sub.Model.b_rhs.(local))
        shard.Decompose.cons;
      (* every constraint row must stay a (-1, +1) pair over shard-local
         variables of the same component *)
      for i = 0 to Model.num_constraints sub - 1 do
        match Csr.row_entries (Model.b_mat sub) i with
        | [ (_, a); (_, b) ] ->
          Alcotest.(check (float 0.0)) "pair sum" 0.0 (a +. b)
        | _ -> Alcotest.fail "constraint row is not a two-entry pair"
      done)
    deco.Decompose.shards;
  Alcotest.(check (array int)) "vars partitioned" (Array.make n 1) var_seen;
  Alcotest.(check (array int)) "cons partitioned" (Array.make m 1) con_seen;
  (* chains never split across shards *)
  let total_chains =
    Array.fold_left
      (fun acc shard ->
        acc + Blocks.num_chains (Decompose.extract model shard).Model.blocks)
      0 deco.Decompose.shards
  in
  Alcotest.(check int) "chains preserved"
    (Blocks.num_chains model.Model.blocks)
    total_chains

let test_component_ids_cover () =
  let _, model = model_of ~scale:0.02 "fft_2" in
  let deco = Decompose.analyze model in
  Alcotest.(check int) "one id per var" model.Model.nvars
    (Array.length deco.Decompose.comp_of_var);
  Array.iter
    (fun c ->
      Alcotest.(check bool) "dense ids" true
        (c >= 0 && c < deco.Decompose.num_components))
    deco.Decompose.comp_of_var;
  (* constraints keep both endpoints in one component *)
  Csr.iter (Model.b_mat model) (fun _ _ _ -> ());
  for i = 0 to Model.num_constraints model - 1 do
    match Csr.row_entries (Model.b_mat model) i with
    | [ (u, _); (v, _) ] ->
      Alcotest.(check int) "constraint inside one component"
        deco.Decompose.comp_of_var.(u)
        deco.Decompose.comp_of_var.(v)
    | _ -> Alcotest.fail "constraint row arity"
  done

(* ---------- decomposed vs monolithic ---------- *)

let placement_xs model res =
  (Model.placement_of model res.Solver.x).Mclh_circuit.Placement.xs

let check_against_monolithic ?(tol = 1e-9) name model =
  (* backend pinned to Plain: this check isolates the decomposition
     machinery (same iteration, sharded vs monolithic). Under Auto the
     chooser may solve some shards exactly (direct backends) while the
     monolithic run stops at the iterate-change tolerance, a legitimate
     difference that test_backend.ml covers against a run-to-convergence
     baseline instead. *)
  let tight =
    { Config.default with
      eps = 1e-10;
      num_domains = 1;
      backend = Config.Plain }
  in
  let mono = Solver.solve ~config:{ tight with decompose = false } model in
  let dec = Solver.solve ~config:tight model in
  let diff =
    Vec.dist_inf (placement_xs model mono) (placement_xs model dec)
  in
  if mono.Solver.iterations = dec.Solver.iterations
     && dec.Solver.components = 1
  then
    Alcotest.(check (array (float 0.0)))
      (name ^ " bit-identical (single component)")
      mono.Solver.x dec.Solver.x
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s |dx| %.2e <= %.0e" name diff tol)
      true (diff <= tol)

let test_matches_monolithic () =
  List.iter
    (fun (name, options, scale) ->
      let _, model = model_of ~options ~scale name in
      check_against_monolithic name model)
    [ ("fft_2", Mclh_benchgen.Generate.default_options, 0.02);
      ("fft_2", blockage_options, 0.02);
      ("fft_2", tall_options, 0.015);
      ("pci_bridge32_a",
       { Mclh_benchgen.Generate.default_options with single_height_only = true },
       0.02) ]

let test_matches_monolithic_property =
  QCheck.Test.make ~count:6 ~name:"decomposed solve matches monolithic"
    QCheck.(triple (int_bound 1000) (int_bound 20) (int_bound 40))
    (fun (seed, blockage_pct, tall_pct) ->
      let blockage_fraction = float_of_int blockage_pct /. 100.0 in
      let options =
        { Mclh_benchgen.Generate.default_options with
          seed;
          blockage_fraction;
          blockage_count = (if blockage_fraction > 0.0 then 12 else 0);
          tall_cell_fraction = float_of_int tall_pct /. 100.0 }
      in
      let _, model = model_of ~options ~scale:0.01 "fft_2" in
      (* looser than the fixed-design check: the eps = 1e-10 stop bounds
         the iterate change, not the distance to the fixed point, and a
         random blockage/tall draw can produce slowly-contracting chains
         where the two stopping points sit several 1e-9 apart (observed
         6.1e-9 at QCheck seed 908397212 — pre-dates the warm-start work) *)
      check_against_monolithic ~tol:1e-8 "property" model;
      true)

(* ---------- bit-identity across domain counts ---------- *)

let test_domain_count_bit_identity () =
  let _, model = model_of ~options:blockage_options ~scale:0.02 "fft_2" in
  let solve nd =
    Solver.solve ~config:{ Config.default with num_domains = nd } model
  in
  let seq = solve 1 in
  Alcotest.(check bool) "decomposition active" true (seq.Solver.components > 1);
  List.iter
    (fun nd ->
      let par = solve nd in
      let tag = Printf.sprintf "nd=%d" nd in
      Alcotest.(check int) (tag ^ " iterations") seq.Solver.iterations
        par.Solver.iterations;
      Alcotest.(check (array (float 0.0))) (tag ^ " x") seq.Solver.x par.Solver.x;
      Alcotest.(check (array (float 0.0))) (tag ^ " r") seq.Solver.r par.Solver.r)
    [ 2; 4 ]

let test_single_component_fallback () =
  (* des_perf_1's mixed rows are all bridged by double-height cells: one
     component, so the decomposed path must be the monolithic one exactly *)
  let _, model = model_of ~scale:0.02 "des_perf_1" in
  let deco = Decompose.analyze model in
  Alcotest.(check int) "single component" 1 (Decompose.num_components deco);
  Alcotest.(check int) "single shard" 1 (Decompose.num_shards deco);
  let mono =
    Solver.solve ~config:{ Config.default with decompose = false } model
  in
  let dec = Solver.solve model in
  Alcotest.(check int) "iterations" mono.Solver.iterations dec.Solver.iterations;
  Alcotest.(check (array (float 0.0))) "x bit-identical" mono.Solver.x dec.Solver.x;
  Alcotest.(check (array (float 0.0))) "r bit-identical" mono.Solver.r dec.Solver.r

let test_packing_collapse_fallback () =
  (* a huge min_shard_vars packs everything into one shard: analyze must
     report the fallback ([shards] empty, num_shards 1) *)
  let _, model = model_of ~options:blockage_options ~scale:0.02 "fft_2" in
  let deco = Decompose.analyze ~min_shard_vars:max_int model in
  Alcotest.(check bool) "components found" true
    (Decompose.num_components deco > 1);
  Alcotest.(check int) "one shard" 1 (Decompose.num_shards deco);
  Alcotest.(check int) "no shard array" 0 (Array.length deco.Decompose.shards)

(* ---------- allocation-free steady state ---------- *)

let test_zero_alloc_per_iteration () =
  let _, model = model_of ~scale:0.01 "fft_2" in
  (* num_domains = 1: the pool path allocates its dispatch closures; the
     zero-allocation guarantee is for the sequential in-place kernels *)
  let config = { Config.default with num_domains = 1 } in
  let ops = Solver.operators_inplace model config in
  let q = Solver.rhs_q model in
  let words ?s0 ?(accel = 0) iters =
    let options =
      (* eps below any representable progress: the loop never converges
         early, so the two runs differ by exactly [iters] iterations *)
      { Mclh_lcp.Mmsim.default_options with
        eps = 1e-300;
        max_iter = iters;
        accel }
    in
    let before = Gc.minor_words () in
    ignore (Mclh_lcp.Mmsim.solve_inplace ~options ?s0 ops ~q);
    Gc.minor_words () -. before
  in
  ignore (words 3) (* warm up: first entry may trigger lazy init *);
  let lo = words 10 and hi = words 110 in
  Alcotest.(check (float 0.0))
    "minor words per 100 steady-state iterations" 0.0 (hi -. lo);
  (* the warm-start path (explicit s0, as the incremental engine passes)
     copies s0 once up front and must stay allocation-free per iteration *)
  let s0 =
    Mclh_linalg.Vec.init
      (model.Model.nvars + Model.num_constraints model)
      (fun i -> 0.25 *. float_of_int (i mod 7))
  in
  ignore (words ~s0 3);
  let lo = words ~s0 10 and hi = words ~s0 110 in
  Alcotest.(check (float 0.0))
    "warm-start minor words per 100 steady-state iterations" 0.0 (hi -. lo);
  (* Anderson acceleration preallocates its history and Gram scratch, so
     depth > 0 must preserve the zero-allocation steady state *)
  ignore (words ~accel:8 12);
  let lo = words ~accel:8 20 and hi = words ~accel:8 120 in
  Alcotest.(check (float 0.0))
    "accelerated minor words per 100 steady-state iterations" 0.0 (hi -. lo)

let () =
  Alcotest.run "decompose"
    [ ( "structure",
        [ Alcotest.test_case "partition validity" `Quick test_partition_valid;
          Alcotest.test_case "component ids" `Quick test_component_ids_cover;
          Alcotest.test_case "packing collapse fallback" `Quick
            test_packing_collapse_fallback ] );
      ( "vs-monolithic",
        [ Alcotest.test_case "fixed designs" `Quick test_matches_monolithic;
          QCheck_alcotest.to_alcotest test_matches_monolithic_property;
          Alcotest.test_case "single-component fallback" `Quick
            test_single_component_fallback ] );
      ( "bit-identity",
        [ Alcotest.test_case "across domain counts" `Quick
            test_domain_count_bit_identity ] );
      ( "allocation",
        [ Alcotest.test_case "zero alloc per iteration" `Quick
            test_zero_alloc_per_iteration ] ) ]
