(* Table 1: benchmark statistics and illegal cells after the MMSIM stage
   (before the Tetris-like allocation repairs them). *)

open Mclh_circuit
open Mclh_core
open Mclh_report

let run () =
  Util.section
    (Printf.sprintf "Table 1 - benchmark statistics and illegal cells (scale %g)"
       Util.scale);
  let table =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "#S.Cell"; align = Right };
        { title = "#D.Cell"; align = Right };
        { title = "Density"; align = Right };
        { title = "#I.Cell"; align = Right };
        { title = "%I.Cell"; align = Right };
        { title = "paper #I"; align = Right };
        { title = "iters"; align = Right };
        { title = "legal"; align = Right } ]
  in
  let total_illegal = ref 0 and total_cells = ref 0 in
  let measure name =
    let inst = Util.instance name in
    let d = inst.Mclh_benchgen.Generate.design in
    let res = Flow.run d in
    (name, d, res)
  in
  let rows = Util.fanout ~label:"table1 fan-out" measure (Util.benchmarks ()) in
  List.iter
    (fun (name, d, res) ->
      let n = Design.num_cells d in
      let heights = Design.count_by_height d in
      let singles = try List.assoc 1 heights with Not_found -> 0 in
      let doubles = try List.assoc 2 heights with Not_found -> 0 in
      let illegal = Flow.illegal_after_mmsim res in
      total_illegal := !total_illegal + illegal;
      total_cells := !total_cells + n;
      let paper =
        try List.assoc name Paper_data.table1_illegal with Not_found -> 0
      in
      Table.add_row table
        [ name;
          string_of_int singles;
          string_of_int doubles;
          Table.fmt_float 2 (Design.density d);
          string_of_int illegal;
          Table.fmt_pct 2 (float_of_int illegal /. float_of_int n);
          string_of_int paper;
          string_of_int res.Flow.solver.Solver.iterations;
          (if Legality.is_legal d res.Flow.legal then "yes" else "NO") ])
    rows;
  Table.add_separator table;
  Table.add_row table
    [ "Total"; ""; ""; "";
      string_of_int !total_illegal;
      Table.fmt_pct 2 (float_of_int !total_illegal /. float_of_int (max 1 !total_cells));
      ""; ""; "" ];
  print_string (Table.render table);
  Printf.printf
    "\n(paper #I at full scale; ours at scale %g. The shape to reproduce:\n\
    \ near-zero illegal cells at low density, the most at des_perf_1/fft_1.)\n%!"
    Util.scale
