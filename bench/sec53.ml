(* Section 5.3: MMSIM optimality on single-row-height designs.

   With cells assigned to nearest rows, ordering fixed, and the right
   boundary relaxed, both the MMSIM and Abacus PlaceRow solve the same
   convex QP; the paper validates the MMSIM's optimality (Theorem 2) by
   checking that their total displacements coincide, and reports a 1.51x
   speedup for the MMSIM solver over PlaceRow. *)

open Mclh_circuit
open Mclh_core
open Mclh_report

let time f = Mclh_par.Clock.timed f

let run () =
  Util.section
    (Printf.sprintf
       "Section 5.3 - MMSIM optimality on single-row-height designs (scale %g)"
       Util.scale);
  let table =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "MMSIM disp"; align = Right };
        { title = "PlaceRow disp"; align = Right };
        { title = "equal"; align = Right };
        { title = "MMSIM iters"; align = Right };
        { title = "t MMSIM (s)"; align = Right };
        { title = "t PlaceRow (s)"; align = Right };
        { title = "t PlaceRow batch (s)"; align = Right } ]
  in
  let measure name =
    let inst = Util.instance ~single_height:true name in
    let d = inst.Mclh_benchgen.Generate.design in
    let rh = Util.row_height d in
    let config = { Config.default with eps = 1e-9; max_iter = 500_000 } in
    (* both paths share assignment + model building; time the solvers *)
    let assignment = Row_assign.assign d in
    let model = Model.build d assignment in
    let solver_res, t_mmsim = time (fun () -> Solver.solve ~config model) in
    let mmsim_relaxed = Model.placement_of model solver_res.Solver.x in
    let mmsim_legal = (Tetris_alloc.run d mmsim_relaxed).Tetris_alloc.placement in
    let placerow_pl, t_placerow =
      time (fun () -> Abacus.legalize_fixed_rows_incremental d assignment)
    in
    let _, t_placerow_batch =
      time (fun () -> Abacus.legalize_fixed_rows d assignment)
    in
    let placerow_legal = (Tetris_alloc.run d placerow_pl).Tetris_alloc.placement in
    let da =
      (Metrics.displacement ~row_height:rh ~before:d.Design.global mmsim_legal)
        .Metrics.total_manhattan
    and db =
      (Metrics.displacement ~row_height:rh ~before:d.Design.global placerow_legal)
        .Metrics.total_manhattan
    in
    (name, da, db, solver_res.Solver.iterations, t_mmsim, t_placerow,
     t_placerow_batch)
  in
  let rows = Util.fanout ~label:"sec53 fan-out" measure (Util.benchmarks ()) in
  let equal_count = ref 0 and total = ref 0 in
  let sum_mmsim_t = ref 0.0 and sum_placerow_t = ref 0.0 in
  List.iter
    (fun (name, da, db, iters, t_mmsim, t_placerow, t_placerow_batch) ->
      let equal = Float.abs (da -. db) <= 1e-6 *. Float.max 1.0 db in
      incr total;
      if equal then incr equal_count;
      sum_mmsim_t := !sum_mmsim_t +. t_mmsim;
      sum_placerow_t := !sum_placerow_t +. t_placerow;
      Table.add_row table
        [ name;
          Table.fmt_float 1 da;
          Table.fmt_float 1 db;
          (if equal then "yes" else "NO");
          string_of_int iters;
          Table.fmt_float 3 t_mmsim;
          Table.fmt_float 3 t_placerow;
          Table.fmt_float 3 t_placerow_batch ])
    rows;
  print_string (Table.render table);
  Printf.printf
    "\nEqual displacements: %d / %d benchmarks (paper: 20/20).\n" !equal_count
    !total;
  let speed =
    if !sum_mmsim_t > 0.0 then !sum_placerow_t /. !sum_mmsim_t else 0.0
  in
  Printf.printf
    "Solver speed ratio PlaceRow/MMSIM: %.2fx (paper reports MMSIM %.2fx faster).\n\
     (PlaceRow is timed as the Abacus driver invokes it: one call per cell\n\
     insertion. The one-shot batch variant is shown for reference.)\n"
    speed Paper_data.sec53_speedup;
  Printf.printf
    "Paper's example displacements at full scale: %s\n%!"
    (String.concat ", "
       (List.map
          (fun (n, v) -> Printf.sprintf "%s %.0f" n v)
          Paper_data.sec53_examples))
