(* Scalability: the MMSIM flow from bench scale up to the paper's full
   suite size. Per iteration the solver is O(n + m); the large-suite
   claims (superblue12 is ~1.29M cells at scale 1.0) rest on that
   near-linear behaviour *and* on construction staying linear in memory,
   so this section tracks both time-per-cell and peak-RSS-per-cell.

   Two views, both snapshotted to bench_out/BENCH_pr7.json:

   - a scaling curve on the superblue12 shape, scales 0.04 -> 1.0
     (points above MCLH_SCALE are skipped, so the default 0.04 run stays
     cheap and MCLH_SCALE=1.0 exercises the full 1.29M-cell instance);
   - the fft/pci family at MCLH_SCALE, the Table 1/2-style designs.

   The curve runs smallest-first on purpose: peak RSS is read from the
   kernel's process-lifetime high-water mark (VmHWM), so with ascending
   sizes each point's reading is its own peak. *)

open Mclh_circuit
open Mclh_core
open Mclh_benchgen
open Mclh_report

let curve_scales = [ 0.04; 0.1; 0.2; 0.4; 0.7; 1.0 ]
let family = [ "fft_1"; "fft_2"; "fft_a"; "fft_b"; "pci_bridge32_a"; "pci_bridge32_b" ]

type point = {
  scale : float;
  cells : int;
  gen_s : float;
  timings : Flow.timings;
  iterations : int;
  components : int;
  us_per_cell : float;
  us_per_cell_iter : float;
      (* solve time normalized by cells *and* iterations: the iteration
         count varies with overlap-chain structure (not n), so this is
         the number that isolates the per-iteration O(n + m) claim *)
  cells_per_s : float;
  peak_rss_kb : int option;
  legal : bool;
  converged : bool;
}

let measure_point scale =
  let inst, gen_s =
    Mclh_par.Clock.timed (fun () ->
        Generate.generate (Spec.scaled scale (Spec.find "superblue12")))
  in
  let d = inst.Generate.design in
  let res = Flow.run d in
  let n = Design.num_cells d in
  let total_s = res.Flow.timings.Flow.total_s in
  let iters = res.Flow.solver.Solver.iterations in
  { scale;
    cells = n;
    gen_s;
    timings = res.Flow.timings;
    iterations = iters;
    components = res.Flow.solver.Solver.components;
    us_per_cell = 1e6 *. total_s /. float_of_int n;
    us_per_cell_iter =
      1e6 *. res.Flow.timings.Flow.solve_s
      /. float_of_int (n * max 1 iters);
    cells_per_s = (if total_s > 0.0 then float_of_int n /. total_s else 0.0);
    peak_rss_kb = Mclh_obs.Obs.peak_rss_kb ();
    legal = Legality.is_legal d res.Flow.legal;
    converged = res.Flow.solver.Solver.converged }

let point_json p =
  Json.Obj
    [ ("scale", Json.Float p.scale);
      ("cells", Json.Int p.cells);
      ("gen_s", Json.Float p.gen_s);
      ("assign_s", Json.Float p.timings.Flow.assign_s);
      ("model_s", Json.Float p.timings.Flow.model_s);
      ("solve_s", Json.Float p.timings.Flow.solve_s);
      ("alloc_s", Json.Float p.timings.Flow.alloc_s);
      ("total_s", Json.Float p.timings.Flow.total_s);
      ("us_per_cell", Json.Float p.us_per_cell);
      ("solve_us_per_cell_per_iter", Json.Float p.us_per_cell_iter);
      ("cells_per_s", Json.Float p.cells_per_s);
      ( "peak_rss_kb",
        match p.peak_rss_kb with Some kb -> Json.Int kb | None -> Json.Null );
      ("iterations", Json.Int p.iterations);
      ("components", Json.Int p.components);
      ("legal", Json.Bool p.legal);
      ("converged", Json.Bool p.converged) ]

let rss_cell p =
  match p.peak_rss_kb with
  | Some kb -> Printf.sprintf "%.2f" (1024.0 *. float_of_int kb /. float_of_int p.cells)
  | None -> "n/a"

let run () =
  Util.section
    (Printf.sprintf
       "Scaling - superblue12 curve to scale %g + fft/pci family (MCLH_SCALE)"
       Util.scale);
  let table =
    Table.create
      [ { Table.title = "scale"; align = Table.Right };
        { title = "cells"; align = Right };
        { title = "gen (s)"; align = Right };
        { title = "model (s)"; align = Right };
        { title = "solve (s)"; align = Right };
        { title = "total (s)"; align = Right };
        { title = "us/cell"; align = Right };
        { title = "cells/s"; align = Right };
        { title = "peakRSS B/cell"; align = Right };
        { title = "iters"; align = Right };
        { title = "legal"; align = Right } ]
  in
  let scales =
    let cap = Util.scale in
    let below = List.filter (fun s -> s <= cap +. 1e-9) curve_scales in
    if below = [] then [ cap ] else below
  in
  let points =
    (* ascending, sequentially: each VmHWM reading then belongs to the
       point that just ran (the high-water mark only ever grows) *)
    List.map
      (fun scale ->
        let p = measure_point scale in
        Table.add_row table
          [ Printf.sprintf "%g" p.scale;
            string_of_int p.cells;
            Table.fmt_float 2 p.gen_s;
            Table.fmt_float 2 p.timings.Flow.model_s;
            Table.fmt_float 2 p.timings.Flow.solve_s;
            Table.fmt_float 2 p.timings.Flow.total_s;
            Table.fmt_float 2 p.us_per_cell;
            Printf.sprintf "%.0f" p.cells_per_s;
            rss_cell p;
            string_of_int p.iterations;
            string_of_bool p.legal ];
        p)
      scales
  in
  print_string (Table.render table);
  let spread_of f =
    let us = List.map f points in
    let mn = List.fold_left Float.min infinity us in
    let mx = List.fold_left Float.max 0.0 us in
    if mn > 0.0 then mx /. mn else 1.0
  in
  let spread = spread_of (fun p -> p.us_per_cell) in
  let iter_spread = spread_of (fun p -> p.us_per_cell_iter) in
  Printf.printf
    "(us/cell spread across the curve: %.2fx total, %.2fx per solver\n\
    \ iteration — the difference is the iteration count, which tracks\n\
    \ overlap-chain structure rather than n; peak RSS is the process\n\
    \ high-water mark after each point)\n%!"
    spread iter_spread;

  Util.section "Scaling - fft/pci family at MCLH_SCALE";
  let ftable =
    Table.create
      [ { Table.title = "design"; align = Table.Left };
        { title = "cells"; align = Right };
        { title = "iters"; align = Right };
        { title = "total (s)"; align = Right };
        { title = "us/cell"; align = Right };
        { title = "legal"; align = Right };
        { title = "converged"; align = Right } ]
  in
  let family_rows =
    List.map
      (fun name ->
        let inst = Util.instance name in
        let d = inst.Generate.design in
        let res = Flow.run d in
        let n = Design.num_cells d in
        let total_s = res.Flow.timings.Flow.total_s in
        let us = 1e6 *. total_s /. float_of_int n in
        let legal = Legality.is_legal d res.Flow.legal in
        let converged = res.Flow.solver.Solver.converged in
        Table.add_row ftable
          [ name;
            string_of_int n;
            string_of_int res.Flow.solver.Solver.iterations;
            Table.fmt_float 3 total_s;
            Table.fmt_float 2 us;
            string_of_bool legal;
            string_of_bool converged ];
        Json.Obj
          [ ("design", Json.String name);
            ("cells", Json.Int n);
            ("iterations", Json.Int res.Flow.solver.Solver.iterations);
            ("total_s", Json.Float total_s);
            ("us_per_cell", Json.Float us);
            ("legal", Json.Bool legal);
            ("converged", Json.Bool converged) ])
      family
  in
  print_string (Table.render ftable);

  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr7.json" in
  Json.to_file ~path
    (Json.Obj
       [ ("benchmark", Json.String "scaling_full_suite");
         ("version", Json.Int 1);
         ("design", Json.String "superblue12");
         ("scale_cap", Json.Float Util.scale);
         ("num_domains", Json.Int (Mclh_par.Pool.size (Util.pool ())));
         ("curve", Json.List (List.map point_json points));
         ("us_per_cell_spread", Json.Float spread);
         ("solve_us_per_cell_per_iter_spread", Json.Float iter_spread);
         ("family", Json.List family_rows) ]);
  Printf.printf "wrote %s\n%!" path
