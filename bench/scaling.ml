(* Scalability: runtime and iteration count of the MMSIM flow as the
   instance grows. Per iteration the solver is O(n + m); the paper's large
   suite (up to 1.3M cells) rests on this near-linear behaviour. *)

open Mclh_circuit
open Mclh_core
open Mclh_benchgen
open Mclh_report

let run () =
  Util.section "Scaling - MMSIM flow runtime vs instance size (fft_2 shape)";
  let table =
    Table.create
      [ { Table.title = "scale"; align = Table.Right };
        { title = "cells"; align = Right };
        { title = "vars+constraints"; align = Right };
        { title = "components"; align = Right };
        { title = "largest"; align = Right };
        { title = "iterations"; align = Right };
        { title = "solve (s)"; align = Right };
        { title = "total (s)"; align = Right };
        { title = "us/cell"; align = Right };
        { title = "legal"; align = Right } ]
  in
  let scales =
    if Util.fast_mode then [ 0.01; 0.02; 0.04 ]
    else [ 0.01; 0.02; 0.04; 0.08; 0.16; 0.32 ]
  in
  List.iter
    (fun scale ->
      let inst = Generate.generate (Spec.scaled scale (Spec.find "fft_2")) in
      let d = inst.Generate.design in
      let res = Flow.run d in
      let n = Design.num_cells d in
      let m = res.Flow.model in
      Table.add_row table
        [ Printf.sprintf "%g" scale;
          string_of_int n;
          Printf.sprintf "%d+%d" m.Model.nvars (Model.num_constraints m);
          string_of_int res.Flow.solver.Solver.components;
          string_of_int res.Flow.solver.Solver.largest_dim;
          string_of_int res.Flow.solver.Solver.iterations;
          Table.fmt_float 3 res.Flow.timings.Flow.solve_s;
          Table.fmt_float 3 res.Flow.timings.Flow.total_s;
          Table.fmt_float 2
            (1e6 *. res.Flow.timings.Flow.total_s /. float_of_int n);
          string_of_bool (Legality.is_legal d res.Flow.legal) ])
    scales;
  print_string (Table.render table);
  Printf.printf
    "(us/cell should stay roughly flat if the flow is near-linear; the\n\
    \ iteration count depends on overlap-chain lengths, not directly on n)\n%!"
