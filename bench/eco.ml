(* ECO incremental-vs-full benchmark (the lib/incr engine).

   One blockage-rich fft_2 instance is legalized cold once, then a
   sequence of ECO batches — 1% of the cells nudged to new global
   positions — is replayed twice: through the incremental session
   (dirty-shard re-solve, warm-started, cache-backed) and as a cold full
   re-legalization of the same end state. Blockages matter: they cut the
   rows into many short segments, so the LCP decomposes into many small
   components and the dirty set of a local edit stays small — the regime
   the engine is built for (a giant single-component design would gain
   little; see DESIGN.md).

   Reported: per-batch latency, end-state equivalence (must be <= 1e-9),
   the incremental/full speedup and the iteration savings. A JSON
   snapshot lands in bench_out/BENCH_pr5.json for CI tracking. *)

open Mclh_circuit
open Mclh_core

let tolerance = 1e-9

let position_diff (a : Placement.t) (b : Placement.t) =
  let open Mclh_linalg in
  Float.max
    (Vec.dist_inf a.Placement.xs b.Placement.xs)
    (Vec.dist_inf a.Placement.ys b.Placement.ys)

let run () =
  Util.section "ECO incremental re-legalization (lib/incr)";
  let options =
    { Mclh_benchgen.Generate.default_options with
      blockage_fraction = 0.15;
      blockage_count = 32 }
  in
  let inst =
    Mclh_benchgen.Generate.generate ~options
      (Mclh_benchgen.Spec.scaled Util.scale (Mclh_benchgen.Spec.find "fft_2"))
  in
  let design = inst.Mclh_benchgen.Generate.design in
  let n = Design.num_cells design in
  let chip = design.Design.chip in
  (* a tight tolerance keeps the MMSIM solve the dominant stage of the
     cold flow, which is what an ECO engine competes against *)
  let config = { Config.default with eps = 1e-8 } in
  let session = Mclh_incr.Incr.create ~config design in
  let rng = Mclh_benchgen.Rng.create 42 in
  let num_batches = if Util.fast_mode then 3 else 5 in
  let edits_per_batch = max 1 (n / 100) in
  Printf.printf "fft_2 at scale %g: %d cells, %d batches of %d moves (1%%)\n%!"
    Util.scale n num_batches edits_per_batch;
  Printf.printf "%5s %12s %5s %6s %11s %9s %9s %9s\n" "batch" "dirty/shards"
    "hits" "iters" "latency(ms)" "cold(ms)" "speedup" "max|dpos|";
  let incr_total = ref 0.0
  and full_total = ref 0.0
  and incr_iters = ref 0
  and full_iters = ref 0
  and hits = ref 0
  and dirty = ref 0
  and shards = ref 0
  and worst_diff = ref 0.0
  and all_converged = ref true in
  for b = 1 to num_batches do
    let d = Mclh_incr.Incr.design session in
    let cur_n = Design.num_cells d in
    let xs = d.Design.global.Placement.xs
    and ys = d.Design.global.Placement.ys in
    let clamp lo hi v = Float.min hi (Float.max lo v) in
    let batch =
      List.init edits_per_batch (fun _ ->
          (* an ECO-style local nudge: a few sites / a fraction of a row
             around the cell's current global position *)
          let cell = Mclh_benchgen.Rng.int rng cur_n in
          let x =
            clamp 0.0
              (float_of_int chip.Chip.num_sites)
              (xs.(cell) +. (5.0 *. Mclh_benchgen.Rng.gaussian rng))
          and y =
            clamp 0.0
              (float_of_int (chip.Chip.num_rows - 1))
              (ys.(cell) +. (0.75 *. Mclh_benchgen.Rng.gaussian rng))
          in
          Mclh_incr.Edit.Move { cell; x; y })
    in
    let st = Mclh_incr.Incr.apply session batch in
    let cold, cold_s =
      Mclh_par.Clock.timed (fun () ->
          Flow.run ~config (Mclh_incr.Incr.design session))
    in
    let diff = position_diff cold.Flow.legal (Mclh_incr.Incr.legal session) in
    incr_total := !incr_total +. st.Mclh_incr.Incr.latency_s;
    full_total := !full_total +. cold_s;
    incr_iters := !incr_iters + st.Mclh_incr.Incr.solve_iterations;
    full_iters := !full_iters + cold.Flow.solver.Solver.iterations_total;
    hits := !hits + st.Mclh_incr.Incr.cache_hits;
    dirty := !dirty + st.Mclh_incr.Incr.dirty_shards;
    shards := !shards + st.Mclh_incr.Incr.shards;
    worst_diff := Float.max !worst_diff diff;
    all_converged := !all_converged && st.Mclh_incr.Incr.converged;
    Printf.printf "%5d %6d/%-5d %5d %6d %11.2f %9.2f %8.1fx %9.1e\n%!" b
      st.Mclh_incr.Incr.dirty_shards st.Mclh_incr.Incr.shards
      st.Mclh_incr.Incr.cache_hits st.Mclh_incr.Incr.solve_iterations
      (1000.0 *. st.Mclh_incr.Incr.latency_s)
      (1000.0 *. cold_s)
      (if st.Mclh_incr.Incr.latency_s > 0.0 then
         cold_s /. st.Mclh_incr.Incr.latency_s
       else 1.0)
      diff
  done;
  let speedup =
    if !incr_total > 0.0 then !full_total /. !incr_total else 1.0
  in
  Printf.printf
    "total: incremental %.4fs vs full %.4fs — %.1fx speedup, %d vs %d \
     iterations, max |dpos| %.1e (tolerance %g)\n%!"
    !incr_total !full_total speedup !incr_iters !full_iters !worst_diff
    tolerance;
  if !worst_diff > tolerance then
    Printf.printf "WARNING: end-state equivalence violated!\n%!";
  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr5.json" in
  let open Mclh_report in
  Json.to_file ~path
    (Json.Obj
       [ ("benchmark", Json.String "eco_incremental");
         ("design", Json.String "fft_2");
         ("scale", Json.Float Util.scale);
         ("cells", Json.Int n);
         ("blockage_fraction", Json.Float options.blockage_fraction);
         ("batches", Json.Int num_batches);
         ("edits_per_batch", Json.Int edits_per_batch);
         ("edit_fraction", Json.Float (float_of_int edits_per_batch /. float_of_int n));
         ("incr_total_s", Json.Float !incr_total);
         ("full_total_s", Json.Float !full_total);
         ("speedup", Json.Float speedup);
         ("max_position_diff", Json.Float !worst_diff);
         ("equivalent", Json.Bool (!worst_diff <= tolerance));
         ("incr_iterations", Json.Int !incr_iters);
         ("full_iterations", Json.Int !full_iters);
         ("dirty_shards", Json.Int !dirty);
         ("total_shards", Json.Int !shards);
         ("cache_hits", Json.Int !hits);
         ("cache_entries", Json.Int (Mclh_incr.Incr.cache_entries session));
         ("converged", Json.Bool !all_converged) ]);
  Printf.printf "eco snapshot written to %s\n%!" path
