(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the computational kernel that regenerates it on a small
   fixed instance (so the statistics are stable and fast). *)

open Bechamel
open Toolkit
open Mclh_core

let kernel_instance () =
  (* one small instance reused by every kernel *)
  Mclh_benchgen.Generate.generate
    (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))

let tests () =
  let inst = kernel_instance () in
  let d = inst.Mclh_benchgen.Generate.design in
  let assignment = Row_assign.assign d in
  let model = Model.build d assignment in
  let single =
    Mclh_benchgen.Generate.generate
      ~options:
        { Mclh_benchgen.Generate.default_options with single_height_only = true }
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let sd = single.Mclh_benchgen.Generate.design in
  let s_assignment = Row_assign.assign sd in
  [ (* Table 1: the MMSIM flow that produces the illegal-cell counts *)
    Test.make ~name:"table1/mmsim_flow"
      (Staged.stage (fun () -> ignore (Flow.run d)));
    (* Table 2: one kernel per comparison column *)
    Test.make ~name:"table2/ours"
      (Staged.stage (fun () -> ignore (Solver.solve model)));
    Test.make ~name:"table2/ours_monolithic"
      (Staged.stage (fun () ->
           ignore
             (Solver.solve
                ~config:{ Config.default with decompose = false }
                model)));
    Test.make ~name:"table2/dac16"
      (Staged.stage (fun () ->
           ignore (Result.is_ok (Greedy_cpy.legalize ~options:Greedy_cpy.default d))));
    Test.make ~name:"table2/aspdac17"
      (Staged.stage (fun () -> ignore (Result.is_ok (Abacus_mr.legalize d))));
    (* Section 5.3: the two solvers whose speed ratio the paper reports *)
    Test.make ~name:"sec53/mmsim_single_height"
      (Staged.stage
         (let m = Model.build sd s_assignment in
          fun () -> ignore (Solver.solve m)));
    Test.make ~name:"sec53/placerow"
      (Staged.stage (fun () ->
           ignore (Abacus.legalize_fixed_rows sd s_assignment)));
    (* Figure 5: SVG rendering *)
    Test.make ~name:"fig5/svg_render"
      (Staged.stage
         (let legal = Flow.legalize d in
          fun () -> ignore (Mclh_circuit.Svg.render d legal))) ]

(* machine-readable perf snapshot for CI trend tracking: solver wall
   times (monolithic vs component-decomposed), iteration counts,
   component structure, and the steady-state minor-heap allocation per
   MMSIM iteration (0 on the in-place path) *)
let write_perf_json () =
  let inst = kernel_instance () in
  let d = inst.Mclh_benchgen.Generate.design in
  let model = Model.build d (Row_assign.assign d) in
  let deco = Decompose.analyze model in
  let mono, t_mono =
    Mclh_par.Clock.timed (fun () ->
        Solver.solve ~config:{ Config.default with decompose = false } model)
  in
  let dec, t_dec = Mclh_par.Clock.timed (fun () -> Solver.solve model) in
  let words_per_iter =
    let config = { Config.default with num_domains = 1 } in
    let ops = Solver.operators_inplace model config in
    let q = Solver.rhs_q model in
    let run iters =
      let options =
        { Mclh_lcp.Mmsim.default_options with eps = 1e-300; max_iter = iters }
      in
      let before = Gc.minor_words () in
      ignore (Mclh_lcp.Mmsim.solve_inplace ~options ops ~q);
      Gc.minor_words () -. before
    in
    ignore (run 3) (* warm up the code path *);
    let lo = run 10 and hi = run 110 in
    (hi -. lo) /. 100.0
  in
  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr2.json" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"design\": \"fft_2\",\n\
    \  \"nvars\": %d,\n\
    \  \"constraints\": %d,\n\
    \  \"components\": %d,\n\
    \  \"largest_component_dim\": %d,\n\
    \  \"shards\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"solve_monolithic_s\": %.6f,\n\
    \  \"solve_decomposed_s\": %.6f,\n\
    \  \"solve_speedup\": %.3f,\n\
    \  \"iterations_monolithic\": %d,\n\
    \  \"iterations_decomposed_max\": %d,\n\
    \  \"minor_words_per_iteration\": %.3f\n\
     }\n"
    model.Model.nvars (Model.num_constraints model)
    (Decompose.num_components deco) (Decompose.largest_dim deco)
    (Decompose.num_shards deco) Config.default.Config.num_domains t_mono t_dec
    (if t_dec > 0.0 then t_mono /. t_dec else 1.0)
    mono.Solver.iterations dec.Solver.iterations words_per_iter;
  close_out oc;
  Printf.printf "perf snapshot written to %s\n%!" path

(* observability snapshot: one metrics-enabled legalization of the kernel
   instance serialized as the full versioned run report — stage spans,
   convergence traces, Tetris repair counters. CI archives it next to
   BENCH_pr2.json so metric names and magnitudes are trackable over time. *)
let write_obs_json () =
  let inst = kernel_instance () in
  let d = inst.Mclh_benchgen.Generate.design in
  let config = { Config.default with metrics = true } in
  let r = Runner.run ~config Runner.Mmsim d in
  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr4.json" in
  (match r.Runner.obs with
  | None -> ()
  | Some obs ->
    let open Mclh_report in
    let meta =
      [ ("design", Json.String "fft_2");
        ("cells", Json.Int (Mclh_circuit.Design.num_cells d));
        ("algorithm", Json.String (Runner.name r.Runner.algorithm));
        ("legal", Json.Bool r.Runner.legal);
        ("runtime_s", Json.Float r.Runner.runtime_s) ]
    in
    Mclh_obs.Run_report.write ~path (Mclh_obs.Run_report.to_json ~meta obs));
  Printf.printf "obs snapshot written to %s\n%!" path

(* backend-chooser snapshot: plain MMSIM (budget raised until it actually
   converges) vs the Auto chooser on the two slow-contracting benchmarks
   of the PR-6 acceptance bar, at scale 0.04. Records per-backend shard
   counts (chooser-hit rates), fallbacks, iteration totals, the >= 3x
   iteration speedup, and the position agreement both raw (iterate-change
   stopping leaves each run within its own tolerance of the common fixed
   point) and after the snapping stage (bit-identical placements). *)
let write_backend_json () =
  let bench name =
    let d =
      (Mclh_benchgen.Generate.generate
         (Mclh_benchgen.Spec.scaled 0.04 (Mclh_benchgen.Spec.find name)))
        .Mclh_benchgen.Generate.design
    in
    let model = Model.build d (Row_assign.assign d) in
    let plain, t_plain =
      Mclh_par.Clock.timed (fun () ->
          Solver.solve
            ~config:
              { Config.default with
                backend = Config.Plain;
                max_iter = 2_000_000 }
            model)
    in
    let auto, t_auto = Mclh_par.Clock.timed (fun () -> Solver.solve model) in
    let xs (r : Solver.result) =
      (Model.placement_of model r.Solver.x).Mclh_circuit.Placement.xs
    in
    let snap_xs (r : Solver.result) =
      (Tetris_alloc.run d (Model.placement_of model r.Solver.x))
        .Tetris_alloc.placement
        .Mclh_circuit.Placement.xs
    in
    let bs = auto.Solver.backends in
    let shard_solves =
      bs.Solver.chain_free + bs.Solver.lemke + bs.Solver.active_set
      + bs.Solver.accel + bs.Solver.plain
    in
    let rate c =
      if shard_solves = 0 then 0.0 else float_of_int c /. float_of_int shard_solves
    in
    Printf.sprintf
      "    {\n\
      \      \"design\": \"%s\",\n\
      \      \"cells\": %d,\n\
      \      \"plain\": { \"iterations_total\": %d, \"converged\": %b, \
       \"max_iter\": 2000000, \"time_s\": %.4f },\n\
      \      \"auto\": {\n\
      \        \"iterations_total\": %d, \"converged\": %b, \"time_s\": %.4f,\n\
      \        \"shard_solves\": %d, \"fallbacks\": %d,\n\
      \        \"backends\": { \"chain_free\": %d, \"lemke\": %d, \
       \"active_set\": %d, \"accel\": %d, \"plain\": %d },\n\
      \        \"backend_rates\": { \"chain_free\": %.3f, \"lemke\": %.3f, \
       \"active_set\": %.3f, \"accel\": %.3f, \"plain\": %.3f }\n\
      \      },\n\
      \      \"iteration_speedup\": %.2f,\n\
      \      \"max_position_diff_sites\": %.3e,\n\
      \      \"max_position_diff_post_snap\": %.3e\n\
      \    }"
      name
      (Mclh_circuit.Design.num_cells d)
      plain.Solver.iterations_total plain.Solver.converged t_plain
      auto.Solver.iterations_total auto.Solver.converged t_auto shard_solves
      bs.Solver.fallbacks bs.Solver.chain_free bs.Solver.lemke
      bs.Solver.active_set bs.Solver.accel bs.Solver.plain
      (rate bs.Solver.chain_free) (rate bs.Solver.lemke)
      (rate bs.Solver.active_set) (rate bs.Solver.accel) (rate bs.Solver.plain)
      (float_of_int plain.Solver.iterations_total
      /. float_of_int (max 1 auto.Solver.iterations_total))
      (Mclh_linalg.Vec.dist_inf (xs plain) (xs auto))
      (Mclh_linalg.Vec.dist_inf (snap_xs plain) (snap_xs auto))
  in
  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr6.json" in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"scale\": 0.04,\n  \"designs\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map bench [ "des_perf_1"; "matrix_mult_1" ]));
  close_out oc;
  Printf.printf "backend snapshot written to %s\n%!" path

let run () =
  Util.section "Bechamel kernels (one per table/figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ v ] -> v
        | Some _ | None -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %12.1f ns/run (%10.3f ms)\n" name ns (ns /. 1e6))
    (List.sort compare !rows);
  print_newline ();
  write_perf_json ();
  write_obs_json ();
  write_backend_json ()
