(* Shared harness plumbing: scale selection, instance cache, output dir. *)

open Mclh_circuit
open Mclh_benchgen

let scale =
  match Sys.getenv_opt "MCLH_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.04)
  | None -> 0.04

let fast_mode = Sys.getenv_opt "MCLH_FAST" <> None

let out_dir = "bench_out"

let ensure_out_dir () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" bar title bar

let benchmarks () =
  if fast_mode then
    [ "des_perf_1"; "fft_1"; "fft_2"; "pci_bridge32_b"; "matrix_mult_a" ]
  else Spec.names

(* instances are expensive to generate at full scale; cache per run.
   Access is mutex-protected because the harness fans benchmarks out over
   domains. *)
let cache : (string, Generate.instance) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()

let instance ?(single_height = false) name =
  let key = Printf.sprintf "%s/%b" name single_height in
  let cached =
    Mutex.lock cache_lock;
    let v = Hashtbl.find_opt cache key in
    Mutex.unlock cache_lock;
    v
  in
  match cached with
  | Some inst -> inst
  | None ->
    let options =
      { Generate.default_options with single_height_only = single_height }
    in
    let inst = Generate.generate ~options (Spec.scaled scale (Spec.find name)) in
    Mutex.lock cache_lock;
    if not (Hashtbl.mem cache key) then Hashtbl.replace cache key inst;
    Mutex.unlock cache_lock;
    inst

(* deterministic parallel map over independent benchmark jobs: results come
   back in input order whatever the scheduling. The shared domain pool
   honours MCLH_DOMAINS; nested parallel layers (Fence territories, the
   solver's chain chunks) find the pool busy and run sequentially. *)
let pool () = Mclh_par.Pool.default ()

let parallel_map f items =
  Array.to_list (Mclh_par.Pool.parallel_map (pool ()) f (Array.of_list items))

(* fan [f] out over the benchmark jobs, timing each job and the whole
   fan-out on the wall clock, and report the multicore speedup: summed
   per-job wall seconds vs elapsed wall seconds *)
let fanout ~label f items =
  let t0 = Mclh_par.Clock.now () in
  let timed_results = parallel_map (fun x -> Mclh_par.Clock.timed (fun () -> f x)) items in
  let wall = Mclh_par.Clock.now () -. t0 in
  let work = List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 timed_results in
  Printf.printf
    "[%s] %d jobs on %d domains: %.2fs of work in %.2fs wall (%.2fx speedup)\n%!"
    label (List.length timed_results)
    (Mclh_par.Pool.size (pool ()))
    work wall
    (if wall > 0.0 then work /. wall else 1.0);
  List.map fst timed_results

let row_height (d : Design.t) = d.Design.chip.Chip.row_height

let manhattan d placement =
  (Metrics.displacement ~row_height:(row_height d) ~before:d.Design.global
     placement)
    .Metrics.total_manhattan

let delta_hpwl d placement =
  Hpwl.delta ~row_height:(row_height d) d.Design.nets ~before:d.Design.global
    placement
