(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation section (paper values printed alongside), runs the
   ablations, and finishes with Bechamel kernel timings.

   Environment:
     MCLH_SCALE   instance scale factor (default 0.04; 1.0 = paper size)
     MCLH_FAST    if set, run a 5-benchmark subset
     MCLH_ONLY    comma-separated subset of sections:
                  table1,table2,sec53,fig5,ablations,extensions,scaling,eco,
                  gp,serve,kernels *)

let sections =
  [ ("table1", Table1.run);
    ("table2", Table2.run);
    ("sec53", Sec53.run);
    ("fig5", Fig5.run);
    ("ablations", Ablations.run);
    ("extensions", Extensions.run);
    ("scaling", Scaling.run);
    ("eco", Eco.run);
    ("gp", Gp.run);
    ("serve", Serve.run);
    ("kernels", Kernels.run) ]

let () =
  let only =
    match Sys.getenv_opt "MCLH_ONLY" with
    | None -> None
    | Some s -> Some (String.split_on_char ',' s |> List.map String.trim)
  in
  Printf.printf
    "mclh benchmark harness — scale %g%s\n%!" Util.scale
    (if Util.fast_mode then " (fast mode)" else "");
  List.iter
    (fun (name, run) ->
      match only with
      | Some names when not (List.mem name names) -> ()
      | Some _ | None -> run ())
    sections;
  Printf.printf "\nDone.\n%!"
