(* Load test of the mclh serve daemon (lib/serve) — legalization as a
   service, end to end over a real Unix socket.

   A resident fleet of blockage-rich sessions (the ECO regime: many
   short segments, small dirty sets) is opened once; then N client
   threads, each on its own connection, fire M ECO-sized move batches
   at the fleet and time every request round trip. Afterwards each
   session's applied-batch log is fetched and replayed serially on a
   locally rebuilt Incr session of the same generated design — the
   served placements must be bit-identical to the serial replay, which
   is the whole correctness story of the concurrent daemon (coalescing,
   drainer queues and admission control may change *when* batches are
   applied, never what they compute).

   Reported: p50/p95/p99/mean round-trip latency, throughput,
   sessions-per-GB of peak RSS, coalescing and busy counters. A JSON
   snapshot lands in bench_out/BENCH_pr8.json for CI tracking. *)

open Mclh_circuit
open Mclh_serve

let position_diff (a : Placement.t) (b : Placement.t) =
  let open Mclh_linalg in
  Float.max
    (Vec.dist_inf a.Placement.xs b.Placement.xs)
    (Vec.dist_inf a.Placement.ys b.Placement.ys)

let bit_identical (a : Placement.t) (b : Placement.t) =
  let eq u v =
    Array.length u = Array.length v
    && Array.for_all2
         (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
         u v
  in
  eq a.Placement.xs b.Placement.xs && eq a.Placement.ys b.Placement.ys

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let blockages = 0.15

(* the fleet: name, generator bench, seed — a multi-design mix of
   small blockage-rich instances (the regime the Incr engine targets) *)
let fleet_specs fast =
  let all =
    [ ("s0", "fft_2", 1); ("s1", "fft_2", 7); ("s2", "pci_bridge32_a", 1);
      ("s3", "pci_bridge32_b", 1) ]
  in
  if fast then [ List.nth all 0; List.nth all 3 ] else all

(* an ECO edit is a handful of local moves, not a re-placement *)
let edits_per_batch = 4

(* paced load: clients think between batches like an interactive ECO
   loop. A zero-think closed loop on a box with few cores measures the
   queue, not the service — utilization here stays well under 1 so the
   reported p50 is the daemon's actual response time. *)
let think_s = 0.12

let open_source bench seed =
  Protocol.Generated
    { bench; scale = Util.scale; seed; blockages; tall = 0.0 }

let run () =
  Util.section "mclh serve: concurrent legalization-as-a-service (lib/serve)";
  let fleet = fleet_specs Util.fast_mode in
  let num_clients = if Util.fast_mode then 4 else 8 in
  let batches_per_client = if Util.fast_mode then 6 else 20 in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mclh-bench-%d.sock" (Unix.getpid ()))
  in
  let server = Server.create () in
  let addr = Server.start server (Protocol.Unix_sock sock) in
  Printf.printf "daemon on %s — %d sessions, %d clients x %d batches\n%!"
    (Protocol.pp_address addr) (List.length fleet) num_clients
    batches_per_client;

  (* resident fleet *)
  let admin = Client.connect addr in
  let sessions =
    List.map
      (fun (name, bench, seed) ->
        match Client.request admin (Open { session = name; source = open_source bench seed }) with
        | Protocol.Opened { cells; legal; init_s; _ } ->
          Printf.printf "  open %-4s %-16s %6d cells, legal %b, %.2fs\n%!"
            name bench cells legal init_s;
          assert legal;
          (name, bench, seed, cells)
        | r -> failwith ("open failed: " ^ Protocol.response_to_line r))
      fleet
  in
  (* one positions snapshot per session: clients aim their nudges at it.
     All batches are move-only (no renumbering), so ids stay valid no
     matter how the daemon interleaves them. *)
  let snapshots =
    List.map
      (fun (name, _, _, _) ->
        match Client.request admin (Query { session = name; what = Q_cells }) with
        | Protocol.Cells { xs; ys; _ } ->
          let bound a = Array.fold_left Float.max 1.0 a in
          (name, xs, ys, bound xs, bound ys)
        | r -> failwith ("query failed: " ^ Protocol.response_to_line r))
      sessions
  in
  let num_sessions = List.length sessions in
  let snap = Array.of_list snapshots in

  (* the load: each client round-robins the fleet starting at its own
     offset, sending 1%-of-cells move batches and timing round trips *)
  let clamp hi v = Float.min hi (Float.max 0.0 v) in
  let client_job id =
    let rng = Mclh_benchgen.Rng.create (1000 + id) in
    let conn = Client.connect addr in
    let latencies = ref [] in
    let busy = ref 0 in
    for b = 0 to batches_per_client - 1 do
      let name, xs, ys, max_x, max_y =
        snap.((id + b) mod num_sessions)
      in
      let n = Array.length xs in
      let edits =
        List.init edits_per_batch (fun _ ->
            let cell = Mclh_benchgen.Rng.int rng n in
            let x = clamp max_x (xs.(cell) +. (5.0 *. Mclh_benchgen.Rng.gaussian rng))
            and y = clamp max_y (ys.(cell) +. (0.75 *. Mclh_benchgen.Rng.gaussian rng)) in
            Mclh_incr.Edit.Move { cell; x; y })
      in
      let rec attempt tries =
        let t0 = Mclh_par.Clock.now () in
        match Client.request conn (Edit_batch { session = name; edits }) with
        | Protocol.Edited { stats; _ } ->
          latencies := (Mclh_par.Clock.now () -. t0) :: !latencies;
          assert stats.Mclh_incr.Incr.converged
        | Protocol.Failed { code = Protocol.Busy; _ } when tries < 50 ->
          incr busy;
          Thread.delay 0.002;
          attempt (tries + 1)
        | r -> failwith ("edit failed: " ^ Protocol.response_to_line r)
      in
      attempt 0;
      Thread.delay (think_s *. (0.5 +. Mclh_benchgen.Rng.float rng 1.0))
    done;
    Client.close conn;
    (!latencies, !busy)
  in
  let t0 = Mclh_par.Clock.now () in
  let slots = Array.make num_clients ([], 0) in
  let threads =
    List.init num_clients (fun id ->
        Thread.create (fun () -> slots.(id) <- client_job id) ())
  in
  List.iter Thread.join threads;
  let wall = Mclh_par.Clock.now () -. t0 in
  let latencies = List.concat_map fst (Array.to_list slots) in
  let client_busy = Array.fold_left (fun acc (_, b) -> acc + b) 0 slots in

  let sorted = Array.of_list latencies in
  Array.sort compare sorted;
  let ms x = 1000.0 *. x in
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99 in
  let mean =
    Array.fold_left ( +. ) 0.0 sorted /. float_of_int (max 1 (Array.length sorted))
  in
  let total_batches = Array.length sorted in
  let throughput = float_of_int total_batches /. wall in

  (* server-side accounting *)
  let applies, coalesced, srv_busy, errors, peak_rss_kb =
    match Client.request admin Protocol.Stats with
    | Protocol.Server_stats { applies; coalesced; busy; errors; peak_rss_kb; _ } ->
      (applies, coalesced, busy, errors, peak_rss_kb)
    | r -> failwith ("stats failed: " ^ Protocol.response_to_line r)
  in
  let sessions_per_gb =
    match peak_rss_kb with
    | Some kb when kb > 0 ->
      float_of_int num_sessions *. 1024.0 *. 1024.0 /. float_of_int kb
    | _ -> Float.nan
  in
  Printf.printf
    "%d batches in %.2fs — %.1f batches/s; latency p50 %.2fms p95 %.2fms \
     p99 %.2fms mean %.2fms\n%!"
    total_batches wall throughput (ms p50) (ms p95) (ms p99) (ms mean);
  Printf.printf
    "applies %d (coalesced riders %d), busy %d (client-observed %d), \
     errors %d, peak RSS %s — %.0f sessions/GB\n%!"
    applies coalesced srv_busy client_busy errors
    (match peak_rss_kb with Some kb -> Printf.sprintf "%d kB" kb | None -> "n/a")
    sessions_per_gb;

  (* serial-replay equivalence: rebuild each design locally, replay the
     applied-batch log in order, compare placements bit-exactly *)
  let worst = ref 0.0 in
  let all_identical = ref true in
  List.iter
    (fun (name, bench, seed, _) ->
      let log =
        match Client.request admin (Query { session = name; what = Q_log }) with
        | Protocol.Log { log; _ } -> log
        | r -> failwith ("log failed: " ^ Protocol.response_to_line r)
      in
      let served =
        match Client.request admin (Query { session = name; what = Q_cells }) with
        | Protocol.Cells { xs; ys; _ } -> Placement.make ~xs ~ys
        | r -> failwith ("cells failed: " ^ Protocol.response_to_line r)
      in
      let options =
        { Mclh_benchgen.Generate.default_options with
          seed;
          blockage_fraction = blockages;
          blockage_count = 32 }
      in
      let inst =
        Mclh_benchgen.Generate.generate ~options
          (Mclh_benchgen.Spec.scaled Util.scale (Mclh_benchgen.Spec.find bench))
      in
      let replay =
        Mclh_incr.Incr.create
          ~config:(Server.default_config.Server.incr_config)
          inst.Mclh_benchgen.Generate.design
      in
      List.iter
        (fun (_, edits) -> ignore (Mclh_incr.Incr.apply replay edits))
        log;
      let local = Mclh_incr.Incr.legal replay in
      let diff = position_diff served local in
      let ident = bit_identical served local in
      worst := Float.max !worst diff;
      all_identical := !all_identical && ident;
      Printf.printf "  replay %-4s: %3d applies, max |dpos| %.1e, bit-identical %b\n%!"
        name (List.length log) diff ident)
    sessions;
  if not !all_identical then
    Printf.printf "WARNING: served placement differs from serial replay!\n%!";

  List.iter
    (fun (name, _, _, _) ->
      ignore (Client.request admin (Close { session = name })))
    sessions;
  ignore (Client.request admin Protocol.Shutdown);
  Client.close admin;
  Server.stop server;

  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr8.json" in
  let open Mclh_report in
  Json.to_file ~path
    (Json.Obj
       [ ("benchmark", Json.String "serve_load");
         ("scale", Json.Float Util.scale);
         ("sessions", Json.Int num_sessions);
         ("fleet",
          Json.List
            (List.map (fun (_, b, _, _) -> Json.String b) sessions));
         ("clients", Json.Int num_clients);
         ("batches_per_client", Json.Int batches_per_client);
         ("edits_per_batch", Json.Int edits_per_batch);
         ("think_s", Json.Float think_s);
         ("batches", Json.Int total_batches);
         ("wall_s", Json.Float wall);
         ("throughput_batches_per_s", Json.Float throughput);
         ("latency_p50_ms", Json.Float (ms p50));
         ("latency_p95_ms", Json.Float (ms p95));
         ("latency_p99_ms", Json.Float (ms p99));
         ("latency_mean_ms", Json.Float (ms mean));
         ("applies", Json.Int applies);
         ("coalesced", Json.Int coalesced);
         ("busy", Json.Int srv_busy);
         ("errors", Json.Int errors);
         ("peak_rss_kb",
          (match peak_rss_kb with Some kb -> Json.Int kb | None -> Json.Null));
         ("sessions_per_gb", Json.Float sessions_per_gb);
         ("replay_max_diff", Json.Float !worst);
         ("bit_identical", Json.Bool !all_identical) ]);
  Printf.printf "serve snapshot written to %s\n%!" path
