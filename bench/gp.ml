(* Density-driven global placement benchmark (lib/gp + the pipeline).

   For each design family the full flow runs end to end: GP from the
   netlist (per-round HPWL/overflow curves recorded), MMSIM legalization
   of the honest overlapping output, detailed-placement refinement. The
   point of the exercise is Table-1 realism: GP inputs must arrive with
   hundreds of illegal cells (not the feasible-by-construction
   synthetics) and still leave the pipeline legal, with the dHPWL cost
   of legalization measured against the placer's fractional optimum.

   A JSON snapshot lands in bench_out/BENCH_pr10.json for CI tracking. *)

open Mclh_circuit
open Mclh_core

let families () =
  if Util.fast_mode then [ "fft_2"; "pci_bridge32_b"; "matrix_mult_a" ]
  else
    [ "fft_1"; "fft_2"; "fft_a"; "fft_b"; "pci_bridge32_a"; "pci_bridge32_b";
      "matrix_mult_1"; "matrix_mult_2"; "matrix_mult_a" ]

type outcome = {
  name : string;
  cells : int;
  grid : int;
  rounds : Mclh_gp.Gp.round list;
  illegal_pre : int;
  final_overflow : float;
  gp_hpwl : float;
  final_hpwl : float;
  dhpwl : float;  (* refined legal vs fractional GP *)
  legal : bool;
  gp_s : float;
  legalize_s : float;
  refine_s : float;
}

let run_one name =
  let inst = Util.instance name in
  let skeleton = inst.Mclh_benchgen.Generate.design in
  let rh = Util.row_height skeleton in
  let (gp, stats), gp_s =
    Mclh_par.Clock.timed (fun () -> Mclh_gp.Gp.place skeleton)
  in
  let design =
    Design.make ~blockages:skeleton.Design.blockages ~name
      ~chip:skeleton.Design.chip ~cells:skeleton.Design.cells ~global:gp
      ~nets:skeleton.Design.nets ()
  in
  let illegal_pre = Legality.count_illegal design gp in
  let report, legalize_s =
    Mclh_par.Clock.timed (fun () -> Runner.run Runner.Mmsim design)
  in
  let refined, refine_s =
    Mclh_par.Clock.timed (fun () ->
        fst (Mclh_refine.Refine.run design report.Runner.placement))
  in
  { name;
    cells = Design.num_cells design;
    grid = stats.Mclh_gp.Gp.grid;
    rounds = stats.Mclh_gp.Gp.rounds;
    illegal_pre;
    final_overflow = stats.Mclh_gp.Gp.final_overflow;
    gp_hpwl = stats.Mclh_gp.Gp.final_hpwl;
    final_hpwl = Hpwl.total ~row_height:rh design.Design.nets refined;
    dhpwl = Hpwl.delta ~row_height:rh design.Design.nets ~before:gp refined;
    legal = Legality.is_legal design refined;
    gp_s;
    legalize_s;
    refine_s }

let run () =
  Util.section "Density-driven global placement -> legalize -> refine (lib/gp)";
  let outcomes = Util.fanout ~label:"gp-pipeline" run_one (families ()) in
  Printf.printf "%-16s %7s %5s %7s %8s %9s %8s %6s %8s\n" "design" "cells"
    "grid" "rounds" "illegal" "overflow" "dHPWL" "legal" "time(s)";
  List.iter
    (fun o ->
      Printf.printf "%-16s %7d %5d %7d %8d %8.1f%% %+7.2f%% %6b %8.2f\n"
        o.name o.cells o.grid (List.length o.rounds) o.illegal_pre
        (100.0 *. o.final_overflow)
        (100.0 *. o.dhpwl)
        o.legal
        (o.gp_s +. o.legalize_s +. o.refine_s))
    outcomes;
  let all_legal = List.for_all (fun o -> o.legal) outcomes in
  let max_overflow =
    List.fold_left (fun acc o -> Float.max acc o.final_overflow) 0.0 outcomes
  in
  let min_illegal =
    List.fold_left (fun acc o -> min acc o.illegal_pre) max_int outcomes
  in
  Printf.printf
    "all legal %b; worst final overflow %.1f%%; min illegal pre %d\n%!"
    all_legal (100.0 *. max_overflow) min_illegal;
  Util.ensure_out_dir ();
  let path = Filename.concat Util.out_dir "BENCH_pr10.json" in
  let open Mclh_report in
  let design_json o =
    Json.Obj
      [ ("design", Json.String o.name);
        ("cells", Json.Int o.cells);
        ("grid", Json.Int o.grid);
        ( "rounds",
          Json.List
            (List.map
               (fun (r : Mclh_gp.Gp.round) ->
                 Json.Obj
                   [ ("round", Json.Int r.Mclh_gp.Gp.index);
                     ("alpha", Json.Float r.Mclh_gp.Gp.alpha);
                     ("hpwl", Json.Float r.Mclh_gp.Gp.hpwl);
                     ("overflow", Json.Float r.Mclh_gp.Gp.overflow);
                     ( "max_utilization",
                       Json.Float r.Mclh_gp.Gp.max_utilization );
                     ("cg_iterations", Json.Int r.Mclh_gp.Gp.cg_iterations) ])
               o.rounds) );
        ("illegal_pre", Json.Int o.illegal_pre);
        ("final_overflow", Json.Float o.final_overflow);
        ("gp_hpwl", Json.Float o.gp_hpwl);
        ("final_hpwl", Json.Float o.final_hpwl);
        ("delta_hpwl_vs_gp", Json.Float o.dhpwl);
        ("legal", Json.Bool o.legal);
        ("gp_s", Json.Float o.gp_s);
        ("legalize_s", Json.Float o.legalize_s);
        ("refine_s", Json.Float o.refine_s) ]
  in
  Json.to_file ~path
    (Json.Obj
       [ ("benchmark", Json.String "gp_pipeline");
         ("scale", Json.Float Util.scale);
         ("designs", Json.List (List.map design_json outcomes));
         ("all_legal", Json.Bool all_legal);
         ("max_final_overflow", Json.Float max_overflow);
         ("min_illegal_pre", Json.Int min_illegal) ]);
  Printf.printf "gp snapshot written to %s\n%!" path
