(* Ablations for the design choices DESIGN.md calls out:
   - lambda sweep: subcell mismatch and iterations vs the penalty factor;
   - beta/theta grid: convergence behaviour around the paper's 0.5/0.5
     (Theorem 2's bound check included);
   - Schur path: Sherman-Morrison closed form vs exact per-chain solves;
   - warm start on/off: iteration counts. *)

open Mclh_core
open Mclh_report

let bench_name = "fft_2"

let run () =
  Util.section "Ablations (fft_2)";
  let inst = Util.instance bench_name in
  let d = inst.Mclh_benchgen.Generate.design in
  let assignment = Row_assign.assign d in
  let model = Model.build d assignment in

  (* lambda sweep *)
  Printf.printf "\n--- lambda vs subcell mismatch (eps 1e-6) ---\n";
  let t =
    Table.create
      [ { Table.title = "lambda"; align = Table.Right };
        { title = "mismatch (sites)"; align = Right };
        { title = "iterations"; align = Right };
        { title = "converged"; align = Right } ]
  in
  List.iter
    (fun lambda ->
      let config =
        { Config.default with lambda; eps = 1e-6; max_iter = 100_000 }
      in
      let res = Solver.solve ~config model in
      Table.add_row t
        [ Printf.sprintf "%g" lambda;
          Printf.sprintf "%.2e" res.Solver.mismatch;
          string_of_int res.Solver.iterations;
          string_of_bool res.Solver.converged ])
    [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ];
  print_string (Table.render t);

  (* beta/theta grid *)
  Printf.printf "\n--- beta/theta grid (paper uses 0.5/0.5) ---\n";
  let t =
    Table.create
      [ { Table.title = "beta"; align = Table.Right };
        { title = "theta"; align = Right };
        { title = "iterations"; align = Right };
        { title = "converged"; align = Right };
        { title = "LCP residual"; align = Right };
        { title = "theta bound ok"; align = Right } ]
  in
  (* the LCP residual exposes premature iterate-change stops: a very small
     theta damps the steps so much that the z-change criterion fires while
     the complementarity residual is still large *)
  let lcp = Solver.lcp_problem model ~lambda:Config.default.Config.lambda in
  List.iter
    (fun (beta, theta) ->
      let config =
        { Config.default with beta; theta; eps = 1e-4; max_iter = 30_000;
          verify_bound = true; warm_start = false }
      in
      let res = Solver.solve ~config model in
      let z = Array.append res.Solver.x res.Solver.r in
      Table.add_row t
        [ Table.fmt_float 2 beta;
          Table.fmt_float 2 theta;
          string_of_int res.Solver.iterations;
          string_of_bool res.Solver.converged;
          Printf.sprintf "%.1e" (Mclh_lcp.Lcp.residual_inf lcp z);
          (match res.Solver.bound with
          | Some b -> string_of_bool b.Solver.theta_ok
          | None -> "-") ])
    [ (0.25, 0.25); (0.5, 0.25); (0.5, 0.5); (0.5, 0.75); (0.75, 0.5);
      (1.0, 0.5); (0.5, 1.0) ];
  print_string (Table.render t);

  (* Schur paths *)
  Printf.printf "\n--- Schur complement path (D assembly time) ---\n";
  let time f =
    let t0 = Mclh_par.Clock.now () in
    let reps = 50 in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Mclh_par.Clock.now () -. t0) /. float_of_int reps
  in
  let lambda = Config.default.Config.lambda in
  let t_sm =
    time (fun () -> Schur.tridiag ~path:Schur.Sherman_morrison model ~lambda)
  in
  let t_exact =
    time (fun () -> Schur.tridiag ~path:Schur.Exact_chains model ~lambda)
  in
  Printf.printf
    "Sherman-Morrison: %.4f ms    exact chains: %.4f ms    (both O(m); the\n\
     closed form avoids per-chain hash lookups)\n"
    (1e3 *. t_sm) (1e3 *. t_exact);

  (* warm start *)
  Printf.printf "\n--- warm start (Algorithm 1's s_0) ---\n";
  let run_ws warm_start =
    let config =
      { Config.default with warm_start; eps = 1e-6; max_iter = 200_000 }
    in
    let res, dt = Mclh_par.Clock.timed (fun () -> Solver.solve ~config model) in
    (res.Solver.iterations, res.Solver.converged, dt)
  in
  let it_plain, conv_plain, t_plain = run_ws false in
  let it_warm, conv_warm, t_warm = run_ws true in
  Printf.printf
    "plain start (z_0 = x'): %d iterations (converged %b, %.2fs)\n\
     PlaceRow warm start:    %d iterations (converged %b, %.2fs)\n%!"
    it_plain conv_plain t_plain it_warm conv_warm t_warm
