(* Table 2: total displacement, dHPWL and runtime for the four legalizers,
   with the paper's reported values and normalized averages. *)

open Mclh_core
open Mclh_report

let algorithms =
  [ Runner.Greedy_dac16; Runner.Greedy_dac16_improved; Runner.Abacus_multirow;
    Runner.Mmsim ]

type measured = {
  name : string;
  disp : float array;  (* per algorithm, paper column order *)
  dhpwl : float array;
  runtime : float array;
}

let measure name =
  let inst = Util.instance name in
  let d = inst.Mclh_benchgen.Generate.design in
  (* run_all fans (design, algorithm) jobs over the pool when called at
     top level; under the bench fan-out the pool is busy and it runs the
     four algorithms sequentially inside this job *)
  let reports = List.hd (Runner.run_all ~algorithms [ d ]) in
  { name;
    disp =
      Array.of_list
        (List.map (fun r -> r.Runner.displacement.Mclh_circuit.Metrics.total_manhattan) reports);
    dhpwl = Array.of_list (List.map (fun r -> r.Runner.delta_hpwl) reports);
    runtime = Array.of_list (List.map (fun r -> r.Runner.runtime_s) reports) }

let norm_averages rows extract =
  (* mean over benchmarks of column / "Ours" column, as the paper's last row *)
  List.init 4 (fun c ->
      let ratios =
        List.filter_map
          (fun row ->
            let v = extract row in
            if v.(3) = 0.0 then None else Some (v.(c) /. v.(3)))
          rows
      in
      if ratios = [] then 0.0
      else List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios))

let run () =
  Util.section
    (Printf.sprintf
       "Table 2 - displacement / dHPWL / runtime, four legalizers (scale %g)"
       Util.scale);
  let rows = Util.fanout ~label:"table2 fan-out" measure (Util.benchmarks ()) in
  let mk_table title fmt extract paper_extract =
    Printf.printf "\n--- %s ---\n" title;
    let table =
      Table.create
        [ { Table.title = "Benchmark"; align = Table.Left };
          { title = "DAC'16"; align = Right };
          { title = "DAC'16-Imp"; align = Right };
          { title = "ASP-DAC'17"; align = Right };
          { title = "Ours"; align = Right };
          { title = "paper DAC'16"; align = Right };
          { title = "paper ASP"; align = Right };
          { title = "paper Ours"; align = Right } ]
    in
    List.iter
      (fun row ->
        let v = extract row in
        let p1, _, p3, p4 =
          match
            List.find_opt (fun (p : Paper_data.table2_row) -> p.name = row.name)
              Paper_data.table2
          with
          | Some p -> paper_extract p
          | None -> (0.0, 0.0, 0.0, 0.0)
        in
        Table.add_row table
          [ row.name; fmt v.(0); fmt v.(1); fmt v.(2); fmt v.(3); fmt p1;
            fmt p3; fmt p4 ])
      rows;
    Table.add_separator table;
    let na = norm_averages rows extract in
    Table.add_row table
      ([ "N.Average (ours = 1.00)" ]
      @ List.map (Table.fmt_float 2) na
      @ [ "-"; "-"; "-" ]);
    print_string (Table.render table)
  in
  mk_table "Total displacement (sites)" Table.fmt_int
    (fun r -> r.disp)
    (fun p -> p.Paper_data.disp);
  mk_table "dHPWL (%)"
    (fun v -> Table.fmt_float 3 (100.0 *. v))
    (fun r -> r.dhpwl)
    (fun p ->
      let a, b, c, d = p.Paper_data.dhpwl_pct in
      (a /. 100.0, b /. 100.0, c /. 100.0, d /. 100.0));
  mk_table "Runtime (s)"
    (fun v -> Table.fmt_float 2 v)
    (fun r -> r.runtime)
    (fun p -> p.Paper_data.runtime_s);
  (* decomposition report: component structure of each design's LCP and
     the end-to-end solve speedup of the component-parallel path. Runs
     sequentially over benchmarks so the solver's own shard fan-out owns
     the pool (under Util.fanout it would find the pool busy). *)
  Printf.printf "\n--- LCP decomposition (domain pool: %d) ---\n"
    (Mclh_par.Pool.size (Util.pool ()));
  let dtable =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "n+m"; align = Right };
        { title = "components"; align = Right };
        { title = "largest"; align = Right };
        { title = "shards"; align = Right };
        { title = "mono (s)"; align = Right };
        { title = "decomp (s)"; align = Right };
        { title = "speedup"; align = Right };
        { title = "max|dx|"; align = Right } ]
  in
  List.iter
    (fun name ->
      let inst = Util.instance name in
      let d = inst.Mclh_benchgen.Generate.design in
      let assignment = Row_assign.assign d in
      let model = Model.build d assignment in
      let deco = Decompose.analyze model in
      (* best of three: at FAST scales the solves take milliseconds, where
         a single timing is dominated by GC and scheduler noise *)
      let timed_best f =
        let result = ref None and t = ref infinity in
        for _ = 1 to 3 do
          let r, ti = Mclh_par.Clock.timed f in
          if ti < !t then t := ti;
          result := Some r
        done;
        (Option.get !result, !t)
      in
      let mono, t_mono =
        timed_best (fun () ->
            Solver.solve ~config:{ Config.default with decompose = false } model)
      in
      let dec, t_dec = timed_best (fun () -> Solver.solve model) in
      let diff =
        Mclh_linalg.Vec.dist_inf
          (Model.placement_of model mono.Solver.x).Mclh_circuit.Placement.xs
          (Model.placement_of model dec.Solver.x).Mclh_circuit.Placement.xs
      in
      Table.add_row dtable
        [ name;
          string_of_int (model.Model.nvars + Model.num_constraints model);
          string_of_int (Decompose.num_components deco);
          string_of_int (Decompose.largest_dim deco);
          string_of_int (Decompose.num_shards deco);
          Table.fmt_float 3 t_mono;
          Table.fmt_float 3 t_dec;
          Printf.sprintf "%.2fx" (if t_dec > 0.0 then t_mono /. t_dec else 1.0);
          Printf.sprintf "%.1e" diff ])
    (Util.benchmarks ());
  print_string (Table.render dtable);
  print_string
    "(max|dx| compares two eps-accurate solutions that stop on different\n\
    \ schedules: each component converges on its own instead of riding the\n\
    \ global maximum. Driven to eps = 1e-10 the paths agree to <= 1e-9;\n\
    \ test_decompose.ml pins that down.)\n";
  let p1, p2, p3, p4 = Paper_data.table2_norm_disp in
  Printf.printf
    "\npaper N.Average  disp: %.2f %.2f %.2f %.2f" p1 p2 p3 p4;
  let h1, h2, h3, h4 = Paper_data.table2_norm_dhpwl in
  Printf.printf "   dHPWL: %.2f %.2f %.2f %.2f" h1 h2 h3 h4;
  let r1, r2, r3, r4 = Paper_data.table2_norm_runtime in
  Printf.printf "   runtime: %.2f %.2f %.2f %.2f\n%!" r1 r2 r3 r4;
  (* export a CSV for downstream analysis *)
  Util.ensure_out_dir ();
  Csv.write_file
    ~path:(Filename.concat Util.out_dir "table2.csv")
    ~header:
      [ "benchmark"; "disp_dac16"; "disp_dac16imp"; "disp_aspdac17"; "disp_ours";
        "dhpwl_dac16"; "dhpwl_dac16imp"; "dhpwl_aspdac17"; "dhpwl_ours";
        "time_dac16"; "time_dac16imp"; "time_aspdac17"; "time_ours" ]
    (List.map
       (fun r ->
         [ r.name ]
         @ (Array.to_list r.disp |> List.map (Printf.sprintf "%.1f"))
         @ (Array.to_list r.dhpwl |> List.map (Printf.sprintf "%.6f"))
         @ (Array.to_list r.runtime |> List.map (Printf.sprintf "%.3f")))
       rows);
  Printf.printf "CSV written to %s/table2.csv\n%!" Util.out_dir
