(* The paper's running examples, end to end:

   - Figure 2's single-row-height placement and its constraint matrix B;
   - Figure 3's mixed-height placement, the subcell split, and the E matrix
     of Problem (12);
   - the KKT -> LCP conversion (Equation (15)) and its solution by the
     MMSIM (Algorithm 1), verified against the dense active-set oracle.

     dune exec examples/paper_example.exe *)

open Mclh_linalg
open Mclh_circuit
open Mclh_core

let print_dense name d =
  Format.printf "%s =@.%a@.@." name Dense.pp d

let cell ?rail ~id ~name ~w ~h () =
  Cell.make ~id ~name ~width:w ~height:h ?bottom_rail:rail ()

let () =
  (* ----- Figure 2: five single-height cells in two rows ----- *)
  Format.printf "=== Figure 2: single-row-height cells ===@.@.";
  let chip = Chip.make ~num_rows:2 ~num_sites:40 () in
  let cells =
    [| cell ~id:0 ~name:"c1" ~w:2 ~h:1 ();
       cell ~id:1 ~name:"c2" ~w:3 ~h:1 ();
       cell ~id:2 ~name:"c3" ~w:4 ~h:1 ();
       cell ~id:3 ~name:"c4" ~w:2 ~h:1 ();
       cell ~id:4 ~name:"c5" ~w:2 ~h:1 () |]
  in
  let design =
    Design.make ~name:"figure2" ~chip ~cells
      ~global:
        (Placement.make ~xs:[| 1.0; 2.0; 6.0; 8.0; 12.0 |]
           ~ys:[| 1.0; 0.0; 1.0; 0.0; 1.0 |])
      ~nets:(Netlist.empty ~num_cells:5) ()
  in
  let model = Model.build design (Row_assign.assign design) in
  print_dense "B (c2,c4 in row 0; c1,c3,c5 in row 1)" (Csr.to_dense (Model.b_mat model));
  Format.printf "b = %a@.@." Vec.pp model.Model.b_rhs;

  (* ----- Figure 3: mixed heights, subcell splitting ----- *)
  Format.printf "=== Figure 3: mixed-cell-height cells ===@.@.";
  let cells =
    [| cell ~rail:Rail.Vss ~id:0 ~name:"c1" ~w:2 ~h:2 ();
       cell ~id:1 ~name:"c2" ~w:3 ~h:1 ();
       cell ~rail:Rail.Vss ~id:2 ~name:"c3" ~w:2 ~h:2 () |]
  in
  let design =
    Design.make ~name:"figure3" ~chip ~cells
      ~global:
        (Placement.make ~xs:[| 1.0; 4.0; 8.0 |] ~ys:[| 0.0; 0.0; 0.0 |])
      ~nets:(Netlist.empty ~num_cells:3) ()
  in
  let model = Model.build design (Row_assign.assign design) in
  Format.printf
    "variables: x = [c1 row0; c1 row1; c2; c3 row0; c3 row1] (subcell split)@.@.";
  print_dense "B" (Csr.to_dense (Model.b_mat model));
  print_dense "E (x of each double's two subcells must match)"
    (Csr.to_dense (Blocks.e_matrix model.Model.blocks));

  (* ----- the LCP and its MMSIM solution ----- *)
  Format.printf "=== Equation (15): KKT as an LCP, solved by Algorithm 1 ===@.@.";
  let lambda = Config.default.Config.lambda in
  let lcp = Solver.lcp_problem model ~lambda in
  Format.printf "LCP dimension: %d (n = %d subcell vars + m = %d constraints)@."
    (Mclh_lcp.Lcp.dim lcp) model.Model.nvars (Model.num_constraints model);
  let res = Solver.solve ~config:{ Config.default with eps = 1e-10 } model in
  Format.printf "MMSIM: %d iterations, converged %b@." res.Solver.iterations
    res.Solver.converged;
  Format.printf "subcell positions x = %a@." Vec.pp res.Solver.x;
  Format.printf "multipliers      r = %a@." Vec.pp res.Solver.r;
  let z = Array.append res.Solver.x res.Solver.r in
  Format.printf "LCP residual: %.2e@.@." (Mclh_lcp.Lcp.residual_inf lcp z);

  (* oracle cross-check (Theorem 1: QP optimum == LCP solution) *)
  let qp = Model.to_qp model ~lambda in
  let oracle = Mclh_qp.Active_set.solve ~x0:(Model.packed_start model) qp in
  Format.printf "active-set oracle x = %a@." Vec.pp oracle.Mclh_qp.Active_set.x;
  Format.printf "objective: MMSIM %.6f vs oracle %.6f@."
    (Mclh_qp.Qp.objective qp res.Solver.x)
    (Mclh_qp.Qp.objective qp oracle.Mclh_qp.Active_set.x);

  (* ----- and the full legal placement ----- *)
  let legal = Flow.legalize design in
  Format.printf "@.legalized (x, row):@.";
  Array.iter
    (fun (c : Cell.t) ->
      Format.printf "  %s -> (%.0f, %.0f)@." c.Cell.name
        legal.Placement.xs.(c.Cell.id) legal.Placement.ys.(c.Cell.id))
    design.Design.cells;
  assert (Legality.is_legal design legal)
