(* The complete physical-design slice, end to end on one netlist:

     analytical global placement (quadratic + lookahead anchoring)
       -> the paper's MMSIM legalization
         -> detailed-placement refinement

   The netlist/cell mix comes from the synthetic fft_2 spec; the
   generator's own placement is discarded — the global placer starts
   from scratch.

     dune exec examples/full_pipeline.exe *)

open Mclh_circuit
open Mclh_benchgen
open Mclh_core

let () =
  let inst = Generate.generate_named ~scale:0.02 "fft_2" in
  let skeleton = inst.Generate.design in
  let rh = skeleton.Design.chip.Chip.row_height in
  Printf.printf "netlist: %d cells, %d nets\n\n"
    (Design.num_cells skeleton)
    (Netlist.num_nets skeleton.Design.nets);

  (* 1. density-driven global placement from scratch *)
  let gp, gp_stats = Mclh_gp.Gp.place skeleton in
  Printf.printf "global placement (%d density rounds, %dx%d grid):\n"
    (List.length gp_stats.Mclh_gp.Gp.rounds)
    gp_stats.Mclh_gp.Gp.grid gp_stats.Mclh_gp.Gp.grid;
  List.iter
    (fun (r : Mclh_gp.Gp.round) ->
      if (r.index - 1) mod 3 = 0 then
        Printf.printf "  round %2d: alpha %-8.3f HPWL %-9.0f overflow %.1f%%\n"
          r.index r.alpha r.hpwl (100.0 *. r.overflow))
    gp_stats.rounds;
  Printf.printf "  final GP HPWL: %.0f (overflow %.1f%%)\n\n"
    gp_stats.final_hpwl
    (100.0 *. gp_stats.final_overflow);

  (* 2. the paper's legalization flow on the GP output *)
  let design =
    Design.make ~blockages:skeleton.Design.blockages ~name:"pipeline"
      ~chip:skeleton.Design.chip ~cells:skeleton.Design.cells ~global:gp
      ~nets:skeleton.Design.nets ()
  in
  let result = Flow.run design in
  assert (Legality.is_legal design result.Flow.legal);
  let disp =
    Metrics.displacement ~row_height:rh ~before:gp result.Flow.legal
  in
  Printf.printf "legalization (MMSIM): %d iterations, %d repairs\n"
    result.Flow.solver.Solver.iterations
    (Flow.illegal_after_mmsim result);
  Printf.printf "  displacement %.1f sites (%.2f per cell), dHPWL %+.2f%%\n\n"
    disp.Metrics.total_manhattan
    (Metrics.avg_manhattan disp (Design.num_cells design))
    (100.0
    *. Hpwl.delta ~row_height:rh design.Design.nets ~before:gp result.Flow.legal);

  (* 3. detailed placement on top *)
  let refined, stats = Mclh_refine.Refine.run design result.Flow.legal in
  assert (Legality.is_legal design refined);
  Printf.printf "refinement: HPWL %.0f -> %.0f (%.1f%%)\n"
    stats.Mclh_refine.Refine.hpwl_before stats.hpwl_after
    (100.0 *. Mclh_refine.Refine.improvement stats);

  Svg.write_file ~path:"full_pipeline.svg" design refined;
  Printf.printf "\nfinal layout written to full_pipeline.svg\n"
