(* Shared harness plumbing: scale selection, instance cache, output dir. *)

open Mclh_circuit
open Mclh_benchgen

let scale =
  match Sys.getenv_opt "MCLH_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.04)
  | None -> 0.04

let fast_mode = Sys.getenv_opt "MCLH_FAST" <> None

let out_dir = "bench_out"

let ensure_out_dir () =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755

let section title =
  let bar = String.make 72 '=' in
  Printf.printf "\n%s\n== %s\n%s\n%!" bar title bar

let benchmarks () =
  if fast_mode then
    [ "des_perf_1"; "fft_1"; "fft_2"; "pci_bridge32_b"; "matrix_mult_a" ]
  else Spec.names

(* instances are expensive to generate at full scale; cache per run.
   Access is mutex-protected because the harness fans benchmarks out over
   domains. *)
let cache : (string, Generate.instance) Hashtbl.t = Hashtbl.create 32
let cache_lock = Mutex.create ()

let instance ?(single_height = false) name =
  let key = Printf.sprintf "%s/%b" name single_height in
  let cached =
    Mutex.lock cache_lock;
    let v = Hashtbl.find_opt cache key in
    Mutex.unlock cache_lock;
    v
  in
  match cached with
  | Some inst -> inst
  | None ->
    let options =
      { Generate.default_options with single_height_only = single_height }
    in
    let inst = Generate.generate ~options (Spec.scaled scale (Spec.find name)) in
    Mutex.lock cache_lock;
    if not (Hashtbl.mem cache key) then Hashtbl.replace cache key inst;
    Mutex.unlock cache_lock;
    inst

(* deterministic parallel map over independent benchmark jobs: results come
   back in input order whatever the scheduling *)
let parallel_map f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let domains =
    match Sys.getenv_opt "MCLH_DOMAINS" with
    | Some s -> (try max 1 (int_of_string s) with _ -> 1)
    | None -> max 1 (min 8 (Domain.recommended_domain_count () - 1))
  in
  if domains <= 1 || n <= 1 then Array.to_list (Array.map f arr)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> failwith "parallel_map: missing result")
         results)
  end

let row_height (d : Design.t) = d.Design.chip.Chip.row_height

let manhattan d placement =
  (Metrics.displacement ~row_height:(row_height d) ~before:d.Design.global
     placement)
    .Metrics.total_manhattan

let delta_hpwl d placement =
  Hpwl.delta ~row_height:(row_height d) d.Design.nets ~before:d.Design.global
    placement
