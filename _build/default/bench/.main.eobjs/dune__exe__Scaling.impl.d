bench/scaling.ml: Design Flow Generate Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_report Model Printf Solver Spec Table Util
