bench/fig5.ml: Chip Design Filename Flow Legality Mclh_benchgen Mclh_circuit Mclh_core Order Printf Svg Util
