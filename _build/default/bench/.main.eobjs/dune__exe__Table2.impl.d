bench/table2.ml: Array Csv Filename List Mclh_benchgen Mclh_circuit Mclh_core Mclh_report Paper_data Printf Runner Table Util
