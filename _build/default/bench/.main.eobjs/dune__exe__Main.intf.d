bench/main.mli:
