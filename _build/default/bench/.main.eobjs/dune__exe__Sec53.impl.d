bench/sec53.ml: Abacus Config Design Float List Mclh_benchgen Mclh_circuit Mclh_core Mclh_report Metrics Model Paper_data Printf Row_assign Solver String Sys Table Tetris_alloc Util
