bench/table1.ml: Design Flow Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_report Paper_data Printf Solver Table Util
