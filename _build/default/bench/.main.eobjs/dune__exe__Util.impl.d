bench/util.ml: Array Atomic Chip Design Domain Generate Hashtbl Hpwl List Mclh_benchgen Mclh_circuit Metrics Mutex Printf Spec String Sys
