bench/extensions.ml: Array Cell Design Generate Legality List Mclh_benchgen Mclh_circuit Mclh_core Mclh_refine Mclh_report Metrics Printf Runner Spec String Table Util
