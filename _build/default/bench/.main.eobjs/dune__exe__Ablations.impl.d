bench/ablations.ml: Array Config List Mclh_benchgen Mclh_core Mclh_lcp Mclh_report Model Printf Row_assign Schur Solver Sys Table Util
