bench/main.ml: Ablations Extensions Fig5 Kernels List Printf Scaling Sec53 String Sys Table1 Table2 Util
