(* The paper's reported results, transcribed from Tables 1 and 2 and
   Section 5.3, printed next to our measured values so every run records
   paper-vs-measured without consulting the PDF. *)

type table2_row = {
  name : string;
  gp_hpwl_m : float;
  disp : float * float * float * float;  (* DAC'16, DAC'16-Imp, ASP-DAC'17, Ours *)
  dhpwl_pct : float * float * float * float;
  runtime_s : float * float * float * float;
}

let table2 =
  let row name gp d1 d2 d3 d4 h1 h2 h3 h4 r1 r2 r3 r4 =
    { name;
      gp_hpwl_m = gp;
      disp = (d1, d2, d3, d4);
      dhpwl_pct = (h1, h2, h3, h4);
      runtime_s = (r1, r2, r3, r4) }
  in
  [ row "des_perf_1" 1.43 373978. 279545. 474789. 242622. 2.85 1.77 0.99 1.12 7.2 6.1 7.5 2.4;
    row "des_perf_a" 2.57 103956. 81452. 73057. 72561. 0.28 0.16 0.12 0.07 2.6 2.5 3.8 2.3;
    row "des_perf_b" 2.13 95747. 81540. 72429. 71888. 0.31 0.21 0.16 0.08 2.4 2.2 3.9 2.3;
    row "edit_dist_a" 5.25 59884. 59814. 60971. 62961. 0.10 0.10 0.12 0.09 1.9 1.8 4.9 2.8;
    row "fft_1" 0.46 58429. 54501. 53389. 46121. 1.66 1.47 0.89 0.87 1.1 1.0 1.3 0.7;
    row "fft_2" 0.46 27762. 25697. 21018. 20979. 0.87 0.73 0.67 0.51 0.4 0.4 1.1 0.6;
    row "fft_a" 0.75 19600. 19613. 18150. 18304. 0.33 0.33 0.29 0.24 0.3 0.2 1.2 0.6;
    row "fft_b" 0.95 24500. 28461. 21234. 21671. 0.33 0.18 0.30 0.27 0.4 0.4 1.2 0.6;
    row "matrix_mult_1" 2.39 82322. 80235. 73682. 71793. 0.28 0.27 0.21 0.21 3.9 4.0 5.4 3.6;
    row "matrix_mult_2" 2.59 76109. 75810. 65959. 65876. 0.22 0.21 0.17 0.17 4.0 4.2 5.4 3.7;
    row "matrix_mult_a" 3.77 49385. 46001. 40736. 40298. 0.14 0.11 0.09 0.08 1.6 1.6 5.7 3.4;
    row "matrix_mult_b" 3.43 43931. 40059. 37243. 37215. 0.13 0.10 0.09 0.08 1.3 1.2 5.6 3.2;
    row "matrix_mult_c" 3.29 42466. 42490. 40942. 40710. 0.11 0.11 0.11 0.09 1.4 1.4 5.6 3.2;
    row "pci_bridge32_a" 0.46 28041. 27832. 26674. 26289. 0.58 0.57 0.63 0.45 0.3 0.3 1.2 0.6;
    row "pci_bridge32_b" 0.98 27757. 27864. 26160. 26028. 0.13 0.13 0.06 0.05 0.2 0.2 1.0 0.4;
    row "superblue11_a" 42.94 1795695. 1786342. 1983090. 1742941. 0.15 0.15 0.26 0.16 23.4 29.7 50.3 26.3;
    row "superblue12" 39.23 2097725. 2015678. 1995140. 1963403. 0.22 0.20 0.22 0.21 106.5 103.6 56.5 38.6;
    row "superblue14" 27.98 1604077. 1599810. 1497490. 1566966. 0.22 0.22 0.18 0.23 17.1 16.7 48.1 17.7;
    row "superblue16_a" 31.35 1177179. 1173106. 1147530. 1135186. 0.12 0.11 0.11 0.11 21.7 20.7 41.8 18.7;
    row "superblue19" 20.76 809755. 806529. 808164. 781928. 0.14 0.14 0.13 0.12 10.9 10.5 29.6 13.2 ]

(* last row of Table 2: normalized averages relative to "Ours" *)
let table2_norm_disp = (1.16, 1.10, 1.06, 1.00)
let table2_norm_dhpwl = (1.72, 1.41, 1.22, 1.00)
let table2_norm_runtime = (1.02, 0.97, 1.96, 1.00)

(* Table 1: illegal cells after the MMSIM stage *)
let table1_illegal =
  [ ("des_perf_1", 902); ("des_perf_a", 11); ("des_perf_b", 6);
    ("edit_dist_a", 20); ("fft_1", 183); ("fft_2", 2); ("fft_a", 2);
    ("fft_b", 10); ("matrix_mult_1", 88); ("matrix_mult_2", 62);
    ("matrix_mult_a", 3); ("matrix_mult_b", 7); ("matrix_mult_c", 2);
    ("pci_bridge32_a", 0); ("pci_bridge32_b", 0); ("superblue11_a", 40);
    ("superblue12", 89); ("superblue14", 264); ("superblue16_a", 42);
    ("superblue19", 62) ]

(* Section 5.3: single-row-height optimality validation *)
let sec53_speedup = 1.51
let sec53_examples =
  [ ("des_perf_1", 58850.); ("superblue12", 1618580.); ("pci_bridge32_b", 2023.) ]
