(* Extensions beyond the paper's evaluation:
   - taller cells (triple/quadruple height): the exact per-chain Schur path
     replaces the Sherman-Morrison closed form, everything else unchanged;
   - blockages (fixed obstacles): the model shifts variables by row-segment
     left walls; the comparison re-runs with 15% of the chip blocked;
   - post-legalization detailed placement: HPWL recovered by the refinement
     on top of each legalizer. *)

open Mclh_circuit
open Mclh_core
open Mclh_benchgen
open Mclh_report

let bench_names = [ "fft_2"; "des_perf_1"; "matrix_mult_a" ]

let algorithms =
  [ Runner.Mmsim; Runner.Greedy_dac16_improved; Runner.Abacus_multirow ]

let comparison_table title options =
  Printf.printf "\n--- %s ---\n" title;
  let table =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "heights"; align = Left };
        { title = "#blockages"; align = Right };
        { title = "Ours"; align = Right };
        { title = "DAC'16-Imp"; align = Right };
        { title = "ASP-DAC'17"; align = Right };
        { title = "all legal"; align = Right } ]
  in
  List.iter
    (fun name ->
      let inst = Generate.generate ~options (Spec.scaled Util.scale (Spec.find name)) in
      let d = inst.Generate.design in
      let reports = List.map (fun alg -> Runner.run alg d) algorithms in
      let disp r = Table.fmt_int r.Runner.displacement.Metrics.total_manhattan in
      let heights =
        Design.count_by_height d
        |> List.map (fun (h, c) -> Printf.sprintf "%dx%d" c h)
        |> String.concat " "
      in
      match reports with
      | [ ours; dac16imp; aspdac ] ->
        Table.add_row table
          [ name;
            heights;
            string_of_int (Array.length d.Design.blockages);
            disp ours;
            disp dac16imp;
            disp aspdac;
            string_of_bool (List.for_all (fun r -> r.Runner.legal) reports) ]
      | _ -> assert false)
    bench_names;
  print_string (Table.render table)

let refine_table () =
  Printf.printf "\n--- detailed-placement refinement (HPWL recovered) ---\n";
  let table =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "legalizer"; align = Left };
        { title = "HPWL before"; align = Right };
        { title = "HPWL after"; align = Right };
        { title = "gain"; align = Right };
        { title = "moves/swaps/reorders"; align = Right } ]
  in
  List.iter
    (fun name ->
      let inst = Util.instance name in
      let d = inst.Generate.design in
      List.iter
        (fun alg ->
          let r = Runner.run alg d in
          let _, stats = Mclh_refine.Refine.run d r.Runner.placement in
          Table.add_row table
            [ name;
              Runner.name alg;
              Table.fmt_int stats.Mclh_refine.Refine.hpwl_before;
              Table.fmt_int stats.hpwl_after;
              Table.fmt_pct 2 (Mclh_refine.Refine.improvement stats);
              Printf.sprintf "%d/%d/%d" stats.moves stats.swaps stats.reorders ])
        [ Runner.Mmsim; Runner.Abacus_multirow ])
    bench_names;
  print_string (Table.render table);
  Printf.printf
    "(the synthetic global placements are not wirelength-optimized, so the\n\
    \ refinement recovers far more HPWL than it would on a real GP input)\n"

let fence_table () =
  Printf.printf "\n--- fence regions (territorial decomposition) ---\n";
  let table =
    Table.create
      [ { Table.title = "Benchmark"; align = Table.Left };
        { title = "fences"; align = Right };
        { title = "members"; align = Right };
        { title = "territories"; align = Right };
        { title = "disp (sites)"; align = Right };
        { title = "legal"; align = Right } ]
  in
  List.iter
    (fun name ->
      let options = { Generate.default_options with fence_count = 2 } in
      let inst =
        Generate.generate ~options (Spec.scaled Util.scale (Spec.find name))
      in
      let d = inst.Generate.design in
      let members =
        Array.fold_left
          (fun acc (c : Cell.t) -> if c.Cell.region <> None then acc + 1 else acc)
          0 d.Design.cells
      in
      let legal, stats = Mclh_core.Fence.legalize d in
      Table.add_row table
        [ name;
          string_of_int (Array.length d.Design.regions);
          string_of_int members;
          string_of_int stats.Mclh_core.Fence.territories;
          Table.fmt_float 0 (Util.manhattan d legal);
          string_of_bool (Legality.is_legal d legal) ])
    bench_names;
  print_string (Table.render table)

let run () =
  Util.section "Extensions - taller cells, blockages, fences, refinement";
  comparison_table "taller cells (40% of the doubled cells become 3x/4x)"
    { Generate.default_options with tall_cell_fraction = 0.4 };
  comparison_table "blockages (15% of the chip area blocked)"
    { Generate.default_options with blockage_fraction = 0.15 };
  fence_table ();
  refine_table ()
