(* Figure 5: the legalized layout of fft_2 — cells in blue, displacement in
   red — plus the zoomed partial layout that shows cell order preservation. *)

open Mclh_circuit
open Mclh_core

let run () =
  Util.section "Figure 5 - legalization result of fft_2 (SVG)";
  Util.ensure_out_dir ();
  let inst = Util.instance "fft_2" in
  let d = inst.Mclh_benchgen.Generate.design in
  let res = Flow.run d in
  let full = Filename.concat Util.out_dir "fig5a_fft2.svg" in
  Svg.write_file ~path:full d res.Flow.legal;
  (* zoom on the chip centre: roughly 1/8 of each dimension, as the paper's
     partial layout *)
  let chip = d.Design.chip in
  let cx = float_of_int chip.Chip.num_sites /. 2.0
  and cy = float_of_int chip.Chip.num_rows /. 2.0 in
  let wx = float_of_int chip.Chip.num_sites /. 16.0
  and wy = float_of_int chip.Chip.num_rows /. 16.0 in
  let zoom = Filename.concat Util.out_dir "fig5b_fft2_zoom.svg" in
  Svg.write_file
    ~options:
      { Svg.default_options with
        window = Some (cx -. wx, cy -. wy, cx +. wx, cy +. wy);
        pixels_per_site = 16.0;
        pixels_per_row = 32.0 }
    ~path:zoom d res.Flow.legal;
  Printf.printf "wrote %s (full chip) and %s (partial layout)\n" full zoom;
  Printf.printf "cells: %d, legal: %b\n" (Design.num_cells d)
    (Legality.is_legal d res.Flow.legal);
  Printf.printf
    "order preservation (adjacent same-row pairs in global x-order): %.4f\n\
     (the paper's Figure 5(b) argues this is ~1.0 for its flow)\n%!"
    (Order.preservation d res.Flow.legal)
