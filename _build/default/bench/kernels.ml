(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   measuring the computational kernel that regenerates it on a small
   fixed instance (so the statistics are stable and fast). *)

open Bechamel
open Toolkit
open Mclh_core

let kernel_instance () =
  (* one small instance reused by every kernel *)
  Mclh_benchgen.Generate.generate
    (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))

let tests () =
  let inst = kernel_instance () in
  let d = inst.Mclh_benchgen.Generate.design in
  let assignment = Row_assign.assign d in
  let model = Model.build d assignment in
  let single =
    Mclh_benchgen.Generate.generate
      ~options:
        { Mclh_benchgen.Generate.default_options with single_height_only = true }
      (Mclh_benchgen.Spec.scaled 0.005 (Mclh_benchgen.Spec.find "fft_2"))
  in
  let sd = single.Mclh_benchgen.Generate.design in
  let s_assignment = Row_assign.assign sd in
  [ (* Table 1: the MMSIM flow that produces the illegal-cell counts *)
    Test.make ~name:"table1/mmsim_flow"
      (Staged.stage (fun () -> ignore (Flow.run d)));
    (* Table 2: one kernel per comparison column *)
    Test.make ~name:"table2/ours"
      (Staged.stage (fun () -> ignore (Solver.solve model)));
    Test.make ~name:"table2/dac16"
      (Staged.stage (fun () ->
           ignore (Greedy_cpy.legalize ~options:Greedy_cpy.default d)));
    Test.make ~name:"table2/aspdac17"
      (Staged.stage (fun () -> ignore (Abacus_mr.legalize d)));
    (* Section 5.3: the two solvers whose speed ratio the paper reports *)
    Test.make ~name:"sec53/mmsim_single_height"
      (Staged.stage
         (let m = Model.build sd s_assignment in
          fun () -> ignore (Solver.solve m)));
    Test.make ~name:"sec53/placerow"
      (Staged.stage (fun () ->
           ignore (Abacus.legalize_fixed_rows sd s_assignment)));
    (* Figure 5: SVG rendering *)
    Test.make ~name:"fig5/svg_render"
      (Staged.stage
         (let legal = Flow.legalize d in
          fun () -> ignore (Mclh_circuit.Svg.render d legal))) ]

let run () =
  Util.section "Bechamel kernels (one per table/figure)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"kernels" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ v ] -> v
        | Some _ | None -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-40s %12.1f ns/run (%10.3f ms)\n" name ns (ns /. 1e6))
    (List.sort compare !rows);
  print_newline ()
