(** The benchmark suite of the paper's Table 1.

    Twenty designs derived from the ISPD-2015 detailed-routing-driven
    placement contest, as modified by the authors of the DAC'16 legalizer:
    fence regions dropped, 10% of the cells doubled in height and halved in
    width. Each entry records the published statistics — single-height cell
    count, double-height cell count, placement density and global-placement
    HPWL — which the synthetic generator reproduces at a chosen scale. *)

type t = {
  name : string;
  singles : int;  (** "#S. Cell" of Table 1 *)
  doubles : int;  (** "#D. Cell" of Table 1 *)
  density : float;  (** "Density" of Table 1 *)
  gp_hpwl_m : float;  (** "GP HPWL (m)" of Table 2 *)
}

val all : t list
(** The 20 benchmarks in Table 1 order (des_perf_1 .. superblue19). *)

val find : string -> t
(** Lookup by name. @raise Not_found if unknown. *)

val names : string list

val scaled : float -> t -> t
(** [scaled factor spec] multiplies both cell counts by [factor] (at least
    one single cell; doubles may scale to zero only if the original count
    was zero). Density and HPWL are unchanged — density is a ratio and the
    generator sizes the chip from it. *)
