type t = {
  name : string;
  singles : int;
  doubles : int;
  density : float;
  gp_hpwl_m : float;
}

let mk name singles doubles density gp_hpwl_m =
  { name; singles; doubles; density; gp_hpwl_m }

(* Table 1 (#S. Cell, #D. Cell, Density) and Table 2 (GP HPWL). *)
let all =
  [ mk "des_perf_1" 103842 8802 0.91 1.43;
    mk "des_perf_a" 99775 8513 0.43 2.57;
    mk "des_perf_b" 103842 8802 0.50 2.13;
    mk "edit_dist_a" 121913 5500 0.46 5.25;
    mk "fft_1" 30297 1984 0.84 0.46;
    mk "fft_2" 30297 1984 0.50 0.46;
    mk "fft_a" 28718 1907 0.25 0.75;
    mk "fft_b" 28718 1907 0.28 0.95;
    mk "matrix_mult_1" 152427 2898 0.80 2.39;
    mk "matrix_mult_2" 152427 2898 0.79 2.59;
    mk "matrix_mult_a" 146837 2813 0.42 3.77;
    mk "matrix_mult_b" 143695 2740 0.31 3.43;
    mk "matrix_mult_c" 143695 2740 0.31 3.29;
    mk "pci_bridge32_a" 26268 3249 0.38 0.46;
    mk "pci_bridge32_b" 25734 3180 0.14 0.98;
    mk "superblue11_a" 861314 64302 0.43 42.94;
    mk "superblue12" 1172586 114362 0.45 39.23;
    mk "superblue14" 564769 47474 0.56 27.98;
    mk "superblue16_a" 625419 55031 0.48 31.35;
    mk "superblue19" 478109 27988 0.52 20.76 ]

let find name = List.find (fun s -> s.name = name) all

let names = List.map (fun s -> s.name) all

let scaled factor spec =
  if factor <= 0.0 then invalid_arg "Spec.scaled: factor must be positive";
  let scale count = int_of_float (Float.round (float_of_int count *. factor)) in
  { spec with
    singles = max 1 (scale spec.singles);
    doubles = (if spec.doubles = 0 then 0 else max 1 (scale spec.doubles)) }
