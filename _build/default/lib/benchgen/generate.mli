(** Synthetic benchmark instances.

    The generator reproduces the structural statistics of the paper's suite
    (cell mix and density from Table 1) without the proprietary ISPD-2015
    data: it first packs a *legal* placement — respecting rails, rows, and
    sites by construction — inserting randomized gaps so each row is used
    across its whole extent, then perturbs every cell with Gaussian noise
    plus a pull toward a few random hotspots to obtain a realistic
    overlapping global placement. The packed layout is returned as a
    feasibility witness; legalizers never see it.

    Determinism: the stream is seeded from the benchmark name and [seed],
    so the same options always produce the identical instance. *)

type options = {
  seed : int;
  single_width_range : int * int;  (** inclusive site-width range *)
  double_width_range : int * int;  (** halved widths for doubled cells *)
  tall_cell_fraction : float;
      (** fraction of the doubled cells regenerated as triple- or
          quadruple-height cells (0 reproduces the paper's suite, which
          has only single and double heights; nonzero exercises the
          general per-chain machinery) *)
  sites_per_row_ratio : float;  (** chip aspect: sites ~ ratio * rows *)
  noise_x_sigma : float;  (** Gaussian x perturbation, in sites *)
  noise_y_sigma : float;  (** Gaussian y perturbation, in rows *)
  hotspots : int;  (** number of attraction centers *)
  hotspot_strength : float;  (** 0 disables the pull *)
  nets_per_cell : float;  (** expected net count / cell count *)
  single_height_only : bool;
      (** Section 5.3 mode: doubled cells revert to single height at twice
          the halved width, and no rail constraints remain *)
  blockage_fraction : float;
      (** fraction of the chip area covered by fixed rectangular blockages
          (0 disables; the chip is widened so the free capacity still
          matches the target density) *)
  blockage_count : int;  (** number of blockage rectangles when enabled *)
  fence_count : int;
      (** number of exclusive fence regions (0 disables). Each fence is a
          random rectangle; cells are assigned to it up to the fence's
          capacity at the target density, and the reference packing places
          members inside and everyone else outside, so the witness honors
          the fence semantics. *)
}

val default_options : options

type instance = {
  design : Mclh_circuit.Design.t;
  reference : Mclh_circuit.Placement.t;
      (** the legal packing the global placement was perturbed from — a
          feasibility witness, not an optimum *)
}

val generate : ?options:options -> Spec.t -> instance
(** Builds the instance for a (possibly scaled) benchmark spec.
    @raise Invalid_argument if the spec is degenerate (no cells). *)

val generate_named : ?options:options -> ?scale:float -> string -> instance
(** [generate_named name] looks the spec up in {!Spec.all} and scales it
    (default [scale = 1.0]). *)
