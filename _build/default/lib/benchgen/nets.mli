(** Locality-driven net generation.

    Nets connect cells that are close in the global placement (a spatial
    grid provides the neighborhoods), so a legalizer that moves cells a
    little perturbs HPWL a little — the property that makes the paper's
    dHPWL column meaningful. Pin offsets are drawn inside each cell's
    outline. *)

open Mclh_circuit

val generate :
  Rng.t ->
  nets_per_cell:float ->
  chip:Chip.t ->
  cells:Cell.t array ->
  placement:Placement.t ->
  Netlist.t
(** Degree distribution: 2 pins with probability ~0.55, then geometric tail
    up to 8 pins. A net's pins are drawn from a neighborhood window around
    a uniformly chosen seed cell, widening until enough distinct cells are
    found. *)
