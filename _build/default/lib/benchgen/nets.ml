open Mclh_circuit

(* spatial grid over the global placement for neighborhood queries *)
type grid = {
  bucket_w : float;
  bucket_h : float;
  nx : int;
  ny : int;
  buckets : int list array;
}

let build_grid (chip : Chip.t) (placement : Placement.t) =
  let n = Placement.num_cells placement in
  let target_per_bucket = 8.0 in
  let num_buckets = Float.max 1.0 (float_of_int n /. target_per_bucket) in
  let aspect = float_of_int chip.Chip.num_sites /. float_of_int chip.Chip.num_rows in
  let ny = max 1 (int_of_float (sqrt (num_buckets /. aspect))) in
  let nx = max 1 (int_of_float (num_buckets /. float_of_int ny)) in
  let bucket_w = float_of_int chip.Chip.num_sites /. float_of_int nx in
  let bucket_h = float_of_int chip.Chip.num_rows /. float_of_int ny in
  let buckets = Array.make (nx * ny) [] in
  let clamp v hi = max 0 (min (hi - 1) v) in
  for i = 0 to n - 1 do
    let bx = clamp (int_of_float (placement.Placement.xs.(i) /. bucket_w)) nx in
    let by = clamp (int_of_float (placement.Placement.ys.(i) /. bucket_h)) ny in
    let key = (by * nx) + bx in
    buckets.(key) <- i :: buckets.(key)
  done;
  { bucket_w; bucket_h; nx; ny; buckets }

let neighbors grid (placement : Placement.t) seed ~radius_buckets =
  let clamp v hi = max 0 (min (hi - 1) v) in
  let bx = clamp (int_of_float (placement.Placement.xs.(seed) /. grid.bucket_w)) grid.nx in
  let by = clamp (int_of_float (placement.Placement.ys.(seed) /. grid.bucket_h)) grid.ny in
  let acc = ref [] in
  for dy = -radius_buckets to radius_buckets do
    for dx = -radius_buckets to radius_buckets do
      let x = bx + dx and y = by + dy in
      if x >= 0 && x < grid.nx && y >= 0 && y < grid.ny then
        acc := List.rev_append grid.buckets.((y * grid.nx) + x) !acc
    done
  done;
  !acc

let degree rng =
  (* ~55% two-pin nets, geometric tail capped at 8 *)
  if Rng.float rng 1.0 < 0.55 then 2
  else begin
    let rec tail d = if d >= 8 || Rng.float rng 1.0 < 0.5 then d else tail (d + 1) in
    tail 3
  end

let pin_of rng (cells : Cell.t array) cell =
  let c = cells.(cell) in
  Netlist.
    { cell;
      dx = Rng.float rng (float_of_int c.Cell.width);
      dy = Rng.float rng (float_of_int c.Cell.height) }

let generate rng ~nets_per_cell ~chip ~cells ~placement =
  let n = Array.length cells in
  let num_nets = int_of_float (Float.round (nets_per_cell *. float_of_int n)) in
  if n = 0 || num_nets = 0 then Netlist.empty ~num_cells:n
  else begin
    let grid = build_grid chip placement in
    let max_radius = max grid.nx grid.ny in
    let make_net () =
      let seed = Rng.int rng n in
      let want = degree rng in
      let rec gather radius =
        let cand = neighbors grid placement seed ~radius_buckets:radius in
        if List.length cand >= want || radius >= max_radius then cand
        else gather (radius + 1)
      in
      let cand = Array.of_list (gather 1) in
      Rng.shuffle rng cand;
      let chosen = Hashtbl.create want in
      Hashtbl.replace chosen seed ();
      let idx = ref 0 in
      while Hashtbl.length chosen < want && !idx < Array.length cand do
        Hashtbl.replace chosen cand.(!idx) ();
        incr idx
      done;
      Hashtbl.fold (fun cell () acc -> pin_of rng cells cell :: acc) chosen []
      |> Array.of_list
    in
    let nets = List.init num_nets (fun _ -> make_net ()) in
    Netlist.make ~num_cells:n nets
  end
