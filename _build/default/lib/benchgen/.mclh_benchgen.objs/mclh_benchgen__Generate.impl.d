lib/benchgen/generate.ml: Array Blockage Cell Chip Design Float List Mclh_circuit Netlist Nets Occupancy Placement Printf Rail Region Rng Spec
