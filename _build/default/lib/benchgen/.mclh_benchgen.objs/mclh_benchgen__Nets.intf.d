lib/benchgen/nets.mli: Cell Chip Mclh_circuit Netlist Placement Rng
