lib/benchgen/spec.mli:
