lib/benchgen/generate.mli: Mclh_circuit Spec
