lib/benchgen/rng.mli:
