lib/benchgen/nets.ml: Array Cell Chip Float Hashtbl List Mclh_circuit Netlist Placement Rng
