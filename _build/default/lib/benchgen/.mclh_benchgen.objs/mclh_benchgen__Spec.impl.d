lib/benchgen/spec.ml: Float List
