lib/gp/gp.ml: Array Cell Cg Chip Coo Csr Design Float Hpwl List Mclh_circuit Mclh_core Mclh_linalg Netlist Placement Vec
