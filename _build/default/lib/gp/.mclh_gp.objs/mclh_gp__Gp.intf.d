lib/gp/gp.mli: Design Mclh_circuit Placement
