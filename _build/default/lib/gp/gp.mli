(** A minimal analytical global placer (quadratic + lookahead anchoring).

    The paper's closing remark is that its LCP/MMSIM formulation "provides
    new generic solutions ... e.g. global placement [17]" — quadratic
    placers are exactly large sparse quadratic programs. This module
    closes the loop: it builds the quadratic wirelength model from the
    netlist and alternates

    + a conjugate-gradient solve of [(L + alpha I) x = b + alpha a]
      (clique-model Laplacian [L], pin-offset terms in [b]), with
    + lookahead anchoring a la SimPL: the current fractional placement is
      legalized by the repository's own Tetris legalizer and the result
      becomes the anchor [a], with [alpha] growing geometrically.

    The output is a *global* placement: overlapping, fractional, density-
    aware through the anchors — the input the paper's legalization flow
    expects. This is deliberately a small placer (no density function, no
    net reweighting); its purpose is an end-to-end netlist -> GP ->
    legalization pipeline on honest data, not GP research. *)

open Mclh_circuit

type net_model =
  | Clique  (** fixed clique edges, weight 1/(k-1) — one Laplacian build *)
  | B2b
      (** bound-to-bound (Spindler et al.): every pin connects to the
          net's current extreme pins with weights 1/((k-1) length), so the
          quadratic objective tracks HPWL; the Laplacian is rebuilt from
          the current positions each round *)

type options = {
  iterations : int;  (** anchor rounds (default 12); more rounds spread
      harder (easier to legalize, longer wirelength) *)
  anchor_weight : float;  (** initial alpha (default 0.01) *)
  anchor_growth : float;  (** alpha multiplier per round (default 2.0) *)
  cg_tol : float;  (** conjugate-gradient tolerance (default 1e-7) *)
  net_model : net_model;
      (** default [Clique] — under this anchor schedule the fixed clique
          model measures slightly better than B2B on the synthetic suite *)
}

val default_options : options

type stats = {
  rounds : (float * float) list;
      (** per round: (alpha, HPWL of the quadratic solution) *)
  final_hpwl : float;
}

val place : ?options:options -> Design.t -> Placement.t * stats
(** [place design] ignores [design.global] and produces a fresh global
    placement from the netlist. Cells not touched by any net settle at
    their anchors. The result is clamped to the chip but not legal. *)
