type align = Left | Right
type column = { title : string; align : align }

type row = Cells of string list | Separator

type t = { columns : column array; mutable rows : row list }

let create columns = { columns = Array.of_list columns; rows = [] }

let add_row t cells =
  if List.length cells <> Array.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map (fun c -> String.length c.title) t.columns in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
        List.iteri
          (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
          cells)
    rows;
  let buf = Buffer.create 4096 in
  let pad align width s =
    let fill = width - String.length s in
    if fill <= 0 then s
    else
      match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let rule () =
    for i = 0 to ncols - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      if i < ncols - 1 then Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  Array.iteri
    (fun i c ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad c.align widths.(i) c.title);
      Buffer.add_string buf (if i < ncols - 1 then " |" else " "))
    t.columns;
  Buffer.add_char buf '\n';
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells ->
        List.iteri
          (fun i cell ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (pad t.columns.(i).align widths.(i) cell);
            Buffer.add_string buf (if i < ncols - 1 then " |" else " "))
          cells;
        Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let fmt_float digits v = Printf.sprintf "%.*f" digits v
let fmt_int v = Printf.sprintf "%.0f" v
let fmt_pct digits v = Printf.sprintf "%.*f%%" digits (100.0 *. v)

let normalized_average values ~baseline =
  let ratios =
    List.concat
      (List.map2
         (fun v b -> if b = 0.0 then [] else [ v /. b ])
         values baseline)
  in
  match ratios with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
