(** Fixed-width ASCII tables for the benchmark harness.

    Columns are declared with alignment; rows are lists of strings. The
    harness prints each paper table with measured values next to the
    paper's reported ones, plus normalized-average footers like Table 2's
    last row. *)

type align = Left | Right

type column = { title : string; align : align }

type t

val create : column list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_separator : t -> unit

val render : t -> string
(** The table with a header rule and column padding. *)

val fmt_float : int -> float -> string
(** [fmt_float digits v] — fixed-point with the given decimals. *)

val fmt_int : float -> string
(** Rounded to an integer string (for displacement-in-sites columns). *)

val fmt_pct : int -> float -> string
(** A ratio as a percentage string (["1.23%"]). *)

val normalized_average : float list -> baseline:float list -> float
(** Mean of pairwise ratios [value_i / baseline_i], skipping pairs whose
    baseline is zero — the "N. Average" row of Table 2. *)
