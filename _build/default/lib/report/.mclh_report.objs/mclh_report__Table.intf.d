lib/report/table.mli:
