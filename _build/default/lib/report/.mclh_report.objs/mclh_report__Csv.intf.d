lib/report/csv.mli:
