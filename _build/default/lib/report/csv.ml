let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row cells = String.concat "," (List.map escape cells)

let write_file ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (row header);
      output_char oc '\n';
      List.iter
        (fun cells ->
          output_string oc (row cells);
          output_char oc '\n')
        rows)
