(** Minimal CSV output (RFC-4180 quoting) for exporting benchmark rows. *)

val escape : string -> string
(** Quotes a field when it contains a comma, quote or newline. *)

val row : string list -> string
(** One CSV line (no trailing newline). *)

val write_file : path:string -> header:string list -> string list list -> unit
(** Writes a header plus data rows. *)
