open Mclh_linalg

type problem = { a : Csr.t; q : Vec.t }

let make a q =
  if Csr.rows a <> Csr.cols a then invalid_arg "Lcp.make: matrix not square";
  if Csr.rows a <> Vec.dim q then invalid_arg "Lcp.make: q dimension mismatch";
  { a; q }

let dim p = Vec.dim p.q

let w_of p z =
  let w = Csr.mul_vec p.a z in
  Vec.axpy 1.0 p.q w;
  w

type residual = {
  z_neg : float;
  w_neg : float;
  complementarity : float;
  fischer_burmeister : float;
}

let residual p z =
  let w = w_of p z in
  let z_neg = ref 0.0 and w_neg = ref 0.0 in
  let comp = ref 0.0 and fb = ref 0.0 in
  for i = 0 to Vec.dim z - 1 do
    z_neg := Float.max !z_neg (-.z.(i));
    w_neg := Float.max !w_neg (-.w.(i));
    comp := Float.max !comp (Float.abs (z.(i) *. w.(i)));
    let phi =
      sqrt ((z.(i) *. z.(i)) +. (w.(i) *. w.(i))) -. z.(i) -. w.(i)
    in
    fb := Float.max !fb (Float.abs phi)
  done;
  { z_neg = !z_neg;
    w_neg = !w_neg;
    complementarity = !comp;
    fischer_burmeister = !fb }

let residual_inf p z =
  let r = residual p z in
  Float.max r.z_neg (Float.max r.w_neg r.complementarity)

let is_solution ?(eps = 1e-6) p z =
  let r = residual p z in
  r.z_neg <= eps && r.w_neg <= eps && r.complementarity <= eps

let of_dense a q = make (Coo.to_csr (Coo.of_dense a)) q
