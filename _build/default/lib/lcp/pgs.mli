(** Projected Gauss-Seidel / projected SOR for LCP(q, A).

    An independent reference solver: it shares no code with the MMSIM, so
    agreement between the two on the same problem is strong evidence of
    correctness. Requires a strictly positive diagonal (satisfied by the
    SPD test matrices; the saddle-point legalization LCP is instead checked
    against the dense active-set QP oracle). *)

open Mclh_linalg

type options = {
  relaxation : float;  (** SOR factor in (0, 2); 1.0 = plain Gauss-Seidel *)
  eps : float;  (** stop when the sweep changes no component by more *)
  max_iter : int;
}

val default_options : options
(** [relaxation = 1.0], [eps = 1e-10], [max_iter = 50_000]. *)

type outcome = {
  z : Vec.t;
  iterations : int;
  converged : bool;
  delta_inf : float;
}

val solve : ?options:options -> ?z0:Vec.t -> Lcp.problem -> outcome
(** Sweeps [z_i <- max(0, z_i - omega (q_i + (A z)_i) / a_ii)].
    @raise Invalid_argument if a diagonal entry of [A] is not positive or
      the relaxation factor is outside (0, 2). *)
