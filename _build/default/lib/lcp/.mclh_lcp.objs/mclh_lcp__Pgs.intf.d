lib/lcp/pgs.mli: Lcp Mclh_linalg Vec
