lib/lcp/lcp.mli: Csr Dense Mclh_linalg Vec
