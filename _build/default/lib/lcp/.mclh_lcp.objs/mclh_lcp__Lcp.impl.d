lib/lcp/lcp.ml: Array Coo Csr Float Mclh_linalg Vec
