lib/lcp/pgs.ml: Array Csr Float Lcp Mclh_linalg Printf Vec
