lib/lcp/lemke.ml: Array Csr Float Lcp Mclh_linalg Vec
