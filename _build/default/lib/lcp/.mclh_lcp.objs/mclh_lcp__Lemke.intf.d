lib/lcp/lemke.mli: Lcp Mclh_linalg Vec
