lib/lcp/mmsim.ml: Array Csr Float Mclh_linalg Printf Vec
