lib/lcp/mmsim.mli: Csr Mclh_linalg Vec
