(** Linear complementarity problems.

    LCP(q, A): find w, z in R^n with
    [w = A z + q >= 0], [z >= 0], [z^T w = 0].

    This module holds the problem representation shared by the solvers and
    the residual/verification utilities used in tests and in the empirical
    optimality validation of the paper's Section 5.3. *)

open Mclh_linalg

type problem = { a : Csr.t; q : Vec.t }
(** A concrete LCP with an explicit sparse system matrix. *)

val make : Csr.t -> Vec.t -> problem
(** Validates that [a] is square and [q] matches its dimension. *)

val dim : problem -> int

val w_of : problem -> Vec.t -> Vec.t
(** [w_of p z] is [A z + q]. *)

type residual = {
  z_neg : float;  (** largest violation of [z >= 0] *)
  w_neg : float;  (** largest violation of [w >= 0] *)
  complementarity : float;  (** largest [|z_i * w_i|] *)
  fischer_burmeister : float;
      (** infinity norm of the Fischer-Burmeister residual
          [phi(z, w) = sqrt(z^2 + w^2) - z - w], a standard merit function
          that is zero exactly at LCP solutions *)
}

val residual : problem -> Vec.t -> residual

val residual_inf : problem -> Vec.t -> float
(** Max of the three violation measures (without the FB residual). *)

val is_solution : ?eps:float -> problem -> Vec.t -> bool
(** [is_solution ~eps p z] holds when all residual components are within
    [eps] (default [1e-6]). *)

val of_dense : Dense.t -> Vec.t -> problem
(** Convenience for tests. *)
