open Mclh_linalg

type options = { relaxation : float; eps : float; max_iter : int }

let default_options = { relaxation = 1.0; eps = 1e-10; max_iter = 50_000 }

type outcome = {
  z : Vec.t;
  iterations : int;
  converged : bool;
  delta_inf : float;
}

let solve ?(options = default_options) ?z0 (p : Lcp.problem) =
  let { relaxation; eps; max_iter } = options in
  if relaxation <= 0.0 || relaxation >= 2.0 then
    invalid_arg "Pgs.solve: relaxation must lie in (0, 2)";
  let n = Lcp.dim p in
  let diag = Array.make n 0.0 in
  Csr.iter p.a (fun i j v -> if i = j then diag.(i) <- diag.(i) +. v);
  Array.iteri
    (fun i d ->
      if d <= 0.0 then
        invalid_arg (Printf.sprintf "Pgs.solve: nonpositive diagonal at %d" i))
    diag;
  let z =
    match z0 with
    | None -> Vec.zeros n
    | Some z0 ->
      if Vec.dim z0 <> n then invalid_arg "Pgs.solve: z0 dimension mismatch";
      Vec.map (fun v -> Float.max v 0.0) z0
  in
  let rec sweep k =
    let delta = ref 0.0 in
    for i = 0 to n - 1 do
      let row_dot = ref 0.0 in
      Csr.iter_row p.a i (fun j v -> row_dot := !row_dot +. (v *. z.(j)));
      let residual = p.q.(i) +. !row_dot in
      let candidate = z.(i) -. (relaxation *. residual /. diag.(i)) in
      let updated = Float.max 0.0 candidate in
      delta := Float.max !delta (Float.abs (updated -. z.(i)));
      z.(i) <- updated
    done;
    if !delta < eps then
      { z; iterations = k + 1; converged = true; delta_inf = !delta }
    else if k + 1 >= max_iter then
      { z; iterations = k + 1; converged = false; delta_inf = !delta }
    else sweep (k + 1)
  in
  sweep 0
