(** Bin-based density and utilization analysis.

    Detailed placers and congestion-aware flows (e.g. the MrDP follow-up
    the paper cites) reason about local density: the chip is divided into
    rectangular bins and each bin's utilization is the fraction of its
    free area covered by cells. This module computes the density map, its
    overflow statistics, and per-row utilization. *)

type map = private {
  bins_x : int;
  bins_y : int;
  bin_w : float;  (** bin width in sites *)
  bin_h : float;  (** bin height in rows *)
  utilization : float array;  (** row-major [bins_x * bins_y], in [0, inf) *)
}

val map : ?bins_x:int -> ?bins_y:int -> Design.t -> Placement.t -> map
(** Cell area is distributed over the bins each cell overlaps,
    proportionally to the overlap; blockage area reduces a bin's free
    capacity (a fully blocked bin counts as utilization 0). Default grid:
    roughly one bin per 16x4 site-rows, at least 1x1. *)

val get : map -> int -> int -> float
(** [get m ix iy]. *)

type overflow = {
  max_utilization : float;
  mean_utilization : float;
  overflow_ratio : float;
      (** fraction of total cell area sitting above the [limit] in its bin *)
  overflowed_bins : int;  (** bins with utilization above the limit *)
}

val overflow : ?limit:float -> map -> overflow
(** Overflow statistics at a utilization [limit] (default 1.0). *)

val row_utilization : Design.t -> Placement.t -> float array
(** Per-row fraction of free sites covered by cells (blockage sites
    excluded from the denominator); rows fully blocked report 0. *)

val to_svg : ?pixels_per_bin:float -> map -> string
(** A heatmap of the utilization map: white (empty) through blue to red
    (at or above 100%), bins over the limit outlined. Row 0 at the
    bottom, as in layout plots. *)

val pp_histogram : Format.formatter -> map -> unit
(** A coarse text histogram of bin utilizations (ten 10%-wide buckets plus
    an overflow bucket). *)
