type t = {
  num_rows : int;
  num_sites : int;
  base_rail : Rail.t;
  row_height : float;
}

let make ?(base_rail = Rail.Vss) ?(row_height = 8.0) ~num_rows ~num_sites () =
  if num_rows < 1 then invalid_arg "Chip.make: num_rows < 1";
  if num_sites < 1 then invalid_arg "Chip.make: num_sites < 1";
  if row_height <= 0.0 then invalid_arg "Chip.make: row_height <= 0";
  { num_rows; num_sites; base_rail; row_height }

let bottom_rail t row =
  if row < 0 || row >= t.num_rows then
    invalid_arg (Printf.sprintf "Chip.bottom_rail: row %d out of range" row);
  if row mod 2 = 0 then t.base_rail else Rail.opposite t.base_rail

let row_in_range t ~row ~height = row >= 0 && row + height <= t.num_rows

let row_admits t (cell : Cell.t) row =
  row_in_range t ~row ~height:cell.height
  &&
  match cell.bottom_rail with
  | None -> true
  | Some rail -> Rail.equal (bottom_rail t row) rail

let nearest_admitting_row t (cell : Cell.t) y =
  (* candidate rows around the rounded target; rail parity means the answer
     is within two rows of the clamped rounding for any admissible chip *)
  let clamp r = max 0 (min (t.num_rows - cell.height) r) in
  let target = clamp (int_of_float (Float.round y)) in
  let best = ref None in
  let consider row =
    if row_admits t cell row then begin
      let dist = Float.abs (float_of_int row -. y) in
      match !best with
      | Some (_, best_dist) when best_dist <= dist -> ()
      | Some _ | None -> best := Some (row, dist)
    end
  in
  (* scan outward: with alternating rails an admitting row, if any exists,
     appears within 2 steps of any position, but clamping at the borders can
     push the nearest admitting row further, so widen until exhausted. A row
     at ring [radius] is at least [radius - delta] from y, so once the
     incumbent beats that bound no farther row can win. *)
  let delta = Float.abs (float_of_int target -. y) in
  let max_radius = t.num_rows in
  let rec scan radius =
    if radius > max_radius then ()
    else begin
      consider (target - radius);
      if radius > 0 then consider (target + radius);
      match !best with
      | Some (_, best_dist) when best_dist <= float_of_int radius -. delta -> ()
      | Some _ | None -> scan (radius + 1)
    end
  in
  scan 0;
  Option.map fst !best

let capacity t = t.num_rows * t.num_sites

let pp ppf t =
  Format.fprintf ppf "chip(%d rows x %d sites, row0 bottom %a)" t.num_rows
    t.num_sites Rail.pp t.base_rail
