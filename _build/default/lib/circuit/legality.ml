type violation =
  | Outside of int
  | Off_site of int
  | Overlap of int * int * int
  | Rail_mismatch of int
  | Blocked of int * int
  | Outside_region of int  (* member cell not fully inside its fence *)
  | In_foreign_region of int * int  (* non-member overlapping fence k *)

let pp_violation ppf = function
  | Outside c -> Format.fprintf ppf "cell %d outside chip" c
  | Off_site c -> Format.fprintf ppf "cell %d off site grid" c
  | Overlap (a, b, row) ->
    Format.fprintf ppf "cells %d and %d overlap in row %d" a b row
  | Rail_mismatch c -> Format.fprintf ppf "cell %d power-rail mismatch" c
  | Blocked (c, b) -> Format.fprintf ppf "cell %d overlaps blockage %d" c b
  | Outside_region c -> Format.fprintf ppf "cell %d outside its fence region" c
  | In_foreign_region (c, k) ->
    Format.fprintf ppf "cell %d overlaps foreign fence region %d" c k

let site_eps = 1e-6

let near_int v = Float.abs (v -. Float.round v) <= site_eps

let check (design : Design.t) (pl : Placement.t) =
  let chip = design.chip in
  let n = Design.num_cells design in
  if Placement.num_cells pl <> n then
    invalid_arg "Legality.check: placement size mismatch";
  let violations = ref [] in
  let push v = violations := v :: !violations in
  (* per-cell geometric checks *)
  for i = 0 to n - 1 do
    let c = design.cells.(i) in
    let x = pl.xs.(i) and y = pl.ys.(i) in
    let on_grid = near_int x && near_int y in
    if not on_grid then push (Off_site i);
    let xi = Float.round x and yi = Float.round y in
    if
      xi < -.site_eps
      || xi +. float_of_int c.width > float_of_int chip.Chip.num_sites +. site_eps
      || yi < -.site_eps
      || yi +. float_of_int c.height > float_of_int chip.Chip.num_rows +. site_eps
    then push (Outside i)
    else if on_grid then begin
      let row = int_of_float yi in
      if not (Chip.row_admits chip c row) then push (Rail_mismatch i)
    end;
    Array.iteri
      (fun k b ->
        if
          Blockage.overlaps_span b
            ~row:(int_of_float (Float.round y))
            ~height:c.height ~x ~width:c.width
        then push (Blocked (i, k)))
      design.blockages;
    (* fence-region semantics: members fully inside, others fully outside *)
    let row = int_of_float (Float.round y) in
    (match c.Cell.region with
    | Some r ->
      if
        not
          (Region.contains_span design.regions.(r) ~row ~height:c.height ~x
             ~width:c.width)
      then push (Outside_region i)
    | None -> ());
    Array.iteri
      (fun k reg ->
        if c.Cell.region <> Some k
           && Region.intersects_span reg ~row ~height:c.height ~x ~width:c.width
        then push (In_foreign_region (i, k)))
      design.regions
  done;
  (* overlap checks per row; uses rounded coordinates so off-grid cells are
     still tested for overlap *)
  let buckets = Array.make chip.Chip.num_rows [] in
  for i = 0 to n - 1 do
    let c = design.cells.(i) in
    let row0 = int_of_float (Float.round pl.ys.(i)) in
    for r = max 0 row0 to min (chip.Chip.num_rows - 1) (row0 + c.height - 1) do
      buckets.(r) <- i :: buckets.(r)
    done
  done;
  Array.iteri
    (fun row cells_in_row ->
      let sorted =
        List.sort
          (fun a b -> compare pl.xs.(a) pl.xs.(b))
          cells_in_row
      in
      (* sweep tracking the furthest right extent seen so far, so a wide
         cell overlapping several successors flags each of them *)
      let rec scan reach reach_cell = function
        | b :: rest ->
          let xb = pl.xs.(b) in
          if reach_cell >= 0 && xb +. site_eps < reach then begin
            let lo = min reach_cell b and hi = max reach_cell b in
            push (Overlap (lo, hi, row))
          end;
          let end_b = xb +. float_of_int design.cells.(b).Cell.width in
          if end_b > reach then scan end_b b rest else scan reach reach_cell rest
        | [] -> ()
      in
      scan neg_infinity (-1) sorted)
    buckets;
  List.rev !violations

let is_legal design pl = check design pl = []

let illegal_cells (design : Design.t) pl =
  let module IS = Set.Make (Int) in
  let blame acc = function
    | Outside c | Off_site c | Rail_mismatch c | Blocked (c, _)
    | Outside_region c
    | In_foreign_region (c, _) ->
      IS.add c acc
    | Overlap (a, b, _) ->
      (* blame the cell that came later in global x order *)
      let ga = design.global.Placement.xs.(a)
      and gb = design.global.Placement.xs.(b) in
      IS.add (if ga <= gb then b else a) acc
  in
  List.fold_left blame IS.empty (check design pl) |> IS.elements

let count_illegal design pl = List.length (illegal_cells design pl)
