(** Cell positions.

    A placement assigns each cell a bottom-left coordinate: [x] in site
    widths, [y] in row heights. Global placements are fractional; legalized
    placements are integral in both coordinates. *)

type t = { xs : float array; ys : float array }

val create : int -> t
(** All-zero placement for [n] cells. *)

val make : xs:float array -> ys:float array -> t
(** Validates equal lengths. *)

val num_cells : t -> int

val copy : t -> t

val get : t -> int -> float * float

val set : t -> int -> x:float -> y:float -> unit

val is_integral : ?eps:float -> t -> bool
(** Every coordinate within [eps] (default [1e-9]) of an integer. *)

val round : t -> t
(** Coordinates rounded to the nearest integer (site/row snap without any
    legality guarantee). *)

val equal : ?eps:float -> t -> t -> bool
