(** Power-rail types.

    Cell rows are separated by alternating VDD and VSS rails. Odd-row-height
    cells can be aligned to any row (flipping vertically when needed);
    even-row-height cells carry the same rail type on both horizontal
    boundaries, so they fit only on rows whose bottom rail matches — and a
    mismatch cannot be fixed by flipping (Figure 1 of the paper). *)

type t = Vdd | Vss

val opposite : t -> t

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
