type t = { chip : Chip.t; grid : Bytes.t array; mutable occupied : int }

let create chip =
  { chip;
    grid =
      Array.init chip.Chip.num_rows (fun _ ->
          Bytes.make chip.Chip.num_sites '\000');
    occupied = 0 }

let chip t = t.chip

let in_bounds t ~row ~height ~x ~width =
  row >= 0
  && row + height <= t.chip.Chip.num_rows
  && x >= 0
  && x + width <= t.chip.Chip.num_sites

(* first occupied site in [x, x+width) of the span, or -1 *)
let first_conflict t ~row ~height ~x ~width =
  let conflict = ref (-1) in
  let r = ref row in
  while !conflict < 0 && !r < row + height do
    let line = t.grid.(!r) in
    let s = ref x in
    while !conflict < 0 && !s < x + width do
      if Bytes.get line !s <> '\000' then conflict := !s;
      incr s
    done;
    incr r
  done;
  !conflict

(* last occupied site in [x, x+width) of the span, or -1 *)
let last_conflict t ~row ~height ~x ~width =
  let conflict = ref (-1) in
  for r = row to row + height - 1 do
    let line = t.grid.(r) in
    for s = x + width - 1 downto x do
      if s > !conflict && Bytes.get line s <> '\000' then conflict := s
    done
  done;
  !conflict

let is_free_span t ~row ~height ~x ~width =
  in_bounds t ~row ~height ~x ~width
  && first_conflict t ~row ~height ~x ~width < 0

let occupy t ~row ~height ~x ~width =
  if not (in_bounds t ~row ~height ~x ~width) then
    invalid_arg "Occupancy.occupy: out of bounds";
  for r = row to row + height - 1 do
    let line = t.grid.(r) in
    for s = x to x + width - 1 do
      if Bytes.get line s <> '\000' then
        invalid_arg
          (Printf.sprintf "Occupancy.occupy: site (%d, %d) already occupied" r s);
      Bytes.set line s '\001'
    done
  done;
  t.occupied <- t.occupied + (height * width)

let mark t ~row ~height ~x ~width =
  if not (in_bounds t ~row ~height ~x ~width) then
    invalid_arg "Occupancy.mark: out of bounds";
  for r = row to row + height - 1 do
    let line = t.grid.(r) in
    for s = x to x + width - 1 do
      if Bytes.get line s = '\000' then begin
        Bytes.set line s '\001';
        t.occupied <- t.occupied + 1
      end
    done
  done

let release t ~row ~height ~x ~width =
  if not (in_bounds t ~row ~height ~x ~width) then
    invalid_arg "Occupancy.release: out of bounds";
  for r = row to row + height - 1 do
    let line = t.grid.(r) in
    for s = x to x + width - 1 do
      Bytes.set line s '\000'
    done
  done;
  t.occupied <- t.occupied - (height * width)

let nearest_free_x ?(rightward_only = false) t ~row ~height ~width ~x0
    ~max_dist =
  if height <= 0 || width <= 0 then
    invalid_arg "Occupancy.nearest_free_x: empty span";
  if row < 0 || row + height > t.chip.Chip.num_rows then None
  else begin
    let num_sites = t.chip.Chip.num_sites in
    let x0 = max 0 (min (num_sites - width) x0) in
    (* first feasible start at or right of [x], jumping past conflicts *)
    let rec right x =
      if x + width > num_sites || x - x0 > max_dist then None
      else begin
        match first_conflict t ~row ~height ~x ~width with
        | -1 -> Some x
        | c -> right (c + 1)
      end
    in
    (* first feasible start at or left of [x], jumping past conflicts *)
    let rec left x =
      if x < 0 || x0 - x > max_dist then None
      else begin
        match last_conflict t ~row ~height ~x ~width with
        | -1 -> Some x
        | c -> left (c - width)
      end
    in
    let left_candidate = if rightward_only then None else left (x0 - 1) in
    match right x0, left_candidate with
    | None, None -> None
    | Some xr, None -> Some (xr, xr - x0)
    | None, Some xl -> Some (xl, x0 - xl)
    | Some xr, Some xl ->
      if xr - x0 <= x0 - xl then Some (xr, xr - x0) else Some (xl, x0 - xl)
  end

let occupied_sites t = t.occupied

let find_spot ?row_window ?x_window ?rightward_only t (cell : Cell.t) ~row0
    ~x0 =
  let h = cell.Cell.height and w = cell.Cell.width in
  let row_height = t.chip.Chip.row_height in
  let best = ref None in
  let best_cost () =
    match !best with None -> infinity | Some (_, _, c) -> c
  in
  let try_row r =
    if Chip.row_admits t.chip cell r then begin
      let row_dist = row_height *. float_of_int (abs (r - row0)) in
      let budget = best_cost () -. row_dist in
      if budget > 0.0 then begin
        let max_dist =
          if budget = infinity then t.chip.Chip.num_sites
          else int_of_float (Float.ceil budget)
        in
        let max_dist =
          match x_window with
          | Some xw -> min max_dist xw
          | None -> max_dist
        in
        match
          nearest_free_x ?rightward_only t ~row:r ~height:h ~width:w ~x0
            ~max_dist
        with
        | Some (x, xdist) ->
          let cost = float_of_int xdist +. row_dist in
          if cost < best_cost () then best := Some (r, x, cost)
        | None -> ()
      end
    end
  in
  let max_dr =
    match row_window with
    | Some wdw -> min wdw t.chip.Chip.num_rows
    | None -> t.chip.Chip.num_rows
  in
  let rec widen dr =
    if dr <= max_dr && row_height *. float_of_int dr < best_cost () then begin
      try_row (row0 - dr);
      if dr > 0 then try_row (row0 + dr);
      widen (dr + 1)
    end
  in
  widen 0;
  !best

let of_design (design : Design.t) =
  let t = create design.Design.chip in
  Array.iter
    (fun (b : Blockage.t) ->
      mark t ~row:b.Blockage.row ~height:b.Blockage.height ~x:b.Blockage.x
        ~width:b.Blockage.width)
    design.Design.blockages;
  t
