type map = {
  bins_x : int;
  bins_y : int;
  bin_w : float;
  bin_h : float;
  utilization : float array;
}

(* overlap of [a0, a1) with [b0, b1) *)
let overlap a0 a1 b0 b1 = Float.max 0.0 (Float.min a1 b1 -. Float.max a0 b0)

let spread_area ~bins_x ~bins_y ~bin_w ~bin_h acc ~x0 ~y0 ~x1 ~y1 =
  let ix0 = max 0 (int_of_float (x0 /. bin_w)) in
  let ix1 = min (bins_x - 1) (int_of_float ((x1 -. 1e-9) /. bin_w)) in
  let iy0 = max 0 (int_of_float (y0 /. bin_h)) in
  let iy1 = min (bins_y - 1) (int_of_float ((y1 -. 1e-9) /. bin_h)) in
  for iy = iy0 to iy1 do
    for ix = ix0 to ix1 do
      let bx0 = float_of_int ix *. bin_w and by0 = float_of_int iy *. bin_h in
      let a =
        overlap x0 x1 bx0 (bx0 +. bin_w) *. overlap y0 y1 by0 (by0 +. bin_h)
      in
      acc.((iy * bins_x) + ix) <- acc.((iy * bins_x) + ix) +. a
    done
  done

let map ?bins_x ?bins_y (d : Design.t) (pl : Placement.t) =
  let chip = d.Design.chip in
  let bins_x =
    match bins_x with
    | Some v ->
      if v < 1 then invalid_arg "Density.map: bins_x < 1";
      v
    | None -> max 1 (chip.Chip.num_sites / 16)
  in
  let bins_y =
    match bins_y with
    | Some v ->
      if v < 1 then invalid_arg "Density.map: bins_y < 1";
      v
    | None -> max 1 (chip.Chip.num_rows / 4)
  in
  let bin_w = float_of_int chip.Chip.num_sites /. float_of_int bins_x in
  let bin_h = float_of_int chip.Chip.num_rows /. float_of_int bins_y in
  let used = Array.make (bins_x * bins_y) 0.0 in
  let blocked = Array.make (bins_x * bins_y) 0.0 in
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      let x0 = pl.Placement.xs.(i) and y0 = pl.Placement.ys.(i) in
      spread_area ~bins_x ~bins_y ~bin_w ~bin_h used ~x0 ~y0
        ~x1:(x0 +. float_of_int c.Cell.width)
        ~y1:(y0 +. float_of_int c.Cell.height))
    d.Design.cells;
  Array.iter
    (fun (b : Blockage.t) ->
      let x0 = float_of_int b.Blockage.x and y0 = float_of_int b.Blockage.row in
      spread_area ~bins_x ~bins_y ~bin_w ~bin_h blocked ~x0 ~y0
        ~x1:(x0 +. float_of_int b.Blockage.width)
        ~y1:(y0 +. float_of_int b.Blockage.height))
    d.Design.blockages;
  let bin_area = bin_w *. bin_h in
  let utilization =
    Array.init (bins_x * bins_y) (fun k ->
        let free = bin_area -. blocked.(k) in
        if free <= 1e-9 then 0.0 else used.(k) /. free)
  in
  { bins_x; bins_y; bin_w; bin_h; utilization }

let get m ix iy =
  if ix < 0 || ix >= m.bins_x || iy < 0 || iy >= m.bins_y then
    invalid_arg "Density.get: bin out of range";
  m.utilization.((iy * m.bins_x) + ix)

type overflow = {
  max_utilization : float;
  mean_utilization : float;
  overflow_ratio : float;
  overflowed_bins : int;
}

let overflow ?(limit = 1.0) m =
  let n = Array.length m.utilization in
  if n = 0 then
    { max_utilization = 0.0; mean_utilization = 0.0; overflow_ratio = 0.0;
      overflowed_bins = 0 }
  else begin
    let total = ref 0.0 and above = ref 0.0 in
    let max_u = ref 0.0 and over_bins = ref 0 in
    Array.iter
      (fun u ->
        total := !total +. u;
        if u > !max_u then max_u := u;
        if u > limit then begin
          incr over_bins;
          above := !above +. (u -. limit)
        end)
      m.utilization;
    { max_utilization = !max_u;
      mean_utilization = !total /. float_of_int n;
      overflow_ratio = (if !total > 0.0 then !above /. !total else 0.0);
      overflowed_bins = !over_bins }
  end

let row_utilization (d : Design.t) (pl : Placement.t) =
  let chip = d.Design.chip in
  let num_rows = chip.Chip.num_rows in
  let used = Array.make num_rows 0.0 in
  let blocked = Array.make num_rows 0.0 in
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.Cell.id in
      let y0 = pl.Placement.ys.(i) in
      let w = float_of_int c.Cell.width in
      for r = 0 to num_rows - 1 do
        let cover =
          overlap y0 (y0 +. float_of_int c.Cell.height) (float_of_int r)
            (float_of_int (r + 1))
        in
        used.(r) <- used.(r) +. (w *. cover)
      done)
    d.Design.cells;
  Array.iter
    (fun (b : Blockage.t) ->
      for r = b.Blockage.row to b.Blockage.row + b.Blockage.height - 1 do
        blocked.(r) <- blocked.(r) +. float_of_int b.Blockage.width
      done)
    d.Design.blockages;
  Array.init num_rows (fun r ->
      let free = float_of_int chip.Chip.num_sites -. blocked.(r) in
      if free <= 1e-9 then 0.0 else used.(r) /. free)

let to_svg ?(pixels_per_bin = 24.0) m =
  let buf = Buffer.create 4096 in
  let w = float_of_int m.bins_x *. pixels_per_bin in
  let h = float_of_int m.bins_y *. pixels_per_bin in
  Printf.ksprintf (Buffer.add_string buf)
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.2f %.2f\">\n"
    w h w h;
  (* white -> blue for u in [0, 1); red beyond *)
  let color u =
    if u >= 1.0 then "#cc2222"
    else begin
      let t = Float.max 0.0 (Float.min 1.0 u) in
      let channel a b = int_of_float (a +. (t *. (b -. a))) in
      Printf.sprintf "#%02x%02x%02x" (channel 255. 31.) (channel 255. 78.)
        (channel 255. 156.)
    end
  in
  for iy = 0 to m.bins_y - 1 do
    for ix = 0 to m.bins_x - 1 do
      let u = m.utilization.((iy * m.bins_x) + ix) in
      let x = float_of_int ix *. pixels_per_bin in
      (* flip: row 0 at the bottom *)
      let y = float_of_int (m.bins_y - 1 - iy) *. pixels_per_bin in
      Printf.ksprintf (Buffer.add_string buf)
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
         fill=\"%s\"%s><title>bin (%d, %d): %.1f%%</title></rect>\n"
        x y pixels_per_bin pixels_per_bin (color u)
        (if u > 1.0 then " stroke=\"#000000\" stroke-width=\"1\"" else "")
        ix iy (100.0 *. u)
    done
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let pp_histogram ppf m =
  let buckets = Array.make 11 0 in
  Array.iter
    (fun u ->
      let b = if u >= 1.0 then 10 else int_of_float (u *. 10.0) in
      buckets.(min 10 b) <- buckets.(min 10 b) + 1)
    m.utilization;
  let total = max 1 (Array.length m.utilization) in
  Format.fprintf ppf "@[<v 0>";
  Array.iteri
    (fun b count ->
      let label =
        if b = 10 then ">= 100%" else Printf.sprintf "%3d-%3d%%" (b * 10) ((b + 1) * 10)
      in
      let bar = String.make (60 * count / total) '#' in
      Format.fprintf ppf "%8s | %-60s %d@," label bar count)
    buckets;
  Format.fprintf ppf "@]"
