type pin = { cell : int; dx : float; dy : float }
type net = pin array
type t = { num_cells : int; nets : net array }

let make ~num_cells net_list =
  let nets = Array.of_list net_list in
  Array.iteri
    (fun n pins ->
      if Array.length pins = 0 then
        invalid_arg (Printf.sprintf "Netlist.make: net %d has no pin" n);
      Array.iter
        (fun p ->
          if p.cell < 0 || p.cell >= num_cells then
            invalid_arg
              (Printf.sprintf "Netlist.make: net %d pins missing cell %d" n
                 p.cell))
        pins)
    nets;
  { num_cells; nets }

let num_cells t = t.num_cells
let num_nets t = Array.length t.nets

let num_pins t =
  Array.fold_left (fun acc net -> acc + Array.length net) 0 t.nets

let net t i = t.nets.(i)
let iter t f = Array.iteri f t.nets

let nets_of_cell t =
  let buckets = Array.make t.num_cells [] in
  Array.iteri
    (fun n pins ->
      Array.iter (fun p -> buckets.(p.cell) <- n :: buckets.(p.cell)) pins)
    t.nets;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let empty ~num_cells = { num_cells; nets = [||] }
