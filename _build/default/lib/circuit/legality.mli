(** Legality checking for the four constraints of Problem (1):

    + cells inside the chip region,
    + cells on placement sites on rows,
    + no two cells overlapping,
    + power rails aligned (even-height cells on matching rows).

    Used by every test and by the benchmark harness to validate each
    legalizer's output and to count illegal cells after the MMSIM stage
    (Table 1). *)

type violation =
  | Outside of int  (** cell protrudes from the chip region *)
  | Off_site of int  (** coordinate not integral (not on a site/row) *)
  | Overlap of int * int * int  (** [Overlap (a, b, row)]: cells a < b overlap in row *)
  | Rail_mismatch of int  (** even-height cell on a row with the wrong rail *)
  | Blocked of int * int  (** [Blocked (cell, blockage)]: overlaps an obstacle *)
  | Outside_region of int  (** fence member not fully inside its region *)
  | In_foreign_region of int * int
      (** [(cell, region)]: a non-member overlapping a fence *)

val pp_violation : Format.formatter -> violation -> unit

val check : Design.t -> Placement.t -> violation list
(** All violations, overlap pairs reported once per row where they occur. *)

val is_legal : Design.t -> Placement.t -> bool

val illegal_cells : Design.t -> Placement.t -> int list
(** Sorted ids of distinct cells involved in at least one violation. For an
    overlapping pair, only the cell whose global-placement x is larger (the
    one a left-to-right scan would have to move) is blamed, matching how
    the paper counts cells that the Tetris-like allocation must fix. *)

val count_illegal : Design.t -> Placement.t -> int
