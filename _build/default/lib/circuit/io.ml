let design_magic = "mclh-design 1"
let placement_magic = "mclh-placement 1"

let rail_to_token = function
  | None -> "-"
  | Some Rail.Vdd -> "VDD"
  | Some Rail.Vss -> "VSS"

let rail_of_token line_no = function
  | "-" -> None
  | "VDD" -> Some Rail.Vdd
  | "VSS" -> Some Rail.Vss
  | s -> failwith (Printf.sprintf "line %d: unknown rail %S" line_no s)

let write_design ~path (d : Design.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let chip = d.Design.chip in
      Printf.fprintf oc "%s\n" design_magic;
      Printf.fprintf oc "name %s\n" d.Design.name;
      Printf.fprintf oc "chip %d %d %s %g\n" chip.Chip.num_rows
        chip.Chip.num_sites
        (Rail.to_string chip.Chip.base_rail)
        chip.Chip.row_height;
      let n = Design.num_cells d in
      Printf.fprintf oc "cells %d\n" n;
      for i = 0 to n - 1 do
        let c = d.Design.cells.(i) in
        Printf.fprintf oc "%d %d %d %s %.17g %.17g %s\n" c.Cell.id c.Cell.width
          c.Cell.height
          (rail_to_token c.Cell.bottom_rail)
          d.Design.global.Placement.xs.(i)
          d.Design.global.Placement.ys.(i)
          (match c.Cell.region with Some r -> Printf.sprintf "r%d" r | None -> "-")
      done;
      Printf.fprintf oc "nets %d\n" (Netlist.num_nets d.Design.nets);
      Netlist.iter d.Design.nets (fun _ pins ->
          Printf.fprintf oc "%d" (Array.length pins);
          Array.iter
            (fun (p : Netlist.pin) ->
              Printf.fprintf oc " %d %.17g %.17g" p.Netlist.cell p.dx p.dy)
            pins;
          output_char oc '\n');
      if Array.length d.Design.blockages > 0 then begin
        Printf.fprintf oc "blockages %d\n" (Array.length d.Design.blockages);
        Array.iter
          (fun (b : Blockage.t) ->
            Printf.fprintf oc "%d %d %d %d\n" b.Blockage.row b.Blockage.height
              b.Blockage.x b.Blockage.width)
          d.Design.blockages
      end;
      if Array.length d.Design.regions > 0 then begin
        Printf.fprintf oc "regions %d\n" (Array.length d.Design.regions);
        Array.iter
          (fun (reg : Region.t) ->
            Printf.fprintf oc "%s %d" reg.Region.name
              (List.length reg.Region.rects);
            List.iter
              (fun (r : Region.rect) ->
                Printf.fprintf oc " %d %d %d %d" r.Region.row r.Region.height
                  r.Region.x r.Region.width)
              reg.Region.rects;
            output_char oc '\n')
          d.Design.regions
      end)

type reader = { ic : in_channel; mutable line_no : int }

let next_line r =
  match In_channel.input_line r.ic with
  | Some l ->
    r.line_no <- r.line_no + 1;
    l
  | None -> failwith (Printf.sprintf "line %d: unexpected end of file" r.line_no)

let fail r msg = failwith (Printf.sprintf "line %d: %s" r.line_no msg)

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let read_design ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let r = { ic; line_no = 0 } in
      if next_line r <> design_magic then fail r "bad magic";
      let name =
        match tokens (next_line r) with
        | [ "name"; n ] -> n
        | _ -> fail r "expected: name <name>"
      in
      let chip =
        match tokens (next_line r) with
        | [ "chip"; rows; sites; rail; rh ] ->
          let base_rail =
            match rail_of_token r.line_no (String.uppercase_ascii rail) with
            | Some rl -> rl
            | None -> fail r "chip rail cannot be '-'"
          in
          Chip.make ~base_rail
            ~row_height:(float_of_string rh)
            ~num_rows:(int_of_string rows)
            ~num_sites:(int_of_string sites)
            ()
        | _ -> fail r "expected: chip <rows> <sites> <rail> <row_height>"
      in
      let n =
        match tokens (next_line r) with
        | [ "cells"; n ] -> int_of_string n
        | _ -> fail r "expected: cells <n>"
      in
      let cells = Array.make n None in
      let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
      let parse_region_token = function
        | "-" -> None
        | t when String.length t > 1 && t.[0] = 'r' ->
          Some (int_of_string (String.sub t 1 (String.length t - 1)))
        | t -> failwith (Printf.sprintf "line %d: bad region token %S" r.line_no t)
      in
      for _ = 1 to n do
        let line = tokens (next_line r) in
        match line with
        | [ id; w; h; rail; gx; gy ] | [ id; w; h; rail; gx; gy; _ ] ->
          let region =
            match line with
            | [ _; _; _; _; _; _; t ] -> parse_region_token t
            | _ -> None
          in
          let id = int_of_string id in
          if id < 0 || id >= n then fail r "cell id out of range";
          let cell =
            Cell.make ~id ~width:(int_of_string w) ~height:(int_of_string h)
              ?bottom_rail:(rail_of_token r.line_no rail)
              ?region ()
          in
          cells.(id) <- Some cell;
          xs.(id) <- float_of_string gx;
          ys.(id) <- float_of_string gy
        | _ -> fail r "expected: <id> <w> <h> <rail|-> <gx> <gy> [region]"
      done;
      let cells =
        Array.mapi
          (fun i c ->
            match c with
            | Some c -> c
            | None -> failwith (Printf.sprintf "missing cell %d" i))
          cells
      in
      let k =
        match tokens (next_line r) with
        | [ "nets"; k ] -> int_of_string k
        | _ -> fail r "expected: nets <k>"
      in
      let nets = ref [] in
      for _ = 1 to k do
        match tokens (next_line r) with
        | npins :: rest ->
          let npins = int_of_string npins in
          if List.length rest <> 3 * npins then fail r "pin arity mismatch";
          let arr = Array.of_list rest in
          let pins =
            Array.init npins (fun p ->
                { Netlist.cell = int_of_string arr.((3 * p));
                  dx = float_of_string arr.((3 * p) + 1);
                  dy = float_of_string arr.((3 * p) + 2) })
          in
          nets := pins :: !nets
        | [] -> fail r "expected a net line"
      done;
      (* optional trailing blockage / region sections, in order *)
      let blockages = ref [||] and regions = ref [||] in
      let parse_section line =
        match tokens line with
        | [ "blockages"; j ] ->
          let j = int_of_string j in
          blockages :=
            Array.init j (fun _ ->
                match tokens (next_line r) with
                | [ row; height; x; width ] ->
                  Blockage.make ~row:(int_of_string row)
                    ~height:(int_of_string height) ~x:(int_of_string x)
                    ~width:(int_of_string width)
                | _ -> fail r "expected: <row> <height> <x> <width>")
        | [ "regions"; k ] ->
          let k = int_of_string k in
          regions :=
            Array.init k (fun _ ->
                match tokens (next_line r) with
                | rname :: nrects :: rest ->
                  let nrects = int_of_string nrects in
                  if List.length rest <> 4 * nrects then
                    fail r "region rect arity mismatch";
                  let arr = Array.of_list rest in
                  let rects =
                    List.init nrects (fun p ->
                        { Region.row = int_of_string arr.(4 * p);
                          height = int_of_string arr.((4 * p) + 1);
                          x = int_of_string arr.((4 * p) + 2);
                          width = int_of_string arr.((4 * p) + 3) })
                  in
                  Region.make ~name:rname rects
                | _ -> fail r "expected: <name> <#rects> <rects...>")
        | _ -> fail r "expected: blockages <j> or regions <k>"
      in
      let rec sections () =
        match In_channel.input_line ic with
        | None -> ()
        | Some line ->
          r.line_no <- r.line_no + 1;
          if String.trim line <> "" then parse_section line;
          sections ()
      in
      sections ();
      Design.make ~blockages:!blockages ~regions:!regions ~name ~chip ~cells
        ~global:(Placement.make ~xs ~ys)
        ~nets:(Netlist.make ~num_cells:n (List.rev !nets))
        ())

let write_placement ~path (pl : Placement.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n%d\n" placement_magic (Placement.num_cells pl);
      for i = 0 to Placement.num_cells pl - 1 do
        Printf.fprintf oc "%.17g %.17g\n" pl.Placement.xs.(i) pl.Placement.ys.(i)
      done)

let read_placement ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let r = { ic; line_no = 0 } in
      if next_line r <> placement_magic then fail r "bad magic";
      let n = int_of_string (String.trim (next_line r)) in
      let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
      for i = 0 to n - 1 do
        match tokens (next_line r) with
        | [ x; y ] ->
          xs.(i) <- float_of_string x;
          ys.(i) <- float_of_string y
        | _ -> fail r "expected: <x> <y>"
      done;
      Placement.make ~xs ~ys)
