type t = Vdd | Vss

let opposite = function Vdd -> Vss | Vss -> Vdd

let equal a b =
  match a, b with Vdd, Vdd | Vss, Vss -> true | Vdd, Vss | Vss, Vdd -> false

let to_string = function Vdd -> "VDD" | Vss -> "VSS"
let pp ppf t = Format.pp_print_string ppf (to_string t)
