lib/circuit/design.mli: Blockage Cell Chip Netlist Placement Region
