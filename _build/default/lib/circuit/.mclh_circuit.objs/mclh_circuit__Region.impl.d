lib/circuit/region.ml: Blockage Chip Float List
