lib/circuit/svg.ml: Array Blockage Buffer Cell Chip Design Float Fun Placement Printf Rail
