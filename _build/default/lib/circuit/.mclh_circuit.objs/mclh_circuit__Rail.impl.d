lib/circuit/rail.ml: Format
