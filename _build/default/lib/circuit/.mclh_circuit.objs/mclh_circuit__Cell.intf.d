lib/circuit/cell.mli: Format Rail
