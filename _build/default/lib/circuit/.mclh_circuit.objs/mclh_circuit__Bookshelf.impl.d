lib/circuit/bookshelf.ml: Array Blockage Cell Chip Design Filename Float Fun Hashtbl In_channel List Netlist Placement Printf String Sys
