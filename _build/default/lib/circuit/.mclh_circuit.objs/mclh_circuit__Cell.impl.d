lib/circuit/cell.ml: Format Printf Rail
