lib/circuit/netlist.mli:
