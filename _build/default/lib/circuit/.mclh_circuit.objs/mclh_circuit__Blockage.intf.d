lib/circuit/blockage.mli: Chip Format
