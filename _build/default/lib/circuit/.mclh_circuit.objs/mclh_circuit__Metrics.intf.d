lib/circuit/metrics.mli: Format Placement
