lib/circuit/density.ml: Array Blockage Buffer Cell Chip Design Float Format Placement Printf String
