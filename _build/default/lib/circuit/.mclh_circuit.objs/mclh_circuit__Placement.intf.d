lib/circuit/placement.mli:
