lib/circuit/placement.ml: Array Float
