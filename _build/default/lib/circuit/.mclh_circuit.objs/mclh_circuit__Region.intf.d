lib/circuit/region.mli: Blockage Chip
