lib/circuit/hpwl.mli: Netlist Placement
