lib/circuit/metrics.ml: Array Float Format Placement
