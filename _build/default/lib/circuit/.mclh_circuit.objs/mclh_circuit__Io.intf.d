lib/circuit/io.mli: Design Placement
