lib/circuit/blockage.ml: Chip Format
