lib/circuit/netlist.ml: Array List Printf
