lib/circuit/rail.mli: Format
