lib/circuit/bookshelf.mli: Design
