lib/circuit/hpwl.ml: Array Netlist Placement
