lib/circuit/legality.mli: Design Format Placement
