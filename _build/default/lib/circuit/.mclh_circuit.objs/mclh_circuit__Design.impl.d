lib/circuit/design.ml: Array Blockage Cell Chip Hashtbl List Netlist Placement Printf Region
