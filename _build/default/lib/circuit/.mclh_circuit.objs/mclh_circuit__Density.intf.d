lib/circuit/density.mli: Design Format Placement
