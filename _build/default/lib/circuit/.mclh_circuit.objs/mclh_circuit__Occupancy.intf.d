lib/circuit/occupancy.mli: Cell Chip Design
