lib/circuit/chip.mli: Cell Format Rail
