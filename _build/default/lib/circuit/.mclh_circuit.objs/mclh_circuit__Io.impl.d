lib/circuit/io.ml: Array Blockage Cell Chip Design Fun In_channel List Netlist Placement Printf Rail Region String
