lib/circuit/legality.ml: Array Blockage Cell Chip Design Float Format Int List Placement Region Set
