lib/circuit/chip.ml: Cell Float Format Option Printf Rail
