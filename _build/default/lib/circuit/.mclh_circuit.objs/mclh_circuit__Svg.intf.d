lib/circuit/svg.mli: Design Placement
