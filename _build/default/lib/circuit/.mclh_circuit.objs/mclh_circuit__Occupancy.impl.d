lib/circuit/occupancy.ml: Array Blockage Bytes Cell Chip Design Float Printf
