(** Bookshelf placement format (UCLA .aux/.nodes/.nets/.pl/.scl).

    The standard academic interchange format (ISPD placement contests).
    [write] emits a complete benchmark bundle; [read] parses one back. The
    mapping between Bookshelf's physical coordinates and this library's
    site/row grid:

    - x is measured in site widths in both; Bookshelf y is physical and is
      divided by the (uniform) row height from the .scl file to obtain row
      coordinates;
    - a movable node of height [k * row_height] is a k-row cell; terminal
      nodes become {!Blockage}s (snapped to the grid);
    - Bookshelf pin offsets are measured from the node *center*; they are
      converted to this library's bottom-left-relative offsets;
    - Bookshelf has no power-rail information, so on [read] each
      even-height movable cell is assigned the bottom rail of the row
      nearest its .pl position, making the input placement rail-consistent
      (the convention is documented and reversible).

    Irregular inputs (non-uniform row heights, subrow gaps) are rejected
    with a descriptive [Failure]. *)

val write : basename:string -> Design.t -> unit
(** [write ~basename design] creates [basename.aux], [.nodes], [.nets],
    [.pl] and [.scl] next to each other. *)

val read : aux:string -> Design.t
(** [read ~aux] loads the bundle referenced by the .aux file.
    @raise Failure on malformed or unsupported input, naming the file and
      line. *)
