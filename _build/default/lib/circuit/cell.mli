(** Standard cells.

    Dimensions are in placement grid units: width in sites, height in rows.
    Even-row-height cells carry the rail type their bottom boundary was
    designed for; odd-row-height cells are flippable and carry none. *)

type t = private {
  id : int;  (** index into the design's cell array *)
  name : string;
  width : int;  (** in sites, >= 1 *)
  height : int;  (** in rows, >= 1 *)
  bottom_rail : Rail.t option;
      (** [Some _] iff the height is even; enforced by {!make} *)
  region : int option;
      (** fence-region membership: index into the design's region array;
          [None] = the default territory outside every fence *)
}

val make :
  id:int -> ?name:string -> width:int -> height:int ->
  ?bottom_rail:Rail.t -> ?region:int -> unit -> t
(** Builds a cell. [name] defaults to ["c<id>"].
    @raise Invalid_argument if [width < 1], [height < 1], an even-height
      cell lacks [bottom_rail], or an odd-height cell supplies one. *)

val is_multi_row : t -> bool
(** Height of at least two rows. *)

val is_even_height : t -> bool

val area : t -> int
(** [width * height] in site-row units. *)

val pp : Format.formatter -> t -> unit
