type options = {
  pixels_per_site : float;
  pixels_per_row : float;
  draw_displacement : bool;
  draw_rails : bool;
  window : (float * float * float * float) option;
}

let default_options =
  { pixels_per_site = 4.0;
    pixels_per_row = 8.0;
    draw_displacement = true;
    draw_rails = true;
    window = None }

let render ?(options = default_options) (design : Design.t) (pl : Placement.t) =
  let chip = design.chip in
  let x0, y0, x1, y1 =
    match options.window with
    | Some w -> w
    | None ->
      (0.0, 0.0, float_of_int chip.Chip.num_sites, float_of_int chip.Chip.num_rows)
  in
  let sx = options.pixels_per_site and sy = options.pixels_per_row in
  let width = (x1 -. x0) *. sx and height = (y1 -. y0) *. sy in
  (* svg y grows downward; flip so row 0 sits at the bottom *)
  let px x = (x -. x0) *. sx in
  let py y = height -. ((y -. y0) *. sy) in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
     viewBox=\"0 0 %.2f %.2f\">\n"
    width height width height;
  out "<rect x=\"0\" y=\"0\" width=\"%.2f\" height=\"%.2f\" fill=\"#f8f8f8\"/>\n"
    width height;
  if options.draw_rails then
    for r = 0 to chip.Chip.num_rows do
      let yy = float_of_int r in
      if yy >= y0 && yy <= y1 then begin
        let rail_label =
          if r < chip.Chip.num_rows then Rail.to_string (Chip.bottom_rail chip r)
          else Rail.to_string (Rail.opposite (Chip.bottom_rail chip (r - 1)))
        in
        let color = if rail_label = "VDD" then "#d4622a" else "#4a7a4a" in
        out
          "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" \
           stroke=\"%s\" stroke-width=\"0.6\" stroke-dasharray=\"4,3\"/>\n"
          (px x0) (py yy) (px x1) (py yy) color
      end
    done;
  let visible cx cy w h =
    cx +. w >= x0 && cx <= x1 && cy +. h >= y0 && cy <= y1
  in
  Array.iter
    (fun (b : Blockage.t) ->
      let bx = float_of_int b.Blockage.x and by = float_of_int b.Blockage.row in
      let bw = float_of_int b.Blockage.width
      and bh = float_of_int b.Blockage.height in
      if visible bx by bw bh then
        out
          "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
           fill=\"#555555\" stroke=\"#222222\" stroke-width=\"0.4\"/>\n"
          (px bx)
          (py (by +. bh))
          (bw *. sx) (bh *. sy))
    design.blockages;
  Array.iter
    (fun (c : Cell.t) ->
      let i = c.id in
      let x = pl.xs.(i) and y = pl.ys.(i) in
      let w = float_of_int c.width and h = float_of_int c.height in
      if visible x y w h then begin
        let fill = if Cell.is_multi_row c then "#1f4e9c" else "#5b8dd9" in
        out
          "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
           fill=\"%s\" fill-opacity=\"0.85\" stroke=\"#203050\" \
           stroke-width=\"0.3\"/>\n"
          (px x)
          (py (y +. h))
          (w *. sx) (h *. sy) fill
      end)
    design.cells;
  if options.draw_displacement then
    Array.iter
      (fun (c : Cell.t) ->
        let i = c.id in
        let w = float_of_int c.width and h = float_of_int c.height in
        let gx = design.global.Placement.xs.(i) +. (w /. 2.0)
        and gy = design.global.Placement.ys.(i) +. (h /. 2.0) in
        let lx = pl.xs.(i) +. (w /. 2.0) and ly = pl.ys.(i) +. (h /. 2.0) in
        let moved = Float.abs (gx -. lx) +. Float.abs (gy -. ly) > 1e-9 in
        if moved && (visible gx gy 0.0 0.0 || visible lx ly 0.0 0.0) then
          out
            "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" \
             stroke=\"#cc2222\" stroke-width=\"0.5\"/>\n"
            (px gx) (py gy) (px lx) (py ly))
      design.cells;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ?options ~path design pl =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?options design pl))
