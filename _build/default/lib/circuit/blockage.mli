(** Placement blockages (fixed macros / keep-out rectangles).

    The original ISPD-2015 benchmarks carry fence regions and routing
    blockages; the paper's modified suite drops them, but a production
    legalizer must handle fixed obstacles. A blockage occupies a rectangle
    of sites that no cell may overlap. *)

type t = private {
  row : int;  (** bottom row *)
  height : int;  (** rows covered *)
  x : int;  (** left site *)
  width : int;  (** sites covered *)
}

val make : row:int -> height:int -> x:int -> width:int -> t
(** @raise Invalid_argument on non-positive dimensions or negative
    origin. *)

val inside : t -> Chip.t -> bool
(** Whether the blockage lies fully inside the chip. *)

val covers_row : t -> int -> bool

val overlaps_span : t -> row:int -> height:int -> x:float -> width:int -> bool
(** Whether a cell span (possibly at a fractional x) overlaps the
    blockage. *)

val area : t -> int

val pp : Format.formatter -> t -> unit
