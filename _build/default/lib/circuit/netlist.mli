(** Netlists: hyperedges over cells with pin offsets.

    Each pin names a cell and an offset from the cell's bottom-left corner
    (in site/row units), so wirelength reacts to cell positions exactly as
    in the half-perimeter model used by the paper's dHPWL column. *)

type pin = { cell : int; dx : float; dy : float }

type net = pin array

type t

val make : num_cells:int -> net list -> t
(** Validates that every pin references a cell in range and every net has
    at least one pin (single-pin nets are allowed; their HPWL is zero). *)

val num_cells : t -> int

val num_nets : t -> int

val num_pins : t -> int

val net : t -> int -> net

val iter : t -> (int -> net -> unit) -> unit

val nets_of_cell : t -> int array array
(** [nets_of_cell t] maps each cell to the ids of the nets it pins;
    computed once, O(pins). *)

val empty : num_cells:int -> t
