type t = { xs : float array; ys : float array }

let create n = { xs = Array.make n 0.0; ys = Array.make n 0.0 }

let make ~xs ~ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Placement.make: xs/ys length mismatch";
  { xs; ys }

let num_cells t = Array.length t.xs
let copy t = { xs = Array.copy t.xs; ys = Array.copy t.ys }
let get t i = (t.xs.(i), t.ys.(i))

let set t i ~x ~y =
  t.xs.(i) <- x;
  t.ys.(i) <- y

let is_integral ?(eps = 1e-9) t =
  let near_int v = Float.abs (v -. Float.round v) <= eps in
  Array.for_all near_int t.xs && Array.for_all near_int t.ys

let round t =
  { xs = Array.map Float.round t.xs; ys = Array.map Float.round t.ys }

let equal ?(eps = 1e-12) a b =
  num_cells a = num_cells b
  &&
  let ok = ref true in
  for i = 0 to num_cells a - 1 do
    if
      Float.abs (a.xs.(i) -. b.xs.(i)) > eps
      || Float.abs (a.ys.(i) -. b.ys.(i)) > eps
    then ok := false
  done;
  !ok
