let net ?(row_height = 1.0) pins (pl : Placement.t) =
  match Array.length pins with
  | 0 -> 0.0
  | _ ->
    let min_x = ref infinity and max_x = ref neg_infinity in
    let min_y = ref infinity and max_y = ref neg_infinity in
    Array.iter
      (fun (p : Netlist.pin) ->
        let px = pl.xs.(p.cell) +. p.dx and py = pl.ys.(p.cell) +. p.dy in
        if px < !min_x then min_x := px;
        if px > !max_x then max_x := px;
        if py < !min_y then min_y := py;
        if py > !max_y then max_y := py)
      pins;
    !max_x -. !min_x +. (row_height *. (!max_y -. !min_y))

let total ?row_height nets pl =
  let acc = ref 0.0 in
  Netlist.iter nets (fun _ pins -> acc := !acc +. net ?row_height pins pl);
  !acc

let delta ?row_height nets ~before after =
  let base = total ?row_height nets before in
  if base = 0.0 then 0.0
  else (total ?row_height nets after -. base) /. base
