type t = { row : int; height : int; x : int; width : int }

let make ~row ~height ~x ~width =
  if height < 1 || width < 1 then
    invalid_arg "Blockage.make: non-positive dimensions";
  if row < 0 || x < 0 then invalid_arg "Blockage.make: negative origin";
  { row; height; x; width }

let inside t (chip : Chip.t) =
  t.row + t.height <= chip.Chip.num_rows && t.x + t.width <= chip.Chip.num_sites

let covers_row t row = t.row <= row && row < t.row + t.height

let overlaps_span t ~row ~height ~x ~width =
  let rows_meet = row < t.row + t.height && t.row < row + height in
  let x_meet =
    x < float_of_int (t.x + t.width) && float_of_int t.x < x +. float_of_int width
  in
  rows_meet && x_meet

let area t = t.height * t.width

let pp ppf t =
  Format.fprintf ppf "blockage(rows %d..%d, sites %d..%d)" t.row
    (t.row + t.height - 1) t.x
    (t.x + t.width - 1)
