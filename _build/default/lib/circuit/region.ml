type rect = { row : int; height : int; x : int; width : int }
type t = { name : string; rects : rect list }

let rects_overlap a b =
  a.row < b.row + b.height && b.row < a.row + a.height
  && a.x < b.x + b.width && b.x < a.x + a.width

let make ~name rects =
  if rects = [] then invalid_arg "Region.make: empty rectangle list";
  List.iter
    (fun r ->
      if r.height < 1 || r.width < 1 || r.row < 0 || r.x < 0 then
        invalid_arg "Region.make: degenerate rectangle")
    rects;
  let rec check = function
    | [] -> ()
    | r :: rest ->
      if List.exists (rects_overlap r) rest then
        invalid_arg "Region.make: overlapping rectangles";
      check rest
  in
  check rects;
  { name; rects }

let inside_chip t (chip : Chip.t) =
  List.for_all
    (fun r ->
      r.row + r.height <= chip.Chip.num_rows
      && r.x + r.width <= chip.Chip.num_sites)
    t.rects

let span_meets_rect r ~row ~height ~x ~width =
  row < r.row + r.height && r.row < row + height
  && x < float_of_int (r.x + r.width)
  && float_of_int r.x < x +. float_of_int width

(* union semantics: every spanned row's interval must be covered by the
   union of the region's intervals in that row *)
let contains_span t ~row ~height ~x ~width =
  let x1 = x +. float_of_int width in
  let row_covered r =
    let intervals =
      t.rects
      |> List.filter (fun rc -> rc.row <= r && r < rc.row + rc.height)
      |> List.map (fun rc -> (float_of_int rc.x, float_of_int (rc.x + rc.width)))
      |> List.sort compare
    in
    let rec cover cursor = function
      | [] -> cursor >= x1
      | (a, b) :: rest ->
        if a > cursor then false else cover (Float.max cursor b) rest
    in
    (* start coverage at x; skip intervals ending before x *)
    let relevant = List.filter (fun (_, b) -> b > x) intervals in
    cover x relevant
  in
  let rec all r = r >= row + height || (row_covered r && all (r + 1)) in
  all row

let intersects_span t ~row ~height ~x ~width =
  List.exists (fun r -> span_meets_rect r ~row ~height ~x ~width) t.rects

let to_blockages t =
  List.map
    (fun r -> Blockage.make ~row:r.row ~height:r.height ~x:r.x ~width:r.width)
    t.rects

let complement_blockages t (chip : Chip.t) =
  (* per row: the complement of the region's site intervals, merged into
     maximal horizontal strips (one blockage per row-interval keeps the
     count modest and correctness obvious) *)
  let num_rows = chip.Chip.num_rows and num_sites = chip.Chip.num_sites in
  let out = ref [] in
  for row = 0 to num_rows - 1 do
    let intervals =
      t.rects
      |> List.filter (fun r -> r.row <= row && row < r.row + r.height)
      |> List.map (fun r -> (r.x, r.x + r.width))
      |> List.sort compare
    in
    let rec free cursor = function
      | [] ->
        if cursor < num_sites then
          out :=
            Blockage.make ~row ~height:1 ~x:cursor ~width:(num_sites - cursor)
            :: !out
      | (a, b) :: rest ->
        if cursor < a then
          out := Blockage.make ~row ~height:1 ~x:cursor ~width:(a - cursor) :: !out;
        free (max cursor b) rest
    in
    free 0 intervals
  done;
  List.rev !out

let area t =
  List.fold_left (fun acc r -> acc + (r.height * r.width)) 0 t.rects
