(** SVG rendering of placements (Figure 5 of the paper).

    Cells are drawn in blue (multi-row cells in a darker blue) and the
    displacement of each cell from its global position as a red segment,
    matching the paper's figure legend. *)

type options = {
  pixels_per_site : float;  (** horizontal scale *)
  pixels_per_row : float;  (** vertical scale *)
  draw_displacement : bool;
  draw_rails : bool;  (** dashed rail lines labelled by VDD/VSS parity *)
  window : (float * float * float * float) option;
      (** [(x0, y0, x1, y1)] in site/row units to render a zoomed partial
          layout; [None] renders the whole chip *)
}

val default_options : options
(** 4 px per site, 8 px per row, displacement and rails on, full chip. *)

val render : ?options:options -> Design.t -> Placement.t -> string
(** The SVG document as a string. The y axis is flipped so row 0 is at the
    bottom, as in layout plots. *)

val write_file : ?options:options -> path:string -> Design.t -> Placement.t -> unit
