type t = {
  name : string;
  chip : Chip.t;
  cells : Cell.t array;
  global : Placement.t;
  nets : Netlist.t;
  blockages : Blockage.t array;
  regions : Region.t array;
}

let make ?(blockages = [||]) ?(regions = [||]) ~name ~chip ~cells ~global
    ~nets () =
  let n = Array.length cells in
  Array.iteri
    (fun i (c : Cell.t) ->
      if c.id <> i then
        invalid_arg
          (Printf.sprintf "Design.make: cell at index %d has id %d" i c.id);
      if c.width > chip.Chip.num_sites then
        invalid_arg (Printf.sprintf "Design.make: cell %d wider than chip" i);
      if c.height > chip.Chip.num_rows then
        invalid_arg (Printf.sprintf "Design.make: cell %d taller than chip" i))
    cells;
  if Placement.num_cells global <> n then
    invalid_arg "Design.make: placement size mismatch";
  if Netlist.num_cells nets <> n then
    invalid_arg "Design.make: netlist size mismatch";
  Array.iteri
    (fun k b ->
      if not (Blockage.inside b chip) then
        invalid_arg (Printf.sprintf "Design.make: blockage %d outside chip" k))
    blockages;
  Array.iteri
    (fun k reg ->
      if not (Region.inside_chip reg chip) then
        invalid_arg (Printf.sprintf "Design.make: region %d outside chip" k))
    regions;
  Array.iter
    (fun (c : Cell.t) ->
      match c.Cell.region with
      | Some r when r < 0 || r >= Array.length regions ->
        invalid_arg
          (Printf.sprintf "Design.make: cell %d references unknown region %d"
             c.Cell.id r)
      | Some _ | None -> ())
    cells;
  { name; chip; cells; global; nets; blockages; regions }

let free_capacity t =
  Chip.capacity t.chip
  - Array.fold_left (fun acc b -> acc + Blockage.area b) 0 t.blockages

let num_cells t = Array.length t.cells

let total_cell_area t =
  Array.fold_left (fun acc c -> acc + Cell.area c) 0 t.cells

let density t =
  float_of_int (total_cell_area t) /. float_of_int (max 1 (free_capacity t))

let count_by_height t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun (c : Cell.t) ->
      let prev = try Hashtbl.find tbl c.height with Not_found -> 0 in
      Hashtbl.replace tbl c.height (prev + 1))
    t.cells;
  Hashtbl.fold (fun h c acc -> (h, c) :: acc) tbl []
  |> List.sort (fun (h1, _) (h2, _) -> compare h1 h2)

let cell t i = t.cells.(i)
