(** Plain-text serialization of designs and placements.

    A minimal bookshelf-style format so the CLI can hand instances between
    tools and users can inspect them:

    {v
    mclh-design 1
    name fft_2
    chip <rows> <sites> <base_rail> <row_height>
    cells <n>
    <id> <width> <height> <rail|-> <gx> <gy>   # one line per cell
    nets <k>
    <npins> <cell> <dx> <dy> ...               # one line per net
    blockages <j>                              # optional section
    <row> <height> <x> <width>                 # one line per blockage
    regions <r>                                # optional section
    <name> <#rects> <row> <h> <x> <w> ...      # one line per region
    v}

    Cell lines carry an optional seventh token for fence membership
    ([r<k>] or [-]); files written by older versions omit it.

    Placements:

    {v
    mclh-placement 1
    <n>
    <x> <y>                                    # one line per cell
    v} *)

val write_design : path:string -> Design.t -> unit

val read_design : path:string -> Design.t
(** @raise Failure on malformed input, with a line-numbered message. *)

val write_placement : path:string -> Placement.t -> unit

val read_placement : path:string -> Placement.t
(** @raise Failure on malformed input. *)
