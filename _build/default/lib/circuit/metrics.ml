type t = {
  total_manhattan : float;
  total_euclidean : float;
  total_squared : float;
  max_manhattan : float;
  moved_cells : int;
}

let displacement ?(row_height = 1.0) ~(before : Placement.t)
    (after : Placement.t) =
  let n = Placement.num_cells before in
  if Placement.num_cells after <> n then
    invalid_arg "Metrics.displacement: placement size mismatch";
  let total_manhattan = ref 0.0
  and total_euclidean = ref 0.0
  and total_squared = ref 0.0
  and max_manhattan = ref 0.0
  and moved = ref 0 in
  for i = 0 to n - 1 do
    let dx = after.xs.(i) -. before.xs.(i)
    and dy = row_height *. (after.ys.(i) -. before.ys.(i)) in
    let manhattan = Float.abs dx +. Float.abs dy in
    let squared = (dx *. dx) +. (dy *. dy) in
    total_manhattan := !total_manhattan +. manhattan;
    total_euclidean := !total_euclidean +. sqrt squared;
    total_squared := !total_squared +. squared;
    if manhattan > !max_manhattan then max_manhattan := manhattan;
    if manhattan > 1e-9 then incr moved
  done;
  { total_manhattan = !total_manhattan;
    total_euclidean = !total_euclidean;
    total_squared = !total_squared;
    max_manhattan = !max_manhattan;
    moved_cells = !moved }

let avg_manhattan m n =
  if n = 0 then 0.0 else m.total_manhattan /. float_of_int n

let pp ppf m =
  Format.fprintf ppf
    "disp(manhattan %.1f, euclidean %.1f, squared %.1f, max %.2f, moved %d)"
    m.total_manhattan m.total_euclidean m.total_squared m.max_manhattan
    m.moved_cells
