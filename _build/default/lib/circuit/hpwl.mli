(** Half-perimeter wirelength.

    HPWL of a net is the half perimeter of the bounding box of its pins;
    the design HPWL is the sum over nets. The paper's dHPWL column is the
    relative increase from the global placement, computed by {!delta}. *)

val net : ?row_height:float -> Netlist.net -> Placement.t -> float
(** HPWL of one net under the given placement; y spans are scaled by
    [row_height] (default 1.0) so both axes are in site widths. *)

val total : ?row_height:float -> Netlist.t -> Placement.t -> float
(** Sum of net HPWLs. *)

val delta :
  ?row_height:float -> Netlist.t -> before:Placement.t -> Placement.t -> float
(** [delta nets ~before after] is
    [(total after - total before) / total before]; 0 when the design has
    no nets or zero initial wirelength. *)
