(** The chip region: a grid of rows and placement sites with alternating
    power rails.

    Coordinates are grid-normalized: x in site widths (as the paper's
    "Total Disp. (sites)" column), y in row indices. A row is physically
    [row_height] site widths tall; metrics scale y by it. *)

type t = private {
  num_rows : int;
  num_sites : int;  (** sites per row *)
  base_rail : Rail.t;  (** rail at the bottom boundary of row 0 *)
  row_height : float;
      (** physical height of one row measured in site widths; standard-cell
          rows are typically 8-12 sites tall, so vertical movement is far
          more expensive than horizontal. All displacement and wirelength
          metrics in site units scale y by this factor. *)
}

val make :
  ?base_rail:Rail.t -> ?row_height:float -> num_rows:int -> num_sites:int ->
  unit -> t
(** Defaults: [base_rail = Vss], [row_height = 8.0].
    @raise Invalid_argument if [num_rows < 1], [num_sites < 1] or
      [row_height <= 0]. *)

val bottom_rail : t -> int -> Rail.t
(** [bottom_rail chip row] is the rail type along the bottom boundary of
    [row]; rails alternate, so row parity decides.
    @raise Invalid_argument when [row] is outside [0 .. num_rows - 1]. *)

val row_in_range : t -> row:int -> height:int -> bool
(** Whether a cell of the given height starting at [row] lies inside the
    chip vertically. *)

val row_admits : t -> Cell.t -> int -> bool
(** [row_admits chip cell row] combines {!row_in_range} with the power-rail
    alignment rule: odd-height cells fit any in-range row (flipping handles
    rail polarity); even-height cells additionally need
    [bottom_rail chip row] to equal the cell's designed bottom rail. *)

val nearest_admitting_row : t -> Cell.t -> float -> int option
(** [nearest_admitting_row chip cell y] is the admissible row minimizing
    [|row - y|], or [None] if no row admits the cell (e.g. the chip is
    shorter than the cell). Ties are broken toward the lower row. *)

val capacity : t -> int
(** Total number of site-row units. *)

val pp : Format.formatter -> t -> unit
