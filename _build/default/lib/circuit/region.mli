(** Fence regions (ISPD-2015 style).

    A fence region is a union of rectangles with *exclusive* semantics:
    cells assigned to the region must be placed entirely inside one of its
    rectangles, and all other cells must stay outside all of them. The
    original ISPD-2015 benchmarks carry fence regions; the paper's
    modified suite drops them, and this module brings them back.

    Exclusivity is what makes fences tractable here: the chip partitions
    into disjoint territories (one per region, plus the default territory
    outside every region), so legalization decomposes into independent
    per-territory problems where the *other* territories act as blockages
    — see [Mclh_core.Fence]. *)

type rect = { row : int; height : int; x : int; width : int }

type t = private { name : string; rects : rect list }

val make : name:string -> rect list -> t
(** @raise Invalid_argument if the rectangle list is empty, a rectangle is
    degenerate, or two rectangles of the region overlap. *)

val inside_chip : t -> Chip.t -> bool

val contains_span : t -> row:int -> height:int -> x:float -> width:int -> bool
(** Whether a cell span lies entirely inside the *union* of the region's
    rectangles. *)

val intersects_span : t -> row:int -> height:int -> x:float -> width:int -> bool
(** Whether a cell span overlaps any rectangle of the region. *)

val to_blockages : t -> Blockage.t list
(** The region's rectangles as blockages (for the cells outside it). *)

val complement_blockages : t -> Chip.t -> Blockage.t list
(** Blockages covering everything *outside* the region (for the cells
    inside it): per row, the complement of the region's intervals. *)

val area : t -> int
