(** A complete legalization instance: chip, cells, global placement and
    netlist. This is the input every legalizer in the repository consumes. *)

type t = {
  name : string;
  chip : Chip.t;
  cells : Cell.t array;
  global : Placement.t;  (** the global-placement positions [(x'_i, y'_i)] *)
  nets : Netlist.t;
  blockages : Blockage.t array;  (** fixed obstacles; empty by default *)
  regions : Region.t array;  (** fence regions; empty by default *)
}

val make :
  ?blockages:Blockage.t array ->
  ?regions:Region.t array ->
  name:string ->
  chip:Chip.t ->
  cells:Cell.t array ->
  global:Placement.t ->
  nets:Netlist.t ->
  unit ->
  t
(** Validates that cell ids equal their array index, that placement and
    netlist sizes match the cell count, that every cell fits the chip
    (width and height no larger than the chip), that blockages and region
    rectangles lie inside the chip, and that cell region indices are in
    range. *)

val free_capacity : t -> int
(** Chip capacity minus blockage area. *)

val num_cells : t -> int

val total_cell_area : t -> int

val density : t -> float
(** [total_cell_area / free_capacity] — blockage area does not count as
    usable space. *)

val count_by_height : t -> (int * int) list
(** Pairs [(height, count)] in increasing height order. *)

val cell : t -> int -> Cell.t
