type t = {
  id : int;
  name : string;
  width : int;
  height : int;
  bottom_rail : Rail.t option;
  region : int option;
}

let make ~id ?name ~width ~height ?bottom_rail ?region () =
  if width < 1 then invalid_arg "Cell.make: width < 1";
  if height < 1 then invalid_arg "Cell.make: height < 1";
  let even = height mod 2 = 0 in
  (match even, bottom_rail with
  | true, None ->
    invalid_arg "Cell.make: even-height cell requires a bottom rail type"
  | false, Some _ ->
    invalid_arg "Cell.make: odd-height cell must not fix a bottom rail"
  | true, Some _ | false, None -> ());
  let name = match name with Some n -> n | None -> Printf.sprintf "c%d" id in
  { id; name; width; height; bottom_rail; region }

let is_multi_row t = t.height > 1
let is_even_height t = t.height mod 2 = 0
let area t = t.width * t.height

let pp ppf t =
  Format.fprintf ppf "%s(%dx%d%s)" t.name t.width t.height
    (match t.bottom_rail with
    | None -> ""
    | Some r -> "," ^ Rail.to_string r)
