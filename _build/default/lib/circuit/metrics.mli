(** Displacement metrics between two placements of the same design.

    The paper's "Total Disp. (sites)" column is the total Manhattan
    displacement measured in site widths; the MMSIM objective itself is the
    quadratic displacement, also reported here. *)

type t = {
  total_manhattan : float;  (** sum over cells of [|dx| + |dy|] *)
  total_euclidean : float;  (** sum of [sqrt (dx^2 + dy^2)] *)
  total_squared : float;  (** sum of [dx^2 + dy^2] — the QP objective x2 *)
  max_manhattan : float;
  moved_cells : int;  (** cells displaced by more than 1e-9 *)
}

val displacement :
  ?row_height:float -> before:Placement.t -> Placement.t -> t
(** [displacement ~before after] measures movement from [before] to
    [after]. [row_height] (default 1.0) converts y distances (rows) into
    site widths so both axes share a unit; pass the chip's [row_height]
    for physical numbers. *)

val avg_manhattan : t -> int -> float
(** [avg_manhattan m n] with [n] the cell count; 0 for [n = 0]. *)

val pp : Format.formatter -> t -> unit
