(** Site-occupancy grid shared by the allocation-style legalizers.

    One byte per site; multi-row cells mark every spanned row. Provides the
    nearest-free-span searches the Tetris-like allocator and the greedy
    baselines are built on. *)

type t

val create : Chip.t -> t

val of_design : Design.t -> t
(** An occupancy grid with the design's blockages already marked (cells
    are not placed). *)

val chip : t -> Chip.t

val is_free_span : t -> row:int -> height:int -> x:int -> width:int -> bool
(** Whether the [width] sites starting at [x] are free in all rows
    [row .. row+height-1]; false when the span exceeds the chip. *)

val occupy : t -> row:int -> height:int -> x:int -> width:int -> unit
(** Marks the span occupied. @raise Invalid_argument if out of bounds or
    any site is already occupied (a caller bug). *)

val mark : t -> row:int -> height:int -> x:int -> width:int -> unit
(** Idempotent variant of {!occupy}: already-occupied sites are left as
    they are (used to lay down possibly-overlapping obstacle sets). *)

val release : t -> row:int -> height:int -> x:int -> width:int -> unit
(** Clears the span (used by trial placements). *)

val nearest_free_x :
  ?rightward_only:bool ->
  t -> row:int -> height:int -> width:int -> x0:int -> max_dist:int ->
  (int * int) option
(** [nearest_free_x t ~row ~height ~width ~x0 ~max_dist] finds the free
    span of [width] sites in rows [row..row+height-1] whose start x
    minimizes [|x - x0|], searching left and right at most [max_dist]
    sites; returns [(x, |x - x0|)]. Conflicts are skipped in jumps, so the
    scan is near-linear in the number of occupied runs crossed. *)

val occupied_sites : t -> int

val find_spot :
  ?row_window:int ->
  ?x_window:int ->
  ?rightward_only:bool ->
  t ->
  Cell.t ->
  row0:int ->
  x0:int ->
  (int * int * float) option
(** [find_spot t cell ~row0 ~x0] is the admissible free spot [(row, x,
    cost)] minimizing the physical Manhattan cost
    [|x - x0| + row_height * |row - row0|]. The row scan expands outward
    from [row0] and prunes once the row distance alone exceeds the
    incumbent; [row_window] caps the row distance and [x_window] the
    horizontal distance (the greedy DAC'16 baseline's local region), and
    [rightward_only] restricts each row's scan to spans at or right of
    [x0] (the original algorithm's scan direction). [None] when nothing
    free is reachable within the windows. *)
