(** Consistent warm start for the MMSIM (the [s_0] input of Algorithm 1).

    Algorithm 1 converges from any [s_0]; this module constructs one close
    to the fixed point so that few iterations remain:

    + per chip row, the single-row optimum by Abacus PlaceRow (right
      boundary relaxed, matching Problem (5)), with each multi-row cell's
      subcell positions averaged so that [E x_0 = 0] holds exactly and the
      lambda penalty contributes no startup residual;
    + the multipliers of the ordering constraints recovered exactly from
      KKT stationarity by a right-to-left sweep (zero across slack
      constraints);
    + the modulus encoding [s_0 = (gamma/2) (z_0 - w_0+)] with
      [w_0 = A z_0 + q], so active bounds and slack constraints carry
      their complementary values.

    For single-height designs this [s_0] is the exact fixed point (and the
    MMSIM verifies it in one iteration); with multi-row cells the residual
    is localized at the subcell-equality chains — exactly the coupling
    PlaceRow cannot express and the MMSIM is there to resolve. The
    ablation benchmark measures iteration counts with and without it. *)

open Mclh_linalg

val positions : Model.t -> Vec.t
(** Per-row PlaceRow positions for every subcell variable (step 1). *)

val multipliers : Model.t -> Vec.t -> Vec.t
(** [multipliers model x0] recovers ordering-constraint multipliers from
    positions by the right-to-left stationarity sweep (step 2). *)

val modulus_vector :
  Model.t -> Config.t -> Mclh_lcp.Mmsim.operators_inplace -> Vec.t
(** The assembled [s_0] (steps 1-3). *)
