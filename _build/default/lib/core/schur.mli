(** The tridiagonal Schur-complement approximation

    [D = tridiag(B (Q + lambda E^T E)^-1 B^T)]

    of Equation (16). Because every constraint row of [B] has two nonzeros
    and consecutive constraints share a variable, the tridiagonal part
    captures the dominant coupling; each entry costs O(1).

    Two computation paths:
    - [Sherman_morrison]: the paper's closed form
      [(Q + lambda E^T E)^-1 = I - lambda/(2 lambda + 1) E^T E], exact when
      every multi-row cell spans exactly two rows (then [E E^T = 2 I]);
    - [Exact_chains]: exact arrowhead solves per cell chain, valid for any
      mix of cell heights.

    The two agree bit-for-near on all-double designs (property-tested). *)

open Mclh_linalg

type path = Sherman_morrison | Exact_chains

val tridiag : ?path:path -> Model.t -> lambda:float -> Tridiag.t
(** [tridiag model ~lambda] is [D]. Default path: [Sherman_morrison] when
    {!Mclh_linalg.Blocks.all_double} holds, [Exact_chains] otherwise.
    @raise Invalid_argument if [Sherman_morrison] is requested for a design
      with a chain longer than two. *)

val dense : Model.t -> lambda:float -> Dense.t
(** The full (un-truncated) [B Q~^-1 B^T]; O(m^2) memory — tests only. *)
