(** Per-row cell ordering from global placement.

    The flow fixes, within every row, the left-to-right order the cells had
    in the global placement; the QP/LCP then only decides positions, not
    order (Section 3). The preservation metric quantifies how well a final
    legal placement kept that order — the property Figure 5(b) of the
    paper illustrates. *)

open Mclh_circuit

val per_row : Design.t -> rows:int array -> int array array
(** [per_row design ~rows] lists, for every chip row, the ids of the cells
    occupying it (multi-row cells appear in every row they span), sorted by
    global x with cell id as the deterministic tiebreak. *)

val preservation : Design.t -> Placement.t -> float
(** Fraction of ordered pairs of cells sharing a row in the *final*
    placement whose x-order agrees with their global-placement x-order
    (adjacent pairs per final row; 1.0 = order fully preserved). Returns
    1.0 when no pairs exist. *)
