(** Row segments induced by blockages.

    A blockage splits a row into free segments; ordering constraints only
    couple cells within the same segment, and each cell's x variable is
    shifted by its segment start so the LCP's [z >= 0] bound becomes the
    segment's left wall. Without blockages every row is one segment with
    start 0, and the model reduces exactly to the paper's. *)

open Mclh_circuit

type span = { start : int; stop : int }
(** A free interval [start, stop) of sites. *)

type t

val compute : Design.t -> t
(** Free segments per row (sorted by start). Rows fully covered by
    blockages have no segments. *)

val row_segments : t -> int -> span list

val locate : t -> row:int -> x:float -> width:int -> span option
(** The segment of [row] best hosting a cell of [width] whose desired
    left edge is [x]: among segments at least [width] wide, the one whose
    clamped position is nearest to [x]; if none is wide enough, the
    nearest segment regardless of fit (the Tetris stage repairs the
    spill). [None] only when the row has no segment at all. *)

val has_blockages : t -> bool
