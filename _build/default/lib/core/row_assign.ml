open Mclh_circuit

type t = { rows : int array; y_displacement : float }

let assign (design : Design.t) =
  let n = Design.num_cells design in
  let rows = Array.make n 0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let cell = design.cells.(i) in
    let y = design.global.Placement.ys.(i) in
    match Chip.nearest_admitting_row design.chip cell y with
    | Some row ->
      rows.(i) <- row;
      total :=
        !total
        +. (design.chip.Mclh_circuit.Chip.row_height
            *. Float.abs (float_of_int row -. y))
    | None ->
      failwith
        (Printf.sprintf "Row_assign.assign: no admissible row for cell %d" i)
  done;
  { rows; y_displacement = !total }
