(** Fence-region legalization by territorial decomposition.

    Fence regions are *exclusive*: member cells must land inside their
    region, every other cell outside all regions. The chip therefore
    partitions into disjoint territories — one per region plus the default
    territory — and legalization decomposes into independent sub-problems
    where the other territories act as blockages:

    - the sub-problem of region r sees the original blockages plus the
      complement of region r;
    - the default sub-problem sees the original blockages plus every
      region's rectangles.

    Each sub-problem runs the full MMSIM flow of {!Flow}; the merged
    placement is legal for the whole design, fences included, because the
    territories are disjoint. *)

open Mclh_circuit

type stats = {
  territories : int;  (** sub-problems solved (regions + default) *)
  per_territory : (string * int * int) list;
      (** (name, cells, mmsim iterations) per sub-problem *)
}

val legalize : ?config:Config.t -> Design.t -> Placement.t * stats
(** Decomposed legalization. For a design without regions this is exactly
    one {!Flow} run.
    @raise Failure if a territory cannot host its cells (region too small
      for its members). *)
