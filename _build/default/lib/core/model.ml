open Mclh_linalg
open Mclh_circuit

type t = {
  design : Design.t;
  assignment : Row_assign.t;
  nvars : int;
  first_var : int array;
  var_cell : int array;
  var_row : int array;
  row_vars : int array array;
  b_mat : Csr.t;
  b_rhs : Vec.t;
  p : Vec.t;
  shift : Vec.t;
  blocks : Blocks.t;
}

let build (design : Design.t) (assignment : Row_assign.t) =
  let n = Design.num_cells design in
  let first_var = Array.make n 0 in
  let nvars =
    let acc = ref 0 in
    for i = 0 to n - 1 do
      first_var.(i) <- !acc;
      acc := !acc + design.cells.(i).Cell.height
    done;
    !acc
  in
  let var_cell = Array.make nvars 0 and var_row = Array.make nvars 0 in
  for i = 0 to n - 1 do
    let h = design.cells.(i).Cell.height in
    for k = 0 to h - 1 do
      var_cell.(first_var.(i) + k) <- i;
      var_row.(first_var.(i) + k) <- assignment.rows.(i) + k
    done
  done;
  let segments = Segments.compute design in
  (* per-cell segment choice and shift: a multi-row cell picks a segment in
     every spanned row and is measured from the rightmost of their left
     walls, so all its subcells share one shift and E u = 0 is preserved *)
  let cell_segment_start =
    Array.init n (fun i ->
        let c = design.cells.(i) in
        let gx = design.global.Placement.xs.(i) in
        Array.init c.Cell.height (fun k ->
            match
              Segments.locate segments
                ~row:(assignment.rows.(i) + k)
                ~x:gx ~width:c.Cell.width
            with
            | Some seg -> Some seg.Segments.start
            | None -> None))
  in
  let cell_shift =
    Array.init n (fun i ->
        Array.fold_left
          (fun acc -> function Some s -> max acc s | None -> acc)
          0 cell_segment_start.(i))
  in
  let shift =
    Vec.init nvars (fun v -> float_of_int cell_shift.(var_cell.(v)))
  in
  (* ordering groups: per row, cells grouped by their chosen segment in
     that row, kept in global-x order *)
  let order = Order.per_row design ~rows:assignment.rows in
  let groups = ref [] in
  Array.iteri
    (fun r ids ->
      if Array.length ids > 0 then begin
        if Segments.has_blockages segments then begin
          (* split the x-ordered row list by segment id *)
          let tbl = Hashtbl.create 4 in
          let keys = ref [] in
          Array.iter
            (fun i ->
              let k = r - assignment.rows.(i) in
              let key = cell_segment_start.(i).(k) in
              if not (Hashtbl.mem tbl key) then keys := key :: !keys;
              let prev = try Hashtbl.find tbl key with Not_found -> [] in
              Hashtbl.replace tbl key (i :: prev))
            ids;
          List.iter
            (fun key ->
              let members = List.rev (Hashtbl.find tbl key) in
              let vars =
                List.map (fun i -> first_var.(i) + (r - assignment.rows.(i))) members
              in
              groups := Array.of_list vars :: !groups)
            (List.rev !keys)
        end
        else
          groups :=
            Array.map (fun i -> first_var.(i) + (r - assignment.rows.(i))) ids
            :: !groups
      end)
    order;
  let row_vars = Array.of_list (List.rev !groups) in
  (* ordering constraints: one per adjacent pair in each group; the
     required separation accounts for the shift difference *)
  let m =
    Array.fold_left (fun acc vars -> acc + max 0 (Array.length vars - 1)) 0 row_vars
  in
  let coo = Coo.create ~rows:m ~cols:nvars in
  let b_rhs = Array.make m 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      for k = 0 to Array.length vars - 2 do
        let u = vars.(k) and v = vars.(k + 1) in
        Coo.add coo !ci u (-1.0);
        Coo.add coo !ci v 1.0;
        b_rhs.(!ci) <-
          float_of_int design.cells.(var_cell.(u)).Cell.width
          +. shift.(u) -. shift.(v);
        incr ci
      done)
    row_vars;
  let b_mat = Coo.to_csr coo in
  let p =
    Vec.init nvars (fun v ->
        -.(design.global.Placement.xs.(var_cell.(v)) -. shift.(v)))
  in
  let chains =
    Array.to_list first_var
    |> List.mapi (fun i fv ->
           let h = design.cells.(i).Cell.height in
           Array.init h (fun k -> fv + k))
    |> List.filter (fun chain -> Array.length chain >= 2)
  in
  let blocks = Blocks.make ~nvars chains in
  { design; assignment; nvars; first_var; var_cell; var_row; row_vars;
    b_mat; b_rhs; p; shift; blocks }

let num_constraints t = Csr.rows t.b_mat

let lcp_rhs t =
  let n = t.nvars and m = num_constraints t in
  Vec.init (n + m) (fun i -> if i < n then t.p.(i) else -.t.b_rhs.(i - n))

let apply_q_tilde t ~lambda x =
  let out = Blocks.apply_ete t.blocks x in
  let result = Vec.scale lambda out in
  Vec.axpy 1.0 x result;
  result

let to_qp t ~lambda =
  let coo = Coo.create ~rows:t.nvars ~cols:t.nvars in
  for v = 0 to t.nvars - 1 do
    Coo.add coo v v 1.0
  done;
  (* lambda E^T E assembled from the explicit E matrix *)
  let e = Blocks.e_matrix t.blocks in
  for r = 0 to Csr.rows e - 1 do
    let entries = Csr.row_entries e r in
    List.iter
      (fun (j1, v1) ->
        List.iter
          (fun (j2, v2) -> Coo.add coo j1 j2 (lambda *. v1 *. v2))
          entries)
      entries
  done;
  Mclh_qp.Qp.make ~q_mat:(Coo.to_csr coo) ~p:t.p ~b_mat:t.b_mat ~b_rhs:t.b_rhs

let packed_start t =
  (* cumulative packing directly in u-space: u_first = 0 and
     u_next = max(0, u_prev + separation) satisfies B u >= b and u >= 0
     whatever the segment shifts are *)
  let x = Array.make t.nvars 0.0 in
  let ci = ref 0 in
  Array.iter
    (fun vars ->
      let k = Array.length vars in
      if k > 0 then begin
        x.(vars.(0)) <- 0.0;
        for idx = 1 to k - 1 do
          x.(vars.(idx)) <- Float.max 0.0 (x.(vars.(idx - 1)) +. t.b_rhs.(!ci));
          incr ci
        done
      end)
    t.row_vars;
  x

let cell_positions t x =
  let n = Design.num_cells t.design in
  Vec.init n (fun i ->
      let h = t.design.cells.(i).Cell.height in
      let fv = t.first_var.(i) in
      let acc = ref 0.0 in
      for k = 0 to h - 1 do
        acc := !acc +. x.(fv + k)
      done;
      !acc /. float_of_int h)

let subcell_mismatch t x = Blocks.mismatch t.blocks x

let placement_of t x =
  let xs = cell_positions t x in
  (* add back the per-cell shift (subcells share it) *)
  Array.iteri (fun i fv -> xs.(i) <- xs.(i) +. t.shift.(fv)) t.first_var;
  let ys = Array.map float_of_int t.assignment.rows in
  Placement.make ~xs ~ys
