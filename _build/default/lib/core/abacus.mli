(** Abacus (Spindler et al., ISPD'08): the classic single-row-height
    legalizer.

    [place_row] is the optimal cluster-collapse dynamic program: given a
    fixed left-to-right cell order in one row, it minimizes the total
    quadratic x-displacement subject to non-overlap and the row
    boundaries. The paper's Section 5.3 uses it as the optimality oracle:
    with cells pre-assigned to rows and the right boundary relaxed, the
    MMSIM and PlaceRow must produce the same total displacement.

    [legalize_single_height] is the full Abacus flow (greedy best-row
    selection with trial PlaceRow) for single-height designs — used by
    examples and tests, O(n * rows * row_length), so keep instances
    moderate. *)

open Mclh_circuit

type row_cell = {
  id : int;  (** caller's identifier, returned untouched *)
  target : float;  (** desired x (global-placement position) *)
  width : float;
}

val place_row :
  ?xmin:float -> ?xmax:float -> row_cell list -> (int * float) list
(** [place_row cells] places the cells in the given order, abutting where
    necessary, minimizing [sum (x_i - target_i)^2] subject to
    [xmin <= x_first] and [x_last + w_last <= xmax] (defaults: [0.0] and
    [infinity] — the relaxed right boundary of Problem (5)). Returns
    [(id, x)] in input order.
    @raise Invalid_argument if a width is nonpositive or the cells cannot
      fit between the boundaries. *)

val place_row_cost : ?xmin:float -> ?xmax:float -> row_cell list -> float
(** The optimal quadratic displacement of {!place_row}. *)

val legalize_fixed_rows : Design.t -> Row_assign.t -> Placement.t
(** PlaceRow per assigned row with the right boundary relaxed — the
    Section 5.3 comparator (single-height designs only; raises
    [Invalid_argument] if a multi-row cell is present). The result is
    fractional; snap/repair with {!Tetris_alloc} for a legal placement. *)

val legalize_fixed_rows_incremental : Design.t -> Row_assign.t -> Placement.t
(** Same result as {!legalize_fixed_rows}, but computed the way an
    Abacus-style driver uses PlaceRow: one subroutine call per cell
    insertion (re-solving the row prefix each time), i.e. O(len^2) per
    row. This is the cost profile the paper's Section 5.3 compares the
    MMSIM against. *)

val legalize_single_height : Design.t -> Placement.t
(** Full Abacus: cells in global-x order, each inserted into the row
    minimizing the trial PlaceRow cost plus vertical displacement; bounded
    rows (no relaxation). Requires all cells single-height. The result is
    fractional in x; snap with {!Tetris_alloc}. *)
