open Mclh_circuit

type row_cell = { id : int; target : float; width : float }

(* One Abacus cluster covering a contiguous run of cells. [q]/[e] give the
   unclamped optimal origin; [w] is the packed width. *)
type cluster = {
  mutable q : float;
  mutable e : float;
  mutable w : float;
  mutable first : int;
  mutable last : int;
}

let optimal_x ~xmin ~xmax c = Float.min (Float.max (c.q /. c.e) xmin) (xmax -. c.w)

let solve_row ~xmin ~xmax cells_arr =
  let n = Array.length cells_arr in
  Array.iter
    (fun rc ->
      if rc.width <= 0.0 then invalid_arg "Abacus.place_row: nonpositive width")
    cells_arr;
  let total_width =
    Array.fold_left (fun acc rc -> acc +. rc.width) 0.0 cells_arr
  in
  if total_width > xmax -. xmin +. 1e-9 then
    invalid_arg "Abacus.place_row: cells do not fit between the boundaries";
  let stack = ref [] in
  for i = 0 to n - 1 do
    let rc = cells_arr.(i) in
    let c = { q = rc.target; e = 1.0; w = rc.width; first = i; last = i } in
    (* collapse: merge into the predecessor while they overlap *)
    let rec settle c =
      match !stack with
      | pred :: rest
        when optimal_x ~xmin ~xmax pred +. pred.w
             > optimal_x ~xmin ~xmax c +. 1e-12 ->
        (* members of c shift right by pred.w relative to pred's origin *)
        pred.q <- pred.q +. c.q -. (c.e *. pred.w);
        pred.e <- pred.e +. c.e;
        pred.w <- pred.w +. c.w;
        pred.last <- c.last;
        stack := rest;
        settle pred
      | _ -> stack := c :: !stack
    in
    settle c
  done;
  let xs = Array.make n 0.0 in
  List.iter
    (fun c ->
      let x = optimal_x ~xmin ~xmax c in
      let cursor = ref x in
      for i = c.first to c.last do
        xs.(i) <- !cursor;
        cursor := !cursor +. cells_arr.(i).width
      done)
    !stack;
  xs

let place_row ?(xmin = 0.0) ?(xmax = infinity) cells =
  let arr = Array.of_list cells in
  let xs = solve_row ~xmin ~xmax arr in
  Array.to_list (Array.mapi (fun i rc -> (rc.id, xs.(i))) arr)

let place_row_cost ?(xmin = 0.0) ?(xmax = infinity) cells =
  let arr = Array.of_list cells in
  let xs = solve_row ~xmin ~xmax arr in
  let acc = ref 0.0 in
  Array.iteri
    (fun i rc ->
      let d = xs.(i) -. rc.target in
      acc := !acc +. (d *. d))
    arr;
  !acc

let require_single_height (design : Design.t) fn =
  Array.iter
    (fun (c : Cell.t) ->
      if c.Cell.height <> 1 then
        invalid_arg (fn ^ ": design has a multi-row cell"))
    design.cells;
  if Array.length design.blockages > 0 then
    invalid_arg (fn ^ ": blockages are not supported by this path")

let legalize_fixed_rows (design : Design.t) (assignment : Row_assign.t) =
  require_single_height design "Abacus.legalize_fixed_rows";
  let order = Order.per_row design ~rows:assignment.Row_assign.rows in
  let xs = Array.make (Design.num_cells design) 0.0 in
  Array.iter
    (fun ids ->
      let cells =
        Array.to_list ids
        |> List.map (fun i ->
               { id = i;
                 target = design.global.Placement.xs.(i);
                 width = float_of_int design.cells.(i).Cell.width })
      in
      List.iter (fun (i, x) -> xs.(i) <- x) (place_row cells))
    order;
  let ys = Array.map float_of_int assignment.Row_assign.rows in
  Placement.make ~xs ~ys

let legalize_fixed_rows_incremental (design : Design.t)
    (assignment : Row_assign.t) =
  require_single_height design "Abacus.legalize_fixed_rows_incremental";
  let order = Order.per_row design ~rows:assignment.Row_assign.rows in
  let xs = Array.make (Design.num_cells design) 0.0 in
  Array.iter
    (fun ids ->
      let cells =
        Array.map
          (fun i ->
            { id = i;
              target = design.global.Placement.xs.(i);
              width = float_of_int design.cells.(i).Cell.width })
          ids
      in
      (* one PlaceRow call per insertion, as the Abacus driver does *)
      for k = 1 to Array.length cells - 1 do
        ignore (solve_row ~xmin:0.0 ~xmax:infinity (Array.sub cells 0 k))
      done;
      let final = solve_row ~xmin:0.0 ~xmax:infinity cells in
      Array.iteri (fun idx i -> xs.(i) <- final.(idx)) ids)
    order;
  let ys = Array.map float_of_int assignment.Row_assign.rows in
  Placement.make ~xs ~ys

let legalize_single_height (design : Design.t) =
  require_single_height design "Abacus.legalize_single_height";
  let chip = design.chip in
  let num_rows = chip.Chip.num_rows in
  let xmax = float_of_int chip.Chip.num_sites in
  let n = Design.num_cells design in
  (* per-row cell lists in reverse insertion order *)
  let rows : row_cell list array = Array.make num_rows [] in
  let row_width = Array.make num_rows 0.0 in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare design.global.Placement.xs.(a) design.global.Placement.xs.(b) in
      if c <> 0 then c else compare a b)
    order;
  let row_of = Array.make n 0 in
  Array.iter
    (fun i ->
      let rc =
        { id = i;
          target = design.global.Placement.xs.(i);
          width = float_of_int design.cells.(i).Cell.width }
      in
      let y = design.global.Placement.ys.(i) in
      let best_row = ref (-1) and best_cost = ref infinity in
      (* rows by increasing vertical distance; stop once dy^2 alone loses *)
      let try_row r =
        if r >= 0 && r < num_rows && row_width.(r) +. rc.width <= xmax then begin
          let dy = chip.Chip.row_height *. (float_of_int r -. y) in
          if dy *. dy < !best_cost then begin
            let trial = List.rev (rc :: rows.(r)) in
            match place_row_cost ~xmin:0.0 ~xmax trial with
            | cost ->
              let total = cost +. (dy *. dy) in
              if total < !best_cost then begin
                best_cost := total;
                best_row := r
              end
            | exception Invalid_argument _ -> ()
          end
        end
      in
      let r0 = max 0 (min (num_rows - 1) (int_of_float (Float.round y))) in
      let rec widen dr =
        let dy = chip.Chip.row_height *. float_of_int (max 0 (dr - 1)) in
        if dr <= num_rows && (dy *. dy < !best_cost || !best_row < 0) then begin
          try_row (r0 - dr);
          if dr > 0 then try_row (r0 + dr);
          widen (dr + 1)
        end
      in
      widen 0;
      if !best_row < 0 then
        failwith "Abacus.legalize_single_height: no row can host a cell";
      rows.(!best_row) <- rc :: rows.(!best_row);
      row_width.(!best_row) <- row_width.(!best_row) +. rc.width;
      row_of.(i) <- !best_row)
    order;
  let xs = Array.make n 0.0 and ys = Array.make n 0.0 in
  Array.iteri
    (fun r cells ->
      let cells = List.rev cells in
      List.iter
        (fun (i, x) ->
          xs.(i) <- x;
          ys.(i) <- float_of_int r)
        (place_row ~xmin:0.0 ~xmax cells))
    rows;
  Placement.make ~xs ~ys
